// Tests for the overload-protection layer (birp/guard): circuit-breaker
// state machine, deadline-aware admission, the degradation ladder and its
// scheduler hints, failover backoff jitter, config validation, and the
// B&B iteration-limit fallback surfaced through RunMetrics.
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"
#include "birp/fault/failover.hpp"
#include "birp/guard/breaker.hpp"
#include "birp/guard/config.hpp"
#include "birp/guard/controller.hpp"
#include "birp/metrics/report_csv.hpp"
#include "birp/serve/engine.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/workload/trace.hpp"

namespace birp::guard {
namespace {

device::ClusterSpec small_cluster(double tau = 6.0) {
  return device::ClusterSpec(device::one_of_each(), model::Zoo::small_scale(),
                             tau, 0x7e57);
}

workload::Trace uniform_trace(const device::ClusterSpec& cluster, int slots,
                              std::int64_t per_cell) {
  workload::Trace trace(slots, cluster.num_apps(), cluster.num_devices());
  for (int t = 0; t < slots; ++t) {
    for (int i = 0; i < cluster.num_apps(); ++i) {
      for (int k = 0; k < cluster.num_devices(); ++k) {
        trace.set(t, i, k, per_cell);
      }
    }
  }
  return trace;
}

/// Serves all local demand with variant 0 (batch == demand, capped at 16).
class LocalGreedyScheduler : public sim::Scheduler {
 public:
  explicit LocalGreedyScheduler(const device::ClusterSpec& cluster)
      : cluster_(cluster) {}
  [[nodiscard]] std::string name() const override { return "local-greedy"; }
  [[nodiscard]] sim::SlotDecision decide(const sim::SlotState& state) override {
    sim::SlotDecision decision(cluster_.num_apps(),
                               cluster_.zoo().max_variants(),
                               cluster_.num_devices());
    for (int i = 0; i < cluster_.num_apps(); ++i) {
      for (int k = 0; k < cluster_.num_devices(); ++k) {
        const auto demand = state.demand(i, k);
        const auto take = std::min<std::int64_t>(demand, 16);
        decision.served(i, 0, k) = take;
        decision.kernel(i, 0, k) =
            static_cast<int>(std::max<std::int64_t>(take, 1));
        decision.drops(i, k) = demand - take;
      }
    }
    return decision;
  }

 private:
  const device::ClusterSpec& cluster_;
};

BreakerConfig tight_breaker() {
  BreakerConfig config;
  config.enabled = true;
  config.window_slots = 4;
  config.min_samples = 8;
  config.trip_threshold = 0.5;
  config.open_slots = 2;
  return config;
}

// ----------------------------------------------- breaker state machine ----

TEST(Breaker, ClosedTripsToOpenAtThreshold) {
  CircuitBreaker breaker(tight_breaker());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_FALSE(breaker.avoid());

  breaker.record(10, 5);  // rate exactly at the 0.5 threshold
  const auto transition = breaker.advance();
  EXPECT_TRUE(transition.tripped);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_TRUE(breaker.avoid());
}

TEST(Breaker, ClosedBelowMinSamplesNeverTrips) {
  CircuitBreaker breaker(tight_breaker());
  breaker.record(7, 7);  // 100% failing but below min_samples = 8
  EXPECT_FALSE(breaker.advance().tripped);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // The window accumulates across slots: one more failure crosses the bar.
  breaker.record(1, 1);
  EXPECT_TRUE(breaker.advance().tripped);
}

TEST(Breaker, WindowSlidesOldFailuresOut) {
  CircuitBreaker breaker(tight_breaker());
  breaker.record(8, 8);
  // Window of 4: after four healthy slots the failing slot has slid out, so
  // the breaker never trips even though min_samples stays satisfied. The
  // first advance still sees the fresh failures, so it trips immediately —
  // use a healthier mix instead: 8 failed of 24 = 0.33 < threshold.
  breaker.record(16, 0);
  EXPECT_FALSE(breaker.advance().tripped);
  for (int s = 0; s < 4; ++s) {
    breaker.record(4, 0);
    EXPECT_FALSE(breaker.advance().tripped);
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.window_failed(), 0);  // failures aged out
}

TEST(Breaker, OpenProbesAfterQuarantine) {
  CircuitBreaker breaker(tight_breaker());
  breaker.record(8, 8);
  ASSERT_TRUE(breaker.advance().tripped);

  // Outcomes observed while open are quarantined (cleared each slot).
  breaker.record(50, 50);
  auto transition = breaker.advance();  // open slot 1 of 2
  EXPECT_FALSE(transition.probed);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);

  transition = breaker.advance();  // open slot 2 of 2 -> half-open
  EXPECT_TRUE(transition.probed);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.avoid());  // half-open lets probe traffic through
  EXPECT_EQ(breaker.window_total(), 0);  // quarantined outcomes discarded
}

TEST(Breaker, HalfOpenRecoversOnHealthyProbe) {
  CircuitBreaker breaker(tight_breaker());
  breaker.record(8, 8);
  ASSERT_TRUE(breaker.advance().tripped);
  ASSERT_FALSE(breaker.advance().probed);
  ASSERT_TRUE(breaker.advance().probed);

  breaker.record(6, 1);  // healthy probe traffic
  const auto transition = breaker.advance();
  EXPECT_TRUE(transition.recovered);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(Breaker, HalfOpenReopensOnFailingProbe) {
  CircuitBreaker breaker(tight_breaker());
  breaker.record(8, 8);
  ASSERT_TRUE(breaker.advance().tripped);
  ASSERT_TRUE((breaker.advance(), breaker.advance()).probed);

  breaker.record(4, 3);  // probe traffic still failing
  const auto transition = breaker.advance();
  EXPECT_TRUE(transition.reopened);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_TRUE(breaker.avoid());

  // The reopened breaker quarantines for open_slots again before reprobing.
  EXPECT_FALSE(breaker.advance().probed);
  EXPECT_TRUE(breaker.advance().probed);
}

TEST(Breaker, HalfOpenWithoutTrafficKeepsProbing) {
  CircuitBreaker breaker(tight_breaker());
  breaker.record(8, 8);
  ASSERT_TRUE(breaker.advance().tripped);
  breaker.advance();
  ASSERT_TRUE(breaker.advance().probed);

  for (int s = 0; s < 5; ++s) {
    const auto transition = breaker.advance();  // no outcomes recorded
    EXPECT_FALSE(transition.recovered);
    EXPECT_FALSE(transition.reopened);
  }
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

// ------------------------------------------------ admission controller ----

TEST(Admission, OracleFormulaAdmitsAndSheds) {
  const auto cluster = small_cluster();
  GuardConfig config;
  config.admission.enabled = true;
  config.admission.slack = 1.0;
  config.admission.marginal_batch_cost = 0.4;
  GuardController guard(cluster, config);

  const double tau = cluster.tau_s();
  const double slo =
      cluster.zoo().app(0).slo_fraction * tau;  // per-request budget
  const double gamma = cluster.gamma_s(0, 0, 0);
  ASSERT_LT(gamma, slo);  // a lone request at an idle edge must be viable

  // Idle edge, request available immediately: always admitted.
  EXPECT_TRUE(guard.admit(0, 0, 0, 1, 0.0, 0.0, 0.0, 0));

  // A transfer that already consumed the whole budget: shed on arrival.
  EXPECT_FALSE(guard.admit(0, 0, 0, 1, 0.0, slo, 0.0, 0));

  // Deep same-app backlog: predicted batches-ahead wait exceeds the budget.
  const std::int64_t doomed_depth =
      static_cast<std::int64_t>(slo / gamma) + 2;
  EXPECT_FALSE(guard.admit(0, 0, 0, 1, 0.0, 0.0, 0.0, doomed_depth));

  // The exact boundary: predicted sojourn == slack * slo stays admitted.
  EXPECT_TRUE(guard.admit(0, 0, 0, 1, 0.0, slo - gamma, 0.0, 0));

  // An accelerator backlog past the budget dooms the request even when it
  // is available immediately and no one is buffered ahead of it.
  EXPECT_FALSE(guard.admit(0, 0, 0, 1, 0.0, 0.0, slo, 0));
  EXPECT_TRUE(guard.admit(0, 0, 0, 1, 0.0, 0.0, slo - gamma, 0));
}

TEST(Admission, SlackScalesTheBudget) {
  const auto cluster = small_cluster();
  GuardConfig tight;
  tight.admission.enabled = true;
  tight.admission.slack = 0.1;
  GuardConfig loose;
  loose.admission.enabled = true;
  loose.admission.slack = 10.0;
  GuardController strict(cluster, tight);
  GuardController permissive(cluster, loose);

  const double slo = cluster.zoo().app(0).slo_fraction * cluster.tau_s();
  EXPECT_FALSE(strict.admit(0, 0, 0, 1, 0.0, 0.5 * slo, 0.0, 0));
  EXPECT_TRUE(permissive.admit(0, 0, 0, 1, 0.0, 0.5 * slo, 0.0, 0));
}

TEST(Admission, DisabledAdmitsEverything) {
  const auto cluster = small_cluster();
  GuardConfig config;
  config.breaker.enabled = true;  // controller engaged, admission off
  GuardController guard(cluster, config);
  EXPECT_TRUE(guard.admit(0, 0, 0, 1, 0.0, 1e9, 1e9, 1'000'000));
}

// ------------------------------------------------- degradation ladder ----

TEST(Ladder, StressStepsDownAndCalmRestores) {
  const auto cluster = small_cluster();
  GuardConfig config;
  config.degradation.enabled = true;
  config.degradation.stress_shed_fraction = 0.25;
  config.degradation.recovery_slots = 2;
  GuardController guard(cluster, config);

  const int apps = cluster.num_apps();
  const int J = cluster.zoo().num_variants(0);
  ASSERT_GE(J, 2);  // the ladder needs at least two rungs to be visible
  util::Grid2<GuardController::CellStats> cells(apps, cluster.num_devices());
  std::vector<std::int64_t> demand(static_cast<std::size_t>(apps), 100);
  std::vector<std::int64_t> calm_shed(static_cast<std::size_t>(apps), 0);
  std::vector<std::int64_t> stressed_shed = calm_shed;
  stressed_shed[0] = 30;  // 30% of app 0's demand shed: above the threshold

  auto summary = guard.end_slot(cells, demand, stressed_shed);
  EXPECT_EQ(guard.degradation_level(0), 1);
  EXPECT_EQ(summary.degraded_apps, 1);
  EXPECT_EQ(summary.max_level, 1);
  EXPECT_EQ(guard.begin_slot(1).variant_cap[0], J - 2);

  // Sustained stress keeps stepping down but never removes variant 0.
  for (int s = 0; s < J + 3; ++s) guard.end_slot(cells, demand, stressed_shed);
  EXPECT_EQ(guard.degradation_level(0), J - 1);
  EXPECT_EQ(guard.begin_slot(2).variant_cap[0], 0);

  // One calm slot is not enough; recovery_slots calm slots restore one rung.
  guard.end_slot(cells, demand, calm_shed);
  EXPECT_EQ(guard.degradation_level(0), J - 1);
  guard.end_slot(cells, demand, calm_shed);
  EXPECT_EQ(guard.degradation_level(0), J - 2);

  // Full recovery clears the cap entirely.
  for (int s = 0; s < 2 * J; ++s) guard.end_slot(cells, demand, calm_shed);
  EXPECT_EQ(guard.degradation_level(0), 0);
  EXPECT_EQ(guard.begin_slot(3).variant_cap[0], -1);
  EXPECT_TRUE(guard.begin_slot(3).empty());
}

TEST(Ladder, OpenBreakerCountsAsStress) {
  const auto cluster = small_cluster();
  GuardConfig config;
  config.breaker = tight_breaker();
  config.degradation.enabled = true;
  GuardController guard(cluster, config);

  const int apps = cluster.num_apps();
  util::Grid2<GuardController::CellStats> cells(apps, cluster.num_devices());
  cells(0, 1) = {20, 20};  // app 0 failing hard at edge 1
  std::vector<std::int64_t> demand(static_cast<std::size_t>(apps), 100);
  std::vector<std::int64_t> shed(static_cast<std::size_t>(apps), 0);

  guard.end_slot(cells, demand, shed);
  EXPECT_EQ(guard.breaker_state(0, 1), BreakerState::kOpen);
  EXPECT_EQ(guard.degradation_level(0), 1);  // breaker stress, no sheds

  const auto& hints = guard.begin_slot(1);
  EXPECT_EQ(hints.avoid_import(0, 1), 1);
  EXPECT_EQ(hints.avoid_import(0, 0), 0);
  EXPECT_FALSE(hints.empty());
}

// --------------------------------------- hints constrain the scheduler ----

TEST(Hints, BirpSchedulerRespectsAvoidAndVariantCap) {
  const auto cluster = small_cluster();
  core::BirpScheduler scheduler(cluster);

  sim::SchedulerHints hints;
  hints.avoid_import =
      util::Grid2<std::uint8_t>(cluster.num_apps(), cluster.num_devices(), 0);
  for (int i = 0; i < cluster.num_apps(); ++i) hints.avoid_import(i, 1) = 1;
  hints.variant_cap.assign(static_cast<std::size_t>(cluster.num_apps()), 0);

  sim::SlotState state;
  state.slot = 0;
  state.demand = util::Grid2<std::int64_t>(cluster.num_apps(),
                                           cluster.num_devices(), 8);
  state.hints = &hints;
  const auto decision = scheduler.decide(state);

  for (int i = 0; i < cluster.num_apps(); ++i) {
    // No redistribution into the avoided edge...
    EXPECT_EQ(decision.imports(i, 1), 0);
    // ...and nothing served above the capped variant anywhere.
    for (int j = 1; j < cluster.zoo().max_variants(); ++j) {
      for (int k = 0; k < cluster.num_devices(); ++k) {
        EXPECT_EQ(decision.served(i, j, k), 0)
            << "i=" << i << " j=" << j << " k=" << k;
      }
    }
  }
}

// ------------------------------------------------------- backoff jitter ----

TEST(Backoff, ExponentialScheduleWithoutJitter) {
  fault::FailoverConfig config;
  config.enabled = true;
  config.backoff_base_slots = 2;
  config.backoff_multiplier = 2.0;
  config.backoff_max_slots = 12;
  fault::FailoverPolicy policy(config, 1, 2);
  EXPECT_EQ(policy.delay_slots(1), 2);
  EXPECT_EQ(policy.delay_slots(2), 4);
  EXPECT_EQ(policy.delay_slots(3), 8);
  EXPECT_EQ(policy.delay_slots(4), 12);  // capped
  EXPECT_EQ(policy.delay_slots(5), 12);
}

TEST(Backoff, LegacyZeroBaseIsAlwaysNextSlot) {
  fault::FailoverConfig config;
  config.enabled = true;
  config.backoff_jitter = 0.9;  // irrelevant: base 0 never draws
  fault::FailoverPolicy policy(config, 1, 2);
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(policy.delay_slots(attempt), 1);
  }
}

TEST(Backoff, JitterIsSeededAndDeterministic) {
  fault::FailoverConfig config;
  config.enabled = true;
  config.backoff_base_slots = 4;
  config.backoff_multiplier = 2.0;
  config.backoff_max_slots = 32;
  config.backoff_jitter = 0.5;

  const auto draw_schedule = [](fault::FailoverPolicy& policy) {
    std::vector<int> delays;
    for (int n = 0; n < 16; ++n) delays.push_back(policy.delay_slots(1 + n % 3));
    return delays;
  };
  fault::FailoverPolicy a(config, 2, 3);
  fault::FailoverPolicy b(config, 2, 3);
  const auto first = draw_schedule(a);
  EXPECT_EQ(first, draw_schedule(b));  // same seed -> same schedule

  for (const int d : first) {
    EXPECT_GE(d, 1);
    EXPECT_LE(d, config.backoff_max_slots);
  }

  auto reseeded = config;
  reseeded.backoff_seed ^= 0xbeef;
  fault::FailoverPolicy c(config, 2, 3);
  fault::FailoverPolicy d(reseeded, 2, 3);
  EXPECT_NE(draw_schedule(c), draw_schedule(d));
}

TEST(Backoff, CohortsWaitOutTheirDelay) {
  fault::FailoverConfig config;
  config.enabled = true;
  config.retry_budget = 2;
  config.backoff_base_slots = 2;
  config.backoff_jitter = 0.0;
  fault::FailoverPolicy policy(config, 1, 2);

  policy.begin_slot(0, {1, 1});
  EXPECT_EQ(policy.on_orphans(0, 1, 6).retried, 6);

  // Delay 2: nothing re-enters at slot 1, everything at slot 2.
  const auto& early = policy.begin_slot(1, {1, 1});
  EXPECT_EQ(early(0, 0) + early(0, 1), 0);
  const auto& due = policy.begin_slot(2, {1, 1});
  EXPECT_EQ(due(0, 0) + due(0, 1), 6);
  EXPECT_EQ(policy.drain_pending(), 0);
}

TEST(Backoff, AvoidMaskRoutesAroundTrippedEdges) {
  fault::FailoverConfig config;
  config.enabled = true;
  config.retry_budget = 2;  // the re-admitted cohort survives one more orphaning
  fault::FailoverPolicy policy(config, 1, 3);
  policy.begin_slot(0, {1, 1, 1});
  EXPECT_EQ(policy.on_orphans(0, 2, 9).retried, 9);

  util::Grid2<std::uint8_t> avoid(1, 3, 0);
  avoid(0, 1) = 1;
  const auto& readmit = policy.begin_slot(1, {1, 1, 1}, &avoid);
  EXPECT_EQ(readmit(0, 1), 0);  // tripped edge skipped
  EXPECT_EQ(readmit(0, 0) + readmit(0, 2), 9);

  // Availability beats avoidance: all edges tripped -> all edges used.
  // (`readmit` aliases the policy's internal grid, so copy the count out
  // before the next begin_slot overwrites it.)
  const std::int64_t reorphaned = readmit(0, 0);
  EXPECT_EQ(policy.on_orphans(0, 0, reorphaned).retried, reorphaned);
  util::Grid2<std::uint8_t> all(1, 3, 1);
  const auto& forced = policy.begin_slot(2, {1, 1, 1}, &all);
  EXPECT_EQ(forced(0, 0) + forced(0, 1) + forced(0, 2), reorphaned);
}

// ----------------------------------------------------- config checking ----

TEST(GuardValidation, RejectsOutOfRangeValues) {
  GuardConfig slack;
  slack.admission.slack = 0.0;
  EXPECT_THROW(validate(slack), std::logic_error);

  GuardConfig cost;
  cost.admission.marginal_batch_cost = -0.1;
  EXPECT_THROW(validate(cost), std::logic_error);

  GuardConfig window;
  window.breaker.window_slots = 0;
  EXPECT_THROW(validate(window), std::logic_error);

  GuardConfig samples;
  samples.breaker.min_samples = 0;
  EXPECT_THROW(validate(samples), std::logic_error);

  GuardConfig threshold;
  threshold.breaker.trip_threshold = 1.5;
  EXPECT_THROW(validate(threshold), std::logic_error);

  GuardConfig open;
  open.breaker.open_slots = 0;
  EXPECT_THROW(validate(open), std::logic_error);

  GuardConfig stress;
  stress.degradation.stress_shed_fraction = -0.5;
  EXPECT_THROW(validate(stress), std::logic_error);

  GuardConfig recovery;
  recovery.degradation.recovery_slots = 0;
  EXPECT_THROW(validate(recovery), std::logic_error);

  EXPECT_NO_THROW(validate(GuardConfig{}));
}

TEST(GuardValidation, ServeEngineRejectsBadConfigs) {
  const auto cluster = small_cluster();
  const auto trace = uniform_trace(cluster, 2, 4);

  serve::ServeConfig negative_queue;
  negative_queue.queue_capacity = -1;
  EXPECT_THROW(serve::ServeEngine(cluster, trace, negative_queue),
               std::logic_error);

  serve::ServeConfig negative_threads;
  negative_threads.threads = -2;
  EXPECT_THROW(serve::ServeEngine(cluster, trace, negative_threads),
               std::logic_error);

  serve::ServeConfig bad_guard;
  bad_guard.guard.breaker.trip_threshold = 2.0;
  EXPECT_THROW(serve::ServeEngine(cluster, trace, bad_guard),
               std::logic_error);

  // Bad guard values are rejected even with every feature disabled: configs
  // are validated before they can silently activate later.
  serve::ServeConfig disabled_but_bad;
  disabled_but_bad.guard.admission.slack = -1.0;
  EXPECT_THROW(serve::ServeEngine(cluster, trace, disabled_but_bad),
               std::logic_error);

  serve::ServeConfig fine;
  fine.guard.admission.enabled = true;
  EXPECT_NO_THROW(serve::ServeEngine(cluster, trace, fine));
}

// ------------------------------------------------- engine integration ----

TEST(ServeGuard, NeutralGuardIsBitIdenticalToPlain) {
  // Admission enabled with an effectively infinite budget: the guard runs
  // (controller engaged, gates evaluated) but never changes an outcome.
  const auto cluster = small_cluster();
  const auto trace = uniform_trace(cluster, 5, 8);
  serve::ServeConfig plain;
  serve::ServeConfig neutral;
  neutral.guard.admission.enabled = true;
  neutral.guard.admission.slack = 1e9;

  LocalGreedyScheduler s1(cluster);
  LocalGreedyScheduler s2(cluster);
  serve::ServeEngine e1(cluster, trace, plain);
  serve::ServeEngine e2(cluster, trace, neutral);
  const auto a = e1.run(s1);
  const auto b = e2.run(s2);
  EXPECT_DOUBLE_EQ(a.total_loss(), b.total_loss());
  EXPECT_EQ(a.slo_failures(), b.slo_failures());
  EXPECT_DOUBLE_EQ(a.latency_quantile(0.5), b.latency_quantile(0.5));
  EXPECT_EQ(b.deadline_shed(), 0);
  EXPECT_EQ(b.breaker_trips(), 0);
  EXPECT_EQ(b.degraded_slots(), 0);
}

TEST(ServeGuard, AggressiveAdmissionShedsAndConservesRequests) {
  const auto cluster = small_cluster();
  const auto trace = uniform_trace(cluster, 6, 24);  // heavy overload
  serve::ServeConfig config;
  config.noise_sigma = 0.0;
  config.guard.admission.enabled = true;
  // tau = 6 s vs variant-0 batch latencies of tens of milliseconds: only a
  // sub-1% slack makes the predicted batch wait blow the budget.
  config.guard.admission.slack = 0.005;

  LocalGreedyScheduler scheduler(cluster);
  serve::ServeEngine engine(cluster, trace, config);
  const auto metrics = engine.run(scheduler);
  EXPECT_GT(metrics.deadline_shed(), 0);
  // Every request still resolves exactly once.
  EXPECT_EQ(metrics.total_requests(), trace.total());
  // Sheds are drops and SLO failures, never silent losses.
  EXPECT_GE(metrics.dropped(), metrics.deadline_shed());
  EXPECT_GE(metrics.slo_failures(), metrics.deadline_shed());
}

TEST(ServeGuard, FullLadderIsDeterministicAcrossThreadCounts) {
  const auto cluster = small_cluster();
  const auto trace = uniform_trace(cluster, 8, 20);
  serve::ServeConfig config;
  config.queue_capacity = 24;
  config.guard.admission.enabled = true;
  config.guard.admission.slack = 0.8;
  config.guard.breaker = tight_breaker();
  config.guard.degradation.enabled = true;
  config.failover.enabled = true;
  config.failover.backoff_base_slots = 2;
  config.failover.backoff_jitter = 0.5;

  serve::ServeConfig one = config;
  one.threads = 1;
  serve::ServeConfig many = config;
  many.threads = 4;
  LocalGreedyScheduler s1(cluster);
  LocalGreedyScheduler s2(cluster);
  serve::ServeEngine e1(cluster, trace, one);
  serve::ServeEngine e2(cluster, trace, many);
  const auto a = e1.run(s1);
  const auto b = e2.run(s2);
  EXPECT_DOUBLE_EQ(a.total_loss(), b.total_loss());
  EXPECT_EQ(a.slo_failures(), b.slo_failures());
  EXPECT_EQ(a.deadline_shed(), b.deadline_shed());
  EXPECT_EQ(a.breaker_trips(), b.breaker_trips());
  EXPECT_EQ(a.degraded_slots(), b.degraded_slots());
  EXPECT_EQ(a.retries(), b.retries());
  EXPECT_DOUBLE_EQ(a.latency_quantile(0.95), b.latency_quantile(0.95));
  EXPECT_EQ(a.total_requests(), trace.total());
}

// ------------------------------------- B&B iteration-limit fallback ----

TEST(SolverFallback, IterationLimitEngagesGreedyWithValidDecision) {
  const auto cluster = small_cluster();
  core::BirpConfig config;
  config.solver.max_nodes = 0;  // the B&B main loop never runs
  core::BirpScheduler scheduler(cluster, config);

  sim::SlotState state;
  state.slot = 0;
  state.demand = util::Grid2<std::int64_t>(cluster.num_apps(),
                                           cluster.num_devices(), 10);
  const auto decision = scheduler.decide(state);
  EXPECT_EQ(scheduler.fallback_count(), 1);

  // The greedy fallback must still conserve requests per (app, edge).
  for (int i = 0; i < cluster.num_apps(); ++i) {
    for (int k = 0; k < cluster.num_devices(); ++k) {
      std::int64_t served = 0;
      for (int j = 0; j < cluster.zoo().num_variants(i); ++j) {
        served += decision.served(i, j, k);
        EXPECT_GE(decision.served(i, j, k), 0);
      }
      const auto available = state.demand(i, k) - decision.exports(i, k) +
                             decision.imports(i, k);
      EXPECT_EQ(served + decision.drops(i, k), available);
      EXPECT_GE(decision.drops(i, k), 0);
    }
  }
}

TEST(SolverFallback, SurfacesThroughRunMetricsAndCsv) {
  const auto cluster = small_cluster();
  const auto trace = uniform_trace(cluster, 4, 6);
  core::BirpConfig config;
  config.solver.max_nodes = 0;
  core::BirpScheduler scheduler(cluster, config);
  sim::Simulator simulator(cluster, trace);
  const auto metrics = simulator.run(scheduler);
  EXPECT_EQ(metrics.solver_fallbacks(), 4);  // every slot fell back

  std::ostringstream csv;
  metrics::write_summary_csv(csv, {{"BIRP", &metrics}});
  EXPECT_NE(csv.str().find("solver_fallbacks"), std::string::npos);
  EXPECT_NE(csv.str().find(",4"), std::string::npos);

  // A healthy node budget never falls back on this workload.
  core::BirpScheduler healthy(cluster);
  sim::Simulator again(cluster, trace);
  const auto clean = again.run(healthy);
  EXPECT_EQ(clean.solver_fallbacks(), 0);
}

}  // namespace
}  // namespace birp::guard
