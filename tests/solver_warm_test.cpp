// Warm-start and parallel branch-and-bound coverage: warm-vs-cold result
// identity on randomized LPs and slot-problem sequences, singular-basis
// fallback, thread-count determinism, and the reported-gap bracket.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "birp/core/birp_scheduler.hpp"
#include "birp/core/problem.hpp"
#include "birp/device/cluster.hpp"
#include "birp/runtime/thread_pool.hpp"
#include "birp/solver/branch_and_bound.hpp"
#include "birp/solver/model.hpp"
#include "birp/solver/simplex.hpp"
#include "birp/util/grid.hpp"
#include "birp/util/rng.hpp"

namespace birp::solver {
namespace {

constexpr double kTol = 1e-6;

// Random transportation LP with mixed relations: equality supply rows,
// inequality sink-capacity rows, and boxed flow variables — enough structure
// to exercise slacks, artificials, and bound flips on the warm path.
Model random_lp(std::uint64_t seed) {
  util::Xoshiro256StarStar rng(seed);
  const int sources = 3;
  const int sinks = 4;
  Model model;
  std::vector<std::vector<int>> flow(static_cast<std::size_t>(sources));
  for (int s = 0; s < sources; ++s) {
    for (int d = 0; d < sinks; ++d) {
      const int var = model.add_continuous(
          "f" + std::to_string(s) + "_" + std::to_string(d), 0.0,
          rng.uniform(8.0, 25.0));
      flow[static_cast<std::size_t>(s)].push_back(var);
      model.set_objective(var, rng.uniform(1.0, 10.0));
    }
  }
  std::vector<double> supply(static_cast<std::size_t>(sources));
  double total = 0.0;
  for (int s = 0; s < sources; ++s) {
    supply[static_cast<std::size_t>(s)] = rng.uniform(5.0, 15.0);
    total += supply[static_cast<std::size_t>(s)];
  }
  for (int s = 0; s < sources; ++s) {
    std::vector<Term> terms;
    for (int d = 0; d < sinks; ++d) {
      terms.push_back({flow[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)], 1.0});
    }
    model.add_constraint(terms, Relation::Equal,
                         supply[static_cast<std::size_t>(s)]);
  }
  for (int d = 0; d < sinks; ++d) {
    std::vector<Term> terms;
    for (int s = 0; s < sources; ++s) {
      terms.push_back({flow[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)], 1.0});
    }
    // Loose enough to keep the instance feasible, tight enough to bind.
    model.add_constraint(terms, Relation::LessEqual,
                         total * rng.uniform(0.4, 0.9));
  }
  return model;
}

// Small random MILP in the spirit of the existing brute-force suite.
Model random_milp(std::uint64_t seed) {
  util::Xoshiro256StarStar rng(seed);
  Model model;
  const int n = 6;
  std::vector<int> vars;
  for (int j = 0; j < n; ++j) {
    vars.push_back(model.add_integer("x" + std::to_string(j), 0.0, 3.0));
    model.set_objective(vars.back(), -rng.uniform(1.0, 6.0));
  }
  for (int c = 0; c < 3; ++c) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      terms.push_back({vars[static_cast<std::size_t>(j)], rng.uniform(0.5, 3.0)});
    }
    model.add_constraint(terms, Relation::LessEqual, rng.uniform(6.0, 14.0));
  }
  return model;
}

// ------------------------------------------------------ LP warm starts ----

TEST(WarmStart, ResolveFromOwnBasisSkipsToOptimal) {
  const Model model = random_lp(7);
  const Solution cold = solve_lp(model, {}, {}, {}, nullptr, true);
  ASSERT_EQ(cold.status, SolveStatus::Optimal);
  ASSERT_FALSE(cold.basis.empty());

  // Re-solving the identical problem from its own optimal basis must take
  // the warm path and no simplex pivots (refactorization work only).
  const Solution warm = solve_lp(model, {}, {}, {}, &cold.basis, true);
  ASSERT_EQ(warm.status, SolveStatus::Optimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_GT(warm.factor_pivots, 0);
  EXPECT_NEAR(warm.objective, cold.objective,
              kTol * (1.0 + std::abs(cold.objective)));
  EXPECT_LT(warm.simplex_iterations, cold.simplex_iterations);
}

TEST(WarmStart, TightenedBoundIsRepairedByDualSimplex) {
  const Model model = random_lp(11);
  const auto n = static_cast<std::size_t>(model.num_variables());
  const Solution cold = solve_lp(model, {}, {}, {}, nullptr, true);
  ASSERT_EQ(cold.status, SolveStatus::Optimal);

  // Branch-style tightening: clamp the largest flow below its LP value so
  // the parent basis is primal infeasible and must be repaired.
  std::vector<double> lower(n, 0.0);
  std::vector<double> upper(n);
  int fat = 0;
  for (std::size_t j = 0; j < n; ++j) {
    upper[j] = model.variable(static_cast<int>(j)).upper;
    if (cold.values[j] > cold.values[static_cast<std::size_t>(fat)]) {
      fat = static_cast<int>(j);
    }
  }
  ASSERT_GT(cold.values[static_cast<std::size_t>(fat)], 1.0);
  upper[static_cast<std::size_t>(fat)] =
      cold.values[static_cast<std::size_t>(fat)] * 0.5;

  const Solution warm = solve_lp(model, lower, upper, {}, &cold.basis, false);
  const Solution ref = solve_lp(model, lower, upper, {});
  ASSERT_EQ(ref.status, SolveStatus::Optimal);
  ASSERT_EQ(warm.status, ref.status);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_NEAR(warm.objective, ref.objective,
              kTol * (1.0 + std::abs(ref.objective)));
}

TEST(WarmStart, ShapeMismatchFallsBackToCold) {
  const Model small = random_lp(3);
  const Solution donor = solve_lp(small, {}, {}, {}, nullptr, true);
  ASSERT_EQ(donor.status, SolveStatus::Optimal);

  Model other = random_lp(4);
  other.add_continuous("extra", 0.0, 1.0);  // different shape
  const Solution sol = solve_lp(other, {}, {}, {}, &donor.basis, false);
  EXPECT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_FALSE(sol.warm_started);
}

TEST(WarmStart, SingularBasisFallsBackToCold) {
  // x + y <= 1 and x + y <= 2: declaring {x, y} basic makes the basis matrix
  // [[1,1],[1,1]], which is singular — the warm path must detect it during
  // refactorization and fall back without changing the answer.
  Model model;
  const int x = model.add_continuous("x", 0.0, 5.0);
  const int y = model.add_continuous("y", 0.0, 5.0);
  model.set_objective(x, -1.0);
  model.set_objective(y, -2.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 1.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 2.0);

  Basis singular;
  singular.structural = {VarState::Basic, VarState::Basic};
  singular.basic = {0, 1};
  const Solution sol = solve_lp(model, {}, {}, {}, &singular, false);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_FALSE(sol.warm_started);
  EXPECT_NEAR(sol.objective, -2.0, kTol);
}

TEST(WarmStart, DuplicateBasicColumnsRejected) {
  Model model;
  const int x = model.add_continuous("x", 0.0, 5.0);
  const int y = model.add_continuous("y", 0.0, 5.0);
  model.set_objective(x, -1.0);
  model.set_objective(y, -1.0);
  model.add_constraint({{x, 1.0}}, Relation::LessEqual, 2.0);
  model.add_constraint({{y, 1.0}}, Relation::LessEqual, 3.0);

  Basis bogus;
  bogus.structural = {VarState::Basic, VarState::AtLower};
  bogus.basic = {0, 0};  // same column claimed by both rows
  const Solution sol = solve_lp(model, {}, {}, {}, &bogus, false);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_FALSE(sol.warm_started);
  EXPECT_NEAR(sol.objective, -5.0, kTol);
}

TEST(WarmStart, InfeasibleChildIsDetectedOnWarmPath) {
  Model model;
  const int x = model.add_continuous("x", 0.0, 10.0);
  const int y = model.add_continuous("y", 0.0, 10.0);
  model.set_objective(x, 1.0);
  model.set_objective(y, 1.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::GreaterEqual, 8.0);
  const Solution parent = solve_lp(model, {}, {}, {}, nullptr, true);
  ASSERT_EQ(parent.status, SolveStatus::Optimal);

  // Child bounds leave at most 3 + 4 = 7 < 8 of mass: infeasible.
  const std::vector<double> lower{0.0, 0.0};
  const std::vector<double> upper{3.0, 4.0};
  const Solution warm = solve_lp(model, lower, upper, {}, &parent.basis, false);
  const Solution ref = solve_lp(model, lower, upper, {});
  EXPECT_EQ(ref.status, SolveStatus::Infeasible);
  EXPECT_EQ(warm.status, SolveStatus::Infeasible);
}

// Property sweep: branch-style bound tightenings solved warm must agree with
// the cold solver in status and objective, and save pivots in aggregate.
class WarmRandomLp : public ::testing::TestWithParam<int> {};

TEST_P(WarmRandomLp, WarmEqualsColdUnderBranching) {
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  const Model model = random_lp(static_cast<std::uint64_t>(GetParam()));
  const auto n = static_cast<std::size_t>(model.num_variables());
  const Solution root = solve_lp(model, {}, {}, {}, nullptr, true);
  ASSERT_EQ(root.status, SolveStatus::Optimal);

  std::int64_t warm_pivots = 0;
  std::int64_t cold_pivots = 0;
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> lower(n, 0.0);
    std::vector<double> upper(n);
    for (std::size_t j = 0; j < n; ++j) {
      upper[j] = model.variable(static_cast<int>(j)).upper;
    }
    // Tighten one or two random variables around the root LP value, the way
    // branching children do.
    const int cuts = 1 + static_cast<int>(rng.uniform_int(0, 2));
    for (int c = 0; c < cuts; ++c) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(n) - 1));
      if (rng.uniform(0.0, 1.0) < 0.5) {
        upper[j] = std::max(0.0, std::floor(root.values[j]));
      } else {
        lower[j] = std::min(upper[j], std::ceil(root.values[j]));
      }
    }

    const Solution warm = solve_lp(model, lower, upper, {}, &root.basis, false);
    const Solution cold = solve_lp(model, lower, upper, {});
    ASSERT_EQ(warm.status, cold.status) << "trial " << trial;
    if (cold.status == SolveStatus::Optimal) {
      EXPECT_NEAR(warm.objective, cold.objective,
                  kTol * (1.0 + std::abs(cold.objective)))
          << "trial " << trial;
      warm_pivots += warm.simplex_iterations;
      cold_pivots += cold.simplex_iterations;
    }
  }
  // The point of warm starts: far fewer pricing pivots than cold Phase I+II.
  EXPECT_LT(warm_pivots, cold_pivots);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmRandomLp, ::testing::Range(1, 21));

// --------------------------------------------- branch-and-bound parity ----

class WarmRandomMilp : public ::testing::TestWithParam<int> {};

TEST_P(WarmRandomMilp, WarmEqualsColdBitIdentical) {
  const Model model = random_milp(static_cast<std::uint64_t>(GetParam()));

  BranchAndBoundOptions cold_options;
  cold_options.warm_start = false;
  cold_options.wave_size = 1;  // the classic serial loop
  const Solution cold = solve_milp(model, cold_options);

  BranchAndBoundOptions warm_options;
  warm_options.warm_start = true;
  const Solution warm = solve_milp(model, warm_options);

  ASSERT_EQ(warm.status, cold.status);
  if (cold.usable()) {
    // Bit-identical, not approximately equal: the warm path must land on
    // exactly the same incumbent as the cold serial solver.
    EXPECT_EQ(warm.objective, cold.objective);
  }
  EXPECT_GT(warm.warm_lp_solves, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmRandomMilp, ::testing::Range(1, 21));

TEST(BranchAndBound, DeterministicAcrossThreadCounts) {
  for (const int seed : {2, 9, 14}) {
    const Model model = random_milp(static_cast<std::uint64_t>(seed));
    BranchAndBoundOptions options;  // warm starts + wave search on

    const Solution serial = solve_milp(model, options);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      runtime::ThreadPool pool(threads);
      BranchAndBoundOptions parallel = options;
      parallel.pool = &pool;
      const Solution sol = solve_milp(model, parallel);
      ASSERT_EQ(sol.status, serial.status) << threads << " threads";
      EXPECT_EQ(sol.objective, serial.objective) << threads << " threads";
      EXPECT_EQ(sol.values, serial.values) << threads << " threads";
      EXPECT_EQ(sol.nodes_explored, serial.nodes_explored)
          << threads << " threads";
      EXPECT_EQ(sol.simplex_iterations, serial.simplex_iterations)
          << threads << " threads";
      EXPECT_EQ(sol.best_bound, serial.best_bound) << threads << " threads";
    }
  }
}

TEST(BranchAndBound, ReportedGapAlwaysBracketsOptimum) {
  for (int seed = 1; seed <= 12; ++seed) {
    const Model model = random_milp(static_cast<std::uint64_t>(seed));
    const Solution exact = solve_milp(model);
    ASSERT_EQ(exact.status, SolveStatus::Optimal) << "seed " << seed;

    // Starve the search at several budgets; whatever it reports, the
    // [best_bound, objective] interval must contain the true optimum.
    for (const std::int64_t budget : {1, 2, 3, 5, 9}) {
      BranchAndBoundOptions options;
      options.max_nodes = budget;
      const Solution capped = solve_milp(model, options);
      if (!capped.usable()) continue;
      EXPECT_LE(capped.best_bound, exact.objective + kTol)
          << "seed " << seed << " budget " << budget;
      EXPECT_GE(capped.objective, exact.objective - kTol)
          << "seed " << seed << " budget " << budget;
      EXPECT_LE(capped.best_bound, capped.objective + kTol)
          << "seed " << seed << " budget " << budget;
    }
  }
}

TEST(BranchAndBound, SeedCandidateBecomesInitialIncumbent) {
  // Maximize sum over x_j in {0..3} with a loose constraint: optimum is all
  // at upper bound. Seeding that point should make node 1 prune instantly.
  Model model;
  std::vector<Term> terms;
  for (int j = 0; j < 4; ++j) {
    const int v = model.add_integer("x" + std::to_string(j), 0.0, 3.0);
    model.set_objective(v, -1.0);
    terms.push_back({v, 1.0});
  }
  model.add_constraint(terms, Relation::LessEqual, 12.0);

  BranchAndBoundOptions options;
  options.seed_candidate = {3.0, 3.0, 3.0, 3.0};
  const Solution sol = solve_milp(model, options);
  ASSERT_TRUE(sol.usable());
  EXPECT_NEAR(sol.objective, -12.0, kTol);

  // An infeasible seed must be ignored, not crash or corrupt the search.
  BranchAndBoundOptions bad;
  bad.seed_candidate = {99.0, 99.0, 99.0, 99.0};
  const Solution sol2 = solve_milp(model, bad);
  ASSERT_TRUE(sol2.usable());
  EXPECT_NEAR(sol2.objective, -12.0, kTol);
}

// --------------------------------------------------- slot-problem parity ----

TEST(SlotSequence, WarmParallelMatchesColdSerial) {
  const auto cluster = device::ClusterSpec::paper_small();
  const core::TirLookup lookup = [&](int k, int i, int j) {
    return cluster.oracle_tir(k, i, j);
  };
  runtime::ThreadPool pool(4);

  util::Xoshiro256StarStar rng(99);
  Basis prev_basis;
  std::int64_t warm_total_pivots = 0;
  std::int64_t cold_total_pivots = 0;
  for (int slot = 0; slot < 6; ++slot) {
    // Slowly drifting demand, as produced by consecutive scheduling slots.
    util::Grid2<std::int64_t> demand(cluster.num_apps(), cluster.num_devices(),
                                     0);
    for (int i = 0; i < cluster.num_apps(); ++i) {
      for (int k = 0; k < cluster.num_devices(); ++k) {
        demand(i, k) = 5 + static_cast<std::int64_t>(rng.uniform_int(0, 3));
      }
    }
    const core::BuiltProblem problem =
        core::build_slot_problem(cluster, demand, nullptr, lookup, {});

    BranchAndBoundOptions cold_options;
    cold_options.warm_start = false;
    cold_options.wave_size = 1;
    const Solution cold = solve_milp(problem.model, cold_options);

    BranchAndBoundOptions warm_options;
    warm_options.pool = &pool;
    if (prev_basis.matches(problem.model.num_variables(),
                           problem.model.num_constraints())) {
      warm_options.root_basis = &prev_basis;
    }
    const Solution warm = solve_milp(problem.model, warm_options);

    ASSERT_EQ(warm.status, cold.status) << "slot " << slot;
    if (cold.usable()) {
      // Slot problems have heavily degenerate alternate optima (several
      // serving plans tie at the optimal cost), so warm and cold may pick
      // different — equally optimal — incumbents. The optimal value itself
      // must agree to ULP scale; bit-identity of decisions is guaranteed
      // (and tested) across thread counts, where the search is literally
      // the same.
      EXPECT_NEAR(warm.objective, cold.objective,
                  1e-9 * (1.0 + std::abs(cold.objective)))
          << "slot " << slot;
    }
    warm_total_pivots += warm.simplex_iterations;
    cold_total_pivots += cold.simplex_iterations;
    if (!warm.basis.empty()) prev_basis = warm.basis;
  }
  // Cross-slot + parent-basis reuse must cut pricing pivots over the run.
  EXPECT_LT(warm_total_pivots, cold_total_pivots);
}

TEST(SlotSequence, SchedulerDecisionsUnchangedBySolverThreads) {
  // End-to-end: the scheduler with a solver pool must produce the same
  // decisions as the single-threaded scheduler, slot for slot.
  const auto cluster = device::ClusterSpec::paper_small();
  util::Xoshiro256StarStar rng(7);
  std::vector<util::Grid2<std::int64_t>> demands;
  for (int slot = 0; slot < 4; ++slot) {
    util::Grid2<std::int64_t> demand(cluster.num_apps(), cluster.num_devices(),
                                     0);
    for (int i = 0; i < cluster.num_apps(); ++i) {
      for (int k = 0; k < cluster.num_devices(); ++k) {
        demand(i, k) = 4 + static_cast<std::int64_t>(rng.uniform_int(0, 4));
      }
    }
    demands.push_back(demand);
  }

  const auto run = [&](int threads) {
    core::BirpConfig config;
    config.solver_threads = threads;
    auto scheduler = core::BirpScheduler::offline(cluster, config);
    std::vector<sim::SlotDecision> decisions;
    sim::SlotDecision previous(cluster.num_apps(),
                               cluster.zoo().max_variants(),
                               cluster.num_devices());
    for (int slot = 0; slot < static_cast<int>(demands.size()); ++slot) {
      sim::SlotState state;
      state.slot = slot;
      state.demand = demands[static_cast<std::size_t>(slot)];
      state.previous = slot == 0 ? nullptr : &previous;
      decisions.push_back(scheduler.decide(state));
      previous = decisions.back();
    }
    return decisions;
  };

  const auto serial = run(0);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t t = 0; t < serial.size(); ++t) {
    EXPECT_EQ(serial[t].served.raw(), parallel[t].served.raw())
        << "slot " << t;
    EXPECT_EQ(serial[t].kernel.raw(), parallel[t].kernel.raw())
        << "slot " << t;
    EXPECT_EQ(serial[t].drops.raw(), parallel[t].drops.raw()) << "slot " << t;
  }
}

// ---------------------------------------------- sparse/dense equivalence ----

class EngineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EngineEquivalence, StatusObjectiveAndDualsMatch) {
  const Model model = random_lp(static_cast<std::uint64_t>(GetParam()) + 100);
  SimplexOptions sparse_options;  // default: SparseRevised
  SimplexOptions dense_options;
  dense_options.algorithm = SimplexAlgorithm::DenseTableau;

  const Solution sparse = solve_lp(model, {}, {}, sparse_options);
  const Solution dense = solve_lp(model, {}, {}, dense_options);
  ASSERT_EQ(sparse.status, dense.status);
  if (sparse.status != SolveStatus::Optimal) return;
  EXPECT_NEAR(sparse.objective, dense.objective,
              kTol * (1.0 + std::abs(dense.objective)));
  ASSERT_EQ(sparse.duals.size(), dense.duals.size());
  for (std::size_t i = 0; i < sparse.duals.size(); ++i) {
    EXPECT_NEAR(sparse.duals[i], dense.duals[i], kTol) << "row " << i;
  }
}

TEST_P(EngineEquivalence, BasesCrossWarmBetweenEngines) {
  // The Basis encoding is engine-independent: an optimal basis emitted by
  // the dense tableau must warm-start the sparse engine and vice versa.
  const Model model = random_lp(static_cast<std::uint64_t>(GetParam()) + 200);
  SimplexOptions sparse_options;
  SimplexOptions dense_options;
  dense_options.algorithm = SimplexAlgorithm::DenseTableau;

  const Solution dense = solve_lp(model, {}, {}, dense_options, nullptr, true);
  ASSERT_EQ(dense.status, SolveStatus::Optimal);
  const Solution sparse_from_dense =
      solve_lp(model, {}, {}, sparse_options, &dense.basis, true);
  ASSERT_EQ(sparse_from_dense.status, SolveStatus::Optimal);
  EXPECT_TRUE(sparse_from_dense.warm_started);
  EXPECT_NEAR(sparse_from_dense.objective, dense.objective,
              kTol * (1.0 + std::abs(dense.objective)));

  const Solution dense_from_sparse = solve_lp(
      model, {}, {}, dense_options, &sparse_from_dense.basis, false);
  ASSERT_EQ(dense_from_sparse.status, SolveStatus::Optimal);
  EXPECT_TRUE(dense_from_sparse.warm_started);
  EXPECT_NEAR(dense_from_sparse.objective, dense.objective,
              kTol * (1.0 + std::abs(dense.objective)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalence, ::testing::Range(1, 13));

TEST(EngineEquivalence, RefactorIntervalOneMatchesDefault) {
  // Forcing a full refactorization after every pivot exercises the rebuild
  // path on each iteration; the answer must not move.
  const Model model = random_lp(42);
  SimplexOptions defaults;
  SimplexOptions eager;
  eager.refactor_interval = 1;

  const Solution base = solve_lp(model, {}, {}, defaults);
  const Solution rebuilt = solve_lp(model, {}, {}, eager);
  ASSERT_EQ(base.status, SolveStatus::Optimal);
  ASSERT_EQ(rebuilt.status, SolveStatus::Optimal);
  EXPECT_NEAR(rebuilt.objective, base.objective,
              kTol * (1.0 + std::abs(base.objective)));
}

// ------------------------------------------------- fallback accounting ----

TEST(WarmAccounting, SingularSeedChargesTheColdSolveOnce) {
  // A singular seed basis must leave warm_started false (so the scheduler
  // counts exactly one cold solve) and charge the aborted factorization's
  // eliminations to the cold Solution exactly once, on both engines.
  Model model;
  const int x = model.add_continuous("x", 0.0, 5.0);
  const int y = model.add_continuous("y", 0.0, 5.0);
  model.set_objective(x, -1.0);
  model.set_objective(y, -2.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 1.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 2.0);

  Basis singular;
  singular.structural = {VarState::Basic, VarState::Basic};
  singular.basic = {0, 1};

  for (const auto algorithm :
       {SimplexAlgorithm::SparseRevised, SimplexAlgorithm::DenseTableau}) {
    SimplexOptions options;
    options.algorithm = algorithm;
    const Solution sol = solve_lp(model, {}, {}, options, &singular, false);
    ASSERT_EQ(sol.status, SolveStatus::Optimal)
        << "algorithm " << static_cast<int>(algorithm);
    EXPECT_FALSE(sol.warm_started);
    // One pivot succeeded before the factorization hit the dependent
    // column; the cold solve itself starts from the identity basis.
    EXPECT_EQ(sol.factor_pivots, 1)
        << "algorithm " << static_cast<int>(algorithm);
  }
}

TEST(WarmAccounting, DisabledWarmStartCountsEveryNodeCold) {
  const Model model = random_milp(13);
  BranchAndBoundOptions options;
  options.warm_start = false;
  const Solution sol = solve_milp(model, options);
  ASSERT_TRUE(sol.usable());
  EXPECT_EQ(sol.warm_lp_solves, 0);
  EXPECT_GT(sol.cold_lp_solves, 0);
}

TEST(WarmAccounting, WarmAndColdPartitionNodeSolves) {
  // Every node LP is counted exactly once, as warm or cold — never both,
  // never neither — so the two counters always sum to the same total for
  // the same search tree (warm on/off changes which bucket, not the sum).
  const Model model = random_milp(17);

  BranchAndBoundOptions cold_options;
  cold_options.warm_start = false;
  cold_options.wave_size = 1;
  const Solution cold = solve_milp(model, cold_options);
  ASSERT_TRUE(cold.usable());
  EXPECT_EQ(cold.warm_lp_solves, 0);

  BranchAndBoundOptions warm_options;
  warm_options.warm_start = true;
  warm_options.wave_size = 1;
  const Solution warm = solve_milp(model, warm_options);
  ASSERT_TRUE(warm.usable());
  EXPECT_GT(warm.warm_lp_solves, 0);
  EXPECT_EQ(warm.warm_lp_solves + warm.cold_lp_solves,
            cold.warm_lp_solves + cold.cold_lp_solves);
}

}  // namespace
}  // namespace birp::solver
