// Tests for the application / model-variant zoo.
#include <set>

#include <gtest/gtest.h>

#include "birp/model/zoo.hpp"

namespace birp::model {
namespace {

TEST(Zoo, StandardMatchesPaperScale) {
  const auto zoo = Zoo::standard();
  EXPECT_EQ(zoo.num_apps(), 5);
  EXPECT_EQ(zoo.max_variants(), 5);
  EXPECT_EQ(zoo.total_variants(), 25);
  for (int i = 0; i < zoo.num_apps(); ++i) EXPECT_EQ(zoo.num_variants(i), 5);
}

TEST(Zoo, SmallScaleMatchesPaperScale) {
  const auto zoo = Zoo::small_scale();
  EXPECT_EQ(zoo.num_apps(), 1);
  EXPECT_EQ(zoo.num_variants(0), 3);
}

TEST(Zoo, SweepScaleIsMidSize) {
  const auto zoo = Zoo::sweep_scale();
  EXPECT_EQ(zoo.num_apps(), 3);
  EXPECT_EQ(zoo.total_variants(), 9);
}

TEST(Zoo, DeterministicConstruction) {
  const auto a = Zoo::standard();
  const auto b = Zoo::standard();
  for (int i = 0; i < a.num_apps(); ++i) {
    for (int j = 0; j < a.num_variants(i); ++j) {
      EXPECT_DOUBLE_EQ(a.variant(i, j).loss, b.variant(i, j).loss);
      EXPECT_DOUBLE_EQ(a.variant(i, j).weights_mb, b.variant(i, j).weights_mb);
    }
  }
}

TEST(Zoo, BestAndWorstLoss) {
  const auto zoo = Zoo::standard();
  for (int i = 0; i < zoo.num_apps(); ++i) {
    const double best = zoo.best_loss(i);
    const double worst = zoo.worst_loss(i);
    EXPECT_LT(best, worst);
    for (int j = 0; j < zoo.num_variants(i); ++j) {
      EXPECT_GE(zoo.variant(i, j).loss, best);
      EXPECT_LE(zoo.variant(i, j).loss, worst);
    }
  }
}

TEST(Zoo, IndexValidation) {
  const auto zoo = Zoo::standard();
  EXPECT_THROW((void)zoo.app(-1), std::logic_error);
  EXPECT_THROW((void)zoo.app(99), std::logic_error);
  EXPECT_THROW((void)zoo.variant(0, 99), std::logic_error);
}

TEST(Zoo, RejectsSparseIds) {
  Application app;
  app.id = 3;  // must be 0
  app.variants.push_back({});
  EXPECT_THROW(Zoo({app}), std::logic_error);
}

TEST(Zoo, RejectsEmpty) {
  EXPECT_THROW(Zoo({}), std::logic_error);
}

// Parameter ranges stated in the paper's experiment setup (section 5.1).
class ZooRanges : public ::testing::TestWithParam<int> {};

TEST_P(ZooRanges, VariantParametersWithinPaperRanges) {
  const auto zoo = Zoo::standard();
  const int i = GetParam();
  for (int j = 0; j < zoo.num_variants(i); ++j) {
    const auto& v = zoo.variant(i, j);
    EXPECT_GE(v.loss, 0.15) << v.name;
    EXPECT_LE(v.loss, 0.49) << v.name;
    EXPECT_GE(v.base_latency_ms, 18.0) << v.name;
    EXPECT_LE(v.base_latency_ms, 770.0) << v.name;
    EXPECT_GE(v.weights_mb, 33.0) << v.name;
    EXPECT_LE(v.weights_mb, 550.0) << v.name;
    EXPECT_GE(v.compressed_mb, 7.0) << v.name;
    EXPECT_LE(v.compressed_mb, 98.0) << v.name;
    EXPECT_GE(v.intermediate_mb, 55.0) << v.name;
    EXPECT_LE(v.intermediate_mb, 480.0) << v.name;
  }
  const auto& app = zoo.app(i);
  EXPECT_GE(app.request_mb, 0.2);
  EXPECT_LE(app.request_mb, 3.0);
  EXPECT_DOUBLE_EQ(app.slo_fraction, 1.0);
}

TEST_P(ZooRanges, LadderIsMonotone) {
  // Larger variants: lower loss, higher latency, more memory.
  const auto zoo = Zoo::standard();
  const int i = GetParam();
  for (int j = 1; j < zoo.num_variants(i); ++j) {
    const auto& small = zoo.variant(i, j - 1);
    const auto& large = zoo.variant(i, j);
    EXPECT_LT(large.loss, small.loss) << "app " << i << " step " << j;
    EXPECT_GT(large.base_latency_ms, small.base_latency_ms);
    EXPECT_GT(large.weights_mb, small.weights_mb);
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, ZooRanges, ::testing::Range(0, 5));

TEST(Zoo, AppNamesAreDistinct) {
  const auto zoo = Zoo::standard();
  std::set<std::string> names;
  for (const auto& app : zoo.apps()) names.insert(app.name);
  EXPECT_EQ(names.size(), static_cast<std::size_t>(zoo.num_apps()));
}

TEST(Zoo, SyntheticMatchesRequestedScaleDeterministically) {
  const auto zoo = Zoo::synthetic(12, 3, 0x1234);
  EXPECT_EQ(zoo.num_apps(), 12);
  EXPECT_EQ(zoo.max_variants(), 3);
  for (int i = 0; i < zoo.num_apps(); ++i) {
    EXPECT_EQ(zoo.num_variants(i), 3);
    EXPECT_GT(zoo.app(i).request_mb, 0.0);
  }
  const auto again = Zoo::synthetic(12, 3, 0x1234);
  for (int i = 0; i < zoo.num_apps(); ++i) {
    for (int j = 0; j < zoo.num_variants(i); ++j) {
      EXPECT_DOUBLE_EQ(zoo.variant(i, j).loss, again.variant(i, j).loss);
      EXPECT_DOUBLE_EQ(zoo.variant(i, j).weights_mb,
                       again.variant(i, j).weights_mb);
    }
  }
  const auto other = Zoo::synthetic(12, 3, 0x9999);
  bool any_diff = false;
  for (int i = 0; i < zoo.num_apps() && !any_diff; ++i) {
    for (int j = 0; j < zoo.num_variants(i) && !any_diff; ++j) {
      any_diff = zoo.variant(i, j).loss != other.variant(i, j).loss;
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace birp::model
