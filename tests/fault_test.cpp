// Tests for fault injection (FaultPlan), failover re-admission
// (FailoverPolicy), and their integration with the slot simulator, the
// serving engine, and the BIRP scheduler's liveness masking.
#include <algorithm>
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"
#include "birp/fault/failover.hpp"
#include "birp/fault/fault_plan.hpp"
#include "birp/serve/engine.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/workload/trace.hpp"

namespace birp::fault {
namespace {

device::ClusterSpec small_cluster(double tau = 6.0) {
  return device::ClusterSpec(device::one_of_each(), model::Zoo::small_scale(),
                             tau, 0x7e57);
}

workload::Trace uniform_trace(const device::ClusterSpec& cluster, int slots,
                              std::int64_t per_cell) {
  workload::Trace trace(slots, cluster.num_apps(), cluster.num_devices());
  for (int t = 0; t < slots; ++t) {
    for (int i = 0; i < cluster.num_apps(); ++i) {
      for (int k = 0; k < cluster.num_devices(); ++k) {
        trace.set(t, i, k, per_cell);
      }
    }
  }
  return trace;
}

/// Serves all local demand with variant 0 (batch == demand, capped at 16).
class LocalGreedyScheduler : public sim::Scheduler {
 public:
  explicit LocalGreedyScheduler(const device::ClusterSpec& cluster)
      : cluster_(cluster) {}
  [[nodiscard]] std::string name() const override { return "local-greedy"; }
  [[nodiscard]] sim::SlotDecision decide(const sim::SlotState& state) override {
    sim::SlotDecision decision(cluster_.num_apps(),
                               cluster_.zoo().max_variants(),
                               cluster_.num_devices());
    for (int i = 0; i < cluster_.num_apps(); ++i) {
      for (int k = 0; k < cluster_.num_devices(); ++k) {
        const auto demand = state.demand(i, k);
        const auto take = std::min<std::int64_t>(demand, 16);
        decision.served(i, 0, k) = take;
        decision.kernel(i, 0, k) =
            static_cast<int>(std::max<std::int64_t>(take, 1));
        decision.drops(i, k) = demand - take;
      }
    }
    return decision;
  }

 private:
  const device::ClusterSpec& cluster_;
};

// ------------------------------------------------------------ fault plan ----

TEST(FaultPlan, QueriesReflectEvents) {
  FaultPlan plan;
  plan.add_down(1, 5, 8);  // [5, 8)
  plan.add_bandwidth(0, 2, 10, 0.5);
  plan.add_bandwidth(0, 4, 6, 0.4);  // overlap: combines multiplicatively
  plan.add_straggler(2, 0, 4, 2.0);

  EXPECT_FALSE(plan.is_down(1, 4));
  EXPECT_TRUE(plan.is_down(1, 5));
  EXPECT_TRUE(plan.is_down(1, 7));
  EXPECT_FALSE(plan.is_down(1, 8));  // to_slot exclusive
  EXPECT_FALSE(plan.is_down(0, 6));  // other device untouched

  EXPECT_DOUBLE_EQ(plan.bandwidth_factor(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(plan.bandwidth_factor(0, 3), 0.5);
  EXPECT_DOUBLE_EQ(plan.bandwidth_factor(0, 5), 0.5 * 0.4);
  EXPECT_DOUBLE_EQ(plan.bandwidth_factor(1, 3), 1.0);

  EXPECT_DOUBLE_EQ(plan.straggler_factor(2, 3), 2.0);
  EXPECT_DOUBLE_EQ(plan.straggler_factor(2, 4), 1.0);

  const auto mask = plan.up_mask(3, 6);
  ASSERT_EQ(mask.size(), 3u);
  EXPECT_EQ(mask[0], 1);
  EXPECT_EQ(mask[1], 0);
  EXPECT_EQ(mask[2], 1);

  EXPECT_EQ(plan.down_slots(1, 100), 3);
  EXPECT_EQ(plan.down_slots(0, 100), 0);
}

TEST(FaultPlan, BandwidthFloorHoldsUnderStackedDips) {
  FaultPlan plan;
  for (int e = 0; e < 8; ++e) plan.add_bandwidth(0, 0, 5, 0.1);
  EXPECT_GE(plan.bandwidth_factor(0, 2), 0.01);
}

TEST(FaultPlan, RejectsInvalidEvents) {
  FaultPlan plan;
  EXPECT_THROW(plan.add_down(-1, 0, 5), std::logic_error);
  EXPECT_THROW(plan.add_down(0, 5, 5), std::logic_error);  // empty interval
  EXPECT_THROW(plan.add_bandwidth(0, 0, 5, 0.0), std::logic_error);
  EXPECT_THROW(plan.add_bandwidth(0, 0, 5, 1.5), std::logic_error);
  EXPECT_THROW(plan.add_straggler(0, 0, 5, 0.9), std::logic_error);
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, CsvRoundTrips) {
  FaultPlan plan;
  plan.add_down(2, 10, 40);
  plan.add_bandwidth(0, 5, 25, 0.375);
  plan.add_straggler(1, 0, 100, 2.25);

  std::ostringstream out;
  plan.write_csv(out);
  const auto reparsed = FaultPlan::from_csv(out.str());
  EXPECT_EQ(reparsed, plan);

  // CRLF line endings and a missing trailing newline both parse the same.
  std::string crlf;
  for (const char c : out.str()) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  EXPECT_EQ(FaultPlan::from_csv(crlf), plan);
  std::string no_trailing = out.str();
  while (!no_trailing.empty() && no_trailing.back() == '\n') {
    no_trailing.pop_back();
  }
  EXPECT_EQ(FaultPlan::from_csv(no_trailing), plan);
}

TEST(FaultPlan, GenerateIsDeterministic) {
  FaultPlanOptions options;
  options.slots = 400;
  options.devices = 5;
  options.crash_rate = 0.01;
  options.degrade_rate = 0.01;
  options.straggler_rate = 0.01;
  const auto a = FaultPlan::generate(options);
  const auto b = FaultPlan::generate(options);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());

  options.seed ^= 0x1234;
  const auto c = FaultPlan::generate(options);
  EXPECT_NE(c, a);

  FaultPlanOptions quiet;
  quiet.slots = 400;
  quiet.devices = 5;
  EXPECT_TRUE(FaultPlan::generate(quiet).empty());  // all rates zero
}

TEST(FaultPlan, CanonicalScenarios) {
  const auto crash = FaultPlan::single_edge_crash(1, 10, 20);
  EXPECT_EQ(crash.down_slots(1, 100), 10);
  EXPECT_FALSE(crash.is_down(1, 9));
  EXPECT_TRUE(crash.is_down(1, 10));

  const auto flap = FaultPlan::flapping_edge(0, 5, 25, 2, 3);
  // down [5,7) up [7,10) down [10,12) up [12,15) down [15,17) ...
  EXPECT_TRUE(flap.is_down(0, 5));
  EXPECT_FALSE(flap.is_down(0, 7));
  EXPECT_TRUE(flap.is_down(0, 10));
  EXPECT_FALSE(flap.is_down(0, 13));
  EXPECT_FALSE(flap.is_down(0, 30));  // beyond the horizon

  const auto degraded = FaultPlan::degraded_bandwidth(2, 0, 50, 0.3);
  EXPECT_DOUBLE_EQ(degraded.bandwidth_factor(2, 25), 0.3);
  EXPECT_EQ(degraded.down_slots(2, 50), 0);
}

TEST(FaultPlan, UpRescuePunchesThroughDown) {
  FaultPlan plan;
  plan.add_down(0, 10, 20);
  plan.add_up(0, 14, 16);  // transient recovery mid-outage
  EXPECT_TRUE(plan.is_down(0, 13));
  EXPECT_FALSE(plan.is_down(0, 14));
  EXPECT_FALSE(plan.is_down(0, 15));
  EXPECT_TRUE(plan.is_down(0, 16));  // relapse: the outage resumes
  EXPECT_TRUE(plan.is_down(0, 19));
  EXPECT_FALSE(plan.is_down(0, 20));
  // The rescue window is interval-scoped: it cannot mask a later outage.
  plan.add_down(0, 30, 35);
  EXPECT_TRUE(plan.is_down(0, 32));
  // Rescued slots count as up in the mask and the downtime tally.
  EXPECT_EQ(plan.up_mask(1, 15)[0], 1);
  EXPECT_EQ(plan.up_mask(1, 17)[0], 0);
  EXPECT_EQ(plan.down_slots(0, 40), 8 + 5);
}

TEST(FaultPlan, RootCauseLabelsCountIncidents) {
  FaultPlan plan;
  EXPECT_EQ(plan.num_incidents(), 0);
  plan.add(FaultEvent{FaultKind::kDown, 0, 5, 15, 1.0, /*root_cause=*/7});
  plan.add(FaultEvent{FaultKind::kDown, 1, 5, 18, 1.0, /*root_cause=*/7});
  plan.add(FaultEvent{FaultKind::kBandwidth, 2, 5, 15, 0.5, /*root_cause=*/7});
  plan.add(FaultEvent{FaultKind::kDown, 3, 40, 50, 1.0, /*root_cause=*/9});
  plan.add_down(4, 60, 65);  // uncorrelated: root_cause = -1
  EXPECT_EQ(plan.num_incidents(), 2);
}

TEST(FaultPlan, GenerateCorrelatedIsDeterministicAndLabeled) {
  CorrelatedFailureOptions options;
  options.slots = 200;
  options.devices = 24;
  options.group_size = 6;
  options.storm_rate = 0.05;
  options.group_fraction = 0.75;
  options.rescue_fraction = 0.5;
  const auto a = FaultPlan::generate_correlated(options);
  const auto b = FaultPlan::generate_correlated(options);
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  EXPECT_GE(a.num_incidents(), 1);

  options.seed ^= 0xbeef;
  EXPECT_NE(FaultPlan::generate_correlated(options), a);

  // Every generated event belongs to a labeled incident, victims of one
  // incident share its rack, and rescue windows sit inside their outage.
  bool saw_up = false;
  for (const auto& event : a.events()) {
    EXPECT_GE(event.root_cause, 0);
    if (event.kind == FaultKind::kUp) {
      saw_up = true;
      bool inside = false;
      for (const auto& other : a.events()) {
        if (other.kind == FaultKind::kDown && other.device == event.device &&
            other.root_cause == event.root_cause &&
            other.from_slot < event.from_slot &&
            event.to_slot < other.to_slot) {
          inside = true;
        }
      }
      EXPECT_TRUE(inside) << "kUp rescue outside its outage interval";
    }
  }
  EXPECT_TRUE(saw_up);  // rescue_fraction = 0.5 over several storms
}

TEST(FaultPlan, CsvRoundTripsRootCauseAndAcceptsLegacyLayout) {
  FaultPlan plan;
  plan.add(FaultEvent{FaultKind::kDown, 2, 10, 40, 1.0, /*root_cause=*/3});
  plan.add(FaultEvent{FaultKind::kUp, 2, 20, 22, 1.0, /*root_cause=*/3});
  plan.add_bandwidth(0, 5, 25, 0.375);

  std::ostringstream out;
  plan.write_csv(out);
  EXPECT_NE(out.str().find("root_cause"), std::string::npos);
  EXPECT_EQ(FaultPlan::from_csv(out.str()), plan);

  // Legacy 5-column layout (pre-root-cause) parses with root_cause = -1.
  const auto legacy = FaultPlan::from_csv(
      "kind,device,from_slot,to_slot,factor\n"
      "down,1,2,5,1\n"
      "bandwidth,0,3,9,0.5\n");
  FaultPlan expected;
  expected.add_down(1, 2, 5);
  expected.add_bandwidth(0, 3, 9, 0.5);
  EXPECT_EQ(legacy, expected);
}

// -------------------------------------------------------------- failover ----

TEST(FailoverPolicy, DisabledDropsEverything) {
  FailoverPolicy policy(FailoverConfig{}, 2, 3);
  EXPECT_FALSE(policy.enabled());
  const auto outcome = policy.on_orphans(0, 1, 7);
  EXPECT_EQ(outcome.retried, 0);
  EXPECT_EQ(outcome.dropped, 7);
  const auto& readmit = policy.begin_slot(1, {1, 1, 1});
  for (int i = 0; i < 2; ++i) {
    for (int k = 0; k < 3; ++k) EXPECT_EQ(readmit(i, k), 0);
  }
  EXPECT_EQ(policy.total_retries(), 0);
}

TEST(FailoverPolicy, ReadmitsOnceThenDropsAtBudget) {
  FailoverConfig config;
  config.enabled = true;
  config.retry_budget = 1;
  FailoverPolicy policy(config, 1, 3);

  policy.begin_slot(0, {1, 0, 1});  // slot 0: edge 1 down
  const auto first = policy.on_orphans(0, 1, 6);
  EXPECT_EQ(first.retried, 6);
  EXPECT_EQ(first.dropped, 0);

  // Slot 1: the 6 orphans are re-admitted across the two up edges,
  // round-robin — the split is even to within one request.
  const auto& readmit = policy.begin_slot(1, {1, 0, 1});
  EXPECT_EQ(readmit(0, 1), 0);  // never to a down edge
  EXPECT_EQ(readmit(0, 0) + readmit(0, 2), 6);
  EXPECT_LE(std::abs(readmit(0, 0) - readmit(0, 2)), 1);
  EXPECT_EQ(policy.total_retries(), 6);

  // The re-admission target fails too: the cohort is past its budget.
  const auto again = policy.on_orphans(0, 0, readmit(0, 0));
  EXPECT_EQ(again.retried, 0);
  EXPECT_EQ(again.dropped, readmit(0, 0));
  EXPECT_EQ(policy.drain_pending(), 0);
}

TEST(FailoverPolicy, FreshOrphansAtRetriedCellAreBudgetedSeparately) {
  // A cell can hold both a re-admitted cohort and fresh arrivals; orphans
  // there consume the re-admitted (highest-attempt) cohort first, and only
  // the remainder counts as fresh first-attempt orphans.
  FailoverConfig config;
  config.enabled = true;
  config.retry_budget = 1;
  FailoverPolicy policy(config, 1, 2);
  policy.begin_slot(0, {1, 1});
  EXPECT_EQ(policy.on_orphans(0, 1, 4).retried, 4);
  const auto& readmit = policy.begin_slot(1, {1, 0});  // all 4 land on edge 0
  ASSERT_EQ(readmit(0, 0), 4);
  // 10 orphans at edge 0: 4 are the spent cohort (dropped), 6 are fresh.
  const auto outcome = policy.on_orphans(0, 0, 10);
  EXPECT_EQ(outcome.dropped, 4);
  EXPECT_EQ(outcome.retried, 6);
}

TEST(FailoverPolicy, NoUpEdgeKeepsOrphansPending) {
  FailoverConfig config;
  config.enabled = true;
  FailoverPolicy policy(config, 1, 2);
  policy.begin_slot(0, {0, 1});
  EXPECT_EQ(policy.on_orphans(0, 0, 3).retried, 3);

  const auto& blackout = policy.begin_slot(1, {0, 0});  // nobody up
  EXPECT_EQ(blackout(0, 0) + blackout(0, 1), 0);

  const auto& recovered = policy.begin_slot(2, {0, 1});
  EXPECT_EQ(recovered(0, 1), 3);  // still waiting, injected when possible
  EXPECT_EQ(recovered(0, 0), 0);
}

TEST(FailoverPolicy, DrainPendingFlushesWaitingOrphans) {
  FailoverConfig config;
  config.enabled = true;
  FailoverPolicy policy(config, 1, 2);
  policy.begin_slot(0, {1, 1});
  EXPECT_EQ(policy.on_orphans(0, 0, 5).retried, 5);
  EXPECT_EQ(policy.drain_pending(), 5);  // horizon ended before re-admission
  EXPECT_EQ(policy.drain_pending(), 0);  // idempotent
}

// ------------------------------------------------- simulator integration ----

TEST(SimFault, EmptyPlanIsBitIdenticalToDefaultConfig) {
  const auto cluster = small_cluster();
  const auto trace = uniform_trace(cluster, 6, 8);
  sim::SimulatorConfig plain;
  sim::SimulatorConfig gated;
  gated.failover.enabled = true;  // enabled but no faults: must change nothing
  LocalGreedyScheduler s1(cluster);
  LocalGreedyScheduler s2(cluster);
  const auto a = sim::Simulator(cluster, trace, plain).run(s1);
  const auto b = sim::Simulator(cluster, trace, gated).run(s2);
  EXPECT_DOUBLE_EQ(a.total_loss(), b.total_loss());
  EXPECT_EQ(a.slo_failures(), b.slo_failures());
  EXPECT_DOUBLE_EQ(a.completion().quantile(0.5), b.completion().quantile(0.5));
  EXPECT_DOUBLE_EQ(a.total_energy_j(), b.total_energy_j());
  EXPECT_EQ(b.orphan_dropped(), 0);
  EXPECT_EQ(b.retries(), 0);
  EXPECT_DOUBLE_EQ(b.availability_percent(), 100.0);
}

TEST(SimFault, CrashOrphansAreAccountedAndConserved) {
  const auto cluster = small_cluster();
  const auto trace = uniform_trace(cluster, 5, 5);
  sim::SimulatorConfig config;
  config.noise_sigma = 0.0;
  config.fault_plan = FaultPlan::single_edge_crash(1, 1, 3);
  LocalGreedyScheduler scheduler(cluster);
  const auto metrics = sim::Simulator(cluster, trace, config).run(scheduler);

  // Every request resolves exactly once: served, dropped, or orphaned.
  EXPECT_EQ(metrics.total_requests(), trace.total());
  // All of the down edge's demand during the outage is orphaned.
  EXPECT_EQ(metrics.orphan_dropped(),
            5 * static_cast<std::int64_t>(cluster.num_apps()) * 2);
  EXPECT_EQ(metrics.retries(), 0);  // failover disabled
  EXPECT_EQ(metrics.downtime_slots(1), 2);
  EXPECT_EQ(metrics.downtime_slots(0), 0);
  EXPECT_LT(metrics.availability_percent(), 100.0);
  EXPECT_EQ(metrics.sampled_edges(), cluster.num_devices());
}

TEST(SimFault, FailoverStrictlyReducesSloFailures) {
  const auto cluster = small_cluster();
  const auto trace = uniform_trace(cluster, 6, 5);
  sim::SimulatorConfig config;
  config.noise_sigma = 0.0;
  config.fault_plan = FaultPlan::single_edge_crash(1, 1, 3);

  LocalGreedyScheduler s1(cluster);
  const auto no_failover = sim::Simulator(cluster, trace, config).run(s1);

  config.failover.enabled = true;
  LocalGreedyScheduler s2(cluster);
  const auto with_failover = sim::Simulator(cluster, trace, config).run(s2);

  EXPECT_GT(with_failover.retries(), 0);
  EXPECT_LT(with_failover.slo_failures(), no_failover.slo_failures());
  EXPECT_LT(with_failover.orphan_dropped(), no_failover.orphan_dropped());
  EXPECT_EQ(with_failover.total_requests(), trace.total());
}

TEST(SimFault, DeterministicAcrossThreadCounts) {
  const auto cluster = small_cluster();
  const auto trace = uniform_trace(cluster, 8, 6);
  sim::SimulatorConfig config;
  config.fault_plan = FaultPlan::flapping_edge(2, 1, 8, 2, 2);
  config.fault_plan.add_bandwidth(0, 0, 8, 0.5);
  config.fault_plan.add_straggler(1, 0, 8, 1.5);
  config.failover.enabled = true;

  sim::SimulatorConfig one = config;
  one.threads = 1;
  sim::SimulatorConfig many = config;
  many.threads = 4;
  LocalGreedyScheduler s1(cluster);
  LocalGreedyScheduler s2(cluster);
  const auto a = sim::Simulator(cluster, trace, one).run(s1);
  const auto b = sim::Simulator(cluster, trace, many).run(s2);
  EXPECT_DOUBLE_EQ(a.total_loss(), b.total_loss());
  EXPECT_EQ(a.slo_failures(), b.slo_failures());
  EXPECT_EQ(a.orphan_dropped(), b.orphan_dropped());
  EXPECT_EQ(a.retries(), b.retries());
  EXPECT_DOUBLE_EQ(a.completion().quantile(0.5), b.completion().quantile(0.5));
}

TEST(SimFault, StragglerStretchesBusyTime) {
  const auto cluster = small_cluster();
  const auto trace = uniform_trace(cluster, 1, 6);
  sim::SimulatorConfig clean;
  clean.noise_sigma = 0.0;
  sim::SimulatorConfig slow = clean;
  slow.fault_plan.add_straggler(0, 0, 1, 2.0);
  LocalGreedyScheduler s1(cluster);
  LocalGreedyScheduler s2(cluster);
  metrics::RunMetrics m1;
  metrics::RunMetrics m2;
  const auto r1 = sim::Simulator(cluster, trace, clean).step(s1, &m1);
  const auto r2 = sim::Simulator(cluster, trace, slow).step(s2, &m2);
  EXPECT_NEAR(r2.feedback.busy_s[0], 2.0 * r1.feedback.busy_s[0], 1e-9);
  EXPECT_NEAR(r2.feedback.busy_s[1], r1.feedback.busy_s[1], 1e-9);
}

// -------------------------------------------------- scheduler liveness ----

TEST(BirpMasking, DownEdgeServesAndFlowsNothing) {
  const auto cluster = small_cluster();
  core::BirpScheduler scheduler(cluster);
  sim::SlotState state;
  state.slot = 0;
  state.demand = util::Grid2<std::int64_t>(cluster.num_apps(),
                                           cluster.num_devices(), 6);
  state.edge_up.assign(static_cast<std::size_t>(cluster.num_devices()), 1);
  state.edge_up[1] = 0;
  const auto decision = scheduler.decide(state);
  for (int i = 0; i < cluster.num_apps(); ++i) {
    for (int j = 0; j < cluster.zoo().max_variants(); ++j) {
      EXPECT_EQ(decision.served(i, j, 1), 0);
    }
    EXPECT_EQ(decision.imports(i, 1), 0);
    EXPECT_EQ(decision.exports(i, 1), 0);
    EXPECT_EQ(decision.drops(i, 1), 6);  // conservation forces drops
  }
}

// ---------------------------------------------- serve-engine integration ----

TEST(ServeFault, EmptyPlanIsBitIdenticalToDefaultConfig) {
  const auto cluster = small_cluster();
  const auto trace = uniform_trace(cluster, 4, 6);
  serve::ServeConfig plain;
  serve::ServeConfig gated;
  gated.failover.enabled = true;
  LocalGreedyScheduler s1(cluster);
  LocalGreedyScheduler s2(cluster);
  serve::ServeEngine e1(cluster, trace, plain);
  serve::ServeEngine e2(cluster, trace, gated);
  const auto a = e1.run(s1);
  const auto b = e2.run(s2);
  EXPECT_DOUBLE_EQ(a.total_loss(), b.total_loss());
  EXPECT_EQ(a.slo_failures(), b.slo_failures());
  EXPECT_DOUBLE_EQ(a.latency_quantile(0.5), b.latency_quantile(0.5));
  EXPECT_EQ(b.orphan_dropped(), 0);
  EXPECT_DOUBLE_EQ(b.availability_percent(), 100.0);
}

TEST(ServeFault, CrashConservesRequests) {
  const auto cluster = small_cluster();
  const auto trace = uniform_trace(cluster, 5, 5);
  serve::ServeConfig config;
  config.noise_sigma = 0.0;
  config.fault_plan = FaultPlan::single_edge_crash(1, 1, 3);
  LocalGreedyScheduler scheduler(cluster);
  serve::ServeEngine engine(cluster, trace, config);
  const auto metrics = engine.run(scheduler);
  EXPECT_EQ(metrics.total_requests(), trace.total());
  EXPECT_EQ(metrics.orphan_dropped(),
            5 * static_cast<std::int64_t>(cluster.num_apps()) * 2);
  EXPECT_EQ(metrics.downtime_slots(1), 2);
  EXPECT_LT(metrics.availability_percent(), 100.0);
}

TEST(ServeFault, FailoverStrictlyReducesSloFailures) {
  const auto cluster = small_cluster();
  const auto trace = uniform_trace(cluster, 6, 5);
  serve::ServeConfig config;
  config.noise_sigma = 0.0;
  config.fault_plan = FaultPlan::single_edge_crash(1, 1, 3);

  LocalGreedyScheduler s1(cluster);
  serve::ServeEngine e1(cluster, trace, config);
  const auto no_failover = e1.run(s1);

  config.failover.enabled = true;
  LocalGreedyScheduler s2(cluster);
  serve::ServeEngine e2(cluster, trace, config);
  const auto with_failover = e2.run(s2);

  EXPECT_GT(with_failover.retries(), 0);
  EXPECT_LT(with_failover.slo_failures(), no_failover.slo_failures());
  EXPECT_LT(with_failover.orphan_dropped(), no_failover.orphan_dropped());
  EXPECT_EQ(with_failover.total_requests(), trace.total());
}

TEST(ServeFault, SameSeedIsBitIdentical) {
  const auto cluster = small_cluster();
  const auto trace = uniform_trace(cluster, 6, 6);
  serve::ServeConfig config;
  config.fault_plan = FaultPlan::flapping_edge(0, 1, 6, 1, 2);
  config.fault_plan.add_bandwidth(1, 0, 6, 0.6);
  config.failover.enabled = true;
  serve::ServeConfig one = config;
  one.threads = 1;
  serve::ServeConfig many = config;
  many.threads = 4;
  LocalGreedyScheduler s1(cluster);
  LocalGreedyScheduler s2(cluster);
  serve::ServeEngine e1(cluster, trace, one);
  serve::ServeEngine e2(cluster, trace, many);
  const auto a = e1.run(s1);
  const auto b = e2.run(s2);
  EXPECT_DOUBLE_EQ(a.total_loss(), b.total_loss());
  EXPECT_EQ(a.slo_failures(), b.slo_failures());
  EXPECT_EQ(a.orphan_dropped(), b.orphan_dropped());
  EXPECT_EQ(a.retries(), b.retries());
  EXPECT_DOUBLE_EQ(a.latency_quantile(0.95), b.latency_quantile(0.95));
}

}  // namespace
}  // namespace birp::fault
