// Tests for the self-healing cluster control plane: HealthTracker hysteresis
// and MTTR accounting, live repartitioning with estimator-state handoff, the
// cell-level degraded-operation watchdog, chaos-regime conservation and
// determinism, and the flash-crowd trace stressor.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "birp/cluster/cell_scheduler.hpp"
#include "birp/cluster/control_plane.hpp"
#include "birp/cluster/health.hpp"
#include "birp/cluster/partition.hpp"
#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"
#include "birp/fault/fault_plan.hpp"
#include "birp/metrics/run_metrics.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/workload/generator.hpp"
#include "birp/workload/topology.hpp"

namespace birp::cluster {
namespace {

workload::TopologyConfig small_topology_config(int edges, int apps) {
  workload::TopologyConfig config;
  config.edges = edges;
  config.apps = apps;
  config.variants_per_app = 2;
  return config;
}

/// Control-plane configuration with fast (low-hysteresis) reactions so small
/// test horizons exercise the full detect -> repartition -> heal loop.
ControlPlaneConfig fast_config(int cells) {
  ControlPlaneConfig config;
  config.partition.cells = cells;
  config.health.down_after_misses = 2;
  config.health.up_after_beats = 1;
  config.churn_threshold = 1;
  config.cooldown_slots = 2;
  config.pressure_spread_threshold = 0.0;  // isolate the liveness triggers
  return config;
}

sim::SlotState uniform_state(const device::ClusterSpec& cluster, int slot,
                             std::int64_t load) {
  sim::SlotState state;
  state.slot = slot;
  state.demand =
      util::Grid2<std::int64_t>(cluster.num_apps(), cluster.num_devices(), load);
  state.edge_up.assign(static_cast<std::size_t>(cluster.num_devices()), 1);
  return state;
}

void expect_decisions_equal(const sim::SlotDecision& a,
                            const sim::SlotDecision& b) {
  EXPECT_EQ(a.served.raw(), b.served.raw());
  EXPECT_EQ(a.kernel.raw(), b.kernel.raw());
  EXPECT_EQ(a.drops.raw(), b.drops.raw());
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows[f].app, b.flows[f].app);
    EXPECT_EQ(a.flows[f].from, b.flows[f].from);
    EXPECT_EQ(a.flows[f].to, b.flows[f].to);
    EXPECT_EQ(a.flows[f].count, b.flows[f].count);
  }
}

// --------------------------------------------------------- health tracker ----

TEST(HealthTracker, SuspectBlipClosesWithoutAnEvent) {
  HealthTracker tracker(2, HealthConfig{3, 2});
  tracker.observe(0, {1, 1});
  EXPECT_EQ(tracker.state(0), EdgeHealth::kHealthy);
  tracker.observe(1, {0, 1});  // one miss: suspect, still live
  EXPECT_EQ(tracker.state(0), EdgeHealth::kSuspect);
  EXPECT_TRUE(tracker.is_live(0));
  EXPECT_EQ(tracker.live_count(), 2);
  tracker.observe(2, {1, 1});  // blip over: back to healthy, no record
  EXPECT_EQ(tracker.state(0), EdgeHealth::kHealthy);
  EXPECT_TRUE(tracker.events().empty());
  EXPECT_EQ(tracker.declared_downs(), 0);
}

TEST(HealthTracker, DeclaresDownAndRecordsMttr) {
  HealthTracker tracker(1, HealthConfig{2, 2});
  tracker.observe(0, {1});
  tracker.observe(1, {0});  // first miss
  EXPECT_EQ(tracker.state(0), EdgeHealth::kSuspect);
  tracker.observe(2, {0});  // second consecutive miss: declared down
  EXPECT_EQ(tracker.state(0), EdgeHealth::kDown);
  EXPECT_FALSE(tracker.is_live(0));
  EXPECT_EQ(tracker.live_count(), 0);
  EXPECT_EQ(tracker.live_mask()[0], 0);
  ASSERT_EQ(tracker.events().size(), 1u);
  EXPECT_EQ(tracker.events()[0].edge, 0);
  EXPECT_EQ(tracker.events()[0].first_miss_slot, 1);
  EXPECT_EQ(tracker.events()[0].declared_down_slot, 2);
  EXPECT_FALSE(tracker.events()[0].closed());

  tracker.observe(3, {1});  // first beat: recovering, live again
  EXPECT_EQ(tracker.state(0), EdgeHealth::kRecovering);
  EXPECT_TRUE(tracker.is_live(0));
  tracker.observe(4, {1});  // second beat: healthy, event closes
  EXPECT_EQ(tracker.state(0), EdgeHealth::kHealthy);
  ASSERT_TRUE(tracker.events()[0].closed());
  EXPECT_EQ(tracker.events()[0].recovered_slot, 4);
  EXPECT_EQ(tracker.events()[0].mttr_slots(), 3);
  EXPECT_EQ(tracker.declared_downs(), 1);
  EXPECT_EQ(tracker.declared_recoveries(), 1);
}

TEST(HealthTracker, RelapseFoldsIntoTheSameEvent) {
  HealthTracker tracker(1, HealthConfig{1, 3});
  tracker.observe(0, {0});  // threshold 1: down immediately
  EXPECT_EQ(tracker.state(0), EdgeHealth::kDown);
  ASSERT_EQ(tracker.events().size(), 1u);
  tracker.observe(1, {1});
  tracker.observe(2, {1});  // two beats, needs three
  EXPECT_EQ(tracker.state(0), EdgeHealth::kRecovering);
  tracker.observe(3, {0});  // relapse: same outage, no new event
  EXPECT_EQ(tracker.state(0), EdgeHealth::kDown);
  EXPECT_EQ(tracker.events().size(), 1u);
  EXPECT_FALSE(tracker.events()[0].closed());
  tracker.observe(4, {1});
  tracker.observe(5, {1});
  tracker.observe(6, {1});  // third consecutive beat: closed at slot 6
  ASSERT_EQ(tracker.events().size(), 1u);
  EXPECT_TRUE(tracker.events()[0].closed());
  EXPECT_EQ(tracker.events()[0].recovered_slot, 6);
  EXPECT_EQ(tracker.events()[0].mttr_slots(), 6);
  EXPECT_EQ(tracker.declared_downs(), 1);
  EXPECT_EQ(tracker.declared_recoveries(), 1);
}

TEST(HealthTracker, EmptyMaskMeansEveryEdgeBeat) {
  HealthTracker tracker(3, HealthConfig{1, 1});
  tracker.observe(0, {0, 0, 0});
  EXPECT_EQ(tracker.live_count(), 0);
  tracker.observe(1, {});  // fault-free default: all beat
  EXPECT_EQ(tracker.live_count(), 3);
  for (const auto& event : tracker.events()) EXPECT_TRUE(event.closed());
}

// ----------------------------------------------------------- control plane ----

TEST(ControlPlane, RepartitionsOnCrashAndAgainOnRecovery) {
  const auto config = small_topology_config(12, 3);
  const auto topology = workload::generate_topology(config);
  const auto cluster = workload::make_cluster(topology, config);

  const auto trace = [&] {
    workload::GeneratorConfig gc;
    gc.slots = 24;
    gc.mean_per_edge = 5.0;
    return workload::generate(cluster, gc);
  }();
  sim::SimulatorConfig sc;
  sc.threads = 1;
  // Down half of one region mid-run; recovery before the horizon so the
  // failure events close and MTTR is measurable.
  sc.fault_plan = fault::FaultPlan::single_edge_crash(2, 6, 14);
  sc.fault_plan.add_down(3, 6, 14);

  ControlPlane plane(cluster, &topology.link_mbps, fast_config(3));
  sim::Simulator simulator(cluster, trace, sc);
  const auto metrics_run = simulator.run(plane);

  // The crash and the recovery each churned the debounced live set past the
  // threshold: at least one repartition per direction.
  EXPECT_GE(plane.repartitions(), 2);
  EXPECT_EQ(plane.health().declared_downs(), 2);
  EXPECT_EQ(plane.health().declared_recoveries(), 2);
  ASSERT_EQ(plane.health().events().size(), 2u);
  for (const auto& event : plane.health().events()) {
    EXPECT_TRUE(event.closed());
    EXPECT_GT(event.mttr_slots(), 0);
  }

  // Conservation holds through both handoffs.
  EXPECT_EQ(metrics_run.total_requests(), trace.total());

  // The exported metrics mirror the control plane's own counters.
  metrics::RunMetrics exported;
  plane.export_metrics(exported);
  EXPECT_EQ(exported.failure_events(), 2);
  EXPECT_EQ(exported.repartitions(), plane.repartitions());
  EXPECT_GT(exported.mttr_slots().mean(), 0.0);
  EXPECT_GE(exported.requests_at_risk(), 0);
  EXPECT_EQ(exported.requests_at_risk(), plane.requests_at_risk());
}

TEST(ControlPlane, EstimatorStateSurvivesRepartition) {
  const auto config = small_topology_config(12, 3);
  const auto topology = workload::generate_topology(config);
  const auto cluster = workload::make_cluster(topology, config);

  ControlPlane plane(cluster, &topology.link_mbps, fast_config(3));
  const int probe = 0;  // stays up; its learned state must ride the handoff

  // Train the probe edge's estimators with synthetic observations.
  for (int t = 0; t < 6; ++t) {
    (void)plane.decide(uniform_state(cluster, t, 4));
    sim::SlotFeedback feedback;
    feedback.slot = t;
    feedback.busy_s.assign(static_cast<std::size_t>(cluster.num_devices()),
                           0.0);
    for (int rep = 0; rep < 3; ++rep) {
      feedback.observations.push_back({probe, 0, 0, 4, 1.8});
    }
    plane.observe(feedback);
  }

  const auto snapshot = [&] {
    const int c = plane.partition().cell_of[static_cast<std::size_t>(probe)];
    return plane.scheduler().cell(c).export_device_estimators(
        plane.scheduler().local_index(probe));
  }();
  ASSERT_FALSE(snapshot.empty());
  EXPECT_GT(snapshot[0].within_count(), 0);  // the training actually landed

  // Crash two edges (not the probe) until the detector fires and the control
  // plane re-cuts the partition.
  int t = 6;
  while (plane.repartitions() == 0 && t < 20) {
    auto state = uniform_state(cluster, t, 4);
    state.edge_up[10] = 0;
    state.edge_up[11] = 0;
    (void)plane.decide(state);
    ++t;
  }
  ASSERT_GE(plane.repartitions(), 1);

  // Re-export from the rebuilt scheduler: bit-for-bit the same beliefs.
  const int c = plane.partition().cell_of[static_cast<std::size_t>(probe)];
  const auto carried = plane.scheduler().cell(c).export_device_estimators(
      plane.scheduler().local_index(probe));
  ASSERT_EQ(carried.size(), snapshot.size());
  for (std::size_t e = 0; e < carried.size(); ++e) {
    EXPECT_EQ(carried[e].within_count(), snapshot[e].within_count());
    EXPECT_EQ(carried[e].beyond_count(), snapshot[e].beyond_count());
    const auto a = carried[e].mean_estimate();
    const auto b = snapshot[e].mean_estimate();
    EXPECT_DOUBLE_EQ(a.eta, b.eta);
    EXPECT_EQ(a.beta, b.beta);
    EXPECT_DOUBLE_EQ(a.c, b.c);
  }
}

TEST(ControlPlane, StormConservesRequestsWithFailoverAcrossRepartitions) {
  // Satellite regression: orphans whose home edge moved cells mid-retry must
  // re-admit without double counting — exact conservation is the witness.
  const auto config = small_topology_config(12, 3);
  const auto topology = workload::generate_topology(config);
  const auto cluster = workload::make_cluster(topology, config);

  workload::GeneratorConfig gc;
  gc.slots = 28;
  gc.mean_per_edge = 5.0;
  gc.flash_start = 8;
  gc.flash_duration = 8;
  gc.flash_scale = 1.5;
  const auto trace = workload::generate(cluster, gc);

  fault::CorrelatedFailureOptions storm;
  storm.slots = 24;
  storm.devices = cluster.num_devices();
  storm.group_size = 4;
  storm.storm_rate = 0.2;
  storm.group_fraction = 0.6;
  storm.min_outage_slots = 5;
  storm.max_outage_slots = 9;
  storm.rescue_fraction = 0.5;
  storm.cooldown_slots = 6;
  sim::SimulatorConfig sc;
  sc.threads = 2;
  sc.fault_plan = fault::FaultPlan::generate_correlated(storm);
  ASSERT_FALSE(sc.fault_plan.empty());
  sc.failover.enabled = true;
  sc.failover.retry_budget = 1;

  ControlPlane plane(cluster, &topology.link_mbps, fast_config(3));
  sim::Simulator simulator(cluster, trace, sc);
  const auto metrics_run = simulator.run(plane);

  EXPECT_EQ(metrics_run.total_requests(), trace.total());
  EXPECT_GT(metrics_run.retries(), 0);
  EXPECT_GE(plane.repartitions(), 1);
  EXPECT_GE(plane.health().declared_downs(), 1);
}

TEST(ControlPlane, BitIdenticalAcrossCellAndSimThreadsUnderStorm) {
  const auto config = small_topology_config(12, 3);
  const auto topology = workload::generate_topology(config);
  const auto cluster = workload::make_cluster(topology, config);

  workload::GeneratorConfig gc;
  gc.slots = 16;
  gc.mean_per_edge = 5.0;
  const auto trace = workload::generate(cluster, gc);

  fault::FaultPlan plan = fault::FaultPlan::single_edge_crash(4, 3, 9);
  plan.add_down(5, 3, 11);
  plan.add_bandwidth(0, 0, 16, 0.6);

  auto make_plane = [&](int cell_threads) {
    auto cp = fast_config(3);
    cp.cell.cell_threads = cell_threads;
    cp.cell.watchdog.enabled = true;  // degraded path must stay deterministic
    cp.cell.watchdog.pivot_budget = 50;
    cp.cell.watchdog.strike_threshold = 1;
    cp.cell.watchdog.degraded_slots = 2;
    return ControlPlane(cluster, &topology.link_mbps, cp);
  };
  auto plane_one = make_plane(1);
  auto plane_many = make_plane(8);

  sim::SimulatorConfig sc_one;
  sc_one.threads = 1;
  sc_one.fault_plan = plan;
  sc_one.failover.enabled = true;
  sim::SimulatorConfig sc_many = sc_one;
  sc_many.threads = 4;

  sim::Simulator sim_one(cluster, trace, sc_one);
  sim::Simulator sim_many(cluster, trace, sc_many);
  metrics::RunMetrics m_one;
  metrics::RunMetrics m_many;
  for (int t = 0; t < trace.slots(); ++t) {
    const auto a = sim_one.step(plane_one, &m_one);
    const auto b = sim_many.step(plane_many, &m_many);
    expect_decisions_equal(a.decision, b.decision);
  }
  sim_one.finish(plane_one, m_one);
  sim_many.finish(plane_many, m_many);
  EXPECT_EQ(m_one.total_requests(), trace.total());
  EXPECT_EQ(m_many.total_requests(), trace.total());
  EXPECT_EQ(plane_one.repartitions(), plane_many.repartitions());
  EXPECT_EQ(m_one.retries(), m_many.retries());
  EXPECT_EQ(m_one.orphan_dropped(), m_many.orphan_dropped());
}

// ---------------------------------------------------------------- watchdog ----

TEST(CellWatchdog, TripsIntoDegradedModeAndConserves) {
  const auto config = small_topology_config(12, 3);
  const auto topology = workload::generate_topology(config);
  const auto cluster = workload::make_cluster(topology, config);

  PartitionConfig pc;
  pc.cells = 3;
  auto partition = partition_cluster(cluster, &topology.link_mbps, pc);

  CellSchedulerConfig cc;
  cc.watchdog.enabled = true;
  cc.watchdog.pivot_budget = 1;  // every real solve overruns
  cc.watchdog.strike_threshold = 1;
  cc.watchdog.degraded_slots = 3;
  CellScheduler scheduler(cluster, std::move(partition), cc);

  const auto trace = [&] {
    workload::GeneratorConfig gc;
    gc.slots = 12;
    gc.mean_per_edge = 5.0;
    return workload::generate(cluster, gc);
  }();
  sim::SimulatorConfig sc;
  sc.threads = 1;
  sc.fault_plan = fault::FaultPlan::single_edge_crash(1, 2, 6);
  sim::Simulator simulator(cluster, trace, sc);
  const auto metrics_run = simulator.run(scheduler);

  EXPECT_GE(scheduler.watchdog_trips(), 1);
  EXPECT_GE(scheduler.degraded_cell_slots(), 1);
  // Degraded cells answer with GreedyLocal + down-edge masking: every
  // request still resolves exactly once.
  EXPECT_EQ(metrics_run.total_requests(), trace.total());
}

TEST(CellWatchdog, DisabledNeverTrips) {
  const auto config = small_topology_config(8, 2);
  const auto topology = workload::generate_topology(config);
  const auto cluster = workload::make_cluster(topology, config);
  PartitionConfig pc;
  pc.cells = 2;
  CellScheduler scheduler(
      cluster, partition_cluster(cluster, &topology.link_mbps, pc), {});
  const auto trace = [&] {
    workload::GeneratorConfig gc;
    gc.slots = 4;
    gc.mean_per_edge = 4.0;
    return workload::generate(cluster, gc);
  }();
  sim::SimulatorConfig sc;
  sc.threads = 1;
  (void)sim::Simulator(cluster, trace, sc).run(scheduler);
  EXPECT_EQ(scheduler.watchdog_trips(), 0);
  EXPECT_EQ(scheduler.degraded_cell_slots(), 0);
}

// ------------------------------------------------------------- flash crowd ----

TEST(FlashCrowd, OverlayIsAdditiveAndScopedToItsWindow) {
  const auto config = small_topology_config(10, 3);
  const auto topology = workload::generate_topology(config);
  const auto cluster = workload::make_cluster(topology, config);

  workload::GeneratorConfig base;
  base.slots = 30;
  base.mean_per_edge = 6.0;
  auto crowded = base;
  crowded.flash_start = 10;
  crowded.flash_duration = 8;
  crowded.flash_scale = 1.5;

  const auto plain = workload::generate(cluster, base);
  const auto spiked = workload::generate(cluster, crowded);

  std::int64_t extra = 0;
  for (int t = 0; t < base.slots; ++t) {
    const bool in_window = t >= 10 && t < 18;
    for (int i = 0; i < cluster.num_apps(); ++i) {
      for (int k = 0; k < cluster.num_devices(); ++k) {
        if (in_window) {
          // Additive overlay: never below the base draw.
          EXPECT_GE(spiked.at(t, i, k), plain.at(t, i, k));
          extra += spiked.at(t, i, k) - plain.at(t, i, k);
        } else {
          // Outside the window the base trace is byte-identical.
          EXPECT_EQ(spiked.at(t, i, k), plain.at(t, i, k));
        }
      }
    }
  }
  EXPECT_GT(extra, 0);
  EXPECT_EQ(spiked.total(), plain.total() + extra);
}

TEST(FlashCrowd, SameConfigIsDeterministic) {
  const auto config = small_topology_config(8, 2);
  const auto topology = workload::generate_topology(config);
  const auto cluster = workload::make_cluster(topology, config);
  workload::GeneratorConfig gc;
  gc.slots = 20;
  gc.mean_per_edge = 5.0;
  gc.flash_start = 5;
  gc.flash_duration = 6;
  const auto a = workload::generate(cluster, gc);
  const auto b = workload::generate(cluster, gc);
  ASSERT_EQ(a.total(), b.total());
  for (int t = 0; t < gc.slots; ++t) {
    for (int i = 0; i < cluster.num_apps(); ++i) {
      for (int k = 0; k < cluster.num_devices(); ++k) {
        ASSERT_EQ(a.at(t, i, k), b.at(t, i, k));
      }
    }
  }
}

}  // namespace
}  // namespace birp::cluster
