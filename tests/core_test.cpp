// Tests for BIRP's core: the MAB TIR estimator, the per-slot problem
// builder, the incumbent heuristic, and the scheduler itself.
#include <cmath>

#include <gtest/gtest.h>

#include "birp/core/birp_scheduler.hpp"
#include "birp/core/problem.hpp"
#include "birp/core/tir_estimator.hpp"
#include "birp/device/cluster.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/util/rng.hpp"
#include "birp/workload/generator.hpp"

namespace birp::core {
namespace {

// -------------------------------------------------------- tir estimator ----

TEST(TirEstimator, InitializationMatchesEq23) {
  TirEstimator estimator;
  const auto params = estimator.mean_estimate();
  EXPECT_DOUBLE_EQ(params.eta, 0.1);
  EXPECT_EQ(params.beta, 16);
  EXPECT_NEAR(params.c, std::pow(16.0, 0.1), 1e-12);
}

TEST(TirEstimator, LowerConfidenceIsConservative) {
  TirEstimator estimator;
  const auto mean = estimator.mean_estimate();
  const auto lcb = estimator.lower_confidence(5);
  EXPECT_LE(lcb.eta, mean.eta);
  EXPECT_LE(lcb.beta, mean.beta);
  EXPECT_GE(lcb.eta, 0.01);
  EXPECT_GE(lcb.beta, 1);
  EXPECT_GE(lcb.c, 1.0);
}

TEST(TirEstimator, PaddingShrinksWithObservations) {
  TirEstimatorConfig config;
  TirEstimator estimator(config);
  // Before any observation the prior applies unpadded (cold-start rule).
  EXPECT_DOUBLE_EQ(estimator.lower_confidence(10).eta,
                   estimator.mean_estimate().eta);
  estimator.update(1.2, 4, 0);
  const double early_gap = estimator.mean_estimate().eta -
                           estimator.lower_confidence(10).eta;
  EXPECT_GT(early_gap, 0.0);
  // Many more within-threshold observations shrink the confidence padding.
  for (int t = 1; t < 200; ++t) estimator.update(1.2, 4, t);
  const double late_gap = estimator.mean_estimate().eta -
                          estimator.lower_confidence(210).eta;
  EXPECT_LT(late_gap, early_gap);
  EXPECT_EQ(estimator.within_count(), 200);
}

TEST(TirEstimator, SlotZeroAndColdCountsApplyNoPadding) {
  // Cold-start guard: a zero observation count contributes no padding.
  // Without it, sqrt(eps2 ln(t+1) / (0+1)) grows forever on an arm whose
  // beyond-threshold branch never fired, shrinking its LCB every slot.
  TirEstimator estimator;
  // Only within-threshold observations: n2 stays 0, so beta and C reach
  // the optimizer unpadded no matter how late the slot.
  for (int t = 0; t < 50; ++t) estimator.update(1.1, 2, t);
  EXPECT_EQ(estimator.beyond_count(), 0);
  EXPECT_GT(estimator.within_count(), 0);
  const auto mean = estimator.mean_estimate();
  const auto lcb = estimator.lower_confidence(100000);
  EXPECT_EQ(lcb.beta, mean.beta);
  EXPECT_DOUBLE_EQ(lcb.c, mean.c);
  // And at slot 0 the ln(t+1) factor is zero: even a sampled arm gets its
  // plain mean back.
  TirEstimator fresh;
  fresh.update(1.1, 2, 0);
  EXPECT_DOUBLE_EQ(fresh.lower_confidence(0).eta,
                   fresh.mean_estimate().eta);
}

TEST(TirEstimator, WithinThresholdUpdatesEta) {
  // Observations along TIR = b^0.25, below the init ceiling (1+eps1)*1.316:
  // use b = 3 so b^0.25 = 1.316 < 1.369.
  TirEstimator estimator;
  for (int t = 0; t < 300; ++t) {
    estimator.update(std::pow(3.0, 0.25), 3, t);
  }
  EXPECT_NEAR(estimator.mean_estimate().eta, 0.25, 0.01);
  EXPECT_EQ(estimator.beyond_count(), 0);
}

TEST(TirEstimator, BeyondThresholdMovesBetaAndC) {
  TirEstimator estimator;
  // Observed TIR 2.0 at batch 12 is well beyond (1 + eps1) * 1.316, so the
  // first update snaps C_bar to 2.0 and beta_bar to 12 (running means with
  // n2 = 0). Once C_bar has caught up, identical observations fall within
  // the threshold and refresh eta via the secant ln(2)/ln(12) (Eq. 21).
  for (int t = 0; t < 100; ++t) estimator.update(2.0, 12, t);
  const auto mean = estimator.mean_estimate();
  EXPECT_NEAR(mean.c, 2.0, 1e-9);
  EXPECT_EQ(mean.beta, 12);
  EXPECT_EQ(estimator.beyond_count(), 1);
  EXPECT_EQ(estimator.within_count(), 99);
  EXPECT_NEAR(mean.eta, std::log(2.0) / std::log(12.0), 1e-6);
}

TEST(TirEstimator, BatchOfOneCarriesNoSlopeInformation) {
  TirEstimator estimator;
  const double eta_before = estimator.mean_estimate().eta;
  estimator.update(1.0, 1, 0);
  EXPECT_DOUBLE_EQ(estimator.mean_estimate().eta, eta_before);
  EXPECT_EQ(estimator.within_count(), 1);  // still counted (Eq. 20)
}

TEST(TirEstimator, Eq22VariantUsesN2Counts) {
  TirEstimatorConfig faithful;
  faithful.paper_eq22_uses_n2 = true;
  TirEstimator a(faithful);
  TirEstimator b;  // n1 variant (default)
  // One beyond-threshold event (so n2 == 1 on both), then a stream of
  // within-threshold eta observations (n1 grows).
  a.update(2.0, 12, 0);
  b.update(2.0, 12, 0);
  for (int t = 1; t < 50; ++t) {
    a.update(1.25, 4, t);
    b.update(1.25, 4, t);
  }
  // Same means; the faithful (printed-Eq.22) variant pads eta with the
  // stale n2 = 1 count, so its LCB stays wider than the n1 variant's.
  EXPECT_DOUBLE_EQ(a.mean_estimate().eta, b.mean_estimate().eta);
  EXPECT_LT(a.lower_confidence(50).eta, b.lower_confidence(50).eta);
}

TEST(TirEstimator, RejectsBadInput) {
  TirEstimator estimator;
  EXPECT_THROW(estimator.update(1.0, 0, 0), std::logic_error);
  EXPECT_THROW(estimator.update(-1.0, 2, 0), std::logic_error);
  TirEstimatorConfig bad;
  bad.epsilon1 = 0.0;
  EXPECT_THROW(TirEstimator{bad}, std::logic_error);
}

TEST(TirEstimator, ConvergesOnGroundTruthCurve) {
  // End-to-end: noisy observations from a true piecewise curve; the mean
  // estimates must approach the effective curve at the operating batches.
  device::TirParams truth;
  truth.eta = 0.28;
  truth.beta = 8;
  truth.c = std::pow(8.0, 0.28);
  TirEstimator estimator;
  util::Xoshiro256StarStar rng(77);
  for (int t = 0; t < 500; ++t) {
    const int b = static_cast<int>(rng.uniform_int(2, 8));
    const double observed = truth.tir(b) * rng.lognormal(0.0, 0.02);
    estimator.update(observed, b, t);
  }
  EXPECT_NEAR(estimator.mean_estimate().eta, truth.eta, 0.05);
}

// ------------------------------------------------------ problem builder ----

class ProblemFixture : public ::testing::Test {
 protected:
  ProblemFixture()
      : cluster_(device::ClusterSpec::paper_small()) {
    demand_ = util::Grid2<std::int64_t>(cluster_.num_apps(),
                                        cluster_.num_devices(), 6);
    lookup_ = [this](int k, int i, int j) { return cluster_.oracle_tir(k, i, j); };
  }

  device::ClusterSpec cluster_;
  util::Grid2<std::int64_t> demand_;
  TirLookup lookup_;
};

TEST_F(ProblemFixture, ShapeAndIndexMaps) {
  const auto built =
      build_slot_problem(cluster_, demand_, nullptr, lookup_, {});
  EXPECT_GT(built.model.num_variables(), 0);
  EXPECT_GT(built.model.num_constraints(), 0);
  for (int i = 0; i < cluster_.num_apps(); ++i) {
    for (int j = 0; j < cluster_.zoo().num_variants(i); ++j) {
      for (int k = 0; k < cluster_.num_devices(); ++k) {
        EXPECT_GE(built.x(i, j, k), 0);
        EXPECT_GE(built.z(i, j, k), 0);
      }
    }
    for (int k = 0; k < cluster_.num_devices(); ++k) {
      EXPECT_GE(built.e(i, k), 0);
      EXPECT_GE(built.m(i, k), 0);
      EXPECT_GE(built.d(i, k), 0);
    }
  }
}

TEST_F(ProblemFixture, LpRelaxationServesLightLoadWithoutDrops) {
  const auto built =
      build_slot_problem(cluster_, demand_, nullptr, lookup_, {});
  const auto lp = solver::solve_lp(built.model);
  ASSERT_EQ(lp.status, solver::SolveStatus::Optimal);
  double drops = 0.0;
  for (int i = 0; i < cluster_.num_apps(); ++i) {
    for (int k = 0; k < cluster_.num_devices(); ++k) {
      drops += lp.values[static_cast<std::size_t>(built.d(i, k))];
    }
  }
  EXPECT_NEAR(drops, 0.0, 1e-6);
}

TEST_F(ProblemFixture, BatchAndServeCapsRespectBelievedBeta) {
  ProblemOptions options;
  options.max_batch = 16;
  options.launch_multiplier = 3;
  const auto built =
      build_slot_problem(cluster_, demand_, nullptr, lookup_, options);
  for (int i = 0; i < cluster_.num_apps(); ++i) {
    for (int j = 0; j < cluster_.zoo().num_variants(i); ++j) {
      for (int k = 0; k < cluster_.num_devices(); ++k) {
        const int mem_cap = static_cast<int>(std::floor(
            0.5 * cluster_.memory_mb(k) /
            cluster_.zoo().variant(i, j).intermediate_mb));
        const int kernel_cap = std::min(
            {16, cluster_.oracle_tir(k, i, j).beta, std::max(1, mem_cap)});
        EXPECT_EQ(built.kernel_cap(i, j, k), kernel_cap);
        // Served requests per slot: up to launch_multiplier launches of the
        // per-launch cap.
        const auto& var = built.model.variable(built.z(i, j, k));
        EXPECT_LE(var.upper, 3.0 * kernel_cap + 1e-9);
      }
    }
  }
}

TEST_F(ProblemFixture, StrictSingleLaunchModeMatchesPaperEq5) {
  ProblemOptions options;
  options.launch_multiplier = 1;
  const auto built =
      build_slot_problem(cluster_, demand_, nullptr, lookup_, options);
  for (int i = 0; i < cluster_.num_apps(); ++i) {
    for (int j = 0; j < cluster_.zoo().num_variants(i); ++j) {
      for (int k = 0; k < cluster_.num_devices(); ++k) {
        const auto& var = built.model.variable(built.z(i, j, k));
        EXPECT_LE(var.upper,
                  std::min(16, cluster_.oracle_tir(k, i, j).beta) + 1e-9);
      }
    }
  }
}

TEST_F(ProblemFixture, NoRedistributionPinsFlows) {
  ProblemOptions options;
  options.allow_redistribution = false;
  const auto built =
      build_slot_problem(cluster_, demand_, nullptr, lookup_, options);
  for (int i = 0; i < cluster_.num_apps(); ++i) {
    for (int k = 0; k < cluster_.num_devices(); ++k) {
      EXPECT_DOUBLE_EQ(built.model.variable(built.e(i, k)).upper, 0.0);
      EXPECT_DOUBLE_EQ(built.model.variable(built.m(i, k)).upper, 0.0);
    }
  }
}

TEST_F(ProblemFixture, ExtractRestoresConservation) {
  const auto built =
      build_slot_problem(cluster_, demand_, nullptr, lookup_, {});
  const auto solution = solver::solve_milp(built.model, {});
  ASSERT_TRUE(solution.usable());
  const auto decision = extract_decision(built, solution, cluster_, demand_);
  for (int i = 0; i < cluster_.num_apps(); ++i) {
    for (int k = 0; k < cluster_.num_devices(); ++k) {
      std::int64_t served = 0;
      for (int j = 0; j < cluster_.zoo().num_variants(i); ++j) {
        served += decision.served(i, j, k);
      }
      const auto available = demand_(i, k) - decision.exports(i, k) +
                             decision.imports(i, k);
      EXPECT_EQ(served + decision.drops(i, k), available)
          << "i=" << i << " k=" << k;
    }
  }
}

TEST_F(ProblemFixture, HeuristicProducesFeasibleCandidate) {
  const auto built =
      build_slot_problem(cluster_, demand_, nullptr, lookup_, {});
  const auto lp = solver::solve_lp(built.model);
  ASSERT_TRUE(lp.usable());
  const auto candidate = heuristic_incumbent(built, lp.values, cluster_,
                                             demand_, nullptr, lookup_, {});
  ASSERT_FALSE(candidate.empty());
  EXPECT_LE(built.model.max_violation(candidate), 1e-6);
  EXPECT_LE(built.model.max_integrality_violation(candidate), 1e-6);
  // Light load: no drops needed.
  double drops = 0.0;
  for (int i = 0; i < cluster_.num_apps(); ++i) {
    for (int k = 0; k < cluster_.num_devices(); ++k) {
      drops += candidate[static_cast<std::size_t>(built.d(i, k))];
    }
  }
  EXPECT_NEAR(drops, 0.0, 1e-9);
}

TEST_F(ProblemFixture, HeuristicObjectiveNearLpBound) {
  const auto built =
      build_slot_problem(cluster_, demand_, nullptr, lookup_, {});
  const auto lp = solver::solve_lp(built.model);
  const auto candidate = heuristic_incumbent(built, lp.values, cluster_,
                                             demand_, nullptr, lookup_, {});
  ASSERT_FALSE(candidate.empty());
  const double obj = built.model.objective_value(candidate);
  EXPECT_GE(obj, lp.objective - 1e-6);          // bound holds
  EXPECT_LE(obj, lp.objective * 1.6 + 1.0);     // and is not far off
}

// -------------------------------------------------------- birp scheduler ----

TEST(BirpScheduler, ProducesValidDecisions) {
  const auto cluster = device::ClusterSpec::paper_small();
  workload::GeneratorConfig wl;
  wl.slots = 5;
  wl.mean_per_edge = workload::suggested_mean_per_edge(cluster, 0.4);
  const auto trace = workload::generate(cluster, wl);
  BirpScheduler scheduler(cluster);
  sim::Simulator simulator(cluster, trace);
  for (int t = 0; t < 5; ++t) {
    const auto result = simulator.step(scheduler);
    EXPECT_TRUE(result.repairs.clean())
        << "slot " << t << ": BIRP emitted an infeasible decision";
  }
  EXPECT_EQ(scheduler.fallback_count(), 0);
}

TEST(BirpScheduler, OfflineUsesOracleBeliefs) {
  const auto cluster = device::ClusterSpec::paper_small();
  const auto off = BirpScheduler::offline(cluster);
  EXPECT_EQ(off.name(), "BIRP-OFF");
  const auto believed = off.believed_tir(0, 0, 0);
  const auto& oracle = cluster.oracle_tir(0, 0, 0);
  EXPECT_DOUBLE_EQ(believed.eta, oracle.eta);
  EXPECT_EQ(believed.beta, oracle.beta);
}

TEST(BirpScheduler, OnlineBeliefsStartAtConservativeInit) {
  const auto cluster = device::ClusterSpec::paper_small();
  BirpScheduler scheduler(cluster);
  const auto believed = scheduler.believed_tir(0, 0, 0);
  EXPECT_LE(believed.eta, 0.1);
  EXPECT_LE(believed.beta, 16);
}

TEST(BirpScheduler, ObservationsMoveBeliefsTowardTruth) {
  const auto cluster = device::ClusterSpec::paper_small();
  workload::GeneratorConfig wl;
  wl.slots = 40;
  wl.mean_per_edge = workload::suggested_mean_per_edge(cluster, 0.5);
  const auto trace = workload::generate(cluster, wl);
  BirpScheduler scheduler(cluster);
  sim::Simulator simulator(cluster, trace);
  simulator.run(scheduler);

  // After 40 slots of feedback the believed eta should have moved off the
  // 0.1 initialization toward the (higher) effective truth for at least
  // some frequently-used (device, variant) pairs.
  bool any_learned = false;
  for (int k = 0; k < cluster.num_devices(); ++k) {
    for (int j = 0; j < cluster.zoo().num_variants(0); ++j) {
      if (scheduler.believed_tir(k, 0, j).eta > 0.12) any_learned = true;
    }
  }
  EXPECT_TRUE(any_learned);
}

TEST(BirpScheduler, NameOverride) {
  const auto cluster = device::ClusterSpec::paper_small();
  BirpConfig config;
  config.name_override = "CUSTOM";
  BirpScheduler scheduler(cluster, config);
  EXPECT_EQ(scheduler.name(), "CUSTOM");
}

}  // namespace
}  // namespace birp::core
