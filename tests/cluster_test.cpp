// Tests for the hierarchical sharded scheduling subsystem (birp/cluster):
// partitioner invariants, inter-cell balancer contracts, and the
// CellScheduler's defining properties — byte-identity at k = 1 and
// bit-identical decisions at any thread count.
#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "birp/cluster/balancer.hpp"
#include "birp/cluster/cell_scheduler.hpp"
#include "birp/cluster/partition.hpp"
#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"
#include "birp/metrics/run_metrics.hpp"
#include "birp/serve/engine.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/sim/validate.hpp"
#include "birp/util/rng.hpp"
#include "birp/workload/generator.hpp"
#include "birp/workload/topology.hpp"

namespace birp::cluster {
namespace {

workload::TopologyConfig small_topology_config(int edges, int apps) {
  workload::TopologyConfig config;
  config.edges = edges;
  config.apps = apps;
  config.variants_per_app = 2;
  return config;
}

void expect_valid_partition(const Partition& partition, int devices,
                            int cells) {
  EXPECT_EQ(partition.cells(), cells);
  ASSERT_EQ(partition.devices(), devices);
  std::vector<int> seen(static_cast<std::size_t>(devices), 0);
  for (int c = 0; c < partition.cells(); ++c) {
    const auto& members = partition.members[static_cast<std::size_t>(c)];
    ASSERT_FALSE(members.empty()) << "cell " << c << " is empty";
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
    for (const int k : members) {
      ASSERT_GE(k, 0);
      ASSERT_LT(k, devices);
      ++seen[static_cast<std::size_t>(k)];
      EXPECT_EQ(partition.cell_of[static_cast<std::size_t>(k)], c);
    }
    if (c > 0) {
      // Canonical cell order: ascending smallest member.
      EXPECT_LT(partition.members[static_cast<std::size_t>(c - 1)].front(),
                members.front());
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);  // no orphans, no dupes
}

void expect_decisions_equal(const sim::SlotDecision& a,
                            const sim::SlotDecision& b) {
  EXPECT_EQ(a.served.raw(), b.served.raw());
  EXPECT_EQ(a.kernel.raw(), b.kernel.raw());
  EXPECT_EQ(a.drops.raw(), b.drops.raw());
  EXPECT_EQ(a.pad_partial_launches, b.pad_partial_launches);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows[f].app, b.flows[f].app);
    EXPECT_EQ(a.flows[f].from, b.flows[f].from);
    EXPECT_EQ(a.flows[f].to, b.flows[f].to);
    EXPECT_EQ(a.flows[f].count, b.flows[f].count);
  }
}

// ----------------------------------------------------------- partitioner ----

TEST(Partition, CoversEveryDeviceExactlyOnce) {
  const auto config = small_topology_config(30, 3);
  const auto topology = workload::generate_topology(config);
  const auto cluster = workload::make_cluster(topology, config);
  PartitionConfig pc;
  pc.cells = 4;
  const auto partition =
      partition_cluster(cluster, &topology.link_mbps, pc);
  expect_valid_partition(partition, 30, 4);
}

TEST(Partition, DeterministicInConfig) {
  const auto config = small_topology_config(40, 3);
  const auto topology = workload::generate_topology(config);
  const auto cluster = workload::make_cluster(topology, config);
  PartitionConfig pc;
  pc.cells = 5;
  const auto a = partition_cluster(cluster, &topology.link_mbps, pc);
  const auto b = partition_cluster(cluster, &topology.link_mbps, pc);
  EXPECT_EQ(a.cell_of, b.cell_of);
  EXPECT_EQ(a.members, b.members);
  // A different seed still yields a valid (possibly different) partition.
  pc.seed += 1;
  const auto c = partition_cluster(cluster, &topology.link_mbps, pc);
  expect_valid_partition(c, 40, 5);
}

TEST(Partition, BalanceToleranceBoundsCellSizes) {
  const auto config = small_topology_config(47, 2);
  const auto topology = workload::generate_topology(config);
  const auto cluster = workload::make_cluster(topology, config);
  PartitionConfig pc;
  pc.cells = 5;
  pc.balance_tolerance = 0.10;
  const auto partition =
      partition_cluster(cluster, &topology.link_mbps, pc);
  expect_valid_partition(partition, 47, 5);
  // cap = ceil(1.10 * 47 / 5) = 11
  for (const auto& members : partition.members) {
    EXPECT_LE(static_cast<int>(members.size()), 11);
  }
}

TEST(Partition, RefinementNeverWorsensTheCut) {
  const auto config = small_topology_config(36, 2);
  const auto topology = workload::generate_topology(config);
  const auto cluster = workload::make_cluster(topology, config);
  const auto affinity = build_affinity(cluster, &topology.link_mbps,
                                       PartitionObjective::kBandwidth);
  PartitionConfig greedy_only;
  greedy_only.cells = 4;
  greedy_only.refine_passes = 0;
  PartitionConfig refined = greedy_only;
  refined.refine_passes = 6;
  const double greedy_cut =
      cut_weight(partition_affinity(affinity, greedy_only), affinity);
  const double refined_cut =
      cut_weight(partition_affinity(affinity, refined), affinity);
  EXPECT_LE(refined_cut, greedy_cut + 1e-9);
}

TEST(Partition, CustomCostRecoversBlockStructure) {
  // Two 6-device blocks with affinity only inside a block: the partitioner
  // must find the zero-cut split through the pluggable cost hook.
  const auto config = small_topology_config(12, 2);
  const auto topology = workload::generate_topology(config);
  const auto cluster = workload::make_cluster(topology, config);
  PartitionConfig pc;
  pc.cells = 2;
  pc.balance_tolerance = 0.0;
  pc.custom_cost = [](int a, int b) {
    return (a < 6) == (b < 6) ? 1.0 : 0.0;
  };
  const auto partition = partition_cluster(cluster, nullptr, pc);
  expect_valid_partition(partition, 12, 2);
  util::Grid2<double> affinity(12, 12, 0.0);
  for (int a = 0; a < 12; ++a) {
    for (int b = 0; b < 12; ++b) {
      if (a != b && (a < 6) == (b < 6)) affinity(a, b) = 1.0;
    }
  }
  EXPECT_DOUBLE_EQ(cut_weight(partition, affinity), 0.0);
}

TEST(Partition, ObjectivesProduceValidPartitions) {
  const auto config = small_topology_config(24, 2);
  const auto topology = workload::generate_topology(config);
  const auto cluster = workload::make_cluster(topology, config);
  for (const auto objective :
       {PartitionObjective::kBalanced, PartitionObjective::kBandwidth,
        PartitionObjective::kAffinity}) {
    PartitionConfig pc;
    pc.cells = 3;
    pc.objective = objective;
    expect_valid_partition(
        partition_cluster(cluster, &topology.link_mbps, pc), 24, 3);
  }
}

TEST(Partition, SingleCellIsTheWholeCluster) {
  const auto config = small_topology_config(10, 2);
  const auto topology = workload::generate_topology(config);
  const auto cluster = workload::make_cluster(topology, config);
  PartitionConfig pc;
  pc.cells = 1;
  const auto partition = partition_cluster(cluster, &topology.link_mbps, pc);
  ASSERT_EQ(partition.cells(), 1);
  ASSERT_EQ(static_cast<int>(partition.members[0].size()), 10);
  for (int k = 0; k < 10; ++k) {
    EXPECT_EQ(partition.members[0][static_cast<std::size_t>(k)], k);
    EXPECT_EQ(partition.cell_of[static_cast<std::size_t>(k)], 0);
  }
}

// -------------------------------------------------------------- balancer ----

class BalancerFixture : public ::testing::Test {
 protected:
  BalancerFixture()
      : config_(small_topology_config(12, 3)),
        topology_(workload::generate_topology(config_)),
        cluster_(workload::make_cluster(topology_, config_)) {
    PartitionConfig pc;
    pc.cells = 4;
    partition_ = partition_cluster(cluster_, &topology_.link_mbps, pc);
  }

  /// Demand concentrated on cell `hot`: every device there gets `load` per
  /// app, everywhere else stays idle.
  [[nodiscard]] sim::SlotState skewed_state(int hot, std::int64_t load) const {
    sim::SlotState state;
    state.demand = util::Grid2<std::int64_t>(cluster_.num_apps(),
                                             cluster_.num_devices(), 0);
    for (const int k : partition_.members[static_cast<std::size_t>(hot)]) {
      for (int i = 0; i < cluster_.num_apps(); ++i) {
        state.demand(i, k) = load;
      }
    }
    return state;
  }

  workload::TopologyConfig config_;
  workload::Topology topology_;
  device::ClusterSpec cluster_;
  Partition partition_;
};

TEST_F(BalancerFixture, MovesFlowFromHotToColdCells) {
  BalancerConfig bc;
  bc.pressure_margin = 0.05;
  bc.move_fraction = 0.5;
  InterCellBalancer balancer(cluster_, bc, partition_.cells());
  const auto state = skewed_state(/*hot=*/0, /*load=*/40);
  const auto moves = balancer.plan(state, partition_);
  ASSERT_FALSE(moves.empty());
  EXPECT_GT(balancer.moved_total(), 0);
  for (const auto& move : moves) {
    EXPECT_EQ(partition_.cell_of[static_cast<std::size_t>(move.from)], 0);
    EXPECT_NE(partition_.cell_of[static_cast<std::size_t>(move.to)], 0);
    EXPECT_GT(move.count, 0);
    // Bounded by the per-slot move fraction of the donor's demand.
    EXPECT_LE(move.count,
              static_cast<std::int64_t>(
                  bc.move_fraction *
                  static_cast<double>(state.demand(move.app, move.from))));
  }
}

TEST_F(BalancerFixture, RespectsNetworkBudgetFraction) {
  BalancerConfig bc;
  bc.pressure_margin = 0.0;
  bc.move_fraction = 1.0;
  bc.network_fraction = 0.25;
  InterCellBalancer balancer(cluster_, bc, partition_.cells());
  const auto state = skewed_state(0, 100000);  // far above any budget
  const auto moves = balancer.plan(state, partition_);
  // Per donor/recipient pair the moved request-MB must fit the fraction of
  // the smaller endpoint budget.
  for (const auto& move : moves) {
    const double budget =
        bc.network_fraction * std::min(cluster_.network_mb(move.from),
                                       cluster_.network_mb(move.to));
    double moved_mb = 0.0;
    for (const auto& other : moves) {
      if (other.from == move.from && other.to == move.to) {
        moved_mb += static_cast<double>(other.count) *
                    cluster_.zoo().app(other.app).request_mb;
      }
    }
    EXPECT_LE(moved_mb, budget + 1e-9);
  }
}

TEST_F(BalancerFixture, NeverTouchesDownEdges) {
  BalancerConfig bc;
  bc.pressure_margin = 0.0;
  bc.move_fraction = 0.5;
  InterCellBalancer balancer(cluster_, bc, partition_.cells());
  auto state = skewed_state(0, 50);
  // Take down the hottest donor edge and one edge of every other cell.
  state.edge_up.assign(static_cast<std::size_t>(cluster_.num_devices()), 1);
  std::vector<int> down;
  for (int c = 0; c < partition_.cells(); ++c) {
    const int victim = partition_.members[static_cast<std::size_t>(c)].front();
    down.push_back(victim);
    state.edge_up[static_cast<std::size_t>(victim)] = 0;
  }
  const auto moves = balancer.plan(state, partition_);
  for (const auto& move : moves) {
    EXPECT_TRUE(std::find(down.begin(), down.end(), move.from) == down.end());
    EXPECT_TRUE(std::find(down.begin(), down.end(), move.to) == down.end());
  }
}

TEST_F(BalancerFixture, HonorsImportAvoidanceHints) {
  BalancerConfig bc;
  bc.pressure_margin = 0.0;
  bc.move_fraction = 0.5;
  InterCellBalancer with_hints(cluster_, bc, partition_.cells());
  InterCellBalancer without_hints(cluster_, bc, partition_.cells());
  auto state = skewed_state(0, 50);
  const auto baseline = without_hints.plan(state, partition_);
  ASSERT_FALSE(baseline.empty());
  // Open the import breaker for every app everywhere: no move may land.
  sim::SchedulerHints hints;
  hints.avoid_import = util::Grid2<std::uint8_t>(cluster_.num_apps(),
                                                 cluster_.num_devices(), 1);
  state.hints = &hints;
  EXPECT_TRUE(with_hints.plan(state, partition_).empty());
}

TEST_F(BalancerFixture, DisabledPlansNothing) {
  BalancerConfig bc;
  bc.enabled = false;
  InterCellBalancer balancer(cluster_, bc, partition_.cells());
  EXPECT_TRUE(balancer.plan(skewed_state(0, 50), partition_).empty());
}

TEST_F(BalancerFixture, PropertyMovesRespectLivenessUnderMassFailure) {
  // Seeded property sweep: under arbitrary mass edge-down masks (up to half
  // the cluster at once) every planned move stays on live edges and within
  // the donor's demand. Exercises the storm regime the control plane sees
  // between a failure and the next repartition.
  BalancerConfig bc;
  bc.pressure_margin = 0.0;
  bc.move_fraction = 0.5;
  util::Xoshiro256StarStar rng(0xdead5eedULL);
  const int K = cluster_.num_devices();
  for (int trial = 0; trial < 48; ++trial) {
    InterCellBalancer balancer(cluster_, bc, partition_.cells());
    auto state = skewed_state(trial % partition_.cells(), 60);
    state.edge_up.assign(static_cast<std::size_t>(K), 1);
    for (int k = 0; k < K; ++k) {
      if (rng.bernoulli(0.5)) state.edge_up[static_cast<std::size_t>(k)] = 0;
    }
    const auto moves = balancer.plan(state, partition_);
    for (const auto& move : moves) {
      EXPECT_TRUE(state.is_up(move.from))
          << "trial " << trial << ": donated from down edge " << move.from;
      EXPECT_TRUE(state.is_up(move.to))
          << "trial " << trial << ": imported at down edge " << move.to;
      EXPECT_GT(move.count, 0);
      EXPECT_LE(move.count, state.demand(move.app, move.from));
    }
  }
}

TEST_F(BalancerFixture, FullyDownCellNeitherDonatesNorReceives) {
  // Kill every member of two cells outright: no move may originate in or
  // land on either, however empty (and thus "cold") they look. The hot cell
  // stays live so moves are actually planned.
  BalancerConfig bc;
  bc.pressure_margin = 0.0;
  bc.move_fraction = 0.5;
  InterCellBalancer balancer(cluster_, bc, partition_.cells());
  auto state = skewed_state(/*hot=*/2, /*load=*/80);
  state.edge_up.assign(static_cast<std::size_t>(cluster_.num_devices()), 1);
  for (const int c : {0, 1}) {
    for (const int k : partition_.members[static_cast<std::size_t>(c)]) {
      state.edge_up[static_cast<std::size_t>(k)] = 0;
    }
  }
  const auto moves = balancer.plan(state, partition_);
  ASSERT_FALSE(moves.empty());
  for (const auto& move : moves) {
    const int from_cell = partition_.cell_of[static_cast<std::size_t>(move.from)];
    const int to_cell = partition_.cell_of[static_cast<std::size_t>(move.to)];
    EXPECT_GT(from_cell, 1);
    EXPECT_GT(to_cell, 1);
  }
}

// -------------------------------------------------------- cell scheduler ----

TEST(CellScheduler, SingleCellIsByteIdenticalToMonolithic) {
  // k = 1 must be a byte-identical pass-through of the wrapped scheduler,
  // decision by decision, over a simulated horizon with feedback.
  const auto cluster = device::ClusterSpec(
      device::one_of_each(), model::Zoo::small_scale(), 6.0, 0x7e57);
  workload::GeneratorConfig gc;
  gc.slots = 5;
  gc.mean_per_edge = 12.0;
  const auto trace = workload::generate(cluster, gc);

  core::BirpConfig birp;
  core::BirpScheduler mono(cluster, birp);

  PartitionConfig pc;
  pc.cells = 1;
  CellSchedulerConfig cc;
  cc.birp = birp;
  CellScheduler sharded(cluster, partition_cluster(cluster, nullptr, pc), cc);
  EXPECT_EQ(sharded.cells(), 1);

  // Drive both through the simulator separately (identical inputs slot by
  // slot because the simulator is deterministic in its seed) and compare
  // the aggregate outcome bit for bit.
  sim::SimulatorConfig sc;
  sc.threads = 1;
  const auto m1 = sim::Simulator(cluster, trace, sc).run(mono);
  const auto m2 = sim::Simulator(cluster, trace, sc).run(sharded);
  EXPECT_DOUBLE_EQ(m1.total_loss(), m2.total_loss());
  EXPECT_EQ(m1.total_requests(), m2.total_requests());
  EXPECT_EQ(m1.slo_failures(), m2.slo_failures());
  EXPECT_DOUBLE_EQ(m1.latency_quantile(0.5), m2.latency_quantile(0.5));
  EXPECT_DOUBLE_EQ(m1.latency_quantile(0.95), m2.latency_quantile(0.95));
  EXPECT_DOUBLE_EQ(m1.total_energy_j(), m2.total_energy_j());

  // And the very first decision matches structurally too (fresh schedulers,
  // no feedback yet).
  core::BirpScheduler mono2(cluster, birp);
  CellScheduler sharded2(cluster, partition_cluster(cluster, nullptr, pc), cc);
  sim::SlotState state;
  state.slot = 0;
  state.demand = util::Grid2<std::int64_t>(cluster.num_apps(),
                                           cluster.num_devices(), 0);
  for (int i = 0; i < cluster.num_apps(); ++i) {
    for (int k = 0; k < cluster.num_devices(); ++k) {
      state.demand(i, k) = trace.at(0, i, k);
    }
  }
  expect_decisions_equal(mono2.decide(state), sharded2.decide(state));
}

class ShardedFixture : public ::testing::Test {
 protected:
  ShardedFixture()
      : config_(small_topology_config(12, 3)),
        topology_(workload::generate_topology(config_)),
        cluster_(workload::make_cluster(topology_, config_)) {
    PartitionConfig pc;
    pc.cells = 4;
    partition_ = partition_cluster(cluster_, &topology_.link_mbps, pc);
    workload::GeneratorConfig gc;
    gc.slots = 3;
    gc.mean_per_edge = 10.0;
    trace_ = workload::generate(cluster_, gc);
  }

  [[nodiscard]] metrics::RunMetrics run(const CellSchedulerConfig& cc) const {
    CellScheduler scheduler(cluster_, partition_, cc);
    sim::SimulatorConfig sc;
    sc.threads = 1;
    return sim::Simulator(cluster_, *trace_, sc).run(scheduler);
  }

  workload::TopologyConfig config_;
  workload::Topology topology_;
  device::ClusterSpec cluster_;
  Partition partition_;
  std::optional<workload::Trace> trace_;
};

TEST_F(ShardedFixture, DecisionsBitIdenticalAcrossCellThreadCounts) {
  // The defining property: for a fixed partition, cell_threads is purely a
  // latency knob. Run the full simulated horizon (with feedback, faults off)
  // at 1 and at 8 threads and demand bit-equal outcomes.
  CellSchedulerConfig serial;
  serial.cell_threads = 0;
  CellSchedulerConfig parallel;
  parallel.cell_threads = 8;
  const auto m1 = run(serial);
  const auto m2 = run(parallel);
  EXPECT_DOUBLE_EQ(m1.total_loss(), m2.total_loss());
  EXPECT_EQ(m1.total_requests(), m2.total_requests());
  EXPECT_EQ(m1.slo_failures(), m2.slo_failures());
  EXPECT_EQ(m1.dropped(), m2.dropped());
  EXPECT_DOUBLE_EQ(m1.latency_quantile(0.5), m2.latency_quantile(0.5));
  EXPECT_DOUBLE_EQ(m1.latency_quantile(0.99), m2.latency_quantile(0.99));
  EXPECT_DOUBLE_EQ(m1.total_energy_j(), m2.total_energy_j());
}

TEST_F(ShardedFixture, NestedSolverPoolsCompleteAndStayDeterministic) {
  // Nested pools (cells on one pool, each cell's solver on its own) must
  // neither deadlock nor perturb decisions. ctest's per-test timeout turns
  // a deadlock into a loud failure.
  CellSchedulerConfig nested;
  nested.cell_threads = 4;
  nested.birp.solver_threads = 2;
  CellSchedulerConfig flat;
  flat.cell_threads = 0;
  flat.birp.solver_threads = 0;
  const auto m1 = run(nested);
  const auto m2 = run(flat);
  EXPECT_DOUBLE_EQ(m1.total_loss(), m2.total_loss());
  EXPECT_EQ(m1.slo_failures(), m2.slo_failures());
  EXPECT_DOUBLE_EQ(m1.latency_quantile(0.95), m2.latency_quantile(0.95));
}

TEST_F(ShardedFixture, FirstDecisionBitIdenticalAcrossThreads) {
  // Decision-level (not just metric-level) equality for one slot.
  CellSchedulerConfig serial;
  serial.cell_threads = 0;
  CellSchedulerConfig parallel;
  parallel.cell_threads = 8;
  CellScheduler a(cluster_, partition_, serial);
  CellScheduler b(cluster_, partition_, parallel);
  sim::SlotState state;
  state.slot = 0;
  state.demand = util::Grid2<std::int64_t>(cluster_.num_apps(),
                                           cluster_.num_devices(), 0);
  for (int i = 0; i < cluster_.num_apps(); ++i) {
    for (int k = 0; k < cluster_.num_devices(); ++k) {
      state.demand(i, k) = trace_->at(0, i, k);
    }
  }
  expect_decisions_equal(a.decide(state), b.decide(state));
}

TEST_F(ShardedFixture, MergedDecisionConservesSkewedDemandEndToEnd) {
  // Skewed demand forces balancer moves; the merged decision must go
  // through validate_and_repair with the ORIGINAL demand and come out
  // exactly conservative. The repair may cancel some flow (cell-local
  // flows compete with balancer flows for the same edge budgets), but the
  // balancer's network cap keeps that from wiping out the redistribution.
  CellSchedulerConfig cc;
  cc.balancer.pressure_margin = 0.0;
  cc.balancer.move_fraction = 0.4;
  CellScheduler scheduler(cluster_, partition_, cc);
  sim::SlotState state;
  state.slot = 0;
  state.demand = util::Grid2<std::int64_t>(cluster_.num_apps(),
                                           cluster_.num_devices(), 0);
  for (const int k : partition_.members[0]) {
    for (int i = 0; i < cluster_.num_apps(); ++i) {
      state.demand(i, k) = 30;
    }
  }
  auto decision = scheduler.decide(state);
  EXPECT_GT(scheduler.balancer().moved_total(), 0);
  const auto inter_cell_flow = [&](const sim::SlotDecision& d) {
    std::int64_t total = 0;
    for (const auto& flow : d.flows) {
      if (partition_.cell_of[static_cast<std::size_t>(flow.from)] !=
          partition_.cell_of[static_cast<std::size_t>(flow.to)]) {
        total += flow.count;
      }
    }
    return total;
  };
  EXPECT_EQ(inter_cell_flow(decision), scheduler.balancer().moved_total());
  (void)sim::validate_and_repair(cluster_, state.demand, nullptr, decision);
  // The balancer's network cap keeps repair-time cancellation (cell-local
  // flows competing for the same budgets) from wiping out redistribution.
  EXPECT_GT(inter_cell_flow(decision), 0);
  // Post-repair the decision is exactly conservative by construction; the
  // moved requests must show up as served or dropped somewhere, not vanish.
  std::int64_t accounted = decision.total_served() + decision.total_dropped();
  std::int64_t demanded = 0;
  for (const auto d : state.demand.raw()) demanded += d;
  EXPECT_EQ(accounted, demanded);
}

TEST_F(ShardedFixture, ReportsAggregateFallbacksAndName) {
  CellSchedulerConfig cc;
  CellScheduler scheduler(cluster_, partition_, cc);
  EXPECT_EQ(scheduler.name(), "BIRP-CLUSTER/4");
  EXPECT_EQ(scheduler.fallback_count(), 0);
  CellSchedulerConfig offline;
  offline.offline = true;
  offline.name_override = "custom";
  CellScheduler named(cluster_, partition_, offline);
  EXPECT_EQ(named.name(), "custom");
}

TEST_F(ShardedFixture, RunsUnderTheServeEngine) {
  CellSchedulerConfig cc;
  cc.cell_threads = 2;
  CellScheduler scheduler(cluster_, partition_, cc);
  serve::ServeConfig sc;
  sc.threads = 2;
  serve::ServeEngine engine(cluster_, *trace_, sc);
  const auto metrics = engine.run(scheduler);
  EXPECT_EQ(metrics.total_requests(), trace_->total());
}

TEST_F(ShardedFixture, SurvivesEdgeFailuresWithinACell) {
  CellSchedulerConfig cc;
  CellScheduler scheduler(cluster_, partition_, cc);
  sim::SlotState state;
  state.slot = 0;
  state.demand = util::Grid2<std::int64_t>(cluster_.num_apps(),
                                           cluster_.num_devices(), 5);
  state.edge_up.assign(static_cast<std::size_t>(cluster_.num_devices()), 1);
  state.edge_up[static_cast<std::size_t>(partition_.members[0].front())] = 0;
  auto decision = scheduler.decide(state);
  // Nothing may be served on the dead edge.
  const int dead = partition_.members[0].front();
  for (int i = 0; i < cluster_.num_apps(); ++i) {
    for (int j = 0; j < cluster_.zoo().max_variants(); ++j) {
      EXPECT_EQ(decision.served(i, j, dead), 0);
    }
  }
}

}  // namespace
}  // namespace birp::cluster
