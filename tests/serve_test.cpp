// Tests for the request-level serving runtime: batch-seal rule, admission
// queue, and the ServeEngine end to end.
#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "birp/device/cluster.hpp"
#include "birp/metrics/report_csv.hpp"
#include "birp/serve/adaptive.hpp"
#include "birp/serve/batcher.hpp"
#include "birp/serve/engine.hpp"
#include "birp/serve/legacy_queue.hpp"
#include "birp/serve/queue.hpp"
#include "birp/serve/request.hpp"
#include "birp/util/alloc_count.hpp"
#include "birp/sim/scheduler.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/workload/arrivals.hpp"
#include "birp/workload/trace.hpp"

namespace birp::serve {
namespace {

device::ClusterSpec small_cluster(double tau = 6.0) {
  return device::ClusterSpec(device::one_of_each(), model::Zoo::small_scale(),
                             tau, 0x7e57);
}

/// Serves all local demand with variant 0 (batch == demand, capped at 16).
/// Stateless, so the slot simulator and the serve engine reach identical
/// decisions when fed identical demand.
class LocalGreedyScheduler : public sim::Scheduler {
 public:
  explicit LocalGreedyScheduler(const device::ClusterSpec& cluster)
      : cluster_(cluster) {}
  [[nodiscard]] std::string name() const override { return "local-greedy"; }
  [[nodiscard]] sim::SlotDecision decide(const sim::SlotState& state) override {
    sim::SlotDecision decision(cluster_.num_apps(),
                               cluster_.zoo().max_variants(),
                               cluster_.num_devices());
    for (int i = 0; i < cluster_.num_apps(); ++i) {
      for (int k = 0; k < cluster_.num_devices(); ++k) {
        const auto demand = state.demand(i, k);
        const auto take = std::min<std::int64_t>(demand, 16);
        decision.served(i, 0, k) = take;
        decision.kernel(i, 0, k) =
            static_cast<int>(std::max<std::int64_t>(take, 1));
        decision.drops(i, k) = demand - take;
      }
    }
    return decision;
  }

 private:
  const device::ClusterSpec& cluster_;
};

/// Replays a fixed decision every slot.
class FixedScheduler : public sim::Scheduler {
 public:
  explicit FixedScheduler(sim::SlotDecision decision)
      : decision_(std::move(decision)) {}
  [[nodiscard]] std::string name() const override { return "fixed"; }
  [[nodiscard]] sim::SlotDecision decide(const sim::SlotState&) override {
    return decision_;
  }

 private:
  sim::SlotDecision decision_;
};

workload::Trace uniform_trace(const device::ClusterSpec& cluster, int slots,
                              std::int64_t per_cell) {
  workload::Trace trace(slots, cluster.num_apps(), cluster.num_devices());
  for (int t = 0; t < slots; ++t) {
    for (int i = 0; i < cluster.num_apps(); ++i) {
      for (int k = 0; k < cluster.num_devices(); ++k) {
        trace.set(t, i, k, per_cell);
      }
    }
  }
  return trace;
}

ServeItem item_at(int app, double avail, std::int64_t seq = 0) {
  ServeItem item;
  item.app = app;
  item.seq = seq;
  item.arrival_s = avail;
  item.available_s = avail;
  return item;
}

// ------------------------------------------------------------ seal_batch ----

TEST(SealBatch, FullBatchLaunchesAtLastMember) {
  const std::vector<double> avails{0.1, 0.2, 0.3};
  const auto seal = seal_batch(avails, 3, 0.0, 1.0, true);
  EXPECT_EQ(seal.count, 3);
  EXPECT_FALSE(seal.timed_out);
  EXPECT_DOUBLE_EQ(seal.formation_end_s, 0.3);
  EXPECT_DOUBLE_EQ(seal.start_s, 0.3);
}

TEST(SealBatch, BusyAcceleratorExtendsTheWindow) {
  // The accelerator frees at t=6; a request ready at t=5 still joins even
  // though the timeout alone would have sealed the batch at t=0.1.
  const std::vector<double> avails{0.0, 5.0};
  const auto seal = seal_batch(avails, 2, 6.0, 0.1, true);
  EXPECT_EQ(seal.count, 2);
  EXPECT_DOUBLE_EQ(seal.start_s, 6.0);
}

TEST(SealBatch, TimeoutSealsPartialBatch) {
  const std::vector<double> avails{0.25};
  const auto seal = seal_batch(avails, 4, 0.0, 0.5, true);
  EXPECT_EQ(seal.count, 1);
  EXPECT_TRUE(seal.timed_out);
  EXPECT_DOUBLE_EQ(seal.start_s, 0.75);         // deadline = 0.25 + 0.5
  EXPECT_DOUBLE_EQ(seal.formation_end_s, 0.75);
}

TEST(SealBatch, ExhaustedStreamLaunchesImmediately) {
  const std::vector<double> avails{0.25};
  const auto seal = seal_batch(avails, 4, 0.0, 0.5, false);
  EXPECT_EQ(seal.count, 1);
  EXPECT_FALSE(seal.timed_out);
  EXPECT_DOUBLE_EQ(seal.start_s, 0.25);
}

TEST(SealBatch, NegativeWaitMeansWaitForFullBatch) {
  const std::vector<double> avails{0.0, 9.0};
  const auto seal = seal_batch(avails, 2, 0.0, -1.0, true);
  EXPECT_EQ(seal.count, 2);
  EXPECT_DOUBLE_EQ(seal.start_s, 9.0);
}

TEST(SealBatch, ConsidersAtMostNeedMembers) {
  const std::vector<double> avails{0.1, 0.2, 0.3, 0.4};
  const auto seal = seal_batch(avails, 2, 0.0, 1.0, true);
  EXPECT_EQ(seal.count, 2);
  EXPECT_DOUBLE_EQ(seal.formation_end_s, 0.2);
}

TEST(SealBatch, EmptyCandidateListRejected) {
  // Sealing from a drained queue is a caller bug; the contract check must
  // trip instead of fabricating a zero-member launch.
  const std::vector<double> empty;
  EXPECT_THROW(static_cast<void>(seal_batch(empty, 1, 0.0, 1.0, true)),
               std::logic_error);
}

// -------------------------------------------------------- AdmissionQueue ----

TEST(AdmissionQueue, UnboundedAdmitsEverything) {
  std::vector<ServeItem> stream{item_at(0, 0.0, 0), item_at(1, 0.1, 0),
                                item_at(0, 0.2, 1)};
  AdmissionQueue queue(2, stream, 0, QueuePolicy::kRejectNewest);
  queue.fill(0, 2);
  EXPECT_EQ(queue.waiting(0).size(), 2u);
  EXPECT_EQ(queue.waiting(1).size(), 1u);  // admitted chronologically en route
  EXPECT_TRUE(queue.dropped().empty());
  EXPECT_EQ(queue.upstream(0), 0);
}

TEST(AdmissionQueue, RejectNewestBouncesArrivalWhenFull) {
  std::vector<ServeItem> stream{item_at(0, 0.0, 0), item_at(0, 0.1, 1),
                                item_at(0, 0.2, 2)};
  AdmissionQueue queue(1, stream, 2, QueuePolicy::kRejectNewest);
  queue.fill(0, 3);
  EXPECT_EQ(queue.waiting(0).size(), 2u);
  ASSERT_EQ(queue.dropped().size(), 1u);
  EXPECT_EQ(queue.dropped().front().seq, 2);  // the arriving request bounced
}

TEST(AdmissionQueue, EvictOldestKeepsTheArrival) {
  std::vector<ServeItem> stream{item_at(0, 0.0, 0), item_at(0, 0.1, 1),
                                item_at(0, 0.2, 2)};
  AdmissionQueue queue(1, stream, 2, QueuePolicy::kEvictOldest);
  queue.fill(0, 3);
  ASSERT_EQ(queue.waiting(0).size(), 2u);
  EXPECT_EQ(queue.waiting(0).front().seq, 1);  // seq 0 was evicted
  ASSERT_EQ(queue.dropped().size(), 1u);
  EXPECT_EQ(queue.dropped().front().seq, 0);
}

TEST(AdmissionQueue, DispatchFreesCapacityAtLaunchStart) {
  std::vector<ServeItem> stream{item_at(0, 0.0, 0), item_at(0, 1.0, 1)};
  AdmissionQueue queue(1, stream, 1, QueuePolicy::kRejectNewest);
  queue.fill(0, 1);
  const auto batch = queue.take(0, 1);
  ASSERT_EQ(batch.size(), 1u);
  queue.on_dispatch(0.5, batch.size());  // leaves the buffer at t=0.5
  queue.fill(0, 1);                      // arrival at t=1.0 sees a free slot
  EXPECT_EQ(queue.waiting(0).size(), 1u);
  EXPECT_TRUE(queue.dropped().empty());
}

TEST(AdmissionQueue, SealedButNotYetLaunchedStillHoldsCapacity) {
  // The launch starts at t=0.5, after the second arrival at t=0.2: at that
  // arrival's admission instant the buffer is still occupied.
  std::vector<ServeItem> stream{item_at(0, 0.0, 0), item_at(0, 0.2, 1)};
  AdmissionQueue queue(1, stream, 1, QueuePolicy::kRejectNewest);
  queue.fill(0, 1);
  const auto batch = queue.take(0, 1);
  queue.on_dispatch(0.5, batch.size());
  queue.fill(0, 1);
  EXPECT_TRUE(queue.waiting(0).empty());
  ASSERT_EQ(queue.dropped().size(), 1u);
  EXPECT_EQ(queue.dropped().front().seq, 1);
}

TEST(AdmissionQueue, FillUntilRespectsThreshold) {
  std::vector<ServeItem> stream{item_at(0, 0.0, 0), item_at(0, 0.9, 1)};
  AdmissionQueue queue(1, stream, 0, QueuePolicy::kRejectNewest);
  queue.fill_until(0, 2, 0.5);
  EXPECT_EQ(queue.waiting(0).size(), 1u);  // t=0.9 stays upstream
  EXPECT_EQ(queue.upstream(0), 1);
  const auto rest = queue.drain_unprocessed();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest.front().seq, 1);
}

TEST(AdmissionQueue, DepthStatsTrackBufferedRequests) {
  std::vector<ServeItem> stream{item_at(0, 0.0, 0), item_at(0, 0.1, 1)};
  AdmissionQueue queue(1, stream, 0, QueuePolicy::kRejectNewest);
  queue.fill(0, 2);
  EXPECT_EQ(queue.depth_stats().count(), 2u);
  EXPECT_DOUBLE_EQ(queue.depth_stats().max(), 2.0);
}

TEST(AdmissionQueue, DrainsSettleDeferredDepartures) {
  // Regression: a batch sealed with a future launch start left its count in
  // depth_ and its event in the departure heap; the drains never applied
  // them, so a drained queue still reported nonzero depth.
  std::vector<ServeItem> stream{item_at(0, 0.0, 0), item_at(0, 0.1, 1),
                                item_at(0, 5.0, 2)};
  AdmissionQueue queue(1, stream, 2, QueuePolicy::kRejectNewest);
  queue.fill(0, 2);
  const auto batch = queue.take(0, 2);
  queue.on_dispatch(10.0, batch.size());  // launch far beyond every arrival
  EXPECT_EQ(queue.depth(), 2);            // sealed, not yet launched
  EXPECT_TRUE(queue.drain_waiting().empty());
  EXPECT_EQ(queue.depth(), 0);  // departures settled, not stale
  const auto rest = queue.drain_unprocessed();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest.front().seq, 2);
  EXPECT_EQ(queue.depth(), 0);
}

TEST(AdmissionQueue, DrainWaitingReturnsBufferedAndZeroesDepth) {
  // Mixed state at drain time: one taken-and-dispatched, one still waiting.
  std::vector<ServeItem> stream{item_at(0, 0.0, 0), item_at(0, 0.1, 1)};
  AdmissionQueue queue(1, stream, 0, QueuePolicy::kRejectNewest);
  queue.fill(0, 2);
  const auto batch = queue.take(0, 1);
  queue.on_dispatch(3.0, batch.size());
  EXPECT_EQ(queue.depth(), 2);  // 1 waiting + 1 undeparted
  const auto rest = queue.drain_waiting();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest.front().seq, 1);
  EXPECT_EQ(queue.depth(), 0);
}

TEST(AdmissionQueue, EveryDecisionPathSamplesDepthOnce) {
  // admit, bounce, and evict-then-admit each record exactly one depth
  // sample, so sample count == processed arrivals on every policy.
  {
    std::vector<ServeItem> stream{item_at(0, 0.0, 0), item_at(0, 0.1, 1),
                                  item_at(0, 0.2, 2)};
    AdmissionQueue queue(1, stream, 2, QueuePolicy::kRejectNewest);
    queue.fill(0, 3);
    EXPECT_EQ(queue.depth_stats().count(), 3u);        // 2 admits + 1 bounce
    EXPECT_DOUBLE_EQ(queue.depth_stats().max(), 2.0);  // never over capacity
  }
  {
    std::vector<ServeItem> stream{item_at(0, 0.0, 0), item_at(0, 0.1, 1),
                                  item_at(0, 0.2, 2)};
    AdmissionQueue queue(1, stream, 2, QueuePolicy::kEvictOldest);
    queue.fill(0, 3);
    EXPECT_EQ(queue.depth_stats().count(), 3u);  // 2 admits + 1 evict+admit
    EXPECT_DOUBLE_EQ(queue.depth_stats().max(), 2.0);
  }
  {
    // Evict policy with nothing evictable (all buffered already sealed):
    // the arrival bounces and still contributes exactly one sample.
    std::vector<ServeItem> stream{item_at(0, 0.0, 0), item_at(0, 0.2, 1)};
    AdmissionQueue queue(1, stream, 1, QueuePolicy::kEvictOldest);
    queue.fill(0, 1);
    const auto batch = queue.take(0, 1);
    queue.on_dispatch(0.5, batch.size());
    queue.fill(0, 1);
    ASSERT_EQ(queue.dropped().size(), 1u);
    EXPECT_EQ(queue.dropped().front().seq, 1);
    EXPECT_EQ(queue.depth_stats().count(), 2u);
  }
}

// ----------------------------------------------------------- ServeEngine ----

class ServeEngineFixture : public ::testing::Test {
 protected:
  ServeEngineFixture() : cluster_(small_cluster()) {}
  device::ClusterSpec cluster_;
};

TEST_F(ServeEngineFixture, EveryArrivalResolvesExactlyOnce) {
  const auto trace = uniform_trace(cluster_, 2, 12);
  ServeConfig config;
  config.noise_sigma = 0.0;
  config.keep_records = true;
  ServeEngine engine(cluster_, trace, config);
  LocalGreedyScheduler scheduler(cluster_);
  metrics::RunMetrics metrics;
  for (int t = 0; t < trace.slots(); ++t) {
    const auto result = engine.step(scheduler, &metrics);
    EXPECT_EQ(result.served + result.planned_drops + result.queue_drops,
              trace.slot_total(t));
    EXPECT_EQ(static_cast<std::int64_t>(result.records.size()),
              trace.slot_total(t));
  }
  EXPECT_EQ(metrics.total_requests(), trace.total());
}

TEST_F(ServeEngineFixture, BitIdenticalAcrossThreadCounts) {
  const auto trace = uniform_trace(cluster_, 4, 12);
  ServeConfig one;
  one.threads = 1;
  ServeConfig many;
  many.threads = 8;
  LocalGreedyScheduler s1(cluster_);
  LocalGreedyScheduler s2(cluster_);
  const auto m1 = ServeEngine(cluster_, trace, one).run(s1);
  const auto m2 = ServeEngine(cluster_, trace, many).run(s2);
  EXPECT_EQ(m1.total_requests(), m2.total_requests());
  EXPECT_EQ(m1.slo_failures(), m2.slo_failures());
  EXPECT_EQ(m1.dropped(), m2.dropped());
  EXPECT_EQ(m1.queue_dropped(), m2.queue_dropped());
  EXPECT_DOUBLE_EQ(m1.total_loss(), m2.total_loss());
  EXPECT_DOUBLE_EQ(m1.total_energy_j(), m2.total_energy_j());
  for (const double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(m1.latency_quantile(q), m2.latency_quantile(q));
    EXPECT_DOUBLE_EQ(m1.queue_wait().quantile(q), m2.queue_wait().quantile(q));
    EXPECT_DOUBLE_EQ(m1.exec_latency().quantile(q),
                     m2.exec_latency().quantile(q));
  }
  EXPECT_EQ(m1.queue_depth().count(), m2.queue_depth().count());
  EXPECT_DOUBLE_EQ(m1.queue_depth().mean(), m2.queue_depth().mean());
  EXPECT_DOUBLE_EQ(m1.queue_depth().max(), m2.queue_depth().max());
}

TEST_F(ServeEngineFixture, CountsMatchSlotSimulatorWithoutNoise) {
  // Same scheduler, same demand, zero noise, ample queue: the request-level
  // engine must agree with the slot simulator on what got served/dropped.
  const auto trace = uniform_trace(cluster_, 3, 20);  // greedy drops 4/cell
  sim::SimulatorConfig sim_config;
  sim_config.noise_sigma = 0.0;
  LocalGreedyScheduler sim_sched(cluster_);
  const auto sim_metrics =
      sim::Simulator(cluster_, trace, sim_config).run(sim_sched);

  ServeConfig serve_config;
  serve_config.noise_sigma = 0.0;
  LocalGreedyScheduler serve_sched(cluster_);
  const auto serve_metrics =
      ServeEngine(cluster_, trace, serve_config).run(serve_sched);

  EXPECT_EQ(serve_metrics.total_requests(), sim_metrics.total_requests());
  EXPECT_EQ(serve_metrics.dropped(), sim_metrics.dropped());
  EXPECT_EQ(serve_metrics.total_requests() - serve_metrics.dropped(),
            sim_metrics.total_requests() - sim_metrics.dropped());
  EXPECT_EQ(serve_metrics.queue_dropped(), 0);
}

TEST_F(ServeEngineFixture, BackpressureDropsAccountedExactlyOnce) {
  const auto trace = uniform_trace(cluster_, 2, 20);
  ServeConfig config;
  config.noise_sigma = 0.0;
  config.queue_capacity = 2;  // far below the 16-deep batches greedy wants
  config.keep_records = true;
  ServeEngine engine(cluster_, trace, config);
  LocalGreedyScheduler scheduler(cluster_);
  metrics::RunMetrics metrics;
  std::int64_t served = 0;
  std::int64_t queue_drops = 0;
  std::int64_t planned = 0;
  std::int64_t late_served = 0;
  while (engine.current_slot() < trace.slots()) {
    const auto result = engine.step(scheduler, &metrics);
    served += result.served;
    queue_drops += result.queue_drops;
    planned += result.planned_drops;
    for (const auto& record : result.records) {
      if (record.outcome == Outcome::kServed && !record.met_slo) ++late_served;
    }
  }
  ASSERT_GT(queue_drops, 0);
  // Each arrival lands in exactly one bucket.
  EXPECT_EQ(served + queue_drops + planned, trace.total());
  EXPECT_EQ(metrics.total_requests(), trace.total());
  // A queue drop is a drop and an SLO failure — never double-counted.
  EXPECT_EQ(metrics.queue_dropped(), queue_drops);
  EXPECT_EQ(metrics.dropped(), queue_drops + planned);
  EXPECT_EQ(metrics.slo_failures(), late_served + queue_drops + planned);
  EXPECT_EQ(metrics.completion().count(), static_cast<std::size_t>(served));
}

TEST_F(ServeEngineFixture, EvictOldestIsAccountedLikeRejectNewest) {
  const auto trace = uniform_trace(cluster_, 1, 20);
  ServeConfig config;
  config.noise_sigma = 0.0;
  config.queue_capacity = 2;
  config.queue_policy = QueuePolicy::kEvictOldest;
  ServeEngine engine(cluster_, trace, config);
  LocalGreedyScheduler scheduler(cluster_);
  metrics::RunMetrics metrics;
  const auto result = engine.step(scheduler, &metrics);
  EXPECT_EQ(result.served + result.planned_drops + result.queue_drops,
            trace.slot_total(0));
  EXPECT_EQ(metrics.dropped(), result.planned_drops + result.queue_drops);
}

TEST_F(ServeEngineFixture, NoiseFreeObservationsMatchGroundTruthTir) {
  const auto trace = uniform_trace(cluster_, 1, 6);
  ServeConfig config;
  config.noise_sigma = 0.0;
  config.max_batch_wait_fraction = -1.0;  // full batches only
  ServeEngine engine(cluster_, trace, config);
  LocalGreedyScheduler scheduler(cluster_);
  const auto result = engine.step(scheduler);
  ASSERT_FALSE(result.feedback.observations.empty());
  for (const auto& obs : result.feedback.observations) {
    const auto& truth = cluster_.truth().tir(obs.device, obs.app, obs.variant);
    EXPECT_NEAR(obs.observed_tir, truth.tir(obs.batch), 1e-9);
  }
}

TEST_F(ServeEngineFixture, RedistributedRequestsWaitForTransfer) {
  // All of edge 0's demand is served at edge 1; requests cannot start
  // before the wireless stream delivers them.
  workload::Trace trace(1, cluster_.num_apps(), cluster_.num_devices());
  trace.set(0, 0, 0, 8);
  sim::SlotDecision decision(cluster_.num_apps(), cluster_.zoo().max_variants(),
                             cluster_.num_devices());
  decision.served(0, 0, 1) = 8;
  decision.kernel(0, 0, 1) = 8;
  decision.flows.push_back({0, 0, 1, 8});
  FixedScheduler scheduler(decision);
  ServeConfig config;
  config.noise_sigma = 0.0;
  config.max_batch_wait_fraction = -1.0;
  config.keep_records = true;
  ServeEngine engine(cluster_, trace, config);
  const auto result = engine.step(scheduler);
  ASSERT_EQ(result.served, 8);
  for (const auto& record : result.records) {
    if (record.outcome != Outcome::kServed) continue;
    EXPECT_EQ(record.served_on, 1);
    EXPECT_GE(record.item.available_s, record.item.arrival_s);
    EXPECT_GE(record.start_s + 1e-12, record.item.available_s);
  }
}

TEST_F(ServeEngineFixture, PartialBatchTimeoutBoundsFormationWait) {
  const auto trace = uniform_trace(cluster_, 1, 10);
  ServeConfig config;
  config.noise_sigma = 0.0;
  config.max_batch_wait_fraction = 0.02;
  config.keep_records = true;
  ServeEngine engine(cluster_, trace, config);
  LocalGreedyScheduler scheduler(cluster_);
  const auto result = engine.step(scheduler);
  const double max_wait_s = 0.02 * cluster_.tau_s();
  for (const auto& record : result.records) {
    if (record.outcome != Outcome::kServed) continue;
    // No request waits in formation much longer than the timeout: the batch
    // seals at the latest max_wait after its oldest member became ready.
    EXPECT_LE(record.queue_wait_s(), max_wait_s + 1e-9);
  }
}

TEST_F(ServeEngineFixture, SeedChangesArrivalPattern) {
  const auto trace = uniform_trace(cluster_, 2, 10);
  ServeConfig a;
  a.noise_sigma = 0.0;
  a.seed = 1;
  ServeConfig b;
  b.noise_sigma = 0.0;
  b.seed = 2;
  LocalGreedyScheduler s1(cluster_);
  LocalGreedyScheduler s2(cluster_);
  const auto m1 = ServeEngine(cluster_, trace, a).run(s1);
  const auto m2 = ServeEngine(cluster_, trace, b).run(s2);
  EXPECT_NE(m1.latency_quantile(0.5), m2.latency_quantile(0.5));
}

TEST_F(ServeEngineFixture, RunHonorsMaxSlots) {
  const auto trace = uniform_trace(cluster_, 6, 3);
  ServeEngine engine(cluster_, trace);
  LocalGreedyScheduler scheduler(cluster_);
  const auto metrics = engine.run(scheduler, 2);
  EXPECT_EQ(metrics.slot_loss().size(), 2u);
  EXPECT_EQ(engine.current_slot(), 2);
}

TEST_F(ServeEngineFixture, StepBeyondHorizonThrows) {
  const auto trace = uniform_trace(cluster_, 1, 1);
  ServeEngine engine(cluster_, trace);
  LocalGreedyScheduler scheduler(cluster_);
  engine.step(scheduler);
  EXPECT_THROW(engine.step(scheduler), std::logic_error);
}

TEST_F(ServeEngineFixture, MismatchedTraceRejected) {
  workload::Trace trace(1, cluster_.num_apps() + 1, cluster_.num_devices());
  EXPECT_THROW(ServeEngine(cluster_, trace), std::logic_error);
}

TEST_F(ServeEngineFixture, LatencyPercentilesAndDepthStatsPopulated) {
  const auto trace = uniform_trace(cluster_, 3, 8);
  ServeEngine engine(cluster_, trace);
  LocalGreedyScheduler scheduler(cluster_);
  const auto metrics = engine.run(scheduler);
  EXPECT_GT(metrics.latency_quantile(0.5), 0.0);
  EXPECT_LE(metrics.latency_quantile(0.5), metrics.latency_quantile(0.95));
  EXPECT_LE(metrics.latency_quantile(0.95), metrics.latency_quantile(0.99));
  EXPECT_GT(metrics.queue_depth().count(), 0u);
  EXPECT_GT(metrics.exec_latency().count(), 0u);
}

// ------------------------------------------------------- AdaptiveBatcher ----

class AdaptiveBatcherFixture : public ::testing::Test {
 protected:
  // A long tau gives every app an SLO budget far above one serial launch,
  // so deadlines in these tests are controlled by the candidates we build,
  // not by the cluster's timing accidents.
  AdaptiveBatcherFixture() : cluster_(small_cluster(/*tau=*/60.0)) {}

  [[nodiscard]] AdaptiveBatcher enabled_batcher(
      AdaptiveBatcherConfig config = {}) const {
    config.enabled = true;
    return AdaptiveBatcher(cluster_, config);
  }

  device::ClusterSpec cluster_;
};

TEST_F(AdaptiveBatcherFixture, ConfigValidationRejectsGarbage) {
  AdaptiveBatcherConfig bad_slack;
  bad_slack.slack = 0.0;
  EXPECT_THROW(validate(bad_slack), std::logic_error);
  AdaptiveBatcherConfig bad_cap;
  bad_cap.max_batch = 0;
  EXPECT_THROW(validate(bad_cap), std::logic_error);
  AdaptiveBatcherConfig bad_cost;
  bad_cost.marginal_batch_cost = -0.1;
  EXPECT_THROW(validate(bad_cost), std::logic_error);
  // The ctor clamps oversized caps to the validator's kernel limit.
  AdaptiveBatcherConfig oversized;
  oversized.max_batch = 10 * sim::kMaxKernelBatch;
  const AdaptiveBatcher batcher(cluster_, oversized);
  EXPECT_EQ(batcher.config().max_batch, sim::kMaxKernelBatch);
}

TEST_F(AdaptiveBatcherFixture, GrowthEngagesOnlyAboveBacklogThreshold) {
  AdaptiveBatcherConfig config;
  config.growth_backlog_factor = 1.5;
  config.max_batch = 16;
  const auto batcher = enabled_batcher(config);
  EXPECT_EQ(batcher.effective_target(4, 5), 4);    // below 1.5 * 4
  EXPECT_EQ(batcher.effective_target(4, 6), 6);    // at threshold: grow
  EXPECT_EQ(batcher.effective_target(4, 24), 16);  // capped at max_batch
  EXPECT_EQ(batcher.effective_target(0, 24), 16);  // prior clamped to 1 first
  // Disabled: the prior passes through untouched.
  const AdaptiveBatcher fixed(cluster_, AdaptiveBatcherConfig{});
  EXPECT_EQ(fixed.effective_target(4, 24), 4);
  EXPECT_EQ(fixed.effective_target(0, 24), 1);
}

TEST_F(AdaptiveBatcherFixture, UtilitySealsSmallerWhenTailBlowsOldestDeadline) {
  // Three members ready immediately, a fourth only after the oldest
  // member's deadline: sealing all four is doomed, sealing three wins the
  // goodput utility. Calibrated against the cluster's own gamma table.
  const auto batcher = enabled_batcher();
  const double slo = cluster_.zoo().app(0).slo_fraction * cluster_.tau_s();
  const double gamma = cluster_.gamma_s(0, 0, 0);
  ASSERT_LT(batcher.predicted_latency_s(0, 0, 0, 3), slo);
  std::vector<ServeItem> candidates{item_at(0, 0.0, 0), item_at(0, 0.0, 1),
                                    item_at(0, 0.0, 2),
                                    item_at(0, slo + 1.0, 3)};
  const auto plan = batcher.plan(0, 0, 0, candidates, /*prior=*/4, /*need=*/4,
                                 /*cursor_s=*/0.0, /*max_wait_s=*/-1.0,
                                 /*more_may_arrive=*/false);
  EXPECT_EQ(plan.reason, SealReason::kUtility);
  EXPECT_EQ(plan.seal.count, 3);
  EXPECT_FALSE(plan.seal.timed_out);
  EXPECT_DOUBLE_EQ(plan.seal.start_s, 0.0);
  EXPECT_DOUBLE_EQ(plan.predicted_completion_s,
                   batcher.predicted_latency_s(0, 0, 0, 3));
  EXPECT_LE(plan.predicted_completion_s, slo);
  // Sanity: the doomed full batch really was doomed.
  EXPECT_GT(slo + 1.0 + gamma, slo);
}

TEST_F(AdaptiveBatcherFixture, DeadlinePressureSealsInsteadOfWaiting) {
  // One member held for a timeout that lands past its deadline: the
  // fill-to-target rule would wait; the adaptive rule launches it now.
  const auto batcher = enabled_batcher();
  const double slo = cluster_.zoo().app(0).slo_fraction * cluster_.tau_s();
  ASSERT_LT(batcher.predicted_latency_s(0, 0, 0, 1), slo);
  std::vector<ServeItem> candidates{item_at(0, 0.0, 0)};
  const auto plan = batcher.plan(0, 0, 0, candidates, /*prior=*/4, /*need=*/4,
                                 /*cursor_s=*/0.0, /*max_wait_s=*/slo,
                                 /*more_may_arrive=*/true);
  EXPECT_EQ(plan.reason, SealReason::kDeadline);
  EXPECT_EQ(plan.seal.count, 1);
  EXPECT_FALSE(plan.seal.timed_out);
  EXPECT_DOUBLE_EQ(plan.seal.start_s, 0.0);
  // The same hold with slack to spare keeps the timeout seal untouched.
  const auto patient = batcher.plan(0, 0, 0, candidates, 4, 4, 0.0,
                                    /*max_wait_s=*/0.1, true);
  EXPECT_EQ(patient.reason, SealReason::kTimeout);
  EXPECT_TRUE(patient.seal.timed_out);
  EXPECT_DOUBLE_EQ(patient.seal.start_s, 0.1);
}

// ------------------------------------------- ServeEngine adaptive paths ----

TEST_F(ServeEngineFixture, BacklogGrowsBatchesBeyondTheKernelPrior) {
  // 24 requests against a kernel prior of 4: fill-to-target would run six
  // launches of 4; growth runs 16 + 8 and reports both to the tuner.
  workload::Trace trace(1, cluster_.num_apps(), cluster_.num_devices());
  trace.set(0, 0, 0, 24);
  sim::SlotDecision decision(cluster_.num_apps(), cluster_.zoo().max_variants(),
                             cluster_.num_devices());
  decision.served(0, 0, 0) = 24;
  decision.kernel(0, 0, 0) = 4;
  FixedScheduler scheduler(decision);
  ServeConfig config;
  config.noise_sigma = 0.0;
  config.max_batch_wait_fraction = -1.0;  // isolate growth from early seals
  config.keep_records = true;
  config.adaptive.enabled = true;
  config.adaptive.growth_backlog_factor = 1.5;
  config.adaptive.max_batch = 16;
  // A huge slack keeps deadlines from binding, isolating the growth rule
  // from the utility/early-seal rules.
  config.adaptive.slack = 100.0;
  ServeEngine engine(cluster_, trace, config);
  const auto result = engine.step(scheduler);
  ASSERT_EQ(result.served, 24);
  EXPECT_EQ(result.seals[static_cast<std::size_t>(SealReason::kGrowth)], 2);
  EXPECT_EQ(result.seals[static_cast<std::size_t>(SealReason::kFull)], 0);
  std::vector<int> batches;
  for (const auto& record : result.records) {
    if (record.outcome == Outcome::kServed) batches.push_back(record.batch);
  }
  EXPECT_EQ(*std::max_element(batches.begin(), batches.end()), 16);
  for (const int b : batches) EXPECT_LE(b, config.adaptive.max_batch);
  // Every launch reports, at its realized size — the tuner sees the grown
  // batches, not the decided kernel.
  ASSERT_EQ(result.feedback.observations.size(), 2u);
  EXPECT_EQ(result.feedback.observations[0].batch, 16);
  EXPECT_EQ(result.feedback.observations[1].batch, 8);
}

TEST_F(ServeEngineFixture, AdaptiveReplayIsDeterministic) {
  // A seeded burst trace replayed twice (and across thread counts) with
  // adaptation on must reproduce identical seal decisions, per-request
  // records, metrics, and the exported CSV, byte for byte.
  workload::Trace trace(6, cluster_.num_apps(), cluster_.num_devices());
  for (int t = 0; t < trace.slots(); ++t) {
    for (int i = 0; i < cluster_.num_apps(); ++i) {
      for (int k = 0; k < cluster_.num_devices(); ++k) {
        trace.set(t, i, k, t % 3 == 0 ? 28 : 3);  // burst every third slot
      }
    }
  }
  const auto run = [&](int threads) {
    ServeConfig config;
    config.threads = threads;
    config.keep_records = true;
    config.adaptive.enabled = true;
    config.adaptive.growth_backlog_factor = 1.25;
    LocalGreedyScheduler scheduler(cluster_);
    ServeEngine engine(cluster_, trace, config);
    metrics::RunMetrics metrics;
    std::vector<SlotServeResult> results;
    while (engine.current_slot() < trace.slots()) {
      results.push_back(engine.step(scheduler, &metrics));
    }
    return std::make_pair(std::move(results), std::move(metrics));
  };
  const auto [r1, m1] = run(1);
  const auto [r2, m2] = run(8);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t t = 0; t < r1.size(); ++t) {
    EXPECT_EQ(r1[t].seals, r2[t].seals) << "slot " << t;
    ASSERT_EQ(r1[t].records.size(), r2[t].records.size()) << "slot " << t;
    for (std::size_t r = 0; r < r1[t].records.size(); ++r) {
      const auto& a = r1[t].records[r];
      const auto& b = r2[t].records[r];
      EXPECT_EQ(a.item.app, b.item.app);
      EXPECT_EQ(a.item.origin, b.item.origin);
      EXPECT_EQ(a.item.seq, b.item.seq);
      EXPECT_DOUBLE_EQ(a.item.arrival_s, b.item.arrival_s);
      EXPECT_DOUBLE_EQ(a.item.available_s, b.item.available_s);
      EXPECT_EQ(a.outcome, b.outcome);
      EXPECT_EQ(a.served_on, b.served_on);
      EXPECT_EQ(a.variant, b.variant);
      EXPECT_EQ(a.batch, b.batch);
      EXPECT_DOUBLE_EQ(a.formation_end_s, b.formation_end_s);
      EXPECT_DOUBLE_EQ(a.start_s, b.start_s);
      EXPECT_DOUBLE_EQ(a.completion_s, b.completion_s);
      EXPECT_EQ(a.met_slo, b.met_slo);
    }
  }
  EXPECT_EQ(m1.total_requests(), m2.total_requests());
  EXPECT_EQ(m1.slo_failures(), m2.slo_failures());
  EXPECT_EQ(m1.total_batches(), m2.total_batches());
  for (int reason = 0; reason < kNumSealReasons; ++reason) {
    EXPECT_EQ(m1.batch_seals(reason), m2.batch_seals(reason));
  }
  EXPECT_DOUBLE_EQ(m1.total_loss(), m2.total_loss());
  const double horizon_s = cluster_.tau_s() * trace.slots();
  EXPECT_DOUBLE_EQ(m1.goodput_under_slo(horizon_s),
                   m2.goodput_under_slo(horizon_s));
  std::ostringstream csv1;
  std::ostringstream csv2;
  metrics::write_latency_csv(csv1, {{"adaptive", &m1}});
  metrics::write_latency_csv(csv2, {{"adaptive", &m2}});
  EXPECT_EQ(csv1.str(), csv2.str());
}

TEST_F(ServeEngineFixture, FullyShedQueueNeverSealsAnEmptyBatch) {
  // Regression: with deadline-aware admission shedding every arrival and a
  // zero-length batch wait, the launch loop's slot boundary lands exactly
  // on a drained queue — sealing there would hand seal_batch an empty
  // candidate list and trip its contract check.
  const auto trace = uniform_trace(cluster_, 1, 8);
  ServeConfig config;
  config.noise_sigma = 0.0;
  config.max_batch_wait_fraction = 0.0;
  config.keep_records = true;
  config.guard.admission.enabled = true;
  config.guard.admission.slack = 1e-9;  // predicted sojourn always breaches
  ServeEngine engine(cluster_, trace, config);
  LocalGreedyScheduler scheduler(cluster_);
  metrics::RunMetrics metrics;
  SlotServeResult result;
  ASSERT_NO_THROW(result = engine.step(scheduler, &metrics));
  EXPECT_EQ(result.served, 0);
  EXPECT_GT(result.deadline_sheds, 0);
  // Every arrival still resolves exactly once — as a shed or planned drop.
  EXPECT_EQ(result.deadline_sheds + result.planned_drops,
            trace.slot_total(0));
  EXPECT_EQ(metrics.deadline_shed(), result.deadline_sheds);
  std::int64_t sealed = 0;
  for (const auto n : result.seals) sealed += n;
  EXPECT_EQ(sealed, 0);
}

// ------------------------------------------------- legacy byte-identity ----
// The ring-backed AdmissionQueue must reproduce the seed implementation's
// admit/shed/defer stream decision for decision. These tests drive the
// kept-verbatim LegacyAdmissionQueue and the rewrite through identical
// seeded op scripts and require every observable to match.

void expect_same_items(const std::vector<ServeItem>& legacy,
                       const std::vector<ServeItem>& ring,
                       const std::string& what) {
  ASSERT_EQ(legacy.size(), ring.size()) << what;
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].app, ring[i].app) << what << " #" << i;
    EXPECT_EQ(legacy[i].origin, ring[i].origin) << what << " #" << i;
    EXPECT_EQ(legacy[i].seq, ring[i].seq) << what << " #" << i;
    EXPECT_DOUBLE_EQ(legacy[i].arrival_s, ring[i].arrival_s)
        << what << " #" << i;
    EXPECT_DOUBLE_EQ(legacy[i].available_s, ring[i].available_s)
        << what << " #" << i;
  }
}

/// Seeded arrival stream, sorted by (available_s, app, origin, seq) as both
/// queue contracts require.
std::vector<ServeItem> seeded_stream(int apps, int count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> when(0.0, 10.0);
  std::vector<ServeItem> stream;
  stream.reserve(static_cast<std::size_t>(count));
  for (int n = 0; n < count; ++n) {
    ServeItem item;
    item.app = static_cast<int>(rng() % static_cast<std::uint64_t>(apps));
    item.origin = static_cast<int>(rng() % 3);
    item.arrival_s = when(rng);
    item.available_s = item.arrival_s;
    stream.push_back(item);
  }
  std::sort(stream.begin(), stream.end(),
            [](const ServeItem& a, const ServeItem& b) {
              if (a.available_s != b.available_s)
                return a.available_s < b.available_s;
              if (a.app != b.app) return a.app < b.app;
              return a.origin < b.origin;
            });
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i].seq = static_cast<std::int64_t>(i);
  }
  return stream;
}

/// Pure gate: shed when too much is buffered ahead or on a seq stripe. Both
/// implementations call it with their own (item, buffered_ahead) pairs, so
/// agreement here means the admission order itself agrees.
bool stripe_gate(const ServeItem& item, std::int64_t buffered_ahead) {
  return buffered_ahead <= 6 && item.seq % 5 != 4;
}
bool stripe_gate_thunk(const void*, const ServeItem& item,
                       std::int64_t buffered_ahead) {
  return stripe_gate(item, buffered_ahead);
}

void run_identity_script(std::int64_t capacity, QueuePolicy policy,
                         bool gated, std::uint64_t seed) {
  constexpr int kApps = 3;
  const auto stream = seeded_stream(kApps, 240, seed);
  LegacyAdmissionQueue legacy(kApps, stream, capacity, policy,
                              gated ? LegacyAdmissionGate(stripe_gate)
                                    : LegacyAdmissionGate(nullptr));
  AdmissionQueue ring(kApps, stream, capacity, policy,
                      gated ? AdmissionGate(nullptr, &stripe_gate_thunk)
                            : AdmissionGate());
  std::mt19937_64 rng(seed ^ 0x5c21f7);
  double now_s = 0.0;
  for (int op = 0; op < 400; ++op) {
    const int app = static_cast<int>(rng() % kApps);
    switch (rng() % 4) {
      case 0: {
        const auto want = static_cast<std::size_t>(rng() % 9);
        legacy.fill(app, want);
        ring.fill(app, want);
        break;
      }
      case 1: {
        const auto want = static_cast<std::size_t>(rng() % 9);
        const double threshold =
            now_s + static_cast<double>(rng() % 100) * 0.05;
        legacy.fill_until(app, want, threshold);
        ring.fill_until(app, want, threshold);
        break;
      }
      case 2: {
        const std::size_t waiting = legacy.waiting_size(app);
        ASSERT_EQ(waiting, ring.waiting(app).size()) << "op " << op;
        const std::size_t count =
            std::min<std::size_t>(rng() % 7, waiting);
        const auto taken_legacy = legacy.take(app, count);
        const auto taken_ring = ring.take(app, count);
        expect_same_items(taken_legacy, taken_ring, "take");
        now_s += 0.1;
        legacy.on_dispatch(now_s, taken_legacy.size());
        ring.on_dispatch(now_s, taken_ring.size());
        break;
      }
      default:
        now_s += static_cast<double>(rng() % 20) * 0.02;
        break;
    }
    ASSERT_EQ(legacy.depth(), ring.depth()) << "op " << op;
    ASSERT_EQ(legacy.exhausted(app), ring.exhausted(app)) << "op " << op;
    ASSERT_EQ(legacy.upstream(app), ring.upstream(app)) << "op " << op;
  }
  for (int app = 0; app < kApps; ++app) {
    expect_same_items(legacy.waiting_snapshot(app),
                      [&] {
                        std::vector<ServeItem> out;
                        for (const auto& item : ring.waiting(app))
                          out.push_back(item);
                        return out;
                      }(),
                      "waiting app " + std::to_string(app));
  }
  expect_same_items(legacy.dropped_snapshot(), ring.dropped(), "dropped");
  expect_same_items(legacy.deadline_shed_snapshot(), ring.deadline_shed(),
                    "deadline_shed");
  const auto legacy_stats = legacy.depth_stats_snapshot();
  const auto& ring_stats = ring.depth_stats();
  EXPECT_EQ(legacy_stats.count(), ring_stats.count());
  EXPECT_DOUBLE_EQ(legacy_stats.mean(), ring_stats.mean());
  EXPECT_DOUBLE_EQ(legacy_stats.max(), ring_stats.max());
  expect_same_items(legacy.drain_waiting(), ring.drain_waiting(),
                    "drain_waiting");
  expect_same_items(legacy.drain_unprocessed(), ring.drain_unprocessed(),
                    "drain_unprocessed");
  EXPECT_EQ(legacy.depth(), ring.depth());
}

TEST(LegacyByteIdentity, UnboundedQueueMatchesOnRandomScripts) {
  for (const std::uint64_t seed : {0x1aced1ull, 0x2bull, 0x93fe21ull}) {
    run_identity_script(0, QueuePolicy::kRejectNewest, false, seed);
  }
}

TEST(LegacyByteIdentity, RejectNewestBackpressureMatches) {
  for (const std::uint64_t seed : {0x41ull, 0xdecafull}) {
    run_identity_script(5, QueuePolicy::kRejectNewest, false, seed);
    run_identity_script(12, QueuePolicy::kRejectNewest, false, seed);
  }
}

TEST(LegacyByteIdentity, EvictOldestBackpressureMatches) {
  for (const std::uint64_t seed : {0x77ull, 0xbead5ull}) {
    run_identity_script(5, QueuePolicy::kEvictOldest, false, seed);
    run_identity_script(12, QueuePolicy::kEvictOldest, false, seed);
  }
}

TEST(LegacyByteIdentity, AdmissionGateShedsIdenticalRequests) {
  for (const std::uint64_t seed : {0x6a7e5ull, 0x100full}) {
    run_identity_script(0, QueuePolicy::kRejectNewest, true, seed);
    run_identity_script(8, QueuePolicy::kEvictOldest, true, seed);
  }
}

// ------------------------------------------------------ hot-path allocs ----

TEST_F(ServeEngineFixture, SteadyStateHotPathIsAllocationFree) {
  // serve_test links the counting operator-new hook, so hot_allocs counts
  // for real here. The engine pre-carves every per-edge container against
  // the trace's worst slot at construction, so the admission -> batch ->
  // launch path must never touch the heap — from the very first slot.
  ASSERT_TRUE(util::alloc_counting_active());
  const auto trace = uniform_trace(cluster_, 8, 12);
  ServeConfig config;
  config.threads = 2;
  ServeEngine engine(cluster_, trace, config);
  LocalGreedyScheduler scheduler(cluster_);
  metrics::RunMetrics metrics;
  for (int t = 0; t < trace.slots(); ++t) {
    EXPECT_EQ(engine.step(scheduler, &metrics).hot_allocs, 0)
        << "slot " << t;
  }
}

TEST_F(ServeEngineFixture, AdaptiveSteadyStateStaysAllocationFree) {
  // Same assertion with adaptive batching on: the batcher's availability
  // scratch is engine-owned, so growth-mode planning is also alloc-free
  // once warm.
  ASSERT_TRUE(util::alloc_counting_active());
  workload::Trace trace(12, cluster_.num_apps(), cluster_.num_devices());
  for (int t = 0; t < trace.slots(); ++t) {
    for (int i = 0; i < cluster_.num_apps(); ++i) {
      for (int k = 0; k < cluster_.num_devices(); ++k) {
        trace.set(t, i, k, t % 3 == 0 ? 28 : 3);
      }
    }
  }
  ServeConfig config;
  config.threads = 1;
  config.adaptive.enabled = true;
  config.adaptive.growth_backlog_factor = 1.25;
  config.adaptive.max_batch = 16;
  ServeEngine engine(cluster_, trace, config);
  LocalGreedyScheduler scheduler(cluster_);
  metrics::RunMetrics metrics;
  for (int t = 0; t < trace.slots(); ++t) {
    EXPECT_EQ(engine.step(scheduler, &metrics).hot_allocs, 0)
        << "slot " << t;
  }
}

// --------------------------------------- threaded determinism, hard mode ----

TEST_F(ServeEngineFixture, BitIdenticalAcrossThreadsWithFaultsAndGuard) {
  // The sharded engine must stay bit-identical across thread counts even
  // with every stateful subsystem engaged: fault injection (orphans,
  // bandwidth stretch, stragglers), failover re-admission, and the guard's
  // deadline-aware admission gate.
  workload::Trace trace(6, cluster_.num_apps(), cluster_.num_devices());
  for (int t = 0; t < trace.slots(); ++t) {
    for (int i = 0; i < cluster_.num_apps(); ++i) {
      for (int k = 0; k < cluster_.num_devices(); ++k) {
        trace.set(t, i, k, t % 2 == 0 ? 20 : 6);
      }
    }
  }
  fault::FaultPlan plan;
  plan.add_down(1, 1, 3);
  plan.add_bandwidth(2, 0, 5, 0.5);
  plan.add_straggler(0, 2, 6, 2.0);
  const auto run = [&](int threads) {
    ServeConfig config;
    config.threads = threads;
    config.keep_records = true;
    config.fault_plan = plan;
    config.failover.enabled = true;
    config.failover.backoff_base_slots = 1;
    config.guard.admission.enabled = true;
    config.guard.admission.slack = 0.5;
    LocalGreedyScheduler scheduler(cluster_);
    ServeEngine engine(cluster_, trace, config);
    metrics::RunMetrics metrics;
    std::vector<SlotServeResult> results;
    while (engine.current_slot() < trace.slots()) {
      results.push_back(engine.step(scheduler, &metrics));
    }
    return std::make_pair(std::move(results), std::move(metrics));
  };
  const auto [r1, m1] = run(1);
  const auto [r2, m2] = run(8);
  ASSERT_EQ(r1.size(), r2.size());
  std::int64_t orphaned = 0;
  std::int64_t sheds = 0;
  for (std::size_t t = 0; t < r1.size(); ++t) {
    EXPECT_EQ(r1[t].served, r2[t].served) << "slot " << t;
    EXPECT_EQ(r1[t].orphaned, r2[t].orphaned) << "slot " << t;
    EXPECT_EQ(r1[t].retried, r2[t].retried) << "slot " << t;
    EXPECT_EQ(r1[t].deadline_sheds, r2[t].deadline_sheds) << "slot " << t;
    orphaned += r1[t].orphaned;
    sheds += r1[t].deadline_sheds;
    ASSERT_EQ(r1[t].records.size(), r2[t].records.size()) << "slot " << t;
    for (std::size_t r = 0; r < r1[t].records.size(); ++r) {
      const auto& a = r1[t].records[r];
      const auto& b = r2[t].records[r];
      EXPECT_EQ(a.item.seq, b.item.seq);
      EXPECT_EQ(a.outcome, b.outcome);
      EXPECT_EQ(a.served_on, b.served_on);
      EXPECT_DOUBLE_EQ(a.start_s, b.start_s);
      EXPECT_DOUBLE_EQ(a.completion_s, b.completion_s);
    }
  }
  // The scenario actually exercises the fault paths it claims to.
  EXPECT_GT(orphaned + m1.retries(), 0);
  EXPECT_EQ(sheds, m1.deadline_shed());
  EXPECT_EQ(m1.total_requests(), m2.total_requests());
  EXPECT_EQ(m1.slo_failures(), m2.slo_failures());
  EXPECT_EQ(m1.orphan_dropped(), m2.orphan_dropped());
  EXPECT_EQ(m1.retries(), m2.retries());
  EXPECT_EQ(m1.deadline_shed(), m2.deadline_shed());
  EXPECT_DOUBLE_EQ(m1.total_loss(), m2.total_loss());
  std::ostringstream csv1;
  std::ostringstream csv2;
  metrics::write_latency_csv(csv1, {{"faulted", &m1}});
  metrics::write_latency_csv(csv2, {{"faulted", &m2}});
  EXPECT_EQ(csv1.str(), csv2.str());
}

TEST_F(ServeEngineFixture, AdaptiveBeatsFixedOnSlotBoundaryBursts) {
  // Bursty demand against a small kernel prior: the fixed rule pays six
  // formation waits per burst, the adaptive rule drains each burst in a
  // couple of grown launches. Goodput under SLO must strictly improve.
  workload::Trace trace(6, cluster_.num_apps(), cluster_.num_devices());
  for (int t = 0; t < trace.slots(); ++t) {
    for (int i = 0; i < cluster_.num_apps(); ++i) {
      for (int k = 0; k < cluster_.num_devices(); ++k) {
        trace.set(t, i, k, t % 2 == 0 ? 48 : 2);
      }
    }
  }
  // The largest variant with a tiny kernel prior: the fixed rule pays many
  // slow, TIR-inefficient launches per burst and blows deadlines deep into
  // the queue.
  sim::SlotDecision decision(cluster_.num_apps(), cluster_.zoo().max_variants(),
                             cluster_.num_devices());
  const int variant = cluster_.zoo().num_variants(0) - 1;
  for (int i = 0; i < cluster_.num_apps(); ++i) {
    for (int k = 0; k < cluster_.num_devices(); ++k) {
      decision.served(i, variant, k) = 48;
      decision.kernel(i, variant, k) = 2;
    }
  }
  const auto run = [&](bool adaptive) {
    ServeConfig config;
    config.noise_sigma = 0.0;
    config.adaptive.enabled = adaptive;
    config.adaptive.max_batch = 16;
    FixedScheduler scheduler(decision);
    ServeEngine engine(cluster_, trace, config);
    return engine.run(scheduler);
  };
  const auto fixed = run(false);
  const auto adaptive = run(true);
  const double horizon_s = cluster_.tau_s() * trace.slots();
  EXPECT_GT(adaptive.goodput_under_slo(horizon_s),
            fixed.goodput_under_slo(horizon_s));
  EXPECT_LE(adaptive.slo_failures(), fixed.slo_failures());
}

}  // namespace
}  // namespace birp::serve
