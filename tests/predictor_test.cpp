// Tests for the nn-Meter-substitute latency predictor.
#include <cmath>

#include <gtest/gtest.h>

#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"
#include "birp/predictor/latency_predictor.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/workload/generator.hpp"

namespace birp::predictor {
namespace {

TEST(LatencyPredictor, GeneralizesAcrossHeldOutPairs) {
  const auto cluster = device::ClusterSpec::paper_large();
  PredictorConfig config;
  config.train_fraction = 0.6;  // 40% of pairs never profiled
  const auto predictor = LatencyPredictor::profile_and_fit(cluster, config);
  // Structure-feature regression should land within ~15% mean relative
  // error, comparable to published latency-predictor accuracy.
  EXPECT_LT(predictor.mean_relative_error(cluster), 0.15);
  EXPECT_GT(predictor.training_samples(), 0);
}

TEST(LatencyPredictor, PredictionsArePositiveAndOrdered) {
  const auto cluster = device::ClusterSpec::paper_large();
  const auto predictor = LatencyPredictor::profile_and_fit(cluster);
  for (int k = 0; k < cluster.num_devices(); ++k) {
    // Larger variants must be predicted slower (the ladder is monotone).
    for (int i = 0; i < cluster.num_apps(); ++i) {
      double previous = 0.0;
      for (int j = 0; j < cluster.zoo().num_variants(i); ++j) {
        const double p = predictor.predict_gamma_s(k, i, j);
        EXPECT_GT(p, 0.0);
        EXPECT_GT(p, previous) << "k=" << k << " i=" << i << " j=" << j;
        previous = p;
      }
    }
  }
}

TEST(LatencyPredictor, Deterministic) {
  const auto cluster = device::ClusterSpec::paper_large();
  const auto a = LatencyPredictor::profile_and_fit(cluster);
  const auto b = LatencyPredictor::profile_and_fit(cluster);
  EXPECT_DOUBLE_EQ(a.predict_gamma_s(0, 0, 0), b.predict_gamma_s(0, 0, 0));
  EXPECT_DOUBLE_EQ(a.predict_gamma_s(5, 4, 4), b.predict_gamma_s(5, 4, 4));
}

TEST(LatencyPredictor, MoreTrainingDataHelps) {
  const auto cluster = device::ClusterSpec::paper_large();
  PredictorConfig scarce;
  scarce.train_fraction = 0.2;
  scarce.runs_per_pair = 1;
  scarce.measurement_sigma = 0.15;
  PredictorConfig rich = scarce;
  rich.train_fraction = 1.0;
  rich.runs_per_pair = 5;
  const auto scarce_fit = LatencyPredictor::profile_and_fit(cluster, scarce);
  const auto rich_fit = LatencyPredictor::profile_and_fit(cluster, rich);
  EXPECT_LT(rich_fit.mean_relative_error(cluster),
            scarce_fit.mean_relative_error(cluster));
}

TEST(LatencyPredictor, RejectsBadConfig) {
  const auto cluster = device::ClusterSpec::paper_large();
  PredictorConfig bad;
  bad.train_fraction = 0.0;
  EXPECT_THROW((void)LatencyPredictor::profile_and_fit(cluster, bad),
               std::logic_error);
  bad.train_fraction = 0.5;
  bad.runs_per_pair = 0;
  EXPECT_THROW((void)LatencyPredictor::profile_and_fit(cluster, bad),
               std::logic_error);
}

TEST(LatencyPredictor, SchedulerRunsOnPredictedLatencies) {
  // End-to-end: BIRP scheduling against predicted gammas stays live and
  // close to exact-gamma scheduling.
  const auto cluster = device::ClusterSpec::paper_small();
  const auto predictor = LatencyPredictor::profile_and_fit(cluster);

  workload::GeneratorConfig wl;
  wl.slots = 15;
  wl.mean_per_edge = workload::suggested_mean_per_edge(cluster, 0.5);
  const auto trace = workload::generate(cluster, wl);

  core::BirpConfig predicted_config;
  predicted_config.problem.gamma_lookup = [&predictor](int k, int i, int j) {
    return predictor.predict_gamma_s(k, i, j);
  };
  core::BirpScheduler predicted(cluster, predicted_config);
  core::BirpScheduler exact(cluster);

  sim::Simulator sim_a(cluster, trace);
  sim::Simulator sim_b(cluster, trace);
  const auto m_predicted = sim_a.run(predicted);
  const auto m_exact = sim_b.run(exact);

  EXPECT_EQ(m_predicted.total_requests(), trace.total());
  // Within 10% loss of exact-latency scheduling.
  EXPECT_LT(m_predicted.total_loss(), m_exact.total_loss() * 1.10);
}

}  // namespace
}  // namespace birp::predictor
