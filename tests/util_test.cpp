// Unit and property tests for birp::util.
#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "birp/util/alloc_count.hpp"
#include "birp/util/check.hpp"
#include "birp/util/csv.hpp"
#include "birp/util/ecdf.hpp"
#include "birp/util/piecewise_fit.hpp"
#include "birp/util/rng.hpp"
#include "birp/util/stats.hpp"
#include "birp/util/table.hpp"

namespace birp::util {
namespace {

// ---------------------------------------------------------------- check ----

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(check(true, "fine"));
}

TEST(Check, FailingConditionThrowsWithMessage) {
  try {
    check(false, "boom");
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(Check, FailAlwaysThrows) { EXPECT_THROW(fail("nope"), std::logic_error); }

// ------------------------------------------------------------------ rng ----

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256StarStar a(42);
  Xoshiro256StarStar b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256StarStar a(1);
  Xoshiro256StarStar b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256StarStar rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256StarStar rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Xoshiro256StarStar rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 6);
    ++counts[static_cast<std::size_t>(v - 2)];
  }
  for (const int c : counts) EXPECT_GT(c, 3200);  // near-uniform 4000 each
}

TEST(Rng, NormalMomentsMatch) {
  Xoshiro256StarStar rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalIsPositiveWithMatchingLogMoments) {
  Xoshiro256StarStar rng(17);
  RunningStats logs;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.lognormal(0.5, 0.25);
    ASSERT_GT(v, 0.0);
    logs.add(std::log(v));
  }
  EXPECT_NEAR(logs.mean(), 0.5, 0.01);
  EXPECT_NEAR(logs.stddev(), 0.25, 0.01);
}

TEST(Rng, PoissonSmallMeanMatches) {
  Xoshiro256StarStar rng(19);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(static_cast<double>(rng.poisson(3.7)));
  }
  EXPECT_NEAR(stats.mean(), 3.7, 0.1);
  EXPECT_NEAR(stats.variance(), 3.7, 0.25);
}

TEST(Rng, PoissonLargeMeanMatches) {
  Xoshiro256StarStar rng(23);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(static_cast<double>(rng.poisson(120.0)));
  }
  EXPECT_NEAR(stats.mean(), 120.0, 1.0);
  EXPECT_NEAR(stats.stddev(), std::sqrt(120.0), 0.5);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Xoshiro256StarStar rng(29);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Xoshiro256StarStar rng(31);
  auto a = rng.fork(0);
  auto b = rng.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, ShufflePreservesMultiset) {
  Xoshiro256StarStar rng(37);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
}

TEST(Rng, BernoulliRate) {
  Xoshiro256StarStar rng(41);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / 50000.0, 0.3, 0.01);
}

// ---------------------------------------------------------------- stats ----

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Xoshiro256StarStar rng(5);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(1.0, 3.0);
    whole.add(v);
    (i < 500 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
}

TEST(Percentile, RejectsEmptyAndBadQuantile) {
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)percentile({}, 0.5), std::logic_error);
  EXPECT_THROW((void)percentile(v, 1.5), std::logic_error);
}

TEST(Percentile, EndpointsAreExactMinAndMax) {
  // Awkward sizes on purpose: q * (n - 1) at q = 1 must not interpolate
  // through floating-point wobble — the endpoints are returned exactly.
  Xoshiro256StarStar rng(17);
  for (const int n : {2, 3, 7, 97, 1013}) {
    std::vector<double> v;
    v.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) v.push_back(rng.uniform(-1e6, 1e6));
    const double lo = *std::min_element(v.begin(), v.end());
    const double hi = *std::max_element(v.begin(), v.end());
    EXPECT_EQ(percentile(v, 0.0), lo) << "n=" << n;
    EXPECT_EQ(percentile(v, 1.0), hi) << "n=" << n;
  }
}

TEST(Percentile, SortedVariantMatchesGeneralForm) {
  Xoshiro256StarStar rng(23);
  std::vector<double> v;
  for (int i = 0; i < 257; ++i) v.push_back(rng.uniform(0.0, 10.0));
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(percentile_sorted(sorted, q), percentile(v, q));
  }
  EXPECT_THROW((void)percentile_sorted({}, 0.5), std::logic_error);
}

TEST(Percentile, BatchMatchesIndividualQueries) {
  Xoshiro256StarStar rng(31);
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(rng.uniform(0.0, 1.0));
  const std::vector<double> qs{0.0, 0.5, 0.95, 0.99, 1.0};
  const auto batch = percentiles(v, qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], percentile(v, qs[i]));
  }
  EXPECT_THROW((void)percentiles({}, qs), std::logic_error);
  const std::vector<double> bad{0.5, 2.0};
  EXPECT_THROW((void)percentiles(v, bad), std::logic_error);
}

TEST(LeastSquares, RecoversLine) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(2.5 * static_cast<double>(i) - 1.0);
  }
  const auto fit = least_squares(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LeastSquares, RejectsDegenerateInput) {
  const std::vector<double> x{1.0, 1.0};
  const std::vector<double> y{2.0, 3.0};
  EXPECT_THROW((void)least_squares(x, y), std::logic_error);
}

// ----------------------------------------------------------------- ecdf ----

TEST(Ecdf, BasicCdfQueries) {
  Ecdf ecdf;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) ecdf.add(v);
  EXPECT_DOUBLE_EQ(ecdf.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.cdf(10.0), 1.0);
}

TEST(Ecdf, TailFractionIsSloFailureRate) {
  Ecdf ecdf;
  for (int i = 1; i <= 100; ++i) ecdf.add(static_cast<double>(i) / 100.0);
  EXPECT_NEAR(ecdf.tail_fraction(0.9), 0.10, 1e-12);
  EXPECT_NEAR(ecdf.tail_fraction(1.0), 0.0, 1e-12);
}

TEST(Ecdf, MergeCombinesSamples) {
  Ecdf a;
  Ecdf b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.cdf(2.0), 0.5);
}

TEST(Ecdf, CurveIsMonotone) {
  Ecdf ecdf;
  Xoshiro256StarStar rng(3);
  for (int i = 0; i < 1000; ++i) ecdf.add(rng.uniform(0.0, 2.0));
  const auto curve = ecdf.curve(0.0, 2.0, 50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].f, curve[i].f);
    EXPECT_LT(curve[i - 1].x, curve[i].x);
  }
  EXPECT_NEAR(curve.back().f, 1.0, 1e-12);
}

TEST(Ecdf, QuantileMatchesConstruction) {
  Ecdf ecdf;
  for (int i = 0; i <= 100; ++i) ecdf.add(static_cast<double>(i));
  EXPECT_NEAR(ecdf.quantile(0.5), 50.0, 1e-9);
}

TEST(Ecdf, QuantileEndpointsExactAndStableAcrossAdds) {
  // quantile() reads the sorted samples in place; interleaving adds (which
  // invalidate the sort) with queries must keep endpoints exact.
  Ecdf ecdf;
  Xoshiro256StarStar rng(5);
  double lo = 1e30;
  double hi = -1e30;
  for (int i = 0; i < 317; ++i) {
    const double v = rng.uniform(-3.0, 9.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    ecdf.add(v);
    if (i % 50 == 0) {
      EXPECT_EQ(ecdf.quantile(0.0), lo);
      EXPECT_EQ(ecdf.quantile(1.0), hi);
    }
  }
  EXPECT_EQ(ecdf.quantile(0.0), lo);
  EXPECT_EQ(ecdf.quantile(1.0), hi);
}

// -------------------------------------------------------- piecewise fit ----

TEST(PiecewiseFit, RecoversCleanCurve) {
  // Ground truth: eta = 0.32, beta = 5, C = 5^0.32 (the paper's LeNet fit).
  std::vector<TirSample> samples;
  const double eta = 0.32;
  const int beta = 5;
  const double c = std::pow(5.0, eta);
  for (int b = 1; b <= 16; ++b) {
    const double tir = b <= beta ? std::pow(b, eta) : c;
    samples.push_back({b, tir});
  }
  const auto fit = fit_piecewise_tir(samples);
  EXPECT_NEAR(fit.eta, eta, 1e-9);
  EXPECT_EQ(fit.beta, beta);
  EXPECT_NEAR(fit.c, c, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(PiecewiseFit, ToleratesNoise) {
  Xoshiro256StarStar rng(101);
  std::vector<TirSample> samples;
  const double eta = 0.12;
  const int beta = 10;
  const double c = std::pow(10.0, eta);
  for (int trial = 0; trial < 5; ++trial) {
    for (int b = 1; b <= 16; ++b) {
      const double clean = b <= beta ? std::pow(b, eta) : c;
      samples.push_back({b, clean * rng.lognormal(0.0, 0.01)});
    }
  }
  const auto fit = fit_piecewise_tir(samples);
  EXPECT_NEAR(fit.eta, eta, 0.02);
  EXPECT_NEAR(static_cast<double>(fit.beta), beta, 2.0);
  EXPECT_NEAR(fit.c, c, 0.05);
  EXPECT_GT(fit.r_squared, 0.95);
}

TEST(PiecewiseFit, PureGrowthPinsConstantAtContinuity) {
  std::vector<TirSample> samples;
  for (int b = 1; b <= 8; ++b) samples.push_back({b, std::pow(b, 0.2)});
  const auto fit = fit_piecewise_tir(samples);
  EXPECT_NEAR(fit.eta, 0.2, 1e-6);
  EXPECT_NEAR(fit.c, std::pow(static_cast<double>(fit.beta), fit.eta), 1e-9);
}

TEST(PiecewiseFit, EvaluateMatchesSegments) {
  PiecewiseTirFit fit;
  fit.eta = 0.5;
  fit.beta = 4;
  fit.c = 2.0;
  EXPECT_DOUBLE_EQ(fit.evaluate(1), 1.0);
  EXPECT_DOUBLE_EQ(fit.evaluate(4), 2.0);
  EXPECT_DOUBLE_EQ(fit.evaluate(16), 2.0);  // saturated
}

TEST(PiecewiseFit, RejectsBadInput) {
  EXPECT_THROW((void)fit_piecewise_tir({}), std::logic_error);
  const std::vector<TirSample> bad{{0, 1.0}};
  EXPECT_THROW((void)fit_piecewise_tir(bad), std::logic_error);
  const std::vector<TirSample> single{{1, 1.0}, {1, 1.01}};
  EXPECT_THROW((void)fit_piecewise_tir(single), std::logic_error);
}

// ------------------------------------------------------------------ csv ----

TEST(Csv, RoundTripsSimpleRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.row({"a", "b", "c"});
  writer.row({"1", "2", "3"});
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.row({"plain", "has,comma", "has\"quote", "has\nnewline"});
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], "has,comma");
  EXPECT_EQ(rows[0][2], "has\"quote");
  EXPECT_EQ(rows[0][3], "has\nnewline");
}

TEST(Csv, NumericRowRoundTrips) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.numeric_row({1.5, -2.25, 3.0});
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(std::stod(rows[0][0]), 1.5);
  EXPECT_EQ(std::stod(rows[0][1]), -2.25);
  EXPECT_EQ(std::stod(rows[0][2]), 3.0);
}

TEST(Csv, ParsesEmptyFieldsAndCrlf) {
  const auto rows = parse_csv("a,,c\r\n,,\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"", "", ""}));
}

TEST(Csv, CrlfFileRoundTripsLikeLfFile) {
  // A writer-produced file re-saved by a CRLF editor must parse to the
  // identical rows — \r is line-ending decoration, never field content.
  std::ostringstream out;
  CsvWriter writer(out);
  writer.row({"kind", "device", "factor"});
  writer.row({"down", "2", "0.5"});
  writer.row({"straggler", "0", "2.25"});
  const std::string lf = out.str();
  std::string crlf;
  for (const char c : lf) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  EXPECT_EQ(parse_csv(crlf), parse_csv(lf));
}

TEST(Csv, FinalRowWithoutTrailingNewlineIsKept) {
  const auto rows = parse_csv("a,b\n1,2\n3,4");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[2], (std::vector<std::string>{"3", "4"}));
  // Same for CRLF bodies and for a quoted field that runs to EOF.
  const auto crlf_rows = parse_csv("a,b\r\n1,2");
  ASSERT_EQ(crlf_rows.size(), 2u);
  EXPECT_EQ(crlf_rows[1], (std::vector<std::string>{"1", "2"}));
  const auto quoted = parse_csv("a,\"x,y\"");
  ASSERT_EQ(quoted.size(), 1u);
  EXPECT_EQ(quoted[0], (std::vector<std::string>{"a", "x,y"}));
}

TEST(Csv, FormatDoubleIntegersAreClean) {
  EXPECT_EQ(format_double(42.0), "42");
  EXPECT_EQ(format_double(-7.0), "-7");
}

// ---------------------------------------------------------------- table ----

TEST(TextTable, RendersAlignedRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_numeric_row({2.0, 3.14159}, 2);
  std::ostringstream out;
  table.print(out, "title");
  const std::string text = out.str();
  EXPECT_NE(text.find("title"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable table({"one", "two"});
  EXPECT_THROW(table.add_row({"only"}), std::logic_error);
}

// ---------------------------------------------------------- alloc count ----
// util_test is built with alloc_hook.cpp and BIRP_COUNT_ALLOCS (see
// tests/CMakeLists.txt), so the counters here actually count.

TEST(AllocCount, HookIsActiveInThisBinary) {
  EXPECT_TRUE(alloc_counting_active());
}

TEST(AllocCount, NewAndDeleteBumpTheCounters) {
  const AllocCounts before = alloc_counts();
  auto* p = new std::int64_t(42);
  // The pointer must escape, or the compiler is allowed to elide the whole
  // new/delete pair (and does, at -O2).
  asm volatile("" : : "g"(p) : "memory");
  const AllocCounts mid = alloc_counts();
  delete p;
  const AllocCounts after = alloc_counts();
  EXPECT_GE(mid.allocs - before.allocs, 1);
  EXPECT_GE(mid.bytes - before.bytes,
            static_cast<std::int64_t>(sizeof(std::int64_t)));
  EXPECT_GE(after.frees - mid.frees, 1);
}

TEST(AllocCount, VectorGrowthIsVisible) {
  const AllocCounts before = alloc_counts();
  std::vector<double> v;
  v.reserve(1024);
  const AllocCounts after = alloc_counts();
  EXPECT_GE(after.allocs - before.allocs, 1);
  EXPECT_GE(after.bytes - before.bytes,
            static_cast<std::int64_t>(1024 * sizeof(double)));
  // Reusing reserved capacity must not allocate — this is exactly the
  // steady-state discipline the serve hot path relies on.
  const AllocCounts filled_before = alloc_counts();
  for (int i = 0; i < 1024; ++i) v.push_back(static_cast<double>(i));
  v.clear();
  for (int i = 0; i < 1024; ++i) v.push_back(static_cast<double>(i));
  const AllocCounts filled_after = alloc_counts();
  EXPECT_EQ(filled_after.allocs - filled_before.allocs, 0);
}

TEST(AllocCount, ResetZeroesThisThread) {
  auto keep = std::make_unique<int>(7);  // ensure counters are nonzero
  reset_alloc_counts();
  const AllocCounts counts = alloc_counts();
  EXPECT_EQ(counts.allocs, 0);
  EXPECT_EQ(counts.frees, 0);
  EXPECT_EQ(counts.bytes, 0);
  keep.reset();
  EXPECT_GE(alloc_counts().frees, 1);
}

TEST(AllocCount, CountersAreThreadLocal) {
  const AllocCounts before = alloc_counts();
  AllocCounts worker_delta;
  std::thread worker([&worker_delta] {
    const AllocCounts start = alloc_counts();
    std::vector<std::unique_ptr<int>> owned;
    for (int i = 0; i < 64; ++i) owned.push_back(std::make_unique<int>(i));
    owned.clear();
    const AllocCounts end = alloc_counts();
    worker_delta.allocs = end.allocs - start.allocs;
    worker_delta.frees = end.frees - start.frees;
  });
  worker.join();
  const AllocCounts after = alloc_counts();
  EXPECT_GE(worker_delta.allocs, 64);
  EXPECT_GE(worker_delta.frees, 64);
  // The worker's 64+ allocations must not leak into this thread's view;
  // allow a little slack for the std::thread bookkeeping allocated here.
  EXPECT_LT(after.allocs - before.allocs, 32);
}

}  // namespace
}  // namespace birp::util
