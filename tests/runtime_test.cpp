// Tests for the runtime primitives: thread pool (+ spin-then-park wakeup),
// parallel_for, the MPSC ring, the slab recycler, and the timer wheel.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <random>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "birp/runtime/mpsc_ring.hpp"
#include "birp/runtime/parallel_for.hpp"
#include "birp/runtime/slab.hpp"
#include "birp/runtime/thread_pool.hpp"
#include "birp/runtime/timer_wheel.hpp"

namespace birp::runtime {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ForwardsArguments) {
  ThreadPool pool(2);
  auto future = pool.submit([](int a, int b) { return a + b; }, 19, 23);
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, RunsManyTasksOnAllWorkers) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    (void)pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      (void)pool.submit([&done] { done.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ActuallyParallel) {
  // Two sleeping tasks on two workers should overlap.
  ThreadPool pool(2);
  const auto start = std::chrono::steady_clock::now();
  auto a = pool.submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  });
  auto b = pool.submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  });
  a.get();
  b.get();
  const auto elapsed = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_LT(elapsed, 110.0);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  parallel_for(pool, 0, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SubrangeRespectsBounds) {
  ThreadPool pool(2);
  std::vector<int> hits(20, 0);
  parallel_for(pool, 5, 15, [&hits](std::size_t i) { hits[i] = 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], (i >= 5 && i < 15) ? 1 : 0) << i;
  }
}

TEST(ParallelFor, RethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("i37");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, ReductionMatchesSerial) {
  ThreadPool pool(4);
  std::vector<double> values(10000);
  std::iota(values.begin(), values.end(), 0.0);
  std::atomic<long long> parallel_sum{0};
  parallel_for(pool, 0, values.size(), [&](std::size_t i) {
    parallel_sum.fetch_add(static_cast<long long>(values[i]));
  });
  const long long serial =
      static_cast<long long>(values.size() * (values.size() - 1) / 2);
  EXPECT_EQ(parallel_sum.load(), serial);
}

TEST(ParallelFor, ConvenienceOverloadWorks) {
  std::atomic<int> count{0};
  parallel_for(0, 64, [&count](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, EnqueueFromInsideWorkerDoesNotDeadlock) {
  // Workers run task() with no pool lock held, so a task may submit a
  // continuation into the same pool. Single worker on purpose: the
  // continuation can only run after the submitting task returns.
  ThreadPool pool(1);
  std::atomic<int> stage{0};
  std::future<void> inner;
  auto outer = pool.submit([&] {
    inner = pool.submit([&stage] { stage.store(2); });
    stage.store(1);
  });
  outer.get();
  inner.get();
  EXPECT_EQ(stage.load(), 2);
}

TEST(ThreadPool, WaitIdleRacesWithProducer) {
  // wait_idle() must be callable while another thread is still submitting:
  // each call returns at some genuinely idle instant (queue empty, no task
  // running) without hanging or missing wakeups.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  constexpr int kTasks = 200;
  std::thread producer([&] {
    for (int i = 0; i < kTasks; ++i) {
      (void)pool.submit([&done] { done.fetch_add(1); });
      if (i % 16 == 0) std::this_thread::yield();
    }
  });
  for (int i = 0; i < 50; ++i) pool.wait_idle();
  producer.join();
  pool.wait_idle();  // everything is submitted now: idle means all done
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolShutdown, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW((void)pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPoolShutdown, IsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();  // second call must be a harmless no-op
  EXPECT_THROW((void)pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPoolShutdown, DrainsPreviouslySubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  pool.shutdown();
  for (auto& future : futures) future.get();
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolShutdown, NonEmptyQueueIsDrainedNotDropped) {
  // Contract: shutdown drains. Tasks already accepted run to completion
  // even when they are still queued behind a busy worker at the moment
  // shutdown() is called — their futures never starve.
  ThreadPool pool(1);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  futures.push_back(pool.submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    done.fetch_add(1);
  }));
  for (int i = 0; i < 8; ++i) {  // backlog sitting behind the sleeper
    futures.push_back(pool.submit([&done] { done.fetch_add(1); }));
  }
  pool.shutdown();  // returns only after the backlog ran
  EXPECT_EQ(done.load(), 9);
  for (auto& future : futures) EXPECT_NO_THROW(future.get());
}

// --------------------------------------------------- spin-then-park wakeup ----

TEST(ThreadPoolSpin, ConfigurationIsExposedAndClampedSane) {
  ThreadPool defaulted(2);
  EXPECT_EQ(defaulted.spin_iterations(), ThreadPool::kDefaultSpinIterations);
  ThreadPool parked(2, 0);  // always park immediately (pre-spin behavior)
  EXPECT_EQ(parked.spin_iterations(), 0);
}

TEST(ThreadPoolSpin, SpinningPoolRunsBurstsCorrectly) {
  // Back-to-back bursts with idle gaps exercise both halves of the wakeup
  // path: workers caught mid-spin and workers that parked. Also the TSan
  // target for the spin fast path.
  ThreadPool pool(4, 1 << 14);
  std::atomic<int> done{0};
  for (int burst = 0; burst < 20; ++burst) {
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit([&done] {
        done.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    for (auto& f : futures) f.get();
    if (burst % 5 == 4) {
      // Let every worker exhaust its spin budget and park.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_EQ(done.load(), 20 * 64);
}

TEST(ThreadPoolSpin, ConcurrentProducersWithSpinStayCoherent) {
  // Multiple submitting threads against spinning workers: the pending
  // counter and queue must never disagree (every future resolves).
  ThreadPool pool(4, 1 << 12);
  std::atomic<int> done{0};
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&pool, &done] {
      for (int i = 0; i < kPerProducer; ++i) {
        (void)pool.submit([&done] { done.fetch_add(1); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.wait_idle();
  EXPECT_EQ(done.load(), 3 * kPerProducer);
}

TEST(ThreadPoolSpin, HandoffLatencyOrdering) {
  // A spinning worker should pick up the next task at least as fast as a
  // parked one (it skips the futex round trip). Medians over many handoffs
  // with a very generous margin keep this robust on loaded CI machines.
  const auto median_handoff_s = [](ThreadPool& pool) {
    constexpr int kIters = 300;
    std::vector<double> samples;
    samples.reserve(kIters);
    for (int i = 0; i < kIters; ++i) {
      const auto submitted = std::chrono::steady_clock::now();
      auto started = pool.submit([] {
        return std::chrono::steady_clock::now();
      });
      samples.push_back(
          std::chrono::duration<double>(started.get() - submitted).count());
    }
    std::nth_element(samples.begin(), samples.begin() + kIters / 2,
                     samples.end());
    return samples[kIters / 2];
  };
  ThreadPool spinning(1, 1 << 16);
  ThreadPool parking(1, 0);
  // Ordering with slack: spinning must not be an order of magnitude worse
  // than parking (it should in fact be faster; the absolute term is a back-
  // stop against scheduler noise making the parked median tiny). Retries
  // keep this robust when a parallel test run swamps every core.
  double spin_median = 0.0;
  double park_median = 0.0;
  bool ordered = false;
  for (int attempt = 0; attempt < 3 && !ordered; ++attempt) {
    spin_median = median_handoff_s(spinning);
    park_median = median_handoff_s(parking);
    ordered = spin_median < park_median * 8.0 + 200e-6;
  }
  EXPECT_TRUE(ordered) << "spin=" << spin_median << "s park=" << park_median
                       << "s";
}

// ---------------------------------------------------------------- MpscRing ----

TEST(MpscRing, SingleProducerFifoOrder) {
  MpscRing<int> ring(8);
  EXPECT_GE(ring.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size(), 8u);
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_NE(ring.front(), nullptr);
    EXPECT_EQ(*ring.front(), i);
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(ring.front(), nullptr);
}

TEST(MpscRing, FullRingRejectsPushUntilPopFreesASlot) {
  MpscRing<int> ring(4);  // capacity rounds to exactly 4
  ASSERT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full: reject, never block or overwrite
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(99));  // freed slot is reusable
  std::vector<int> rest;
  while (ring.try_pop(out)) rest.push_back(out);
  EXPECT_EQ(rest, (std::vector<int>{1, 2, 3, 99}));
}

TEST(MpscRing, ResizeRoundsUpGrowsOnlyAndEmpties) {
  MpscRing<int> ring(3);
  EXPECT_EQ(ring.capacity(), 4u);  // next power of two
  EXPECT_TRUE(ring.try_push(7));
  ring.resize(100);
  EXPECT_EQ(ring.capacity(), 128u);
  EXPECT_TRUE(ring.empty());  // resize re-arms an empty ring
  ring.resize(2);             // shrink request: storage is grow-only
  EXPECT_EQ(ring.capacity(), 128u);
  for (int i = 0; i < 128; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(-1));
}

TEST(MpscRing, ManyProducersOneConsumerLosesNothing) {
  // The MPSC contract under real concurrency: every pushed element arrives
  // exactly once, and each producer's own elements arrive in its push
  // order. Run alongside TSan in CI.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscRing<int> ring(1024);  // much smaller than the total: forces wrap
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        while (!ring.try_push(value)) std::this_thread::yield();
      }
    });
  }
  std::vector<int> last_seen(kProducers, -1);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    int value = -1;
    if (!ring.try_pop(value)) {
      std::this_thread::yield();
      continue;
    }
    const int producer = value / kPerProducer;
    const int seq = value % kPerProducer;
    ASSERT_LT(producer, kProducers);
    EXPECT_GT(seq, last_seen[static_cast<std::size_t>(producer)])
        << "per-producer FIFO violated";
    last_seen[static_cast<std::size_t>(producer)] = seq;
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(ring.empty());
  for (const int last : last_seen) EXPECT_EQ(last, kPerProducer - 1);
}

// ---------------------------------------------------------------- SlabPool ----

TEST(SlabPool, AcquireReleaseRecyclesNodes) {
  SlabPool<int> pool;
  const auto a = pool.acquire();
  const auto b = pool.acquire();
  pool[a] = 10;
  pool[b] = 20;
  EXPECT_EQ(pool.live(), 2u);
  EXPECT_NE(a, b);
  pool.release(a);
  EXPECT_EQ(pool.live(), 1u);
  const auto c = pool.acquire();  // free list hands the released node back
  EXPECT_EQ(c, a);
  EXPECT_EQ(pool[b], 20);  // untouched neighbor
}

TEST(SlabPool, IntrusiveLinksBuildChains) {
  SlabPool<int> pool;
  const auto head = pool.acquire();
  const auto mid = pool.acquire();
  const auto tail = pool.acquire();
  pool.set_next(head, mid);
  pool.set_next(mid, tail);
  EXPECT_EQ(pool.next_of(head), mid);
  EXPECT_EQ(pool.next_of(mid), tail);
  EXPECT_EQ(pool.next_of(tail), kSlabNil);
  // Mid-chain unlink through the writable link (the timer wheel's walk).
  pool.mutable_next(head) = pool.next_of(mid);
  EXPECT_EQ(pool.next_of(head), tail);
}

TEST(SlabPool, ReclaimAllRetainsStorage) {
  SlabPool<int> pool;
  for (int i = 0; i < 600; ++i) (void)pool.acquire();  // spans 3 chunks
  const auto high_water = pool.capacity();
  EXPECT_GE(high_water, 600u);
  pool.reclaim_all();
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.capacity(), high_water);  // chunks kept for reuse
  for (int i = 0; i < 600; ++i) (void)pool.acquire();
  EXPECT_EQ(pool.capacity(), high_water);  // no regrowth below high water
}

TEST(SlabPool, ReservePreCarvesCapacity) {
  SlabPool<int> pool;
  pool.reserve(1000);
  EXPECT_GE(pool.capacity(), 1000u);
  EXPECT_EQ(pool.live(), 0u);
}

// -------------------------------------------------------------- TimerWheel ----

/// Reference semantics for the wheel: an unordered list with exact-time
/// comparisons — what the seed implementation's binary heap computed.
class ReferenceTimers {
 public:
  void schedule(double time_s, std::int64_t count) {
    events_.emplace_back(time_s, count);
  }
  std::int64_t advance(double now_s) {
    std::int64_t fired = 0;
    for (auto it = events_.begin(); it != events_.end();) {
      if (it->first <= now_s) {
        fired += it->second;
        it = events_.erase(it);
      } else {
        ++it;
      }
    }
    return fired;
  }
  std::int64_t settle_all() {
    std::int64_t fired = 0;
    for (const auto& [t, c] : events_) fired += c;
    events_.clear();
    return fired;
  }
  [[nodiscard]] std::size_t pending() const { return events_.size(); }

 private:
  std::vector<std::pair<double, std::int64_t>> events_;
};

TEST(TimerWheel, MatchesReferenceOnRandomScheduleAdvanceMix) {
  // The determinism contract: for ANY resolution, advance() fires exactly
  // the events the exact-comparison reference fires. Random interleaving of
  // schedules (past, near, far) and monotone advances across several
  // resolutions, including one so coarse every event shares a bucket.
  for (const double resolution : {1e-3, 1e-2, 0.5, 100.0}) {
    TimerWheel wheel;
    wheel.reset(0.0, resolution);
    ReferenceTimers reference;
    std::mt19937 rng(0xb1e5ed);
    std::uniform_real_distribution<double> jitter(0.0, 3.0);
    double now = 0.0;
    for (int step = 0; step < 400; ++step) {
      const int kind = static_cast<int>(rng() % 4);
      if (kind < 2) {
        // Schedule around the cursor: behind it, near it, or far ahead
        // (deep into the coarse window / overflow list).
        const double base = (kind == 0) ? now - 1.0 : now + jitter(rng) * 40.0;
        const auto count = static_cast<std::int64_t>(rng() % 5);
        wheel.schedule(base, count);
        reference.schedule(base, count);
      } else {
        now += jitter(rng);
        ASSERT_EQ(wheel.advance(now), reference.advance(now))
            << "resolution " << resolution << " step " << step << " now "
            << now;
      }
      ASSERT_EQ(static_cast<std::size_t>(wheel.pending()),
                reference.pending());
    }
    EXPECT_EQ(wheel.settle_all(), reference.settle_all());
    EXPECT_TRUE(wheel.empty());
  }
}

TEST(TimerWheel, PastEventsFireOnNextAdvance) {
  TimerWheel wheel;
  wheel.reset(0.0, 1e-2);
  EXPECT_EQ(wheel.advance(5.0), 0);  // move the cursor forward first
  wheel.schedule(1.0, 3);            // already in the past
  wheel.schedule(5.0, 2);            // exactly at the cursor
  EXPECT_EQ(wheel.advance(5.0), 5);  // both fire: exact comparisons decide
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, BoundaryBucketUsesExactComparison) {
  // Two events in the same fine bucket, one before and one after the
  // advance time: quantization must not fire the later one.
  TimerWheel wheel;
  wheel.reset(0.0, 1.0);  // coarse buckets: both land in bucket 0
  wheel.schedule(0.25, 1);
  wheel.schedule(0.75, 1);
  EXPECT_EQ(wheel.advance(0.5), 1);
  EXPECT_EQ(wheel.pending(), 1);
  EXPECT_EQ(wheel.advance(0.75), 1);  // inclusive boundary, like the heap
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, FarFutureEventsCascadeFromOverflow) {
  TimerWheel wheel;
  wheel.reset(0.0, 1e-2);
  // Fine window covers 0.64s, coarse 40.96s: these park in overflow.
  wheel.schedule(1000.0, 7);
  wheel.schedule(5000.0, 11);
  EXPECT_EQ(wheel.advance(999.0), 0);
  EXPECT_EQ(wheel.advance(1000.0), 7);  // cascaded down and fired exactly
  EXPECT_EQ(wheel.pending(), 1);
  EXPECT_EQ(wheel.settle_all(), 11);
}

TEST(TimerWheel, ResetRetainsStorageAndReanchors) {
  TimerWheel wheel;
  wheel.reset(0.0, 1e-2);
  for (int i = 0; i < 100; ++i) wheel.schedule(static_cast<double>(i), 1);
  EXPECT_EQ(wheel.settle_all(), 100);
  wheel.reset(50.0, 1e-3);  // new origin and resolution, same storage
  wheel.schedule(50.5, 4);
  EXPECT_EQ(wheel.advance(51.0), 4);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, EmptyAdvanceAcrossHugeSpansIsCheap) {
  // The empty fast path: jumping years ahead must not walk buckets. This
  // finishes instantly when the fast path works and times out when not.
  TimerWheel wheel;
  wheel.reset(0.0, 1e-3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(wheel.advance(static_cast<double>(i) * 1e6), 0);
  }
  wheel.schedule(1e9 + 0.5, 2);  // schedule far beyond the moved cursor
  EXPECT_EQ(wheel.advance(1e9 + 1.0), 2);
}

}  // namespace
}  // namespace birp::runtime
