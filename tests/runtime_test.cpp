// Tests for the thread pool and parallel_for.
#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "birp/runtime/parallel_for.hpp"
#include "birp/runtime/thread_pool.hpp"

namespace birp::runtime {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ForwardsArguments) {
  ThreadPool pool(2);
  auto future = pool.submit([](int a, int b) { return a + b; }, 19, 23);
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, RunsManyTasksOnAllWorkers) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    (void)pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      (void)pool.submit([&done] { done.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ActuallyParallel) {
  // Two sleeping tasks on two workers should overlap.
  ThreadPool pool(2);
  const auto start = std::chrono::steady_clock::now();
  auto a = pool.submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  });
  auto b = pool.submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  });
  a.get();
  b.get();
  const auto elapsed = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_LT(elapsed, 110.0);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  parallel_for(pool, 0, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SubrangeRespectsBounds) {
  ThreadPool pool(2);
  std::vector<int> hits(20, 0);
  parallel_for(pool, 5, 15, [&hits](std::size_t i) { hits[i] = 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], (i >= 5 && i < 15) ? 1 : 0) << i;
  }
}

TEST(ParallelFor, RethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("i37");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, ReductionMatchesSerial) {
  ThreadPool pool(4);
  std::vector<double> values(10000);
  std::iota(values.begin(), values.end(), 0.0);
  std::atomic<long long> parallel_sum{0};
  parallel_for(pool, 0, values.size(), [&](std::size_t i) {
    parallel_sum.fetch_add(static_cast<long long>(values[i]));
  });
  const long long serial =
      static_cast<long long>(values.size() * (values.size() - 1) / 2);
  EXPECT_EQ(parallel_sum.load(), serial);
}

TEST(ParallelFor, ConvenienceOverloadWorks) {
  std::atomic<int> count{0};
  parallel_for(0, 64, [&count](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, EnqueueFromInsideWorkerDoesNotDeadlock) {
  // Workers run task() with no pool lock held, so a task may submit a
  // continuation into the same pool. Single worker on purpose: the
  // continuation can only run after the submitting task returns.
  ThreadPool pool(1);
  std::atomic<int> stage{0};
  std::future<void> inner;
  auto outer = pool.submit([&] {
    inner = pool.submit([&stage] { stage.store(2); });
    stage.store(1);
  });
  outer.get();
  inner.get();
  EXPECT_EQ(stage.load(), 2);
}

TEST(ThreadPool, WaitIdleRacesWithProducer) {
  // wait_idle() must be callable while another thread is still submitting:
  // each call returns at some genuinely idle instant (queue empty, no task
  // running) without hanging or missing wakeups.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  constexpr int kTasks = 200;
  std::thread producer([&] {
    for (int i = 0; i < kTasks; ++i) {
      (void)pool.submit([&done] { done.fetch_add(1); });
      if (i % 16 == 0) std::this_thread::yield();
    }
  });
  for (int i = 0; i < 50; ++i) pool.wait_idle();
  producer.join();
  pool.wait_idle();  // everything is submitted now: idle means all done
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolShutdown, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW((void)pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPoolShutdown, IsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();  // second call must be a harmless no-op
  EXPECT_THROW((void)pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPoolShutdown, DrainsPreviouslySubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  pool.shutdown();
  for (auto& future : futures) future.get();
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolShutdown, NonEmptyQueueIsDrainedNotDropped) {
  // Contract: shutdown drains. Tasks already accepted run to completion
  // even when they are still queued behind a busy worker at the moment
  // shutdown() is called — their futures never starve.
  ThreadPool pool(1);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  futures.push_back(pool.submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    done.fetch_add(1);
  }));
  for (int i = 0; i < 8; ++i) {  // backlog sitting behind the sleeper
    futures.push_back(pool.submit([&done] { done.fetch_add(1); }));
  }
  pool.shutdown();  // returns only after the backlog ran
  EXPECT_EQ(done.load(), 9);
  for (auto& future : futures) EXPECT_NO_THROW(future.get());
}

}  // namespace
}  // namespace birp::runtime
