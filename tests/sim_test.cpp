// Tests for decision bookkeeping, validation/repair, and the simulator.
#include <cmath>

#include <gtest/gtest.h>

#include "birp/device/cluster.hpp"
#include "birp/sim/decision.hpp"
#include "birp/sim/scheduler.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/sim/validate.hpp"
#include "birp/workload/trace.hpp"

namespace birp::sim {
namespace {

device::ClusterSpec small_cluster(double tau = 6.0) {
  return device::ClusterSpec(device::one_of_each(), model::Zoo::small_scale(),
                             tau, 0x7e57);
}

/// Scheduler under full test control: replays a fixed decision every slot.
class FixedScheduler : public Scheduler {
 public:
  explicit FixedScheduler(SlotDecision decision)
      : decision_(std::move(decision)) {}

  [[nodiscard]] std::string name() const override { return "fixed"; }
  [[nodiscard]] SlotDecision decide(const SlotState&) override {
    return decision_;
  }
  void observe(const SlotFeedback& feedback) override {
    feedbacks_.push_back(feedback);
  }

  std::vector<SlotFeedback> feedbacks_;

 private:
  SlotDecision decision_;
};

/// Serves all local demand with variant 0 (batch == demand, capped).
class LocalGreedyScheduler : public Scheduler {
 public:
  explicit LocalGreedyScheduler(const device::ClusterSpec& cluster)
      : cluster_(cluster) {}
  [[nodiscard]] std::string name() const override { return "local-greedy"; }
  [[nodiscard]] SlotDecision decide(const SlotState& state) override {
    SlotDecision decision(cluster_.num_apps(), cluster_.zoo().max_variants(),
                          cluster_.num_devices());
    for (int i = 0; i < cluster_.num_apps(); ++i) {
      for (int k = 0; k < cluster_.num_devices(); ++k) {
        const auto demand = state.demand(i, k);
        const auto take = std::min<std::int64_t>(demand, 16);
        decision.served(i, 0, k) = take;
        decision.kernel(i, 0, k) = static_cast<int>(std::max<std::int64_t>(take, 1));
        decision.drops(i, k) = demand - take;
      }
    }
    return decision;
  }

 private:
  const device::ClusterSpec& cluster_;
};

// ------------------------------------------------------------- decision ----

TEST(SlotDecision, FlowAccounting) {
  SlotDecision decision(2, 3, 4);
  decision.flows.push_back({0, 1, 2, 5});
  decision.flows.push_back({0, 3, 2, 2});
  decision.flows.push_back({1, 2, 0, 9});
  EXPECT_EQ(decision.imports(0, 2), 7);
  EXPECT_EQ(decision.exports(0, 1), 5);
  EXPECT_EQ(decision.exports(1, 2), 9);
  EXPECT_EQ(decision.imports(1, 0), 9);
  EXPECT_EQ(decision.imports(0, 0), 0);
}

TEST(SlotDecision, TotalsAndDeployment) {
  SlotDecision decision(1, 2, 2);
  decision.served(0, 0, 0) = 3;
  decision.served(0, 1, 1) = 4;
  decision.drops(0, 0) = 2;
  EXPECT_EQ(decision.total_served(), 7);
  EXPECT_EQ(decision.total_dropped(), 2);
  EXPECT_TRUE(decision.deployed(0, 0, 0));
  EXPECT_FALSE(decision.deployed(0, 1, 0));
}

// ------------------------------------------------------------- validate ----

class ValidateFixture : public ::testing::Test {
 protected:
  ValidateFixture() : cluster_(small_cluster()) {}

  util::Grid2<std::int64_t> demand_grid(std::int64_t value) {
    util::Grid2<std::int64_t> demand(cluster_.num_apps(),
                                     cluster_.num_devices(), value);
    return demand;
  }

  device::ClusterSpec cluster_;
};

TEST_F(ValidateFixture, CleanDecisionUntouched) {
  auto demand = demand_grid(4);
  SlotDecision decision(cluster_.num_apps(), cluster_.zoo().max_variants(),
                        cluster_.num_devices());
  for (int k = 0; k < cluster_.num_devices(); ++k) {
    decision.served(0, 0, k) = 4;
    decision.kernel(0, 0, k) = 4;
  }
  const auto report = validate_and_repair(cluster_, demand, nullptr, decision);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(decision.total_served(), 4 * cluster_.num_devices());
  EXPECT_EQ(decision.total_dropped(), 0);
}

TEST_F(ValidateFixture, UnservedDemandBecomesDrops) {
  auto demand = demand_grid(10);
  SlotDecision decision(cluster_.num_apps(), cluster_.zoo().max_variants(),
                        cluster_.num_devices());
  decision.served(0, 0, 0) = 4;  // edge 0 serves 4 of 10; others serve none
  decision.kernel(0, 0, 0) = 4;
  const auto report = validate_and_repair(cluster_, demand, nullptr, decision);
  EXPECT_EQ(report.added_drops, 10 * cluster_.num_devices() - 4);
  EXPECT_EQ(decision.drops(0, 0), 6);
}

TEST_F(ValidateFixture, OverservingIsTrimmed) {
  auto demand = demand_grid(3);
  SlotDecision decision(cluster_.num_apps(), cluster_.zoo().max_variants(),
                        cluster_.num_devices());
  decision.served(0, 0, 0) = 8;  // only 3 exist locally
  decision.kernel(0, 0, 0) = 8;
  decision.served(0, 0, 1) = 3;
  decision.kernel(0, 0, 1) = 3;
  decision.served(0, 0, 2) = 3;
  decision.kernel(0, 0, 2) = 3;
  const auto report = validate_and_repair(cluster_, demand, nullptr, decision);
  EXPECT_EQ(report.trimmed_served, 5);
  EXPECT_EQ(decision.served(0, 0, 0), 3);
}

TEST_F(ValidateFixture, PhantomVariantServingIsRemoved) {
  auto demand = demand_grid(5);
  SlotDecision decision(cluster_.num_apps(), cluster_.zoo().max_variants() + 2,
                        cluster_.num_devices());
  decision.served(0, cluster_.zoo().max_variants(), 0) = 5;  // no such model
  const auto report = validate_and_repair(cluster_, demand, nullptr, decision);
  EXPECT_GE(report.trimmed_served, 5);
  EXPECT_EQ(decision.total_served(), 0);
}

TEST_F(ValidateFixture, NegativeCountsSanitized) {
  auto demand = demand_grid(2);
  SlotDecision decision(cluster_.num_apps(), cluster_.zoo().max_variants(),
                        cluster_.num_devices());
  decision.served(0, 0, 0) = -5;
  decision.drops(0, 1) = -3;
  decision.flows.push_back({0, 0, 1, -2});
  decision.flows.push_back({0, 1, 1, 7});  // self flow
  validate_and_repair(cluster_, demand, nullptr, decision);
  EXPECT_TRUE(decision.flows.empty());
  EXPECT_GE(decision.served(0, 0, 0), 0);
  EXPECT_GE(decision.drops(0, 1), 0);
}

TEST_F(ValidateFixture, ExportsCappedAtDemand) {
  auto demand = demand_grid(3);
  SlotDecision decision(cluster_.num_apps(), cluster_.zoo().max_variants(),
                        cluster_.num_devices());
  decision.flows.push_back({0, 0, 1, 50});  // only 3 available at edge 0
  const auto report = validate_and_repair(cluster_, demand, nullptr, decision);
  EXPECT_GE(report.cancelled_flow, 47);
  EXPECT_LE(decision.exports(0, 0), 3);
}

TEST_F(ValidateFixture, NetworkBudgetCancelsFlows) {
  auto demand = demand_grid(4000);
  SlotDecision decision(cluster_.num_apps(), cluster_.zoo().max_variants(),
                        cluster_.num_devices());
  // Massive transfer: zeta * 4000 far exceeds any per-slot budget.
  decision.flows.push_back({0, 0, 1, 4000});
  const auto report = validate_and_repair(cluster_, demand, nullptr, decision);
  EXPECT_GT(report.cancelled_flow, 0);
  const double cost = decision_network_mb(cluster_, decision, nullptr, 0);
  EXPECT_LE(cost, cluster_.network_mb(0) + 1e-6);
}

TEST_F(ValidateFixture, MemoryEvictionOnOversizedKernels) {
  auto demand = demand_grid(64);
  SlotDecision decision(cluster_.num_apps(), cluster_.zoo().max_variants(),
                        cluster_.num_devices());
  // A kernel whose activations alone exceed device memory.
  const int j = cluster_.zoo().num_variants(0) - 1;  // largest variant
  decision.served(0, j, 0) = 32;
  decision.kernel(0, j, 0) = 32;
  const double mb = cluster_.zoo().variant(0, j).intermediate_mb * 32.0;
  if (mb > cluster_.memory_mb(0)) {
    const auto report =
        validate_and_repair(cluster_, demand, nullptr, decision);
    EXPECT_GE(report.memory_evictions, 1);
    EXPECT_EQ(decision.served(0, j, 0), 0);
  }
}

TEST_F(ValidateFixture, KernelCapEnforced) {
  auto demand = demand_grid(100);
  SlotDecision decision(cluster_.num_apps(), cluster_.zoo().max_variants(),
                        cluster_.num_devices());
  decision.served(0, 0, 0) = 100;
  decision.kernel(0, 0, 0) = 999;
  validate_and_repair(cluster_, demand, nullptr, decision);
  EXPECT_LE(decision.kernel(0, 0, 0), kMaxKernelBatch);
}

TEST_F(ValidateFixture, SwitchCostsChargedAgainstPrevious) {
  auto demand = demand_grid(2);
  SlotDecision previous(cluster_.num_apps(), cluster_.zoo().max_variants(),
                        cluster_.num_devices());
  previous.served(0, 0, 0) = 1;  // variant 0 deployed on edge 0 last slot

  SlotDecision decision(cluster_.num_apps(), cluster_.zoo().max_variants(),
                        cluster_.num_devices());
  decision.served(0, 0, 0) = 2;  // retained: free
  decision.served(0, 1, 0) = 2;  // new: pays compressed weights
  decision.kernel(0, 0, 0) = 2;
  decision.kernel(0, 1, 0) = 2;

  const double with_prev =
      decision_network_mb(cluster_, decision, &previous, 0);
  const double boot = decision_network_mb(cluster_, decision, nullptr, 0);
  EXPECT_NEAR(with_prev, cluster_.zoo().variant(0, 1).compressed_mb, 1e-9);
  EXPECT_DOUBLE_EQ(boot, 0.0);  // t = 0: staged models, no switch cost
}

// ------------------------------------------------------------ simulator ----

class SimulatorFixture : public ::testing::Test {
 protected:
  SimulatorFixture() : cluster_(small_cluster()) {}

  workload::Trace uniform_trace(int slots, std::int64_t per_cell) {
    workload::Trace trace(slots, cluster_.num_apps(), cluster_.num_devices());
    for (int t = 0; t < slots; ++t) {
      for (int i = 0; i < cluster_.num_apps(); ++i) {
        for (int k = 0; k < cluster_.num_devices(); ++k) {
          trace.set(t, i, k, per_cell);
        }
      }
    }
    return trace;
  }

  device::ClusterSpec cluster_;
};

TEST_F(SimulatorFixture, ServesAndAccountsRequests) {
  const auto trace = uniform_trace(3, 5);
  SimulatorConfig config;
  config.noise_sigma = 0.0;
  Simulator simulator(cluster_, trace, config);
  LocalGreedyScheduler scheduler(cluster_);
  const auto metrics = simulator.run(scheduler);
  EXPECT_EQ(metrics.total_requests(), trace.total());
  EXPECT_EQ(metrics.dropped(), 0);
  EXPECT_EQ(metrics.completion().count(),
            static_cast<std::size_t>(trace.total()));
  EXPECT_EQ(metrics.slot_loss().size(), 3u);
}

TEST_F(SimulatorFixture, NoiseFreeBatchTimeMatchesGroundTruth) {
  const auto trace = uniform_trace(1, 6);
  SimulatorConfig config;
  config.noise_sigma = 0.0;
  config.threads = 1;
  Simulator simulator(cluster_, trace, config);
  LocalGreedyScheduler scheduler(cluster_);
  metrics::RunMetrics metrics;
  const auto result = simulator.step(scheduler, &metrics);
  // Each edge runs exactly one batch of 6 on variant 0; busy time must be
  // the ground-truth batch time.
  for (int k = 0; k < cluster_.num_devices(); ++k) {
    EXPECT_NEAR(result.feedback.busy_s[static_cast<std::size_t>(k)],
                cluster_.truth().batch_time_s(k, 0, 0, 6), 1e-9);
  }
}

TEST_F(SimulatorFixture, TirObservationsMatchTruthWithoutNoise) {
  const auto trace = uniform_trace(1, 6);
  SimulatorConfig config;
  config.noise_sigma = 0.0;
  Simulator simulator(cluster_, trace, config);
  LocalGreedyScheduler scheduler(cluster_);
  const auto result = simulator.step(scheduler);
  ASSERT_FALSE(result.feedback.observations.empty());
  for (const auto& obs : result.feedback.observations) {
    const auto& truth = cluster_.truth().tir(obs.device, obs.app, obs.variant);
    EXPECT_NEAR(obs.observed_tir, truth.tir(obs.batch), 1e-9);
  }
}

TEST_F(SimulatorFixture, LossMatchesServedVariantsPlusDropPenalty) {
  const auto trace = uniform_trace(1, 20);  // greedy serves 16, drops 4
  SimulatorConfig config;
  config.noise_sigma = 0.0;
  Simulator simulator(cluster_, trace, config);
  LocalGreedyScheduler scheduler(cluster_);
  metrics::RunMetrics metrics;
  const auto result = simulator.step(scheduler, &metrics);
  const double expected =
      cluster_.num_devices() *
      (16.0 * cluster_.zoo().variant(0, 0).loss +
       4.0 * cluster_.zoo().worst_loss(0));
  EXPECT_NEAR(result.slot_loss, expected, 1e-9);
  EXPECT_EQ(result.dropped, 4 * cluster_.num_devices());
}

TEST_F(SimulatorFixture, DeterministicAcrossThreadCounts) {
  const auto trace = uniform_trace(5, 8);
  SimulatorConfig one;
  one.threads = 1;
  SimulatorConfig many;
  many.threads = 4;
  LocalGreedyScheduler s1(cluster_);
  LocalGreedyScheduler s2(cluster_);
  const auto m1 = Simulator(cluster_, trace, one).run(s1);
  const auto m2 = Simulator(cluster_, trace, many).run(s2);
  EXPECT_DOUBLE_EQ(m1.total_loss(), m2.total_loss());
  EXPECT_EQ(m1.slo_failures(), m2.slo_failures());
  EXPECT_DOUBLE_EQ(m1.completion().quantile(0.5), m2.completion().quantile(0.5));
}

TEST_F(SimulatorFixture, SeedChangesNoise) {
  const auto trace = uniform_trace(5, 8);
  SimulatorConfig a;
  a.seed = 1;
  SimulatorConfig b;
  b.seed = 2;
  LocalGreedyScheduler s1(cluster_);
  LocalGreedyScheduler s2(cluster_);
  const auto m1 = Simulator(cluster_, trace, a).run(s1);
  const auto m2 = Simulator(cluster_, trace, b).run(s2);
  EXPECT_NE(m1.completion().quantile(0.5), m2.completion().quantile(0.5));
}

TEST_F(SimulatorFixture, SerialKernelsSpreadCompletionTimes) {
  // kernel = 1 -> every request completes at a distinct time.
  const auto trace = uniform_trace(1, 4);
  SlotDecision decision(cluster_.num_apps(), cluster_.zoo().max_variants(),
                        cluster_.num_devices());
  for (int k = 0; k < cluster_.num_devices(); ++k) {
    decision.served(0, 0, k) = 4;
    decision.kernel(0, 0, k) = 1;  // serial execution
  }
  FixedScheduler scheduler(decision);
  SimulatorConfig config;
  config.noise_sigma = 0.0;
  Simulator simulator(cluster_, trace, config);
  metrics::RunMetrics metrics;
  simulator.step(scheduler, &metrics);
  // Completion p10 must differ from p90 (steps at 1x, 2x, 3x, 4x gamma).
  EXPECT_LT(metrics.completion().quantile(0.05),
            metrics.completion().quantile(0.95) / 2.0);
}

TEST_F(SimulatorFixture, BatchedKernelsCompleteTogether) {
  // Demand only on edge 0, served there as one merged launch: all four
  // requests must share one completion time.
  workload::Trace trace(1, 1, cluster_.num_devices());
  trace.set(0, 0, 0, 4);
  SlotDecision decision(cluster_.num_apps(), cluster_.zoo().max_variants(),
                        cluster_.num_devices());
  decision.served(0, 0, 0) = 4;
  decision.kernel(0, 0, 0) = 4;  // one merged launch
  FixedScheduler scheduler(decision);
  SimulatorConfig config;
  config.noise_sigma = 0.0;
  Simulator simulator(cluster_, trace, config);
  metrics::RunMetrics metrics;
  simulator.step(scheduler, &metrics);
  ASSERT_EQ(metrics.completion().count(), 4u);
  EXPECT_DOUBLE_EQ(metrics.completion().quantile(0.0),
                   metrics.completion().quantile(1.0));
}

TEST_F(SimulatorFixture, ImportedRequestsWaitForTransfer) {
  // All of edge 0's demand is served at edge 1; the batch cannot start
  // before the transfer stream delivers it.
  workload::Trace trace(1, 1, cluster_.num_devices());
  trace.set(0, 0, 0, 8);
  SlotDecision decision(cluster_.num_apps(), cluster_.zoo().max_variants(),
                        cluster_.num_devices());
  decision.served(0, 0, 1) = 8;
  decision.kernel(0, 0, 1) = 8;
  decision.flows.push_back({0, 0, 1, 8});
  FixedScheduler scheduler(decision);
  SimulatorConfig config;
  config.noise_sigma = 0.0;
  Simulator simulator(cluster_, trace, config);
  metrics::RunMetrics metrics;
  simulator.step(scheduler, &metrics);

  const double batch_tau =
      cluster_.truth().batch_time_s(1, 0, 0, 8) / cluster_.tau_s();
  // Completion must include a positive transfer delay on top of compute.
  EXPECT_GT(metrics.completion().quantile(0.5), batch_tau * 1.001);
}

TEST_F(SimulatorFixture, RunHonorsMaxSlots) {
  const auto trace = uniform_trace(10, 3);
  Simulator simulator(cluster_, trace);
  LocalGreedyScheduler scheduler(cluster_);
  const auto metrics = simulator.run(scheduler, 4);
  EXPECT_EQ(metrics.slot_loss().size(), 4u);
  EXPECT_EQ(simulator.current_slot(), 4);
}

TEST_F(SimulatorFixture, StepBeyondHorizonThrows) {
  const auto trace = uniform_trace(1, 1);
  Simulator simulator(cluster_, trace);
  LocalGreedyScheduler scheduler(cluster_);
  simulator.step(scheduler);
  EXPECT_THROW(simulator.step(scheduler), std::logic_error);
}

TEST_F(SimulatorFixture, EnergyMatchesBusyAndIdleSplit) {
  const auto trace = uniform_trace(1, 6);
  SimulatorConfig config;
  config.noise_sigma = 0.0;
  Simulator simulator(cluster_, trace, config);
  LocalGreedyScheduler scheduler(cluster_);
  metrics::RunMetrics metrics;
  const auto result = simulator.step(scheduler, &metrics);
  double expected = 0.0;
  for (int k = 0; k < cluster_.num_devices(); ++k) {
    expected += cluster_.device(k).slot_energy_j(
        result.feedback.busy_s[static_cast<std::size_t>(k)],
        cluster_.tau_s());
  }
  EXPECT_NEAR(metrics.total_energy_j(), expected, 1e-9);
  EXPECT_GT(metrics.total_energy_j(), 0.0);
}

TEST_F(SimulatorFixture, CarryoverDefersFreshDropsOnce) {
  // Demand 20, greedy serves 16: paper semantics fail 4 immediately;
  // carryover semantics retry them next slot (demand 0 there), where they
  // are served — no drops at all.
  workload::Trace trace(2, 1, cluster_.num_devices());
  for (int k = 0; k < cluster_.num_devices(); ++k) trace.set(0, 0, k, 20);
  LocalGreedyScheduler scheduler(cluster_);

  SimulatorConfig plain;
  plain.noise_sigma = 0.0;
  LocalGreedyScheduler s1(cluster_);
  const auto strict = Simulator(cluster_, trace, plain).run(s1);
  EXPECT_EQ(strict.dropped(), 4 * cluster_.num_devices());

  SimulatorConfig retry = plain;
  retry.carryover_unserved = true;
  const auto carried = Simulator(cluster_, trace, retry).run(scheduler);
  EXPECT_EQ(carried.dropped(), 0);
  EXPECT_EQ(carried.total_requests(), trace.total());
}

TEST_F(SimulatorFixture, CarryoverAgedRequestsFailForGood) {
  // Persistent overload: 20 demand every slot, capacity 16. Deferred
  // requests meet another full slot and (drops consume aged first) fail.
  workload::Trace trace(3, 1, cluster_.num_devices());
  for (int t = 0; t < 3; ++t) {
    for (int k = 0; k < cluster_.num_devices(); ++k) trace.set(t, 0, k, 20);
  }
  SimulatorConfig retry;
  retry.noise_sigma = 0.0;
  retry.carryover_unserved = true;
  LocalGreedyScheduler scheduler(cluster_);
  const auto metrics = Simulator(cluster_, trace, retry).run(scheduler);
  // Every request eventually resolves: served or failed; none vanish.
  EXPECT_EQ(metrics.total_requests(), trace.total());
  EXPECT_GT(metrics.dropped(), 0);
}

TEST_F(SimulatorFixture, CarryoverReentersDemandExactlyOnce) {
  // A scheduler that serves nothing, spying on the demand it is offered.
  class DemandSpy : public Scheduler {
   public:
    explicit DemandSpy(const device::ClusterSpec& cluster)
        : cluster_(cluster) {}
    [[nodiscard]] std::string name() const override { return "spy"; }
    [[nodiscard]] SlotDecision decide(const SlotState& state) override {
      std::int64_t total = 0;
      for (int i = 0; i < cluster_.num_apps(); ++i) {
        for (int k = 0; k < cluster_.num_devices(); ++k) {
          total += state.demand(i, k);
        }
      }
      demands.push_back(total);
      return SlotDecision(cluster_.num_apps(), cluster_.zoo().max_variants(),
                          cluster_.num_devices());
    }
    std::vector<std::int64_t> demands;

   private:
    const device::ClusterSpec& cluster_;
  };

  // Demand only in slot 0; nothing is ever served. Deferred requests must
  // re-enter the demand exactly once (slot 1) and fail for good on the
  // second miss — slot 2 sees zero demand.
  workload::Trace trace(3, 1, cluster_.num_devices());
  for (int k = 0; k < cluster_.num_devices(); ++k) trace.set(0, 0, k, 7);
  SimulatorConfig config;
  config.noise_sigma = 0.0;
  config.carryover_unserved = true;
  DemandSpy scheduler(cluster_);
  const auto metrics = Simulator(cluster_, trace, config).run(scheduler);
  const std::int64_t total = 7 * cluster_.num_devices();
  ASSERT_EQ(scheduler.demands.size(), 3u);
  EXPECT_EQ(scheduler.demands[0], total);
  EXPECT_EQ(scheduler.demands[1], total);  // deferred once
  EXPECT_EQ(scheduler.demands[2], 0);      // failed for good, no re-entry
  EXPECT_EQ(metrics.dropped(), total);     // each request fails exactly once
  EXPECT_EQ(metrics.total_requests(), trace.total());
}

TEST_F(SimulatorFixture, MismatchedTraceRejected) {
  workload::Trace trace(1, 2, 2);  // wrong apps/devices
  EXPECT_THROW(Simulator(cluster_, trace), std::logic_error);
}

}  // namespace
}  // namespace birp::sim
