// Tests for the baseline schedulers: OAEI, MAX, NO-REDIST.
#include <gtest/gtest.h>

#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"
#include "birp/sched/max_batch.hpp"
#include "birp/sched/no_redist.hpp"
#include "birp/sched/oaei.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/workload/generator.hpp"

namespace birp::sched {
namespace {

workload::Trace make_trace(const device::ClusterSpec& cluster, int slots,
                           double target) {
  workload::GeneratorConfig config;
  config.slots = slots;
  config.mean_per_edge = workload::suggested_mean_per_edge(cluster, target);
  return workload::generate(cluster, config);
}

// ----------------------------------------------------------------- oaei ----

TEST(Oaei, ServesModerateLoadWithSerialKernels) {
  const auto cluster = device::ClusterSpec::paper_small();
  const auto trace = make_trace(cluster, 5, 0.4);
  OaeiScheduler scheduler(cluster);
  sim::Simulator simulator(cluster, trace);
  for (int t = 0; t < 5; ++t) {
    const auto result = simulator.step(scheduler);
    // Serial execution: every kernel is batch 1.
    for (int i = 0; i < cluster.num_apps(); ++i) {
      for (int j = 0; j < cluster.zoo().num_variants(i); ++j) {
        for (int k = 0; k < cluster.num_devices(); ++k) {
          if (result.decision.served(i, j, k) > 0) {
            EXPECT_EQ(result.decision.kernel(i, j, k), 1);
          }
        }
      }
    }
    EXPECT_GT(result.served, 0);
  }
}

TEST(Oaei, DecisionsPassValidationCleanly) {
  const auto cluster = device::ClusterSpec::paper_small();
  const auto trace = make_trace(cluster, 8, 0.4);
  OaeiScheduler scheduler(cluster);
  sim::Simulator simulator(cluster, trace);
  int clean = 0;
  for (int t = 0; t < 8; ++t) {
    clean += simulator.step(scheduler).repairs.clean() ? 1 : 0;
  }
  EXPECT_GE(clean, 7);  // randomized rounding may rarely need a trim
}

TEST(Oaei, CapacityFactorStartsAtOneAndStaysBounded) {
  const auto cluster = device::ClusterSpec::paper_small();
  OaeiScheduler scheduler(cluster);
  for (int k = 0; k < cluster.num_devices(); ++k) {
    EXPECT_DOUBLE_EQ(scheduler.capacity_factor(k), 1.0);
  }
  const auto trace = make_trace(cluster, 20, 0.5);
  sim::Simulator simulator(cluster, trace);
  simulator.run(scheduler);
  for (int k = 0; k < cluster.num_devices(); ++k) {
    EXPECT_GT(scheduler.capacity_factor(k), 0.2);
    EXPECT_LT(scheduler.capacity_factor(k), 4.5);
  }
}

TEST(Oaei, LearnedCapacityTracksSerialReality) {
  // Serial execution has no TIR speedup and lognormal noise is mean-one, so
  // the learned factor should hover near 1.
  const auto cluster = device::ClusterSpec::paper_small();
  OaeiScheduler scheduler(cluster);
  const auto trace = make_trace(cluster, 30, 0.5);
  sim::Simulator simulator(cluster, trace);
  simulator.run(scheduler);
  for (int k = 0; k < cluster.num_devices(); ++k) {
    EXPECT_NEAR(scheduler.capacity_factor(k), 1.0, 0.35);
  }
}

// ------------------------------------------------------------------ max ----

TEST(Max, AlwaysUsesFixedKernel) {
  const auto cluster = device::ClusterSpec::paper_small();
  const auto trace = make_trace(cluster, 5, 0.4);
  MaxConfig config;
  config.b0 = 16;
  MaxScheduler scheduler(cluster, config);
  sim::Simulator simulator(cluster, trace);
  for (int t = 0; t < 5; ++t) {
    const auto result = simulator.step(scheduler);
    for (int i = 0; i < cluster.num_apps(); ++i) {
      for (int j = 0; j < cluster.zoo().num_variants(i); ++j) {
        for (int k = 0; k < cluster.num_devices(); ++k) {
          if (result.decision.served(i, j, k) > 0) {
            EXPECT_EQ(result.decision.kernel(i, j, k), 16);
          }
        }
      }
    }
  }
}

TEST(Max, RespectsBudgetsByConstruction) {
  const auto cluster = device::ClusterSpec::paper_small();
  const auto trace = make_trace(cluster, 6, 0.6);
  MaxScheduler scheduler(cluster);
  sim::Simulator simulator(cluster, trace);
  for (int t = 0; t < 6; ++t) {
    EXPECT_TRUE(simulator.step(scheduler).repairs.clean()) << "slot " << t;
  }
}

TEST(Max, PaddedLaunchesWasteComputeAtLowLoad) {
  // With three requests and B0 = 16, the launch still costs a full padded
  // batch: busy time must exceed the right-sized alternative.
  const auto cluster = device::ClusterSpec::paper_small();
  workload::Trace trace(1, 1, cluster.num_devices());
  trace.set(0, 0, 0, 3);
  MaxScheduler scheduler(cluster);
  sim::SimulatorConfig config;
  config.noise_sigma = 0.0;
  sim::Simulator simulator(cluster, trace, config);
  const auto result = simulator.step(scheduler);
  double busy = 0.0;
  for (const double b : result.feedback.busy_s) busy += b;
  // Find where the requests landed and compare with a batch-3 launch there.
  double right_sized = 1e18;
  for (int j = 0; j < cluster.zoo().num_variants(0); ++j) {
    for (int k = 0; k < cluster.num_devices(); ++k) {
      if (result.decision.served(0, j, k) > 0) {
        right_sized = cluster.truth().batch_time_s(k, 0, j, 3);
      }
    }
  }
  ASSERT_LT(right_sized, 1e18);
  EXPECT_GT(busy, right_sized * 1.5);
}

TEST(Max, RejectsBadConfig) {
  const auto cluster = device::ClusterSpec::paper_small();
  MaxConfig config;
  config.b0 = 0;
  EXPECT_THROW(MaxScheduler(cluster, config), std::logic_error);
}

// ------------------------------------------------------------ no-redist ----

TEST(NoRedist, NeverMovesRequests) {
  const auto cluster = device::ClusterSpec::paper_small();
  const auto trace = make_trace(cluster, 6, 0.5);
  auto scheduler = make_no_redist(cluster);
  EXPECT_EQ(scheduler.name(), "NO-REDIST");
  sim::Simulator simulator(cluster, trace);
  for (int t = 0; t < 6; ++t) {
    const auto result = simulator.step(scheduler);
    EXPECT_TRUE(result.decision.flows.empty()) << "slot " << t;
  }
}

TEST(NoRedist, WorseThanBirpUnderSkew) {
  // A strongly skewed, heavy workload: the hot edge cannot serve locally
  // with good models, so disabling redistribution must cost loss.
  const auto cluster = device::ClusterSpec::paper_large();
  workload::GeneratorConfig config;
  config.slots = 12;
  config.mean_per_edge = workload::suggested_mean_per_edge(cluster, 0.9);
  config.hot_edge_factor = 3.0;
  const auto trace = workload::generate(cluster, config);

  // Oracle beliefs on both sides so MAB exploration noise cannot mask the
  // redistribution effect: with identical beliefs, allowing flows strictly
  // enlarges the per-slot feasible set.
  auto birp = core::BirpScheduler::offline(cluster);
  core::BirpConfig off_config;
  off_config.online = false;
  auto noredist = make_no_redist(cluster, off_config);
  sim::Simulator sim_a(cluster, trace);
  sim::Simulator sim_b(cluster, trace);
  const auto with = sim_a.run(birp);
  const auto without = sim_b.run(noredist);
  EXPECT_LT(with.total_loss(), without.total_loss());
}

}  // namespace
}  // namespace birp::sched
