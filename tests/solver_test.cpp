// Unit, integration, and property tests for the LP/MILP solver substrate.
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "birp/solver/branch_and_bound.hpp"
#include "birp/solver/model.hpp"
#include "birp/solver/simplex.hpp"
#include "birp/util/rng.hpp"

namespace birp::solver {
namespace {

constexpr double kTol = 1e-6;

// ---------------------------------------------------------------- model ----

TEST(Model, VariableBookkeeping) {
  Model model;
  const int x = model.add_continuous("x", 0.0, 5.0);
  const int y = model.add_integer("y", 0.0, 10.0);
  const int z = model.add_binary("z");
  EXPECT_EQ(model.num_variables(), 3);
  EXPECT_EQ(model.variable(x).type, VarType::Continuous);
  EXPECT_EQ(model.variable(y).type, VarType::Integer);
  EXPECT_EQ(model.variable(z).type, VarType::Binary);
  EXPECT_TRUE(model.has_integers());
}

TEST(Model, CombinesDuplicateTerms) {
  Model model;
  const int x = model.add_continuous("x", 0.0, 1.0);
  model.add_constraint({{x, 1.0}, {x, 2.0}}, Relation::LessEqual, 3.0);
  ASSERT_EQ(model.constraint(0).terms.size(), 1u);
  EXPECT_DOUBLE_EQ(model.constraint(0).terms[0].coeff, 3.0);
}

TEST(Model, RejectsBadInput) {
  Model model;
  EXPECT_THROW(model.add_continuous("bad", 2.0, 1.0), std::logic_error);
  EXPECT_THROW(model.add_variable("inf", -kInfinity, 1.0, VarType::Continuous),
               std::logic_error);
  const int x = model.add_continuous("x", 0.0, 1.0);
  EXPECT_THROW(model.add_constraint({{x + 5, 1.0}}, Relation::Equal, 0.0),
               std::logic_error);
  EXPECT_THROW(model.set_objective(99, 1.0), std::logic_error);
}

TEST(Model, ViolationMeasuresBoundsAndRows) {
  Model model;
  const int x = model.add_continuous("x", 0.0, 1.0);
  model.add_constraint({{x, 1.0}}, Relation::LessEqual, 0.5);
  const std::vector<double> ok{0.25};
  const std::vector<double> bad{0.9};
  EXPECT_DOUBLE_EQ(model.max_violation(ok), 0.0);
  EXPECT_NEAR(model.max_violation(bad), 0.4, 1e-12);
}

TEST(Model, ProductLinearizationIsExactAtIntegerPoints) {
  Model model;
  const int x = model.add_binary("x");
  const int b = model.add_integer("b", 0.0, 7.0);
  const int z = model.add_product(x, b);
  // For every integer (x, b) combination, z = x*b must be the only feasible z.
  for (const double xv : {0.0, 1.0}) {
    for (double bv = 0.0; bv <= 7.0; ++bv) {
      const double expected = xv * bv;
      std::vector<double> point{xv, bv, expected};
      EXPECT_LE(model.max_violation(point), 1e-12)
          << "x=" << xv << " b=" << bv;
      if (xv == 1.0) {
        std::vector<double> wrong{xv, bv, expected + 0.5};
        EXPECT_GT(model.max_violation(wrong), 0.1);
      }
      (void)z;
    }
  }
}

// -------------------------------------------------------------- simplex ----

TEST(Simplex, SolvesTextbookLp) {
  // max 3a + 5b  s.t. a <= 4, 2b <= 12, 3a + 2b <= 18  (Dantzig's example)
  // => min -3a - 5b, optimum at (2, 6) with value -36.
  Model model;
  const int a = model.add_continuous("a", 0.0, kInfinity);
  const int b = model.add_continuous("b", 0.0, kInfinity);
  model.set_objective(a, -3.0);
  model.set_objective(b, -5.0);
  model.add_constraint({{a, 1.0}}, Relation::LessEqual, 4.0);
  model.add_constraint({{b, 2.0}}, Relation::LessEqual, 12.0);
  model.add_constraint({{a, 3.0}, {b, 2.0}}, Relation::LessEqual, 18.0);
  const auto solution = solve_lp(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(solution.objective, -36.0, kTol);
  EXPECT_NEAR(solution.values[0], 2.0, kTol);
  EXPECT_NEAR(solution.values[1], 6.0, kTol);
}

TEST(Simplex, HandlesEqualityAndSurplus) {
  // min x + y  s.t. x + y = 10, x >= 3, y >= 2  => 10 with slackness.
  Model model;
  const int x = model.add_continuous("x", 0.0, kInfinity);
  const int y = model.add_continuous("y", 0.0, kInfinity);
  model.set_objective(x, 1.0);
  model.set_objective(y, 1.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 10.0);
  model.add_constraint({{x, 1.0}}, Relation::GreaterEqual, 3.0);
  model.add_constraint({{y, 1.0}}, Relation::GreaterEqual, 2.0);
  const auto solution = solve_lp(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(solution.objective, 10.0, kTol);
  EXPECT_GE(solution.values[0], 3.0 - kTol);
  EXPECT_GE(solution.values[1], 2.0 - kTol);
}

TEST(Simplex, RespectsUpperBoundsWithoutRows) {
  // min -x - 2y with x in [0,3], y in [0,4], x + y <= 5 => (1,4), -9.
  Model model;
  const int x = model.add_continuous("x", 0.0, 3.0);
  const int y = model.add_continuous("y", 0.0, 4.0);
  model.set_objective(x, -1.0);
  model.set_objective(y, -2.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 5.0);
  const auto solution = solve_lp(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(solution.objective, -9.0, kTol);
  EXPECT_NEAR(solution.values[0], 1.0, kTol);
  EXPECT_NEAR(solution.values[1], 4.0, kTol);
}

TEST(Simplex, NonzeroLowerBounds) {
  // min x + y with x >= 2, y >= 1.5, x + y >= 5 => 5 at e.g. (3.5, 1.5).
  Model model;
  const int x = model.add_continuous("x", 2.0, kInfinity);
  const int y = model.add_continuous("y", 1.5, kInfinity);
  model.set_objective(x, 1.0);
  model.set_objective(y, 1.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::GreaterEqual, 5.0);
  const auto solution = solve_lp(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(solution.objective, 5.0, kTol);
}

TEST(Simplex, DetectsInfeasibility) {
  Model model;
  const int x = model.add_continuous("x", 0.0, 1.0);
  model.add_constraint({{x, 1.0}}, Relation::GreaterEqual, 2.0);
  const auto solution = solve_lp(model);
  EXPECT_EQ(solution.status, SolveStatus::Infeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Model model;
  const int x = model.add_continuous("x", 0.0, kInfinity);
  model.set_objective(x, -1.0);
  const auto solution = solve_lp(model);
  EXPECT_EQ(solution.status, SolveStatus::Unbounded);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate LP (multiple constraints active at the optimum).
  Model model;
  const int x = model.add_continuous("x", 0.0, kInfinity);
  const int y = model.add_continuous("y", 0.0, kInfinity);
  model.set_objective(x, -1.0);
  model.set_objective(y, -1.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 1.0);
  model.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::LessEqual, 1.0);
  model.add_constraint({{x, 2.0}, {y, 1.0}}, Relation::LessEqual, 1.0);
  const auto solution = solve_lp(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(solution.objective, -2.0 / 3.0, kTol);
}

TEST(Simplex, BoundOverridesShrinkFeasibleRegion) {
  Model model;
  const int x = model.add_continuous("x", 0.0, 10.0);
  model.set_objective(x, -1.0);
  const std::vector<double> lower{0.0};
  const std::vector<double> upper{4.0};
  const auto solution = solve_lp(model, lower, upper);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(solution.values[0], 4.0, kTol);
}

TEST(Simplex, CrossedOverrideBoundsAreInfeasible) {
  Model model;
  model.add_continuous("x", 0.0, 10.0);
  const std::vector<double> lower{5.0};
  const std::vector<double> upper{4.0};
  const auto solution = solve_lp(model, lower, upper);
  EXPECT_EQ(solution.status, SolveStatus::Infeasible);
}

TEST(Simplex, FixedVariablesPropagate) {
  Model model;
  const int x = model.add_continuous("x", 3.0, 3.0);
  const int y = model.add_continuous("y", 0.0, kInfinity);
  model.set_objective(y, 1.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::GreaterEqual, 7.0);
  const auto solution = solve_lp(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(solution.values[0], 3.0, kTol);
  EXPECT_NEAR(solution.values[1], 4.0, kTol);
}

// Property sweep: random transportation-style LPs must return feasible
// points whose objective is no worse than a greedy feasible reference.
class SimplexRandomLp : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomLp, ReturnsFeasibleOptimum) {
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()));
  const int sources = 3;
  const int sinks = 4;
  Model model;
  std::vector<std::vector<int>> flow(
      sources, std::vector<int>(sinks, -1));
  std::vector<double> cost(static_cast<std::size_t>(sources * sinks));
  for (int s = 0; s < sources; ++s) {
    for (int d = 0; d < sinks; ++d) {
      const int var = model.add_continuous(
          "f" + std::to_string(s) + "_" + std::to_string(d), 0.0, kInfinity);
      flow[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)] = var;
      const double c = rng.uniform(1.0, 10.0);
      cost[static_cast<std::size_t>(var)] = c;
      model.set_objective(var, c);
    }
  }
  std::vector<double> supply(sources);
  std::vector<double> demand(sinks, 0.0);
  double total = 0.0;
  for (int s = 0; s < sources; ++s) {
    supply[static_cast<std::size_t>(s)] = rng.uniform(5.0, 20.0);
    total += supply[static_cast<std::size_t>(s)];
  }
  // Distribute total demand over sinks.
  double remaining = total;
  for (int d = 0; d < sinks - 1; ++d) {
    demand[static_cast<std::size_t>(d)] = remaining * rng.uniform(0.1, 0.4);
    remaining -= demand[static_cast<std::size_t>(d)];
  }
  demand[static_cast<std::size_t>(sinks - 1)] = remaining;

  for (int s = 0; s < sources; ++s) {
    std::vector<Term> terms;
    for (int d = 0; d < sinks; ++d) {
      terms.push_back({flow[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)], 1.0});
    }
    model.add_constraint(terms, Relation::Equal, supply[static_cast<std::size_t>(s)]);
  }
  for (int d = 0; d < sinks; ++d) {
    std::vector<Term> terms;
    for (int s = 0; s < sources; ++s) {
      terms.push_back({flow[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)], 1.0});
    }
    model.add_constraint(terms, Relation::Equal, demand[static_cast<std::size_t>(d)]);
  }

  const auto solution = solve_lp(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_LE(model.max_violation(solution.values), 1e-6);

  // Reference: send everything along each source's cheapest arc proportions —
  // a feasible northwest-corner-style plan; optimum must not exceed it.
  double reference = 0.0;
  {
    std::vector<double> s_left = supply;
    std::vector<double> d_left = demand;
    for (int s = 0; s < sources; ++s) {
      for (int d = 0; d < sinks && s_left[static_cast<std::size_t>(s)] > 1e-12; ++d) {
        const double amount =
            std::min(s_left[static_cast<std::size_t>(s)], d_left[static_cast<std::size_t>(d)]);
        if (amount <= 0.0) continue;
        const int var = flow[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)];
        reference += cost[static_cast<std::size_t>(var)] * amount;
        s_left[static_cast<std::size_t>(s)] -= amount;
        d_left[static_cast<std::size_t>(d)] -= amount;
      }
    }
  }
  EXPECT_LE(solution.objective, reference + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomLp, ::testing::Range(1, 25));

// ---------------------------------------------------------------- duals ----

TEST(SimplexDuals, KnownShadowPrices) {
  // max 3a + 5b s.t. a <= 4, 2b <= 12, 3a + 2b <= 18 (minimized as -3a-5b).
  // Optimal basis has rows 2 and 3 binding; textbook duals for the max
  // problem are (0, 3/2, 1), i.e. (0, -3/2, -1) for our minimization.
  Model model;
  const int a = model.add_continuous("a", 0.0, kInfinity);
  const int b = model.add_continuous("b", 0.0, kInfinity);
  model.set_objective(a, -3.0);
  model.set_objective(b, -5.0);
  model.add_constraint({{a, 1.0}}, Relation::LessEqual, 4.0);
  model.add_constraint({{b, 2.0}}, Relation::LessEqual, 12.0);
  model.add_constraint({{a, 3.0}, {b, 2.0}}, Relation::LessEqual, 18.0);
  const auto solution = solve_lp(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  ASSERT_EQ(solution.duals.size(), 3u);
  EXPECT_NEAR(solution.duals[0], 0.0, 1e-9);
  EXPECT_NEAR(solution.duals[1], -1.5, 1e-9);
  EXPECT_NEAR(solution.duals[2], -1.0, 1e-9);
}

TEST(SimplexDuals, EqualityRowShadowPrice) {
  // min x + 2y s.t. x + y = 10, x <= 6. Optimum x=6, y=4, obj 14.
  // Raising the rhs by 1 adds one more y: dObj/drhs = 2.
  Model model;
  const int x = model.add_continuous("x", 0.0, 6.0);
  const int y = model.add_continuous("y", 0.0, kInfinity);
  model.set_objective(x, 1.0);
  model.set_objective(y, 2.0);
  model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 10.0);
  const auto solution = solve_lp(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(solution.objective, 14.0, 1e-9);
  ASSERT_EQ(solution.duals.size(), 1u);
  EXPECT_NEAR(solution.duals[0], 2.0, 1e-9);
}

class DualPerturbation : public ::testing::TestWithParam<int> {};

TEST_P(DualPerturbation, DualsPredictRhsSensitivity) {
  // Random feasible LPs: for each constraint, the dual must match the
  // numerical sensitivity of the optimum to the rhs (checked against the
  // two one-sided finite differences; degenerate rows may differ between
  // sides, in which case the dual must lie between them).
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()) * 389);
  constexpr int kVars = 5;
  constexpr int kRows = 4;
  Model model;
  for (int v = 0; v < kVars; ++v) {
    model.add_continuous("v" + std::to_string(v), 0.0, rng.uniform(2.0, 6.0));
    model.set_objective(v, rng.uniform(-2.0, 2.0));
  }
  std::vector<double> rhs(kRows);
  for (int r = 0; r < kRows; ++r) {
    std::vector<Term> terms;
    double sum = 0.0;
    for (int v = 0; v < kVars; ++v) {
      const double c = rng.uniform(0.1, 2.0);
      terms.push_back({v, c});
      sum += c;
    }
    rhs[static_cast<std::size_t>(r)] = rng.uniform(0.2, 0.7) * sum * 4.0;
    model.add_constraint(terms, Relation::LessEqual,
                         rhs[static_cast<std::size_t>(r)]);
  }
  const auto base = solve_lp(model);
  ASSERT_EQ(base.status, SolveStatus::Optimal);
  ASSERT_EQ(base.duals.size(), static_cast<std::size_t>(kRows));

  constexpr double kDelta = 1e-4;
  for (int r = 0; r < kRows; ++r) {
    // Rebuild with a perturbed rhs (Model rows are append-only).
    const auto perturbed_obj = [&](double delta) {
      Model copy;
      for (int v = 0; v < kVars; ++v) {
        const auto& info = model.variable(v);
        copy.add_continuous(info.name, info.lower, info.upper);
        copy.set_objective(v, info.objective);
      }
      for (int rr = 0; rr < kRows; ++rr) {
        const auto& row = model.constraint(rr);
        copy.add_constraint(row.terms, row.relation,
                            row.rhs + (rr == r ? delta : 0.0));
      }
      return solve_lp(copy);
    };
    const auto up = perturbed_obj(kDelta);
    const auto down = perturbed_obj(-kDelta);
    if (up.status != SolveStatus::Optimal ||
        down.status != SolveStatus::Optimal) {
      continue;  // perturbation crossed into infeasibility: skip this row
    }
    const double slope_up = (up.objective - base.objective) / kDelta;
    const double slope_down = (base.objective - down.objective) / kDelta;
    const double lo = std::min(slope_up, slope_down) - 1e-5;
    const double hi = std::max(slope_up, slope_down) + 1e-5;
    EXPECT_GE(base.duals[static_cast<std::size_t>(r)], lo)
        << "seed " << GetParam() << " row " << r;
    EXPECT_LE(base.duals[static_cast<std::size_t>(r)], hi)
        << "seed " << GetParam() << " row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualPerturbation, ::testing::Range(1, 21));

// ----------------------------------------------------- branch and bound ----

TEST(BranchAndBound, SolvesKnapsack) {
  // max 60a + 100b + 120c s.t. 10a + 20b + 30c <= 50, binary.
  // Optimum: b + c = 220.
  Model model;
  const int a = model.add_binary("a");
  const int b = model.add_binary("b");
  const int c = model.add_binary("c");
  model.set_objective(a, -60.0);
  model.set_objective(b, -100.0);
  model.set_objective(c, -120.0);
  model.add_constraint({{a, 10.0}, {b, 20.0}, {c, 30.0}}, Relation::LessEqual,
                       50.0);
  const auto solution = solve_milp(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(solution.objective, -220.0, kTol);
  EXPECT_NEAR(solution.values[0], 0.0, kTol);
  EXPECT_NEAR(solution.values[1], 1.0, kTol);
  EXPECT_NEAR(solution.values[2], 1.0, kTol);
}

TEST(BranchAndBound, IntegerVariablesRoundCorrectly) {
  // min -x - y s.t. 2x + y <= 7.3, x + 3y <= 9.7, x,y integer >= 0.
  // LP optimum is fractional; integer optimum is checked by enumeration.
  Model model;
  const int x = model.add_integer("x", 0.0, 10.0);
  const int y = model.add_integer("y", 0.0, 10.0);
  model.set_objective(x, -1.0);
  model.set_objective(y, -1.0);
  model.add_constraint({{x, 2.0}, {y, 1.0}}, Relation::LessEqual, 7.3);
  model.add_constraint({{x, 1.0}, {y, 3.0}}, Relation::LessEqual, 9.7);
  const auto solution = solve_milp(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);

  double best = 0.0;
  for (int xv = 0; xv <= 10; ++xv) {
    for (int yv = 0; yv <= 10; ++yv) {
      if (2.0 * xv + yv <= 7.3 && xv + 3.0 * yv <= 9.7) {
        best = std::min(best, static_cast<double>(-xv - yv));
      }
    }
  }
  EXPECT_NEAR(solution.objective, best, kTol);
  EXPECT_LE(model.max_integrality_violation(solution.values), 1e-6);
}

TEST(BranchAndBound, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 has no integer point.
  Model model;
  model.add_integer("x", 0.4, 0.6);
  const auto solution = solve_milp(model);
  EXPECT_EQ(solution.status, SolveStatus::Infeasible);
}

TEST(BranchAndBound, PureLpPassesThrough) {
  Model model;
  const int x = model.add_continuous("x", 0.0, 2.5);
  model.set_objective(x, -1.0);
  const auto solution = solve_milp(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(solution.values[0], 2.5, kTol);
}

TEST(BranchAndBound, ProductBehavesInOptimization) {
  // min loss: pick model (binary x1/x2) and batch z to cover demand 5 with
  // capacity favoring batching; z_i = x_i * b_i linearized via bounds.
  Model model;
  const int x1 = model.add_binary("x1");
  const int x2 = model.add_binary("x2");
  const int b1 = model.add_integer("b1", 0.0, 8.0);
  const int b2 = model.add_integer("b2", 0.0, 8.0);
  const int z1 = model.add_product(x1, b1);
  const int z2 = model.add_product(x2, b2);
  // Cover exactly 5 requests.
  model.add_constraint({{z1, 1.0}, {z2, 1.0}}, Relation::Equal, 5.0);
  // Capacity: model 1 cheap but lossy; model 2 accurate but heavy.
  model.add_constraint({{z1, 1.0}, {z2, 3.0}}, Relation::LessEqual, 9.0);
  model.set_objective(z1, 0.4);  // loss per request on model 1
  model.set_objective(z2, 0.2);  // loss per request on model 2
  const auto solution = solve_milp(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  // Best: put 2 on model 2 (cost .4, capacity 6) and 3 on model 1 (cost 1.2):
  // total 1.6 capacity 9. Check optimal objective by enumeration.
  double best = 1e9;
  for (int a = 0; a <= 8; ++a) {
    for (int b = 0; b <= 8; ++b) {
      if (a + b == 5 && a + 3.0 * b <= 9.0) {
        best = std::min(best, 0.4 * a + 0.2 * b);
      }
    }
  }
  EXPECT_NEAR(solution.objective, best, kTol);
}

TEST(BranchAndBound, NodeBudgetReturnsIncumbent) {
  // A problem the rounding heuristic solves instantly; with max_nodes = 1 we
  // should still get a usable (Feasible) answer.
  Model model;
  std::vector<int> vars;
  util::Xoshiro256StarStar rng(99);
  std::vector<Term> row;
  for (int i = 0; i < 12; ++i) {
    const int v = model.add_binary("v" + std::to_string(i));
    vars.push_back(v);
    model.set_objective(v, -rng.uniform(1.0, 2.0));
    row.push_back({v, rng.uniform(1.0, 4.0)});
  }
  model.add_constraint(row, Relation::LessEqual, 14.0);
  BranchAndBoundOptions options;
  options.max_nodes = 1;
  const auto solution = solve_milp(model, options);
  EXPECT_TRUE(solution.usable());
  EXPECT_LE(model.max_violation(solution.values), 1e-6);
}

// Property sweep: random small MILPs cross-checked against brute force.
class MilpBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(MilpBruteForce, MatchesExhaustiveSearch) {
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  constexpr int kVars = 6;
  constexpr int kRows = 4;
  constexpr int kUpper = 3;

  Model model;
  std::vector<double> obj(kVars);
  for (int j = 0; j < kVars; ++j) {
    model.add_integer("v" + std::to_string(j), 0.0, kUpper);
    obj[static_cast<std::size_t>(j)] = rng.uniform(-5.0, 5.0);
    model.set_objective(j, obj[static_cast<std::size_t>(j)]);
  }
  std::vector<std::vector<double>> rows(kRows, std::vector<double>(kVars));
  std::vector<double> rhs(kRows);
  for (int i = 0; i < kRows; ++i) {
    double row_sum = 0.0;
    for (int j = 0; j < kVars; ++j) {
      rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          rng.uniform(0.0, 3.0);
      row_sum += rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
    rhs[static_cast<std::size_t>(i)] = rng.uniform(0.3, 0.9) * row_sum * kUpper;
    std::vector<Term> terms;
    for (int j = 0; j < kVars; ++j) {
      terms.push_back({j, rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]});
    }
    model.add_constraint(terms, Relation::LessEqual, rhs[static_cast<std::size_t>(i)]);
  }

  const auto solution = solve_milp(model);
  ASSERT_EQ(solution.status, SolveStatus::Optimal) << "seed " << GetParam();

  // Brute force over (kUpper+1)^kVars = 4096 points.
  double best = 1e18;
  std::vector<int> assign(kVars, 0);
  const int total = static_cast<int>(std::pow(kUpper + 1, kVars));
  for (int code = 0; code < total; ++code) {
    int rem = code;
    for (int j = 0; j < kVars; ++j) {
      assign[static_cast<std::size_t>(j)] = rem % (kUpper + 1);
      rem /= (kUpper + 1);
    }
    bool feasible = true;
    for (int i = 0; i < kRows && feasible; ++i) {
      double lhs = 0.0;
      for (int j = 0; j < kVars; ++j) {
        lhs += rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
               assign[static_cast<std::size_t>(j)];
      }
      feasible = lhs <= rhs[static_cast<std::size_t>(i)] + 1e-9;
    }
    if (!feasible) continue;
    double value = 0.0;
    for (int j = 0; j < kVars; ++j) {
      value += obj[static_cast<std::size_t>(j)] * assign[static_cast<std::size_t>(j)];
    }
    best = std::min(best, value);
  }
  EXPECT_NEAR(solution.objective, best, 1e-5) << "seed " << GetParam();
  EXPECT_LE(model.max_violation(solution.values), 1e-6);
  EXPECT_LE(model.max_integrality_violation(solution.values), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpBruteForce, ::testing::Range(1, 21));

// ------------------------------------------------------- both engines ----

// The scale and cycling regressions below must hold on the sparse revised
// engine (production) and the dense tableau (reference) alike.
const SimplexAlgorithm kBothEngines[] = {SimplexAlgorithm::SparseRevised,
                                         SimplexAlgorithm::DenseTableau};

TEST(SimplexScaling, TinyUniformScalingStillPivots) {
  // Dantzig's textbook LP with both constraint sides scaled by 1e-10: the
  // optimum (2, 6) and objective -36 are unchanged. A historical absolute
  // pivot cutoff (1e-9) rejected every ratio-test row at this scale and
  // misreported the problem as Unbounded.
  constexpr double kScale = 1e-10;
  for (const auto algorithm : kBothEngines) {
    Model model;
    const int a = model.add_continuous("a", 0.0, kInfinity);
    const int b = model.add_continuous("b", 0.0, kInfinity);
    model.set_objective(a, -3.0);
    model.set_objective(b, -5.0);
    model.add_constraint({{a, 1.0 * kScale}}, Relation::LessEqual,
                         4.0 * kScale);
    model.add_constraint({{b, 2.0 * kScale}}, Relation::LessEqual,
                         12.0 * kScale);
    model.add_constraint({{a, 3.0 * kScale}, {b, 2.0 * kScale}},
                         Relation::LessEqual, 18.0 * kScale);
    SimplexOptions options;
    options.algorithm = algorithm;
    const auto solution = solve_lp(model, options);
    ASSERT_EQ(solution.status, SolveStatus::Optimal)
        << "algorithm " << static_cast<int>(algorithm);
    EXPECT_NEAR(solution.objective, -36.0, kTol);
    EXPECT_NEAR(solution.values[0], 2.0, kTol);
    EXPECT_NEAR(solution.values[1], 6.0, kTol);
  }
}

TEST(SimplexScaling, HugeRhsPhaseOneIsNotSpuriouslyInfeasible) {
  // Equality rows at |b| ~ 3e9 force Phase I through artificials whose
  // retirement leaves rounding residue proportional to the rhs norm. The
  // feasibility verdict must scale with |b|; an absolute 1e-6 cutoff reads
  // that residue as infeasibility.
  for (const auto algorithm : kBothEngines) {
    Model model;
    const int x = model.add_continuous("x", 0.0, kInfinity);
    const int y = model.add_continuous("y", 0.0, kInfinity);
    model.set_objective(x, 1.0);
    model.set_objective(y, 2.0);
    model.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 3.0e9);
    model.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::Equal, 1.0e9);
    SimplexOptions options;
    options.algorithm = algorithm;
    const auto solution = solve_lp(model, options);
    ASSERT_EQ(solution.status, SolveStatus::Optimal)
        << "algorithm " << static_cast<int>(algorithm);
    const double expected = 2.0e9 + 2.0 * 1.0e9;
    EXPECT_NEAR(solution.objective, expected, 1e-6 * expected);
    EXPECT_NEAR(solution.values[0], 2.0e9, 1e3);
    EXPECT_NEAR(solution.values[1], 1.0e9, 1e3);
  }
}

TEST(SimplexScaling, HugeCoefficientRowsKeepScaledDuals) {
  // One row inflated by 1e8: primal answer unchanged, its shadow price
  // deflates by the same factor. Pivot eligibility must track the column
  // magnitude or the mixed-scale ratio test picks noise pivots.
  for (const auto algorithm : kBothEngines) {
    Model model;
    const int a = model.add_continuous("a", 0.0, kInfinity);
    const int b = model.add_continuous("b", 0.0, kInfinity);
    model.set_objective(a, -3.0);
    model.set_objective(b, -5.0);
    model.add_constraint({{a, 1.0}}, Relation::LessEqual, 4.0);
    model.add_constraint({{b, 2.0e8}}, Relation::LessEqual, 12.0e8);
    model.add_constraint({{a, 3.0}, {b, 2.0}}, Relation::LessEqual, 18.0);
    SimplexOptions options;
    options.algorithm = algorithm;
    const auto solution = solve_lp(model, options);
    ASSERT_EQ(solution.status, SolveStatus::Optimal)
        << "algorithm " << static_cast<int>(algorithm);
    EXPECT_NEAR(solution.objective, -36.0, kTol);
    // Tight rows: scaled one prices at -1.5e-8, the combined row at -1.
    EXPECT_NEAR(solution.duals[1] * 2.0e8, -3.0, kTol);
    EXPECT_NEAR(solution.duals[2], -1.0, kTol);
  }
}

TEST(SimplexCycling, BealeExampleTerminatesUnderBlandFallback) {
  // Beale's classic cycling LP: Dantzig pricing with exact tie-breaking
  // loops forever on its degenerate vertex. With an aggressive stall
  // threshold the Bland fallback must engage and terminate at the known
  // optimum -0.05 = (0.04, 0, 1, 0) on both engines, within a pivot budget
  // far below the automatic limit.
  for (const auto algorithm : kBothEngines) {
    for (const int stall_threshold : {1, 40}) {
      Model model;
      const int x1 = model.add_continuous("x1", 0.0, kInfinity);
      const int x2 = model.add_continuous("x2", 0.0, kInfinity);
      const int x3 = model.add_continuous("x3", 0.0, kInfinity);
      const int x4 = model.add_continuous("x4", 0.0, kInfinity);
      model.set_objective(x1, -0.75);
      model.set_objective(x2, 150.0);
      model.set_objective(x3, -0.02);
      model.set_objective(x4, 6.0);
      model.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                           Relation::LessEqual, 0.0);
      model.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                           Relation::LessEqual, 0.0);
      model.add_constraint({{x3, 1.0}}, Relation::LessEqual, 1.0);
      SimplexOptions options;
      options.algorithm = algorithm;
      options.stall_threshold = stall_threshold;
      options.max_iterations = 500;
      const auto solution = solve_lp(model, options);
      ASSERT_EQ(solution.status, SolveStatus::Optimal)
          << "algorithm " << static_cast<int>(algorithm) << " stall "
          << stall_threshold;
      EXPECT_NEAR(solution.objective, -0.05, kTol);
      EXPECT_LT(solution.simplex_iterations, 500);
    }
  }
}

TEST(SimplexEngines, DenseArmStillSolvesTextbookLp) {
  // The dense tableau stays available behind SimplexOptions::algorithm as
  // the reference arm for benches and cross-checks.
  Model model;
  const int a = model.add_continuous("a", 0.0, kInfinity);
  const int b = model.add_continuous("b", 0.0, kInfinity);
  model.set_objective(a, -3.0);
  model.set_objective(b, -5.0);
  model.add_constraint({{a, 1.0}}, Relation::LessEqual, 4.0);
  model.add_constraint({{b, 2.0}}, Relation::LessEqual, 12.0);
  model.add_constraint({{a, 3.0}, {b, 2.0}}, Relation::LessEqual, 18.0);
  SimplexOptions options;
  options.algorithm = SimplexAlgorithm::DenseTableau;
  const auto solution = solve_lp(model, options);
  ASSERT_EQ(solution.status, SolveStatus::Optimal);
  EXPECT_NEAR(solution.objective, -36.0, kTol);
}

}  // namespace
}  // namespace birp::solver
