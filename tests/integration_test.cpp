// End-to-end integration tests: full scheduler-vs-scheduler runs on shared
// traces, checking the qualitative relationships the paper's evaluation
// rests on. Kept short (tens of slots) so the suite stays fast; the bench
// binaries run the full 300-slot experiments.
#include <gtest/gtest.h>

#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"
#include "birp/metrics/run_metrics.hpp"
#include "birp/sched/max_batch.hpp"
#include "birp/sched/oaei.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/workload/generator.hpp"

namespace birp {
namespace {

metrics::RunMetrics run(const device::ClusterSpec& cluster,
                        const workload::Trace& trace, sim::Scheduler& s) {
  sim::Simulator simulator(cluster, trace);
  return simulator.run(s);
}

class SmallScale : public ::testing::Test {
 protected:
  SmallScale() : cluster_(device::ClusterSpec::paper_small()) {
    workload::GeneratorConfig config;
    config.slots = 30;
    config.mean_per_edge = workload::suggested_mean_per_edge(cluster_, 0.5);
    trace_ = workload::generate(cluster_, config);
  }

  device::ClusterSpec cluster_;
  workload::Trace trace_ = workload::Trace(1, 1, 1);
};

TEST_F(SmallScale, AllSchedulersServeTheBulkOfTheLoad) {
  core::BirpScheduler birp(cluster_);
  auto off = core::BirpScheduler::offline(cluster_);
  sched::OaeiScheduler oaei(cluster_);
  sched::MaxScheduler max(cluster_);
  for (sim::Scheduler* s :
       {static_cast<sim::Scheduler*>(&birp), static_cast<sim::Scheduler*>(&off),
        static_cast<sim::Scheduler*>(&oaei),
        static_cast<sim::Scheduler*>(&max)}) {
    const auto m = run(cluster_, trace_, *s);
    EXPECT_EQ(m.total_requests(), trace_.total()) << s->name();
    EXPECT_LT(static_cast<double>(m.dropped()) /
                  static_cast<double>(m.total_requests()),
              0.25)
        << s->name();
  }
}



TEST_F(SmallScale, DeterministicEndToEnd) {
  core::BirpScheduler a(cluster_);
  core::BirpScheduler b(cluster_);
  const auto ma = run(cluster_, trace_, a);
  const auto mb = run(cluster_, trace_, b);
  EXPECT_DOUBLE_EQ(ma.total_loss(), mb.total_loss());
  EXPECT_EQ(ma.slo_failures(), mb.slo_failures());
}

class LargeScale : public ::testing::Test {
 protected:
  LargeScale() : cluster_(device::ClusterSpec::paper_large()) {
    workload::GeneratorConfig config;
    config.slots = 30;
    // The calibrated operating point of the Fig. 7 experiment: serial
    // execution strains while batch-aware execution keeps headroom.
    config.mean_per_edge = workload::suggested_mean_per_edge(cluster_, 0.7);
    trace_ = workload::generate(cluster_, config);
  }

  device::ClusterSpec cluster_;
  workload::Trace trace_ = workload::Trace(1, 1, 1);
};

TEST_F(LargeScale, BirpMeetsSloTargets) {
  core::BirpScheduler birp(cluster_);
  const auto m = run(cluster_, trace_, birp);
  EXPECT_LT(m.failure_percent(), 10.0);
  EXPECT_GT(m.edge_busy().mean(), 0.2);  // actually doing work
}

TEST_F(LargeScale, SerialBaselineBurnsMoreComputePerRequest) {
  core::BirpScheduler birp(cluster_);
  sched::OaeiScheduler oaei(cluster_);
  const auto mb = run(cluster_, trace_, birp);
  const auto mo = run(cluster_, trace_, oaei);
  const double birp_cost = mb.edge_busy().mean() /
                           static_cast<double>(mb.total_requests() - mb.dropped());
  const double oaei_cost = mo.edge_busy().mean() /
                           static_cast<double>(mo.total_requests() - mo.dropped());
  EXPECT_LT(birp_cost, oaei_cost);
}

TEST_F(LargeScale, BatchAwareSchedulerBeatsSerialOnSloFailures) {
  // Under the large-scale load serial execution strains against tau while
  // batch-aware execution has headroom (paper section 5.4).
  core::BirpScheduler birp(cluster_);
  sched::OaeiScheduler oaei(cluster_);
  const auto birp_metrics = run(cluster_, trace_, birp);
  const auto oaei_metrics = run(cluster_, trace_, oaei);
  EXPECT_LT(birp_metrics.failure_percent(), oaei_metrics.failure_percent());
}

TEST_F(LargeScale, MaxHasWorstTailLatency) {
  // MAX's padded full-size batches delay individual requests: its
  // completion-time p95 should exceed BIRP's (the Fig. 7a right skew).
  core::BirpScheduler birp(cluster_);
  sched::MaxScheduler max(cluster_);
  const auto birp_metrics = run(cluster_, trace_, birp);
  const auto max_metrics = run(cluster_, trace_, max);
  EXPECT_GT(max_metrics.completion().quantile(0.95),
            birp_metrics.completion().quantile(0.95));
}

TEST_F(LargeScale, ValidatorNeverRepairsBirp) {
  core::BirpScheduler birp(cluster_);
  sim::Simulator simulator(cluster_, trace_);
  for (int t = 0; t < 20; ++t) {
    EXPECT_TRUE(simulator.step(birp).repairs.clean()) << "slot " << t;
  }
}

}  // namespace
}  // namespace birp
