// Property-based sweeps (TEST_P over seeds) for cross-module invariants:
// whatever garbage a scheduler emits, the repaired plan is physically
// feasible; whatever the LP returns, the incumbent heuristic's candidate
// satisfies the model; solver results are invariant under formulation
// permutations.
#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "birp/core/birp_scheduler.hpp"
#include "birp/core/problem.hpp"
#include "birp/device/cluster.hpp"
#include "birp/serve/adaptive.hpp"
#include "birp/serve/batcher.hpp"
#include "birp/serve/engine.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/sim/validate.hpp"
#include "birp/solver/branch_and_bound.hpp"
#include "birp/util/rng.hpp"
#include "birp/workload/generator.hpp"
#include "birp/workload/trace.hpp"

namespace birp {
namespace {

// ------------------------------------------------- validator invariants ----

class ValidatorFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ValidatorFuzz, RepairedDecisionIsAlwaysPhysicallyFeasible) {
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()) * 131);
  const auto cluster = device::ClusterSpec::paper_large();
  const int I = cluster.num_apps();
  const int K = cluster.num_devices();

  util::Grid2<std::int64_t> demand(I, K, 0);
  for (int i = 0; i < I; ++i) {
    for (int k = 0; k < K; ++k) demand(i, k) = rng.uniform_int(0, 60);
  }

  // Adversarial decision: random serving, kernels, flows, drops — including
  // nonsense (negative counts, self flows, phantom variants).
  sim::SlotDecision decision(I, cluster.zoo().max_variants() + 1, K);
  for (int i = 0; i < I; ++i) {
    for (int j = 0; j < decision.max_variants(); ++j) {
      for (int k = 0; k < K; ++k) {
        if (!rng.bernoulli(0.3)) continue;
        decision.served(i, j, k) = rng.uniform_int(-5, 80);
        decision.kernel(i, j, k) = static_cast<int>(rng.uniform_int(-2, 64));
      }
    }
    for (int k = 0; k < K; ++k) {
      decision.drops(i, k) = rng.uniform_int(-3, 10);
    }
  }
  for (int f = 0; f < 12; ++f) {
    decision.flows.push_back({static_cast<int>(rng.uniform_int(0, I - 1)),
                              static_cast<int>(rng.uniform_int(0, K - 1)),
                              static_cast<int>(rng.uniform_int(0, K - 1)),
                              rng.uniform_int(-10, 200)});
  }

  sim::validate_and_repair(cluster, demand, nullptr, decision);

  // Invariant 1: exact request conservation per (app, edge).
  for (int i = 0; i < I; ++i) {
    for (int k = 0; k < K; ++k) {
      std::int64_t served = 0;
      for (int j = 0; j < cluster.zoo().num_variants(i); ++j) {
        served += decision.served(i, j, k);
        EXPECT_GE(decision.served(i, j, k), 0);
      }
      const auto available =
          demand(i, k) - decision.exports(i, k) + decision.imports(i, k);
      EXPECT_EQ(served + decision.drops(i, k), available)
          << "seed " << GetParam() << " i=" << i << " k=" << k;
      EXPECT_GE(decision.drops(i, k), 0);
    }
  }
  // Invariant 2: per-edge physical budgets.
  for (int k = 0; k < K; ++k) {
    EXPECT_LE(sim::decision_memory_mb(cluster, decision, k),
              cluster.memory_mb(k) + 1e-6);
    EXPECT_LE(sim::decision_network_mb(cluster, decision, nullptr, k),
              cluster.network_mb(k) + 1e-6);
  }
  // Invariant 3: kernels sane; phantom variants silenced.
  for (int i = 0; i < I; ++i) {
    for (int j = 0; j < decision.max_variants(); ++j) {
      for (int k = 0; k < K; ++k) {
        if (j >= cluster.zoo().num_variants(i)) {
          EXPECT_EQ(decision.served(i, j, k), 0);
        }
        if (decision.served(i, j, k) > 0) {
          EXPECT_GE(decision.kernel(i, j, k), 1);
          EXPECT_LE(decision.kernel(i, j, k), sim::kMaxKernelBatch);
        }
      }
    }
  }
  // Invariant 4: exports never exceed local demand; no self flows.
  for (const auto& flow : decision.flows) {
    EXPECT_NE(flow.from, flow.to);
    EXPECT_GT(flow.count, 0);
  }
  for (int i = 0; i < I; ++i) {
    for (int k = 0; k < K; ++k) {
      EXPECT_LE(decision.exports(i, k), demand(i, k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidatorFuzz, ::testing::Range(1, 16));

// ------------------------------------------- heuristic model-feasibility ----

class HeuristicSweep : public ::testing::TestWithParam<int> {};

TEST_P(HeuristicSweep, CandidateSatisfiesModelAtEveryDemandLevel) {
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()) * 733);
  const auto cluster = device::ClusterSpec::paper_large();
  const int I = cluster.num_apps();
  const int K = cluster.num_devices();

  util::Grid2<std::int64_t> demand(I, K, 0);
  // Demand level scales with the seed: light through heavy overload.
  const auto level = 5 + 12 * (GetParam() % 8);
  for (int i = 0; i < I; ++i) {
    for (int k = 0; k < K; ++k) {
      demand(i, k) = rng.uniform_int(0, level);
    }
  }
  const core::TirLookup lookup = [&](int k, int i, int j) {
    return cluster.oracle_tir(k, i, j);
  };
  const auto built =
      core::build_slot_problem(cluster, demand, nullptr, lookup, {});
  const auto lp = solver::solve_lp(built.model);
  ASSERT_TRUE(lp.usable()) << "seed " << GetParam();

  const auto candidate = core::heuristic_incumbent(
      built, lp.values, cluster, demand, nullptr, lookup, {});
  ASSERT_FALSE(candidate.empty()) << "seed " << GetParam();
  EXPECT_LE(built.model.max_violation(candidate), 1e-6)
      << "seed " << GetParam();
  EXPECT_LE(built.model.max_integrality_violation(candidate), 1e-6);
  // Objective sanity: bounded below by the relaxation.
  EXPECT_GE(built.model.objective_value(candidate), lp.objective - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeuristicSweep, ::testing::Range(1, 17));

// ------------------------------------------------ solver permutation law ----

class SolverPermutation : public ::testing::TestWithParam<int> {};

TEST_P(SolverPermutation, ObjectiveInvariantUnderVariableReordering) {
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()) * 977);
  constexpr int kVars = 8;
  constexpr int kRows = 5;

  std::vector<double> obj(kVars);
  std::vector<double> upper(kVars);
  std::vector<std::vector<double>> rows(kRows, std::vector<double>(kVars));
  std::vector<double> rhs(kRows);
  for (int v = 0; v < kVars; ++v) {
    obj[static_cast<std::size_t>(v)] = rng.uniform(-3.0, 3.0);
    upper[static_cast<std::size_t>(v)] = rng.uniform(1.0, 5.0);
  }
  for (int r = 0; r < kRows; ++r) {
    double sum = 0.0;
    for (int v = 0; v < kVars; ++v) {
      rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)] =
          rng.uniform(0.0, 2.0);
      sum += rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)];
    }
    rhs[static_cast<std::size_t>(r)] = rng.uniform(0.3, 0.8) * sum;
  }

  const auto build = [&](const std::vector<int>& order) {
    solver::Model model;
    std::vector<int> var_of(kVars);
    for (int p = 0; p < kVars; ++p) {
      const int v = order[static_cast<std::size_t>(p)];
      var_of[static_cast<std::size_t>(v)] = model.add_integer(
          "v" + std::to_string(v), 0.0, upper[static_cast<std::size_t>(v)]);
      model.set_objective(var_of[static_cast<std::size_t>(v)],
                          obj[static_cast<std::size_t>(v)]);
    }
    for (int r = 0; r < kRows; ++r) {
      std::vector<solver::Term> terms;
      for (int v = 0; v < kVars; ++v) {
        terms.push_back({var_of[static_cast<std::size_t>(v)],
                         rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)]});
      }
      model.add_constraint(terms, solver::Relation::LessEqual,
                           rhs[static_cast<std::size_t>(r)]);
    }
    return solver::solve_milp(model);
  };

  std::vector<int> identity(kVars);
  std::vector<int> shuffled(kVars);
  for (int v = 0; v < kVars; ++v) identity[static_cast<std::size_t>(v)] = v;
  shuffled = identity;
  rng.shuffle(shuffled);

  const auto a = build(identity);
  const auto b = build(shuffled);
  ASSERT_EQ(a.status, solver::SolveStatus::Optimal);
  ASSERT_EQ(b.status, solver::SolveStatus::Optimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPermutation, ::testing::Range(1, 13));

// ------------------------------------------- end-to-end loss accounting ----

class AccountingSweep : public ::testing::TestWithParam<int> {};

TEST_P(AccountingSweep, MetricsBalanceAgainstTrace) {
  // For any intensity: requests in == completions + drops, and the loss is
  // bounded by [best, worst] model loss per request plus drop penalties.
  const auto cluster = device::ClusterSpec::paper_small();
  workload::GeneratorConfig config;
  config.slots = 8;
  config.seed = static_cast<std::uint64_t>(GetParam()) * 31;
  config.mean_per_edge =
      workload::suggested_mean_per_edge(cluster, 0.2 + 0.15 * (GetParam() % 5));
  const auto trace = workload::generate(cluster, config);

  core::BirpScheduler scheduler(cluster);
  sim::Simulator simulator(cluster, trace);
  const auto metrics = simulator.run(scheduler);

  EXPECT_EQ(metrics.total_requests(), trace.total());
  EXPECT_EQ(metrics.completion().count(),
            static_cast<std::size_t>(trace.total() - metrics.dropped()));

  const double best = cluster.zoo().best_loss(0);
  const double worst = cluster.zoo().worst_loss(0);
  const auto served = trace.total() - metrics.dropped();
  EXPECT_GE(metrics.total_loss(),
            best * static_cast<double>(served) +
                worst * static_cast<double>(metrics.dropped()) - 1e-6);
  EXPECT_LE(metrics.total_loss(),
            worst * static_cast<double>(trace.total()) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccountingSweep, ::testing::Range(1, 11));

// ------------------------------------------ adaptive batcher invariants ----

device::ClusterSpec serve_cluster(double tau = 6.0) {
  return device::ClusterSpec(device::one_of_each(), model::Zoo::small_scale(),
                             tau, 0x7e57);
}

/// Random FIFO prefix: availability-sorted (the queue's order), each
/// member's arrival at or before its availability (transfer delay).
std::vector<serve::ServeItem> random_candidates(util::Xoshiro256StarStar& rng,
                                                int count) {
  std::vector<serve::ServeItem> items;
  items.reserve(static_cast<std::size_t>(count));
  double at = rng.uniform(0.0, 1.0);
  for (int r = 0; r < count; ++r) {
    serve::ServeItem item;
    item.app = 0;
    item.seq = r;
    item.available_s = at;
    item.arrival_s = std::max(0.0, at - rng.uniform(0.0, 0.5));
    items.push_back(item);
    at += rng.uniform(0.0, 0.8);
  }
  return items;
}

class AdaptiveBatcherFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AdaptiveBatcherFuzz, DisabledPlanDelegatesToSealBatchExactly) {
  // Adaptation off: whatever the inputs, plan() must return seal_batch's
  // seal field for field — the byte-identity the default engine relies on.
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()) * 389);
  const auto cluster = serve_cluster();
  serve::AdaptiveBatcher batcher(cluster, serve::AdaptiveBatcherConfig{});
  ASSERT_FALSE(batcher.enabled());
  for (int trial = 0; trial < 200; ++trial) {
    const auto app = static_cast<int>(rng.uniform_int(0, cluster.num_apps() - 1));
    const auto variant = static_cast<int>(
        rng.uniform_int(0, cluster.zoo().num_variants(app) - 1));
    const auto edge =
        static_cast<int>(rng.uniform_int(0, cluster.num_devices() - 1));
    const auto count = static_cast<int>(rng.uniform_int(1, 12));
    const auto need = count + static_cast<int>(rng.uniform_int(0, 6));
    const auto prior = static_cast<int>(rng.uniform_int(1, need));
    auto candidates = random_candidates(rng, count);
    for (auto& item : candidates) item.app = app;
    const double cursor = rng.uniform(0.0, 4.0);
    const double max_wait = rng.bernoulli(0.3) ? -1.0 : rng.uniform(0.0, 1.5);
    const bool more = rng.bernoulli(0.5);

    std::vector<double> avails;
    for (const auto& item : candidates) avails.push_back(item.available_s);
    const auto expected =
        serve::seal_batch(avails, need, cursor, max_wait, more);
    const auto plan = batcher.plan(edge, app, variant, candidates, prior, need,
                                   cursor, max_wait, more);
    EXPECT_EQ(plan.seal.count, expected.count) << "seed " << GetParam();
    EXPECT_DOUBLE_EQ(plan.seal.formation_end_s, expected.formation_end_s);
    EXPECT_DOUBLE_EQ(plan.seal.start_s, expected.start_s);
    EXPECT_EQ(plan.seal.timed_out, expected.timed_out);
    // Disabled plans never claim an adaptive seal reason.
    EXPECT_NE(plan.reason, serve::SealReason::kDeadline);
    EXPECT_NE(plan.reason, serve::SealReason::kUtility);
  }
}

TEST_P(AdaptiveBatcherFuzz, EffectiveTargetStaysWithinPriorAndCap) {
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()) * 521);
  const auto cluster = serve_cluster();
  serve::AdaptiveBatcherConfig config;
  config.enabled = true;
  config.growth_backlog_factor = rng.uniform(0.5, 3.0);
  config.max_batch = static_cast<int>(rng.uniform_int(1, 64));
  serve::AdaptiveBatcher batcher(cluster, config);
  const int cap = batcher.config().max_batch;
  EXPECT_LE(cap, sim::kMaxKernelBatch);  // ctor clamps to the kernel cap
  for (int trial = 0; trial < 300; ++trial) {
    const auto prior = static_cast<int>(rng.uniform_int(-2, 48));
    const auto backlog = rng.uniform_int(0, 200);
    const int target = batcher.effective_target(prior, backlog);
    EXPECT_GE(target, 1);
    EXPECT_LE(target, cap);
    // The target never shrinks below the (clamped) MILP prior...
    EXPECT_GE(target, std::clamp(std::max(1, prior), 1, cap));
    // ...and only grows past it when the backlog threshold is met.
    const double threshold = config.growth_backlog_factor *
                             static_cast<double>(std::max(1, prior));
    if (static_cast<double>(backlog) < threshold) {
      EXPECT_EQ(target, std::clamp(std::max(1, prior), 1, cap));
    }
  }
}

TEST_P(AdaptiveBatcherFuzz, SealMeetsOldestDeadlineWheneverAnySealCould) {
  // The deadline invariant: if the planned launch's predicted completion
  // breaches the oldest member's deadline, then NO smaller immediate seal
  // would have met it — a viable smaller seal is never passed over.
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()) * 769);
  const auto cluster = serve_cluster();
  serve::AdaptiveBatcherConfig config;
  config.enabled = true;
  config.slack = rng.uniform(0.3, 1.5);
  config.marginal_batch_cost = rng.uniform(0.0, 1.0);
  serve::AdaptiveBatcher batcher(cluster, config);
  for (int trial = 0; trial < 200; ++trial) {
    const auto app = static_cast<int>(rng.uniform_int(0, cluster.num_apps() - 1));
    const auto variant = static_cast<int>(
        rng.uniform_int(0, cluster.zoo().num_variants(app) - 1));
    const auto edge =
        static_cast<int>(rng.uniform_int(0, cluster.num_devices() - 1));
    const auto count = static_cast<int>(rng.uniform_int(1, 12));
    const auto need = count + static_cast<int>(rng.uniform_int(0, 6));
    const auto prior = static_cast<int>(rng.uniform_int(1, need));
    auto candidates = random_candidates(rng, count);
    for (auto& item : candidates) item.app = app;
    const double cursor = rng.uniform(0.0, 4.0);
    const double max_wait = rng.bernoulli(0.3) ? -1.0 : rng.uniform(0.0, 1.5);
    const bool more = rng.bernoulli(0.5);

    const auto plan = batcher.plan(edge, app, variant, candidates, prior, need,
                                   cursor, max_wait, more);
    ASSERT_GE(plan.seal.count, 1);
    ASSERT_LE(plan.seal.count, need);
    ASSERT_LE(plan.seal.count, count);

    const double slo =
        cluster.zoo().app(app).slo_fraction * cluster.tau_s();
    const double oldest_deadline =
        candidates.front().arrival_s + config.slack * slo;
    const auto completion_of = [&](int m) {
      return std::max(cursor,
                      candidates[static_cast<std::size_t>(m - 1)].available_s) +
             batcher.predicted_latency_s(edge, app, variant, m);
    };
    if (!plan.seal.timed_out) {
      // Immediate seal: the predicted completion matches the model and the
      // seal's bookkeeping is consistent with the member list.
      EXPECT_NEAR(plan.predicted_completion_s, completion_of(plan.seal.count),
                  1e-12)
          << "seed " << GetParam() << " trial " << trial;
      EXPECT_DOUBLE_EQ(
          plan.seal.formation_end_s,
          candidates[static_cast<std::size_t>(plan.seal.count - 1)].available_s);
      EXPECT_DOUBLE_EQ(plan.seal.start_s,
                       std::max(cursor, plan.seal.formation_end_s));
    }
    // The invariant itself, stated for both the immediate-seal and the
    // still-waiting (timed-out) plans: a breached prediction implies every
    // immediate seal of the held members would also have breached.
    if (plan.predicted_completion_s > oldest_deadline) {
      for (int m = 1; m <= plan.seal.count; ++m) {
        EXPECT_GT(completion_of(m), oldest_deadline)
            << "seed " << GetParam() << " trial " << trial << " m=" << m
            << ": a feasible smaller seal was passed over";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptiveBatcherFuzz, ::testing::Range(1, 13));

// ----------------------------------------- adaptive engine-level sweeps ----

class AdaptiveServeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AdaptiveServeFuzz, EngineInvariantsHoldOnRandomTraces) {
  // Random traces through the full engine with adaptation on: every arrival
  // resolves exactly once, FIFO order within (app, edge) is preserved, and
  // no launch ever exceeds the configured cap.
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()) * 613);
  const auto cluster = serve_cluster();
  workload::Trace trace(4, cluster.num_apps(), cluster.num_devices());
  for (int t = 0; t < trace.slots(); ++t) {
    for (int i = 0; i < cluster.num_apps(); ++i) {
      for (int k = 0; k < cluster.num_devices(); ++k) {
        trace.set(t, i, k, rng.uniform_int(0, 24));
      }
    }
  }
  serve::ServeConfig config;
  config.noise_sigma = 0.0;
  config.seed = static_cast<std::uint64_t>(GetParam()) * 7 + 1;
  config.keep_records = true;
  config.adaptive.enabled = true;
  config.adaptive.growth_backlog_factor = 1.25;
  config.adaptive.max_batch = 24;
  core::BirpScheduler scheduler(cluster);
  serve::ServeEngine engine(cluster, trace, config);
  metrics::RunMetrics metrics;
  std::int64_t launches = 0;
  for (int t = 0; t < trace.slots(); ++t) {
    const auto result = engine.step(scheduler, &metrics);
    EXPECT_EQ(result.served + result.planned_drops + result.queue_drops +
                  result.deadline_sheds,
              trace.slot_total(t))
        << "seed " << GetParam() << " slot " << t;
    for (const auto n : result.seals) launches += n;
    std::map<std::pair<int, int>, double> last_avail;
    for (const auto& record : result.records) {
      if (record.outcome != serve::Outcome::kServed) continue;
      EXPECT_GE(record.batch, 1);
      EXPECT_LE(record.batch, config.adaptive.max_batch);
      EXPECT_LE(record.batch, sim::kMaxKernelBatch);
      // FIFO within (app, edge): batches take queue prefixes, so served
      // records appear in non-decreasing availability order.
      auto [it, fresh] = last_avail.try_emplace(
          {record.item.app, record.served_on}, record.item.available_s);
      if (!fresh) {
        EXPECT_GE(record.item.available_s, it->second)
            << "seed " << GetParam() << " slot " << t
            << ": FIFO order violated within (app, edge)";
        it->second = record.item.available_s;
      }
    }
  }
  EXPECT_EQ(metrics.total_requests(), trace.total());
  EXPECT_EQ(metrics.total_batches(), launches);
}

TEST_P(AdaptiveServeFuzz, DisabledEngineKeepsFillToTargetBehavior) {
  // Adaptation off on random traces: only the legacy seal reasons appear
  // and no launch exceeds its decided kernel — the fill-to-target contract.
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()) * 877);
  const auto cluster = serve_cluster();
  workload::Trace trace(3, cluster.num_apps(), cluster.num_devices());
  for (int t = 0; t < trace.slots(); ++t) {
    for (int i = 0; i < cluster.num_apps(); ++i) {
      for (int k = 0; k < cluster.num_devices(); ++k) {
        trace.set(t, i, k, rng.uniform_int(0, 20));
      }
    }
  }
  serve::ServeConfig config;
  config.noise_sigma = 0.0;
  config.seed = static_cast<std::uint64_t>(GetParam()) * 11 + 3;
  config.keep_records = true;
  core::BirpScheduler scheduler(cluster);
  serve::ServeEngine engine(cluster, trace, config);
  for (int t = 0; t < trace.slots(); ++t) {
    const auto result = engine.step(scheduler);
    EXPECT_EQ(
        result.seals[static_cast<std::size_t>(serve::SealReason::kDeadline)],
        0);
    EXPECT_EQ(
        result.seals[static_cast<std::size_t>(serve::SealReason::kGrowth)], 0);
    EXPECT_EQ(
        result.seals[static_cast<std::size_t>(serve::SealReason::kUtility)],
        0);
    for (const auto& record : result.records) {
      if (record.outcome != serve::Outcome::kServed) continue;
      EXPECT_LE(record.batch,
                result.decision.kernel(record.item.app, record.variant,
                                       record.served_on))
          << "seed " << GetParam() << " slot " << t
          << ": fill-to-target exceeded the decided kernel";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptiveServeFuzz, ::testing::Range(1, 9));

}  // namespace
}  // namespace birp
