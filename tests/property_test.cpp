// Property-based sweeps (TEST_P over seeds) for cross-module invariants:
// whatever garbage a scheduler emits, the repaired plan is physically
// feasible; whatever the LP returns, the incumbent heuristic's candidate
// satisfies the model; solver results are invariant under formulation
// permutations.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "birp/core/birp_scheduler.hpp"
#include "birp/core/problem.hpp"
#include "birp/device/cluster.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/sim/validate.hpp"
#include "birp/solver/branch_and_bound.hpp"
#include "birp/util/rng.hpp"
#include "birp/workload/generator.hpp"

namespace birp {
namespace {

// ------------------------------------------------- validator invariants ----

class ValidatorFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ValidatorFuzz, RepairedDecisionIsAlwaysPhysicallyFeasible) {
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()) * 131);
  const auto cluster = device::ClusterSpec::paper_large();
  const int I = cluster.num_apps();
  const int K = cluster.num_devices();

  util::Grid2<std::int64_t> demand(I, K, 0);
  for (int i = 0; i < I; ++i) {
    for (int k = 0; k < K; ++k) demand(i, k) = rng.uniform_int(0, 60);
  }

  // Adversarial decision: random serving, kernels, flows, drops — including
  // nonsense (negative counts, self flows, phantom variants).
  sim::SlotDecision decision(I, cluster.zoo().max_variants() + 1, K);
  for (int i = 0; i < I; ++i) {
    for (int j = 0; j < decision.max_variants(); ++j) {
      for (int k = 0; k < K; ++k) {
        if (!rng.bernoulli(0.3)) continue;
        decision.served(i, j, k) = rng.uniform_int(-5, 80);
        decision.kernel(i, j, k) = static_cast<int>(rng.uniform_int(-2, 64));
      }
    }
    for (int k = 0; k < K; ++k) {
      decision.drops(i, k) = rng.uniform_int(-3, 10);
    }
  }
  for (int f = 0; f < 12; ++f) {
    decision.flows.push_back({static_cast<int>(rng.uniform_int(0, I - 1)),
                              static_cast<int>(rng.uniform_int(0, K - 1)),
                              static_cast<int>(rng.uniform_int(0, K - 1)),
                              rng.uniform_int(-10, 200)});
  }

  sim::validate_and_repair(cluster, demand, nullptr, decision);

  // Invariant 1: exact request conservation per (app, edge).
  for (int i = 0; i < I; ++i) {
    for (int k = 0; k < K; ++k) {
      std::int64_t served = 0;
      for (int j = 0; j < cluster.zoo().num_variants(i); ++j) {
        served += decision.served(i, j, k);
        EXPECT_GE(decision.served(i, j, k), 0);
      }
      const auto available =
          demand(i, k) - decision.exports(i, k) + decision.imports(i, k);
      EXPECT_EQ(served + decision.drops(i, k), available)
          << "seed " << GetParam() << " i=" << i << " k=" << k;
      EXPECT_GE(decision.drops(i, k), 0);
    }
  }
  // Invariant 2: per-edge physical budgets.
  for (int k = 0; k < K; ++k) {
    EXPECT_LE(sim::decision_memory_mb(cluster, decision, k),
              cluster.memory_mb(k) + 1e-6);
    EXPECT_LE(sim::decision_network_mb(cluster, decision, nullptr, k),
              cluster.network_mb(k) + 1e-6);
  }
  // Invariant 3: kernels sane; phantom variants silenced.
  for (int i = 0; i < I; ++i) {
    for (int j = 0; j < decision.max_variants(); ++j) {
      for (int k = 0; k < K; ++k) {
        if (j >= cluster.zoo().num_variants(i)) {
          EXPECT_EQ(decision.served(i, j, k), 0);
        }
        if (decision.served(i, j, k) > 0) {
          EXPECT_GE(decision.kernel(i, j, k), 1);
          EXPECT_LE(decision.kernel(i, j, k), sim::kMaxKernelBatch);
        }
      }
    }
  }
  // Invariant 4: exports never exceed local demand; no self flows.
  for (const auto& flow : decision.flows) {
    EXPECT_NE(flow.from, flow.to);
    EXPECT_GT(flow.count, 0);
  }
  for (int i = 0; i < I; ++i) {
    for (int k = 0; k < K; ++k) {
      EXPECT_LE(decision.exports(i, k), demand(i, k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidatorFuzz, ::testing::Range(1, 16));

// ------------------------------------------- heuristic model-feasibility ----

class HeuristicSweep : public ::testing::TestWithParam<int> {};

TEST_P(HeuristicSweep, CandidateSatisfiesModelAtEveryDemandLevel) {
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()) * 733);
  const auto cluster = device::ClusterSpec::paper_large();
  const int I = cluster.num_apps();
  const int K = cluster.num_devices();

  util::Grid2<std::int64_t> demand(I, K, 0);
  // Demand level scales with the seed: light through heavy overload.
  const auto level = 5 + 12 * (GetParam() % 8);
  for (int i = 0; i < I; ++i) {
    for (int k = 0; k < K; ++k) {
      demand(i, k) = rng.uniform_int(0, level);
    }
  }
  const core::TirLookup lookup = [&](int k, int i, int j) {
    return cluster.oracle_tir(k, i, j);
  };
  const auto built =
      core::build_slot_problem(cluster, demand, nullptr, lookup, {});
  const auto lp = solver::solve_lp(built.model);
  ASSERT_TRUE(lp.usable()) << "seed " << GetParam();

  const auto candidate = core::heuristic_incumbent(
      built, lp.values, cluster, demand, nullptr, lookup, {});
  ASSERT_FALSE(candidate.empty()) << "seed " << GetParam();
  EXPECT_LE(built.model.max_violation(candidate), 1e-6)
      << "seed " << GetParam();
  EXPECT_LE(built.model.max_integrality_violation(candidate), 1e-6);
  // Objective sanity: bounded below by the relaxation.
  EXPECT_GE(built.model.objective_value(candidate), lp.objective - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeuristicSweep, ::testing::Range(1, 17));

// ------------------------------------------------ solver permutation law ----

class SolverPermutation : public ::testing::TestWithParam<int> {};

TEST_P(SolverPermutation, ObjectiveInvariantUnderVariableReordering) {
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()) * 977);
  constexpr int kVars = 8;
  constexpr int kRows = 5;

  std::vector<double> obj(kVars);
  std::vector<double> upper(kVars);
  std::vector<std::vector<double>> rows(kRows, std::vector<double>(kVars));
  std::vector<double> rhs(kRows);
  for (int v = 0; v < kVars; ++v) {
    obj[static_cast<std::size_t>(v)] = rng.uniform(-3.0, 3.0);
    upper[static_cast<std::size_t>(v)] = rng.uniform(1.0, 5.0);
  }
  for (int r = 0; r < kRows; ++r) {
    double sum = 0.0;
    for (int v = 0; v < kVars; ++v) {
      rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)] =
          rng.uniform(0.0, 2.0);
      sum += rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)];
    }
    rhs[static_cast<std::size_t>(r)] = rng.uniform(0.3, 0.8) * sum;
  }

  const auto build = [&](const std::vector<int>& order) {
    solver::Model model;
    std::vector<int> var_of(kVars);
    for (int p = 0; p < kVars; ++p) {
      const int v = order[static_cast<std::size_t>(p)];
      var_of[static_cast<std::size_t>(v)] = model.add_integer(
          "v" + std::to_string(v), 0.0, upper[static_cast<std::size_t>(v)]);
      model.set_objective(var_of[static_cast<std::size_t>(v)],
                          obj[static_cast<std::size_t>(v)]);
    }
    for (int r = 0; r < kRows; ++r) {
      std::vector<solver::Term> terms;
      for (int v = 0; v < kVars; ++v) {
        terms.push_back({var_of[static_cast<std::size_t>(v)],
                         rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)]});
      }
      model.add_constraint(terms, solver::Relation::LessEqual,
                           rhs[static_cast<std::size_t>(r)]);
    }
    return solver::solve_milp(model);
  };

  std::vector<int> identity(kVars);
  std::vector<int> shuffled(kVars);
  for (int v = 0; v < kVars; ++v) identity[static_cast<std::size_t>(v)] = v;
  shuffled = identity;
  rng.shuffle(shuffled);

  const auto a = build(identity);
  const auto b = build(shuffled);
  ASSERT_EQ(a.status, solver::SolveStatus::Optimal);
  ASSERT_EQ(b.status, solver::SolveStatus::Optimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPermutation, ::testing::Range(1, 13));

// ------------------------------------------- end-to-end loss accounting ----

class AccountingSweep : public ::testing::TestWithParam<int> {};

TEST_P(AccountingSweep, MetricsBalanceAgainstTrace) {
  // For any intensity: requests in == completions + drops, and the loss is
  // bounded by [best, worst] model loss per request plus drop penalties.
  const auto cluster = device::ClusterSpec::paper_small();
  workload::GeneratorConfig config;
  config.slots = 8;
  config.seed = static_cast<std::uint64_t>(GetParam()) * 31;
  config.mean_per_edge =
      workload::suggested_mean_per_edge(cluster, 0.2 + 0.15 * (GetParam() % 5));
  const auto trace = workload::generate(cluster, config);

  core::BirpScheduler scheduler(cluster);
  sim::Simulator simulator(cluster, trace);
  const auto metrics = simulator.run(scheduler);

  EXPECT_EQ(metrics.total_requests(), trace.total());
  EXPECT_EQ(metrics.completion().count(),
            static_cast<std::size_t>(trace.total() - metrics.dropped()));

  const double best = cluster.zoo().best_loss(0);
  const double worst = cluster.zoo().worst_loss(0);
  const auto served = trace.total() - metrics.dropped();
  EXPECT_GE(metrics.total_loss(),
            best * static_cast<double>(served) +
                worst * static_cast<double>(metrics.dropped()) - 1e-6);
  EXPECT_LE(metrics.total_loss(),
            worst * static_cast<double>(trace.total()) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccountingSweep, ::testing::Range(1, 11));

}  // namespace
}  // namespace birp
