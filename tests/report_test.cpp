// Tests for the CSV experiment exporters and the GREEDY-LOCAL baseline.
#include <sstream>

#include <gtest/gtest.h>

#include "birp/device/cluster.hpp"
#include "birp/metrics/report_csv.hpp"
#include "birp/core/birp_scheduler.hpp"
#include "birp/sched/greedy_local.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/util/csv.hpp"
#include "birp/workload/generator.hpp"

namespace birp {
namespace {

metrics::RunMetrics sample_metrics(double offset) {
  metrics::RunMetrics m;
  for (int i = 1; i <= 10; ++i) {
    m.record_request(offset + static_cast<double>(i) / 10.0, i <= 9);
  }
  m.record_slot_loss(10.0 + offset);
  m.record_slot_loss(20.0 + offset);
  m.record_edge_busy(0.5);
  return m;
}

TEST(ReportCsv, CdfExportShape) {
  const auto a = sample_metrics(0.0);
  const auto b = sample_metrics(0.3);
  std::ostringstream out;
  metrics::write_cdf_csv(out, {{"A", &a}, {"B", &b}}, 2.0, 9);
  const auto rows = util::parse_csv(out.str());
  ASSERT_EQ(rows.size(), 10u);  // header + 9 points
  EXPECT_EQ(rows[0], (std::vector<std::string>{"tau", "A", "B"}));
  // CDF columns are monotone nondecreasing and end at 1.
  double prev_a = -1.0;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const double value = std::stod(rows[r][1]);
    EXPECT_GE(value, prev_a);
    prev_a = value;
  }
  EXPECT_DOUBLE_EQ(std::stod(rows.back()[1]), 1.0);
}

TEST(ReportCsv, LossSeriesRoundTrip) {
  const auto a = sample_metrics(0.0);
  std::ostringstream slot_out;
  metrics::write_slot_loss_csv(slot_out, {{"A", &a}});
  auto rows = util::parse_csv(slot_out.str());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(std::stod(rows[1][1]), 10.0);
  EXPECT_DOUBLE_EQ(std::stod(rows[2][1]), 20.0);

  std::ostringstream cumulative_out;
  metrics::write_cumulative_loss_csv(cumulative_out, {{"A", &a}});
  rows = util::parse_csv(cumulative_out.str());
  EXPECT_DOUBLE_EQ(std::stod(rows[2][1]), 30.0);
}

TEST(ReportCsv, SummaryHasOneRowPerRun) {
  const auto a = sample_metrics(0.0);
  const auto b = sample_metrics(0.1);
  std::ostringstream out;
  metrics::write_summary_csv(out, {{"A", &a}, {"B", &b}});
  const auto rows = util::parse_csv(out.str());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1][0], "A");
  EXPECT_EQ(rows[2][0], "B");
}

TEST(ReportCsv, MismatchedHorizonsRejected) {
  const auto a = sample_metrics(0.0);
  metrics::RunMetrics b;
  b.record_slot_loss(1.0);  // only one slot
  std::ostringstream out;
  EXPECT_THROW(metrics::write_slot_loss_csv(out, {{"A", &a}, {"B", &b}}),
               std::logic_error);
}

TEST(ReportCsv, EmptyRunListRejected) {
  std::ostringstream out;
  EXPECT_THROW(metrics::write_summary_csv(out, {}), std::logic_error);
}

TEST(GreedyLocal, ServesLocallySeriallyWithoutFlows) {
  const auto cluster = device::ClusterSpec::paper_small();
  workload::GeneratorConfig config;
  config.slots = 5;
  config.mean_per_edge = workload::suggested_mean_per_edge(cluster, 0.4);
  const auto trace = workload::generate(cluster, config);
  sched::GreedyLocalScheduler scheduler(cluster);
  sim::Simulator simulator(cluster, trace);
  for (int t = 0; t < 5; ++t) {
    const auto result = simulator.step(scheduler);
    EXPECT_TRUE(result.decision.flows.empty());
    for (int i = 0; i < cluster.num_apps(); ++i) {
      for (int j = 0; j < cluster.zoo().num_variants(i); ++j) {
        for (int k = 0; k < cluster.num_devices(); ++k) {
          if (result.decision.served(i, j, k) > 0) {
            EXPECT_EQ(result.decision.kernel(i, j, k), 1);
          }
        }
      }
    }
  }
}

TEST(GreedyLocal, PrefersAccurateModelsWhenComputeAllows) {
  const auto cluster = device::ClusterSpec::paper_small();
  workload::Trace trace(1, 1, cluster.num_devices());
  trace.set(0, 0, 0, 2);  // trivially light
  sched::GreedyLocalScheduler scheduler(cluster);
  sim::Simulator simulator(cluster, trace);
  const auto result = simulator.step(scheduler);
  const int best = cluster.zoo().num_variants(0) - 1;
  EXPECT_EQ(result.decision.served(0, best, 0), 2);
}

TEST(GreedyLocal, NeverBeatsBirpOnLossUnderLoad) {
  // The section 5.2 justification for omitting simple baselines.
  const auto cluster = device::ClusterSpec::paper_small();
  workload::GeneratorConfig config;
  config.slots = 20;
  config.mean_per_edge = workload::suggested_mean_per_edge(cluster, 0.7);
  const auto trace = workload::generate(cluster, config);

  sched::GreedyLocalScheduler greedy(cluster);
  auto birp = core::BirpScheduler::offline(cluster);
  sim::Simulator sim_a(cluster, trace);
  sim::Simulator sim_b(cluster, trace);
  const auto m_greedy = sim_a.run(greedy);
  const auto m_birp = sim_b.run(birp);
  EXPECT_LE(m_birp.total_loss(), m_greedy.total_loss() * 1.02);
}

}  // namespace
}  // namespace birp
