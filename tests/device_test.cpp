// Tests for device profiles, the TIR model, and the ground truth tables.
#include <cmath>

#include <gtest/gtest.h>

#include "birp/device/cluster.hpp"
#include "birp/device/profile.hpp"
#include "birp/device/tir.hpp"
#include "birp/device/truth.hpp"
#include "birp/model/zoo.hpp"

namespace birp::device {
namespace {

// ------------------------------------------------------------------ tir ----

TEST(Tir, MatchesPiecewiseDefinition) {
  TirParams params;
  params.eta = 0.32;
  params.beta = 5;
  params.c = std::pow(5.0, 0.32);
  EXPECT_DOUBLE_EQ(params.tir(1), 1.0);
  EXPECT_DOUBLE_EQ(params.tir(3), std::pow(3.0, 0.32));
  EXPECT_DOUBLE_EQ(params.tir(5), std::pow(5.0, 0.32));
  EXPECT_DOUBLE_EQ(params.tir(6), params.c);   // saturated
  EXPECT_DOUBLE_EQ(params.tir(16), params.c);  // stays flat
}

TEST(Tir, BatchTimeFollowsEq7) {
  TirParams params;
  params.eta = 0.2;
  params.beta = 8;
  params.c = std::pow(8.0, 0.2);
  const double gamma = 0.05;
  // Within threshold: f(b) = gamma * b^(1 - eta).
  EXPECT_NEAR(params.batch_time(gamma, 4), gamma * std::pow(4.0, 0.8), 1e-12);
  // Beyond threshold: f(b) = gamma * b / C.
  EXPECT_NEAR(params.batch_time(gamma, 12), gamma * 12.0 / params.c, 1e-12);
}

TEST(Tir, BatchTimeMonotoneInBatch) {
  TirParams params;
  params.eta = 0.25;
  params.beta = 10;
  params.c = std::pow(10.0, 0.25);
  double previous = 0.0;
  for (int b = 1; b <= 16; ++b) {
    const double t = params.batch_time(1.0, b);
    EXPECT_GT(t, previous) << "b=" << b;
    previous = t;
  }
}

TEST(Tir, PerRequestTimeImprovesWithBatching) {
  TirParams params;
  params.eta = 0.3;
  params.beta = 8;
  params.c = std::pow(8.0, 0.3);
  const double serial = params.batch_time(1.0, 1);
  for (int b = 2; b <= 16; ++b) {
    EXPECT_LT(params.batch_time(1.0, b) / b, serial) << "b=" << b;
  }
}

TEST(Tir, ContinuityGapZeroWhenConsistent) {
  TirParams params;
  params.eta = 0.2;
  params.beta = 9;
  params.c = std::pow(9.0, 0.2);
  EXPECT_NEAR(params.continuity_gap(), 0.0, 1e-12);
}

TEST(Tir, NonPositiveBatchIsHarmless) {
  TirParams params;
  EXPECT_DOUBLE_EQ(params.tir(0), 1.0);
  EXPECT_DOUBLE_EQ(params.batch_time(1.0, 0), 0.0);
}

// -------------------------------------------------------------- profile ----

TEST(Profile, PaperTestbedHasSixEdgesTwoPerType) {
  const auto devices = paper_testbed();
  ASSERT_EQ(devices.size(), 6u);
  int nano = 0;
  int nx = 0;
  int atlas = 0;
  for (const auto& d : devices) {
    switch (d.type) {
      case DeviceType::JetsonNano: ++nano; break;
      case DeviceType::JetsonNX: ++nx; break;
      case DeviceType::Atlas200DK: ++atlas; break;
    }
  }
  EXPECT_EQ(nano, 2);
  EXPECT_EQ(nx, 2);
  EXPECT_EQ(atlas, 2);
}

TEST(Profile, ParameterRangesMatchPaper) {
  for (const auto& d : paper_testbed()) {
    EXPECT_GE(d.memory_mb, 4400.0) << d.name;  // [4500, 6500] with jitter
    EXPECT_LE(d.memory_mb, 6700.0) << d.name;
    EXPECT_GE(d.bandwidth_mbps, 50.0) << d.name;
    EXPECT_LE(d.bandwidth_mbps, 100.0) << d.name;
    EXPECT_GT(d.accel_speed, 0.0);
    EXPECT_GT(d.serial_occupancy, 0.0);
    EXPECT_LT(d.serial_occupancy, 1.0);
  }
}

TEST(Profile, AcceleratorKindMatchesType) {
  EXPECT_EQ(accelerator_of(DeviceType::JetsonNano), AcceleratorKind::Gpu);
  EXPECT_EQ(accelerator_of(DeviceType::JetsonNX), AcceleratorKind::Gpu);
  EXPECT_EQ(accelerator_of(DeviceType::Atlas200DK), AcceleratorKind::Npu);
}

TEST(Profile, InstancesOfSameTypeDiffer) {
  const auto a = make_device(DeviceType::JetsonNano, 0, 0);
  const auto b = make_device(DeviceType::JetsonNano, 1, 1);
  EXPECT_NE(a.memory_mb, b.memory_mb);  // per-instance jitter
  EXPECT_EQ(a.type, b.type);
}

TEST(Profile, DeterministicPerTypeAndInstance) {
  const auto a = make_device(DeviceType::Atlas200DK, 0, 1);
  const auto b = make_device(DeviceType::Atlas200DK, 7, 1);  // id irrelevant
  EXPECT_DOUBLE_EQ(a.memory_mb, b.memory_mb);
  EXPECT_DOUBLE_EQ(a.bandwidth_mbps, b.bandwidth_mbps);
}

TEST(Profile, SlotEnergyModel) {
  auto d = make_device(DeviceType::JetsonNano, 0, 0);
  d.idle_power_w = 2.0;
  d.busy_power_w = 10.0;
  // Half-busy slot: 3s at 10W + 3s at 2W.
  EXPECT_DOUBLE_EQ(d.slot_energy_j(3.0, 6.0), 30.0 + 6.0);
  // Overrun: all busy, no idle term.
  EXPECT_DOUBLE_EQ(d.slot_energy_j(8.0, 6.0), 80.0);
  // Idle slot.
  EXPECT_DOUBLE_EQ(d.slot_energy_j(0.0, 6.0), 12.0);
}

TEST(Profile, PowerDrawIsPositiveAndOrdered) {
  for (const auto& d : paper_testbed()) {
    EXPECT_GT(d.idle_power_w, 0.0) << d.name;
    EXPECT_GT(d.busy_power_w, d.idle_power_w) << d.name;
  }
}

TEST(Profile, NetworkBudgetScalesWithSlot) {
  const auto d = make_device(DeviceType::JetsonNano, 0, 0);
  EXPECT_NEAR(d.network_mb_per_slot(8.0), 2.0 * d.network_mb_per_slot(4.0),
              1e-9);
  EXPECT_NEAR(d.network_mb_per_slot(10.0), d.bandwidth_mbps * 10.0 / 8.0, 1e-9);
}

// ---------------------------------------------------------------- truth ----

class TruthFixture : public ::testing::Test {
 protected:
  model::Zoo zoo_ = model::Zoo::standard();
  GroundTruth truth_{paper_testbed(), zoo_, 42};
};

TEST_F(TruthFixture, DimensionsMatch) {
  EXPECT_EQ(truth_.num_devices(), 6);
  EXPECT_THROW((void)truth_.gamma_s(99, 0, 0), std::logic_error);
  EXPECT_THROW((void)truth_.gamma_s(0, 99, 0), std::logic_error);
  EXPECT_THROW((void)truth_.gamma_s(0, 0, 99), std::logic_error);
}

TEST_F(TruthFixture, TirParamsInObservedRanges) {
  for (int k = 0; k < truth_.num_devices(); ++k) {
    for (int i = 0; i < zoo_.num_apps(); ++i) {
      for (int j = 0; j < zoo_.num_variants(i); ++j) {
        const auto& tir = truth_.tir(k, i, j);
        EXPECT_GE(tir.eta, 0.10);
        EXPECT_LE(tir.eta, 0.35);
        EXPECT_GE(tir.beta, 3);
        EXPECT_LE(tir.beta, 16);
        // Continuity: C == beta^eta (how the paper's Fig. 2 curves close).
        EXPECT_NEAR(tir.continuity_gap(), 0.0, 1e-12);
      }
    }
  }
}

TEST_F(TruthFixture, FasterDevicesHaveLowerLatency) {
  // NX (device type speed 2.0) must beat Nano (0.8) on the same model, on
  // average across apps.
  int nx = -1;
  int nano = -1;
  for (int k = 0; k < truth_.num_devices(); ++k) {
    if (truth_.device(k).type == DeviceType::JetsonNX && nx < 0) nx = k;
    if (truth_.device(k).type == DeviceType::JetsonNano && nano < 0) nano = k;
  }
  ASSERT_GE(nx, 0);
  ASSERT_GE(nano, 0);
  double nx_total = 0.0;
  double nano_total = 0.0;
  for (int i = 0; i < zoo_.num_apps(); ++i) {
    for (int j = 0; j < zoo_.num_variants(i); ++j) {
      nx_total += truth_.gamma_s(nx, i, j);
      nano_total += truth_.gamma_s(nano, i, j);
    }
  }
  EXPECT_LT(nx_total, nano_total);
}

TEST_F(TruthFixture, BatchTimeIsConsistentWithTir) {
  const double gamma = truth_.gamma_s(0, 0, 0);
  const auto& tir = truth_.tir(0, 0, 0);
  EXPECT_NEAR(truth_.batch_time_s(0, 0, 0, 4), tir.batch_time(gamma, 4), 1e-12);
}

TEST_F(TruthFixture, SerialPipelineBounds) {
  for (int k = 0; k < truth_.num_devices(); ++k) {
    for (int i = 0; i < zoo_.num_apps(); ++i) {
      for (int j = 0; j < zoo_.num_variants(i); ++j) {
        const auto p = truth_.serial_pipeline(k, i, j);
        EXPECT_GT(p.fps, 0.0);
        EXPECT_GT(p.cpu_util, 0.0);
        EXPECT_LE(p.cpu_util, 1.0);
        EXPECT_GT(p.accel_util, 0.0);
        EXPECT_LE(p.accel_util, 1.0);
        EXPECT_LE(p.accel_util, p.accel_busy + 1e-12);
      }
    }
  }
}

TEST_F(TruthFixture, SerialAccelUtilIsInverseOfSaturatedTir) {
  // The chain behind Table 1: a serial kernel occupies ~1/C of the
  // accelerator, so util = busy / C.
  const auto p = truth_.serial_pipeline(0, 0, 0);
  const auto& tir = truth_.tir(0, 0, 0);
  EXPECT_NEAR(p.accel_util, p.accel_busy / tir.c, 1e-12);
}

TEST_F(TruthFixture, DeterministicAcrossConstruction) {
  GroundTruth other(paper_testbed(), zoo_, 42);
  EXPECT_DOUBLE_EQ(other.gamma_s(2, 1, 3), truth_.gamma_s(2, 1, 3));
  EXPECT_EQ(other.tir(2, 1, 3).beta, truth_.tir(2, 1, 3).beta);
}

TEST_F(TruthFixture, SeedChangesJitterOnly) {
  GroundTruth other(paper_testbed(), zoo_, 43);
  // Different seed: same order of magnitude, not identical.
  EXPECT_NE(other.gamma_s(0, 0, 0), truth_.gamma_s(0, 0, 0));
  EXPECT_NEAR(other.gamma_s(0, 0, 0), truth_.gamma_s(0, 0, 0),
              truth_.gamma_s(0, 0, 0));
}

// -------------------------------------------------------------- cluster ----

TEST(Cluster, FactoryShapes) {
  const auto large = ClusterSpec::paper_large();
  EXPECT_EQ(large.num_devices(), 6);
  EXPECT_EQ(large.num_apps(), 5);
  const auto small = ClusterSpec::paper_small();
  EXPECT_EQ(small.num_apps(), 1);
  const auto sweep = ClusterSpec::sweep();
  EXPECT_EQ(sweep.num_apps(), 3);
}

TEST(Cluster, BudgetsAreDerivedFromProfiles) {
  const auto cluster = ClusterSpec::paper_large();
  for (int k = 0; k < cluster.num_devices(); ++k) {
    EXPECT_DOUBLE_EQ(cluster.memory_mb(k), cluster.device(k).memory_mb);
    EXPECT_NEAR(cluster.network_mb(k),
                cluster.device(k).bandwidth_mbps * cluster.tau_s() / 8.0,
                1e-9);
  }
}

TEST(Cluster, OracleMatchesTruth) {
  const auto cluster = ClusterSpec::paper_large();
  EXPECT_EQ(cluster.oracle_tir(1, 2, 3).beta, cluster.truth().tir(1, 2, 3).beta);
}

TEST(Cluster, RejectsNonPositiveTau) {
  EXPECT_THROW(
      ClusterSpec(paper_testbed(), model::Zoo::standard(), 0.0, 1),
      std::logic_error);
}

// ----------------------------------------------------------- subcluster ----

TEST(Subcluster, RestrictionIsBitIdenticalToParentRows) {
  const ClusterSpec parent(paper_testbed(), model::Zoo::standard(), 6.0,
                           0xabcd);
  const std::vector<int> picked{4, 1, 3};
  const auto sub = parent.subcluster(picked);
  ASSERT_EQ(sub.num_devices(), 3);
  EXPECT_EQ(sub.num_apps(), parent.num_apps());
  EXPECT_DOUBLE_EQ(sub.tau_s(), parent.tau_s());
  for (int local = 0; local < sub.num_devices(); ++local) {
    const int k = picked[static_cast<std::size_t>(local)];
    EXPECT_EQ(sub.device(local).name, parent.device(k).name);
    EXPECT_DOUBLE_EQ(sub.memory_mb(local), parent.memory_mb(k));
    EXPECT_DOUBLE_EQ(sub.network_mb(local), parent.network_mb(k));
    for (int i = 0; i < parent.num_apps(); ++i) {
      for (int j = 0; j < parent.zoo().num_variants(i); ++j) {
        // The seeded jitter must carry over verbatim — a re-seeded truth
        // would diverge, and sharded scheduling would stop being an exact
        // decomposition of the monolithic cluster.
        EXPECT_DOUBLE_EQ(sub.gamma_s(local, i, j), parent.gamma_s(k, i, j));
        const auto& a = sub.oracle_tir(local, i, j);
        const auto& b = parent.oracle_tir(k, i, j);
        EXPECT_DOUBLE_EQ(a.eta, b.eta);
        EXPECT_EQ(a.beta, b.beta);
        EXPECT_DOUBLE_EQ(a.c, b.c);
      }
    }
  }
}

TEST(Subcluster, RejectsBadDeviceLists) {
  const ClusterSpec parent(one_of_each(), model::Zoo::small_scale(), 6.0,
                           0xabcd);
  EXPECT_THROW((void)parent.subcluster({}), std::logic_error);
  EXPECT_THROW((void)parent.subcluster({0, 99}), std::logic_error);
  EXPECT_THROW((void)parent.subcluster({-1}), std::logic_error);
}

}  // namespace
}  // namespace birp::device
