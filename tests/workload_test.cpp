// Tests for the trace container, the synthetic workload generator, and the
// per-request arrival expansion.
#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "birp/device/cluster.hpp"
#include "birp/util/stats.hpp"
#include "birp/workload/arrivals.hpp"
#include "birp/workload/generator.hpp"
#include "birp/workload/topology.hpp"
#include "birp/workload/trace.hpp"

namespace birp::workload {
namespace {

// ---------------------------------------------------------------- trace ----

TEST(Trace, SetGetAndTotals) {
  Trace trace(3, 2, 4);
  trace.set(0, 0, 0, 5);
  trace.set(2, 1, 3, 7);
  EXPECT_EQ(trace.at(0, 0, 0), 5);
  EXPECT_EQ(trace.at(2, 1, 3), 7);
  EXPECT_EQ(trace.at(1, 0, 0), 0);
  EXPECT_EQ(trace.total(), 12);
  EXPECT_EQ(trace.slot_total(0), 5);
  EXPECT_EQ(trace.slot_total(2), 7);
}

TEST(Trace, OverwriteAdjustsTotal) {
  Trace trace(1, 1, 1);
  trace.set(0, 0, 0, 5);
  trace.set(0, 0, 0, 2);
  EXPECT_EQ(trace.total(), 2);
}

TEST(Trace, EdgeTotals) {
  Trace trace(1, 2, 3);
  trace.set(0, 0, 1, 4);
  trace.set(0, 1, 1, 6);
  trace.set(0, 1, 2, 1);
  const auto totals = trace.edge_totals(0);
  ASSERT_EQ(totals.size(), 3u);
  EXPECT_EQ(totals[0], 0);
  EXPECT_EQ(totals[1], 10);
  EXPECT_EQ(totals[2], 1);
}

TEST(Trace, BoundsChecked) {
  Trace trace(1, 1, 1);
  EXPECT_THROW((void)trace.at(1, 0, 0), std::logic_error);
  EXPECT_THROW(trace.set(0, 0, 0, -1), std::logic_error);
  EXPECT_THROW(Trace(0, 1, 1), std::logic_error);
}

TEST(Trace, CsvRoundTrip) {
  Trace trace(4, 3, 2);
  trace.set(0, 0, 0, 10);
  trace.set(1, 2, 1, 3);
  trace.set(3, 1, 0, 8);
  std::ostringstream out;
  trace.write_csv(out);
  const auto parsed = Trace::read_csv(out.str());
  EXPECT_EQ(parsed.slots(), 4);
  EXPECT_EQ(parsed.apps(), 3);
  EXPECT_EQ(parsed.devices(), 2);
  EXPECT_EQ(parsed.total(), trace.total());
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 3; ++i) {
      for (int k = 0; k < 2; ++k) {
        EXPECT_EQ(parsed.at(t, i, k), trace.at(t, i, k));
      }
    }
  }
}

TEST(Trace, ReadCsvRejectsGarbage) {
  EXPECT_THROW((void)Trace::read_csv("not a trace"), std::logic_error);
}

// ------------------------------------------------------------ generator ----

class GeneratorFixture : public ::testing::Test {
 protected:
  device::ClusterSpec cluster_ = device::ClusterSpec::paper_large();
};

TEST_F(GeneratorFixture, ShapeMatchesCluster) {
  GeneratorConfig config;
  config.slots = 50;
  config.mean_per_edge = 10.0;
  const auto trace = generate(cluster_, config);
  EXPECT_EQ(trace.slots(), 50);
  EXPECT_EQ(trace.apps(), cluster_.num_apps());
  EXPECT_EQ(trace.devices(), cluster_.num_devices());
}

TEST_F(GeneratorFixture, Deterministic) {
  GeneratorConfig config;
  config.slots = 20;
  config.mean_per_edge = 8.0;
  const auto a = generate(cluster_, config);
  const auto b = generate(cluster_, config);
  EXPECT_EQ(a.total(), b.total());
  EXPECT_EQ(a.at(7, 2, 3), b.at(7, 2, 3));
}

TEST_F(GeneratorFixture, SeedChangesRealization) {
  GeneratorConfig config;
  config.slots = 20;
  config.mean_per_edge = 8.0;
  const auto a = generate(cluster_, config);
  config.seed ^= 0xdead;
  const auto b = generate(cluster_, config);
  EXPECT_NE(a.total(), b.total());
}

TEST_F(GeneratorFixture, MeanIntensityMatchesConfig) {
  GeneratorConfig config;
  config.slots = 400;
  config.mean_per_edge = 12.0;
  config.burst_probability = 0.0;  // isolate the base process
  const auto trace = generate(cluster_, config);
  const double mean = static_cast<double>(trace.total()) /
                      (400.0 * cluster_.num_apps() * cluster_.num_devices());
  EXPECT_NEAR(mean, 12.0, 1.2);  // diurnal averages out over full days
}

TEST_F(GeneratorFixture, HotEdgesArePersistentlyHotter) {
  GeneratorConfig config;
  config.slots = 400;
  config.mean_per_edge = 20.0;
  config.hot_edge_factor = 2.5;
  const auto trace = generate(cluster_, config);
  std::vector<std::int64_t> per_edge(
      static_cast<std::size_t>(cluster_.num_devices()), 0);
  for (int t = 0; t < 400; ++t) {
    const auto totals = trace.edge_totals(t);
    for (std::size_t k = 0; k < totals.size(); ++k) per_edge[k] += totals[k];
  }
  const auto [min_it, max_it] =
      std::minmax_element(per_edge.begin(), per_edge.end());
  EXPECT_GT(static_cast<double>(*max_it) / static_cast<double>(*min_it), 1.5);
}

TEST_F(GeneratorFixture, BurstsIncreaseVariance) {
  GeneratorConfig calm;
  calm.slots = 300;
  calm.mean_per_edge = 15.0;
  calm.burst_probability = 0.0;
  GeneratorConfig bursty = calm;
  bursty.burst_probability = 0.25;
  bursty.burst_scale = 3.0;

  const auto calm_trace = generate(cluster_, calm);
  const auto bursty_trace = generate(cluster_, bursty);
  util::RunningStats calm_stats;
  util::RunningStats bursty_stats;
  for (int t = 0; t < 300; ++t) {
    for (const auto v : calm_trace.edge_totals(t)) {
      calm_stats.add(static_cast<double>(v));
    }
    for (const auto v : bursty_trace.edge_totals(t)) {
      bursty_stats.add(static_cast<double>(v));
    }
  }
  // Compare relative dispersion so the burst-driven mean shift cancels.
  const double calm_cv = calm_stats.stddev() / calm_stats.mean();
  const double bursty_cv = bursty_stats.stddev() / bursty_stats.mean();
  EXPECT_GT(bursty_cv, calm_cv * 1.2);
}

TEST_F(GeneratorFixture, DiurnalCycleIsVisible) {
  GeneratorConfig config;
  config.slots = 96 * 4;
  config.slots_per_day = 96;
  config.mean_per_edge = 30.0;
  config.diurnal_amplitude = 0.5;
  config.burst_probability = 0.0;
  const auto trace = generate(cluster_, config);
  // Aggregate by position within the day; the swing should be visible.
  std::vector<double> by_position(96, 0.0);
  for (int t = 0; t < config.slots; ++t) {
    by_position[static_cast<std::size_t>(t % 96)] +=
        static_cast<double>(trace.slot_total(t));
  }
  const auto [min_it, max_it] =
      std::minmax_element(by_position.begin(), by_position.end());
  EXPECT_GT(*max_it, *min_it * 1.3);
}

TEST_F(GeneratorFixture, SuggestedMeanScalesWithTarget) {
  const double low = suggested_mean_per_edge(cluster_, 0.3);
  const double high = suggested_mean_per_edge(cluster_, 0.6);
  EXPECT_GT(low, 0.0);
  EXPECT_NEAR(high / low, 2.0, 1e-9);
}

TEST_F(GeneratorFixture, ValidatesConfig) {
  GeneratorConfig config;
  config.slots = 0;
  EXPECT_THROW((void)generate(cluster_, config), std::logic_error);
  config.slots = 10;
  config.mean_per_edge = -1.0;
  EXPECT_THROW((void)generate(cluster_, config), std::logic_error);
  EXPECT_THROW((void)suggested_mean_per_edge(cluster_, 0.0), std::logic_error);
}

// ------------------------------------------------------------- arrivals ----

TEST(Arrivals, ExpandsEveryRequestWithinTheSlot) {
  Trace trace(2, 2, 3);
  trace.set(0, 0, 0, 4);
  trace.set(0, 1, 2, 2);
  trace.set(1, 0, 1, 3);
  const double tau = 6.0;
  const auto slot0 = slot_arrivals(trace, 0, tau, 42);
  EXPECT_EQ(static_cast<std::int64_t>(slot0.size()), trace.slot_total(0));
  for (const auto& a : slot0) {
    EXPECT_EQ(a.slot, 0);
    EXPECT_GE(a.offset_s, 0.0);
    EXPECT_LT(a.offset_s, tau);
  }
  // Sorted by offset within the slot.
  EXPECT_TRUE(std::is_sorted(
      slot0.begin(), slot0.end(),
      [](const Arrival& a, const Arrival& b) { return a.offset_s < b.offset_s; }));
  const auto all = expand_arrivals(trace, tau, 42);
  EXPECT_EQ(static_cast<std::int64_t>(all.size()), trace.total());
}

TEST(Arrivals, DeterministicAndCellStable) {
  Trace a(1, 2, 2);
  a.set(0, 0, 0, 5);
  a.set(0, 1, 1, 3);
  Trace b = a;
  b.set(0, 1, 1, 7);  // a different cell changes
  const auto xa = slot_arrivals(a, 0, 6.0, 7);
  const auto xa2 = slot_arrivals(a, 0, 6.0, 7);
  EXPECT_EQ(xa, xa2);
  // Offsets of the untouched (app 0, device 0) cell are unaffected by the
  // change in the other cell: per-cell forked streams.
  const auto xb = slot_arrivals(b, 0, 6.0, 7);
  std::vector<double> cell_a;
  std::vector<double> cell_b;
  for (const auto& r : xa) {
    if (r.app == 0 && r.device == 0) cell_a.push_back(r.offset_s);
  }
  for (const auto& r : xb) {
    if (r.app == 0 && r.device == 0) cell_b.push_back(r.offset_s);
  }
  EXPECT_EQ(cell_a, cell_b);
  // And a different seed moves the offsets.
  const auto xc = slot_arrivals(a, 0, 6.0, 8);
  EXPECT_NE(xa, xc);
}

TEST(Arrivals, CsvRoundTrip) {
  Trace trace(2, 2, 2);
  trace.set(0, 0, 0, 3);
  trace.set(1, 1, 1, 4);
  const auto arrivals = expand_arrivals(trace, 6.0, 0x51beef);
  std::ostringstream out;
  write_arrivals_csv(out, arrivals);
  const auto parsed = read_arrivals_csv(out.str());
  EXPECT_EQ(parsed, arrivals);  // bit-exact offsets via round-trip doubles
}

// ------------------------------------------------------------- topology ----

TEST(Topology, DeterministicInConfig) {
  TopologyConfig config;
  config.edges = 40;
  const auto a = generate_topology(config);
  const auto b = generate_topology(config);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.link_mbps.raw(), b.link_mbps.raw());  // bit-identical

  TopologyConfig other = config;
  other.seed = config.seed + 1;
  const auto c = generate_topology(other);
  EXPECT_NE(a.link_mbps.raw(), c.link_mbps.raw());
}

TEST(Topology, ConnectedAndSymmetric) {
  TopologyConfig config;
  config.edges = 60;
  config.attachment = 2;
  const auto topology = generate_topology(config);
  EXPECT_EQ(topology.num_edges(), 60);
  EXPECT_GE(topology.num_links(), topology.num_edges() - 1);
  // Symmetry + zero diagonal.
  for (int a = 0; a < topology.num_edges(); ++a) {
    EXPECT_DOUBLE_EQ(topology.link_mbps(a, a), 0.0);
    for (int b = 0; b < topology.num_edges(); ++b) {
      EXPECT_DOUBLE_EQ(topology.link_mbps(a, b), topology.link_mbps(b, a));
    }
  }
  // Preferential attachment keeps the graph connected: BFS from node 0.
  std::vector<char> seen(static_cast<std::size_t>(topology.num_edges()), 0);
  std::vector<int> frontier{0};
  seen[0] = 1;
  while (!frontier.empty()) {
    const int v = frontier.back();
    frontier.pop_back();
    for (int u = 0; u < topology.num_edges(); ++u) {
      if (!seen[static_cast<std::size_t>(u)] &&
          topology.link_mbps(v, u) > 0.0) {
        seen[static_cast<std::size_t>(u)] = 1;
        frontier.push_back(u);
      }
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](char s) { return s != 0; }));
}

TEST(Topology, ScaleFreeHubsEmerge) {
  // Preferential attachment should concentrate degree: the best-connected
  // node ends well above the mean degree.
  TopologyConfig config;
  config.edges = 120;
  config.attachment = 2;
  const auto topology = generate_topology(config);
  std::vector<int> degree(static_cast<std::size_t>(topology.num_edges()), 0);
  for (int a = 0; a < topology.num_edges(); ++a) {
    for (int b = 0; b < topology.num_edges(); ++b) {
      if (topology.link_mbps(a, b) > 0.0) ++degree[static_cast<std::size_t>(a)];
    }
  }
  const double mean =
      2.0 * topology.num_links() / static_cast<double>(topology.num_edges());
  const int hub = *std::max_element(degree.begin(), degree.end());
  EXPECT_GT(static_cast<double>(hub), 3.0 * mean);
}

TEST(Topology, CsvRoundTripIsExact) {
  TopologyConfig config;
  config.edges = 25;
  const auto topology = generate_topology(config);
  std::ostringstream out;
  topology.write_csv(out);
  const auto parsed = Topology::read_csv(out.str());
  ASSERT_EQ(parsed.num_edges(), topology.num_edges());
  for (int k = 0; k < topology.num_edges(); ++k) {
    const auto& a = topology.devices[static_cast<std::size_t>(k)];
    const auto& b = parsed.devices[static_cast<std::size_t>(k)];
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.name, b.name);
    EXPECT_DOUBLE_EQ(a.memory_mb, b.memory_mb);
    EXPECT_DOUBLE_EQ(a.bandwidth_mbps, b.bandwidth_mbps);
    EXPECT_DOUBLE_EQ(a.accel_speed, b.accel_speed);
  }
  EXPECT_EQ(parsed.link_mbps.raw(), topology.link_mbps.raw());
}

TEST(Topology, MakeClusterMatchesConfigDimensions) {
  TopologyConfig config;
  config.edges = 12;
  config.apps = 4;
  config.variants_per_app = 3;
  const auto topology = generate_topology(config);
  const auto cluster = make_cluster(topology, config);
  EXPECT_EQ(cluster.num_devices(), 12);
  EXPECT_EQ(cluster.num_apps(), 4);
  EXPECT_EQ(cluster.zoo().max_variants(), 3);
  // Device profiles carry through unchanged.
  for (int k = 0; k < cluster.num_devices(); ++k) {
    EXPECT_EQ(cluster.device(k).name,
              topology.devices[static_cast<std::size_t>(k)].name);
  }
}

}  // namespace
}  // namespace birp::workload
