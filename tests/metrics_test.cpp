// Tests for run metric aggregation.
#include <gtest/gtest.h>

#include "birp/metrics/run_metrics.hpp"

namespace birp::metrics {
namespace {

TEST(RunMetrics, EmptyState) {
  RunMetrics m;
  EXPECT_EQ(m.total_requests(), 0);
  EXPECT_EQ(m.slo_failures(), 0);
  EXPECT_DOUBLE_EQ(m.failure_percent(), 0.0);
  EXPECT_DOUBLE_EQ(m.total_loss(), 0.0);
  EXPECT_TRUE(m.cumulative_loss().empty());
}

TEST(RunMetrics, RequestAccounting) {
  RunMetrics m;
  m.record_request(0.5, true);
  m.record_request(1.2, false);
  m.record_request(0.9, true);
  EXPECT_EQ(m.total_requests(), 3);
  EXPECT_EQ(m.slo_failures(), 1);
  EXPECT_NEAR(m.failure_percent(), 100.0 / 3.0, 1e-9);
  EXPECT_EQ(m.completion().count(), 3u);
}

TEST(RunMetrics, DroppedCountsAsFailureWithoutCompletionSample) {
  RunMetrics m;
  m.record_request(0.5, true);
  m.record_dropped();
  EXPECT_EQ(m.total_requests(), 2);
  EXPECT_EQ(m.slo_failures(), 1);
  EXPECT_EQ(m.dropped(), 1);
  EXPECT_EQ(m.completion().count(), 1u);  // dropped requests never complete
  EXPECT_DOUBLE_EQ(m.failure_percent(), 50.0);
}

TEST(RunMetrics, SlotLossSeriesAndCumulative) {
  RunMetrics m;
  m.record_slot_loss(1.0);
  m.record_slot_loss(2.5);
  m.record_slot_loss(0.5);
  EXPECT_DOUBLE_EQ(m.total_loss(), 4.0);
  const auto cumulative = m.cumulative_loss();
  ASSERT_EQ(cumulative.size(), 3u);
  EXPECT_DOUBLE_EQ(cumulative[0], 1.0);
  EXPECT_DOUBLE_EQ(cumulative[1], 3.5);
  EXPECT_DOUBLE_EQ(cumulative[2], 4.0);
  EXPECT_EQ(m.slot_loss().size(), 3u);
}

TEST(RunMetrics, EdgeBusyStatistics) {
  RunMetrics m;
  m.record_edge_busy(0.5);
  m.record_edge_busy(1.5);
  EXPECT_DOUBLE_EQ(m.edge_busy().mean(), 1.0);
  EXPECT_EQ(m.edge_busy().count(), 2u);
}

TEST(RunMetrics, EnergyAccumulates) {
  RunMetrics m;
  m.record_energy(10.0);
  m.record_energy(5.5);
  EXPECT_DOUBLE_EQ(m.total_energy_j(), 15.5);
  EXPECT_DOUBLE_EQ(m.energy_per_request_j(), 0.0);  // nothing served yet
  m.record_request(0.5, true);
  m.record_dropped();
  EXPECT_DOUBLE_EQ(m.energy_per_request_j(), 15.5);  // one served request
}

TEST(RunMetrics, CompletionEcdfReflectsSamples) {
  RunMetrics m;
  for (int i = 1; i <= 10; ++i) {
    m.record_request(static_cast<double>(i) / 10.0, i <= 9);
  }
  EXPECT_NEAR(m.completion().cdf(0.5), 0.5, 1e-12);
  EXPECT_NEAR(m.completion().tail_fraction(0.9), 0.1, 1e-12);
}

// ---------------------------------------------------------------- merge ----

namespace {

/// Replays event `n` of a synthetic stream into `m` — the stream mixes every
/// recordable event family so a merge test exercises all counters at once.
void replay_event(RunMetrics& m, int n) {
  const double latency = 0.1 + 0.01 * static_cast<double>(n % 97);
  m.record_request(latency, n % 7 != 0);
  m.record_request_waits(latency * 0.25, latency * 0.25, latency * 0.5);
  switch (n % 5) {
    case 0: m.record_dropped(); break;
    case 1: m.record_queue_drop(); break;
    case 2: m.record_orphan_drop(); break;
    case 3: m.record_deadline_shed(); break;
    default: break;
  }
  m.record_breaker_events(n % 2, n % 3 == 0, n % 4 == 0, n % 5 == 0);
  m.record_degradation(n % 3, n % 4);
  m.record_batch_seals(n % 3, 1 + n % 2);
  m.record_retries(n % 2);
  m.record_edge_slot(n % 4, n % 6 != 0);
  m.record_queue_depth(static_cast<double>(n % 11));
  m.record_edge_busy(0.01 * static_cast<double>(n % 90));
  m.record_energy(0.5 * static_cast<double>(n % 13));
}

void expect_same_aggregates(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.total_requests(), b.total_requests());
  EXPECT_EQ(a.slo_failures(), b.slo_failures());
  EXPECT_EQ(a.dropped(), b.dropped());
  EXPECT_EQ(a.queue_dropped(), b.queue_dropped());
  EXPECT_EQ(a.orphan_dropped(), b.orphan_dropped());
  EXPECT_EQ(a.deadline_shed(), b.deadline_shed());
  EXPECT_EQ(a.retries(), b.retries());
  EXPECT_EQ(a.breaker_trips(), b.breaker_trips());
  EXPECT_EQ(a.breaker_reopens(), b.breaker_reopens());
  EXPECT_EQ(a.breaker_probes(), b.breaker_probes());
  EXPECT_EQ(a.breaker_recoveries(), b.breaker_recoveries());
  EXPECT_EQ(a.max_degradation_level(), b.max_degradation_level());
  EXPECT_EQ(a.total_batches(), b.total_batches());
  for (int reason = 0; reason < 4; ++reason) {
    EXPECT_EQ(a.batch_seals(reason), b.batch_seals(reason));
  }
  for (int edge = 0; edge < 4; ++edge) {
    EXPECT_EQ(a.downtime_slots(edge), b.downtime_slots(edge));
  }
  EXPECT_DOUBLE_EQ(a.availability_percent(), b.availability_percent());
  EXPECT_DOUBLE_EQ(a.total_loss(), b.total_loss());
  EXPECT_DOUBLE_EQ(a.total_energy_j(), b.total_energy_j());
  ASSERT_EQ(a.slot_loss().size(), b.slot_loss().size());
  for (std::size_t t = 0; t < a.slot_loss().size(); ++t) {
    EXPECT_DOUBLE_EQ(a.slot_loss()[t], b.slot_loss()[t]);
  }
  // The exactness claim: quantiles of the merged object are quantiles of
  // the union sample set, bit for bit (raw samples merge, not percentiles).
  for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(a.latency_quantile(q), b.latency_quantile(q));
  }
  EXPECT_EQ(a.queue_wait().count(), b.queue_wait().count());
  EXPECT_EQ(a.dispatch_wait().count(), b.dispatch_wait().count());
  EXPECT_EQ(a.exec_latency().count(), b.exec_latency().count());
}

}  // namespace

TEST(RunMetricsMerge, ShardedEqualsMonolithicOnSplitStream) {
  // The same 300-event stream, once into one accumulator and once striped
  // across three shards (as the CellScheduler's per-cell metrics would be).
  RunMetrics mono;
  RunMetrics shard[3];
  for (int n = 0; n < 300; ++n) {
    replay_event(mono, n);
    replay_event(shard[n % 3], n);
    const double loss = 0.25 * static_cast<double>(n % 17);
    mono.record_slot_loss(loss);
    // Shards see the same slot clock: one shard takes the loss, the others
    // record a zero for that slot.
    for (int s = 0; s < 3; ++s) {
      shard[s].record_slot_loss(s == n % 3 ? loss : 0.0);
    }
  }
  RunMetrics merged;
  for (const auto& s : shard) merged.merge(s);
  expect_same_aggregates(merged, mono);
}

TEST(RunMetricsMerge, Associative) {
  const auto build = [](int lo, int hi) {
    RunMetrics m;
    for (int n = lo; n < hi; ++n) replay_event(m, n);
    return m;
  };
  // (a . b) . c
  RunMetrics left = build(0, 50);
  left.merge(build(50, 120));
  left.merge(build(120, 200));
  // a . (b . c)
  RunMetrics right_bc = build(50, 120);
  right_bc.merge(build(120, 200));
  RunMetrics right = build(0, 50);
  right.merge(right_bc);
  expect_same_aggregates(left, right);
}

TEST(RunMetricsMerge, QuantilesExactOnDisjointRanges) {
  // Shard A holds 1..50, shard B holds 51..100: any percentile of the merge
  // must equal the percentile of 1..100 exactly.
  RunMetrics a, b, mono;
  for (int v = 1; v <= 100; ++v) {
    (v <= 50 ? a : b).record_request(static_cast<double>(v), true);
    mono.record_request(static_cast<double>(v), true);
  }
  a.merge(b);
  for (const double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_DOUBLE_EQ(a.latency_quantile(q), mono.latency_quantile(q));
  }
  EXPECT_EQ(a.completion().count(), 100u);
}

TEST(RunMetricsMerge, EmptyIsIdentity) {
  RunMetrics m, empty;
  for (int n = 0; n < 40; ++n) replay_event(m, n);
  RunMetrics reference;
  for (int n = 0; n < 40; ++n) replay_event(reference, n);
  m.merge(empty);
  expect_same_aggregates(m, reference);
  RunMetrics other;
  other.merge(reference);
  expect_same_aggregates(other, reference);
}

}  // namespace
}  // namespace birp::metrics
