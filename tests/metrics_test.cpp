// Tests for run metric aggregation.
#include <gtest/gtest.h>

#include "birp/metrics/run_metrics.hpp"

namespace birp::metrics {
namespace {

TEST(RunMetrics, EmptyState) {
  RunMetrics m;
  EXPECT_EQ(m.total_requests(), 0);
  EXPECT_EQ(m.slo_failures(), 0);
  EXPECT_DOUBLE_EQ(m.failure_percent(), 0.0);
  EXPECT_DOUBLE_EQ(m.total_loss(), 0.0);
  EXPECT_TRUE(m.cumulative_loss().empty());
}

TEST(RunMetrics, RequestAccounting) {
  RunMetrics m;
  m.record_request(0.5, true);
  m.record_request(1.2, false);
  m.record_request(0.9, true);
  EXPECT_EQ(m.total_requests(), 3);
  EXPECT_EQ(m.slo_failures(), 1);
  EXPECT_NEAR(m.failure_percent(), 100.0 / 3.0, 1e-9);
  EXPECT_EQ(m.completion().count(), 3u);
}

TEST(RunMetrics, DroppedCountsAsFailureWithoutCompletionSample) {
  RunMetrics m;
  m.record_request(0.5, true);
  m.record_dropped();
  EXPECT_EQ(m.total_requests(), 2);
  EXPECT_EQ(m.slo_failures(), 1);
  EXPECT_EQ(m.dropped(), 1);
  EXPECT_EQ(m.completion().count(), 1u);  // dropped requests never complete
  EXPECT_DOUBLE_EQ(m.failure_percent(), 50.0);
}

TEST(RunMetrics, SlotLossSeriesAndCumulative) {
  RunMetrics m;
  m.record_slot_loss(1.0);
  m.record_slot_loss(2.5);
  m.record_slot_loss(0.5);
  EXPECT_DOUBLE_EQ(m.total_loss(), 4.0);
  const auto cumulative = m.cumulative_loss();
  ASSERT_EQ(cumulative.size(), 3u);
  EXPECT_DOUBLE_EQ(cumulative[0], 1.0);
  EXPECT_DOUBLE_EQ(cumulative[1], 3.5);
  EXPECT_DOUBLE_EQ(cumulative[2], 4.0);
  EXPECT_EQ(m.slot_loss().size(), 3u);
}

TEST(RunMetrics, EdgeBusyStatistics) {
  RunMetrics m;
  m.record_edge_busy(0.5);
  m.record_edge_busy(1.5);
  EXPECT_DOUBLE_EQ(m.edge_busy().mean(), 1.0);
  EXPECT_EQ(m.edge_busy().count(), 2u);
}

TEST(RunMetrics, EnergyAccumulates) {
  RunMetrics m;
  m.record_energy(10.0);
  m.record_energy(5.5);
  EXPECT_DOUBLE_EQ(m.total_energy_j(), 15.5);
  EXPECT_DOUBLE_EQ(m.energy_per_request_j(), 0.0);  // nothing served yet
  m.record_request(0.5, true);
  m.record_dropped();
  EXPECT_DOUBLE_EQ(m.energy_per_request_j(), 15.5);  // one served request
}

TEST(RunMetrics, CompletionEcdfReflectsSamples) {
  RunMetrics m;
  for (int i = 1; i <= 10; ++i) {
    m.record_request(static_cast<double>(i) / 10.0, i <= 9);
  }
  EXPECT_NEAR(m.completion().cdf(0.5), 0.5, 1e-12);
  EXPECT_NEAR(m.completion().tail_fraction(0.9), 0.1, 1e-12);
}

}  // namespace
}  // namespace birp::metrics
