// Minimal tour of the request-level serving runtime: build a small cluster,
// generate a bursty trace, serve it slot by slot with the BIRP scheduler,
// and inspect what individual requests experienced.
//
//   ./examples/serve_demo
#include <iostream>

#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"
#include "birp/serve/engine.hpp"
#include "birp/util/table.hpp"
#include "birp/workload/generator.hpp"

int main() {
  const auto cluster = birp::device::ClusterSpec::paper_small();

  birp::workload::GeneratorConfig trace_config;
  trace_config.slots = 40;
  trace_config.mean_per_edge =
      birp::workload::suggested_mean_per_edge(cluster, 0.6);
  const auto trace = birp::workload::generate(cluster, trace_config);

  birp::serve::ServeConfig config;
  config.queue_capacity = 64;          // per-edge admission buffer
  config.max_batch_wait_fraction = 0.05;  // partial batches launch after 5% tau
  config.keep_records = true;          // retain per-request lifecycles

  birp::serve::ServeEngine engine(cluster, trace, config);
  birp::core::BirpScheduler scheduler(cluster);

  // Step the first slot by hand to look at individual requests.
  birp::metrics::RunMetrics metrics;
  const auto first = engine.step(scheduler, &metrics);
  birp::util::TextTable requests(
      {"app", "origin", "served on", "batch", "arrival s", "start s",
       "sojourn s", "SLO"});
  int shown = 0;
  for (const auto& record : first.records) {
    if (record.outcome != birp::serve::Outcome::kServed) continue;
    requests.add_row({std::to_string(record.item.app),
                      std::to_string(record.item.origin),
                      std::to_string(record.served_on),
                      std::to_string(record.batch),
                      birp::util::fixed(record.item.arrival_s, 3),
                      birp::util::fixed(record.start_s, 3),
                      birp::util::fixed(record.sojourn_s(), 3),
                      record.met_slo ? "hit" : "miss"});
    if (++shown == 12) break;
  }
  requests.print(std::cout, "slot 0 — first requests served");

  // Serve the rest of the horizon and summarize.
  while (engine.current_slot() < trace.slots()) engine.step(scheduler, &metrics);

  birp::util::TextTable summary({"metric", "value"});
  summary.add_row({"requests", std::to_string(metrics.total_requests())});
  summary.add_row({"SLO attainment %",
                   birp::util::fixed(metrics.slo_attainment_percent(), 2)});
  summary.add_row(
      {"p50 latency (tau)", birp::util::fixed(metrics.latency_quantile(0.5), 3)});
  summary.add_row(
      {"p95 latency (tau)", birp::util::fixed(metrics.latency_quantile(0.95), 3)});
  summary.add_row(
      {"p99 latency (tau)", birp::util::fixed(metrics.latency_quantile(0.99), 3)});
  summary.add_row({"dropped", std::to_string(metrics.dropped())});
  summary.add_row({"queue drops", std::to_string(metrics.queue_dropped())});
  summary.add_row({"mean queue depth",
                   metrics.queue_depth().count() > 0
                       ? birp::util::fixed(metrics.queue_depth().mean(), 2)
                       : "-"});
  summary.print(std::cout, "full horizon with BIRP");
  return 0;
}
