// Smart-city scenario: a district with camera-heavy intersections (object
// detection + semantic segmentation dominant), strong rush-hour diurnality,
// and one chronically hot downtown edge. Demonstrates building a custom
// application zoo and workload against the public API and comparing BIRP
// with the serial baseline.
//
//   ./examples/smart_city [slots]
#include <cstdlib>
#include <iostream>

#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"
#include "birp/sched/oaei.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/util/rng.hpp"
#include "birp/util/table.hpp"
#include "birp/workload/generator.hpp"

namespace {

/// A zoo tailored to city infrastructure workloads: three applications,
/// each with a small/medium/large ladder. Parameters stay within the
/// calibrated ranges of the standard zoo.
birp::model::Zoo city_zoo() {
  birp::util::Xoshiro256StarStar rng(0xC17E);
  std::vector<birp::model::Application> apps;
  const struct {
    const char* name;
    double request_mb;  // camera crops are heavier than metadata events
  } specs[] = {{"intersection_detection", 1.3},
               {"pedestrian_segmentation", 1.8},
               {"license_plate_ocr", 0.5}};
  for (int i = 0; i < 3; ++i) {
    birp::model::Application app;
    app.id = i;
    app.name = specs[i].name;
    app.request_mb = specs[i].request_mb;
    app.slo_fraction = 1.0;
    const double loss_ladder[] = {0.46, 0.36, 0.26, 0.17};
    const double latency_ladder[] = {25.0, 75.0, 200.0, 520.0};
    const double weights_ladder[] = {40.0, 100.0, 220.0, 480.0};
    const double inter_ladder[] = {60.0, 120.0, 230.0, 430.0};
    for (int j = 0; j < 4; ++j) {
      birp::model::ModelVariant v;
      v.app = i;
      v.variant = j;
      v.name = std::string(specs[i].name) + "/v" + std::to_string(j);
      const double jitter = rng.uniform(0.95, 1.05);
      v.loss = loss_ladder[j] * jitter;
      v.base_latency_ms = latency_ladder[j] * jitter;
      v.weights_mb = weights_ladder[j] * jitter;
      v.compressed_mb = std::clamp(v.weights_mb * 0.18, 7.0, 98.0);
      v.intermediate_mb = inter_ladder[j] * jitter;
      app.variants.push_back(std::move(v));
    }
    apps.push_back(std::move(app));
  }
  return birp::model::Zoo(std::move(apps));
}

}  // namespace

int main(int argc, char** argv) {
  const int slots = argc > 1 ? std::atoi(argv[1]) : 96;  // one simulated day

  // Six roadside cabinets of mixed hardware.
  birp::device::ClusterSpec cluster(birp::device::paper_testbed(), city_zoo(),
                                    /*tau_s=*/6.0, /*truth_seed=*/0xC17E);

  // Rush-hour heavy workload: pronounced diurnal swing, one hot downtown
  // edge, camera bursts around incidents.
  birp::workload::GeneratorConfig wl;
  wl.slots = slots;
  wl.slots_per_day = 96;
  wl.mean_per_edge = birp::workload::suggested_mean_per_edge(cluster, 0.62);
  wl.diurnal_amplitude = 0.45;
  wl.hot_edge_factor = 1.6;
  wl.burst_probability = 0.08;
  wl.burst_scale = 1.5;
  const auto trace = birp::workload::generate(cluster, wl);
  std::cout << "smart-city day: " << trace.total() << " inference requests, "
            << slots << " slots of " << cluster.tau_s() << "s\n";

  birp::core::BirpScheduler birp(cluster);
  birp::sched::OaeiScheduler oaei(cluster);
  birp::sim::Simulator sim_birp(cluster, trace);
  birp::sim::Simulator sim_oaei(cluster, trace);
  const auto m_birp = sim_birp.run(birp);
  const auto m_oaei = sim_oaei.run(oaei);

  birp::util::TextTable table(
      {"scheduler", "loss", "SLO failure p%", "dropped", "median tau"});
  for (const auto& [name, m] :
       {std::pair{"BIRP (batch-aware)", &m_birp},
        std::pair{"OAEI (serial)", &m_oaei}}) {
    table.add_row({name, birp::util::fixed(m->total_loss(), 1),
                   birp::util::fixed(m->failure_percent(), 2),
                   std::to_string(m->dropped()),
                   birp::util::fixed(m->completion().quantile(0.5), 3)});
  }
  table.print(std::cout, "smart-city results");

  const double saved = 100.0 * (m_oaei.total_loss() - m_birp.total_loss()) /
                       m_oaei.total_loss();
  std::cout << "batch-aware redistribution reduced inference loss by "
            << birp::util::fixed(saved, 1) << "% over the day\n";
  return 0;
}
