// Industrial-IoT scenario: a factory floor where inspection lines emit
// bursts synchronized with production cycles and SLOs are tight. Shows the
// fine-grained simulation API (per-slot stepping, live TIR beliefs, drop
// and repair inspection) rather than the one-shot run() used elsewhere.
//
//   ./examples/industrial_iot [slots]
#include <cstdlib>
#include <iostream>

#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/util/table.hpp"
#include "birp/workload/generator.hpp"

int main(int argc, char** argv) {
  const int slots = argc > 1 ? std::atoi(argv[1]) : 48;

  // The paper's large configuration doubles as a plausible factory mix
  // (detection, recognition, NLU for work orders, segmentation).
  const auto cluster = birp::device::ClusterSpec::paper_large();

  birp::workload::GeneratorConfig wl;
  wl.slots = slots;
  wl.mean_per_edge = birp::workload::suggested_mean_per_edge(cluster, 0.55);
  wl.diurnal_amplitude = 0.15;   // factories run around the clock
  wl.burst_probability = 0.18;   // production-cycle bursts
  wl.burst_scale = 1.8;
  const auto trace = birp::workload::generate(cluster, wl);
  std::cout << "factory run: " << trace.total() << " requests over " << slots
            << " slots\n\n";

  birp::core::BirpScheduler scheduler(cluster);
  birp::sim::Simulator simulator(cluster, trace);
  birp::metrics::RunMetrics metrics(slots);

  // Step slot by slot; surface interesting events as they happen.
  for (int t = 0; t < slots; ++t) {
    const auto result = simulator.step(scheduler, &metrics);
    if (result.dropped > 0 || !result.repairs.clean()) {
      std::cout << "slot " << t << ": dropped " << result.dropped
                << " request(s); repairs "
                << (result.repairs.clean() ? "clean" : "applied") << "\n";
    }
  }

  // Where did the MAB tuner land? Show the believed TIR curve of the
  // object-detection mid model on every edge against the hidden truth.
  birp::util::TextTable beliefs({"edge", "believed eta", "true eta",
                                 "believed beta", "true beta"});
  for (int k = 0; k < cluster.num_devices(); ++k) {
    const auto believed = scheduler.believed_tir(k, 0, 2);
    const auto& truth = cluster.oracle_tir(k, 0, 2);
    beliefs.add_row({cluster.device(k).name,
                     birp::util::fixed(believed.eta, 3),
                     birp::util::fixed(truth.eta, 3),
                     std::to_string(believed.beta),
                     std::to_string(truth.beta)});
  }
  beliefs.print(std::cout,
                "\nMAB beliefs after the run (object_detection/v2)");

  birp::util::TextTable summary({"metric", "value"});
  summary.add_row({"requests", std::to_string(metrics.total_requests())});
  summary.add_row({"SLO failure p%",
                   birp::util::fixed(metrics.failure_percent(), 2)});
  summary.add_row({"total loss", birp::util::fixed(metrics.total_loss(), 1)});
  summary.add_row({"loss per request",
                   birp::util::fixed(metrics.total_loss() /
                                         metrics.total_requests(), 4)});
  summary.add_row({"solver fallbacks",
                   std::to_string(scheduler.fallback_count())});
  summary.print(std::cout, "factory summary");
  return 0;
}
