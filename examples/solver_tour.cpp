// Solver tour: the LP/MILP substrate is a reusable library in its own
// right. This example builds a small facility-location-style MILP by hand,
// solves it, and inspects the solution — useful as a template for modeling
// other scheduling problems against the same engine.
//
//   ./examples/solver_tour
#include <iostream>

#include "birp/solver/branch_and_bound.hpp"
#include "birp/solver/model.hpp"
#include "birp/solver/simplex.hpp"
#include "birp/util/table.hpp"

int main() {
  using birp::solver::Relation;

  // Three candidate sites serve four demand zones. Opening site s costs
  // open_cost[s]; serving zone z from site s costs serve_cost[s][z] per
  // unit. Each site has a capacity; every zone's demand must be met.
  const double open_cost[3] = {18.0, 25.0, 14.0};
  const double capacity[3] = {30.0, 45.0, 25.0};
  const double demand[4] = {12.0, 17.0, 9.0, 14.0};
  const double serve_cost[3][4] = {{2.0, 4.0, 5.0, 3.0},
                                   {3.0, 1.5, 2.5, 4.0},
                                   {5.0, 3.5, 1.0, 2.0}};

  birp::solver::Model model;
  int open[3];
  int flow[3][4];
  for (int s = 0; s < 3; ++s) {
    open[s] = model.add_binary("open" + std::to_string(s));
    model.set_objective(open[s], open_cost[s]);
    for (int z = 0; z < 4; ++z) {
      flow[s][z] = model.add_continuous(
          "f" + std::to_string(s) + std::to_string(z), 0.0, demand[z]);
      model.set_objective(flow[s][z], serve_cost[s][z]);
    }
  }
  // Capacity: flows out of a closed site are zero; an open site is capped.
  for (int s = 0; s < 3; ++s) {
    std::vector<birp::solver::Term> terms;
    for (int z = 0; z < 4; ++z) terms.push_back({flow[s][z], 1.0});
    terms.push_back({open[s], -capacity[s]});
    model.add_constraint(terms, Relation::LessEqual, 0.0);
  }
  // Demand satisfaction.
  for (int z = 0; z < 4; ++z) {
    std::vector<birp::solver::Term> terms;
    for (int s = 0; s < 3; ++s) terms.push_back({flow[s][z], 1.0});
    model.add_constraint(terms, Relation::Equal, demand[z]);
  }

  // First look at the LP relaxation (fractional facilities allowed)...
  const auto relaxed = birp::solver::solve_lp(model);
  std::cout << "LP relaxation: " << to_string(relaxed.status)
            << ", objective " << relaxed.objective << " ("
            << relaxed.simplex_iterations << " pivots)\n";

  // ...then the true mixed-integer optimum.
  const auto solution = birp::solver::solve_milp(model);
  std::cout << "MILP:          " << to_string(solution.status)
            << ", objective " << solution.objective << " ("
            << solution.nodes_explored << " nodes)\n\n";

  birp::util::TextTable table({"site", "open", "zone0", "zone1", "zone2",
                               "zone3"});
  for (int s = 0; s < 3; ++s) {
    std::vector<std::string> row{std::to_string(s)};
    row.push_back(solution.values[static_cast<std::size_t>(open[s])] > 0.5
                      ? "yes"
                      : "no");
    for (int z = 0; z < 4; ++z) {
      row.push_back(birp::util::fixed(
          solution.values[static_cast<std::size_t>(flow[s][z])], 1));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout, "optimal service plan");

  std::cout << "\nintegrality gap paid over the relaxation: "
            << birp::util::fixed(solution.objective - relaxed.objective, 2)
            << "\n";
  return 0;
}
