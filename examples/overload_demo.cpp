// Overload protection in a nutshell: hit the request-level serving engine
// with a flash crowd and watch the birp/guard ladder absorb it — deadline
// sheds replace blind queue drops, circuit breakers quarantine failing
// (app, edge) pairs, and the degradation ladder trades variant accuracy
// for survival until the surge passes.
//
//   ./examples/overload_demo
#include <algorithm>
#include <iostream>
#include <string>

#include "birp/device/cluster.hpp"
#include "birp/serve/engine.hpp"
#include "birp/sim/validate.hpp"
#include "birp/util/table.hpp"
#include "birp/workload/generator.hpp"

namespace {

// Serve everything locally with the most accurate variant that fits the
// edge's memory and that the guard's degradation hints allow. No drop
// planning: overload lands on the admission queues, which is exactly the
// regime the guard layer protects.
class GreedyRouter : public birp::sim::Scheduler {
 public:
  explicit GreedyRouter(const birp::device::ClusterSpec& cluster)
      : cluster_(cluster) {}
  [[nodiscard]] std::string name() const override { return "greedy"; }
  [[nodiscard]] birp::sim::SlotDecision decide(
      const birp::sim::SlotState& state) override {
    birp::sim::SlotDecision decision(cluster_.num_apps(),
                                     cluster_.zoo().max_variants(),
                                     cluster_.num_devices());
    for (int i = 0; i < cluster_.num_apps(); ++i) {
      for (int k = 0; k < cluster_.num_devices(); ++k) {
        const auto demand = state.demand(i, k);
        if (demand <= 0) continue;
        const int kernel =
            static_cast<int>(std::clamp<std::int64_t>(demand, 1, 16));
        for (int j = cluster_.zoo().num_variants(i) - 1; j >= 0; --j) {
          if (!state.variant_allowed(i, j)) continue;
          birp::sim::SlotDecision trial(cluster_.num_apps(),
                                        cluster_.zoo().max_variants(),
                                        cluster_.num_devices());
          trial.served(i, j, k) = demand;
          trial.kernel(i, j, k) = kernel;
          if (j > 0 && birp::sim::decision_memory_mb(cluster_, trial, k) >
                           cluster_.memory_mb(k)) {
            continue;
          }
          decision.served(i, j, k) = demand;
          decision.kernel(i, j, k) = kernel;
          break;
        }
      }
    }
    return decision;
  }

 private:
  const birp::device::ClusterSpec& cluster_;
};

}  // namespace

int main() {
  const auto cluster = birp::device::ClusterSpec::paper_small();

  // A calm baseline with a 4x flash crowd in slots [20, 32).
  birp::workload::GeneratorConfig gen;
  gen.slots = 48;
  gen.mean_per_edge = 40.0;
  auto trace = birp::workload::generate(cluster, gen);
  for (int t = 20; t < 32; ++t) {
    for (int i = 0; i < trace.apps(); ++i) {
      for (int k = 0; k < trace.devices(); ++k) {
        trace.set(t, i, k, trace.at(t, i, k) * 4);
      }
    }
  }

  const auto run = [&](bool guarded) {
    birp::serve::ServeConfig config;
    config.queue_capacity = 64;
    if (guarded) {
      config.guard.admission.enabled = true;   // shed doomed requests early
      config.guard.breaker.enabled = true;     // quarantine failing cells
      config.guard.breaker.window_slots = 4;
      config.guard.breaker.trip_threshold = 0.3;
      config.guard.degradation.enabled = true; // cheaper variants under stress
    }
    GreedyRouter router(cluster);
    birp::serve::ServeEngine engine(cluster, trace, config);
    return engine.run(router);
  };
  const auto plain = run(false);
  const auto guarded = run(true);

  birp::util::TextTable table({"metric", "unguarded", "full guard"});
  const auto row = [&](const std::string& name, auto get) {
    table.add_row({name, get(plain), get(guarded)});
  };
  row("SLO failure p%", [](const birp::metrics::RunMetrics& m) {
    return birp::util::fixed(m.failure_percent(), 2);
  });
  row("goodput (served)", [](const birp::metrics::RunMetrics& m) {
    return std::to_string(m.total_requests() - m.dropped());
  });
  row("deadline sheds", [](const birp::metrics::RunMetrics& m) {
    return std::to_string(m.deadline_shed());
  });
  row("blind queue drops", [](const birp::metrics::RunMetrics& m) {
    return std::to_string(m.queue_dropped());
  });
  row("breaker trips", [](const birp::metrics::RunMetrics& m) {
    return std::to_string(m.breaker_trips());
  });
  row("degraded slots", [](const birp::metrics::RunMetrics& m) {
    return std::to_string(m.degraded_slots());
  });
  row("p95 sojourn (tau)", [](const birp::metrics::RunMetrics& m) {
    return birp::util::fixed(m.latency_quantile(0.95), 3);
  });
  table.print(std::cout, "flash crowd, 4x surge in slots [20, 32)");

  std::cout << "\nThe guard sheds requests that are already doomed to miss "
               "their deadline,\ntrips breakers on (app, edge) pairs whose "
               "failure rate spikes, and steps\napps down to cheaper variants "
               "until the surge passes — so the engine\nserves more requests "
               "on time instead of burning accelerator time on\nlate work.\n";
  return 0;
}
