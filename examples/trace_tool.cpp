// Trace tooling: generate, save, load, and summarize workload traces.
// Demonstrates the CSV round-trip used to pin experiment inputs to disk so
// runs are reproducible across machines and library versions.
//
//   ./examples/trace_tool generate <out.csv> [slots] [target]
//   ./examples/trace_tool stats <trace.csv>
//   ./examples/trace_tool requests <trace.csv> [out.csv] [tau] [seed]
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "birp/device/cluster.hpp"
#include "birp/util/stats.hpp"
#include "birp/util/table.hpp"
#include "birp/workload/arrivals.hpp"
#include "birp/workload/generator.hpp"
#include "birp/workload/trace.hpp"

namespace {

int generate(const std::string& path, int slots, double target) {
  const auto cluster = birp::device::ClusterSpec::paper_large();
  birp::workload::GeneratorConfig config;
  config.slots = slots;
  config.mean_per_edge =
      birp::workload::suggested_mean_per_edge(cluster, target);
  const auto trace = birp::workload::generate(cluster, config);

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  trace.write_csv(out);
  std::cout << "wrote " << trace.total() << " requests over " << slots
            << " slots to " << path << "\n";
  return 0;
}

int stats(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto trace = birp::workload::Trace::read_csv(buffer.str());

  birp::util::TextTable shape({"property", "value"});
  shape.add_row({"slots", std::to_string(trace.slots())});
  shape.add_row({"applications", std::to_string(trace.apps())});
  shape.add_row({"edges", std::to_string(trace.devices())});
  shape.add_row({"total requests", std::to_string(trace.total())});
  shape.print(std::cout, "trace " + path);

  // Per-edge intensity and burstiness.
  birp::util::TextTable edges({"edge", "mean/slot", "max/slot", "cv"});
  for (int k = 0; k < trace.devices(); ++k) {
    birp::util::RunningStats stats;
    for (int t = 0; t < trace.slots(); ++t) {
      std::int64_t total = 0;
      for (int i = 0; i < trace.apps(); ++i) total += trace.at(t, i, k);
      stats.add(static_cast<double>(total));
    }
    edges.add_row({std::to_string(k), birp::util::fixed(stats.mean(), 1),
                   birp::util::fixed(stats.max(), 0),
                   birp::util::fixed(stats.stddev() / stats.mean(), 3)});
  }
  edges.print(std::cout, "per-edge load");
  return 0;
}

// Expands a slot trace into the per-request arrival stream the serving
// runtime (birp/serve) replays, and dumps it as CSV — the deterministic
// inverse of the slot aggregation. Writes to stdout when no output path is
// given.
int requests(const std::string& path, const std::string& out_path, double tau,
             std::uint64_t seed) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto trace = birp::workload::Trace::read_csv(buffer.str());
  const auto arrivals = birp::workload::expand_arrivals(trace, tau, seed);

  if (out_path.empty()) {
    birp::workload::write_arrivals_csv(std::cout, arrivals);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  birp::workload::write_arrivals_csv(out, arrivals);
  std::cout << "wrote " << arrivals.size() << " request arrivals ("
            << trace.slots() << " slots, tau " << tau << "s, seed " << seed
            << ") to " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "generate") {
    const int slots = argc > 3 ? std::atoi(argv[3]) : 300;
    const double target = argc > 4 ? std::atof(argv[4]) : 0.7;
    return generate(argv[2], slots, target);
  }
  if (argc >= 3 && std::string(argv[1]) == "stats") {
    return stats(argv[2]);
  }
  if (argc >= 3 && std::string(argv[1]) == "requests") {
    const std::string out_path = argc > 3 ? argv[3] : "";
    const double tau = argc > 4 ? std::atof(argv[4]) : 6.0;
    const std::uint64_t seed =
        argc > 5 ? std::strtoull(argv[5], nullptr, 0) : 0x51beef;
    return requests(argv[2], out_path, tau, seed);
  }
  std::cerr << "usage:\n  trace_tool generate <out.csv> [slots] [target]\n"
               "  trace_tool stats <trace.csv>\n"
               "  trace_tool requests <trace.csv> [out.csv] [tau] [seed]\n";
  return 2;
}
