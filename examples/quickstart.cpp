// Quickstart: build an edge collaborative system, generate a workload,
// run the BIRP scheduler, and print headline metrics.
//
//   ./examples/quickstart [slots]
#include <cstdlib>
#include <iostream>

#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/util/table.hpp"
#include "birp/workload/generator.hpp"

int main(int argc, char** argv) {
  const int slots = argc > 1 ? std::atoi(argv[1]) : 50;

  // 1. The paper's testbed: two Jetson NX, two Jetson Nano, two Atlas 200DK
  //    edges serving five applications with five model variants each.
  const auto cluster = birp::device::ClusterSpec::paper_large();

  // 2. A synthetic diurnal/bursty workload trace sized so the cluster runs
  //    around 65% mean utilization with overloaded hot edges.
  birp::workload::GeneratorConfig wl;
  wl.slots = slots;
  wl.mean_per_edge = birp::workload::suggested_mean_per_edge(cluster, 0.65);
  const auto trace = birp::workload::generate(cluster, wl);
  std::cout << "trace: " << trace.total() << " requests over " << slots
            << " slots\n";

  // 3. Run BIRP online (MAB-tuned TIR, per-slot MILP redistribution).
  birp::core::BirpScheduler birp(cluster);
  birp::sim::Simulator simulator(cluster, trace);
  const auto metrics = simulator.run(birp);

  // 4. Headline numbers.
  birp::util::TextTable table({"metric", "value"});
  table.add_row({"requests", std::to_string(metrics.total_requests())});
  table.add_row({"SLO failure p%", birp::util::fixed(metrics.failure_percent(), 2)});
  table.add_row({"total loss", birp::util::fixed(metrics.total_loss(), 1)});
  table.add_row({"mean completion (tau)",
                 birp::util::fixed(metrics.completion().quantile(0.5), 3)});
  table.add_row({"p99 completion (tau)",
                 birp::util::fixed(metrics.completion().quantile(0.99), 3)});
  table.add_row({"mean edge busy",
                 birp::util::fixed(metrics.edge_busy().mean(), 3)});
  table.add_row({"dropped", std::to_string(metrics.dropped())});
  table.print(std::cout, "BIRP quickstart (" + std::to_string(slots) + " slots)");
  return 0;
}
