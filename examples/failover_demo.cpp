// Fault injection and failover in a nutshell: crash one edge mid-run and
// watch BIRP reroute around it — first with orphans failing terminally,
// then with failover re-admitting them at the surviving edges.
//
//   ./examples/failover_demo
#include <iostream>
#include <sstream>

#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"
#include "birp/fault/fault_plan.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/util/table.hpp"
#include "birp/workload/generator.hpp"

int main() {
  const auto cluster = birp::device::ClusterSpec::paper_small();

  birp::workload::GeneratorConfig trace_config;
  trace_config.slots = 60;
  trace_config.mean_per_edge =
      birp::workload::suggested_mean_per_edge(cluster, 0.6);
  const auto trace = birp::workload::generate(cluster, trace_config);

  // Edge 1 goes dark for slots [15, 30). Everything routed there in that
  // window — local arrivals, imports in transit — is orphaned.
  const auto plan = birp::fault::FaultPlan::single_edge_crash(1, 15, 30);

  // Plans are pure data and round-trip through CSV, so scenarios can be
  // authored in a spreadsheet and replayed bit-for-bit.
  std::ostringstream csv;
  plan.write_csv(csv);
  std::cout << "fault plan (CSV form):\n" << csv.str() << '\n';

  const auto run = [&](bool failover) {
    birp::sim::SimulatorConfig config;
    config.fault_plan = plan;
    config.failover.enabled = failover;
    config.failover.retry_budget = 1;
    birp::core::BirpScheduler scheduler(cluster);
    birp::sim::Simulator simulator(cluster, trace, config);
    return simulator.run(scheduler);
  };
  const auto terminal = run(false);
  const auto readmit = run(true);

  birp::util::TextTable table(
      {"metric", "orphans terminal", "failover (budget 1)"});
  const auto row = [&](const std::string& name, auto get) {
    table.add_row({name, get(terminal), get(readmit)});
  };
  row("SLO failure p%", [](const birp::metrics::RunMetrics& m) {
    return birp::util::fixed(m.failure_percent(), 2);
  });
  row("orphaned for good", [](const birp::metrics::RunMetrics& m) {
    return std::to_string(m.orphan_dropped());
  });
  row("failover retries", [](const birp::metrics::RunMetrics& m) {
    return std::to_string(m.retries());
  });
  row("total loss", [](const birp::metrics::RunMetrics& m) {
    return birp::util::fixed(m.total_loss(), 1);
  });
  row("availability %", [](const birp::metrics::RunMetrics& m) {
    return birp::util::fixed(m.availability_percent(), 2);
  });
  row("edge 1 downtime (slots)", [](const birp::metrics::RunMetrics& m) {
    return std::to_string(m.downtime_slots(1));
  });
  table.print(std::cout, "single-edge crash, slots [15, 30)");

  std::cout << "\nFailover re-admits the crashed edge's requests at the "
               "surviving edges next\nslot (one retry each), so far fewer "
               "requests are lost outright.\n";
  return 0;
}
