// Deterministic chaos harness for the self-healing cluster control plane.
//
// One seeded correlated-failure storm (rack-grouped outages, staggered
// recovery, bandwidth collapse on survivors, a few mid-outage flaps) lands on
// top of a flash-crowd demand spike, and four arms replay the exact same
// trace through the simulator:
//
//   no-fault        ControlPlane, empty fault plan      (reference goodput)
//   storm-heal/t1   ControlPlane under the storm, cell_threads = 1
//   storm-heal/tN   same arm at cell_threads = N        (bit-identity check)
//   storm-frozen    static CellScheduler under the same storm (no healing)
//
// Emits BENCH_chaos.json; CI runs `bench_chaos --quick --check` and archives
// the JSON. --check fails (exit 1) unless, at the default geometry:
//   * every arm conserves requests exactly (metrics total == trace total),
//   * heal decisions are bit-identical at 1 vs N cell threads,
//   * storm availability >= the gate threshold,
//   * post-recovery goodput of the healed arm >= 80% of the no-fault arm,
//   * the control plane actually healed (>= 1 repartition and >= 1 closed
//     failure event with a finite MTTR).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"

#include "birp/cluster/cell_scheduler.hpp"
#include "birp/cluster/control_plane.hpp"
#include "birp/cluster/partition.hpp"
#include "birp/fault/fault_plan.hpp"
#include "birp/workload/topology.hpp"

namespace {

struct ArmResult {
  std::string name;
  int threads = 1;
  bool healed = false;  ///< control plane (vs frozen partition)
  std::int64_t total_requests = 0;
  std::int64_t served = 0;
  std::int64_t dropped = 0;
  std::int64_t orphaned = 0;
  std::int64_t retried = 0;
  bool conservation_ok = false;
  double availability = 100.0;
  std::int64_t repartitions = 0;
  std::int64_t requests_at_risk = 0;
  std::int64_t failure_events = 0;
  double mttr_mean_slots = 0.0;
  std::int64_t watchdog_trips = 0;
  std::int64_t degraded_cell_slots = 0;
  double decide_ms_total = 0.0;
  std::vector<std::int64_t> served_per_slot;
  std::vector<birp::sim::SlotDecision> decisions;  ///< for bit-compare
};

bool decisions_equal(const birp::sim::SlotDecision& a,
                     const birp::sim::SlotDecision& b) {
  if (a.served.raw() != b.served.raw()) return false;
  if (a.kernel.raw() != b.kernel.raw()) return false;
  if (a.drops.raw() != b.drops.raw()) return false;
  if (a.pad_partial_launches != b.pad_partial_launches) return false;
  if (a.flows.size() != b.flows.size()) return false;
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    if (a.flows[f].app != b.flows[f].app || a.flows[f].from != b.flows[f].from ||
        a.flows[f].to != b.flows[f].to || a.flows[f].count != b.flows[f].count) {
      return false;
    }
  }
  return true;
}

birp::cluster::ControlPlaneConfig control_plane_config(int cells,
                                                       int threads) {
  birp::cluster::ControlPlaneConfig config;
  config.partition.cells = cells;
  config.cell.cell_threads = threads;
  config.cell.watchdog.enabled = true;
  config.health.down_after_misses = 2;
  config.health.up_after_beats = 2;
  config.churn_threshold = 2;
  config.cooldown_slots = 6;
  return config;
}

ArmResult run_arm(const std::string& name,
                  const birp::bench::Scenario& scenario,
                  const birp::workload::Topology& topology,
                  const birp::fault::FaultPlan& plan, bool healed, int cells,
                  int threads) {
  birp::sim::SimulatorConfig sc;
  sc.fault_plan = plan;
  sc.failover.enabled = true;
  sc.failover.retry_budget = 2;
  birp::sim::Simulator simulator(scenario.cluster, scenario.trace, sc);

  std::unique_ptr<birp::sim::Scheduler> scheduler;
  birp::cluster::ControlPlane* plane = nullptr;
  birp::cluster::CellScheduler* frozen = nullptr;
  if (healed) {
    auto cp = std::make_unique<birp::cluster::ControlPlane>(
        scenario.cluster, &topology.link_mbps,
        control_plane_config(cells, threads));
    plane = cp.get();
    scheduler = std::move(cp);
  } else {
    birp::cluster::PartitionConfig pc;
    pc.cells = cells;
    birp::cluster::CellSchedulerConfig cc;
    cc.cell_threads = threads;
    auto cs = std::make_unique<birp::cluster::CellScheduler>(
        scenario.cluster,
        birp::cluster::partition_cluster(scenario.cluster, &topology.link_mbps,
                                         pc),
        cc);
    frozen = cs.get();
    scheduler = std::move(cs);
  }

  ArmResult result;
  result.name = name;
  result.threads = threads;
  result.healed = healed;
  birp::metrics::RunMetrics metrics(scenario.trace.slots());
  for (int t = 0; t < scenario.trace.slots(); ++t) {
    const auto start = std::chrono::steady_clock::now();
    auto slot = simulator.step(*scheduler, &metrics);
    result.decide_ms_total +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    result.served += slot.served;
    result.served_per_slot.push_back(slot.served);
    result.decisions.push_back(std::move(slot.decision));
  }
  simulator.finish(*scheduler, metrics);
  if (plane != nullptr) plane->export_metrics(metrics);

  result.total_requests = metrics.total_requests();
  result.dropped = metrics.dropped();
  result.orphaned = metrics.orphan_dropped();
  result.retried = metrics.retries();
  result.conservation_ok =
      metrics.total_requests() == scenario.trace.total();
  result.availability = metrics.availability_percent();
  result.repartitions = metrics.repartitions();
  result.requests_at_risk = metrics.requests_at_risk();
  result.failure_events = metrics.failure_events();
  result.mttr_mean_slots = metrics.mttr_slots().mean();
  const auto& cell_sched =
      plane != nullptr ? plane->scheduler() : *frozen;
  result.watchdog_trips = cell_sched.watchdog_trips();
  result.degraded_cell_slots = cell_sched.degraded_cell_slots();
  return result;
}

void write_json(const std::string& path, const birp::bench::Cli& cli,
                int edges, int incidents, int recovered_by,
                const std::vector<ArmResult>& results, bool bit_identical,
                double recovery_ratio, double availability_gate) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"bench\": \"bench_chaos\",\n";
  out << "  \"edges\": " << edges << ",\n";
  out << "  \"slots\": " << cli.slots << ",\n";
  out << "  \"target\": " << cli.target << ",\n";
  out << "  \"seed\": " << cli.seed << ",\n";
  out << "  \"storm_incidents\": " << incidents << ",\n";
  out << "  \"storm_recovered_by_slot\": " << recovered_by << ",\n";
  out << "  \"arms\": [\n";
  for (std::size_t c = 0; c < results.size(); ++c) {
    const auto& r = results[c];
    out << "    {\n";
    out << "      \"name\": \"" << r.name << "\",\n";
    out << "      \"cell_threads\": " << r.threads << ",\n";
    out << "      \"healed\": " << (r.healed ? "true" : "false") << ",\n";
    out << "      \"total_requests\": " << r.total_requests << ",\n";
    out << "      \"served\": " << r.served << ",\n";
    out << "      \"dropped\": " << r.dropped << ",\n";
    out << "      \"orphan_dropped\": " << r.orphaned << ",\n";
    out << "      \"retries\": " << r.retried << ",\n";
    out << "      \"conservation_ok\": "
        << (r.conservation_ok ? "true" : "false") << ",\n";
    out << "      \"availability_percent\": " << r.availability << ",\n";
    out << "      \"repartitions\": " << r.repartitions << ",\n";
    out << "      \"requests_at_risk\": " << r.requests_at_risk << ",\n";
    out << "      \"failure_events\": " << r.failure_events << ",\n";
    out << "      \"mttr_mean_slots\": " << r.mttr_mean_slots << ",\n";
    out << "      \"watchdog_trips\": " << r.watchdog_trips << ",\n";
    out << "      \"degraded_cell_slots\": " << r.degraded_cell_slots << ",\n";
    out << "      \"decide_ms_total\": " << r.decide_ms_total << "\n";
    out << "    }" << (c + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"bit_identical_across_threads\": "
      << (bit_identical ? "true" : "false") << ",\n";
  out << "  \"post_recovery_goodput_ratio\": " << recovery_ratio << ",\n";
  out << "  \"availability_gate_percent\": " << availability_gate << "\n";
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = birp::bench::Cli::parse(argc, argv, /*default_slots=*/96,
                                     /*default_target=*/0.5);
  std::string json_path = "BENCH_chaos.json";
  int edges = 24;
  int cells = 4;
  int threads = 8;
  double availability_gate = 80.0;
  bool quick = false;
  bool check = false;
  for (int a = 1; a < argc; ++a) {
    const std::string flag = argv[a];
    if (flag == "--quick") {
      quick = true;
      cli.slots = 48;
    } else if (flag == "--json" && a + 1 < argc) {
      json_path = argv[++a];
    } else if (flag == "--edges" && a + 1 < argc) {
      edges = std::atoi(argv[++a]);
    } else if (flag == "--cells" && a + 1 < argc) {
      cells = std::atoi(argv[++a]);
    } else if (flag == "--threads" && a + 1 < argc) {
      threads = std::atoi(argv[++a]);
    } else if (flag == "--availability-gate" && a + 1 < argc) {
      availability_gate = std::atof(argv[++a]);
    } else if (flag == "--check") {
      check = true;
    }
  }

  birp::workload::TopologyConfig tc;
  tc.edges = edges;
  tc.apps = 6;
  tc.variants_per_app = 2;
  tc.seed = cli.seed;
  const auto topology = birp::workload::generate_topology(tc);
  auto cluster = birp::workload::make_cluster(topology, tc);

  // Flash-crowd overlay: the storm lands mid-spike (worst case — lost
  // capacity exactly when demand peaks).
  birp::workload::GeneratorConfig gc;
  gc.slots = cli.slots;
  gc.seed = cli.seed;
  gc.mean_per_edge =
      birp::workload::suggested_mean_per_edge(cluster, cli.target);
  gc.flash_start = cli.slots / 4;
  gc.flash_duration = std::max(4, cli.slots / 4);
  gc.flash_scale = 1.5;
  auto trace = birp::workload::generate(cluster, gc);
  const birp::bench::Scenario scenario{std::move(cluster), std::move(trace)};

  // Seeded storm over the first 2/3 of the horizon: the final third is the
  // guaranteed-recovered window the goodput gate measures in.
  birp::fault::CorrelatedFailureOptions co;
  co.slots = 2 * cli.slots / 3;
  co.devices = edges;
  co.seed = cli.seed ^ 0x57023;
  co.group_size = std::max(2, edges / cells);
  co.group_fraction = 0.75;
  co.storm_rate = 0.08;
  co.min_outage_slots = 6;
  co.max_outage_slots = 12;
  co.recovery_stagger_slots = 1;
  co.rescue_fraction = 0.25;
  co.cooldown_slots = 8;
  const auto plan = birp::fault::FaultPlan::generate_correlated(co);
  int recovered_by = 0;
  for (const auto& e : plan.events()) {
    if (e.kind == birp::fault::FaultKind::kDown) {
      recovered_by = std::max(recovered_by, e.to_slot);
    }
  }

  std::vector<ArmResult> results;
  results.push_back(run_arm("no-fault", scenario, topology,
                            birp::fault::FaultPlan{}, /*healed=*/true, cells,
                            1));
  results.push_back(run_arm("storm-heal/t1", scenario, topology, plan, true,
                            cells, 1));
  results.push_back(run_arm("storm-heal/t" + std::to_string(threads),
                            scenario, topology, plan, true, cells, threads));
  if (!quick) {
    results.push_back(run_arm("storm-frozen", scenario, topology, plan,
                              /*healed=*/false, cells, 1));
  }

  const auto& clean = results[0];
  const auto& heal_t1 = results[1];
  const auto& heal_tn = results[2];
  bool bit_identical =
      heal_t1.decisions.size() == heal_tn.decisions.size();
  for (std::size_t t = 0; bit_identical && t < heal_t1.decisions.size(); ++t) {
    bit_identical = decisions_equal(heal_t1.decisions[t], heal_tn.decisions[t]);
  }

  // Recovery-time objective: once every outage has ended, the healed cluster
  // should serve (nearly) like the never-failed one.
  std::int64_t clean_window = 0;
  std::int64_t heal_window = 0;
  for (int t = recovered_by; t < cli.slots; ++t) {
    clean_window += clean.served_per_slot[static_cast<std::size_t>(t)];
    heal_window += heal_t1.served_per_slot[static_cast<std::size_t>(t)];
  }
  const double recovery_ratio =
      clean_window > 0 ? static_cast<double>(heal_window) /
                             static_cast<double>(clean_window)
                       : 1.0;

  birp::util::TextTable table(
      {"arm", "threads", "served", "dropped", "orphaned", "conserved",
       "avail %", "reparts", "at-risk", "MTTR", "wd trips", "total ms"});
  for (const auto& r : results) {
    table.add_row(
        {r.name, std::to_string(r.threads), std::to_string(r.served),
         std::to_string(r.dropped), std::to_string(r.orphaned),
         r.conservation_ok ? "yes" : "NO",
         birp::util::fixed(r.availability, 2), std::to_string(r.repartitions),
         std::to_string(r.requests_at_risk),
         r.failure_events > 0 ? birp::util::fixed(r.mttr_mean_slots, 1) : "-",
         std::to_string(r.watchdog_trips),
         birp::util::fixed(r.decide_ms_total, 1)});
  }
  table.print(std::cout, "bench_chaos — " + std::to_string(edges) +
                             " edges, " + std::to_string(cli.slots) +
                             " slots, " + std::to_string(plan.num_incidents()) +
                             " storm incidents");
  std::cout << "\npost-recovery goodput ratio (heal vs no-fault): "
            << birp::util::fixed(recovery_ratio, 3)
            << ", bit-identical t1 vs t" << threads << ": "
            << (bit_identical ? "yes" : "NO") << "\n";

  write_json(json_path, cli, edges, plan.num_incidents(), recovered_by,
             results, bit_identical, recovery_ratio, availability_gate);
  std::cout << "wrote " << json_path << "\n";

  if (check) {
    bool ok = true;
    for (const auto& r : results) {
      if (!r.conservation_ok) {
        std::cerr << "FAIL: " << r.name << " lost requests ("
                  << r.total_requests << " accounted vs "
                  << scenario.trace.total() << " offered)\n";
        ok = false;
      }
    }
    if (!bit_identical) {
      std::cerr << "FAIL: heal decisions differ between 1 and " << threads
                << " cell threads\n";
      ok = false;
    }
    if (heal_t1.availability < availability_gate) {
      std::cerr << "FAIL: storm availability "
                << birp::util::fixed(heal_t1.availability, 2) << "% < "
                << availability_gate << "%\n";
      ok = false;
    }
    if (recovery_ratio < 0.80) {
      std::cerr << "FAIL: post-recovery goodput ratio "
                << birp::util::fixed(recovery_ratio, 3) << " < 0.80\n";
      ok = false;
    }
    if (heal_t1.repartitions < 1 || heal_t1.failure_events < 1) {
      std::cerr << "FAIL: control plane never healed (repartitions "
                << heal_t1.repartitions << ", failure events "
                << heal_t1.failure_events << ")\n";
      ok = false;
    }
    if (!ok) return 1;
  }
  return 0;
}
