// Fig. 6: small-scale evaluation — one application, three model variants,
// TIR profiled offline for BIRP-OFF. Reproduces:
//   (a) the completion-time CDF of BIRP / BIRP-OFF / OAEI / MAX,
//   (b) per-slot inference loss,
//   (c) cumulative inference loss,
// plus the text claims (BIRP/OFF failure ~2% vs OAEI ~10x that; OAEI's CDF
// dense below 0.3 then sparse; MAX's CDF right-skewed).
//
//   ./bench_fig6 [--slots N] [--target X] [--seed S]
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  const auto cli = birp::bench::Cli::parse(argc, argv, /*default_slots=*/300,
                                           /*default_target=*/0.7);
  auto scenario =
      birp::bench::make_scenario(birp::device::ClusterSpec::paper_small(), cli);
  std::cout << "Fig. 6 small-scale run: 1 application x 3 models, "
            << scenario.trace.total() << " requests over " << cli.slots
            << " slots\n\n";

  birp::core::BirpScheduler birp(scenario.cluster);
  auto birp_off = birp::core::BirpScheduler::offline(scenario.cluster);
  birp::sched::OaeiScheduler oaei(scenario.cluster);
  birp::sched::MaxScheduler max(scenario.cluster);

  const auto m_birp = birp::bench::run_algorithm(scenario, birp);
  const auto m_off = birp::bench::run_algorithm(scenario, birp_off);
  const auto m_oaei = birp::bench::run_algorithm(scenario, oaei);
  const auto m_max = birp::bench::run_algorithm(scenario, max);

  const std::vector<std::pair<std::string, const birp::metrics::RunMetrics*>>
      runs{{"BIRP", &m_birp},
           {"BIRP-OFF", &m_off},
           {"OAEI", &m_oaei},
           {"MAX", &m_max}};

  birp::bench::print_cdf(std::cout,
                         "Fig. 6a — completion-time CDF (units of tau)", runs);
  std::cout << '\n';
  birp::bench::print_loss_series(std::cout, "Fig. 6b/6c", runs);
  std::cout << '\n';
  birp::bench::print_summary(std::cout, "Fig. 6 summary", runs);

  std::cout << "\nHeadline checks (paper section 5.4, small scale):\n"
            << "  BIRP failure p% / OAEI failure p% = "
            << birp::util::fixed(
                   m_birp.failure_percent() /
                       std::max(1e-9, m_oaei.failure_percent()),
                   3)
            << "  (paper: ~0.19, i.e. 1.9% vs 10.0%)\n"
            << "  BIRP-OFF vs BIRP cumulative loss gap = "
            << birp::util::fixed(m_birp.total_loss() - m_off.total_loss(), 1)
            << "  (paper: small and shrinking over time)\n"
            << "  OAEI CDF at 0.3 tau = "
            << birp::util::fixed(m_oaei.completion().cdf(0.3), 3)
            << " vs MAX " << birp::util::fixed(m_max.completion().cdf(0.3), 3)
            << "  (paper: OAEI dense early, MAX the opposite)\n";
  return 0;
}
