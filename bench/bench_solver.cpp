// Solver perf sweep: the tracked baseline for per-slot MILP solving.
//
// Replays a paper_large slot sequence through BirpScheduler::decide under
// three solver configurations —
//   cold-serial    warm starts off, one node LP at a time (the pre-warm-start
//                  solver, kept as the comparison baseline)
//   warm-serial    parent-basis + cross-slot warm starts, serial waves
//   warm-parallel  warm starts plus wave-parallel node LPs on a thread pool
// — and emits BENCH_solver.json with per-config node/pivot totals and
// decide-latency percentiles. CI runs `bench_solver --quick` and archives the
// JSON, so the solver's perf trajectory is tracked PR over PR; the committed
// BENCH_solver.json at the repo root is the current baseline.
//
// Decisions are bit-identical across thread counts by construction (see
// branch_and_bound.hpp), so the configs differ in speed, not in policy.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"

#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"
#include "birp/util/stats.hpp"

namespace {

struct ConfigResult {
  std::string name;
  std::int64_t nodes = 0;
  std::int64_t simplex_pivots = 0;
  std::int64_t factor_pivots = 0;
  std::int64_t warm_lp_solves = 0;
  std::int64_t cold_lp_solves = 0;
  std::int64_t fallbacks = 0;
  double decide_ms_total = 0.0;
  double decide_ms_p50 = 0.0;
  double decide_ms_p95 = 0.0;
};

ConfigResult run_config(const std::string& name,
                        const birp::bench::Scenario& scenario, bool warm,
                        int threads) {
  birp::core::BirpConfig config;
  config.solver.warm_start = warm;
  if (!warm) config.solver.wave_size = 1;  // the classic serial loop
  config.solver_threads = threads;
  // Offline beliefs keep the three runs on identical problems (no online
  // estimator state drifting with feedback ordering).
  auto scheduler = birp::core::BirpScheduler::offline(scenario.cluster, config);

  const int apps = scenario.cluster.num_apps();
  const int devices = scenario.cluster.num_devices();
  birp::sim::SlotDecision previous(apps, scenario.cluster.zoo().max_variants(),
                                   devices);
  std::vector<double> decide_ms;
  decide_ms.reserve(static_cast<std::size_t>(scenario.trace.slots()));
  for (int t = 0; t < scenario.trace.slots(); ++t) {
    birp::sim::SlotState state;
    state.slot = t;
    state.demand = birp::util::Grid2<std::int64_t>(apps, devices, 0);
    for (int i = 0; i < apps; ++i) {
      for (int k = 0; k < devices; ++k) {
        state.demand(i, k) = scenario.trace.at(t, i, k);
      }
    }
    state.previous = t == 0 ? nullptr : &previous;

    const auto start = std::chrono::steady_clock::now();
    auto decision = scheduler.decide(state);
    const auto stop = std::chrono::steady_clock::now();
    decide_ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
    previous = std::move(decision);
  }

  ConfigResult result;
  result.name = name;
  result.nodes = scheduler.total_nodes();
  result.simplex_pivots = scheduler.total_pivots();
  result.factor_pivots = scheduler.total_factor_pivots();
  result.warm_lp_solves = scheduler.warm_lp_solves();
  result.cold_lp_solves = scheduler.cold_lp_solves();
  result.fallbacks = scheduler.fallback_count();
  for (const double ms : decide_ms) result.decide_ms_total += ms;
  result.decide_ms_p50 = birp::util::percentile(decide_ms, 0.5);
  result.decide_ms_p95 = birp::util::percentile(decide_ms, 0.95);
  return result;
}

void write_json(const std::string& path, const birp::bench::Cli& cli,
                int threads, const std::vector<ConfigResult>& results) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"bench\": \"bench_solver\",\n";
  out << "  \"cluster\": \"paper_large\",\n";
  out << "  \"slots\": " << cli.slots << ",\n";
  out << "  \"target\": " << cli.target << ",\n";
  out << "  \"seed\": " << cli.seed << ",\n";
  out << "  \"threads\": " << threads << ",\n";
  out << "  \"configs\": [\n";
  for (std::size_t c = 0; c < results.size(); ++c) {
    const auto& r = results[c];
    out << "    {\n";
    out << "      \"name\": \"" << r.name << "\",\n";
    out << "      \"nodes\": " << r.nodes << ",\n";
    out << "      \"simplex_pivots\": " << r.simplex_pivots << ",\n";
    out << "      \"factor_pivots\": " << r.factor_pivots << ",\n";
    out << "      \"warm_lp_solves\": " << r.warm_lp_solves << ",\n";
    out << "      \"cold_lp_solves\": " << r.cold_lp_solves << ",\n";
    out << "      \"fallbacks\": " << r.fallbacks << ",\n";
    out << "      \"decide_ms_total\": " << r.decide_ms_total << ",\n";
    out << "      \"decide_ms_p50\": " << r.decide_ms_p50 << ",\n";
    out << "      \"decide_ms_p95\": " << r.decide_ms_p95 << "\n";
    out << "    }" << (c + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  const double cold = static_cast<double>(results.front().simplex_pivots);
  out << "  \"pivot_reduction_vs_cold\": {";
  for (std::size_t c = 1; c < results.size(); ++c) {
    const double mine = static_cast<double>(results[c].simplex_pivots);
    out << (c > 1 ? ", " : "") << "\"" << results[c].name
        << "\": " << (mine > 0.0 ? cold / mine : 0.0);
  }
  out << "}\n";
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = birp::bench::Cli::parse(argc, argv, /*default_slots=*/40,
                                     /*default_target=*/0.55);
  std::string json_path = "BENCH_solver.json";
  int threads = 4;
  bool check = false;
  for (int a = 1; a < argc; ++a) {
    const std::string flag = argv[a];
    if (flag == "--quick") {
      cli.slots = 12;
    } else if (flag == "--json" && a + 1 < argc) {
      json_path = argv[++a];
    } else if (flag == "--threads" && a + 1 < argc) {
      threads = std::atoi(argv[++a]);
    } else if (flag == "--check") {
      check = true;  // fail (exit 1) unless warm halves the pivot count
    }
  }

  const auto scenario = birp::bench::make_scenario(
      birp::device::ClusterSpec::paper_large(), cli);

  std::vector<ConfigResult> results;
  results.push_back(run_config("cold-serial", scenario, false, 0));
  results.push_back(run_config("warm-serial", scenario, true, 0));
  results.push_back(run_config("warm-parallel", scenario, true, threads));

  birp::util::TextTable table({"config", "nodes", "simplex pivots",
                               "factor pivots", "warm LPs", "cold LPs",
                               "decide p50 ms", "decide p95 ms", "total ms"});
  for (const auto& r : results) {
    table.add_row({r.name, std::to_string(r.nodes),
                   std::to_string(r.simplex_pivots),
                   std::to_string(r.factor_pivots),
                   std::to_string(r.warm_lp_solves),
                   std::to_string(r.cold_lp_solves),
                   birp::util::fixed(r.decide_ms_p50, 3),
                   birp::util::fixed(r.decide_ms_p95, 3),
                   birp::util::fixed(r.decide_ms_total, 1)});
  }
  table.print(std::cout, "bench_solver — paper_large, " +
                             std::to_string(cli.slots) + " slots");

  write_json(json_path, cli, threads, results);
  std::cout << "\nwrote " << json_path << "\n";

  const double cold = static_cast<double>(results[0].simplex_pivots);
  const double warm = static_cast<double>(results[1].simplex_pivots);
  const double reduction = warm > 0.0 ? cold / warm : 0.0;
  std::cout << "warm-path pivot reduction vs cold: " << birp::util::fixed(
                   reduction, 2)
            << "x\n";
  if (check && reduction < 2.0) {
    std::cerr << "FAIL: warm starts reduced simplex pivots by only "
              << birp::util::fixed(reduction, 2) << "x (< 2x)\n";
    return 1;
  }
  return 0;
}
