// Solver perf sweep: the tracked baseline for per-slot MILP solving.
//
// Replays slot sequences through BirpScheduler::decide under five solver
// arms —
//   cold-serial        warm starts off, one node LP at a time (the
//                      pre-warm-start solver, kept as the comparison baseline)
//   warm-serial        parent-basis + cross-slot warm starts, serial waves
//   warm-parallel      warm starts plus wave-parallel node LPs on a pool
//   dense-warm-serial  warm-serial on the dense-tableau reference engine
//                      (the regression baseline for the sparse rewrite)
//   sparse-large       a synthetic 100-edge x 20-app cluster scheduled the
//                      way the repo schedules large clusters: CellScheduler
//                      sharding (10 cells), warm-started sparse node LPs per
//                      cell, cells solved on a pool. The dense engine cannot
//                      touch this scale (the monolithic tableau alone would
//                      be ~1 GB per node LP)
// — and emits BENCH_solver.json with per-arm node/pivot totals and
// decide-latency percentiles. CI runs `bench_solver --quick --check` and
// archives the JSON, so the solver's perf trajectory is tracked PR over PR;
// the committed BENCH_solver.json at the repo root is the current baseline.
//
// Decisions are bit-identical across thread counts by construction (see
// branch_and_bound.hpp). The sparse and dense engines are additionally
// asserted bit-identical on paper_large: the bench compares the full
// SlotDecision stream (served/kernel/drops grids and flow lists) between
// warm-serial and dense-warm-serial and `--check` fails on any divergence.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"

#include "birp/cluster/cell_scheduler.hpp"
#include "birp/cluster/partition.hpp"
#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"
#include "birp/util/stats.hpp"
#include "birp/workload/topology.hpp"

namespace {

struct ConfigResult {
  std::string name;
  std::string cluster;
  std::string algorithm;
  int cells = 1;  ///< scheduler shards (1 = monolithic BirpScheduler)
  std::int64_t nodes = 0;
  std::int64_t simplex_pivots = 0;
  std::int64_t factor_pivots = 0;
  std::int64_t warm_lp_solves = 0;
  std::int64_t cold_lp_solves = 0;
  std::int64_t fallbacks = 0;
  double decide_ms_total = 0.0;
  double decide_ms_p50 = 0.0;
  double decide_ms_p95 = 0.0;
  std::vector<birp::sim::SlotDecision> decisions;  ///< for bit-compare
};

bool decisions_equal(const birp::sim::SlotDecision& a,
                     const birp::sim::SlotDecision& b) {
  if (a.served.raw() != b.served.raw()) return false;
  if (a.kernel.raw() != b.kernel.raw()) return false;
  if (a.drops.raw() != b.drops.raw()) return false;
  if (a.pad_partial_launches != b.pad_partial_launches) return false;
  if (a.flows.size() != b.flows.size()) return false;
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    if (a.flows[f].app != b.flows[f].app || a.flows[f].from != b.flows[f].from ||
        a.flows[f].to != b.flows[f].to || a.flows[f].count != b.flows[f].count) {
      return false;
    }
  }
  return true;
}

ConfigResult run_config(const std::string& name, const std::string& cluster,
                        const birp::bench::Scenario& scenario, bool warm,
                        int threads,
                        birp::solver::SimplexAlgorithm algorithm =
                            birp::solver::SimplexAlgorithm::SparseRevised) {
  birp::core::BirpConfig config;
  config.solver.warm_start = warm;
  if (!warm) config.solver.wave_size = 1;  // the classic serial loop
  config.solver_threads = threads;
  config.solver.lp.algorithm = algorithm;
  // Offline beliefs keep the arms on identical problems (no online
  // estimator state drifting with feedback ordering).
  auto scheduler = birp::core::BirpScheduler::offline(scenario.cluster, config);

  const int apps = scenario.cluster.num_apps();
  const int devices = scenario.cluster.num_devices();
  birp::sim::SlotDecision previous(apps, scenario.cluster.zoo().max_variants(),
                                   devices);
  ConfigResult result;
  result.name = name;
  result.cluster = cluster;
  result.algorithm =
      algorithm == birp::solver::SimplexAlgorithm::SparseRevised
          ? "sparse-revised"
          : "dense-tableau";
  std::vector<double> decide_ms;
  decide_ms.reserve(static_cast<std::size_t>(scenario.trace.slots()));
  for (int t = 0; t < scenario.trace.slots(); ++t) {
    birp::sim::SlotState state;
    state.slot = t;
    state.demand = birp::util::Grid2<std::int64_t>(apps, devices, 0);
    for (int i = 0; i < apps; ++i) {
      for (int k = 0; k < devices; ++k) {
        state.demand(i, k) = scenario.trace.at(t, i, k);
      }
    }
    state.previous = t == 0 ? nullptr : &previous;

    const auto start = std::chrono::steady_clock::now();
    auto decision = scheduler.decide(state);
    const auto stop = std::chrono::steady_clock::now();
    decide_ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
    result.decisions.push_back(decision);
    previous = std::move(decision);
  }

  result.nodes = scheduler.total_nodes();
  result.simplex_pivots = scheduler.total_pivots();
  result.factor_pivots = scheduler.total_factor_pivots();
  result.warm_lp_solves = scheduler.warm_lp_solves();
  result.cold_lp_solves = scheduler.cold_lp_solves();
  result.fallbacks = scheduler.fallback_count();
  for (const double ms : decide_ms) result.decide_ms_total += ms;
  result.decide_ms_p50 = birp::util::percentile(decide_ms, 0.5);
  result.decide_ms_p95 = birp::util::percentile(decide_ms, 0.95);
  return result;
}

// The large arm runs the way the repo actually schedules clusters of this
// size: sharded through CellScheduler (one warm-started BirpScheduler per
// partition cell, cells solved concurrently), with the sparse engine inside
// every cell. Counters are summed over cells so the JSON stays comparable
// with the monolithic arms.
ConfigResult run_large_config(const std::string& name,
                              const std::string& cluster,
                              const birp::bench::Scenario& scenario,
                              const birp::workload::Topology& topology,
                              int cells, int threads) {
  birp::cluster::PartitionConfig pc;
  pc.cells = cells;
  auto partition = birp::cluster::partition_cluster(scenario.cluster,
                                                    &topology.link_mbps, pc);

  birp::cluster::CellSchedulerConfig cc;
  cc.birp.solver.warm_start = true;
  cc.birp.solver.lp.algorithm = birp::solver::SimplexAlgorithm::SparseRevised;
  // Same real-time pivot budget bench_cluster uses for its sharded arms: a
  // cell that blows past it falls back to the greedy repair instead of
  // blocking the slot deadline.
  cc.birp.solver.lp.max_iterations = 3000;
  cc.cell_threads = threads;
  cc.offline = true;  // identical problems across runs, as in the other arms
  birp::cluster::CellScheduler scheduler(scenario.cluster, std::move(partition),
                                         cc);

  const int apps = scenario.cluster.num_apps();
  const int devices = scenario.cluster.num_devices();
  birp::sim::SlotDecision previous(apps, scenario.cluster.zoo().max_variants(),
                                   devices);
  ConfigResult result;
  result.name = name;
  result.cluster = cluster;
  result.algorithm = "sparse-revised";
  result.cells = cells;
  std::vector<double> decide_ms;
  decide_ms.reserve(static_cast<std::size_t>(scenario.trace.slots()));
  for (int t = 0; t < scenario.trace.slots(); ++t) {
    birp::sim::SlotState state;
    state.slot = t;
    state.demand = birp::util::Grid2<std::int64_t>(apps, devices, 0);
    for (int i = 0; i < apps; ++i) {
      for (int k = 0; k < devices; ++k) {
        state.demand(i, k) = scenario.trace.at(t, i, k);
      }
    }
    state.previous = t == 0 ? nullptr : &previous;

    const auto start = std::chrono::steady_clock::now();
    auto decision = scheduler.decide(state);
    const auto stop = std::chrono::steady_clock::now();
    decide_ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
    result.decisions.push_back(decision);
    previous = std::move(decision);
  }

  for (int c = 0; c < scheduler.cells(); ++c) {
    const auto& cell = scheduler.cell(c);
    result.nodes += cell.total_nodes();
    result.simplex_pivots += cell.total_pivots();
    result.factor_pivots += cell.total_factor_pivots();
    result.warm_lp_solves += cell.warm_lp_solves();
    result.cold_lp_solves += cell.cold_lp_solves();
  }
  result.fallbacks = scheduler.fallback_count();
  for (const double ms : decide_ms) result.decide_ms_total += ms;
  result.decide_ms_p50 = birp::util::percentile(decide_ms, 0.5);
  result.decide_ms_p95 = birp::util::percentile(decide_ms, 0.95);
  return result;
}

void write_json(const std::string& path, const birp::bench::Cli& cli,
                int threads, int large_slots,
                const std::vector<ConfigResult>& results,
                bool bit_identical) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"bench\": \"bench_solver\",\n";
  out << "  \"cluster\": \"paper_large\",\n";
  out << "  \"large_cluster\": \"synthetic-100x20\",\n";
  out << "  \"slots\": " << cli.slots << ",\n";
  out << "  \"large_slots\": " << large_slots << ",\n";
  out << "  \"target\": " << cli.target << ",\n";
  out << "  \"seed\": " << cli.seed << ",\n";
  out << "  \"threads\": " << threads << ",\n";
  out << "  \"sparse_dense_bit_identical\": "
      << (bit_identical ? "true" : "false") << ",\n";
  out << "  \"configs\": [\n";
  for (std::size_t c = 0; c < results.size(); ++c) {
    const auto& r = results[c];
    out << "    {\n";
    out << "      \"name\": \"" << r.name << "\",\n";
    out << "      \"cluster\": \"" << r.cluster << "\",\n";
    out << "      \"algorithm\": \"" << r.algorithm << "\",\n";
    out << "      \"cells\": " << r.cells << ",\n";
    out << "      \"nodes\": " << r.nodes << ",\n";
    out << "      \"simplex_pivots\": " << r.simplex_pivots << ",\n";
    out << "      \"factor_pivots\": " << r.factor_pivots << ",\n";
    out << "      \"warm_lp_solves\": " << r.warm_lp_solves << ",\n";
    out << "      \"cold_lp_solves\": " << r.cold_lp_solves << ",\n";
    out << "      \"fallbacks\": " << r.fallbacks << ",\n";
    out << "      \"decide_ms_total\": " << r.decide_ms_total << ",\n";
    out << "      \"decide_ms_p50\": " << r.decide_ms_p50 << ",\n";
    out << "      \"decide_ms_p95\": " << r.decide_ms_p95 << "\n";
    out << "    }" << (c + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  const double cold = static_cast<double>(results.front().simplex_pivots);
  out << "  \"pivot_reduction_vs_cold\": {";
  bool first = true;
  for (std::size_t c = 1; c < results.size(); ++c) {
    if (results[c].cluster != results.front().cluster) continue;
    const double mine = static_cast<double>(results[c].simplex_pivots);
    out << (first ? "" : ", ") << "\"" << results[c].name
        << "\": " << (mine > 0.0 ? cold / mine : 0.0);
    first = false;
  }
  out << "}\n";
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = birp::bench::Cli::parse(argc, argv, /*default_slots=*/40,
                                     /*default_target=*/0.55);
  std::string json_path = "BENCH_solver.json";
  int threads = 4;
  bool check = false;
  bool quick = false;
  for (int a = 1; a < argc; ++a) {
    const std::string flag = argv[a];
    if (flag == "--quick") {
      quick = true;
      cli.slots = 12;
    } else if (flag == "--json" && a + 1 < argc) {
      json_path = argv[++a];
    } else if (flag == "--threads" && a + 1 < argc) {
      threads = std::atoi(argv[++a]);
    } else if (flag == "--check") {
      check = true;  // fail (exit 1) on any regression gate below
    }
  }

  const auto scenario = birp::bench::make_scenario(
      birp::device::ClusterSpec::paper_large(), cli);

  using birp::solver::SimplexAlgorithm;
  std::vector<ConfigResult> results;
  results.push_back(
      run_config("cold-serial", "paper_large", scenario, false, 0));
  results.push_back(
      run_config("warm-serial", "paper_large", scenario, true, 0));
  results.push_back(
      run_config("warm-parallel", "paper_large", scenario, true, threads));
  results.push_back(run_config("dense-warm-serial", "paper_large", scenario,
                               true, 0, SimplexAlgorithm::DenseTableau));

  // Engine bit-identity: the sparse rewrite must not change scheduling
  // policy, only speed. Compare the full decision stream.
  bool bit_identical = true;
  const auto& sparse_warm = results[1];
  const auto& dense_warm = results[3];
  for (std::size_t t = 0; t < sparse_warm.decisions.size(); ++t) {
    if (!decisions_equal(sparse_warm.decisions[t], dense_warm.decisions[t])) {
      bit_identical = false;
      break;
    }
  }

  // The arm the dense engine cannot run: a synthetic 100-edge x 20-app
  // cluster, scheduled through CellScheduler sharding (10 cells of ~10
  // edges) the way ROADMAP's large-cluster path prescribes. Each cell's
  // node LPs run the sparse engine with per-cell warm starts. Fewer slots
  // than paper_large — each decide still spans ten MILPs.
  birp::workload::TopologyConfig topo_config;
  topo_config.edges = 100;
  topo_config.apps = 20;
  topo_config.variants_per_app = 2;
  topo_config.seed = cli.seed;
  const auto topology = birp::workload::generate_topology(topo_config);
  auto large_cli = cli;
  large_cli.slots = quick ? 4 : 10;
  const int large_slots = large_cli.slots;
  const auto large_scenario = birp::bench::make_scenario(
      birp::workload::make_cluster(topology, topo_config), large_cli);
  results.push_back(run_large_config("sparse-large", "synthetic-100x20",
                                     large_scenario, topology, /*cells=*/48,
                                     threads));

  birp::util::TextTable table({"config", "cluster", "engine", "nodes",
                               "simplex pivots", "factor pivots", "warm LPs",
                               "cold LPs", "decide p50 ms", "decide p95 ms",
                               "total ms"});
  for (const auto& r : results) {
    table.add_row({r.name, r.cluster, r.algorithm, std::to_string(r.nodes),
                   std::to_string(r.simplex_pivots),
                   std::to_string(r.factor_pivots),
                   std::to_string(r.warm_lp_solves),
                   std::to_string(r.cold_lp_solves),
                   birp::util::fixed(r.decide_ms_p50, 3),
                   birp::util::fixed(r.decide_ms_p95, 3),
                   birp::util::fixed(r.decide_ms_total, 1)});
  }
  table.print(std::cout, "bench_solver — paper_large " +
                             std::to_string(cli.slots) +
                             " slots, synthetic-100x20 " +
                             std::to_string(large_slots) + " slots");

  write_json(json_path, cli, threads, large_slots, results, bit_identical);
  std::cout << "\nwrote " << json_path << "\n";

  const double cold = static_cast<double>(results[0].simplex_pivots);
  const double warm = static_cast<double>(results[1].simplex_pivots);
  const double reduction = warm > 0.0 ? cold / warm : 0.0;
  std::cout << "warm-path pivot reduction vs cold: "
            << birp::util::fixed(reduction, 2) << "x\n";
  std::cout << "sparse vs dense decisions on paper_large: "
            << (bit_identical ? "bit-identical" : "DIVERGED") << "\n";
  const auto& large = results.back();
  std::cout << "sparse-large decide p95: "
            << birp::util::fixed(large.decide_ms_p95, 1) << " ms\n";

  bool ok = true;
  if (check) {
    if (reduction < 2.0) {
      std::cerr << "FAIL: warm starts reduced simplex pivots by only "
                << birp::util::fixed(reduction, 2) << "x (< 2x)\n";
      ok = false;
    }
    if (!bit_identical) {
      std::cerr << "FAIL: sparse and dense engines diverged on paper_large\n";
      ok = false;
    }
    // Regression gates for the sparse engine against the in-run dense
    // baseline: same pivots (same pricing decisions, small slack for
    // tie-order noise) and no decide-time blowup on the shared cluster.
    const double dense_pivots =
        static_cast<double>(dense_warm.simplex_pivots);
    if (static_cast<double>(sparse_warm.simplex_pivots) >
        1.25 * dense_pivots + 64.0) {
      std::cerr << "FAIL: sparse engine pivot count "
                << sparse_warm.simplex_pivots << " regressed vs dense "
                << dense_warm.simplex_pivots << "\n";
      ok = false;
    }
    if (sparse_warm.decide_ms_total >
        2.0 * dense_warm.decide_ms_total + 50.0) {
      std::cerr << "FAIL: sparse engine decide time "
                << birp::util::fixed(sparse_warm.decide_ms_total, 1)
                << " ms regressed vs dense "
                << birp::util::fixed(dense_warm.decide_ms_total, 1) << " ms\n";
      ok = false;
    }
    if (large.decide_ms_p95 >= 1000.0) {
      std::cerr << "FAIL: sparse-large decide p95 "
                << birp::util::fixed(large.decide_ms_p95, 1)
                << " ms >= 1000 ms on the 100-edge cluster\n";
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
