// Cluster sharding sweep: the tracked baseline for hierarchical scheduling.
//
// Replays a synthetic scale-free topology (workload::generate_topology) slot
// sequence through CellScheduler::decide at 1 / 4 / 16 cells under ONE shared
// per-LP pivot budget. The budget is sized so every arm solves its MILPs to
// completion (the sparse revised-simplex engine makes that feasible even for
// the monolithic tableau; under the old dense engine the monolithic arm could
// only burn the budget and fall back to greedy). What remains is the
// superlinear-simplex gap measured directly in wall time: one cluster-sized
// LP costs far more than 16 cell-sized ones even run serially. That gap, not
// thread parallelism, is the headline: the speedup holds even on one core,
// and cores only widen it.
//
// The 16-cell arm runs at cell_threads 1 and 8 and the two decision streams
// are compared bit-for-bit — the subsystem's defining property (decisions
// are a function of the partition, never of the thread count).
//
// Emits BENCH_cluster.json; CI runs `bench_cluster --quick --check` and
// archives the JSON. The committed BENCH_cluster.json at the repo root is
// the current baseline. --check fails unless, at the default geometry,
//   * 16-cell decide wall-time beats monolithic by >= 3x,
//   * sharded goodput is within 5% of monolithic,
//   * 16-cell decisions are bit-identical at 1 vs 8 cell threads.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"

#include "birp/cluster/cell_scheduler.hpp"
#include "birp/cluster/partition.hpp"
#include "birp/util/stats.hpp"
#include "birp/workload/topology.hpp"

namespace {

struct ArmResult {
  std::string name;
  int cells = 1;
  int threads = 0;
  std::int64_t fallbacks = 0;
  std::int64_t served = 0;
  std::int64_t dropped = 0;
  std::int64_t inter_cell_moved = 0;
  double goodput = 0.0;  ///< served / demand over the horizon
  double decide_ms_total = 0.0;
  double decide_ms_p50 = 0.0;
  double decide_ms_p95 = 0.0;
  std::vector<birp::sim::SlotDecision> decisions;  ///< for bit-compare
};

bool decisions_equal(const birp::sim::SlotDecision& a,
                     const birp::sim::SlotDecision& b) {
  if (a.served.raw() != b.served.raw()) return false;
  if (a.kernel.raw() != b.kernel.raw()) return false;
  if (a.drops.raw() != b.drops.raw()) return false;
  if (a.pad_partial_launches != b.pad_partial_launches) return false;
  if (a.flows.size() != b.flows.size()) return false;
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    if (a.flows[f].app != b.flows[f].app || a.flows[f].from != b.flows[f].from ||
        a.flows[f].to != b.flows[f].to || a.flows[f].count != b.flows[f].count) {
      return false;
    }
  }
  return true;
}

ArmResult run_arm(const std::string& name, const birp::bench::Scenario& scenario,
                  const birp::workload::Topology& topology, long budget,
                  int cells, int threads) {
  birp::cluster::PartitionConfig pc;
  pc.cells = cells;
  auto partition =
      birp::cluster::partition_cluster(scenario.cluster, &topology.link_mbps, pc);

  birp::cluster::CellSchedulerConfig cc;
  cc.birp.solver.lp.max_iterations = budget;
  cc.cell_threads = threads;
  // Offline beliefs keep every arm on identical per-cell problems (no online
  // estimator state drifting with feedback ordering).
  cc.offline = true;
  birp::cluster::CellScheduler scheduler(scenario.cluster, std::move(partition),
                                         cc);

  const int apps = scenario.cluster.num_apps();
  const int devices = scenario.cluster.num_devices();
  ArmResult result;
  result.name = name;
  result.cells = cells;
  result.threads = threads;
  std::int64_t demand_total = 0;
  std::vector<double> decide_ms;
  decide_ms.reserve(static_cast<std::size_t>(scenario.trace.slots()));
  for (int t = 0; t < scenario.trace.slots(); ++t) {
    birp::sim::SlotState state;
    state.slot = t;
    state.demand = birp::util::Grid2<std::int64_t>(apps, devices, 0);
    for (int i = 0; i < apps; ++i) {
      for (int k = 0; k < devices; ++k) {
        state.demand(i, k) = scenario.trace.at(t, i, k);
        demand_total += state.demand(i, k);
      }
    }
    state.previous = t == 0 ? nullptr : &result.decisions.back();

    const auto start = std::chrono::steady_clock::now();
    auto decision = scheduler.decide(state);
    const auto stop = std::chrono::steady_clock::now();
    decide_ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
    result.served += decision.total_served();
    result.dropped += decision.total_dropped();
    result.decisions.push_back(std::move(decision));
  }

  result.fallbacks = scheduler.fallback_count();
  result.inter_cell_moved = scheduler.balancer().moved_total();
  result.goodput = demand_total > 0 ? static_cast<double>(result.served) /
                                          static_cast<double>(demand_total)
                                    : 0.0;
  for (const double ms : decide_ms) result.decide_ms_total += ms;
  result.decide_ms_p50 = birp::util::percentile(decide_ms, 0.5);
  result.decide_ms_p95 = birp::util::percentile(decide_ms, 0.95);
  return result;
}

void write_json(const std::string& path, const birp::bench::Cli& cli, int edges,
                long budget, const std::vector<ArmResult>& results,
                double speedup, double goodput_gap, bool bit_identical) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"bench\": \"bench_cluster\",\n";
  out << "  \"topology\": \"scale-free\",\n";
  out << "  \"edges\": " << edges << ",\n";
  out << "  \"slots\": " << cli.slots << ",\n";
  out << "  \"target\": " << cli.target << ",\n";
  out << "  \"seed\": " << cli.seed << ",\n";
  out << "  \"pivot_budget\": " << budget << ",\n";
  out << "  \"arms\": [\n";
  for (std::size_t c = 0; c < results.size(); ++c) {
    const auto& r = results[c];
    out << "    {\n";
    out << "      \"name\": \"" << r.name << "\",\n";
    out << "      \"cells\": " << r.cells << ",\n";
    out << "      \"cell_threads\": " << r.threads << ",\n";
    out << "      \"fallbacks\": " << r.fallbacks << ",\n";
    out << "      \"served\": " << r.served << ",\n";
    out << "      \"dropped\": " << r.dropped << ",\n";
    out << "      \"inter_cell_moved\": " << r.inter_cell_moved << ",\n";
    out << "      \"goodput\": " << r.goodput << ",\n";
    out << "      \"decide_ms_total\": " << r.decide_ms_total << ",\n";
    out << "      \"decide_ms_p50\": " << r.decide_ms_p50 << ",\n";
    out << "      \"decide_ms_p95\": " << r.decide_ms_p95 << "\n";
    out << "    }" << (c + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"speedup_16c_vs_mono\": " << speedup << ",\n";
  out << "  \"goodput_gap_vs_mono\": " << goodput_gap << ",\n";
  out << "  \"bit_identical_across_threads\": " << (bit_identical ? "true"
                                                                  : "false")
      << "\n";
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = birp::bench::Cli::parse(argc, argv, /*default_slots=*/4,
                                     /*default_target=*/0.5);
  std::string json_path = "BENCH_cluster.json";
  int edges = 100;
  int threads = 8;
  long budget = 20000;
  bool quick = false;
  bool check = false;
  for (int a = 1; a < argc; ++a) {
    const std::string flag = argv[a];
    if (flag == "--quick") {
      quick = true;  // 2 slots, skip the slow mid-granularity arm
      cli.slots = 2;
    } else if (flag == "--json" && a + 1 < argc) {
      json_path = argv[++a];
    } else if (flag == "--threads" && a + 1 < argc) {
      threads = std::atoi(argv[++a]);
    } else if (flag == "--edges" && a + 1 < argc) {
      edges = std::atoi(argv[++a]);
    } else if (flag == "--budget" && a + 1 < argc) {
      budget = std::atol(argv[++a]);
    } else if (flag == "--check") {
      check = true;  // fail (exit 1) unless the acceptance gates hold
    }
  }

  birp::workload::TopologyConfig tc;
  tc.edges = edges;
  tc.apps = 10;
  tc.variants_per_app = 2;
  tc.seed = cli.seed;
  const auto topology = birp::workload::generate_topology(tc);
  const auto scenario = birp::bench::make_scenario(
      birp::workload::make_cluster(topology, tc), cli);

  std::vector<ArmResult> results;
  results.push_back(
      run_arm("monolithic", scenario, topology, budget, /*cells=*/1,
              /*threads=*/0));
  if (!quick) {
    results.push_back(
        run_arm("4-cell", scenario, topology, budget, 4, threads));
  }
  results.push_back(run_arm("16-cell/t1", scenario, topology, budget, 16, 1));
  results.push_back(
      run_arm("16-cell/t" + std::to_string(threads), scenario, topology,
              budget, 16, threads));

  const auto& mono = results.front();
  const auto& sharded_t1 = results[results.size() - 2];
  const auto& sharded = results.back();
  bool bit_identical = sharded_t1.decisions.size() == sharded.decisions.size();
  for (std::size_t t = 0; bit_identical && t < sharded.decisions.size(); ++t) {
    bit_identical = decisions_equal(sharded_t1.decisions[t],
                                    sharded.decisions[t]);
  }
  const double speedup = sharded.decide_ms_total > 0.0
                             ? mono.decide_ms_total / sharded.decide_ms_total
                             : 0.0;
  const double goodput_gap =
      mono.goodput > 0.0
          ? (sharded.goodput - mono.goodput) / mono.goodput
          : 0.0;

  birp::util::TextTable table({"arm", "cells", "threads", "fallbacks",
                               "served", "goodput", "moved", "decide p50 ms",
                               "decide p95 ms", "total ms"});
  for (const auto& r : results) {
    table.add_row({r.name, std::to_string(r.cells), std::to_string(r.threads),
                   std::to_string(r.fallbacks), std::to_string(r.served),
                   birp::util::fixed(r.goodput, 4),
                   std::to_string(r.inter_cell_moved),
                   birp::util::fixed(r.decide_ms_p50, 1),
                   birp::util::fixed(r.decide_ms_p95, 1),
                   birp::util::fixed(r.decide_ms_total, 1)});
  }
  table.print(std::cout, "bench_cluster — " + std::to_string(edges) +
                             " edges, " + std::to_string(cli.slots) +
                             " slots, pivot budget " + std::to_string(budget));

  write_json(json_path, cli, edges, budget, results, speedup, goodput_gap,
             bit_identical);
  std::cout << "\nwrote " << json_path << "\n";
  std::cout << "16-cell vs monolithic decide speedup: "
            << birp::util::fixed(speedup, 2) << "x, goodput gap "
            << birp::util::fixed(100.0 * goodput_gap, 2)
            << "%, bit-identical across threads: "
            << (bit_identical ? "yes" : "NO") << "\n";

  if (check) {
    bool ok = true;
    if (speedup < 3.0) {
      std::cerr << "FAIL: 16-cell decide speedup "
                << birp::util::fixed(speedup, 2) << "x < 3x\n";
      ok = false;
    }
    if (goodput_gap < -0.05 || goodput_gap > 0.05) {
      std::cerr << "FAIL: sharded goodput gap "
                << birp::util::fixed(100.0 * goodput_gap, 2)
                << "% outside +/-5%\n";
      ok = false;
    }
    if (!bit_identical) {
      std::cerr << "FAIL: 16-cell decisions differ between 1 and "
                << threads << " cell threads\n";
      ok = false;
    }
    if (!ok) return 1;
  }
  return 0;
}
