// Ablation A1: how much does the Taylor linearization of the batch compute
// time (Eq. 24, expanded at (1,1)) cost against the exact power-law curve?
//
// Two measurements:
//  1. Pointwise error of h(b) = gamma[(1-eta)b + eta] against the exact
//     f(b) = gamma b^(1-eta) across batch sizes and exponents — the
//     constraint-tightening the scheduler pays every slot.
//  2. Decision-level gap: tiny instances (1 app, 2 variants, 2 edges) where
//     exhaustive search over (variant, batch) splits with EXACT batch times
//     is tractable; compare the exact optimum's loss to the loss of the
//     linearized MILP's plan evaluated under the same exact semantics.
#include <cmath>
#include <iostream>
#include <limits>
#include <vector>

#include "birp/core/problem.hpp"
#include "birp/device/cluster.hpp"
#include "birp/solver/branch_and_bound.hpp"
#include "birp/util/rng.hpp"
#include "birp/util/table.hpp"

namespace {

using birp::device::TirParams;

/// Exact optimum by brute force: one app, two variants, one edge, demand D;
/// choose (z0, z1), z0 + z1 + drops == D, exact compute f0(z0) + f1(z1) <=
/// tau; minimize loss0*z0 + loss1*z1 + penalty*drops.
struct ExactResult {
  double loss = std::numeric_limits<double>::infinity();
  int z0 = 0;
  int z1 = 0;
};

ExactResult exact_optimum(double gamma0, double gamma1, const TirParams& t0,
                          const TirParams& t1, double loss0, double loss1,
                          double penalty, int demand, double tau) {
  ExactResult best;
  for (int z0 = 0; z0 <= std::min(demand, t0.beta); ++z0) {
    for (int z1 = 0; z1 + z0 <= demand && z1 <= t1.beta; ++z1) {
      const double time = t0.batch_time(gamma0, z0) + t1.batch_time(gamma1, z1);
      if (time > tau) continue;
      const int drops = demand - z0 - z1;
      const double loss = loss0 * z0 + loss1 * z1 + penalty * drops;
      if (loss < best.loss) best = {loss, z0, z1};
    }
  }
  return best;
}

}  // namespace

int main() {
  // ---- 1. Pointwise linearization error. ----
  birp::util::TextTable pointwise({"eta", "b=4", "b=8", "b=12", "b=16"});
  for (const double eta : {0.10, 0.20, 0.30, 0.35}) {
    std::vector<std::string> row{birp::util::fixed(eta, 2)};
    for (const int b : {4, 8, 12, 16}) {
      const double exact = std::pow(static_cast<double>(b), 1.0 - eta);
      const double linear = (1.0 - eta) * b + eta;
      row.push_back(birp::util::fixed(100.0 * (linear - exact) / exact, 1) +
                    "%");
    }
    pointwise.add_row(std::move(row));
  }
  pointwise.print(std::cout,
                  "A1.1 — Taylor (Eq. 24) overestimate of batch compute time "
                  "h(b)/f(b) - 1");
  std::cout << "\nThe linearization is exact at b = 1 and conservative "
               "beyond: BIRP under-books capacity rather than violating "
               "tau, trading some loss for SLO safety.\n\n";

  // ---- 2. Decision-level gap on enumerable instances. ----
  birp::util::TextTable decisions({"instance", "exact loss", "linearized loss",
                                   "gap %"});
  birp::util::Xoshiro256StarStar rng(0xab1a);
  double worst_gap = 0.0;
  double mean_gap = 0.0;
  constexpr int kInstances = 12;
  for (int inst = 0; inst < kInstances; ++inst) {
    const double tau = 2.0;
    const double gamma0 = rng.uniform(0.01, 0.05);
    const double gamma1 = rng.uniform(0.05, 0.25);
    TirParams t0{rng.uniform(0.2, 0.35),
                 static_cast<int>(rng.uniform_int(8, 14)), 0.0};
    TirParams t1{rng.uniform(0.1, 0.25),
                 static_cast<int>(rng.uniform_int(4, 10)), 0.0};
    t0.c = std::pow(static_cast<double>(t0.beta), t0.eta);
    t1.c = std::pow(static_cast<double>(t1.beta), t1.eta);
    const double loss0 = 0.45;
    const double loss1 = 0.20;
    const double penalty = 0.98;
    const int demand = static_cast<int>(rng.uniform_int(6, 18));

    const auto exact = exact_optimum(gamma0, gamma1, t0, t1, loss0, loss1,
                                     penalty, demand, tau);

    // Linearized plan: greedy on h(b) exactly as BIRP's constraint sees it.
    // Enumerate (z0, z1) under the LINEARIZED budget, then evaluate the
    // chosen plan under the exact semantics (always feasible: h >= f).
    double best_linear_obj = std::numeric_limits<double>::infinity();
    int lz0 = 0;
    int lz1 = 0;
    for (int z0 = 0; z0 <= std::min(demand, t0.beta); ++z0) {
      for (int z1 = 0; z1 + z0 <= demand && z1 <= t1.beta; ++z1) {
        const double h = (z0 > 0 ? gamma0 * ((1 - t0.eta) * z0 + t0.eta) : 0) +
                         (z1 > 0 ? gamma1 * ((1 - t1.eta) * z1 + t1.eta) : 0);
        if (h > tau) continue;
        const double obj =
            loss0 * z0 + loss1 * z1 + penalty * (demand - z0 - z1);
        if (obj < best_linear_obj) {
          best_linear_obj = obj;
          lz0 = z0;
          lz1 = z1;
        }
      }
    }
    const double linear_real_loss =
        loss0 * lz0 + loss1 * lz1 + penalty * (demand - lz0 - lz1);
    const double gap =
        100.0 * (linear_real_loss - exact.loss) / std::max(1e-9, exact.loss);
    worst_gap = std::max(worst_gap, gap);
    mean_gap += gap / kInstances;
    decisions.add_row({std::to_string(inst), birp::util::fixed(exact.loss, 2),
                       birp::util::fixed(linear_real_loss, 2),
                       birp::util::fixed(gap, 1)});
  }
  decisions.print(std::cout,
                  "A1.2 — exact piecewise optimum vs linearized plan "
                  "(enumerable single-edge instances)");
  std::cout << "\nmean gap = " << birp::util::fixed(mean_gap, 2)
            << "%, worst gap = " << birp::util::fixed(worst_gap, 2)
            << "%. The linearization never violates the real budget and the "
               "induced loss gap stays modest — the property BIRP's Eq. 24 "
               "step relies on.\n";
  return 0;
}
