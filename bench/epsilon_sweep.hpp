// Shared machinery for the Fig. 4 / Fig. 5 preset-parameter sweeps:
// run online BIRP over a grid of (eps1, eps2) MAB presets on the mid-size
// sweep cluster, one full simulation per grid point, in parallel.
#pragma once

#include <vector>

#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"
#include "birp/metrics/run_metrics.hpp"
#include "birp/runtime/thread_pool.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/workload/generator.hpp"

namespace birp::bench {

/// The grid of the paper's Fig. 4/5 axes: eps1 in 0.01..0.07 (x10^-2 axis),
/// eps2 in 0.04..0.10 (x10^-1 axis).
inline const std::vector<double> kEpsilon1Grid = {0.01, 0.02, 0.03, 0.04,
                                                  0.05, 0.06, 0.07};
inline const std::vector<double> kEpsilon2Grid = {0.04, 0.07, 0.10};

struct SweepPoint {
  double epsilon1 = 0.0;
  double epsilon2 = 0.0;
  metrics::RunMetrics metrics;
};

/// Runs online BIRP at every grid point over `slots` of `trace`; grid
/// points execute concurrently on the pool (each simulation is internally
/// single-threaded to keep total parallelism bounded).
inline std::vector<SweepPoint> run_epsilon_grid(
    const device::ClusterSpec& cluster, const workload::Trace& trace,
    int slots) {
  std::vector<SweepPoint> points;
  for (const double e1 : kEpsilon1Grid) {
    for (const double e2 : kEpsilon2Grid) {
      SweepPoint point;
      point.epsilon1 = e1;
      point.epsilon2 = e2;
      points.push_back(std::move(point));
    }
  }

  runtime::ThreadPool pool;
  std::vector<std::future<metrics::RunMetrics>> futures;
  futures.reserve(points.size());
  for (const auto& point : points) {
    futures.push_back(pool.submit([&cluster, &trace, slots, &point] {
      core::BirpConfig config;
      config.tuner.epsilon1 = point.epsilon1;
      config.tuner.epsilon2 = point.epsilon2;
      core::BirpScheduler scheduler(cluster, config);
      sim::SimulatorConfig sim_config;
      sim_config.threads = 1;
      sim::Simulator simulator(cluster, trace, sim_config);
      return simulator.run(scheduler, slots);
    }));
  }
  for (std::size_t p = 0; p < points.size(); ++p) {
    points[p].metrics = futures[p].get();
  }
  return points;
}

/// Reference BIRP-OFF run on the same trace (the Delta-Loss baseline).
inline metrics::RunMetrics run_offline_reference(
    const device::ClusterSpec& cluster, const workload::Trace& trace,
    int slots) {
  auto scheduler = core::BirpScheduler::offline(cluster);
  sim::Simulator simulator(cluster, trace);
  return simulator.run(scheduler, slots);
}

}  // namespace birp::bench
