// Fig. 7: large-scale evaluation — five applications x five models each
// across the six-edge heterogeneous testbed. Reproduces:
//   (a) the completion-time CDF of BIRP / OAEI / MAX,
//   (b) per-slot inference loss,
//   (c) cumulative inference loss,
// and prints the two headline numbers of the paper: BIRP's cumulative-loss
// reduction vs OAEI (paper: 32.3%) and the SLO failure ratio (paper: BIRP's
// failure rate is 19.8% of OAEI's).
//
//   ./bench_fig7 [--slots N] [--target X] [--seed S]
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  const auto cli = birp::bench::Cli::parse(argc, argv, /*default_slots=*/300,
                                           /*default_target=*/0.7);
  auto scenario =
      birp::bench::make_scenario(birp::device::ClusterSpec::paper_large(), cli);
  std::cout << "Fig. 7 large-scale run: 5 applications x 5 models, "
            << scenario.trace.total() << " requests over " << cli.slots
            << " slots\n\n";

  birp::core::BirpScheduler birp(scenario.cluster);
  birp::sched::OaeiScheduler oaei(scenario.cluster);
  birp::sched::MaxScheduler max(scenario.cluster);

  const auto m_birp = birp::bench::run_algorithm(scenario, birp);
  const auto m_oaei = birp::bench::run_algorithm(scenario, oaei);
  const auto m_max = birp::bench::run_algorithm(scenario, max);

  const std::vector<std::pair<std::string, const birp::metrics::RunMetrics*>>
      runs{{"BIRP", &m_birp}, {"OAEI", &m_oaei}, {"MAX", &m_max}};

  birp::bench::print_cdf(std::cout,
                         "Fig. 7a — completion-time CDF (units of tau)", runs,
                         2.0);
  std::cout << '\n';
  birp::bench::print_loss_series(std::cout, "Fig. 7b/7c", runs);
  std::cout << '\n';
  birp::bench::print_summary(std::cout, "Fig. 7 summary", runs);

  const double loss_reduction =
      100.0 * (m_oaei.total_loss() - m_birp.total_loss()) /
      std::max(1e-9, m_oaei.total_loss());
  const double failure_ratio = m_birp.failure_percent() /
                               std::max(1e-9, m_oaei.failure_percent());
  std::cout << "\nHeadline checks (paper section 5.4, large scale):\n"
            << "  BIRP cumulative loss reduction vs OAEI = "
            << birp::util::fixed(loss_reduction, 1)
            << "%  (paper: 32.3%)\n"
            << "  BIRP failure p% / OAEI failure p% = "
            << birp::util::fixed(failure_ratio, 3)
            << "  (paper: 0.198, i.e. 0.21% vs 4.1%)\n"
            << "  MAX p95 completion = "
            << birp::util::fixed(m_max.completion().quantile(0.95), 3)
            << " tau vs BIRP "
            << birp::util::fixed(m_birp.completion().quantile(0.95), 3)
            << " tau  (paper: MAX right-skewed past the SLO)\n";
  return 0;
}
