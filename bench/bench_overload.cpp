// Overload-protection comparison: the request-level serving engine under
// sustained and bursty overload, with the birp/guard ladder switched on in
// stages.
//
//   ./bench_overload [--slots N] [--target X] [--seed S] [--csv PATH]
//
// Four surge scenarios reshape the same base trace (generated at the
// cluster's capacity envelope):
//
//   uniform-2x  — every cell doubled: steady 2x aggregate overload
//   hotspot     — two edges at 5x, the rest at 0.8x (~2.2x aggregate):
//                 redistribution pressure and transfer-delayed imports
//   flash-crowd — calm 0.7x baseline with a 4x surge window mid-run
//   ramp        — load climbing linearly from 0.5x to 3.5x (2x mean)
//
// Each scenario runs an accuracy-greedy router — serve every request
// locally with the most accurate variant the guard hints allow, no drop
// planning — under four guard policies. (BIRP's MILP already sheds the
// overflow as planned drops at decide time; the guard exists for runtimes
// without that foresight, where overload lands on the admission queues.)
//
//   none     — guard disabled (the pre-guard engine, bit for bit)
//   shed     — deadline-aware admission only
//   breaker  — admission + per-(app, edge) circuit breakers
//   full     — admission + breakers + the graceful-degradation ladder
//
// Headline check, applied to every scenario at >= 2x aggregate overload:
// `full` must show strictly fewer SLO failures than `none` while keeping
// goodput (requests actually served) within 5%. A summary CSV (scenario x
// policy) is written to --csv; everything is seeded, so the same flags
// produce a bit-identical file.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "birp/serve/engine.hpp"
#include "birp/sim/validate.hpp"
#include "birp/util/csv.hpp"
#include "common.hpp"

namespace {

using birp::workload::Trace;

/// Accuracy-greedy router: serves every request locally with the most
/// accurate variant that fits the edge's memory and that the guard hints
/// allow. No drop planning — overload goes straight into the admission
/// queues, which is the regime the guard layer protects. Follows the
/// (advisory) degradation hints, so the ladder's variant caps actually bite.
class AccuracyGreedyScheduler : public birp::sim::Scheduler {
 public:
  explicit AccuracyGreedyScheduler(const birp::device::ClusterSpec& cluster)
      : cluster_(cluster) {}
  [[nodiscard]] std::string name() const override { return "accuracy-greedy"; }
  [[nodiscard]] birp::sim::SlotDecision decide(
      const birp::sim::SlotState& state) override {
    const int kKernel = 16;
    birp::sim::SlotDecision decision(cluster_.num_apps(),
                                     cluster_.zoo().max_variants(),
                                     cluster_.num_devices());
    for (int i = 0; i < cluster_.num_apps(); ++i) {
      for (int k = 0; k < cluster_.num_devices(); ++k) {
        const auto demand = state.demand(i, k);
        if (demand <= 0) continue;
        const int kernel = static_cast<int>(
            std::clamp<std::int64_t>(demand, 1, kKernel));
        for (int j = cluster_.zoo().num_variants(i) - 1; j >= 0; --j) {
          if (!state.variant_allowed(i, j)) continue;
          birp::sim::SlotDecision trial(cluster_.num_apps(),
                                        cluster_.zoo().max_variants(),
                                        cluster_.num_devices());
          trial.served(i, j, k) = demand;
          trial.kernel(i, j, k) = kernel;
          if (j > 0 && birp::sim::decision_memory_mb(cluster_, trial, k) >
                           cluster_.memory_mb(k)) {
            continue;  // too big to co-reside with the in-flight batch
          }
          decision.served(i, j, k) = demand;
          decision.kernel(i, j, k) = kernel;
          break;
        }
      }
    }
    return decision;
  }

 private:
  const birp::device::ClusterSpec& cluster_;
};

/// Scales `base` cell by cell: factor(t, k) applied to every app's demand.
template <typename FactorFn>
Trace scale_trace(const Trace& base, FactorFn&& factor) {
  Trace scaled(base.slots(), base.apps(), base.devices());
  for (int t = 0; t < base.slots(); ++t) {
    for (int i = 0; i < base.apps(); ++i) {
      for (int k = 0; k < base.devices(); ++k) {
        const double f = factor(t, k);
        scaled.set(t, i, k,
                   static_cast<std::int64_t>(
                       std::llround(static_cast<double>(base.at(t, i, k)) * f)));
      }
    }
  }
  return scaled;
}

struct OverloadScenario {
  std::string name;
  Trace trace;
  double aggregate_x = 0.0;  ///< total demand over the capacity-envelope base
};

std::vector<OverloadScenario> make_scenarios(const Trace& base) {
  const int T = base.slots();
  std::vector<OverloadScenario> scenarios;
  const auto add = [&](const std::string& name, Trace trace) {
    const double aggregate = static_cast<double>(trace.total()) /
                             static_cast<double>(base.total());
    scenarios.push_back({name, std::move(trace), aggregate});
  };
  add("uniform-2x", scale_trace(base, [](int, int) { return 2.0; }));
  add("hotspot", scale_trace(base, [](int, int k) {
        return k < 2 ? 5.0 : 0.8;
      }));
  const int surge_from = T / 3;
  const int surge_to = surge_from + std::max(1, T / 5);
  add("flash-crowd", scale_trace(base, [&](int t, int) {
        return t >= surge_from && t < surge_to ? 4.0 : 0.7;
      }));
  add("ramp", scale_trace(base, [&](int t, int) {
        return 0.5 + 3.5 * static_cast<double>(t) /
                         static_cast<double>(std::max(1, T - 1));
      }));
  return scenarios;
}

birp::serve::ServeConfig make_policy(const std::string& policy,
                                     std::uint64_t seed) {
  birp::serve::ServeConfig config;
  config.seed = seed;
  config.queue_capacity = 64;  // bounded queues: backpressure is real
  if (policy == "none") return config;
  config.guard.admission.enabled = true;
  config.guard.admission.slack = 1.0;
  if (policy == "shed") return config;
  config.guard.breaker.enabled = true;
  config.guard.breaker.window_slots = 8;
  config.guard.breaker.min_samples = 32;
  config.guard.breaker.trip_threshold = 0.5;
  config.guard.breaker.open_slots = 4;
  if (policy == "breaker") return config;
  config.guard.degradation.enabled = true;
  config.guard.degradation.stress_shed_fraction = 0.1;
  config.guard.degradation.recovery_slots = 3;
  // Full ladder also switches failover retries to seeded exponential
  // backoff with jitter (inert without faults, but part of the policy).
  config.failover.enabled = true;
  config.failover.backoff_base_slots = 1;
  config.failover.backoff_jitter = 0.25;
  return config;
}

struct PolicyRun {
  std::string scenario;
  std::string policy;
  birp::metrics::RunMetrics metrics;
};

/// Requests that were actually served (not dropped in any flavor).
std::int64_t goodput(const birp::metrics::RunMetrics& m) {
  return m.total_requests() - m.dropped();
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = birp::bench::Cli::parse(argc, argv, /*default_slots=*/90,
                                           /*default_target=*/1.0);
  std::string csv_path = "bench_overload_summary.csv";
  for (int a = 1; a < argc; ++a) {
    const std::string flag = argv[a];
    if (flag == "--csv" && a + 1 < argc) csv_path = argv[++a];
  }

  // Base trace sized to the serving engine's own capacity: what an edge
  // actually sustains running the mid variant back-to-back at kernel 16
  // (the workload generator's envelope instead bakes in the slot
  // simulator's one-merged-batch-per-model cap, which the request-level
  // engine does not have). Scenario factors are then direct multiples of
  // aggregate serving capacity.
  const auto cluster = birp::device::ClusterSpec::paper_small();
  double capacity_per_edge = 0.0;
  for (int k = 0; k < cluster.num_devices(); ++k) {
    double per_request_s = 0.0;
    for (int i = 0; i < cluster.num_apps(); ++i) {
      const int mid = cluster.zoo().num_variants(i) / 2;
      const auto& tir = cluster.oracle_tir(k, i, mid);
      per_request_s += cluster.gamma_s(k, i, mid) / tir.tir(16);
    }
    per_request_s /= static_cast<double>(cluster.num_apps());
    capacity_per_edge += cluster.tau_s() / per_request_s;
  }
  capacity_per_edge /= static_cast<double>(cluster.num_devices());

  birp::workload::GeneratorConfig gen;
  gen.slots = cli.slots;
  gen.seed = cli.seed;
  gen.mean_per_edge = cli.target * capacity_per_edge /
                      static_cast<double>(cluster.num_apps());
  const auto base = birp::workload::generate(cluster, gen);
  const auto scenarios = make_scenarios(base);

  std::cout << "Overload run: base " << base.total() << " requests over "
            << cli.slots << " slots (" << birp::util::fixed(capacity_per_edge, 1)
            << " req/edge-slot capacity), seed 0x" << std::hex << cli.seed
            << std::dec << "\n\n";

  const std::vector<std::string> policies{"none", "shed", "breaker", "full"};
  std::vector<PolicyRun> runs;

  for (const auto& scenario : scenarios) {
    for (const auto& policy : policies) {
      AccuracyGreedyScheduler scheduler(cluster);
      birp::serve::ServeEngine engine(cluster, scenario.trace,
                                      make_policy(policy, cli.seed));
      runs.push_back({scenario.name, policy, engine.run(scheduler)});
    }

    birp::util::TextTable table({"policy", "SLO failure p%", "goodput",
                                 "deadline shed", "queue drops",
                                 "breaker trips", "degraded slots", "p95 tau"});
    for (const auto& run : runs) {
      if (run.scenario != scenario.name) continue;
      const auto& m = run.metrics;
      table.add_row({run.policy, birp::util::fixed(m.failure_percent(), 2),
                     std::to_string(goodput(m)),
                     std::to_string(m.deadline_shed()),
                     std::to_string(m.queue_dropped()),
                     std::to_string(m.breaker_trips()),
                     std::to_string(m.degraded_slots()),
                     birp::util::fixed(m.latency_quantile(0.95), 3)});
    }
    table.print(std::cout, "Scenario: " + scenario.name + " (" +
                               birp::util::fixed(scenario.aggregate_x, 2) +
                               "x aggregate)");
    std::cout << '\n';
  }

  // Headline: at >= 2x aggregate overload the full ladder must strictly
  // reduce SLO failures vs the unguarded engine at near-parity goodput.
  const auto find = [&](const std::string& s, const std::string& p)
      -> const birp::metrics::RunMetrics& {
    for (const auto& run : runs) {
      if (run.scenario == s && run.policy == p) return run.metrics;
    }
    birp::util::fail("bench_overload: missing run " + s + "/" + p);
  };
  bool all_good = true;
  for (const auto& scenario : scenarios) {
    if (scenario.aggregate_x < 2.0) continue;
    const auto& none = find(scenario.name, "none");
    const auto& full = find(scenario.name, "full");
    const bool fewer_failures = full.slo_failures() < none.slo_failures();
    const bool goodput_held =
        static_cast<double>(goodput(full)) >=
        0.95 * static_cast<double>(goodput(none));
    all_good = all_good && fewer_failures && goodput_held;
    std::cout << scenario.name << ": full ladder failures "
              << full.slo_failures() << " vs unguarded "
              << none.slo_failures() << ", goodput " << goodput(full) << " vs "
              << goodput(none)
              << (fewer_failures && goodput_held
                      ? "  (guard wins)"
                      : "  (UNEXPECTED: guard did not pay off)")
              << "\n";
  }
  std::cout << (all_good ? "\nAll >=2x scenarios: guard wins.\n\n"
                         : "\nUNEXPECTED: some >=2x scenario regressed.\n\n");

  std::ofstream csv(csv_path);
  birp::util::CsvWriter writer(csv);
  writer.row({"scenario", "policy", "aggregate_x", "total_requests",
              "slo_failures", "failure_percent", "goodput", "deadline_shed",
              "queue_drops", "breaker_trips", "breaker_recoveries",
              "degraded_slots", "p50_tau", "p95_tau", "solver_fallbacks"});
  for (const auto& run : runs) {
    const auto& m = run.metrics;
    double aggregate = 0.0;
    for (const auto& scenario : scenarios) {
      if (scenario.name == run.scenario) aggregate = scenario.aggregate_x;
    }
    writer.row({run.scenario, run.policy,
                birp::util::format_double(aggregate),
                std::to_string(m.total_requests()),
                std::to_string(m.slo_failures()),
                birp::util::format_double(m.failure_percent()),
                std::to_string(goodput(m)),
                std::to_string(m.deadline_shed()),
                std::to_string(m.queue_dropped()),
                std::to_string(m.breaker_trips()),
                std::to_string(m.breaker_recoveries()),
                std::to_string(m.degraded_slots()),
                birp::util::format_double(m.latency_quantile(0.5)),
                birp::util::format_double(m.latency_quantile(0.95)),
                std::to_string(m.solver_fallbacks())});
  }
  std::cout << "Summary CSV written to " << csv_path << "\n";
  return all_good ? 0 : 1;
}
