// Shared helpers for the benchmark/experiment harnesses: scenario assembly,
// algorithm runs, CDF/series printing, and minimal CLI parsing.
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"
#include "birp/metrics/run_metrics.hpp"
#include "birp/sched/max_batch.hpp"
#include "birp/sched/oaei.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/util/table.hpp"
#include "birp/workload/generator.hpp"

namespace birp::bench {

/// Minimal flag parsing: --slots N, --target X, --seed N.
struct Cli {
  int slots = 300;
  double target = 0.5;  ///< workload intensity as a fraction of the envelope
  std::uint64_t seed = 0x77ace;

  static Cli parse(int argc, char** argv, int default_slots = 300,
                   double default_target = 0.5) {
    Cli cli;
    cli.slots = default_slots;
    cli.target = default_target;
    for (int a = 1; a < argc; ++a) {
      if (argv[a] == nullptr) break;
      const std::string flag = argv[a];
      const auto next = [&]() -> const char* {
        return a + 1 < argc ? argv[++a] : nullptr;
      };
      if (flag == "--slots") {
        if (const char* v = next()) cli.slots = std::atoi(v);
      } else if (flag == "--target") {
        if (const char* v = next()) cli.target = std::atof(v);
      } else if (flag == "--seed") {
        if (const char* v = next()) cli.seed = std::strtoull(v, nullptr, 0);
      }
    }
    return cli;
  }
};

/// A cluster plus a generated trace, ready to run schedulers against.
struct Scenario {
  device::ClusterSpec cluster;
  workload::Trace trace;
};

inline Scenario make_scenario(device::ClusterSpec cluster, const Cli& cli) {
  workload::GeneratorConfig config;
  config.slots = cli.slots;
  config.seed = cli.seed;
  config.mean_per_edge =
      workload::suggested_mean_per_edge(cluster, cli.target);
  auto trace = workload::generate(cluster, config);
  return {std::move(cluster), std::move(trace)};
}

/// Runs one scheduler over the scenario and returns metrics.
inline metrics::RunMetrics run_algorithm(const Scenario& scenario,
                                         sim::Scheduler& scheduler,
                                         int max_slots = -1) {
  sim::Simulator simulator(scenario.cluster, scenario.trace);
  return simulator.run(scheduler, max_slots);
}

/// Prints a completion-time CDF table (one column per algorithm), in units
/// of tau, matching the axes of the paper's Fig. 6a / 7a.
inline void print_cdf(
    std::ostream& out, const std::string& title,
    const std::vector<std::pair<std::string, const metrics::RunMetrics*>>&
        runs,
    double max_tau = 1.6, int points = 17) {
  std::vector<std::string> header{"tau"};
  for (const auto& [name, metrics] : runs) header.push_back(name);
  util::TextTable table(std::move(header));
  for (int p = 0; p < points; ++p) {
    const double x = max_tau * static_cast<double>(p) /
                     static_cast<double>(points - 1);
    std::vector<std::string> row{util::fixed(x, 2)};
    for (const auto& [name, metrics] : runs) {
      row.push_back(util::fixed(metrics->completion().cdf(x), 3));
    }
    table.add_row(std::move(row));
  }
  table.print(out, title);
}

/// Prints per-slot loss series sampled every `stride` slots (Fig. 6b / 7b)
/// followed by the cumulative loss at the same marks (Fig. 6c / 7c).
inline void print_loss_series(
    std::ostream& out, const std::string& title,
    const std::vector<std::pair<std::string, const metrics::RunMetrics*>>&
        runs,
    int stride = 25) {
  {
    std::vector<std::string> header{"slot"};
    for (const auto& [name, metrics] : runs) header.push_back(name);
    util::TextTable table(std::move(header));
    const auto slots = runs.front().second->slot_loss().size();
    for (std::size_t t = 0; t < slots; t += static_cast<std::size_t>(stride)) {
      std::vector<std::string> row{std::to_string(t)};
      for (const auto& [name, metrics] : runs) {
        row.push_back(util::fixed(metrics->slot_loss()[t], 1));
      }
      table.add_row(std::move(row));
    }
    table.print(out, title + " — per-slot loss");
  }
  {
    std::vector<std::string> header{"slot"};
    for (const auto& [name, metrics] : runs) header.push_back(name);
    util::TextTable table(std::move(header));
    std::vector<std::vector<double>> cumulative;
    cumulative.reserve(runs.size());
    for (const auto& [name, metrics] : runs) {
      cumulative.push_back(metrics->cumulative_loss());
    }
    const auto slots = cumulative.front().size();
    for (std::size_t t = 0; t < slots; t += static_cast<std::size_t>(stride)) {
      std::vector<std::string> row{std::to_string(t)};
      for (const auto& series : cumulative) {
        row.push_back(util::fixed(series[t], 0));
      }
      table.add_row(std::move(row));
    }
    table.print(out, title + " — cumulative loss");
  }
}

/// Prints the headline summary block (loss, p%, drops, busy).
inline void print_summary(
    std::ostream& out, const std::string& title,
    const std::vector<std::pair<std::string, const metrics::RunMetrics*>>&
        runs) {
  util::TextTable table(
      {"algorithm", "total loss", "SLO failure p%", "dropped", "mean busy",
       "median tau", "p95 tau", "J/request"});
  for (const auto& [name, metrics] : runs) {
    const bool has_samples = metrics->completion().count() > 0;
    table.add_row({name, util::fixed(metrics->total_loss(), 1),
                   util::fixed(metrics->failure_percent(), 2),
                   std::to_string(metrics->dropped()),
                   util::fixed(metrics->edge_busy().mean(), 3),
                   has_samples
                       ? util::fixed(metrics->completion().quantile(0.5), 3)
                       : "-",
                   has_samples
                       ? util::fixed(metrics->completion().quantile(0.95), 3)
                       : "-",
                   util::fixed(metrics->energy_per_request_j(), 2)});
  }
  table.print(out, title);
}

}  // namespace birp::bench
