// Crossover study (extension beyond the paper's figures): sweep the
// workload intensity and chart where each algorithm's loss and SLO failure
// rate overtake the others. This locates the operating regimes behind the
// paper's claims: at light load serial execution (OAEI) is competitive —
// batching buys little when accelerators idle; past the serial-capacity
// knee BIRP's batching headroom dominates; at extreme load every scheduler
// degrades but MAX collapses first (padded launches).
//
//   ./bench_crossover [--slots N] [--seed S]
#include <iostream>

#include "common.hpp"
#include "birp/runtime/thread_pool.hpp"

namespace {

struct Point {
  double target = 0.0;
  birp::metrics::RunMetrics birp;
  birp::metrics::RunMetrics oaei;
  birp::metrics::RunMetrics max;
};

}  // namespace

int main(int argc, char** argv) {
  const auto cli = birp::bench::Cli::parse(argc, argv, /*default_slots=*/60,
                                           /*default_target=*/0.0);
  const std::vector<double> targets{0.3, 0.45, 0.6, 0.7, 0.8, 0.95};

  const auto cluster = birp::device::ClusterSpec::paper_large();
  std::vector<Point> points(targets.size());

  birp::runtime::ThreadPool pool;
  std::vector<std::future<void>> futures;
  for (std::size_t p = 0; p < targets.size(); ++p) {
    futures.push_back(pool.submit([&, p] {
      birp::bench::Cli point_cli = cli;
      point_cli.target = targets[p];
      auto scenario = birp::bench::make_scenario(
          birp::device::ClusterSpec::paper_large(), point_cli);
      points[p].target = targets[p];

      birp::core::BirpScheduler birp_sched(scenario.cluster);
      birp::sched::OaeiScheduler oaei_sched(scenario.cluster);
      birp::sched::MaxScheduler max_sched(scenario.cluster);
      birp::sim::SimulatorConfig sim_config;
      sim_config.threads = 1;
      {
        birp::sim::Simulator s(scenario.cluster, scenario.trace, sim_config);
        points[p].birp = s.run(birp_sched);
      }
      {
        birp::sim::Simulator s(scenario.cluster, scenario.trace, sim_config);
        points[p].oaei = s.run(oaei_sched);
      }
      {
        birp::sim::Simulator s(scenario.cluster, scenario.trace, sim_config);
        points[p].max = s.run(max_sched);
      }
    }));
  }
  for (auto& f : futures) f.get();

  birp::util::TextTable loss({"target util", "BIRP loss/req", "OAEI loss/req",
                              "MAX loss/req", "BIRP vs OAEI"});
  birp::util::TextTable fail(
      {"target util", "BIRP p%", "OAEI p%", "MAX p%"});
  for (const auto& point : points) {
    const auto per_request = [](const birp::metrics::RunMetrics& m) {
      return m.total_loss() / static_cast<double>(m.total_requests());
    };
    const double gain = 100.0 *
                        (per_request(point.oaei) - per_request(point.birp)) /
                        per_request(point.oaei);
    loss.add_row({birp::util::fixed(point.target, 2),
                  birp::util::fixed(per_request(point.birp), 4),
                  birp::util::fixed(per_request(point.oaei), 4),
                  birp::util::fixed(per_request(point.max), 4),
                  birp::util::fixed(gain, 1) + "%"});
    fail.add_row({birp::util::fixed(point.target, 2),
                  birp::util::fixed(point.birp.failure_percent(), 2),
                  birp::util::fixed(point.oaei.failure_percent(), 2),
                  birp::util::fixed(point.max.failure_percent(), 2)});
  }
  loss.print(std::cout,
             "Crossover — per-request inference loss vs workload intensity");
  std::cout << '\n';
  fail.print(std::cout, "Crossover — SLO failure p% vs workload intensity");
  std::cout << "\nReading: the BIRP-over-OAEI loss margin opens past the "
               "serial-capacity knee; MAX's failure rate explodes with load "
               "while BIRP's stays bounded by its conservative believed "
               "budget.\n";
  return 0;
}
