// Table 1: Inference Resource Usage and Performance upon Heterogeneous
// Edges — serial (batch-1) execution of four representative models on a
// Jetson Nano and an Atlas 200DK.
//
// The paper profiles Yolov4-tiny, Yolov4-normal, ResNet-18, and BERT; this
// reproduction maps each onto the zoo variant with the matching footprint
// (small detector, large detector, small classifier, large NLU model) and
// reports the simulator's serial pipeline measurements. GPU devices report
// GPU usage; the Atlas reports NPU core usage (the AI-core duty metric the
// paper's last NPU column captures).
#include <iostream>

#include "birp/device/cluster.hpp"
#include "birp/util/table.hpp"

namespace {

struct ReferenceModel {
  const char* name;
  int app;
  int variant;
};

}  // namespace

int main() {
  const auto cluster = birp::device::ClusterSpec::paper_large();

  // Representative (application, variant) mapping for the paper's models:
  // app 0 = object_detection, app 2 = image_recognition, app 3 = nlu.
  const ReferenceModel models[] = {
      {"Yolov4-t (object_detection/v0)", 0, 0},
      {"Yolov4-n (object_detection/v4)", 0, 4},
      {"ResNet-18 (image_recognition/v1)", 2, 1},
      {"BERT (nlu/v4)", 3, 4},
  };

  // One Jetson Nano and one Atlas 200DK from the testbed.
  int nano = -1;
  int atlas = -1;
  for (int k = 0; k < cluster.num_devices(); ++k) {
    if (cluster.device(k).type == birp::device::DeviceType::JetsonNano &&
        nano < 0) {
      nano = k;
    }
    if (cluster.device(k).type == birp::device::DeviceType::Atlas200DK &&
        atlas < 0) {
      atlas = k;
    }
  }

  birp::util::TextTable table({"Inference", "Edge Type", "CPU Usage (%)",
                               "GPU Usage (%)", "NPU Core Usage (%)",
                               "Average FPS"});
  for (const auto& model : models) {
    for (const int k : {nano, atlas}) {
      const auto& device = cluster.device(k);
      const auto point =
          cluster.truth().serial_pipeline(k, model.app, model.variant);
      const bool gpu =
          device.accelerator == birp::device::AcceleratorKind::Gpu;
      table.add_row({model.name, birp::device::to_string(device.type),
                     birp::util::fixed(100.0 * point.cpu_util, 1),
                     gpu ? birp::util::fixed(100.0 * point.accel_util, 1) : "/",
                     gpu ? "/" : birp::util::fixed(100.0 * point.accel_util, 1),
                     birp::util::fixed(point.fps, 1)});
    }
  }
  table.print(std::cout,
              "Table 1 — serial inference resource usage and FPS "
              "(simulated heterogeneous edges)");
  std::cout << "\nReading: small models leave the accelerator under-utilized"
               " (the batching headroom BIRP exploits); large models saturate"
               " it. Utilization ~ duty_cycle / C where C is the saturated"
               " TIR level of Eq. 2.\n";
  return 0;
}
