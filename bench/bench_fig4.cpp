// Fig. 4: impact of the preset parameters eps1 / eps2 on Delta-Loss, the
// cumulative loss gap between online BIRP and BIRP-OFF:
//     Delta-Loss(t) = sum_{t' <= t} (loss_BIRP(t') - loss_OFF(t'))
// evaluated at t = 10 and t = 100 over the (eps1, eps2) grid.
//
//   ./bench_fig4 [--slots N] [--target X] [--seed S]
#include <iostream>

#include "common.hpp"
#include "epsilon_sweep.hpp"

int main(int argc, char** argv) {
  const auto cli = birp::bench::Cli::parse(argc, argv, /*default_slots=*/100,
                                           /*default_target=*/0.5);
  auto scenario =
      birp::bench::make_scenario(birp::device::ClusterSpec::sweep(), cli);
  std::cout << "Fig. 4 epsilon sweep: " << scenario.trace.total()
            << " requests, " << cli.slots << " slots, "
            << birp::bench::kEpsilon1Grid.size() *
                   birp::bench::kEpsilon2Grid.size()
            << " grid points\n\n";

  const auto reference = birp::bench::run_offline_reference(
      scenario.cluster, scenario.trace, cli.slots);
  const auto points = birp::bench::run_epsilon_grid(scenario.cluster,
                                                    scenario.trace, cli.slots);

  const auto reference_cumulative = reference.cumulative_loss();
  const auto delta_at = [&](const birp::metrics::RunMetrics& m, int t) {
    const auto cumulative = m.cumulative_loss();
    const auto idx = static_cast<std::size_t>(
        std::min<int>(t, static_cast<int>(cumulative.size())) - 1);
    return cumulative[idx] - reference_cumulative[idx];
  };

  for (const int t : {10, std::min(100, cli.slots)}) {
    std::vector<std::string> header{"eps1 \\ eps2"};
    for (const double e2 : birp::bench::kEpsilon2Grid) {
      header.push_back(birp::util::fixed(e2, 2));
    }
    birp::util::TextTable table(std::move(header));
    for (const double e1 : birp::bench::kEpsilon1Grid) {
      std::vector<std::string> row{birp::util::fixed(e1, 2)};
      for (const double e2 : birp::bench::kEpsilon2Grid) {
        for (const auto& point : points) {
          if (point.epsilon1 == e1 && point.epsilon2 == e2) {
            row.push_back(birp::util::fixed(delta_at(point.metrics, t), 1));
          }
        }
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout, "Fig. 4 — Delta-Loss(eps1, eps2) at t = " +
                               std::to_string(t));
    std::cout << '\n';
  }

  std::cout << "Expected shape (paper section 5.3): large eps2 inflates the "
               "exploration padding and Delta-Loss early on; small eps1 is "
               "accurate early but lags as the workload drifts, so its rows "
               "rise between the two snapshots.\n";
  return 0;
}
