// Ablation A4: how sensitive is BIRP to the accuracy of its serial-latency
// inputs? The paper obtains gamma from an nn-Meter-style predictor [36];
// this bench compares BIRP scheduling against (a) the exact latency table,
// (b) the latency predictor fit from partial profiling, and (c) a crudely
// perturbed table (+-30% multiplicative error) — quantifying how much
// predictor quality the algorithm actually needs.
//
//   ./bench_ablation_gamma [--slots N] [--target X] [--seed S]
#include <iostream>

#include "common.hpp"
#include "birp/predictor/latency_predictor.hpp"
#include "birp/util/rng.hpp"

int main(int argc, char** argv) {
  const auto cli = birp::bench::Cli::parse(argc, argv, /*default_slots=*/120,
                                           /*default_target=*/0.65);
  auto scenario =
      birp::bench::make_scenario(birp::device::ClusterSpec::paper_large(), cli);

  const auto predictor =
      birp::predictor::LatencyPredictor::profile_and_fit(scenario.cluster);
  std::cout << "latency predictor mean relative error: "
            << birp::util::fixed(
                   100.0 * predictor.mean_relative_error(scenario.cluster), 1)
            << "% over " << predictor.training_samples()
            << " profiled pairs\n\n";

  // Crude table: exact gamma with fixed +-30% per-(k,i,j) perturbation.
  birp::util::Xoshiro256StarStar rng(0x9a44a);
  const int K = scenario.cluster.num_devices();
  const int I = scenario.cluster.num_apps();
  const int J = scenario.cluster.zoo().max_variants();
  std::vector<double> crude(static_cast<std::size_t>(K * I * J));
  for (auto& v : crude) v = rng.uniform(0.7, 1.3);
  const auto crude_lookup = [&](int k, int i, int j) {
    return scenario.cluster.gamma_s(k, i, j) *
           crude[static_cast<std::size_t>((k * I + i) * J + j)];
  };

  birp::core::BirpScheduler exact(scenario.cluster);

  birp::core::BirpConfig predicted_config;
  predicted_config.name_override = "BIRP-PREDICTED";
  predicted_config.problem.gamma_lookup = [&predictor](int k, int i, int j) {
    return predictor.predict_gamma_s(k, i, j);
  };
  birp::core::BirpScheduler predicted(scenario.cluster, predicted_config);

  birp::core::BirpConfig crude_config;
  crude_config.name_override = "BIRP-CRUDE";
  crude_config.problem.gamma_lookup = crude_lookup;
  birp::core::BirpScheduler crude_sched(scenario.cluster, crude_config);

  const auto m_exact = birp::bench::run_algorithm(scenario, exact);
  const auto m_predicted = birp::bench::run_algorithm(scenario, predicted);
  const auto m_crude = birp::bench::run_algorithm(scenario, crude_sched);

  birp::bench::print_summary(
      std::cout, "A4 — gamma-accuracy ablation",
      {{"BIRP (exact gamma)", &m_exact},
       {"BIRP (nn-Meter-style predictor)", &m_predicted},
       {"BIRP (+-30% crude table)", &m_crude}});

  std::cout << "\nReading: the MAB layer absorbs modest latency-prediction "
               "error (it corrects the compute model through observed TIR), "
               "so predictor-grade inputs suffice — the paper's reliance on "
               "[36] rather than exhaustive profiling is justified.\n";
  return 0;
}
