// Fig. 2: the TIR-vs-batch-size motivation experiment. Executes batch
// sweeps (b = 1..16, five noisy trials each, as in the paper) for three
// image-recognition-class models on a Jetson Nano, fits the piecewise
// power/constant curve of Eq. 2, and prints raw data plus the fits.
#include <iostream>

#include "birp/device/cluster.hpp"
#include "birp/util/piecewise_fit.hpp"
#include "birp/util/rng.hpp"
#include "birp/util/stats.hpp"
#include "birp/util/table.hpp"

int main() {
  const auto cluster = birp::device::ClusterSpec::paper_large();

  int nano = -1;
  for (int k = 0; k < cluster.num_devices(); ++k) {
    if (cluster.device(k).type == birp::device::DeviceType::JetsonNano) {
      nano = k;
      break;
    }
  }

  // LeNet-class, GoogLeNet-class, ResNet-18-class: the three smallest
  // image-recognition variants (app 2 in the standard zoo).
  struct Model {
    const char* label;
    int app;
    int variant;
  };
  const Model models[] = {{"LeNet-class (v0)", 2, 0},
                          {"GoogLeNet-class (v1)", 2, 1},
                          {"ResNet-18-class (v2)", 2, 2}};

  birp::util::Xoshiro256StarStar rng(0xf162);
  constexpr int kTrials = 5;
  constexpr int kMaxBatch = 16;
  constexpr double kNoiseSigma = 0.03;

  for (const auto& model : models) {
    const double gamma = cluster.gamma_s(nano, model.app, model.variant);
    const auto& truth = cluster.oracle_tir(nano, model.app, model.variant);

    std::vector<birp::util::TirSample> samples;
    birp::util::TextTable raw({"batch", "mean TIR (5 trials)", "truth TIR"});
    for (int b = 1; b <= kMaxBatch; ++b) {
      birp::util::RunningStats trials;
      for (int trial = 0; trial < kTrials; ++trial) {
        // Measured exactly as the paper does: run n batches in a fixed
        // window; throughput(b) = n*b/window, TIR = throughput(b)/
        // throughput(1). Equivalent to b*gamma/measured_batch_time.
        const double measured_s =
            truth.batch_time(gamma, b) * rng.lognormal(0.0, kNoiseSigma);
        const double tir = static_cast<double>(b) * gamma / measured_s;
        samples.push_back({b, tir});
        trials.add(tir);
      }
      raw.add_row({std::to_string(b), birp::util::fixed(trials.mean(), 3),
                   birp::util::fixed(truth.tir(b), 3)});
    }

    const auto fit = birp::util::fit_piecewise_tir(samples);
    raw.print(std::cout, std::string("Fig. 2 raw sweep — ") + model.label +
                             " on Jetson Nano");
    birp::util::TextTable fitted(
        {"", "eta (growth exponent)", "beta (threshold)", "C (saturated)",
         "R^2"});
    fitted.add_row({"fitted", birp::util::fixed(fit.eta, 3),
                    std::to_string(fit.beta), birp::util::fixed(fit.c, 3),
                    birp::util::fixed(fit.r_squared, 4)});
    fitted.add_row({"ground truth", birp::util::fixed(truth.eta, 3),
                    std::to_string(truth.beta), birp::util::fixed(truth.c, 3),
                    "-"});
    fitted.print(std::cout, "piecewise fit: TIR = b^eta (b <= beta), C (b > beta)");
    std::cout << '\n';
  }

  std::cout << "Paper reference fits: LeNet eta=0.32 beta=5; GoogLeNet "
               "eta=0.12 beta=10; ResNet-18 eta=0.12 beta=8. The shape — a "
               "power-law growth segment followed by a constant — is the "
               "claim under reproduction.\n";
  return 0;
}
