// Microbenchmarks (google-benchmark): solver, simulator, and runtime hot
// paths. These quantify the per-slot scheduling cost — the paper's
// real-time feasibility argument for solving P1/P2 every slot.
#include <benchmark/benchmark.h>

#include "birp/core/birp_scheduler.hpp"
#include "birp/core/problem.hpp"
#include "birp/device/cluster.hpp"
#include "birp/runtime/parallel_for.hpp"
#include "birp/runtime/thread_pool.hpp"
#include "birp/sim/simulator.hpp"
#include "birp/solver/branch_and_bound.hpp"
#include "birp/solver/simplex.hpp"
#include "birp/util/rng.hpp"
#include "birp/workload/generator.hpp"

namespace {

birp::solver::Model random_lp(int vars, int rows, std::uint64_t seed) {
  birp::util::Xoshiro256StarStar rng(seed);
  birp::solver::Model model;
  for (int v = 0; v < vars; ++v) {
    model.add_continuous("v" + std::to_string(v), 0.0, rng.uniform(1.0, 10.0));
    model.set_objective(v, rng.uniform(-1.0, 1.0));
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<birp::solver::Term> terms;
    double row_sum = 0.0;
    for (int v = 0; v < vars; ++v) {
      if (rng.bernoulli(0.3)) {
        const double c = rng.uniform(0.1, 2.0);
        terms.push_back({v, c});
        row_sum += c;
      }
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    model.add_constraint(terms, birp::solver::Relation::LessEqual,
                         row_sum * rng.uniform(1.0, 4.0));
  }
  return model;
}

void BM_SimplexRandomLp(benchmark::State& state) {
  const auto model = random_lp(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(0)) / 2, 7);
  for (auto _ : state) {
    auto solution = birp::solver::solve_lp(model);
    benchmark::DoNotOptimize(solution.objective);
  }
}
BENCHMARK(BM_SimplexRandomLp)->Arg(50)->Arg(150)->Arg(400);

void BM_SlotProblemLp(benchmark::State& state) {
  const auto cluster = birp::device::ClusterSpec::paper_large();
  birp::util::Grid2<std::int64_t> demand(cluster.num_apps(),
                                         cluster.num_devices(), 12);
  const birp::core::TirLookup lookup = [&](int k, int i, int j) {
    return cluster.oracle_tir(k, i, j);
  };
  const auto built =
      birp::core::build_slot_problem(cluster, demand, nullptr, lookup, {});
  for (auto _ : state) {
    auto solution = birp::solver::solve_lp(built.model);
    benchmark::DoNotOptimize(solution.objective);
  }
}
BENCHMARK(BM_SlotProblemLp)->Unit(benchmark::kMillisecond);

void BM_SlotProblemLpWarm(benchmark::State& state) {
  // Arg 0: cold two-phase solve. Arg 1: warm re-solve from the problem's own
  // optimal basis (the cross-slot case: consecutive slot LPs share structure,
  // so the previous basis refactorizes and needs few or no pivots).
  const bool warm = state.range(0) == 1;
  const auto cluster = birp::device::ClusterSpec::paper_large();
  birp::util::Grid2<std::int64_t> demand(cluster.num_apps(),
                                         cluster.num_devices(), 12);
  const birp::core::TirLookup lookup = [&](int k, int i, int j) {
    return cluster.oracle_tir(k, i, j);
  };
  const auto built =
      birp::core::build_slot_problem(cluster, demand, nullptr, lookup, {});
  const auto root =
      birp::solver::solve_lp(built.model, {}, {}, {}, nullptr, true);
  std::int64_t pivots = 0;
  std::int64_t solves = 0;
  for (auto _ : state) {
    auto solution = birp::solver::solve_lp(built.model, {}, {}, {},
                                           warm ? &root.basis : nullptr, false);
    pivots += solution.simplex_iterations;
    ++solves;
    benchmark::DoNotOptimize(solution.objective);
  }
  state.counters["pivots/solve"] = solves > 0
                                       ? static_cast<double>(pivots) /
                                             static_cast<double>(solves)
                                       : 0.0;
}
BENCHMARK(BM_SlotProblemLpWarm)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_MilpWaveThreads(benchmark::State& state) {
  // Wave-parallel branch-and-bound on the paper_large slot MILP. Arg is the
  // pool size (0 = no pool). Results are bit-identical across args; only
  // wall time changes.
  const int threads = static_cast<int>(state.range(0));
  const auto cluster = birp::device::ClusterSpec::paper_large();
  birp::util::Grid2<std::int64_t> demand(cluster.num_apps(),
                                         cluster.num_devices(), 14);
  const birp::core::TirLookup lookup = [&](int k, int i, int j) {
    return cluster.oracle_tir(k, i, j);
  };
  const auto built =
      birp::core::build_slot_problem(cluster, demand, nullptr, lookup, {});
  std::unique_ptr<birp::runtime::ThreadPool> pool;
  if (threads > 0) {
    pool = std::make_unique<birp::runtime::ThreadPool>(
        static_cast<std::size_t>(threads));
  }
  birp::solver::BranchAndBoundOptions options;
  options.max_nodes = 48;
  options.pool = pool.get();
  for (auto _ : state) {
    auto solution = birp::solver::solve_milp(built.model, options);
    benchmark::DoNotOptimize(solution.objective);
  }
}
BENCHMARK(BM_MilpWaveThreads)->Arg(0)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_BirpFullDecide(benchmark::State& state) {
  const auto cluster = birp::device::ClusterSpec::paper_large();
  birp::workload::GeneratorConfig config;
  config.slots = 2;
  config.mean_per_edge =
      birp::workload::suggested_mean_per_edge(cluster, 0.5);
  const auto trace = birp::workload::generate(cluster, config);
  birp::core::BirpScheduler scheduler(cluster);
  birp::sim::SlotState slot_state;
  slot_state.slot = 0;
  slot_state.demand = birp::util::Grid2<std::int64_t>(cluster.num_apps(),
                                                      cluster.num_devices(), 0);
  for (int i = 0; i < cluster.num_apps(); ++i) {
    for (int k = 0; k < cluster.num_devices(); ++k) {
      slot_state.demand(i, k) = trace.at(0, i, k);
    }
  }
  for (auto _ : state) {
    auto decision = scheduler.decide(slot_state);
    benchmark::DoNotOptimize(decision.total_served());
  }
}
BENCHMARK(BM_BirpFullDecide)->Unit(benchmark::kMillisecond);

void BM_SimulatorSlot(benchmark::State& state) {
  const auto cluster = birp::device::ClusterSpec::paper_large();
  birp::workload::GeneratorConfig config;
  config.slots = 1;
  config.mean_per_edge =
      birp::workload::suggested_mean_per_edge(cluster, 0.5);
  const auto trace = birp::workload::generate(cluster, config);

  // A trivially cheap scheduler isolates the executor's cost.
  class Greedy : public birp::sim::Scheduler {
   public:
    explicit Greedy(const birp::device::ClusterSpec& c) : cluster_(c) {}
    [[nodiscard]] std::string name() const override { return "greedy"; }
    [[nodiscard]] birp::sim::SlotDecision decide(
        const birp::sim::SlotState& s) override {
      birp::sim::SlotDecision d(cluster_.num_apps(),
                                cluster_.zoo().max_variants(),
                                cluster_.num_devices());
      for (int i = 0; i < cluster_.num_apps(); ++i) {
        for (int k = 0; k < cluster_.num_devices(); ++k) {
          const auto take = std::min<std::int64_t>(s.demand(i, k), 16);
          d.served(i, 0, k) = take;
          d.kernel(i, 0, k) = static_cast<int>(std::max<std::int64_t>(1, take));
          d.drops(i, k) = s.demand(i, k) - take;
        }
      }
      return d;
    }
   private:
    const birp::device::ClusterSpec& cluster_;
  } scheduler(cluster);

  birp::sim::SimulatorConfig sim_config;
  sim_config.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    birp::sim::Simulator simulator(cluster, trace, sim_config);
    state.ResumeTiming();
    auto result = simulator.step(scheduler);
    benchmark::DoNotOptimize(result.served);
  }
}
BENCHMARK(BM_SimulatorSlot)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_ThreadPoolSubmitDrain(benchmark::State& state) {
  birp::runtime::ThreadPool pool(4);
  for (auto _ : state) {
    std::atomic<int> counter{0};
    birp::runtime::parallel_for(pool, 0, 256,
                                [&counter](std::size_t) { counter.fetch_add(1); });
    benchmark::DoNotOptimize(counter.load());
  }
}
BENCHMARK(BM_ThreadPoolSubmitDrain)->Unit(benchmark::kMicrosecond);

void BM_TraceGeneration(benchmark::State& state) {
  const auto cluster = birp::device::ClusterSpec::paper_large();
  birp::workload::GeneratorConfig config;
  config.slots = static_cast<int>(state.range(0));
  config.mean_per_edge = 20.0;
  for (auto _ : state) {
    auto trace = birp::workload::generate(cluster, config);
    benchmark::DoNotOptimize(trace.total());
  }
}
BENCHMARK(BM_TraceGeneration)->Arg(100)->Arg(300)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
