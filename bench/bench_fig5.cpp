// Fig. 5: impact of the preset parameters eps1 / eps2 on the SLO failure
// rate p% at t = 100 and t = 300 over the (eps1, eps2) grid.
//
//   ./bench_fig5 [--slots N] [--target X] [--seed S]
#include <iostream>

#include "common.hpp"
#include "epsilon_sweep.hpp"

namespace {

double failure_percent_at(const birp::metrics::RunMetrics& full,
                          const birp::device::ClusterSpec& cluster,
                          const birp::workload::Trace& trace,
                          double eps1, double eps2, int t) {
  // Re-run truncated to t slots when t is shorter than the full horizon;
  // for the full horizon, reuse the existing metrics.
  if (t >= static_cast<int>(full.slot_loss().size())) {
    return full.failure_percent();
  }
  birp::core::BirpConfig config;
  config.tuner.epsilon1 = eps1;
  config.tuner.epsilon2 = eps2;
  birp::core::BirpScheduler scheduler(cluster, config);
  birp::sim::SimulatorConfig sim_config;
  sim_config.threads = 1;
  birp::sim::Simulator simulator(cluster, trace, sim_config);
  return simulator.run(scheduler, t).failure_percent();
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = birp::bench::Cli::parse(argc, argv, /*default_slots=*/300,
                                           /*default_target=*/0.6);
  auto scenario =
      birp::bench::make_scenario(birp::device::ClusterSpec::sweep(), cli);
  std::cout << "Fig. 5 epsilon sweep: " << scenario.trace.total()
            << " requests, " << cli.slots << " slots\n\n";

  const auto points = birp::bench::run_epsilon_grid(scenario.cluster,
                                                    scenario.trace, cli.slots);

  for (const int t : {std::min(100, cli.slots), cli.slots}) {
    std::vector<std::string> header{"eps1 \\ eps2"};
    for (const double e2 : birp::bench::kEpsilon2Grid) {
      header.push_back(birp::util::fixed(e2, 2));
    }
    birp::util::TextTable table(std::move(header));
    for (const double e1 : birp::bench::kEpsilon1Grid) {
      std::vector<std::string> row{birp::util::fixed(e1, 2)};
      for (const double e2 : birp::bench::kEpsilon2Grid) {
        for (const auto& point : points) {
          if (point.epsilon1 == e1 && point.epsilon2 == e2) {
            row.push_back(birp::util::fixed(
                failure_percent_at(point.metrics, scenario.cluster,
                                   scenario.trace, e1, e2, t),
                2));
          }
        }
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout,
                "Fig. 5 — SLO failure p%(eps1, eps2) at t = " +
                    std::to_string(t));
    std::cout << '\n';
  }

  std::cout << "Expected shape (paper section 5.3): very small eps2 limits "
               "exploration (stuck batching plans raise p% under load); "
               "large eps1 tolerates optimistic thresholds and over-batches, "
               "also raising p%. The sweet spot sits mid-grid (the paper "
               "picks eps1 = 0.04, eps2 = 0.07).\n";
  return 0;
}
