// Request-level serving comparison: BIRP vs the OAEI and MAX baselines on
// the asynchronous serving runtime (birp/serve) instead of the slot
// simulator. Every request is followed through admission, batch formation,
// dispatch, and execution, so the comparison surfaces what slot-level
// scoring hides: tail latency (p95/p99), queueing, and backpressure drops.
//
//   ./bench_serve [--slots N] [--target X] [--seed S] [--capacity C]
//                 [--wait F] [--burst M] [--quick] [--check]
//
// --capacity bounds each edge's admission queue (0 = unbounded) and --wait
// sets the partial-batch timeout as a fraction of tau (negative = wait for
// full batches). The run ends with the slot-boundary burst drill: demand
// bursts to M× the quiet level (--burst, default 4) against a stale MILP
// prior, comparing the fixed fill-to-target rule with the SLO-aware
// adaptive batcher (serve/adaptive.hpp) on goodput under SLO. --quick
// shrinks both phases for CI; --check exits nonzero unless the adaptive
// batcher strictly improves goodput under SLO on the burst drill.
// The request-level CSV (metrics::write_latency_csv) is printed for
// external plotting.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "birp/metrics/report_csv.hpp"
#include "birp/serve/engine.hpp"
#include "common.hpp"

namespace {

/// Replays a fixed decision every slot — the stale-prior role in the drill.
class ReplayScheduler : public birp::sim::Scheduler {
 public:
  explicit ReplayScheduler(birp::sim::SlotDecision decision)
      : decision_(std::move(decision)) {}
  [[nodiscard]] std::string name() const override { return "replay"; }
  [[nodiscard]] birp::sim::SlotDecision decide(
      const birp::sim::SlotState&) override {
    return decision_;
  }

 private:
  birp::sim::SlotDecision decision_;
};

/// Burst drill: every other slot's demand spikes to `burst`× the quiet
/// level while the replayed plan (largest variant, small kernel prior —
/// the memory-bound shape that forces many launches per job) stays stale.
/// Returns goodput under SLO for one batching mode.
struct DrillResult {
  birp::metrics::RunMetrics metrics;
  double goodput = 0.0;
};

DrillResult run_drill(const birp::device::ClusterSpec& cluster,
                      const birp::workload::Trace& trace,
                      const birp::sim::SlotDecision& decision,
                      std::uint64_t seed, bool adaptive) {
  birp::serve::ServeConfig config;
  config.noise_sigma = 0.0;
  config.seed = seed;
  config.adaptive.enabled = adaptive;
  config.adaptive.max_batch = 16;
  ReplayScheduler scheduler(decision);
  birp::serve::ServeEngine engine(cluster, trace, config);
  DrillResult result{engine.run(scheduler), 0.0};
  const double horizon_s = cluster.tau_s() * trace.slots();
  result.goodput = result.metrics.goodput_under_slo(horizon_s);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::int64_t capacity = 0;
  double wait_fraction = 0.05;
  double burst = 4.0;
  for (int a = 1; a < argc; ++a) {
    const std::string flag = argv[a];
    if (flag == "--capacity" && a + 1 < argc) {
      capacity = std::strtoll(argv[++a], nullptr, 0);
    } else if (flag == "--wait" && a + 1 < argc) {
      wait_fraction = std::atof(argv[++a]);
    } else if (flag == "--burst" && a + 1 < argc) {
      burst = std::atof(argv[++a]);
    } else if (flag == "--quick") {
      quick = true;
    } else if (flag == "--check") {
      check = true;
    }
  }
  const auto cli = birp::bench::Cli::parse(
      argc, argv, /*default_slots=*/quick ? 30 : 200, /*default_target=*/0.7);

  auto scenario =
      birp::bench::make_scenario(birp::device::ClusterSpec::paper_small(), cli);
  std::cout << "Request-level serving run: " << scenario.trace.total()
            << " requests over " << cli.slots << " slots, queue capacity "
            << (capacity > 0 ? std::to_string(capacity) : "unbounded")
            << ", batch wait " << wait_fraction << " tau\n\n";

  birp::serve::ServeConfig config;
  config.seed = cli.seed;
  config.queue_capacity = capacity;
  config.max_batch_wait_fraction = wait_fraction;

  birp::core::BirpScheduler birp(scenario.cluster);
  birp::sched::OaeiScheduler oaei(scenario.cluster);
  birp::sched::MaxScheduler max(scenario.cluster);

  const auto serve = [&](birp::sim::Scheduler& scheduler) {
    birp::serve::ServeEngine engine(scenario.cluster, scenario.trace, config);
    return engine.run(scheduler);
  };
  const auto m_birp = serve(birp);
  const auto m_oaei = serve(oaei);
  const auto m_max = serve(max);

  const std::vector<std::pair<std::string, const birp::metrics::RunMetrics*>>
      runs{{"BIRP", &m_birp}, {"OAEI", &m_oaei}, {"MAX", &m_max}};

  birp::bench::print_summary(std::cout, "Serving summary (slot metrics)",
                             runs);
  std::cout << '\n';

  const double horizon_s =
      scenario.cluster.tau_s() * static_cast<double>(cli.slots);
  birp::util::TextTable table({"algorithm", "goodput/s", "p50 tau", "p95 tau",
                               "p99 tau", "SLO att. %", "dropped",
                               "queue drops", "mean depth"});
  for (const auto& [name, m] : runs) {
    table.add_row(
        {name, birp::util::fixed(m->goodput_under_slo(horizon_s), 3),
         birp::util::fixed(m->latency_quantile(0.5), 3),
         birp::util::fixed(m->latency_quantile(0.95), 3),
         birp::util::fixed(m->latency_quantile(0.99), 3),
         birp::util::fixed(m->slo_attainment_percent(), 2),
         std::to_string(m->dropped()), std::to_string(m->queue_dropped()),
         m->queue_depth().count() > 0
             ? birp::util::fixed(m->queue_depth().mean(), 2)
             : "-"});
  }
  table.print(std::cout, "Per-request latency and goodput under SLO");

  // ------------------------------------------- slot-boundary burst drill ----
  // Bursty demand against a stale plan: the decision (largest variant,
  // kernel prior 2 — what a memory-bound MILP solve pins for big models)
  // was sized for the quiet slots; every other slot spikes to --burst times
  // that. Fixed fill-to-target pays one slow launch per kernel-load; the
  // adaptive batcher grows toward the backlog and seals early under
  // deadline pressure.
  const auto& cluster = scenario.cluster;
  const int drill_slots = quick ? 6 : 12;
  const auto spike =
      static_cast<std::int64_t>(std::llround(12.0 * std::max(1.0, burst)));
  birp::workload::Trace drill_trace(drill_slots, cluster.num_apps(),
                                    cluster.num_devices());
  for (int t = 0; t < drill_slots; ++t) {
    for (int k = 0; k < cluster.num_devices(); ++k) {
      drill_trace.set(t, 0, k, t % 2 == 0 ? spike : 2);
    }
  }
  const int drill_variant = cluster.zoo().num_variants(0) - 1;
  birp::sim::SlotDecision stale(cluster.num_apps(),
                                cluster.zoo().max_variants(),
                                cluster.num_devices());
  for (int k = 0; k < cluster.num_devices(); ++k) {
    stale.served(0, drill_variant, k) = spike;
    stale.kernel(0, drill_variant, k) = 2;
  }

  const auto fixed =
      run_drill(cluster, drill_trace, stale, cli.seed, /*adaptive=*/false);
  const auto adaptive =
      run_drill(cluster, drill_trace, stale, cli.seed, /*adaptive=*/true);

  std::cout << "\nSlot-boundary burst drill: " << drill_trace.total()
            << " requests over " << drill_slots << " slots, burst x" << burst
            << ", stale kernel prior 2 on variant " << drill_variant << "\n";
  birp::util::TextTable drill_table(
      {"batching", "goodput/s", "SLO att. %", "p95 tau", "full", "timeout",
       "deadline", "growth", "utility"});
  const auto drill_row = [&](const std::string& name,
                             const DrillResult& r) {
    const auto& m = r.metrics;
    drill_table.add_row(
        {name, birp::util::fixed(r.goodput, 3),
         birp::util::fixed(m.slo_attainment_percent(), 2),
         birp::util::fixed(m.latency_quantile(0.95), 3),
         std::to_string(m.batch_seals(
             static_cast<int>(birp::serve::SealReason::kFull))),
         std::to_string(m.batch_seals(
             static_cast<int>(birp::serve::SealReason::kTimeout))),
         std::to_string(m.batch_seals(
             static_cast<int>(birp::serve::SealReason::kDeadline))),
         std::to_string(m.batch_seals(
             static_cast<int>(birp::serve::SealReason::kGrowth))),
         std::to_string(m.batch_seals(
             static_cast<int>(birp::serve::SealReason::kUtility)))});
  };
  drill_row("fixed", fixed);
  drill_row("adaptive", adaptive);
  drill_table.print(std::cout, "Fixed fill-to-target vs adaptive batching");

  std::cout << "\nCSV (metrics::write_latency_csv):\n";
  birp::metrics::write_latency_csv(
      std::cout, {{"BIRP", &m_birp},
                  {"OAEI", &m_oaei},
                  {"MAX", &m_max},
                  {"fixed-burst", &fixed.metrics},
                  {"adaptive-burst", &adaptive.metrics}});

  if (check) {
    if (!(adaptive.goodput > fixed.goodput)) {
      std::cout << "\nCHECK FAILED: adaptive goodput "
                << birp::util::fixed(adaptive.goodput, 4)
                << " must strictly beat fixed "
                << birp::util::fixed(fixed.goodput, 4)
                << " on the burst drill\n";
      return 1;
    }
    std::cout << "\nCHECK OK: adaptive goodput "
              << birp::util::fixed(adaptive.goodput, 4) << " > fixed "
              << birp::util::fixed(fixed.goodput, 4) << '\n';
  }
  return 0;
}
