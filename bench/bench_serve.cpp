// Request-level serving comparison: BIRP vs the OAEI and MAX baselines on
// the asynchronous serving runtime (birp/serve) instead of the slot
// simulator. Every request is followed through admission, batch formation,
// dispatch, and execution, so the comparison surfaces what slot-level
// scoring hides: tail latency (p95/p99), queueing, and backpressure drops.
//
//   ./bench_serve [--slots N] [--target X] [--seed S] [--capacity C]
//                 [--wait F]
//
// --capacity bounds each edge's admission queue (0 = unbounded) and --wait
// sets the partial-batch timeout as a fraction of tau (negative = wait for
// full batches). Ends with the request-level CSV (metrics::write_latency_csv)
// for external plotting.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "birp/metrics/report_csv.hpp"
#include "birp/serve/engine.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  const auto cli = birp::bench::Cli::parse(argc, argv, /*default_slots=*/200,
                                           /*default_target=*/0.7);
  std::int64_t capacity = 0;
  double wait_fraction = 0.05;
  for (int a = 1; a < argc; ++a) {
    const std::string flag = argv[a];
    if (flag == "--capacity" && a + 1 < argc) {
      capacity = std::strtoll(argv[++a], nullptr, 0);
    } else if (flag == "--wait" && a + 1 < argc) {
      wait_fraction = std::atof(argv[++a]);
    }
  }

  auto scenario =
      birp::bench::make_scenario(birp::device::ClusterSpec::paper_small(), cli);
  std::cout << "Request-level serving run: " << scenario.trace.total()
            << " requests over " << cli.slots << " slots, queue capacity "
            << (capacity > 0 ? std::to_string(capacity) : "unbounded")
            << ", batch wait " << wait_fraction << " tau\n\n";

  birp::serve::ServeConfig config;
  config.seed = cli.seed;
  config.queue_capacity = capacity;
  config.max_batch_wait_fraction = wait_fraction;

  birp::core::BirpScheduler birp(scenario.cluster);
  birp::sched::OaeiScheduler oaei(scenario.cluster);
  birp::sched::MaxScheduler max(scenario.cluster);

  const auto serve = [&](birp::sim::Scheduler& scheduler) {
    birp::serve::ServeEngine engine(scenario.cluster, scenario.trace, config);
    return engine.run(scheduler);
  };
  const auto m_birp = serve(birp);
  const auto m_oaei = serve(oaei);
  const auto m_max = serve(max);

  const std::vector<std::pair<std::string, const birp::metrics::RunMetrics*>>
      runs{{"BIRP", &m_birp}, {"OAEI", &m_oaei}, {"MAX", &m_max}};

  birp::bench::print_summary(std::cout, "Serving summary (slot metrics)",
                             runs);
  std::cout << '\n';

  birp::util::TextTable table({"algorithm", "p50 tau", "p95 tau", "p99 tau",
                               "SLO att. %", "dropped", "queue drops",
                               "mean depth"});
  for (const auto& [name, m] : runs) {
    table.add_row(
        {name, birp::util::fixed(m->latency_quantile(0.5), 3),
         birp::util::fixed(m->latency_quantile(0.95), 3),
         birp::util::fixed(m->latency_quantile(0.99), 3),
         birp::util::fixed(m->slo_attainment_percent(), 2),
         std::to_string(m->dropped()), std::to_string(m->queue_dropped()),
         m->queue_depth().count() > 0
             ? birp::util::fixed(m->queue_depth().mean(), 2)
             : "-"});
  }
  table.print(std::cout, "Per-request latency and SLO attainment");

  std::cout << "\nCSV (metrics::write_latency_csv):\n";
  birp::metrics::write_latency_csv(
      std::cout, {{"BIRP", &m_birp}, {"OAEI", &m_oaei}, {"MAX", &m_max}});
  return 0;
}
