// Request-level serving comparison: BIRP vs the OAEI and MAX baselines on
// the asynchronous serving runtime (birp/serve) instead of the slot
// simulator. Every request is followed through admission, batch formation,
// dispatch, and execution, so the comparison surfaces what slot-level
// scoring hides: tail latency (p95/p99), queueing, and backpressure drops.
//
//   ./bench_serve [--slots N] [--target X] [--seed S] [--capacity C]
//                 [--wait F] [--burst M] [--quick] [--check]
//                 [--json PATH] [--baseline PATH]
//
// --capacity bounds each edge's admission queue (0 = unbounded) and --wait
// sets the partial-batch timeout as a fraction of tau (negative = wait for
// full batches). Two drills close the run:
//
//   * The slot-boundary burst drill: demand bursts to M× the quiet level
//     (--burst, default 4) against a stale MILP prior, comparing the fixed
//     fill-to-target rule with the SLO-aware adaptive batcher on goodput
//     under SLO.
//   * The hot-path queue drill: the same per-slot admission -> batch ->
//     dispatch lifecycle (burst-shaped slots: spike/quiet arrival counts
//     alternating, one queue lifecycle per slot, exactly the seed engine's
//     per-(slot, edge) usage) driven through the kept-verbatim
//     LegacyAdmissionQueue (mutexed deques + departure heap, the seed
//     implementation) and through the ring/slab/wheel rewrite, measuring
//     sustained req/s and heap allocations per request (bench_serve links
//     the counting operator-new hook, so the alloc numbers are real).
//
// --json writes the tracked BENCH_serve.json (hot-path req/s, speedup,
// allocs/request, admit-to-launch p50/p99). --baseline reads a previously
// committed BENCH_serve.json and exits nonzero when the fresh speedup
// regresses more than 10% below the committed one. --quick shrinks every
// phase for CI; --check exits nonzero unless the adaptive batcher strictly
// improves goodput on the burst drill, the ring arm's steady state performs
// zero allocations per request, and the ring arm does not regress below
// 0.85x the legacy queue's throughput. (On one uncontended core the two
// arms are near parity — the legacy sorted-vector cursor is extremely fast
// without producer concurrency; the rewrite's wins are the zero-alloc
// steady state, the lock-free multi-producer staging contract, and O(1)
// bulk staging — so the gate pins "no regression", not a speedup this
// hardware cannot honestly show.) The request-level CSV
// (metrics::write_latency_csv) is printed for external plotting.
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "birp/metrics/report_csv.hpp"
#include "birp/serve/engine.hpp"
#include "birp/serve/legacy_queue.hpp"
#include "birp/serve/queue.hpp"
#include "birp/util/alloc_count.hpp"
#include "common.hpp"

namespace {

/// Replays a fixed decision every slot — the stale-prior role in the drill.
class ReplayScheduler : public birp::sim::Scheduler {
 public:
  explicit ReplayScheduler(birp::sim::SlotDecision decision)
      : decision_(std::move(decision)) {}
  [[nodiscard]] std::string name() const override { return "replay"; }
  [[nodiscard]] birp::sim::SlotDecision decide(
      const birp::sim::SlotState&) override {
    return decision_;
  }

 private:
  birp::sim::SlotDecision decision_;
};

/// Burst drill: every other slot's demand spikes to `burst`× the quiet
/// level while the replayed plan (largest variant, small kernel prior —
/// the memory-bound shape that forces many launches per job) stays stale.
/// Returns goodput under SLO for one batching mode.
struct DrillResult {
  birp::metrics::RunMetrics metrics;
  double goodput = 0.0;
};

DrillResult run_drill(const birp::device::ClusterSpec& cluster,
                      const birp::workload::Trace& trace,
                      const birp::sim::SlotDecision& decision,
                      std::uint64_t seed, bool adaptive) {
  birp::serve::ServeConfig config;
  config.noise_sigma = 0.0;
  config.seed = seed;
  config.adaptive.enabled = adaptive;
  config.adaptive.max_batch = 16;
  ReplayScheduler scheduler(decision);
  birp::serve::ServeEngine engine(cluster, trace, config);
  DrillResult result{engine.run(scheduler), 0.0};
  const double horizon_s = cluster.tau_s() * trace.slots();
  result.goodput = result.metrics.goodput_under_slo(horizon_s);
  return result;
}

// ------------------------------------------------------ hot-path drill ----

struct HotPathArm {
  double req_per_s = 0.0;
  double allocs_per_request = 0.0;
  std::int64_t requests = 0;
};

struct HotPathResult {
  HotPathArm legacy;
  HotPathArm ring;
  double speedup = 0.0;
};

/// Seeded arrival stream, sorted by (available_s, app, origin, seq).
std::vector<birp::serve::ServeItem> drill_stream(int apps, int count,
                                                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> when(0.0, 60.0);
  std::vector<birp::serve::ServeItem> stream;
  stream.reserve(static_cast<std::size_t>(count));
  for (int n = 0; n < count; ++n) {
    birp::serve::ServeItem item;
    item.app = static_cast<int>(rng() % static_cast<std::uint64_t>(apps));
    item.arrival_s = when(rng);
    item.available_s = item.arrival_s;
    stream.push_back(item);
  }
  std::sort(stream.begin(), stream.end(),
            [](const birp::serve::ServeItem& a,
               const birp::serve::ServeItem& b) {
              if (a.available_s != b.available_s)
                return a.available_s < b.available_s;
              return a.app < b.app;
            });
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i].seq = static_cast<std::int64_t>(i);
  }
  return stream;
}

/// Runs `body` once unmeasured (warmup: containers reach their high-water
/// capacity) then `iters` times timed, with the thread's allocation
/// counters sampled around the measured region.
template <typename Body>
HotPathArm measure_arm(int iters, std::int64_t per_iter, Body&& body) {
  body();
  const std::int64_t allocs_before = birp::util::alloc_counts().allocs;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iters; ++it) body();
  const auto stop = std::chrono::steady_clock::now();
  const std::int64_t allocs =
      birp::util::alloc_counts().allocs - allocs_before;
  HotPathArm arm;
  arm.requests = per_iter * iters;
  const double secs = std::chrono::duration<double>(stop - start).count();
  arm.req_per_s =
      secs > 0.0 ? static_cast<double>(arm.requests) / secs : 0.0;
  arm.allocs_per_request =
      static_cast<double>(allocs) / static_cast<double>(arm.requests);
  return arm;
}

HotPathResult run_hot_path_drill(bool quick, std::uint64_t seed) {
  using birp::serve::AdmissionQueue;
  using birp::serve::LegacyAdmissionQueue;
  using birp::serve::QueuePolicy;
  using birp::serve::ServeItem;

  constexpr int kApps = 4;
  constexpr std::size_t kBatch = 8;
  // Burst-shaped slots, like the engine's per-(slot, edge) lifecycle: a
  // spike slot followed by a quiet slot, repeating. The quiet slots are
  // where per-lifecycle fixed costs (construction vs reset) show up; the
  // spikes exercise sustained admission.
  constexpr int kSpike = 192;
  constexpr int kQuiet = 8;
  const int count = quick ? 20000 : 120000;
  const int iters = quick ? 4 : 10;
  const auto stream = drill_stream(kApps, count, seed);

  // Pre-slice the stream into per-slot sub-streams (harness cost, outside
  // the measured region). Slots alternate spike/quiet sizes.
  std::vector<std::vector<ServeItem>> slots;
  for (std::size_t at = 0; at < stream.size();) {
    const std::size_t take = std::min<std::size_t>(
        slots.size() % 2 == 0 ? kSpike : kQuiet, stream.size() - at);
    slots.emplace_back(stream.begin() + static_cast<std::ptrdiff_t>(at),
                       stream.begin() + static_cast<std::ptrdiff_t>(at + take));
    at += take;
  }

  // Both arms run the identical per-slot admission -> batch -> dispatch
  // loop: fill toward a batch, take it, release its buffer slots at the
  // (monotone) dispatch time. `sink` keeps the loop's results observable
  // so nothing is optimized away.
  std::int64_t sink = 0;

  const auto legacy_arm = measure_arm(iters, count, [&] {
    for (const auto& slot : slots) {
      // A fresh queue per slot, exactly like the seed engine built one per
      // (slot, edge): the stream copy, deque/heap/std::function
      // construction, and teardown are part of the measured legacy cost.
      LegacyAdmissionQueue queue(kApps, slot, /*capacity=*/0,
                                 QueuePolicy::kRejectNewest);
      double now_s = 0.0;
      bool work = true;
      while (work) {
        work = false;
        for (int app = 0; app < kApps; ++app) {
          queue.fill(app, kBatch);
          const auto waiting = queue.waiting_size(app);
          if (waiting == 0) continue;
          const auto taken =
              queue.take(app, std::min<std::size_t>(kBatch, waiting));
          now_s = std::max(now_s, taken.back().available_s);
          queue.on_dispatch(now_s, taken.size());
          sink += static_cast<std::int64_t>(taken.size());
          work = true;
        }
      }
    }
  });

  // One persistent queue re-armed per slot — the rewrite's steady-state
  // discipline: every container below is at capacity after the warmup
  // pass, so the measured region performs zero heap allocations. Staging
  // goes through offer_all (one ring CAS per slot), the same bulk path the
  // engine uses.
  AdmissionQueue queue;
  queue.reserve(kApps, kSpike);
  std::vector<ServeItem> members;
  members.reserve(kBatch);
  const auto ring_arm = measure_arm(iters, count, [&] {
    for (const auto& slot : slots) {
      queue.reset(kApps, /*capacity=*/0, QueuePolicy::kRejectNewest, {},
                  slot.size(), slot.empty() ? 0.0 : slot.front().available_s,
                  0.05);
      queue.offer_all(slot.data(), slot.size());
      double now_s = 0.0;
      bool work = true;
      while (work) {
        work = false;
        for (int app = 0; app < kApps; ++app) {
          queue.fill(app, kBatch);
          const auto waiting = queue.waiting(app).size();
          if (waiting == 0) continue;
          queue.take_into(app, std::min<std::size_t>(kBatch, waiting),
                          members);
          now_s = std::max(now_s, members.back().available_s);
          queue.on_dispatch(now_s, members.size());
          sink += static_cast<std::int64_t>(members.size());
          work = true;
        }
      }
    }
  });

  HotPathResult result{legacy_arm, ring_arm, 0.0};
  result.speedup = legacy_arm.req_per_s > 0.0
                       ? ring_arm.req_per_s / legacy_arm.req_per_s
                       : 0.0;
  if (sink != static_cast<std::int64_t>(stream.size()) * 2 * (iters + 1)) {
    std::cout << "(hot-path drill processed " << sink << " takes)\n";
  }
  return result;
}

/// Crude single-key JSON number extraction for the --baseline gate (the
/// file is our own flat output; a full parser would be a dependency for
/// nothing).
bool json_number(const std::string& text, const std::string& key,
                 double* out) {
  const auto at = text.find('"' + key + '"');
  if (at == std::string::npos) return false;
  const auto colon = text.find(':', at);
  if (colon == std::string::npos) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str() + colon + 1, &end);
  if (end == text.c_str() + colon + 1) return false;
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::int64_t capacity = 0;
  double wait_fraction = 0.05;
  double burst = 4.0;
  std::string json_path;
  std::string baseline_path;
  for (int a = 1; a < argc; ++a) {
    const std::string flag = argv[a];
    if (flag == "--capacity" && a + 1 < argc) {
      capacity = std::strtoll(argv[++a], nullptr, 0);
    } else if (flag == "--wait" && a + 1 < argc) {
      wait_fraction = std::atof(argv[++a]);
    } else if (flag == "--burst" && a + 1 < argc) {
      burst = std::atof(argv[++a]);
    } else if (flag == "--json" && a + 1 < argc) {
      json_path = argv[++a];
    } else if (flag == "--baseline" && a + 1 < argc) {
      baseline_path = argv[++a];
    } else if (flag == "--quick") {
      quick = true;
    } else if (flag == "--check") {
      check = true;
    }
  }
  const auto cli = birp::bench::Cli::parse(
      argc, argv, /*default_slots=*/quick ? 30 : 200, /*default_target=*/0.7);

  auto scenario =
      birp::bench::make_scenario(birp::device::ClusterSpec::paper_small(), cli);
  std::cout << "Request-level serving run: " << scenario.trace.total()
            << " requests over " << cli.slots << " slots, queue capacity "
            << (capacity > 0 ? std::to_string(capacity) : "unbounded")
            << ", batch wait " << wait_fraction << " tau\n\n";

  birp::serve::ServeConfig config;
  config.seed = cli.seed;
  config.queue_capacity = capacity;
  config.max_batch_wait_fraction = wait_fraction;

  birp::core::BirpScheduler birp(scenario.cluster);
  birp::sched::OaeiScheduler oaei(scenario.cluster);
  birp::sched::MaxScheduler max(scenario.cluster);

  const auto serve = [&](birp::sim::Scheduler& scheduler) {
    birp::serve::ServeEngine engine(scenario.cluster, scenario.trace, config);
    return engine.run(scheduler);
  };
  const auto m_birp = serve(birp);
  const auto m_oaei = serve(oaei);
  const auto m_max = serve(max);

  const std::vector<std::pair<std::string, const birp::metrics::RunMetrics*>>
      runs{{"BIRP", &m_birp}, {"OAEI", &m_oaei}, {"MAX", &m_max}};

  birp::bench::print_summary(std::cout, "Serving summary (slot metrics)",
                             runs);
  std::cout << '\n';

  const double horizon_s =
      scenario.cluster.tau_s() * static_cast<double>(cli.slots);
  birp::util::TextTable table({"algorithm", "goodput/s", "p50 tau", "p95 tau",
                               "p99 tau", "a2l p50", "a2l p99", "SLO att. %",
                               "dropped", "queue drops", "mean depth"});
  for (const auto& [name, m] : runs) {
    const auto& a2l = m->admit_to_launch();
    table.add_row(
        {name, birp::util::fixed(m->goodput_under_slo(horizon_s), 3),
         birp::util::fixed(m->latency_quantile(0.5), 3),
         birp::util::fixed(m->latency_quantile(0.95), 3),
         birp::util::fixed(m->latency_quantile(0.99), 3),
         a2l.empty() ? "-" : birp::util::fixed(a2l.quantile(0.5), 3),
         a2l.empty() ? "-" : birp::util::fixed(a2l.quantile(0.99), 3),
         birp::util::fixed(m->slo_attainment_percent(), 2),
         std::to_string(m->dropped()), std::to_string(m->queue_dropped()),
         m->queue_depth().count() > 0
             ? birp::util::fixed(m->queue_depth().mean(), 2)
             : "-"});
  }
  table.print(std::cout,
              "Per-request latency (incl. admit-to-launch, tau units) and "
              "goodput under SLO");

  // ------------------------------------------- slot-boundary burst drill ----
  // Bursty demand against a stale plan: the decision (largest variant,
  // kernel prior 2 — what a memory-bound MILP solve pins for big models)
  // was sized for the quiet slots; every other slot spikes to --burst times
  // that. Fixed fill-to-target pays one slow launch per kernel-load; the
  // adaptive batcher grows toward the backlog and seals early under
  // deadline pressure.
  const auto& cluster = scenario.cluster;
  const int drill_slots = quick ? 6 : 12;
  const auto spike =
      static_cast<std::int64_t>(std::llround(12.0 * std::max(1.0, burst)));
  birp::workload::Trace drill_trace(drill_slots, cluster.num_apps(),
                                    cluster.num_devices());
  for (int t = 0; t < drill_slots; ++t) {
    for (int k = 0; k < cluster.num_devices(); ++k) {
      drill_trace.set(t, 0, k, t % 2 == 0 ? spike : 2);
    }
  }
  const int drill_variant = cluster.zoo().num_variants(0) - 1;
  birp::sim::SlotDecision stale(cluster.num_apps(),
                                cluster.zoo().max_variants(),
                                cluster.num_devices());
  for (int k = 0; k < cluster.num_devices(); ++k) {
    stale.served(0, drill_variant, k) = spike;
    stale.kernel(0, drill_variant, k) = 2;
  }

  const auto fixed =
      run_drill(cluster, drill_trace, stale, cli.seed, /*adaptive=*/false);
  const auto adaptive =
      run_drill(cluster, drill_trace, stale, cli.seed, /*adaptive=*/true);

  std::cout << "\nSlot-boundary burst drill: " << drill_trace.total()
            << " requests over " << drill_slots << " slots, burst x" << burst
            << ", stale kernel prior 2 on variant " << drill_variant << "\n";
  birp::util::TextTable drill_table(
      {"batching", "goodput/s", "SLO att. %", "p95 tau", "full", "timeout",
       "deadline", "growth", "utility"});
  const auto drill_row = [&](const std::string& name,
                             const DrillResult& r) {
    const auto& m = r.metrics;
    drill_table.add_row(
        {name, birp::util::fixed(r.goodput, 3),
         birp::util::fixed(m.slo_attainment_percent(), 2),
         birp::util::fixed(m.latency_quantile(0.95), 3),
         std::to_string(m.batch_seals(
             static_cast<int>(birp::serve::SealReason::kFull))),
         std::to_string(m.batch_seals(
             static_cast<int>(birp::serve::SealReason::kTimeout))),
         std::to_string(m.batch_seals(
             static_cast<int>(birp::serve::SealReason::kDeadline))),
         std::to_string(m.batch_seals(
             static_cast<int>(birp::serve::SealReason::kGrowth))),
         std::to_string(m.batch_seals(
             static_cast<int>(birp::serve::SealReason::kUtility)))});
  };
  drill_row("fixed", fixed);
  drill_row("adaptive", adaptive);
  drill_table.print(std::cout, "Fixed fill-to-target vs adaptive batching");

  // ------------------------------------------------- hot-path queue drill ----
  const auto hot = run_hot_path_drill(quick, cli.seed);
  std::cout << "\nHot-path queue drill ("
            << (birp::util::alloc_counting_active()
                    ? "alloc counting active"
                    : "alloc counting INACTIVE")
            << "):\n";
  birp::util::TextTable hot_table(
      {"queue", "req/s", "allocs/request", "requests"});
  hot_table.add_row({"legacy (mutex+deque+heap)",
                     birp::util::fixed(hot.legacy.req_per_s, 0),
                     birp::util::fixed(hot.legacy.allocs_per_request, 4),
                     std::to_string(hot.legacy.requests)});
  hot_table.add_row({"ring (mpsc+slab+wheel)",
                     birp::util::fixed(hot.ring.req_per_s, 0),
                     birp::util::fixed(hot.ring.allocs_per_request, 4),
                     std::to_string(hot.ring.requests)});
  hot_table.print(std::cout, "Sustained admission -> batch -> dispatch");
  std::cout << "speedup: x" << birp::util::fixed(hot.speedup, 2) << "\n";

  std::cout << "\nCSV (metrics::write_latency_csv):\n";
  birp::metrics::write_latency_csv(
      std::cout, {{"BIRP", &m_birp},
                  {"OAEI", &m_oaei},
                  {"MAX", &m_max},
                  {"fixed-burst", &fixed.metrics},
                  {"adaptive-burst", &adaptive.metrics}});

  const auto& a2l = m_birp.admit_to_launch();
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out.precision(6);
    out << std::fixed;
    out << "{\n"
        << "  \"benchmark\": \"bench_serve\",\n"
        << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
        << "  \"slots\": " << cli.slots << ",\n"
        << "  \"seed\": " << cli.seed << ",\n"
        << "  \"hot_path\": {\n"
        << "    \"requests\": " << hot.ring.requests << ",\n"
        << "    \"legacy_req_per_s\": " << hot.legacy.req_per_s << ",\n"
        << "    \"ring_req_per_s\": " << hot.ring.req_per_s << ",\n"
        << "    \"speedup\": " << hot.speedup << ",\n"
        << "    \"legacy_allocs_per_request\": "
        << hot.legacy.allocs_per_request << ",\n"
        << "    \"ring_allocs_per_request\": " << hot.ring.allocs_per_request
        << "\n"
        << "  },\n"
        << "  \"admit_to_launch_tau\": {\n"
        << "    \"p50\": " << (a2l.empty() ? 0.0 : a2l.quantile(0.5)) << ",\n"
        << "    \"p99\": " << (a2l.empty() ? 0.0 : a2l.quantile(0.99))
        << "\n"
        << "  },\n"
        << "  \"burst_drill\": {\n"
        << "    \"fixed_goodput\": " << fixed.goodput << ",\n"
        << "    \"adaptive_goodput\": " << adaptive.goodput << "\n"
        << "  }\n"
        << "}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }

  int status = 0;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    double base_speedup = 0.0;
    if (!in || !json_number(text, "speedup", &base_speedup)) {
      std::cout << "\nBASELINE FAILED: could not read speedup from "
                << baseline_path << "\n";
      status = 1;
    } else if (hot.speedup < 0.9 * base_speedup) {
      // The ring/legacy ratio is machine-independent in a way raw req/s is
      // not, so the committed baseline gates on it: a fresh speedup more
      // than 10% below the committed one is a hot-path regression.
      std::cout << "\nBASELINE FAILED: speedup x"
                << birp::util::fixed(hot.speedup, 2)
                << " regressed >10% below committed x"
                << birp::util::fixed(base_speedup, 2) << "\n";
      status = 1;
    } else {
      std::cout << "\nBASELINE OK: speedup x"
                << birp::util::fixed(hot.speedup, 2) << " vs committed x"
                << birp::util::fixed(base_speedup, 2) << "\n";
    }
  }

  if (check) {
    if (!(adaptive.goodput > fixed.goodput)) {
      std::cout << "\nCHECK FAILED: adaptive goodput "
                << birp::util::fixed(adaptive.goodput, 4)
                << " must strictly beat fixed "
                << birp::util::fixed(fixed.goodput, 4)
                << " on the burst drill\n";
      status = 1;
    } else if (hot.speedup < 0.85) {
      // Single-threaded on one core the two arms are near parity (the
      // rewrite buys zero allocs and a lock-free multi-producer contract,
      // not raw single-thread speed), so the gate pins "no regression":
      // the ring arm must stay within 15% of the legacy queue.
      std::cout << "\nCHECK FAILED: hot-path speedup x"
                << birp::util::fixed(hot.speedup, 2)
                << " regressed below x0.85 of the legacy mutex queue\n";
      status = 1;
    } else if (birp::util::alloc_counting_active() &&
               hot.ring.allocs_per_request > 0.0) {
      std::cout << "\nCHECK FAILED: ring arm performed "
                << birp::util::fixed(hot.ring.allocs_per_request, 4)
                << " allocs/request in steady state (must be 0)\n";
      status = 1;
    } else {
      std::cout << "\nCHECK OK: adaptive goodput "
                << birp::util::fixed(adaptive.goodput, 4) << " > fixed "
                << birp::util::fixed(fixed.goodput, 4) << ", hot-path x"
                << birp::util::fixed(hot.speedup, 2)
                << ", ring allocs/request "
                << birp::util::fixed(hot.ring.allocs_per_request, 4) << "\n";
    }
  }
  return status;
}
