// Ablation A2 + A3: what do the MAB tuner and redistribution each buy?
//
//  * BIRP            — full system (online tuning + redistribution)
//  * BIRP-FROZEN     — conservative Eq. 23 initialization, feedback ignored
//  * BIRP-OFF        — oracle TIR curves (upper reference)
//  * NO-REDIST       — full tuning, redistribution disabled
//
//   ./bench_ablation_mab [--slots N] [--target X] [--seed S]
#include <iostream>

#include "common.hpp"
#include "birp/sched/no_redist.hpp"

int main(int argc, char** argv) {
  const auto cli = birp::bench::Cli::parse(argc, argv, /*default_slots=*/150,
                                           /*default_target=*/0.6);
  auto scenario =
      birp::bench::make_scenario(birp::device::ClusterSpec::paper_large(), cli);
  std::cout << "MAB / redistribution ablation: " << scenario.trace.total()
            << " requests over " << cli.slots << " slots\n\n";

  birp::core::BirpScheduler birp(scenario.cluster);

  birp::core::BirpConfig frozen_config;
  frozen_config.name_override = "BIRP-FROZEN";
  birp::core::BirpScheduler frozen(scenario.cluster, frozen_config);

  auto off = birp::core::BirpScheduler::offline(scenario.cluster);
  auto noredist = birp::sched::make_no_redist(scenario.cluster);

  const auto m_birp = birp::bench::run_algorithm(scenario, birp);
  // Frozen variant: run with observation reporting disabled so the tuner
  // never sees feedback and stays at the Eq. 23 initialization.
  birp::sim::SimulatorConfig frozen_sim;
  frozen_sim.report_observations = false;
  birp::metrics::RunMetrics m_frozen = [&] {
    birp::sim::Simulator simulator(scenario.cluster, scenario.trace,
                                   frozen_sim);
    return simulator.run(frozen);
  }();
  const auto m_off = birp::bench::run_algorithm(scenario, off);
  const auto m_noredist = birp::bench::run_algorithm(scenario, noredist);

  const std::vector<std::pair<std::string, const birp::metrics::RunMetrics*>>
      runs{{"BIRP", &m_birp},
           {"BIRP-FROZEN", &m_frozen},
           {"BIRP-OFF", &m_off},
           {"NO-REDIST", &m_noredist}};
  birp::bench::print_summary(std::cout, "A2/A3 — component ablation", runs);

  std::cout << "\nReading:\n"
            << "  tuning value  = FROZEN loss - BIRP loss = "
            << birp::util::fixed(m_frozen.total_loss() - m_birp.total_loss(), 1)
            << " (what online hyperparameter learning buys; Eq. 15-22)\n"
            << "  oracle gap    = BIRP loss - OFF loss = "
            << birp::util::fixed(m_birp.total_loss() - m_off.total_loss(), 1)
            << " (residual exploration cost; paper Fig. 6c shows it "
               "shrinking)\n"
            << "  redistribution value = NO-REDIST loss - BIRP loss = "
            << birp::util::fixed(m_noredist.total_loss() - m_birp.total_loss(),
                                 1)
            << " and failure delta = "
            << birp::util::fixed(
                   m_noredist.failure_percent() - m_birp.failure_percent(), 2)
            << "pp (what moving requests between edges buys)\n";
  return 0;
}
