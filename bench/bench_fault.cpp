// Fault tolerance comparison: BIRP (with and without failover re-admission)
// vs the OAEI and MAX baselines under injected edge failures.
//
//   ./bench_fault [--slots N] [--target X] [--seed S] [--csv PATH]
//
// Four fault scenarios run on the same workload trace:
//
//   none       — fault-free control (must match the regular benches)
//   crash      — one edge hard-down for a contiguous window
//   flapping   — one edge repeatedly cycling down/up
//   degraded   — one edge's wireless bandwidth cut to 30% for most of the run
//   straggler  — one edge computing 2.5x slower for most of the run
//
// Each scenario runs BIRP with failover, BIRP without, OAEI, and MAX. The
// headline comparison is the single-edge-crash scenario: failover re-admits
// the crashed edge's orphans at surviving edges, so BIRP+failover must show a
// strictly lower SLO failure rate than BIRP without it. A combined summary
// CSV (scenario x algorithm) is written to --csv (default
// bench_fault_summary.csv); everything is seeded, so the same flags produce
// a bit-identical file.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "birp/fault/fault_plan.hpp"
#include "birp/util/csv.hpp"
#include "common.hpp"

namespace {

struct ScenarioRun {
  std::string scenario;
  std::string algorithm;
  birp::metrics::RunMetrics metrics;
};

birp::fault::FaultPlan make_plan(const std::string& name, int slots) {
  using birp::fault::FaultPlan;
  if (name == "crash") {
    return FaultPlan::single_edge_crash(1, slots / 4, slots / 4 + slots / 5);
  }
  if (name == "flapping") {
    return FaultPlan::flapping_edge(2, slots / 6, slots, 5, 15);
  }
  if (name == "degraded") {
    return FaultPlan::degraded_bandwidth(0, slots / 5, 4 * slots / 5, 0.3);
  }
  if (name == "straggler") {
    FaultPlan plan;
    plan.add_straggler(1, slots / 5, 4 * slots / 5, 2.5);
    return plan;
  }
  return {};  // "none"
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = birp::bench::Cli::parse(argc, argv, /*default_slots=*/200,
                                           /*default_target=*/0.6);
  std::string csv_path = "bench_fault_summary.csv";
  for (int a = 1; a < argc; ++a) {
    const std::string flag = argv[a];
    if (flag == "--csv" && a + 1 < argc) csv_path = argv[++a];
  }

  auto scenario =
      birp::bench::make_scenario(birp::device::ClusterSpec::paper_small(), cli);
  std::cout << "Fault-tolerance run: " << scenario.trace.total()
            << " requests over " << cli.slots << " slots, seed 0x" << std::hex
            << cli.seed << std::dec << "\n\n";

  const std::vector<std::string> scenarios{"none", "crash", "flapping",
                                           "degraded", "straggler"};
  std::vector<ScenarioRun> runs;

  const auto run_one = [&](const std::string& scenario_name,
                           const std::string& algorithm, bool failover,
                           auto make_scheduler) {
    birp::sim::SimulatorConfig config;
    config.seed = cli.seed;
    config.fault_plan = make_plan(scenario_name, cli.slots);
    config.failover.enabled = failover;
    auto scheduler = make_scheduler();
    birp::sim::Simulator simulator(scenario.cluster, scenario.trace, config);
    runs.push_back({scenario_name, algorithm, simulator.run(scheduler)});
  };

  for (const auto& name : scenarios) {
    run_one(name, "BIRP+FO", true, [&] {
      return birp::core::BirpScheduler(scenario.cluster);
    });
    run_one(name, "BIRP", false, [&] {
      return birp::core::BirpScheduler(scenario.cluster);
    });
    run_one(name, "OAEI", false, [&] {
      return birp::sched::OaeiScheduler(scenario.cluster);
    });
    run_one(name, "MAX", false, [&] {
      return birp::sched::MaxScheduler(scenario.cluster);
    });

    birp::util::TextTable table({"algorithm", "SLO failure p%", "total loss",
                                 "dropped", "orphaned", "retries",
                                 "availability %"});
    for (const auto& run : runs) {
      if (run.scenario != name) continue;
      const auto& m = run.metrics;
      table.add_row({run.algorithm, birp::util::fixed(m.failure_percent(), 2),
                     birp::util::fixed(m.total_loss(), 1),
                     std::to_string(m.dropped()),
                     std::to_string(m.orphan_dropped()),
                     std::to_string(m.retries()),
                     birp::util::fixed(m.availability_percent(), 2)});
    }
    table.print(std::cout, "Scenario: " + name);
    std::cout << '\n';
  }

  // Headline: failover must strictly beat no-failover BIRP under the crash.
  const auto find = [&](const std::string& s, const std::string& a)
      -> const birp::metrics::RunMetrics& {
    for (const auto& run : runs) {
      if (run.scenario == s && run.algorithm == a) return run.metrics;
    }
    birp::util::fail("bench_fault: missing run " + s + "/" + a);
  };
  const auto& crash_fo = find("crash", "BIRP+FO");
  const auto& crash_plain = find("crash", "BIRP");
  std::cout << "Single-edge-crash: BIRP+FO p% = "
            << birp::util::fixed(crash_fo.failure_percent(), 3)
            << " vs BIRP p% = "
            << birp::util::fixed(crash_plain.failure_percent(), 3)
            << (crash_fo.failure_percent() < crash_plain.failure_percent()
                    ? "  (failover wins)"
                    : "  (UNEXPECTED: failover did not help)")
            << "\n\n";

  std::ofstream csv(csv_path);
  birp::util::CsvWriter writer(csv);
  writer.row({"scenario", "algorithm", "slo_failure_percent", "total_loss",
              "dropped", "orphan_dropped", "retries", "availability_percent",
              "p50_tau", "p95_tau"});
  for (const auto& run : runs) {
    const auto& m = run.metrics;
    writer.row({run.scenario, run.algorithm,
                birp::util::format_double(m.failure_percent()),
                birp::util::format_double(m.total_loss()),
                std::to_string(m.dropped()),
                std::to_string(m.orphan_dropped()),
                std::to_string(m.retries()),
                birp::util::format_double(m.availability_percent()),
                birp::util::format_double(m.latency_quantile(0.5)),
                birp::util::format_double(m.latency_quantile(0.95))});
  }
  std::cout << "Summary CSV written to " << csv_path << "\n";
  return 0;
}
