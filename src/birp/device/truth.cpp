#include "birp/device/truth.hpp"

#include <algorithm>
#include <cmath>

#include "birp/util/check.hpp"
#include "birp/util/rng.hpp"

namespace birp::device {
namespace {

/// Per-(device-type, app) affinity: e.g. transformer-heavy NLU workloads run
/// disproportionately well on the Atlas AI core, CNNs exploit Jetson tensor
/// lanes. Deterministic in its arguments.
double affinity(DeviceType type, int app) {
  util::Xoshiro256StarStar rng(0xaff1ULL + 97 * static_cast<std::uint64_t>(type) +
                               13 * static_cast<std::uint64_t>(app));
  return rng.uniform(0.85, 1.18);
}

}  // namespace

GroundTruth::GroundTruth(std::vector<DeviceProfile> devices,
                         const model::Zoo& zoo, std::uint64_t seed)
    : devices_(std::move(devices)),
      num_apps_(zoo.num_apps()),
      max_variants_(zoo.max_variants()) {
  util::check(!devices_.empty(), "GroundTruth: no devices");
  const std::size_t total = devices_.size() *
                            static_cast<std::size_t>(num_apps_) *
                            static_cast<std::size_t>(max_variants_);
  gamma_s_.assign(total, 0.0);
  host_s_.assign(total, 0.0);
  tir_.assign(total, TirParams{});

  util::Xoshiro256StarStar rng(seed);
  for (int k = 0; k < num_devices(); ++k) {
    const auto& dev = devices_[static_cast<std::size_t>(k)];
    for (int i = 0; i < num_apps_; ++i) {
      const auto& app = zoo.app(i);
      const int variants = static_cast<int>(app.variants.size());
      for (int j = 0; j < variants; ++j) {
        const auto& variant = app.variants[static_cast<std::size_t>(j)];
        const std::size_t idx = index(k, i, j);

        // --- Serial latency gamma (Eq. 7 input). ---
        const double gamma_ms = variant.base_latency_ms / dev.accel_speed *
                                affinity(dev.type, i) *
                                rng.uniform(0.97, 1.03);
        gamma_s_[idx] = gamma_ms / 1000.0;

        // --- Host-side cost: a fixed pre/post-processing term (image
        // decode, NMS) that dominates small vision models, plus a share of
        // the model's own size (tokenization, tensor marshalling) so large
        // models keep the CPU meaningfully busy, as in Table 1's BERT rows.
        const double host_base_ms = 14.0 + 9.0 * static_cast<double>(i % 3);
        host_s_[idx] = std::max(host_base_ms *
                                    (0.9 + 0.12 * static_cast<double>(j)) /
                                    dev.host_speed / 1000.0,
                                0.25 * gamma_s_[idx]);

        // --- TIR truth from kernel occupancy. Larger variants launch wider
        // kernels: occupancy grows with the size class, so batching headroom
        // (beta) shrinks and the curve flattens (eta drops), matching the
        // LeNet vs ResNet-18 contrast in the paper's Fig. 2. ---
        const double size_class =
            variants <= 1 ? 1.0
                          : static_cast<double>(j) /
                                static_cast<double>(variants - 1);
        const double occupancy =
            std::clamp(dev.serial_occupancy * (0.55 + 0.9 * size_class) *
                           rng.uniform(0.9, 1.1),
                       0.08, 0.95);
        // Calibrated to the paper's Fig. 2 fits (beta in ~[5, 10], eta in
        // ~[0.12, 0.32]) and Table 1 (serial accelerator utilization
        // ~ 1/C): low-occupancy kernels saturate later and climb faster.
        TirParams tir;
        tir.beta = std::clamp(
            static_cast<int>(std::lround(4.0 + 12.0 * (1.0 - occupancy) +
                                         rng.uniform(-1.0, 1.0))),
            3, 16);
        tir.eta = std::clamp(0.40 - 0.32 * occupancy + rng.uniform(-0.02, 0.02),
                             0.10, 0.35);
        tir.c = std::pow(static_cast<double>(tir.beta), tir.eta);
        tir_[idx] = tir;
      }
    }
  }
}

GroundTruth::GroundTruth(const GroundTruth& parent,
                         const std::vector<int>& devices)
    : num_apps_(parent.num_apps_), max_variants_(parent.max_variants_) {
  util::check(!devices.empty(), "GroundTruth: empty device restriction");
  devices_.reserve(devices.size());
  const std::size_t stride = static_cast<std::size_t>(num_apps_) *
                             static_cast<std::size_t>(max_variants_);
  gamma_s_.reserve(devices.size() * stride);
  host_s_.reserve(devices.size() * stride);
  tir_.reserve(devices.size() * stride);
  for (const int k : devices) {
    util::check(k >= 0 && k < parent.num_devices(),
                "GroundTruth: restriction device out of range");
    devices_.push_back(parent.devices_[static_cast<std::size_t>(k)]);
    const auto begin =
        static_cast<std::ptrdiff_t>(static_cast<std::size_t>(k) * stride);
    const auto end = begin + static_cast<std::ptrdiff_t>(stride);
    gamma_s_.insert(gamma_s_.end(), parent.gamma_s_.begin() + begin,
                    parent.gamma_s_.begin() + end);
    host_s_.insert(host_s_.end(), parent.host_s_.begin() + begin,
                   parent.host_s_.begin() + end);
    tir_.insert(tir_.end(), parent.tir_.begin() + begin,
                parent.tir_.begin() + end);
  }
}

std::size_t GroundTruth::index(int device, int app, int variant) const {
  util::check(device >= 0 && device < num_devices(), "GroundTruth: bad device");
  util::check(app >= 0 && app < num_apps_, "GroundTruth: bad app");
  util::check(variant >= 0 && variant < max_variants_, "GroundTruth: bad variant");
  return (static_cast<std::size_t>(device) * static_cast<std::size_t>(num_apps_) +
          static_cast<std::size_t>(app)) *
             static_cast<std::size_t>(max_variants_) +
         static_cast<std::size_t>(variant);
}

const DeviceProfile& GroundTruth::device(int k) const {
  util::check(k >= 0 && k < num_devices(), "GroundTruth: bad device index");
  return devices_[static_cast<std::size_t>(k)];
}

double GroundTruth::gamma_s(int device, int app, int variant) const {
  return gamma_s_[index(device, app, variant)];
}

double GroundTruth::host_s(int device, int app, int variant) const {
  return host_s_[index(device, app, variant)];
}

const TirParams& GroundTruth::tir(int device, int app, int variant) const {
  return tir_[index(device, app, variant)];
}

double GroundTruth::batch_time_s(int device, int app, int variant,
                                 int b) const {
  return tir(device, app, variant).batch_time(gamma_s(device, app, variant), b);
}

PipelinePoint GroundTruth::serial_pipeline(int device, int app,
                                           int variant) const {
  const double g = gamma_s(device, app, variant);
  const double h = host_s(device, app, variant);
  const double period = std::max(g, h);
  const auto& tir = this->tir(device, app, variant);

  PipelinePoint point;
  point.fps = 1.0 / period;
  point.cpu_util = std::min(h / period, 0.999);
  point.accel_busy = std::min(g / period, 0.999);
  // Serial kernels only occupy ~1/C of the accelerator: the headroom the
  // saturated TIR level C measures is exactly the unused lane fraction.
  point.accel_util = point.accel_busy / tir.c;
  return point;
}

}  // namespace birp::device
