// Edge device profiles for the three accelerator types in the paper's
// testbed: Jetson Nano, Jetson NX (GPU-accelerated), and Huawei Atlas 200DK
// (NPU-accelerated). Numbers are calibrated to the paper's §5.1 ranges:
// memory in [4500, 6500] MB, per-slot network budget from [50, 100] Mbps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace birp::device {

enum class DeviceType { JetsonNano, JetsonNX, Atlas200DK };
enum class AcceleratorKind { Gpu, Npu };

[[nodiscard]] std::string to_string(DeviceType type);
[[nodiscard]] AcceleratorKind accelerator_of(DeviceType type) noexcept;

/// Static description of one edge device.
struct DeviceProfile {
  int id = 0;
  DeviceType type = DeviceType::JetsonNano;
  std::string name;
  AcceleratorKind accelerator = AcceleratorKind::Gpu;
  double memory_mb = 0.0;         ///< M_k, usable accelerator+host memory
  double bandwidth_mbps = 0.0;    ///< wireless bandwidth of the edge
  double accel_speed = 1.0;       ///< accelerator throughput vs Jetson Nano
  double host_speed = 1.0;        ///< CPU-side pre/post-processing speed
  /// Fraction of accelerator lanes a single-request kernel can occupy;
  /// drives the ground-truth TIR saturation level (low occupancy => high
  /// batching headroom). See truth.cpp.
  double serial_occupancy = 0.6;
  /// Power draw (watts): edge accelerators prioritize energy efficiency
  /// (paper section 2.1), so the simulator accounts energy per slot as
  /// busy_power while executing plus idle_power for the remainder.
  double idle_power_w = 3.0;
  double busy_power_w = 12.0;

  /// Network budget per slot of `tau_s` seconds, in megabytes.
  [[nodiscard]] double network_mb_per_slot(double tau_s) const noexcept {
    return bandwidth_mbps * tau_s / 8.0;
  }

  /// Energy (joules) consumed over one slot of `tau_s` seconds with the
  /// accelerator busy for `busy_s` of it (busy_s may exceed tau_s when a
  /// slot overruns).
  [[nodiscard]] double slot_energy_j(double busy_s, double tau_s) const noexcept {
    const double idle_s = busy_s >= tau_s ? 0.0 : tau_s - busy_s;
    return busy_s * busy_power_w + idle_s * idle_power_w;
  }
};

/// Builds a device of the given type. `instance` individualizes repeated
/// devices of the same type (the paper deploys two instances of each); the
/// per-instance jitter is deterministic in (type, instance).
[[nodiscard]] DeviceProfile make_device(DeviceType type, int id, int instance);

/// The paper's testbed: two instances of each of the three device types.
[[nodiscard]] std::vector<DeviceProfile> paper_testbed();

/// One instance of each type (used by small experiments and tests).
[[nodiscard]] std::vector<DeviceProfile> one_of_each();

}  // namespace birp::device
