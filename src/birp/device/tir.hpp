// The Throughput Improvement Ratio function (paper Eq. 2) and the induced
// batch compute-time model (paper Eq. 7).
#pragma once

#include <cmath>

namespace birp::device {

/// Parameters of the piecewise TIR curve for one (device, model) pair:
///   TIR(b) = b^eta  for b <= beta,    TIR(b) = c  for b > beta.
struct TirParams {
  double eta = 0.1;  ///< power-law growth exponent
  int beta = 16;     ///< saturation batch size threshold
  double c = 1.0;    ///< saturated improvement ratio

  /// TIR(b) per Eq. 2; TIR(1) == 1 by construction when eta-curve is used.
  [[nodiscard]] double tir(int b) const noexcept {
    if (b <= 0) return 1.0;
    if (b <= beta) return std::pow(static_cast<double>(b), eta);
    return c;
  }

  /// Batch execution time per Eq. 7: f(b) = b * gamma / TIR(b), where
  /// `gamma` is the serial batch-1 latency. Returns 0 for b <= 0.
  [[nodiscard]] double batch_time(double gamma, int b) const noexcept {
    if (b <= 0) return 0.0;
    return static_cast<double>(b) * gamma / tir(b);
  }

  /// Continuity-consistent parameters satisfy c == beta^eta (the paper's
  /// fits are continuous at the breakpoint); returns the deviation.
  [[nodiscard]] double continuity_gap() const noexcept {
    return std::abs(c - std::pow(static_cast<double>(beta), eta));
  }
};

}  // namespace birp::device
