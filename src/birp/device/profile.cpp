#include "birp/device/profile.hpp"

#include "birp/util/check.hpp"
#include "birp/util/rng.hpp"

namespace birp::device {

std::string to_string(DeviceType type) {
  switch (type) {
    case DeviceType::JetsonNano: return "JetsonNano";
    case DeviceType::JetsonNX: return "JetsonNX";
    case DeviceType::Atlas200DK: return "Atlas200DK";
  }
  return "unknown";
}

AcceleratorKind accelerator_of(DeviceType type) noexcept {
  return type == DeviceType::Atlas200DK ? AcceleratorKind::Npu
                                        : AcceleratorKind::Gpu;
}

DeviceProfile make_device(DeviceType type, int id, int instance) {
  DeviceProfile profile;
  profile.id = id;
  profile.type = type;
  profile.accelerator = accelerator_of(type);
  profile.name = to_string(type) + "#" + std::to_string(instance);

  // Per-instance jitter: two physical units of the same SKU never measure
  // identically (thermals, memory clocks, carrier boards).
  util::Xoshiro256StarStar rng(0xde71ce00ULL + 131 * static_cast<std::uint64_t>(instance) +
                               17 * static_cast<std::uint64_t>(type));
  const double jitter = rng.uniform(0.96, 1.04);

  switch (type) {
    case DeviceType::JetsonNano:
      // Entry-level: 128-core Maxwell; the reference (speed 1.0) device.
      profile.memory_mb = 4600.0 * jitter;
      profile.accel_speed = 0.8 * jitter;
      profile.host_speed = 1.0 * jitter;
      profile.serial_occupancy = 0.72;  // small GPU: one kernel fills most SMs
      profile.idle_power_w = 2.0;       // 5W/10W-mode module
      profile.busy_power_w = 10.0;
      break;
    case DeviceType::JetsonNX:
      // 384-core Volta + tensor cores: much faster, much more headroom.
      profile.memory_mb = 6400.0 * jitter;
      profile.accel_speed = 2.0 * jitter;
      profile.host_speed = 1.8 * jitter;
      profile.serial_occupancy = 0.38;
      profile.idle_power_w = 5.0;  // 10W/20W-mode module
      profile.busy_power_w = 20.0;
      break;
    case DeviceType::Atlas200DK:
      // Ascend 310 NPU: strong dense-conv throughput, moderate host CPU.
      profile.memory_mb = 5600.0 * jitter;
      profile.accel_speed = 1.4 * jitter;
      profile.host_speed = 1.2 * jitter;
      profile.serial_occupancy = 0.45;
      profile.idle_power_w = 6.0;  // Ascend 310 board
      profile.busy_power_w = 18.0;
      break;
  }
  profile.bandwidth_mbps = rng.uniform(50.0, 100.0);
  return profile;
}

std::vector<DeviceProfile> paper_testbed() {
  std::vector<DeviceProfile> devices;
  int id = 0;
  for (int instance = 0; instance < 2; ++instance) {
    for (const DeviceType type : {DeviceType::JetsonNX, DeviceType::JetsonNano,
                                  DeviceType::Atlas200DK}) {
      devices.push_back(make_device(type, id++, instance));
    }
  }
  return devices;
}

std::vector<DeviceProfile> one_of_each() {
  std::vector<DeviceProfile> devices;
  int id = 0;
  for (const DeviceType type : {DeviceType::JetsonNX, DeviceType::JetsonNano,
                                DeviceType::Atlas200DK}) {
    devices.push_back(make_device(type, id++, 0));
  }
  return devices;
}

}  // namespace birp::device
