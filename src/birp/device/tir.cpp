// tir.hpp is header-only; this translation unit exists so the header is
// compiled standalone at least once (catches missing includes early).
#include "birp/device/tir.hpp"
