#include "birp/device/cluster.hpp"

#include "birp/util/check.hpp"

namespace birp::device {

ClusterSpec::ClusterSpec(std::vector<DeviceProfile> devices, model::Zoo zoo,
                         double tau_s, std::uint64_t truth_seed)
    : zoo_(std::move(zoo)), tau_s_(tau_s) {
  util::check(tau_s_ > 0.0, "ClusterSpec: tau must be positive");
  truth_ = std::make_shared<const GroundTruth>(std::move(devices), zoo_,
                                               truth_seed);
}

ClusterSpec::ClusterSpec(model::Zoo zoo, double tau_s,
                         std::shared_ptr<const GroundTruth> truth)
    : zoo_(std::move(zoo)), tau_s_(tau_s), truth_(std::move(truth)) {}

ClusterSpec ClusterSpec::subcluster(const std::vector<int>& devices) const {
  return ClusterSpec(zoo_, tau_s_,
                     std::make_shared<const GroundTruth>(*truth_, devices));
}

ClusterSpec ClusterSpec::paper_large(double tau_s) {
  return ClusterSpec(paper_testbed(), model::Zoo::standard(), tau_s, 0x1a23e);
}

ClusterSpec ClusterSpec::paper_small(double tau_s) {
  return ClusterSpec(paper_testbed(), model::Zoo::small_scale(), tau_s, 0x53a11);
}

ClusterSpec ClusterSpec::sweep(double tau_s) {
  return ClusterSpec(paper_testbed(), model::Zoo::sweep_scale(), tau_s, 0x5ee9);
}

}  // namespace birp::device
