// Ground-truth execution characteristics of every (device, application,
// model-variant) combination — the simulator's stand-in for physical
// Jetson / Atlas hardware.
//
// The chain is kept self-consistent with the paper's observations:
//  * serial latency gamma scales the variant's reference latency by the
//    device's accelerator speed and a per-(device-type, app) affinity;
//  * batching headroom derives from kernel occupancy: a batch-1 kernel that
//    fills fraction w of the accelerator saturates near beta ~ 1/w, giving
//    the piecewise TIR curve of Eq. 2 with C = beta^eta (continuity);
//  * serial accelerator utilization is then ~ pipeline_busy / C, which is
//    exactly why Table 1's single-request utilizations sit well below 100%
//    for small models.
#pragma once

#include <cstdint>
#include <vector>

#include "birp/device/profile.hpp"
#include "birp/device/tir.hpp"
#include "birp/model/zoo.hpp"

namespace birp::device {

/// Steady-state behaviour of one model executing serially (batch 1) on one
/// device, under the overlapped CPU/accelerator pipeline model.
struct PipelinePoint {
  double fps = 0.0;         ///< items per second
  double cpu_util = 0.0;    ///< host CPU busy fraction in [0, 1]
  double accel_busy = 0.0;  ///< accelerator duty cycle in [0, 1]
  double accel_util = 0.0;  ///< duty cycle x kernel occupancy in [0, 1]
};

/// Deterministic ground truth for a cluster. Construction seeds all jitter;
/// the same (devices, zoo, seed) triple always yields identical truth.
class GroundTruth {
 public:
  GroundTruth(std::vector<DeviceProfile> devices, const model::Zoo& zoo,
              std::uint64_t seed);

  /// Restriction of `parent` to the given device indices (in the given
  /// order). The selected rows are copied verbatim, so local device k of the
  /// restriction behaves bit-identically to parent device `devices[k]` —
  /// this is what lets a partitioned cell reuse the parent cluster's truth
  /// (re-seeding a smaller cluster would reshuffle the jitter stream).
  GroundTruth(const GroundTruth& parent, const std::vector<int>& devices);

  [[nodiscard]] int num_devices() const noexcept {
    return static_cast<int>(devices_.size());
  }
  [[nodiscard]] const DeviceProfile& device(int k) const;
  [[nodiscard]] const std::vector<DeviceProfile>& devices() const noexcept {
    return devices_;
  }

  /// Serial accelerator compute seconds per item (the paper's gamma).
  [[nodiscard]] double gamma_s(int device, int app, int variant) const;
  /// Host-side pre/post-processing seconds per item.
  [[nodiscard]] double host_s(int device, int app, int variant) const;
  /// Ground-truth TIR parameters (hidden from online schedulers).
  [[nodiscard]] const TirParams& tir(int device, int app, int variant) const;

  /// Noise-free execution time of one batch of size b (Eq. 7), seconds.
  [[nodiscard]] double batch_time_s(int device, int app, int variant,
                                    int b) const;

  /// Serial (batch-1) pipeline measurement for Table 1-style reporting.
  [[nodiscard]] PipelinePoint serial_pipeline(int device, int app,
                                              int variant) const;

 private:
  [[nodiscard]] std::size_t index(int device, int app, int variant) const;

  std::vector<DeviceProfile> devices_;
  int num_apps_ = 0;
  int max_variants_ = 0;
  std::vector<double> gamma_s_;
  std::vector<double> host_s_;
  std::vector<TirParams> tir_;
};

}  // namespace birp::device
