// ClusterSpec: the complete description of one edge collaborative system —
// devices, applications/models, ground truth, and slot timing. This is the
// object experiments construct once and share between the simulator and the
// schedulers.
//
// Information split (mirrors the paper):
//  * schedulers may read loss/delta/xi/mu/zeta, memory and network budgets,
//    tau, and the serial latencies gamma (the paper obtains gamma from an
//    nn-Meter-style predictor [36]);
//  * ground-truth TIR parameters are private to the simulator — only
//    BIRP-OFF (offline profiling) is allowed to read them, via
//    `oracle_tir()`, which experiments pass explicitly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "birp/device/profile.hpp"
#include "birp/device/truth.hpp"
#include "birp/model/zoo.hpp"

namespace birp::device {

class ClusterSpec {
 public:
  ClusterSpec(std::vector<DeviceProfile> devices, model::Zoo zoo,
              double tau_s, std::uint64_t truth_seed);

  [[nodiscard]] int num_devices() const noexcept {
    return truth_->num_devices();
  }
  [[nodiscard]] int num_apps() const noexcept { return zoo_.num_apps(); }
  [[nodiscard]] const model::Zoo& zoo() const noexcept { return zoo_; }
  [[nodiscard]] const DeviceProfile& device(int k) const {
    return truth_->device(k);
  }
  [[nodiscard]] double tau_s() const noexcept { return tau_s_; }

  /// Per-slot network budget N_k of device k in MB.
  [[nodiscard]] double network_mb(int k) const {
    return device(k).network_mb_per_slot(tau_s_);
  }
  /// Memory budget M_k of device k in MB.
  [[nodiscard]] double memory_mb(int k) const { return device(k).memory_mb; }

  /// Serial latency gamma (seconds) — known to schedulers per [36].
  [[nodiscard]] double gamma_s(int k, int app, int variant) const {
    return truth_->gamma_s(k, app, variant);
  }

  /// Ground truth (simulator / oracle use only).
  [[nodiscard]] const GroundTruth& truth() const noexcept { return *truth_; }
  /// Oracle TIR access for BIRP-OFF (offline-profiled curves).
  [[nodiscard]] const TirParams& oracle_tir(int k, int app, int variant) const {
    return truth_->tir(k, app, variant);
  }

  // Convenience factory methods for the paper's three configurations.
  static ClusterSpec paper_large(double tau_s = 6.0);   ///< 6 edges, 5x5 models
  static ClusterSpec paper_small(double tau_s = 6.0);   ///< 6 edges, 1x3 models
  static ClusterSpec sweep(double tau_s = 6.0);         ///< 6 edges, 3x3 models

  /// Restriction of this spec to `devices` (parent indices, in the given
  /// order): same zoo and tau, and the parent's ground-truth rows copied
  /// verbatim, so local device k behaves bit-identically to parent device
  /// `devices[k]`. This is how birp/cluster builds one sub-cluster per
  /// partition cell without perturbing the seeded truth.
  [[nodiscard]] ClusterSpec subcluster(const std::vector<int>& devices) const;

 private:
  ClusterSpec(model::Zoo zoo, double tau_s,
              std::shared_ptr<const GroundTruth> truth);

  model::Zoo zoo_;
  double tau_s_;
  std::shared_ptr<const GroundTruth> truth_;
};

}  // namespace birp::device
