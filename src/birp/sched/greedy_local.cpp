#include "birp/sched/greedy_local.hpp"

#include <algorithm>
#include <cmath>

namespace birp::sched {

GreedyLocalScheduler::GreedyLocalScheduler(const device::ClusterSpec& cluster)
    : cluster_(cluster) {}

sim::SlotDecision GreedyLocalScheduler::decide(const sim::SlotState& state) {
  const int I = cluster_.num_apps();
  const int K = cluster_.num_devices();
  sim::SlotDecision decision(I, cluster_.zoo().max_variants(), K);

  for (int k = 0; k < K; ++k) {
    double compute_left = cluster_.tau_s();
    double weights_used = 0.0;
    double peak_mu = 0.0;
    const double memory = cluster_.memory_mb(k);
    for (int i = 0; i < I; ++i) {
      std::int64_t remaining = state.demand(i, k);
      const int J = cluster_.zoo().num_variants(i);
      // Most accurate first; serial launches (gamma per request, batch 1).
      for (int j = J - 1; j >= 0 && remaining > 0; --j) {
        const auto& variant = cluster_.zoo().variant(i, j);
        const double weights_after = weights_used + variant.weights_mb;
        const double peak_after =
            std::max(peak_mu, variant.intermediate_mb);
        if (weights_after + peak_after > memory) continue;
        const double gamma = cluster_.gamma_s(k, i, j);
        const auto fits = static_cast<std::int64_t>(
            std::floor(compute_left / gamma));
        const auto take = std::min(remaining, fits);
        if (take <= 0) continue;
        decision.served(i, j, k) = take;
        decision.kernel(i, j, k) = 1;  // serial execution
        compute_left -= gamma * static_cast<double>(take);
        weights_used = weights_after;
        peak_mu = peak_after;
        remaining -= take;
      }
      decision.drops(i, k) = remaining;
    }
  }
  return decision;
}

}  // namespace birp::sched
