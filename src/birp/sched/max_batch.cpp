#include "birp/sched/max_batch.hpp"

#include <algorithm>
#include <vector>

#include "birp/util/check.hpp"

namespace birp::sched {
namespace {

/// Greedy per-edge ledger while packing B0 chunks. Memory follows the
/// time-sliced model: resident weights sum, activations charged at the peak
/// in-flight B0 batch.
struct EdgeLedger {
  double compute_left = 0.0;
  double memory_mb = 0.0;
  double weights_used = 0.0;
  double peak_mu = 0.0;
  double network_left = 0.0;
};

}  // namespace

MaxScheduler::MaxScheduler(const device::ClusterSpec& cluster, MaxConfig config)
    : cluster_(cluster), config_(config) {
  util::check(config_.b0 >= 1, "MAX: b0 must be >= 1");
}

sim::SlotDecision MaxScheduler::decide(const sim::SlotState& state) {
  const int I = cluster_.num_apps();
  const int K = cluster_.num_devices();
  const int B0 = config_.b0;
  sim::SlotDecision decision(I, cluster_.zoo().max_variants(), K);
  // Static-shape engines tuned for B0: every launch runs at the full batch
  // dimension, padded when fewer requests remain (the baseline's defining
  // inefficiency at low load).
  decision.pad_partial_launches = true;

  std::vector<EdgeLedger> ledger(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    auto& l = ledger[static_cast<std::size_t>(k)];
    l.compute_left = cluster_.tau_s();
    l.memory_mb = cluster_.memory_mb(k);
    l.network_left = cluster_.network_mb(k);
  }

  // Tries to place one chunk of `count` requests of app i on edge `to`
  // (origin `from`); returns the chosen variant or -1.
  const auto try_place = [&](int i, int from, int to,
                             std::int64_t count) -> int {
    auto& lto = ledger[static_cast<std::size_t>(to)];
    auto& lfrom = ledger[static_cast<std::size_t>(from)];
    const double zeta = cluster_.zoo().app(i).request_mb;
    const double transfer_mb = zeta * static_cast<double>(count);
    if (from != to &&
        (transfer_mb > lfrom.network_left || transfer_mb > lto.network_left)) {
      return -1;
    }

    const int J = cluster_.zoo().num_variants(i);
    // Most accurate variant first: MAX spends its utilization on accuracy.
    for (int j = J - 1; j >= 0; --j) {
      const auto& variant = cluster_.zoo().variant(i, j);
      const bool already = decision.deployed(i, j, to);
      const double new_weights =
          lto.weights_used + (already ? 0.0 : variant.weights_mb);
      const double new_peak =
          std::max(lto.peak_mu,
                   variant.intermediate_mb * static_cast<double>(B0));
      const bool was_deployed =
          state.previous == nullptr || state.previous->deployed(i, j, to);
      const double switch_cost =
          (already || was_deployed) ? 0.0 : variant.compressed_mb;
      // Every chunk costs one full padded B0 launch (oracle timing: MAX is
      // assumed to have profiled its fixed operating point offline).
      const double launch_s =
          cluster_.oracle_tir(to, i, j).batch_time(cluster_.gamma_s(to, i, j),
                                                   B0);
      if (new_weights + new_peak > lto.memory_mb) continue;
      if (switch_cost > lto.network_left - (from != to ? transfer_mb : 0.0)) {
        continue;
      }
      if (launch_s > lto.compute_left) continue;

      // Commit.
      lto.weights_used = new_weights;
      lto.peak_mu = new_peak;
      lto.network_left -= switch_cost;
      lto.compute_left -= launch_s;
      if (from != to) {
        lfrom.network_left -= transfer_mb;
        lto.network_left -= transfer_mb;
        decision.flows.push_back({i, from, to, count});
      }
      decision.served(i, j, to) += count;
      decision.kernel(i, j, to) = B0;
      return j;
    }
    return -1;
  };

  for (int i = 0; i < I; ++i) {
    for (int k = 0; k < K; ++k) {
      std::int64_t remaining = state.demand(i, k);
      while (remaining > 0) {
        const auto chunk = std::min<std::int64_t>(remaining, B0);
        // Local placement first; otherwise the edge with most compute left.
        int placed = try_place(i, k, k, chunk);
        if (placed < 0) {
          std::vector<int> order;
          for (int kk = 0; kk < K; ++kk) {
            if (kk != k) order.push_back(kk);
          }
          std::sort(order.begin(), order.end(), [&](int a, int b) {
            return ledger[static_cast<std::size_t>(a)].compute_left >
                   ledger[static_cast<std::size_t>(b)].compute_left;
          });
          for (const int kk : order) {
            placed = try_place(i, k, kk, chunk);
            if (placed >= 0) break;
          }
        }
        if (placed < 0) {
          decision.drops(i, k) += chunk;
        }
        remaining -= chunk;
      }
    }
  }
  return decision;
}

}  // namespace birp::sched
