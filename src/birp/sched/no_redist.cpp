#include "birp/sched/no_redist.hpp"

namespace birp::sched {

core::BirpScheduler make_no_redist(const device::ClusterSpec& cluster,
                                   core::BirpConfig config) {
  config.problem.allow_redistribution = false;
  config.name_override = "NO-REDIST";
  return core::BirpScheduler(cluster, std::move(config));
}

}  // namespace birp::sched
