// OAEI baseline: the state-of-the-art model-selection-based inference
// workload redistribution algorithm of Jin et al. [19] ("Provisioning Edge
// Inference as a Service via Online Learning", SECON 2020), as the paper
// compares against.
//
// Characteristics reproduced here:
//   * serial execution — every request runs as its own batch-1 launch, so
//     no TIR speedup is available (the core difference from BIRP);
//   * model-version selection per (app, edge) balancing loss vs latency;
//   * fractional relaxation + randomized rounding of the deployment
//     variables, then a second solve with deployments fixed;
//   * online learning of effective edge capacity: an EWMA factor per edge
//     corrects the believed serial latencies from observed busy time.
#pragma once

#include <string>
#include <vector>

#include "birp/device/cluster.hpp"
#include "birp/sim/scheduler.hpp"
#include "birp/solver/simplex.hpp"
#include "birp/util/rng.hpp"

namespace birp::sched {

struct OaeiConfig {
  /// Drop penalty factor over worst loss (same convention as BIRP).
  double drop_penalty_factor = 2.0;
  /// EWMA smoothing for the capacity-correction factor.
  double capacity_smoothing = 0.2;
  std::uint64_t rounding_seed = 0x0ae1;
  solver::SimplexOptions lp;
};

class OaeiScheduler : public sim::Scheduler {
 public:
  OaeiScheduler(const device::ClusterSpec& cluster, OaeiConfig config = {});

  [[nodiscard]] std::string name() const override { return "OAEI"; }

  [[nodiscard]] sim::SlotDecision decide(const sim::SlotState& state) override;
  void observe(const sim::SlotFeedback& feedback) override;

  /// Learned capacity-correction factor of edge k (1 = latencies trusted).
  [[nodiscard]] double capacity_factor(int k) const;

 private:
  const device::ClusterSpec& cluster_;
  OaeiConfig config_;
  util::Xoshiro256StarStar rng_;
  std::vector<double> capacity_factor_;
  /// Predicted busy seconds per edge for the decision just issued (the
  /// learning signal's denominator).
  std::vector<double> predicted_busy_s_;
};

}  // namespace birp::sched
