// MAX baseline: always batch at a fixed large size B0 (paper §5.2).
//
// "Set a large batch size B0 which can optimize resource utilization, and
// when performing workload redistribution, the inference batch transfer
// must be followed according to B0." Kernels always launch at B0 (partial
// batches are padded), redistribution moves whole B0-chunks, and model
// selection greedily prefers the most accurate variant whose B0 footprint
// still fits memory and remaining compute. Maximum utilization, but padded
// launches waste compute at low load and the B0-sized activation footprint
// locks large models out of memory at high load — the failure modes the
// paper's Fig. 6/7 exhibit.
#pragma once

#include <string>

#include "birp/device/cluster.hpp"
#include "birp/sim/scheduler.hpp"

namespace birp::sched {

struct MaxConfig {
  int b0 = 16;  ///< the fixed batch size
};

class MaxScheduler : public sim::Scheduler {
 public:
  MaxScheduler(const device::ClusterSpec& cluster, MaxConfig config = {});

  [[nodiscard]] std::string name() const override { return "MAX"; }

  [[nodiscard]] sim::SlotDecision decide(const sim::SlotState& state) override;

 private:
  const device::ClusterSpec& cluster_;
  MaxConfig config_;
};

}  // namespace birp::sched
