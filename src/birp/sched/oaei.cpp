#include "birp/sched/oaei.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "birp/core/problem.hpp"
#include "birp/util/check.hpp"

namespace birp::sched {
namespace {

/// Builds OAEI's serial-execution LP into the shared BuiltProblem shape so
/// core::extract_decision can read the solution. Differences from BIRP's
/// problem: x is relaxed to [0,1]; z carries served counts with a big-M link
/// (serial execution has no per-deployment batch cap); memory charges
/// batch-1 intermediates; compute charges gamma per request with the learned
/// capacity factor (no TIR speedup — execution is serial).
core::BuiltProblem build_oaei_problem(const device::ClusterSpec& cluster,
                                      const util::Grid2<std::int64_t>& demand,
                                      const sim::SlotDecision* previous,
                                      const std::vector<double>& capacity_factor,
                                      const OaeiConfig& config) {
  const int I = cluster.num_apps();
  const int K = cluster.num_devices();
  const int Jmax = cluster.zoo().max_variants();

  core::BuiltProblem built{solver::Model{},
                           util::Grid3<int>(I, Jmax, K, -1),
                           util::Grid3<int>(I, Jmax, K, -1),
                           util::Grid2<int>(I, K, -1),
                           util::Grid2<int>(I, K, -1),
                           util::Grid2<int>(I, K, -1),
                           std::vector<int>(static_cast<std::size_t>(K), -1),
                           // Serial execution: every launch is batch 1.
                           util::Grid3<int>(I, Jmax, K, 1)};
  auto& model = built.model;

  // Peak working-set per edge (serial execution -> batch-1 footprints).
  for (int k = 0; k < K; ++k) {
    built.w[static_cast<std::size_t>(k)] =
        model.add_continuous("w_k" + std::to_string(k), 0.0, solver::kInfinity);
  }

  // Cluster-wide demand per app bounds any single deployment's share.
  std::vector<double> app_demand(static_cast<std::size_t>(I), 0.0);
  for (int i = 0; i < I; ++i) {
    for (int k = 0; k < K; ++k) {
      app_demand[static_cast<std::size_t>(i)] +=
          static_cast<double>(demand(i, k));
    }
  }

  for (int i = 0; i < I; ++i) {
    const int J = cluster.zoo().num_variants(i);
    for (int j = 0; j < J; ++j) {
      const auto& variant = cluster.zoo().variant(i, j);
      for (int k = 0; k < K; ++k) {
        const std::string tag = "_i" + std::to_string(i) + "j" +
                                std::to_string(j) + "k" + std::to_string(k);
        built.x(i, j, k) = model.add_continuous("x" + tag, 0.0, 1.0);
        built.z(i, j, k) = model.add_continuous(
            "n" + tag, 0.0, app_demand[static_cast<std::size_t>(i)]);
        model.set_objective(built.z(i, j, k), variant.loss);
        // n <= D_i * x : serving requires deployment.
        model.add_constraint(
            {{built.z(i, j, k), 1.0},
             {built.x(i, j, k), -app_demand[static_cast<std::size_t>(i)]}},
            solver::Relation::LessEqual, 0.0, "link" + tag);
      }
    }
  }
  for (int i = 0; i < I; ++i) {
    const double penalty =
        config.drop_penalty_factor * cluster.zoo().worst_loss(i);
    for (int k = 0; k < K; ++k) {
      const std::string tag = "_i" + std::to_string(i) + "k" + std::to_string(k);
      built.e(i, k) = model.add_continuous(
          "e" + tag, 0.0, static_cast<double>(demand(i, k)));
      built.m(i, k) = model.add_continuous("m" + tag, 0.0, solver::kInfinity);
      built.d(i, k) = model.add_continuous("d" + tag, 0.0, solver::kInfinity);
      model.set_objective(built.d(i, k), penalty);
    }
  }

  for (int i = 0; i < I; ++i) {
    const int J = cluster.zoo().num_variants(i);
    for (int k = 0; k < K; ++k) {
      std::vector<solver::Term> terms;
      for (int j = 0; j < J; ++j) terms.push_back({built.z(i, j, k), 1.0});
      terms.push_back({built.d(i, k), 1.0});
      terms.push_back({built.e(i, k), 1.0});
      terms.push_back({built.m(i, k), -1.0});
      model.add_constraint(terms, solver::Relation::Equal,
                           static_cast<double>(demand(i, k)));
    }
  }
  for (int i = 0; i < I; ++i) {
    std::vector<solver::Term> terms;
    for (int k = 0; k < K; ++k) {
      terms.push_back({built.e(i, k), 1.0});
      terms.push_back({built.m(i, k), -1.0});
    }
    model.add_constraint(terms, solver::Relation::Equal, 0.0);
  }

  for (int k = 0; k < K; ++k) {
    std::vector<solver::Term> memory;
    std::vector<solver::Term> compute;
    std::vector<solver::Term> network;
    for (int i = 0; i < I; ++i) {
      const int J = cluster.zoo().num_variants(i);
      for (int j = 0; j < J; ++j) {
        const auto& variant = cluster.zoo().variant(i, j);
        memory.push_back({built.x(i, j, k), variant.weights_mb});
        // Serial launches: batch-1 activations, only the largest alive.
        model.add_constraint({{built.x(i, j, k), variant.intermediate_mb},
                              {built.w[static_cast<std::size_t>(k)], -1.0}},
                             solver::Relation::LessEqual, 0.0);
        compute.push_back({built.z(i, j, k),
                           cluster.gamma_s(k, i, j) *
                               capacity_factor[static_cast<std::size_t>(k)]});
        // t = 0: models staged before the experiment (P1 / Eq. 13).
        const bool was_deployed =
            previous == nullptr || previous->deployed(i, j, k);
        if (!was_deployed) {
          network.push_back({built.x(i, j, k), variant.compressed_mb});
        }
      }
      const double zeta = cluster.zoo().app(i).request_mb;
      network.push_back({built.e(i, k), zeta});
      network.push_back({built.m(i, k), zeta});
    }
    memory.push_back({built.w[static_cast<std::size_t>(k)], 1.0});
    model.add_constraint(memory, solver::Relation::LessEqual,
                         cluster.memory_mb(k));
    model.add_constraint(compute, solver::Relation::LessEqual,
                         cluster.tau_s());
    model.add_constraint(network, solver::Relation::LessEqual,
                         cluster.network_mb(k));
  }
  return built;
}

}  // namespace

OaeiScheduler::OaeiScheduler(const device::ClusterSpec& cluster,
                             OaeiConfig config)
    : cluster_(cluster),
      config_(config),
      rng_(config.rounding_seed),
      capacity_factor_(static_cast<std::size_t>(cluster.num_devices()), 1.0),
      predicted_busy_s_(static_cast<std::size_t>(cluster.num_devices()), 0.0) {}

double OaeiScheduler::capacity_factor(int k) const {
  util::check(k >= 0 && k < cluster_.num_devices(), "OAEI: bad device");
  return capacity_factor_[static_cast<std::size_t>(k)];
}

sim::SlotDecision OaeiScheduler::decide(const sim::SlotState& state) {
  const int I = cluster_.num_apps();
  const int K = cluster_.num_devices();

  core::BuiltProblem problem = build_oaei_problem(
      cluster_, state.demand, state.previous, capacity_factor_, config_);
  const solver::Solution relaxed = solver::solve_lp(problem.model, config_.lp);

  sim::SlotDecision decision(I, cluster_.zoo().max_variants(), K);
  if (!relaxed.usable()) {
    // Degenerate safety net: drop everything (validator will account).
    return decision;
  }

  // --- Randomized rounding of deployments, respecting memory and network
  //     switch budgets so the fixed-x problem stays feasible. ---
  const int n_vars = problem.model.num_variables();
  std::vector<double> lower(static_cast<std::size_t>(n_vars));
  std::vector<double> upper(static_cast<std::size_t>(n_vars));
  for (int v = 0; v < n_vars; ++v) {
    lower[static_cast<std::size_t>(v)] = problem.model.variable(v).lower;
    upper[static_cast<std::size_t>(v)] = problem.model.variable(v).upper;
  }

  std::vector<double> weights_used(static_cast<std::size_t>(K), 0.0);
  std::vector<double> peak_mu(static_cast<std::size_t>(K), 0.0);
  std::vector<double> network_left(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    network_left[static_cast<std::size_t>(k)] = cluster_.network_mb(k);
  }

  // Model selection with randomized rounding, the defining element of [19]:
  // each (app, edge) selects exactly ONE model version, sampled from the
  // LP's fractional deployment weights, skipping versions that do not fit
  // the remaining memory / network-switch budget. Everything else stays
  // closed; the second-stage LP then routes requests across edges given
  // the selected versions.
  for (int i = 0; i < I; ++i) {
    const int J = cluster_.zoo().num_variants(i);
    for (int k = 0; k < K; ++k) {
      for (int j = 0; j < J; ++j) {
        const int xv = problem.x(i, j, k);
        lower[static_cast<std::size_t>(xv)] = 0.0;
        upper[static_cast<std::size_t>(xv)] = 0.0;
      }
      if (state.demand(i, k) <= 0 && relaxed.values.empty()) continue;

      // Sampling order: draw versions without replacement, probability
      // proportional to the LP weight, until one fits.
      std::vector<int> order;
      std::vector<double> weight(static_cast<std::size_t>(J), 0.0);
      double total = 0.0;
      for (int j = 0; j < J; ++j) {
        weight[static_cast<std::size_t>(j)] = std::max(
            0.0,
            relaxed.values[static_cast<std::size_t>(problem.x(i, j, k))]);
        total += weight[static_cast<std::size_t>(j)];
      }
      if (total <= 1e-9) {
        if (state.demand(i, k) <= 0) continue;
        // LP routed everything away yet demand exists locally: keep the
        // smallest version available as a safety valve.
        for (int j = 0; j < J; ++j) weight[static_cast<std::size_t>(j)] = j == 0;
        total = 1.0;
      }
      std::vector<bool> used(static_cast<std::size_t>(J), false);
      for (int draw = 0; draw < J; ++draw) {
        double pick = rng_.uniform(0.0, total);
        int j = -1;
        for (int candidate = 0; candidate < J; ++candidate) {
          if (used[static_cast<std::size_t>(candidate)]) continue;
          pick -= weight[static_cast<std::size_t>(candidate)];
          if (pick <= 0.0) {
            j = candidate;
            break;
          }
        }
        if (j < 0) break;
        used[static_cast<std::size_t>(j)] = true;
        total -= weight[static_cast<std::size_t>(j)];

        const auto& variant = cluster_.zoo().variant(i, j);
        const auto kk = static_cast<std::size_t>(k);
        const double new_weights = weights_used[kk] + variant.weights_mb;
        const double new_peak =
            std::max(peak_mu[kk], variant.intermediate_mb);
        const bool was_deployed =
            state.previous == nullptr || state.previous->deployed(i, j, k);
        const double net_cost = was_deployed ? 0.0 : variant.compressed_mb;
        if (new_weights + new_peak > cluster_.memory_mb(k)) continue;
        if (net_cost > network_left[kk]) continue;

        weights_used[kk] = new_weights;
        peak_mu[kk] = new_peak;
        network_left[kk] -= net_cost;
        const int xv = problem.x(i, j, k);
        lower[static_cast<std::size_t>(xv)] = 1.0;
        upper[static_cast<std::size_t>(xv)] = 1.0;
        break;  // exactly one version per (app, edge)
      }
    }
  }

  // --- Second stage: request placement with deployments fixed. Always
  //     feasible (drops absorb everything). ---
  const solver::Solution fixed =
      solver::solve_lp(problem.model, lower, upper, config_.lp);
  if (!fixed.usable()) return decision;

  decision = core::extract_decision(problem, fixed, cluster_, state.demand);

  // Serial execution: every request is its own batch-1 launch, and the
  // predicted busy time per edge feeds the capacity learner.
  std::fill(predicted_busy_s_.begin(), predicted_busy_s_.end(), 0.0);
  for (int i = 0; i < I; ++i) {
    const int J = cluster_.zoo().num_variants(i);
    for (int j = 0; j < J; ++j) {
      for (int k = 0; k < K; ++k) {
        if (decision.served(i, j, k) > 0) {
          decision.kernel(i, j, k) = 1;
          predicted_busy_s_[static_cast<std::size_t>(k)] +=
              cluster_.gamma_s(k, i, j) *
              static_cast<double>(decision.served(i, j, k));
        }
      }
    }
  }
  return decision;
}

void OaeiScheduler::observe(const sim::SlotFeedback& feedback) {
  for (int k = 0; k < cluster_.num_devices(); ++k) {
    const double predicted = predicted_busy_s_[static_cast<std::size_t>(k)];
    if (predicted < 0.1) continue;  // too little signal this slot
    const double observed = feedback.busy_s[static_cast<std::size_t>(k)];
    auto& factor = capacity_factor_[static_cast<std::size_t>(k)];
    const double sample =
        std::clamp(observed / predicted * factor, 0.25, 4.0);
    factor = (1.0 - config_.capacity_smoothing) * factor +
             config_.capacity_smoothing * sample;
  }
}

}  // namespace birp::sched
