// GREEDY-LOCAL baseline: the "simple algorithm" class the paper dismisses
// in section 5.2 ("we do not compare simple algorithms such as selecting
// only the best model ... because these methods are not better than OAEI").
// Each edge serves its own region, always choosing the most accurate model
// version whose believed serial budget still fits, one request per launch,
// no redistribution, no learning. Useful as a floor in experiments.
#pragma once

#include <string>

#include "birp/device/cluster.hpp"
#include "birp/sim/scheduler.hpp"

namespace birp::sched {

class GreedyLocalScheduler : public sim::Scheduler {
 public:
  explicit GreedyLocalScheduler(const device::ClusterSpec& cluster);

  [[nodiscard]] std::string name() const override { return "GREEDY-LOCAL"; }
  [[nodiscard]] sim::SlotDecision decide(const sim::SlotState& state) override;

 private:
  const device::ClusterSpec& cluster_;
};

}  // namespace birp::sched
