// NO-REDIST ablation: full BIRP (batching, model selection, MAB tuning) with
// inter-edge redistribution disabled. Comparing it against BIRP isolates how
// much of the gain comes from moving requests versus from batch-aware
// execution (DESIGN.md ablation 3).
#pragma once

#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"

namespace birp::sched {

/// Builds the NO-REDIST scheduler (a BIRP instance with exports/imports
/// pinned to zero).
[[nodiscard]] core::BirpScheduler make_no_redist(
    const device::ClusterSpec& cluster, core::BirpConfig config = {});

}  // namespace birp::sched
