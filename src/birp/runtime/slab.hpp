// Slab recycler: index-addressed object pool with grow-only storage.
//
// The serve hot path churns through small per-request nodes (FIFO links,
// timer events) at request rate; allocating them individually puts the
// allocator — and its lock — on the hot path. SlabPool hands out nodes from
// contiguous chunks and recycles them through an intrusive free list, so in
// steady state (once the high-water mark is reached) acquiring and
// releasing a node touches no allocator at all. Nodes are addressed by
// 32-bit indices rather than pointers: chunks never move once created, but
// indices also stay valid across the pool's own bookkeeping growth, pack
// into half the space, and make accidental cross-pool references loud.
//
// Single-threaded by design: each AdmissionQueue (and each TimerWheel)
// owns its pool and is driven by one worker. Thread safety comes from the
// sharding above (one queue per edge), not from this class.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "birp/util/check.hpp"

namespace birp::runtime {

inline constexpr std::int32_t kSlabNil = -1;

template <typename T>
class SlabPool {
 public:
  struct Node {
    T value{};
    std::int32_t next = kSlabNil;  ///< free-list / intrusive-FIFO link
  };

  /// Pops a recycled node or carves a fresh one; returns its index. The
  /// node's `next` is kSlabNil and its value is whatever the previous
  /// occupant left (callers assign before linking).
  std::int32_t acquire() {
    std::int32_t idx = free_head_;
    if (idx != kSlabNil) {
      free_head_ = node(idx).next;
    } else {
      if (next_fresh_ >= end_of_storage_) grow();
      idx = next_fresh_++;
    }
    node(idx).next = kSlabNil;
    ++live_;
    return idx;
  }

  /// Returns a node to the free list. The value is left in place (trivial
  /// payloads; nothing owns resources here).
  void release(std::int32_t idx) {
    node(idx).next = free_head_;
    free_head_ = idx;
    --live_;
  }

  [[nodiscard]] T& operator[](std::int32_t idx) { return node(idx).value; }
  [[nodiscard]] const T& operator[](std::int32_t idx) const {
    return node(idx).value;
  }
  [[nodiscard]] std::int32_t next_of(std::int32_t idx) const {
    return node(idx).next;
  }
  void set_next(std::int32_t idx, std::int32_t next) { node(idx).next = next; }
  /// Writable link, for callers unlinking mid-chain in place.
  [[nodiscard]] std::int32_t& mutable_next(std::int32_t idx) {
    return node(idx).next;
  }

  /// Nodes currently acquired (live FIFO/timer entries).
  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  /// Total nodes ever carved (the high-water footprint).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return static_cast<std::size_t>(end_of_storage_);
  }

  /// Forgets every live node without walking them (the owning structure
  /// resets wholesale between slots). Chunk storage is retained, so the
  /// next acquire() cycle is allocation-free up to the old high-water mark.
  void reclaim_all() noexcept {
    free_head_ = kSlabNil;
    next_fresh_ = 0;
    live_ = 0;
  }

  /// Pre-carves storage for at least `n` nodes (warmup outside the
  /// measured region).
  void reserve(std::size_t n) {
    while (static_cast<std::size_t>(end_of_storage_) < n) grow();
  }

 private:
  static constexpr std::int32_t kChunkSize = 256;

  [[nodiscard]] Node& node(std::int32_t idx) {
    return chunks_[static_cast<std::size_t>(idx) / kChunkSize]
                  [static_cast<std::size_t>(idx) % kChunkSize];
  }
  [[nodiscard]] const Node& node(std::int32_t idx) const {
    return chunks_[static_cast<std::size_t>(idx) / kChunkSize]
                  [static_cast<std::size_t>(idx) % kChunkSize];
  }

  void grow() {
    util::check(end_of_storage_ <= INT32_MAX - kChunkSize,
                "SlabPool: index space exhausted");
    chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
    end_of_storage_ += kChunkSize;
  }

  /// Fixed-size chunks that never move: reclaim_all() can restart index 0
  /// while old chunks keep their storage.
  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::int32_t free_head_ = kSlabNil;
  std::int32_t next_fresh_ = 0;      ///< first never-carved index
  std::int32_t end_of_storage_ = 0;  ///< total carved capacity
  std::size_t live_ = 0;
};

}  // namespace birp::runtime
