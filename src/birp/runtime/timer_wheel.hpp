// Hierarchical timer wheel for the serve runtime's deferred-time events.
//
// The admission queue defers capacity releases (a sealed batch frees its
// buffer slots at launch start, not at seal) and previously tracked them in
// a binary heap: O(log n) per event with a comparison-heavy pop loop on
// every admission. The wheel replaces that with O(1) scheduling into
// time-quantized buckets and an advance() that drains whole buckets at
// once; per-event comparisons happen only inside the single bucket
// straddling the advance time.
//
// Two levels plus an overflow list: level 0 covers kBuckets fine slots of
// `resolution` seconds each; level 1 covers kBuckets coarse slots of
// kBuckets * resolution; anything beyond parks in the overflow list and
// cascades down as the windows move. Events carry their exact timestamp,
// so quantization NEVER changes results — a bucket that straddles the
// advance time is walked with exact comparisons, and expired events are
// only ever summed (the payload is a count), making intra-bucket order
// irrelevant. That is the determinism argument: the wheel returns exactly
// the sum the heap would have, for any resolution.
//
// Nodes come from an internal SlabPool, so steady-state scheduling is
// allocation-free once the high-water mark is reached. Single-threaded,
// like the queue that owns it.
#pragma once

#include <cstdint>

#include "birp/runtime/slab.hpp"
#include "birp/util/check.hpp"

namespace birp::runtime {

class TimerWheel {
 public:
  /// Events at or before the cursor fire on the next advance; reset()
  /// before use to set origin and resolution.
  TimerWheel() {
    // reset()'s empty-wheel fast path skips the head sweep, so the heads
    // must start nil here — they have no in-class initializer.
    for (auto& head : fine_) head = kSlabNil;
    for (auto& head : coarse_) head = kSlabNil;
    reset(0.0, kDefaultResolution);
  }

  /// Empties the wheel (retaining node storage) and re-anchors it: bucket 0
  /// starts at `origin_s`, fine buckets are `resolution_s` wide. Resolution
  /// affects performance only, never which events an advance() returns.
  void reset(double origin_s, double resolution_s) {
    util::check(resolution_s > 0.0, "TimerWheel: resolution must be > 0");
    origin_s_ = origin_s;
    resolution_s_ = resolution_s;
    cursor_idx_ = 0;
    if (pending() == 0) {
      // Drains null every chain head they empty, so an event-free wheel
      // already has every bucket at kSlabNil — re-anchoring is O(1), not a
      // 128-bucket sweep. This is the steady-state path: the serve engine
      // settles all departures at end of slot before re-arming.
      pool_.reclaim_all();
      return;
    }
    fine_pending_ = 0;
    coarse_pending_ = 0;
    overflow_pending_ = 0;
    pool_.reclaim_all();
    for (auto& head : fine_) head = kSlabNil;
    for (auto& head : coarse_) head = kSlabNil;
    overflow_ = kSlabNil;
  }

  /// Registers `count` departures at exact time `time_s`. Times already at
  /// or before the advance cursor land in the current bucket and fire on
  /// the next advance that reaches them (exact comparison decides).
  void schedule(double time_s, std::int64_t count) {
    const std::int32_t node = pool_.acquire();
    pool_[node] = Event{time_s, count};
    const std::int64_t idx = fine_index(time_s);
    if (idx < cursor_idx_ + kBuckets) {
      const std::int64_t clamped = idx < cursor_idx_ ? cursor_idx_ : idx;
      push(fine_[static_cast<std::size_t>(clamped % kBuckets)], node);
      ++fine_pending_;
    } else if (idx / kBuckets < cursor_idx_ / kBuckets + kBuckets) {
      push(coarse_[static_cast<std::size_t>((idx / kBuckets) % kBuckets)],
           node);
      ++coarse_pending_;
    } else {
      push(overflow_, node);
      ++overflow_pending_;
    }
  }

  /// Sums and removes every event with time <= now_s. The cursor is
  /// monotone: advancing to an earlier time only re-walks the current
  /// bucket (still exact).
  [[nodiscard]] std::int64_t advance(double now_s) {
    if (fine_pending_ == 0 && coarse_pending_ == 0 &&
        overflow_pending_ == 0) {
      // Nothing can fire; skip even the bucket-index arithmetic. The
      // cursor intentionally stays put — schedule() clamps past times into
      // the cursor bucket and events carry exact timestamps, so a later
      // advance() from the stale cursor returns exactly the same sums.
      return 0;
    }
    std::int64_t fired = 0;
    const std::int64_t target_idx = fine_index(now_s);
    // Whole fine buckets strictly before the target: every event in bucket
    // b has time < (b + 1) * resolution <= now, so no comparisons needed.
    // Per-level pending counts let empty spans be skipped outright, so the
    // cost of one advance is O(populated fine buckets crossed + coarse
    // boundaries crossed while the coarse level holds events) — never a
    // per-empty-bucket walk across a long idle gap.
    while (cursor_idx_ < target_idx) {
      if (fine_pending_ == 0 && coarse_pending_ == 0) {
        // Only overflow (or nothing) remains: jump straight to the target
        // and re-home whatever the move pulled into the coarse horizon.
        cursor_idx_ = target_idx;
        if (overflow_pending_ > 0) cascade();
        break;
      }
      if (fine_pending_ == 0) {
        // Fine window empty: skip to the next coarse boundary (or target).
        const std::int64_t boundary =
            (cursor_idx_ / kBuckets + 1) * kBuckets;
        cursor_idx_ = boundary < target_idx ? boundary : target_idx;
        if (cursor_idx_ % kBuckets == 0) cascade();
        continue;
      }
      fired += drain_all(
          fine_[static_cast<std::size_t>(cursor_idx_ % kBuckets)],
          fine_pending_);
      ++cursor_idx_;
      if (cursor_idx_ % kBuckets == 0) cascade();
    }
    // The straddling bucket: exact per-event comparison.
    fired += drain_due(
        fine_[static_cast<std::size_t>(cursor_idx_ % kBuckets)], now_s,
        fine_pending_);
    return fired;
  }

  /// Sums and removes everything regardless of time (end-of-slot settle:
  /// every registered launch has started).
  [[nodiscard]] std::int64_t settle_all() {
    std::int64_t fired = 0;
    for (auto& head : fine_) fired += drain_all(head, fine_pending_);
    for (auto& head : coarse_) fired += drain_all(head, coarse_pending_);
    fired += drain_all(overflow_, overflow_pending_);
    pool_.reclaim_all();
    return fired;
  }

  /// Pre-carves node storage for `n` concurrently pending events (warmup
  /// outside the measured region; no-op once capacity suffices).
  void reserve(std::size_t n) { pool_.reserve(n); }

  [[nodiscard]] bool empty() const noexcept { return pending() == 0; }
  [[nodiscard]] std::int64_t pending() const noexcept {
    return fine_pending_ + coarse_pending_ + overflow_pending_;
  }

 private:
  static constexpr std::int64_t kBuckets = 64;
  static constexpr double kDefaultResolution = 1e-2;

  struct Event {
    double time_s = 0.0;
    std::int64_t count = 0;
  };

  [[nodiscard]] std::int64_t fine_index(double time_s) const {
    const double offset = (time_s - origin_s_) / resolution_s_;
    if (offset <= 0.0) return 0;
    // Clamp before the cast: a double beyond int64 range is UB to convert,
    // and anything this far out lives in the overflow list regardless.
    constexpr double kMaxIdx = 1e15;
    return offset >= kMaxIdx ? static_cast<std::int64_t>(kMaxIdx)
                             : static_cast<std::int64_t>(offset);
  }

  void push(std::int32_t& head, std::int32_t node) {
    pool_.set_next(node, head);
    head = node;
  }

  std::int64_t drain_all(std::int32_t& head, std::int64_t& level_pending) {
    std::int64_t fired = 0;
    while (head != kSlabNil) {
      const std::int32_t node = head;
      head = pool_.next_of(node);
      fired += pool_[node].count;
      pool_.release(node);
      --level_pending;
    }
    return fired;
  }

  std::int64_t drain_due(std::int32_t& head, double now_s,
                         std::int64_t& level_pending) {
    std::int64_t fired = 0;
    std::int32_t* link = &head;
    while (*link != kSlabNil) {
      const std::int32_t node = *link;
      if (pool_[node].time_s <= now_s) {
        fired += pool_[node].count;
        *link = pool_.next_of(node);
        pool_.release(node);
        --level_pending;
      } else {
        link = &pool_.mutable_next(node);
      }
    }
    return fired;
  }

  /// The fine window rolled over a coarse boundary: re-home the coarse
  /// bucket now covered by the fine window, and pull overflow events whose
  /// time entered the coarse horizon. Re-scheduling preserves exact times.
  void cascade() {
    std::int32_t moved = coarse_[static_cast<std::size_t>(
        (cursor_idx_ / kBuckets) % kBuckets)];
    coarse_[static_cast<std::size_t>((cursor_idx_ / kBuckets) % kBuckets)] =
        kSlabNil;
    reschedule_chain(moved);
    const double coarse_horizon_s =
        origin_s_ +
        static_cast<double>((cursor_idx_ / kBuckets + kBuckets) * kBuckets) *
            resolution_s_;
    std::int32_t* link = &overflow_;
    while (*link != kSlabNil) {
      const std::int32_t node = *link;
      if (pool_[node].time_s < coarse_horizon_s) {
        *link = pool_.next_of(node);
        const Event event = pool_[node];
        pool_.release(node);
        --overflow_pending_;
        schedule(event.time_s, event.count);
      } else {
        link = &pool_.mutable_next(node);
      }
    }
  }

  /// Re-homes a detached coarse chain through schedule() (exact times are
  /// preserved, so this never changes what an advance returns).
  void reschedule_chain(std::int32_t head) {
    while (head != kSlabNil) {
      const std::int32_t node = head;
      head = pool_.next_of(node);
      const Event event = pool_[node];
      pool_.release(node);
      --coarse_pending_;
      schedule(event.time_s, event.count);
    }
  }

  double origin_s_ = 0.0;
  double resolution_s_ = kDefaultResolution;
  std::int64_t cursor_idx_ = 0;  ///< fine bucket index of the advance cursor
  /// Per-level event counts; advance() skips spans whose levels are empty.
  std::int64_t fine_pending_ = 0;
  std::int64_t coarse_pending_ = 0;
  std::int64_t overflow_pending_ = 0;
  std::int32_t fine_[kBuckets];
  std::int32_t coarse_[kBuckets];
  std::int32_t overflow_ = kSlabNil;
  SlabPool<Event> pool_;
};

}  // namespace birp::runtime
