#include "birp/runtime/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace birp::runtime {
namespace {

/// Architecture pause hint inside spin loops: keeps the core's memory
/// pipeline from speculating past the polled atomic and yields decode
/// bandwidth to the sibling hyperthread.
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // No portable pause instruction; the loop's atomic load already bounds it.
#endif
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads, int spin_iterations)
    : spin_iterations_(std::max(0, spin_iterations)) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
    stop_flag_.store(true, std::memory_order_release);
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const std::scoped_lock lock(mutex_);
    if (stopping_) {
      // A task accepted now might never run (workers may already have
      // drained and exited); reject deterministically instead.
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(task));
    pending_.fetch_add(1, std::memory_order_release);
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::spin_for_work() const noexcept {
  for (int i = 0; i < spin_iterations_; ++i) {
    if (pending_.load(std::memory_order_acquire) > 0 ||
        stop_flag_.load(std::memory_order_acquire)) {
      return;
    }
    cpu_pause();
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock lock(mutex_, std::defer_lock);
  while (true) {
    // Spin phase, lock-free: a task enqueued within the budget makes the
    // CV wait below satisfy its predicate immediately — no futex sleep.
    spin_for_work();
    lock.lock();
    work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      lock.unlock();
      continue;
    }
    auto task = std::move(queue_.front());
    queue_.pop_front();
    pending_.fetch_sub(1, std::memory_order_release);
    ++active_;
    lock.unlock();
    task();  // packaged_task captures exceptions into the future
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_.notify_all();
    lock.unlock();
  }
}

}  // namespace birp::runtime
