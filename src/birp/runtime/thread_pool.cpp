#include "birp/runtime/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace birp::runtime {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const std::scoped_lock lock(mutex_);
    if (stopping_) {
      // A task accepted now might never run (workers may already have
      // drained and exited); reject deterministically instead.
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    auto task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();  // packaged_task captures exceptions into the future
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_.notify_all();
  }
}

}  // namespace birp::runtime
