// Fixed-size worker thread pool.
//
// Used to run per-edge slot execution concurrently in the simulator and to
// parallelize experiment sweeps (the Fig. 4 / Fig. 5 epsilon grids run one
// full simulation per grid point). Tasks are type-erased closures; submit()
// returns a std::future for the result.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace birp::runtime {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins all workers (via shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Begins shutdown: previously submitted tasks still drain, then all
  /// workers join. Idempotent. After shutdown has begun, submit()/enqueue()
  /// reject deterministically with std::runtime_error instead of silently
  /// enqueuing work that would never run.
  void shutdown();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues `fn(args...)`; the returned future delivers the result or the
  /// thrown exception.
  template <typename Fn, typename... Args>
  auto submit(Fn&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<Fn, Args...>> {
    using Result = std::invoke_result_t<Fn, Args...>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        [fn = std::forward<Fn>(fn),
         ... args = std::forward<Args>(args)]() mutable {
          return std::invoke(std::move(fn), std::move(args)...);
        });
    auto future = task->get_future();
    enqueue([task]() mutable { (*task)(); });
    return future;
  }

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace birp::runtime
