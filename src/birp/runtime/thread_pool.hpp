// Fixed-size worker thread pool.
//
// Used to run per-edge slot execution concurrently in the simulator and to
// parallelize experiment sweeps (the Fig. 4 / Fig. 5 epsilon grids run one
// full simulation per grid point). Tasks are type-erased closures; submit()
// returns a std::future for the result.
//
// Wakeup path: an idle worker first spins for a bounded number of
// iterations on an atomic pending-task counter before parking on the
// condition variable. Slot-boundary bursts (the serve engine submits one
// task per edge back to back) then catch workers mid-spin and skip the
// futex round trip entirely; a pool idle longer than the spin budget parks
// and costs nothing. Correctness never depends on the spin — it is a
// wakeup hint only, and every queue access stays under the mutex (the spin
// reads only the atomic counter and stop flag, keeping TSan clean).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace birp::runtime {

class ThreadPool {
 public:
  /// Workers spin this many iterations (pause instructions) for new work
  /// before parking on the condition variable.
  static constexpr int kDefaultSpinIterations = 4096;

  /// Spawns `threads` workers; 0 means hardware concurrency (min 1).
  /// `spin_iterations` bounds the pre-park spin (0 = always park
  /// immediately, the pre-spin behavior).
  explicit ThreadPool(std::size_t threads = 0,
                      int spin_iterations = kDefaultSpinIterations);

  /// Drains outstanding work, then joins all workers (via shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Begins shutdown: previously submitted tasks still drain, then all
  /// workers join. Idempotent. After shutdown has begun, submit()/enqueue()
  /// reject deterministically with std::runtime_error instead of silently
  /// enqueuing work that would never run.
  void shutdown();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }
  [[nodiscard]] int spin_iterations() const noexcept {
    return spin_iterations_;
  }

  /// Enqueues `fn(args...)`; the returned future delivers the result or the
  /// thrown exception.
  template <typename Fn, typename... Args>
  auto submit(Fn&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<Fn, Args...>> {
    using Result = std::invoke_result_t<Fn, Args...>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        [fn = std::forward<Fn>(fn),
         ... args = std::forward<Args>(args)]() mutable {
          return std::invoke(std::move(fn), std::move(args)...);
        });
    auto future = task->get_future();
    enqueue([task]() mutable { (*task)(); });
    return future;
  }

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();
  /// Bounded lock-free wait for the pending counter to go nonzero (or for
  /// shutdown). Purely a latency optimization; returns on budget exhaustion
  /// regardless.
  void spin_for_work() const noexcept;

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  /// Mirror of queue_.size(), maintained under the mutex but readable
  /// without it — what the pre-park spin polls.
  std::atomic<std::int64_t> pending_{0};
  /// Mirror of stopping_, so the spin can bail without the lock.
  std::atomic<bool> stop_flag_{false};
  int spin_iterations_ = kDefaultSpinIterations;
};

}  // namespace birp::runtime
