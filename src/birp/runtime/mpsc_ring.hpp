// Bounded lock-free multi-producer / single-consumer ring buffer.
//
// The serve runtime's admission path is an MPSC shape: any number of
// producers (arrival expansion, failover re-admission, flash-crowd
// overlays) hand requests to exactly one per-edge worker that admits,
// batches, and launches them. MpscRing is that handoff buffer: a bounded
// power-of-two ring in the style of Vyukov's bounded queue — each slot
// carries a sequence counter, producers claim slots with one fetch_add on
// the tail, and the consumer retires them in FIFO order with plain stores
// on the head. No mutex anywhere; full slots reject the push (the caller
// applies its backpressure policy) instead of blocking.
//
// Concurrency contract:
//   * try_push is safe from any number of threads concurrently;
//   * try_pop / front / size are single-consumer (one thread at a time);
//   * reset() and the indexed peek used by AdmissionQueue require a
//     quiescent ring (no concurrent producers) — the serve engine satisfies
//     this trivially because each slot's stream is fully staged before the
//     edge worker starts consuming.
//
// Determinism: FIFO order per producer is preserved exactly; with a single
// producer (the engine's staging path) the pop order equals the push order,
// which is what the byte-identity suite in serve_test pins down.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "birp/util/check.hpp"

namespace birp::runtime {

template <typename T>
class MpscRing {
 public:
  /// An empty ring; resize() before use. Kept cheap so pools of rings can
  /// be default-constructed and sized lazily.
  MpscRing() = default;

  /// A ring with room for at least `min_capacity` elements (rounded up to a
  /// power of two).
  explicit MpscRing(std::size_t min_capacity) { resize(min_capacity); }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Moves require a quiescent source (no concurrent producers/consumer).
  MpscRing(MpscRing&& other) noexcept
      : slots_(std::move(other.slots_)),
        capacity_(other.capacity_),
        mask_(other.mask_),
        head_(other.head_.load(std::memory_order_relaxed)),
        tail_(other.tail_.load(std::memory_order_relaxed)) {
    other.capacity_ = 0;
    other.mask_ = 0;
    other.head_.store(0, std::memory_order_relaxed);
    other.tail_.store(0, std::memory_order_relaxed);
  }
  MpscRing& operator=(MpscRing&& other) noexcept {
    if (this != &other) {
      slots_ = std::move(other.slots_);
      capacity_ = other.capacity_;
      mask_ = other.mask_;
      head_.store(other.head_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      tail_.store(other.tail_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      other.capacity_ = 0;
      other.mask_ = 0;
      other.head_.store(0, std::memory_order_relaxed);
      other.tail_.store(0, std::memory_order_relaxed);
    }
    return *this;
  }

  /// Quiescent-only: empties the ring and grows its storage to hold at
  /// least `min_capacity` elements. Storage is grow-only, so steady-state
  /// reuse (the serve engine resets one ring per edge per slot) stops
  /// allocating once the high-water capacity is reached.
  void resize(std::size_t min_capacity) {
    std::size_t want = 1;
    while (want < min_capacity) want <<= 1;
    if (want <= capacity_ &&
        head_.load(std::memory_order_relaxed) ==
            tail_.load(std::memory_order_relaxed)) {
      // Already empty with enough room: the slot sequences are exactly the
      // continuation state the protocol needs, so the ring keeps rolling
      // from its current position. This is the steady-state reset (the
      // serve engine drains every slot), and it makes re-arming O(1)
      // instead of O(capacity) — re-initializing thousands of sequence
      // words per slot was measurable against small quiet slots.
      return;
    }
    if (want > capacity_) {
      slots_ = std::make_unique<Slot[]>(want);
      capacity_ = want;
      mask_ = want - 1;
    }
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < capacity_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Multi-producer push; returns false when the ring is full.
  bool try_push(T value) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded pos; retry at the new claim point.
      } else if (diff < 0) {
        return false;  // slot still holds an unconsumed element: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Multi-producer bulk push: claims up to `count` contiguous slots with a
  /// single CAS and returns how many of `items` were staged (less than
  /// `count` only when the ring runs out of room). One tail update per
  /// batch instead of per element — the engine stages a whole slot's
  /// arrival stream this way, so the per-request handoff cost collapses to
  /// one copy plus one release store.
  ///
  /// Safety: the consumer retires slots strictly in FIFO order and
  /// publishes its progress through `head_` with a release store, so every
  /// slot in [head, head + capacity) has completed its previous-lap
  /// consumption by the time an acquire load observes that head value. A
  /// claim bounded by that window can therefore write values immediately —
  /// no per-slot sequence wait — and publish each slot with the usual
  /// sequence release.
  std::size_t try_push_many(const T* items, std::size_t count) {
    if (count == 0) return 0;
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    std::size_t claim;
    for (;;) {
      const std::uint64_t head = head_.load(std::memory_order_acquire);
      const std::size_t used = static_cast<std::size_t>(pos - head);
      const std::size_t free = capacity_ - used;
      claim = count < free ? count : free;
      if (claim == 0) return 0;
      if (tail_.compare_exchange_weak(pos, pos + claim,
                                      std::memory_order_relaxed)) {
        break;
      }
      // CAS failure reloaded pos; recompute the window from there.
    }
    for (std::size_t i = 0; i < claim; ++i) {
      Slot& slot = slots_[(pos + i) & mask_];
      slot.value = items[i];
      slot.seq.store(pos + i + 1, std::memory_order_release);
    }
    return claim;
  }

  /// Single-consumer pop; returns false when empty.
  bool try_pop(T& out) {
    const std::uint64_t pos = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & mask_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1) <
        0) {
      return false;  // next slot not yet published
    }
    out = std::move(slot.value);
    slot.seq.store(pos + capacity_, std::memory_order_release);
    // Release so bulk producers that observe this head know the slot's
    // sequence store above is visible too (try_push_many relies on it).
    head_.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Single-consumer peek at the oldest element; nullptr when empty.
  [[nodiscard]] const T* front() const {
    const std::uint64_t pos = head_.load(std::memory_order_relaxed);
    const Slot& slot = slots_[pos & mask_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1) <
        0) {
      return nullptr;
    }
    return &slot.value;
  }

  /// Consumer-side size estimate; exact when quiescent or single-producer
  /// with the producer done publishing.
  [[nodiscard]] std::size_t size() const noexcept {
    const auto head = head_.load(std::memory_order_relaxed);
    const auto tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer claim point
};

}  // namespace birp::runtime
