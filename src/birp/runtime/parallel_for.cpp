#include "birp/runtime/parallel_for.hpp"

#include <algorithm>
#include <future>
#include <vector>

namespace birp::runtime {

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_chunk) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks =
      std::max<std::size_t>(1, std::min(pool.size() * 4, total / std::max<std::size_t>(1, min_chunk)));
  const std::size_t chunk_size = (total + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }

  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_chunk) {
  ThreadPool pool;
  parallel_for(pool, begin, end, body, min_chunk);
}

}  // namespace birp::runtime
