// Blocking data-parallel loop over an index range, built on ThreadPool.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>

#include "birp/runtime/thread_pool.hpp"

namespace birp::runtime {

/// Runs body(i) for i in [begin, end) across the pool, blocking until all
/// iterations finish. Iterations are distributed in contiguous chunks; the
/// first exception (if any) is rethrown on the calling thread. `body` must
/// be safe to invoke concurrently for distinct indices.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_chunk = 1);

/// Convenience overload with a transient pool sized to the hardware.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_chunk = 1);

}  // namespace birp::runtime
