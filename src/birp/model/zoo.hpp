// Application / model-variant zoo.
//
// Mirrors the paper's §5.1 setup: five industrial-internet applications
// (object detection, face recognition, image recognition, NLU, semantic
// segmentation), each mapped to five DNN model variants spanning
// ResNet-18-class through BERT-class footprints. All per-variant parameters
// are drawn deterministically inside the ranges the paper states:
//   inference loss            in [0.15, 0.49]
//   serial latency (see note) in [18, 770] ms on the reference edge
//   weight size delta         in [33, 550] MB
//   compressed weights xi     in [7, 98] MB
//   batch-1 intermediates mu  in [55, 480] MB
//   request size zeta         in [0.2, 3] MB
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace birp::model {

/// One deployable DNN inference model version of an application.
struct ModelVariant {
  int app = 0;      ///< owning application index i
  int variant = 0;  ///< model index j within the application (0 = smallest)
  std::string name;
  double loss = 0.0;             ///< inference error loss_{ij}
  double base_latency_ms = 0.0;  ///< serial batch-1 latency on the reference edge
  double weights_mb = 0.0;       ///< delta_{ji}: resident weight memory
  double compressed_mb = 0.0;    ///< xi_{ji}: network cost of shipping the model
  double intermediate_mb = 0.0;  ///< mu_{ji}: activation memory per batch element
};

/// One intelligent application and its model versions.
struct Application {
  int id = 0;
  std::string name;
  double request_mb = 0.0;    ///< zeta_i: network cost of forwarding one request
  double slo_fraction = 1.0;  ///< response-time SLO as a fraction of the slot
  std::vector<ModelVariant> variants;
};

/// Immutable collection of applications; the unit the scheduler plans over.
class Zoo {
 public:
  /// The paper's large-scale configuration: 5 applications x 5 models.
  static Zoo standard();

  /// The paper's small-scale configuration: 1 application, 3 models
  /// (TIR measured offline in the paper's Fig. 6 experiment).
  static Zoo small_scale();

  /// A mid-size configuration used for the epsilon parameter sweeps
  /// (Fig. 4 / Fig. 5): 3 applications x 3 models each.
  static Zoo sweep_scale();

  /// Seeded synthetic configuration of arbitrary width for large-topology
  /// experiments (birp/cluster benches): `num_apps` applications x
  /// `num_variants` models each, parameters drawn from the same ladders and
  /// ranges as the paper configurations. Deterministic in (num_apps,
  /// num_variants, seed).
  static Zoo synthetic(int num_apps, int num_variants,
                       std::uint64_t seed = 0x5f00);

  /// Fully custom construction (used by tests).
  explicit Zoo(std::vector<Application> apps);

  [[nodiscard]] const std::vector<Application>& apps() const noexcept {
    return apps_;
  }
  [[nodiscard]] int num_apps() const noexcept {
    return static_cast<int>(apps_.size());
  }
  [[nodiscard]] int num_variants(int app) const;
  [[nodiscard]] int max_variants() const noexcept { return max_variants_; }
  [[nodiscard]] int total_variants() const noexcept { return total_variants_; }
  [[nodiscard]] const Application& app(int index) const;
  [[nodiscard]] const ModelVariant& variant(int app, int variant) const;

  /// Smallest loss across all variants of `app` (the best any schedule can
  /// achieve per request for that application).
  [[nodiscard]] double best_loss(int app) const;
  /// Largest loss across all variants of `app`.
  [[nodiscard]] double worst_loss(int app) const;

 private:
  std::vector<Application> apps_;
  int max_variants_ = 0;
  int total_variants_ = 0;
};

}  // namespace birp::model
