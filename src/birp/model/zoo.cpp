#include "birp/model/zoo.hpp"

#include <algorithm>
#include <cmath>

#include "birp/util/check.hpp"
#include "birp/util/rng.hpp"

namespace birp::model {
namespace {

// Size-class anchors for a 5-variant ladder (variant 0 = smallest/least
// accurate ... variant 4 = largest/most accurate), inside the paper's ranges.
constexpr double kLossLadder[5] = {0.49, 0.40, 0.31, 0.22, 0.15};
constexpr double kLatencyLadderMs[5] = {18.0, 55.0, 150.0, 340.0, 770.0};
constexpr double kWeightsLadderMb[5] = {33.0, 85.0, 180.0, 340.0, 550.0};
constexpr double kIntermediateLadderMb[5] = {55.0, 110.0, 210.0, 340.0, 480.0};

ModelVariant make_variant(int app, int variant, const std::string& app_name,
                          int ladder_index, util::Xoshiro256StarStar& rng) {
  ModelVariant v;
  v.app = app;
  v.variant = variant;
  v.name = app_name + "/v" + std::to_string(variant);
  // Deterministic per-variant jitter keeps apps distinguishable while every
  // value stays inside the paper's stated ranges.
  const double jitter = rng.uniform(0.92, 1.08);
  v.loss = std::clamp(kLossLadder[ladder_index] * jitter, 0.15, 0.49);
  v.base_latency_ms =
      std::clamp(kLatencyLadderMs[ladder_index] * jitter, 18.0, 770.0);
  v.weights_mb =
      std::clamp(kWeightsLadderMb[ladder_index] * jitter, 33.0, 550.0);
  // Compressed weights transmit at roughly one-fifth the resident size,
  // clamped into the paper's [7, 98] MB transmission range.
  v.compressed_mb = std::clamp(v.weights_mb * 0.18, 7.0, 98.0);
  v.intermediate_mb =
      std::clamp(kIntermediateLadderMb[ladder_index] * jitter, 55.0, 480.0);
  return v;
}

Application make_app(int id, const std::string& name, int num_variants,
                     util::Xoshiro256StarStar& rng) {
  Application app;
  app.id = id;
  app.name = name;
  app.request_mb = rng.uniform(0.2, 3.0);
  app.slo_fraction = 1.0;  // SLO == slot length, as in the paper's CDF plots
  app.variants.reserve(static_cast<std::size_t>(num_variants));
  for (int j = 0; j < num_variants; ++j) {
    // Spread the reduced ladders over the full size range.
    const int ladder_index =
        num_variants == 5 ? j : (j * 4) / std::max(1, num_variants - 1);
    app.variants.push_back(make_variant(id, j, name, ladder_index, rng));
  }
  return app;
}

}  // namespace

Zoo Zoo::standard() {
  util::Xoshiro256StarStar rng(0xb19fULL);
  std::vector<Application> apps;
  const char* names[] = {"object_detection", "face_recognition",
                         "image_recognition", "nlu", "semantic_segmentation"};
  for (int i = 0; i < 5; ++i) apps.push_back(make_app(i, names[i], 5, rng));
  return Zoo(std::move(apps));
}

Zoo Zoo::small_scale() {
  util::Xoshiro256StarStar rng(0x5a11ULL);
  std::vector<Application> apps;
  apps.push_back(make_app(0, "image_recognition", 3, rng));
  return Zoo(std::move(apps));
}

Zoo Zoo::sweep_scale() {
  util::Xoshiro256StarStar rng(0x53e9ULL);
  std::vector<Application> apps;
  const char* names[] = {"object_detection", "image_recognition", "nlu"};
  for (int i = 0; i < 3; ++i) apps.push_back(make_app(i, names[i], 3, rng));
  return Zoo(std::move(apps));
}

Zoo Zoo::synthetic(int num_apps, int num_variants, std::uint64_t seed) {
  util::check(num_apps > 0, "Zoo::synthetic: num_apps must be positive");
  util::check(num_variants > 0 && num_variants <= 5,
              "Zoo::synthetic: num_variants must be in [1, 5]");
  util::Xoshiro256StarStar rng(seed);
  std::vector<Application> apps;
  apps.reserve(static_cast<std::size_t>(num_apps));
  for (int i = 0; i < num_apps; ++i) {
    apps.push_back(
        make_app(i, "synthetic_" + std::to_string(i), num_variants, rng));
  }
  return Zoo(std::move(apps));
}

Zoo::Zoo(std::vector<Application> apps) : apps_(std::move(apps)) {
  util::check(!apps_.empty(), "Zoo: no applications");
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    util::check(apps_[i].id == static_cast<int>(i), "Zoo: app ids must be dense");
    util::check(!apps_[i].variants.empty(), "Zoo: app without variants");
    max_variants_ =
        std::max(max_variants_, static_cast<int>(apps_[i].variants.size()));
    total_variants_ += static_cast<int>(apps_[i].variants.size());
    for (std::size_t j = 0; j < apps_[i].variants.size(); ++j) {
      const auto& v = apps_[i].variants[j];
      util::check(v.app == static_cast<int>(i) && v.variant == static_cast<int>(j),
                  "Zoo: variant indices must be dense");
      util::check(v.loss > 0.0 && v.base_latency_ms > 0.0 && v.weights_mb > 0.0,
                  "Zoo: variant parameters must be positive");
    }
  }
}

int Zoo::num_variants(int app) const {
  return static_cast<int>(this->app(app).variants.size());
}

const Application& Zoo::app(int index) const {
  util::check(index >= 0 && index < num_apps(), "Zoo: bad app index");
  return apps_[static_cast<std::size_t>(index)];
}

const ModelVariant& Zoo::variant(int app, int variant) const {
  const auto& a = this->app(app);
  util::check(variant >= 0 && variant < static_cast<int>(a.variants.size()),
              "Zoo: bad variant index");
  return a.variants[static_cast<std::size_t>(variant)];
}

double Zoo::best_loss(int app) const {
  const auto& a = this->app(app);
  double best = a.variants.front().loss;
  for (const auto& v : a.variants) best = std::min(best, v.loss);
  return best;
}

double Zoo::worst_loss(int app) const {
  const auto& a = this->app(app);
  double worst = a.variants.front().loss;
  for (const auto& v : a.variants) worst = std::max(worst, v.loss);
  return worst;
}

}  // namespace birp::model
