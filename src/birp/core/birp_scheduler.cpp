#include "birp/core/birp_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "birp/util/check.hpp"

namespace birp::core {

BirpScheduler::BirpScheduler(const device::ClusterSpec& cluster,
                             BirpConfig config)
    : cluster_(cluster), config_(config) {
  if (config_.solver_threads > 0) {
    pool_ = std::make_unique<runtime::ThreadPool>(
        static_cast<std::size_t>(config_.solver_threads));
  }
  if (config_.online) {
    const std::size_t total =
        static_cast<std::size_t>(cluster.num_devices()) *
        static_cast<std::size_t>(cluster.num_apps()) *
        static_cast<std::size_t>(cluster.zoo().max_variants());
    estimators_.assign(total, TirEstimator(config_.tuner));
  }
}

BirpScheduler BirpScheduler::offline(const device::ClusterSpec& cluster,
                                     BirpConfig config) {
  config.online = false;
  return BirpScheduler(cluster, config);
}

std::size_t BirpScheduler::estimator_index(int device, int app,
                                           int variant) const {
  return (static_cast<std::size_t>(device) *
              static_cast<std::size_t>(cluster_.num_apps()) +
          static_cast<std::size_t>(app)) *
             static_cast<std::size_t>(cluster_.zoo().max_variants()) +
         static_cast<std::size_t>(variant);
}

device::TirParams BirpScheduler::believed_tir(int device, int app,
                                              int variant) const {
  if (!config_.online) return cluster_.oracle_tir(device, app, variant);
  return estimators_[estimator_index(device, app, variant)].lower_confidence(
      slot_);
}

std::vector<TirEstimator> BirpScheduler::export_device_estimators(
    int device) const {
  if (!config_.online) return {};
  util::check(device >= 0 && device < cluster_.num_devices(),
              "BirpScheduler: export device out of range");
  const std::size_t per_device =
      static_cast<std::size_t>(cluster_.num_apps()) *
      static_cast<std::size_t>(cluster_.zoo().max_variants());
  const std::size_t base = estimator_index(device, 0, 0);
  return {estimators_.begin() + static_cast<std::ptrdiff_t>(base),
          estimators_.begin() + static_cast<std::ptrdiff_t>(base + per_device)};
}

void BirpScheduler::import_device_estimators(
    int device, const std::vector<TirEstimator>& state) {
  if (!config_.online || state.empty()) return;
  util::check(device >= 0 && device < cluster_.num_devices(),
              "BirpScheduler: import device out of range");
  const std::size_t per_device =
      static_cast<std::size_t>(cluster_.num_apps()) *
      static_cast<std::size_t>(cluster_.zoo().max_variants());
  util::check(state.size() == per_device,
              "BirpScheduler: imported estimator slice has the wrong shape");
  std::copy(state.begin(), state.end(),
            estimators_.begin() +
                static_cast<std::ptrdiff_t>(estimator_index(device, 0, 0)));
}

void BirpScheduler::invalidate_warm_start() {
  prev_basis_ = solver::Basis{};
  prev_values_.clear();
}

sim::SlotDecision BirpScheduler::decide(const sim::SlotState& state) {
  slot_ = state.slot;
  const TirLookup lookup = [this](int k, int i, int j) {
    return believed_tir(k, i, j);
  };

  // Graceful degradation: when the heartbeat view reports down edges, the
  // slot problem is rebuilt with their capacity masked to zero, so the IP
  // redistributes around the failure instead of planning work it will lose.
  ProblemOptions options = config_.problem;
  if (state.any_down()) options.edge_up = state.edge_up;
  // Overload-protection hints: breaker-open (app, edge) pairs refuse
  // imports; degradation-ladder caps pin the most expensive variants off.
  if (state.hints != nullptr && !state.hints->empty()) {
    options.avoid_import = state.hints->avoid_import;
    options.variant_cap = state.hints->variant_cap;
  }

  const BuiltProblem problem = build_slot_problem(
      cluster_, state.demand, state.previous, lookup, options);

  // The BIRP-aware round-and-repair heuristic seeds branch-and-bound with
  // feasible incumbents, keeping the per-slot solve real-time.
  solver::BranchAndBoundOptions solver_options = config_.solver;
  solver_options.incumbent_heuristic =
      [&](std::span<const double> lp_values) {
        return heuristic_incumbent(problem, lp_values, cluster_, state.demand,
                                   state.previous, lookup, options);
      };
  solver_options.pool = pool_.get();
  if (solver_options.warm_start) {
    // Cross-slot warm start: seed the root relaxation with the previous
    // slot's optimal basis, and the incumbent with the previous decision
    // repaired against this slot's demand/liveness (the heuristic verifies
    // and repairs, so a stale decision degrades to "no seed", never to a
    // wrong answer).
    if (prev_basis_.matches(problem.model.num_variables(),
                            problem.model.num_constraints())) {
      solver_options.root_basis = &prev_basis_;
    }
    if (prev_values_.size() ==
        static_cast<std::size_t>(problem.model.num_variables())) {
      solver_options.seed_candidate =
          heuristic_incumbent(problem, prev_values_, cluster_, state.demand,
                              state.previous, lookup, options);
    }
  }
  const solver::Solution solution =
      solver::solve_milp(problem.model, solver_options);
  total_nodes_ += solution.nodes_explored;
  total_pivots_ += solution.simplex_iterations;
  total_factor_pivots_ += solution.factor_pivots;
  warm_lp_solves_ += solution.warm_lp_solves;
  cold_lp_solves_ += solution.cold_lp_solves;

  if (!solution.basis.empty()) prev_basis_ = solution.basis;
  if (!solution.usable()) {
    ++fallbacks_;
    return greedy_fallback(state);
  }
  prev_values_ = solution.values;
  return extract_decision(problem, solution, cluster_, state.demand);
}

void BirpScheduler::observe(const sim::SlotFeedback& feedback) {
  if (!config_.online) return;
  for (const auto& obs : feedback.observations) {
    observed_batches_.add(static_cast<double>(obs.batch));
    estimators_[estimator_index(obs.device, obs.app, obs.variant)].update(
        obs.observed_tir, obs.batch, feedback.slot);
  }
}

sim::SlotDecision BirpScheduler::greedy_fallback(
    const sim::SlotState& state) const {
  // Serve every region locally: fill variants smallest-first at the believed
  // saturated batch size while the believed compute budget lasts; the rest
  // is dropped. Deliberately simple — this is a liveness net, not a policy.
  const int I = cluster_.num_apps();
  const int K = cluster_.num_devices();
  sim::SlotDecision decision(I, cluster_.zoo().max_variants(), K);

  for (int k = 0; k < K; ++k) {
    if (!state.is_up(k)) {
      // Down edge: its region's demand has nowhere to go in fallback mode.
      for (int i = 0; i < I; ++i) decision.drops(i, k) = state.demand(i, k);
      continue;
    }
    double compute_left = cluster_.tau_s();
    double weights_used = 0.0;
    double peak_mu = 0.0;
    const double memory_mb = cluster_.memory_mb(k);
    for (int i = 0; i < I; ++i) {
      std::int64_t remaining = state.demand(i, k);
      const int J = cluster_.zoo().num_variants(i);
      for (int j = 0; j < J && remaining > 0; ++j) {
        if (!state.variant_allowed(i, j)) continue;
        const auto believed = believed_tir(k, i, j);
        const auto& variant = cluster_.zoo().variant(i, j);
        const int mem_cap = std::max(
            1, static_cast<int>(std::floor(
                   config_.problem.max_reservation_fraction * memory_mb /
                   variant.intermediate_mb)));
        const int kernel_cap =
            std::min({config_.problem.max_batch, believed.beta, mem_cap});
        const int cap =
            kernel_cap * std::max(1, config_.problem.launch_multiplier);
        const double gamma = config_.problem.gamma_lookup
                                 ? config_.problem.gamma_lookup(k, i, j)
                                 : cluster_.gamma_s(k, i, j);

        // Largest batch fitting the believed compute budget and the
        // time-sliced memory model (weights sum + peak in-flight batch).
        const double weights_after = weights_used + variant.weights_mb;
        if (weights_after + peak_mu > memory_mb) continue;
        const auto memory_allowed = static_cast<std::int64_t>(std::floor(
            (memory_mb - weights_after) / variant.intermediate_mb));
        const auto compute_allowed = static_cast<std::int64_t>(std::floor(
            (compute_left / gamma - believed.eta) / (1.0 - believed.eta)));
        const auto take =
            std::min({remaining, static_cast<std::int64_t>(cap),
                      memory_allowed, compute_allowed});
        if (take <= 0) continue;

        compute_left -=
            gamma * ((1.0 - believed.eta) * static_cast<double>(take) +
                     believed.eta);
        weights_used = weights_after;
        peak_mu = std::max(
            peak_mu, variant.intermediate_mb * static_cast<double>(take));
        decision.served(i, j, k) = take;
        decision.kernel(i, j, k) = static_cast<int>(
            std::min<std::int64_t>(take, kernel_cap));
        remaining -= take;
      }
      decision.drops(i, k) = remaining;
    }
  }
  return decision;
}

}  // namespace birp::core
