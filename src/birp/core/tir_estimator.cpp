#include "birp/core/tir_estimator.hpp"

#include <algorithm>

#include "birp/util/check.hpp"

namespace birp::core {

TirEstimator::TirEstimator(const TirEstimatorConfig& config)
    : config_(config),
      eta_bar_(config.initial_eta),
      beta_bar_(static_cast<double>(config.initial_beta)),
      c_bar_(std::pow(static_cast<double>(config.initial_beta),
                      config.initial_eta)) {
  util::check(config.epsilon1 > 0.0 && config.epsilon2 > 0.0,
              "TirEstimator: epsilons must be positive");
  util::check(config.initial_eta > 0.0 && config.initial_beta >= 1,
              "TirEstimator: bad initialization");
}

void TirEstimator::update(double observed_tir, int batch, int t) {
  util::check(batch >= 1, "TirEstimator: batch must be >= 1");
  util::check(observed_tir > 0.0, "TirEstimator: TIR must be positive");
  (void)t;

  if (observed_tir >= (1.0 + config_.epsilon1) * c_bar_) {
    // Beyond the believed threshold (Eq. 15): unbiased running means toward
    // the observation (Eq. 16), counted in n2 (Eq. 18).
    const double n2 = static_cast<double>(n2_) + 1.0;
    beta_bar_ += (static_cast<double>(batch) - beta_bar_) / n2;
    c_bar_ += (observed_tir - c_bar_) / n2;
    ++n2_;
  } else {
    // Within the threshold: refresh the exponent (Eq. 19/21, defined for
    // b > 1; a batch of one carries no slope information), counted in n1.
    if (batch > 1) {
      const double eta_hat =
          std::log(observed_tir) / std::log(static_cast<double>(batch));
      const double n1 = static_cast<double>(n1_) + 1.0;
      eta_bar_ += (eta_hat - eta_bar_) / n1;
    }
    ++n1_;
  }
}

device::TirParams TirEstimator::lower_confidence(int t) const {
  const int eta_n = config_.paper_eq22_uses_n2 ? n2_ : n1_;
  device::TirParams params;
  params.eta = std::max(0.01, eta_bar_ * (1.0 - padding(t, eta_n)));
  params.beta = std::max(
      1, static_cast<int>(std::ceil(beta_bar_ * (1.0 - padding(t, n2_)))));
  const double c_lcb = c_bar_ * (1.0 - padding(t, n2_));
  params.c = std::max(1.0, c_lcb);
  return params;
}

device::TirParams TirEstimator::mean_estimate() const {
  device::TirParams params;
  params.eta = eta_bar_;
  params.beta = std::max(1, static_cast<int>(std::lround(beta_bar_)));
  params.c = c_bar_;
  return params;
}

}  // namespace birp::core
