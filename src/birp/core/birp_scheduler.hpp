// The BIRP scheduler (the paper's contribution) and its BIRP-OFF oracle
// variant.
//
// Per slot: look up believed TIR parameters (online: MAB lower-confidence
// estimates refreshed from execution feedback; offline: ground-truth curves
// profiled ahead of time), build the linearized slot problem, solve it with
// branch-and-bound, and extract an executable decision. If the solver fails
// to produce a usable incumbent within budget, a greedy fallback keeps the
// system live (serve locally, smallest models first, drop the overflow).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "birp/core/problem.hpp"
#include "birp/core/tir_estimator.hpp"
#include "birp/device/cluster.hpp"
#include "birp/runtime/thread_pool.hpp"
#include "birp/sim/scheduler.hpp"
#include "birp/solver/branch_and_bound.hpp"
#include "birp/util/stats.hpp"

namespace birp::core {

struct BirpConfig {
  TirEstimatorConfig tuner;
  ProblemOptions problem;
  solver::BranchAndBoundOptions solver;
  /// Online mode tunes TIR hyperparameters from feedback; offline mode
  /// (BIRP-OFF) reads the cluster's oracle curves and ignores feedback.
  bool online = true;
  /// Worker threads for wave-parallel branch-and-bound node evaluation;
  /// 0 solves on the calling thread. Decisions are bit-identical either way
  /// (the solver's wave merge is deterministic), so this is purely a
  /// latency knob.
  ///
  /// Nesting note (cluster::CellScheduler runs one BirpScheduler per cell):
  /// every pool owns dedicated workers, so nested pools cannot deadlock —
  /// but thread counts multiply. Keep
  ///   cell_threads * (1 + solver_threads) <~ hardware concurrency,
  /// or leave this 0 when sharding and parallelize across cells only.
  int solver_threads = 0;
  /// Optional display-name override (used by ablation variants).
  std::string name_override;

  BirpConfig() {
    // Per-slot scheduling must be real-time: a small node budget, a 2%
    // optimality gap, and the round-and-repair incumbent heuristic return
    // near-optimal plans quickly; the linearization ablation bench measures
    // the residual gap against exhaustive search on small instances.
    solver.max_nodes = 4;
    solver.relative_gap = 0.02;
  }
};

class BirpScheduler : public sim::Scheduler {
 public:
  BirpScheduler(const device::ClusterSpec& cluster, BirpConfig config = {});

  /// BIRP-OFF: offline-profiled TIR, no online tuning.
  [[nodiscard]] static BirpScheduler offline(const device::ClusterSpec& cluster,
                                             BirpConfig config = {});

  [[nodiscard]] std::string name() const override {
    if (!config_.name_override.empty()) return config_.name_override;
    return config_.online ? "BIRP" : "BIRP-OFF";
  }

  [[nodiscard]] sim::SlotDecision decide(const sim::SlotState& state) override;
  void observe(const sim::SlotFeedback& feedback) override;

  /// Believed TIR parameters for the upcoming slot (diagnostics / tests).
  [[nodiscard]] device::TirParams believed_tir(int device, int app,
                                               int variant) const;

  // --- Scheduler-state handoff (live repartitioning, birp/cluster) ---------
  /// All of one device's TIR/MAB estimator state, in [app][variant] order.
  /// Empty in offline mode (oracle beliefs carry no state).
  [[nodiscard]] std::vector<TirEstimator> export_device_estimators(
      int device) const;
  /// Installs previously exported estimator state for `device`. No-op in
  /// offline mode or when `state` is empty; the slice size must match.
  void import_device_estimators(int device,
                                const std::vector<TirEstimator>& state);
  /// Drops the cross-slot warm-start basis and seed decision. Called after a
  /// handoff: the carried state describes a different subcluster, so reusing
  /// it would be wrong (the next solve starts cold, which is merely slower).
  void invalidate_warm_start();
  /// Sets the MAB slot clock (confidence-bound widths grow with ln(t)), so
  /// imported estimators keep aging on the global clock after a handoff.
  void set_slot(int slot) noexcept { slot_ = slot; }

  /// Cumulative solver diagnostics.
  [[nodiscard]] std::int64_t total_nodes() const noexcept {
    return total_nodes_;
  }
  [[nodiscard]] std::int64_t total_pivots() const noexcept {
    return total_pivots_;
  }
  [[nodiscard]] std::int64_t total_factor_pivots() const noexcept {
    return total_factor_pivots_;
  }
  [[nodiscard]] std::int64_t warm_lp_solves() const noexcept {
    return warm_lp_solves_;
  }
  [[nodiscard]] std::int64_t cold_lp_solves() const noexcept {
    return cold_lp_solves_;
  }
  [[nodiscard]] std::int64_t fallback_count() const noexcept override {
    return fallbacks_;
  }
  /// Distribution of batch sizes the runtime actually executed, as observed
  /// through TIR feedback. Under the serving engine's adaptive batcher every
  /// launch reports, so this is the realized batch-size distribution the
  /// tuner's beliefs are conditioned on (diagnostics / tests); under the
  /// fixed rule it only sees each job's first launch.
  [[nodiscard]] const util::RunningStats& observed_batches() const noexcept {
    return observed_batches_;
  }

 private:
  [[nodiscard]] std::size_t estimator_index(int device, int app,
                                            int variant) const;
  [[nodiscard]] sim::SlotDecision greedy_fallback(
      const sim::SlotState& state) const;

  const device::ClusterSpec& cluster_;
  BirpConfig config_;
  std::vector<TirEstimator> estimators_;  ///< [device][app][variant], online
  /// Pool for wave-parallel node LPs (null when solver_threads == 0).
  std::unique_ptr<runtime::ThreadPool> pool_;
  /// Cross-slot warm-start state: the previous slot's root-relaxation basis
  /// and usable decision. Slot problems are structurally identical (masking
  /// is done via bounds), so the shapes always line up.
  solver::Basis prev_basis_;
  std::vector<double> prev_values_;
  int slot_ = 0;
  std::int64_t total_nodes_ = 0;
  std::int64_t total_pivots_ = 0;
  std::int64_t total_factor_pivots_ = 0;
  std::int64_t warm_lp_solves_ = 0;
  std::int64_t cold_lp_solves_ = 0;
  std::int64_t fallbacks_ = 0;
  util::RunningStats observed_batches_;
};

}  // namespace birp::core
