#include "birp/core/problem.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "birp/sim/validate.hpp"
#include "birp/util/check.hpp"

namespace birp::core {

BuiltProblem build_slot_problem(const device::ClusterSpec& cluster,
                                const util::Grid2<std::int64_t>& demand,
                                const sim::SlotDecision* previous,
                                const TirLookup& tir,
                                const ProblemOptions& options) {
  const int I = cluster.num_apps();
  const int K = cluster.num_devices();
  const int Jmax = cluster.zoo().max_variants();
  util::check(demand.rows() == I && demand.cols() == K,
              "build_slot_problem: demand shape mismatch");
  util::check(options.max_batch >= 1, "build_slot_problem: bad max_batch");

  const auto gamma_of = [&](int k, int i, int j) {
    return options.gamma_lookup ? options.gamma_lookup(k, i, j)
                                : cluster.gamma_s(k, i, j);
  };

  BuiltProblem built{solver::Model{},
                     util::Grid3<int>(I, Jmax, K, -1),
                     util::Grid3<int>(I, Jmax, K, -1),
                     util::Grid2<int>(I, K, -1),
                     util::Grid2<int>(I, K, -1),
                     util::Grid2<int>(I, K, -1),
                     std::vector<int>(static_cast<std::size_t>(K), -1),
                     util::Grid3<int>(I, Jmax, K, 1)};
  auto& model = built.model;

  // Peak working-set variable per edge (Eq. 6 with time-sliced execution:
  // activations are alive only while their launch runs, so the memory
  // charge is resident weights + the largest in-flight batch footprint).
  for (int k = 0; k < K; ++k) {
    built.w[static_cast<std::size_t>(k)] =
        model.add_continuous("w_k" + std::to_string(k), 0.0, solver::kInfinity);
  }

  // ---- Variables. ----
  for (int i = 0; i < I; ++i) {
    const int J = cluster.zoo().num_variants(i);
    for (int j = 0; j < J; ++j) {
      const auto& variant = cluster.zoo().variant(i, j);
      for (int k = 0; k < K; ++k) {
        const auto believed = tir(k, i, j);
        // Per-launch kernel: believed beta, the global cap, and the memory
        // reservation limit (a launch's activations may claim at most a
        // fraction of the edge's memory).
        const int mem_cap = std::max(
            1, static_cast<int>(std::floor(
                   options.max_reservation_fraction * cluster.memory_mb(k) /
                   variant.intermediate_mb)));
        const int batch_cap =
            std::min({options.max_batch, believed.beta, mem_cap});
        // A down edge has zero serving capacity: z's bound collapses and the
        // deployment binary is pinned off below. A variant above the
        // degradation-ladder cap is pinned the same way on every edge.
        const bool usable = options.is_up(k) && options.variant_allowed(i, j);
        const int serve_cap =
            usable ? batch_cap * std::max(1, options.launch_multiplier) : 0;
        built.kernel_cap(i, j, k) = batch_cap;
        const std::string tag = "_i" + std::to_string(i) + "j" +
                                std::to_string(j) + "k" + std::to_string(k);
        built.x(i, j, k) = model.add_binary("x" + tag);
        built.z(i, j, k) =
            model.add_integer("z" + tag, 0.0, static_cast<double>(serve_cap));
        model.set_objective(built.z(i, j, k), variant.loss);
        if (!usable) {
          model.add_constraint({{built.x(i, j, k), 1.0}},
                               solver::Relation::LessEqual, 0.0,
                               "down" + tag);
        }

        // z <= serve_cap * x : links serving to deployment (and makes the
        // x*b product exact without a bilinear term). z >= x (Eq. 4's
        // b >= x) is omitted: x = 1 with z = 0 only adds cost, so no
        // optimal solution uses it.
        model.add_constraint({{built.z(i, j, k), 1.0},
                              {built.x(i, j, k), -static_cast<double>(serve_cap)}},
                             solver::Relation::LessEqual, 0.0, "link" + tag);
      }
    }
  }
  for (int i = 0; i < I; ++i) {
    const double penalty =
        options.drop_penalty_factor * cluster.zoo().worst_loss(i);
    for (int k = 0; k < K; ++k) {
      const std::string tag = "_i" + std::to_string(i) + "k" + std::to_string(k);
      // Down edges exchange nothing: their region's demand can only drop.
      // A breaker-open (app, edge) pair additionally refuses imports while
      // still serving and exporting its own region.
      const bool can_flow = options.allow_redistribution && options.is_up(k);
      const double export_cap =
          can_flow ? static_cast<double>(demand(i, k)) : 0.0;
      const double import_cap =
          can_flow && options.import_allowed(i, k) ? solver::kInfinity : 0.0;
      built.e(i, k) = model.add_continuous("e" + tag, 0.0, export_cap);
      built.m(i, k) = model.add_continuous("m" + tag, 0.0, import_cap);
      built.d(i, k) = model.add_continuous("d" + tag, 0.0, solver::kInfinity);
      model.set_objective(built.d(i, k), penalty);
    }
  }

  // ---- Conservation (Eq. 3 + Eq. 5): served + drops = local - out + in. ----
  for (int i = 0; i < I; ++i) {
    const int J = cluster.zoo().num_variants(i);
    for (int k = 0; k < K; ++k) {
      std::vector<solver::Term> terms;
      for (int j = 0; j < J; ++j) terms.push_back({built.z(i, j, k), 1.0});
      terms.push_back({built.d(i, k), 1.0});
      terms.push_back({built.e(i, k), 1.0});
      terms.push_back({built.m(i, k), -1.0});
      model.add_constraint(terms, solver::Relation::Equal,
                           static_cast<double>(demand(i, k)),
                           "conserve_i" + std::to_string(i) + "k" +
                               std::to_string(k));
    }
  }

  // ---- Per-app flow balance: total exported == total imported. ----
  for (int i = 0; i < I; ++i) {
    std::vector<solver::Term> terms;
    for (int k = 0; k < K; ++k) {
      terms.push_back({built.e(i, k), 1.0});
      terms.push_back({built.m(i, k), -1.0});
    }
    model.add_constraint(terms, solver::Relation::Equal, 0.0,
                         "balance_i" + std::to_string(i));
  }

  // ---- Memory (Eq. 6), compute (Eq. 25), network (Eq. 13/14). ----
  for (int k = 0; k < K; ++k) {
    std::vector<solver::Term> memory;
    std::vector<solver::Term> compute;
    std::vector<solver::Term> network;
    for (int i = 0; i < I; ++i) {
      const int J = cluster.zoo().num_variants(i);
      for (int j = 0; j < J; ++j) {
        const auto& variant = cluster.zoo().variant(i, j);
        memory.push_back({built.x(i, j, k), variant.weights_mb});
        // w_k >= mu_ij * kernel_cap_ijk * x_ijk : a deployed model reserves
        // its full-batch activation buffer (serving runtimes preallocate at
        // the maximum launch size), so the peak is per-deployment constant
        // rather than per-request.
        model.add_constraint(
            {{built.x(i, j, k),
              variant.intermediate_mb *
                  static_cast<double>(built.kernel_cap(i, j, k))},
             {built.w[static_cast<std::size_t>(k)], -1.0}},
            solver::Relation::LessEqual, 0.0);

        // Eq. 25: x * h(b) = gamma * [(1 - eta) z + eta x].
        const auto believed = tir(k, i, j);
        const double gamma = gamma_of(k, i, j);
        compute.push_back({built.z(i, j, k), gamma * (1.0 - believed.eta)});
        compute.push_back({built.x(i, j, k), gamma * believed.eta});

        // Eq. 9's switch term [x_t - x_{t-1}]+: newly deployed models ship
        // compressed weights; retained deployments are free. At t = 0
        // (no previous slot) models are staged before the experiment starts,
        // matching the paper's P1 formulation (Eq. 13) where the switch
        // term is absent.
        const bool was_deployed =
            previous == nullptr || previous->deployed(i, j, k);
        if (!was_deployed) {
          network.push_back({built.x(i, j, k), variant.compressed_mb});
        }
      }
      const double zeta = cluster.zoo().app(i).request_mb;
      network.push_back({built.e(i, k), zeta});
      network.push_back({built.m(i, k), zeta});
    }
    memory.push_back({built.w[static_cast<std::size_t>(k)], 1.0});
    model.add_constraint(memory, solver::Relation::LessEqual,
                         cluster.memory_mb(k), "memory_k" + std::to_string(k));
    model.add_constraint(compute, solver::Relation::LessEqual, cluster.tau_s(),
                         "compute_k" + std::to_string(k));
    model.add_constraint(network, solver::Relation::LessEqual,
                         cluster.network_mb(k), "network_k" + std::to_string(k));
  }

  return built;
}

namespace {

/// Per-edge running budgets during heuristic plan construction.
struct EdgeBudget {
  double weights_mb = 0.0;   ///< resident weights of deployed variants
  double peak_mb = 0.0;      ///< largest in-flight activation footprint
  double compute_s = 0.0;    ///< believed compute (Eq. 25 left-hand side)
  double network_mb = 0.0;   ///< switch + flow charges (Eq. 9)
};

}  // namespace

std::vector<double> heuristic_incumbent(const BuiltProblem& problem,
                                        std::span<const double> lp_values,
                                        const device::ClusterSpec& cluster,
                                        const util::Grid2<std::int64_t>& demand,
                                        const sim::SlotDecision* previous,
                                        const TirLookup& tir,
                                        const ProblemOptions& options) {
  const int I = cluster.num_apps();
  const int K = cluster.num_devices();
  if (lp_values.size() !=
      static_cast<std::size_t>(problem.model.num_variables())) {
    return {};
  }

  // Routing comes from the LP (rounded, balanced, matched into flows);
  // the per-edge serving plan is rebuilt from scratch below, because the
  // LP's fractional x hides most of the model-weight cost and naive
  // rounding deploys far more variants than memory can hold.
  solver::Solution pseudo;
  pseudo.status = solver::SolveStatus::Feasible;
  pseudo.values.assign(lp_values.begin(), lp_values.end());
  sim::SlotDecision decision =
      extract_decision(problem, pseudo, cluster, demand);

  // Wipe the serving plan, keep the flows.
  decision.served.fill(0);
  decision.kernel.fill(0);
  decision.drops.fill(0);

  std::vector<EdgeBudget> budget(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    // Flow charges are fixed for this candidate (both endpoints pay).
    budget[static_cast<std::size_t>(k)].network_mb =
        sim::decision_network_mb(cluster, decision, previous, k);
  }

  const auto kernel_cap = [&](int k, int i, int j) {
    const int mem_cap = std::max(
        1, static_cast<int>(std::floor(
               options.max_reservation_fraction * cluster.memory_mb(k) /
               cluster.zoo().variant(i, j).intermediate_mb)));
    return std::min({options.max_batch, tir(k, i, j).beta, mem_cap});
  };
  const auto serve_cap = [&](int k, int i, int j) {
    return kernel_cap(k, i, j) * std::max(1, options.launch_multiplier);
  };
  const auto gamma_of = [&](int k, int i, int j) {
    return options.gamma_lookup ? options.gamma_lookup(k, i, j)
                                : cluster.gamma_s(k, i, j);
  };
  const auto marginal_s = [&](int k, int i, int j) {
    return gamma_of(k, i, j) * (1.0 - tir(k, i, j).eta);
  };
  const auto fixed_s = [&](int k, int i, int j) {
    return gamma_of(k, i, j) * tir(k, i, j).eta;
  };
  const auto switch_mb = [&](int k, int i, int j) {
    const bool pays = previous != nullptr && !previous->deployed(i, j, k);
    return pays ? cluster.zoo().variant(i, j).compressed_mb : 0.0;
  };

  // Activation reservation of a deployment: full-batch buffer (matches the
  // model's W >= mu * kernel_cap * x rows).
  const auto reserve_mb = [&](int k, int i, int j) {
    return cluster.zoo().variant(i, j).intermediate_mb *
           static_cast<double>(kernel_cap(k, i, j));
  };

  // How many extra requests (i, j, k) can absorb under every budget.
  const auto headroom = [&](int k, int i, int j) -> std::int64_t {
    if (!options.is_up(k)) return 0;  // down edge: nothing serves here
    if (!options.variant_allowed(i, j)) return 0;  // above the ladder cap
    const auto& b = budget[static_cast<std::size_t>(k)];
    const auto& variant = cluster.zoo().variant(i, j);
    const auto z = decision.served(i, j, k);
    const bool fresh = z == 0;
    const double weights_after =
        b.weights_mb + (fresh ? variant.weights_mb : 0.0);
    const double peak_after =
        fresh ? std::max(b.peak_mb, reserve_mb(k, i, j)) : b.peak_mb;
    if (weights_after + peak_after > cluster.memory_mb(k) + 1e-9) return 0;
    // Only deployments that actually ship weights consume network budget;
    // a pre-existing flow-rounding overshoot (repaired by the validator
    // afterwards) must not veto free deployments.
    const double switch_cost = fresh ? switch_mb(k, i, j) : 0.0;
    if (switch_cost > 0.0 &&
        b.network_mb + switch_cost > cluster.network_mb(k) + 1e-9) {
      return 0;
    }
    const auto by_cap = static_cast<std::int64_t>(serve_cap(k, i, j)) - z;
    const double compute_left = cluster.tau_s() - b.compute_s -
                                (fresh ? fixed_s(k, i, j) : 0.0);
    const auto by_compute = static_cast<std::int64_t>(
        std::floor(compute_left / marginal_s(k, i, j)));
    return std::max<std::int64_t>(0, std::min(by_cap, by_compute));
  };
  const auto commit = [&](int k, int i, int j, std::int64_t add) {
    auto& b = budget[static_cast<std::size_t>(k)];
    const auto& variant = cluster.zoo().variant(i, j);
    const auto z = decision.served(i, j, k);
    if (z == 0) {
      b.weights_mb += variant.weights_mb;
      b.network_mb += switch_mb(k, i, j);
      b.compute_s += fixed_s(k, i, j);
    }
    b.compute_s += marginal_s(k, i, j) * static_cast<double>(add);
    decision.served(i, j, k) = z + add;
    decision.kernel(i, j, k) = static_cast<int>(std::min<std::int64_t>(
        z + add, kernel_cap(k, i, j)));
    b.peak_mb = std::max(b.peak_mb, reserve_mb(k, i, j));
    (void)variant;
  };
  const auto release = [&](int k, int i, int j, std::int64_t remove) {
    auto& b = budget[static_cast<std::size_t>(k)];
    const auto& variant = cluster.zoo().variant(i, j);
    const auto z = decision.served(i, j, k) - remove;
    decision.served(i, j, k) = z;
    decision.kernel(i, j, k) = static_cast<int>(std::min<std::int64_t>(
        z, kernel_cap(k, i, j)));
    b.compute_s -= marginal_s(k, i, j) * static_cast<double>(remove);
    if (z == 0) {
      b.weights_mb -= variant.weights_mb;
      b.network_mb -= switch_mb(k, i, j);
      b.compute_s -= fixed_s(k, i, j);
    }
    // Peak may shrink when a deployment empties: recompute exactly.
    double peak = 0.0;
    for (int ii = 0; ii < I; ++ii) {
      const int J = cluster.zoo().num_variants(ii);
      for (int jj = 0; jj < J; ++jj) {
        if (decision.served(ii, jj, k) > 0) {
          peak = std::max(peak, reserve_mb(k, ii, jj));
        }
      }
    }
    b.peak_mb = peak;
  };

  // ---- Phase 1a: LP-guided fill. The relaxation already balanced loss
  //      against compute, memory, and the batch caps; replay its variant
  //      allocation (largest commitments first, so the integer weight cost
  //      lands on deployments that earn it).
  std::vector<std::int64_t> remaining(
      static_cast<std::size_t>(I) * static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    for (int i = 0; i < I; ++i) {
      remaining[static_cast<std::size_t>(i) * static_cast<std::size_t>(K) +
                static_cast<std::size_t>(k)] =
          demand(i, k) - decision.exports(i, k) + decision.imports(i, k);
    }
  }
  const auto rem = [&](int i, int k) -> std::int64_t& {
    return remaining[static_cast<std::size_t>(i) * static_cast<std::size_t>(K) +
                     static_cast<std::size_t>(k)];
  };
  for (int k = 0; k < K; ++k) {
    struct Planned {
      int i, j;
      std::int64_t count;
    };
    std::vector<Planned> planned;
    for (int i = 0; i < I; ++i) {
      const int J = cluster.zoo().num_variants(i);
      for (int j = 0; j < J; ++j) {
        const auto lp_z = static_cast<std::int64_t>(std::llround(
            lp_values[static_cast<std::size_t>(problem.z(i, j, k))]));
        if (lp_z > 0) planned.push_back({i, j, lp_z});
      }
    }
    std::sort(planned.begin(), planned.end(),
              [](const Planned& a, const Planned& b) { return a.count > b.count; });
    for (const auto& p : planned) {
      const auto add =
          std::min({p.count, rem(p.i, k), headroom(k, p.i, p.j)});
      if (add <= 0) continue;
      commit(k, p.i, p.j, add);
      rem(p.i, k) -= add;
    }
  }

  // ---- Phase 1b: coverage. Whatever the guided fill could not place is
  //      served with the lightest variants first (small weights and
  //      activations), so memory cannot jam the plan. Leftovers drop.
  for (int k = 0; k < K; ++k) {
    for (int i = 0; i < I; ++i) {
      const int J = cluster.zoo().num_variants(i);
      for (int j = 0; j < J && rem(i, k) > 0; ++j) {
        const auto add = std::min(rem(i, k), headroom(k, i, j));
        if (add <= 0) continue;
        commit(k, i, j, add);
        rem(i, k) -= add;
      }
      decision.drops(i, k) = std::max<std::int64_t>(0, rem(i, k));
    }
  }

  // ---- Phase 2: accuracy upgrades. Round-robin over (edge, app), moving a
  //      small quantum of requests from a lossier variant to a more
  //      accurate one per round, while every budget holds. The quantum
  //      keeps any single deployment from hogging the shared activation
  //      peak before other apps get their upgrades. Each move strictly
  //      reduces the objective, so this terminates.
  constexpr std::int64_t kUpgradeQuantum = 2;
  bool improved = true;
  while (improved) {
    improved = false;
    for (int k = 0; k < K; ++k) {
      for (int i = 0; i < I; ++i) {
        const int J = cluster.zoo().num_variants(i);
        bool moved = false;
        for (int hi = J - 1; hi > 0 && !moved; --hi) {
          const double hi_loss = cluster.zoo().variant(i, hi).loss;
          for (int lo = 0; lo < hi && !moved; ++lo) {
            if (decision.served(i, lo, k) <= 0) continue;
            if (cluster.zoo().variant(i, lo).loss <= hi_loss) continue;
            const auto move = std::min({kUpgradeQuantum,
                                        decision.served(i, lo, k),
                                        headroom(k, i, hi)});
            if (move <= 0) continue;
            release(k, i, lo, move);
            commit(k, i, hi, move);
            moved = true;
          }
        }
        improved = improved || moved;
      }
    }
  }

  if (std::getenv("BIRP_HEUR_DEBUG") != nullptr) {
    for (int k = 0; k < K; ++k) {
      std::fprintf(stderr, "edge %d: net=%.1f/%.1f cpu=%.2f wts=%.0f peak=%.0f M=%.0f\n",
                   k, budget[(std::size_t)k].network_mb, cluster.network_mb(k),
                   budget[(std::size_t)k].compute_s, budget[(std::size_t)k].weights_mb,
                   budget[(std::size_t)k].peak_mb, cluster.memory_mb(k));
      for (int i = 0; i < I; ++i) {
        std::int64_t avail = demand(i, k) - decision.exports(i, k) + decision.imports(i, k);
        std::int64_t srv = 0;
        for (int j = 0; j < cluster.zoo().num_variants(i); ++j) srv += decision.served(i, j, k);
        if (decision.drops(i, k) > 0)
          std::fprintf(stderr, "  i=%d avail=%lld served=%lld drops=%lld (e=%lld m=%lld r=%lld)\n",
                       i, (long long)avail, (long long)srv, (long long)decision.drops(i, k),
                       (long long)decision.exports(i, k), (long long)decision.imports(i, k),
                       (long long)demand(i, k));
      }
    }
  }

  // ---- Final consistency: the shared validator restores exact
  //      conservation and re-checks every physical budget.
  validate_and_repair(cluster, demand, previous, decision);

  // ---- Serialize into model-variable values.
  std::vector<double> values(
      static_cast<std::size_t>(problem.model.num_variables()), 0.0);
  for (int i = 0; i < I; ++i) {
    const int J = cluster.zoo().num_variants(i);
    for (int j = 0; j < J; ++j) {
      for (int k = 0; k < K; ++k) {
        const auto z = decision.served(i, j, k);
        values[static_cast<std::size_t>(problem.z(i, j, k))] =
            static_cast<double>(z);
        values[static_cast<std::size_t>(problem.x(i, j, k))] =
            z > 0 ? 1.0 : 0.0;
      }
    }
    for (int k = 0; k < K; ++k) {
      values[static_cast<std::size_t>(problem.e(i, k))] =
          static_cast<double>(decision.exports(i, k));
      values[static_cast<std::size_t>(problem.m(i, k))] =
          static_cast<double>(decision.imports(i, k));
      values[static_cast<std::size_t>(problem.d(i, k))] =
          static_cast<double>(decision.drops(i, k));
    }
  }
  for (int k = 0; k < K; ++k) {
    // Recomputed from the final decision: the validator may have adjusted it.
    double peak = 0.0;
    for (int i = 0; i < I; ++i) {
      const int J = cluster.zoo().num_variants(i);
      for (int j = 0; j < J; ++j) {
        if (decision.served(i, j, k) > 0) {
          peak = std::max(peak, reserve_mb(k, i, j));
        }
      }
    }
    values[static_cast<std::size_t>(problem.w[static_cast<std::size_t>(k)])] =
        peak;
  }
  return values;
}

sim::SlotDecision extract_decision(const BuiltProblem& problem,
                                   const solver::Solution& solution,
                                   const device::ClusterSpec& cluster,
                                   const util::Grid2<std::int64_t>& demand) {
  util::check(solution.usable(), "extract_decision: unusable solution");
  const int I = cluster.num_apps();
  const int K = cluster.num_devices();
  const int Jmax = cluster.zoo().max_variants();
  const auto& values = solution.values;

  sim::SlotDecision decision(I, Jmax, K);

  // Served counts: round z (B&B returns integral z up to tolerance).
  for (int i = 0; i < I; ++i) {
    const int J = cluster.zoo().num_variants(i);
    for (int j = 0; j < J; ++j) {
      for (int k = 0; k < K; ++k) {
        const double raw = values[static_cast<std::size_t>(problem.z(i, j, k))];
        const auto served = static_cast<std::int64_t>(std::llround(raw));
        decision.served(i, j, k) = std::max<std::int64_t>(0, served);
        decision.kernel(i, j, k) = static_cast<int>(std::min<std::int64_t>(
            decision.served(i, j, k), problem.kernel_cap(i, j, k)));
      }
    }
  }

  for (int i = 0; i < I; ++i) {
    // Round exports/imports and re-balance per app (continuous LP values).
    std::vector<std::int64_t> exports(static_cast<std::size_t>(K));
    std::vector<std::int64_t> imports(static_cast<std::size_t>(K));
    std::int64_t total_e = 0;
    std::int64_t total_m = 0;
    for (int k = 0; k < K; ++k) {
      exports[static_cast<std::size_t>(k)] = std::max<std::int64_t>(
          0, std::llround(values[static_cast<std::size_t>(problem.e(i, k))]));
      exports[static_cast<std::size_t>(k)] =
          std::min(exports[static_cast<std::size_t>(k)], demand(i, k));
      imports[static_cast<std::size_t>(k)] = std::max<std::int64_t>(
          0, std::llround(values[static_cast<std::size_t>(problem.m(i, k))]));
      total_e += exports[static_cast<std::size_t>(k)];
      total_m += imports[static_cast<std::size_t>(k)];
    }
    // Shrink the larger side until balanced (largest entries first).
    while (total_e != total_m) {
      auto& side = total_e > total_m ? exports : imports;
      auto& total = total_e > total_m ? total_e : total_m;
      auto it = std::max_element(side.begin(), side.end());
      if (*it <= 0) break;
      --(*it);
      --total;
    }

    // Greedy transportation matching: largest exporter to largest importer.
    std::vector<std::int64_t> e_left = exports;
    std::vector<std::int64_t> m_left = imports;
    while (true) {
      int from = -1;
      int to = -1;
      for (int k = 0; k < K; ++k) {
        if (e_left[static_cast<std::size_t>(k)] > 0 &&
            (from < 0 || e_left[static_cast<std::size_t>(k)] >
                             e_left[static_cast<std::size_t>(from)])) {
          from = k;
        }
        if (m_left[static_cast<std::size_t>(k)] > 0 &&
            (to < 0 || m_left[static_cast<std::size_t>(k)] >
                           m_left[static_cast<std::size_t>(to)])) {
          to = k;
        }
      }
      if (from < 0 || to < 0) break;
      if (from == to) {
        // Self-flow would be a no-op; cancel one unit on both sides.
        --e_left[static_cast<std::size_t>(from)];
        --m_left[static_cast<std::size_t>(to)];
        continue;
      }
      const auto amount = std::min(e_left[static_cast<std::size_t>(from)],
                                   m_left[static_cast<std::size_t>(to)]);
      decision.flows.push_back({i, from, to, amount});
      e_left[static_cast<std::size_t>(from)] -= amount;
      m_left[static_cast<std::size_t>(to)] -= amount;
    }

    // Exact conservation: residual demand becomes drops; excess serving is
    // trimmed (can only be rounding noise of +-1).
    for (int k = 0; k < K; ++k) {
      const std::int64_t available = demand(i, k) - decision.exports(i, k) +
                                     decision.imports(i, k);
      std::int64_t served_total = 0;
      const int J = cluster.zoo().num_variants(i);
      for (int j = 0; j < J; ++j) served_total += decision.served(i, j, k);
      if (served_total > available) {
        std::int64_t excess = served_total - available;
        for (int j = J - 1; j >= 0 && excess > 0; --j) {
          const auto cut = std::min(excess, decision.served(i, j, k));
          decision.served(i, j, k) -= cut;
          decision.kernel(i, j, k) =
              static_cast<int>(decision.served(i, j, k));
          excess -= cut;
        }
        served_total = available;
      }
      decision.drops(i, k) = available - served_total;
    }
  }

  return decision;
}

}  // namespace birp::core
