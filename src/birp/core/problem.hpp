// Per-slot optimization problem builder (paper P1ᵗ / P2ᵗ after the Eq. 24
// linearization).
//
// Decision variables per slot t:
//   x_{ijk} ∈ {0,1}  deploy variant j of app i on edge k
//   z_{ijk} ∈ [0,β]  requests served by that deployment (z = x·b of the
//                    paper; the product is captured by z ≤ β·x, and b never
//                    appears elsewhere, so the bilinear term vanishes —
//                    the "quadratic" program reduces to a MILP)
//   e_{ik}, m_{ik}   requests exported from / imported to edge k (aggregated
//                    y^t_{ikk'}; exact because Eq. 9 charges both endpoints
//                    per forwarded request, so only row/column sums matter)
//   d_{ik} ≥ 0       dropped requests, charged a penalty above any model
//                    loss (engineering slack for infeasible overload)
//
// Constraints: conservation (Eq. 3+5), per-app flow balance, memory (Eq. 6),
// linearized compute (Eq. 25), network (Eq. 13/14 depending on x^{t-1}).
// Objective: Σ loss_{ij} z_{ijk} + Σ penalty_i d_{ik}   (Eq. 10).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "birp/device/cluster.hpp"
#include "birp/sim/decision.hpp"
#include "birp/solver/branch_and_bound.hpp"
#include "birp/solver/model.hpp"
#include "birp/util/grid.hpp"

namespace birp::core {

/// Supplies the TIR parameters the optimizer should believe for (k, i, j):
/// LCB estimates for online BIRP, oracle truth for BIRP-OFF.
using TirLookup =
    std::function<device::TirParams(int device, int app, int variant)>;

/// Supplies the serial latency gamma (seconds) the optimizer should believe
/// for (k, i, j). Empty means the cluster's exact table; supply a
/// predictor::LatencyPredictor-backed lambda to schedule against predicted
/// latencies (the nn-Meter role in the paper).
using GammaLookup = std::function<double(int device, int app, int variant)>;

struct ProblemOptions {
  /// Drop penalty = factor * worst loss of the app; must exceed 1 so serving
  /// is always preferred when feasible.
  double drop_penalty_factor = 2.0;
  /// Global ceiling on per-launch batch size (min'd with believed beta).
  int max_batch = 16;
  /// Multi-launch extension: a deployment may serve up to
  /// launch_multiplier * min(max_batch, beta) requests per slot, executed
  /// as back-to-back launches of the per-launch batch size. The paper's
  /// Eq. 5 merges each app's slot workload into a single batch (fine at
  /// its testbed's request rates); at realistic rates a runtime simply
  /// launches again. The linearized compute charge (Eq. 24's slope per
  /// request) remains a conservative overestimate of the true multi-launch
  /// cost, so feasibility is preserved. Set to 1 for the strict reading.
  int launch_multiplier = 3;
  /// A single deployment's activation reservation (mu * kernel) may claim
  /// at most this fraction of the edge's memory; the per-launch kernel cap
  /// shrinks to fit. Keeps large models deployable at small batches instead
  /// of being locked out by a full-beta reservation.
  double max_reservation_fraction = 0.5;
  /// Believed serial latencies; empty = cluster's exact gamma table.
  GammaLookup gamma_lookup;
  /// When false, exports/imports are pinned to zero — the NO-REDIST
  /// ablation that isolates batching benefit from redistribution benefit.
  bool allow_redistribution = true;
  /// Edge liveness mask (empty = every edge up). A down edge's serving,
  /// deployments, exports, and imports are all pinned to zero, so
  /// conservation forces its whole demand into drops — the capacity → 0
  /// masking that lets BIRP re-solve around a failed edge.
  std::vector<std::uint8_t> edge_up;
  /// Circuit-breaker avoidance (empty = none): avoid_import(i, k) != 0 pins
  /// app i's imports into edge k to zero, so the flow matching routes
  /// redistribution traffic around a tripped edge. Unlike edge_up this is
  /// one-directional: the edge still serves its own region and may export.
  util::Grid2<std::uint8_t> avoid_import;
  /// Degradation-ladder variant caps (empty = none): variant_cap[i] >= 0
  /// forbids variants with index > cap for app i (index order is smallest /
  /// cheapest first, so the ladder removes the most expensive variants).
  /// Disallowed variants get their serving and deployment pinned to zero.
  std::vector<int> variant_cap;

  /// Liveness of edge k under the "empty means all up" rule.
  [[nodiscard]] bool is_up(int k) const noexcept {
    return edge_up.empty() ||
           (k >= 0 && k < static_cast<int>(edge_up.size()) &&
            edge_up[static_cast<std::size_t>(k)] != 0);
  }
  /// Import permission under the "empty means unconstrained" rule.
  [[nodiscard]] bool import_allowed(int i, int k) const noexcept {
    return avoid_import.rows() == 0 || avoid_import(i, k) == 0;
  }
  /// Variant permission under the "empty means unconstrained" rule.
  [[nodiscard]] bool variant_allowed(int i, int j) const noexcept {
    if (i >= static_cast<int>(variant_cap.size())) return true;
    const int cap = variant_cap[static_cast<std::size_t>(i)];
    return cap < 0 || j <= cap;
  }
};

/// A built model plus the variable index maps needed to read a solution.
struct BuiltProblem {
  solver::Model model;
  util::Grid3<int> x;  ///< [app][variant][device] -> binary var index
  util::Grid3<int> z;  ///< [app][variant][device] -> integer var index
  util::Grid2<int> e;  ///< [app][device] -> export var index
  util::Grid2<int> m;  ///< [app][device] -> import var index
  util::Grid2<int> d;  ///< [app][device] -> drop var index
  std::vector<int> w;  ///< [device] -> peak working-set var index (Eq. 6')
  /// Per-launch kernel batch cap min(max_batch, believed beta) used when
  /// converting served counts into launch sizes.
  util::Grid3<int> kernel_cap;
};

/// Builds the slot problem. `previous` may be null (slot 0): all deployments
/// then pay the model-switch network cost, matching P1ᵗ.
[[nodiscard]] BuiltProblem build_slot_problem(
    const device::ClusterSpec& cluster,
    const util::Grid2<std::int64_t>& demand,
    const sim::SlotDecision* previous, const TirLookup& tir,
    const ProblemOptions& options = {});

/// Problem-specific primal heuristic for the branch-and-bound solver: turns
/// a fractional LP point into a feasible integral candidate by extracting a
/// decision, then repairing memory, believed-compute, and network overruns
/// (shedding the least amount of serving necessary). Returns an empty
/// vector when repair fails. This is what makes the per-slot MILP solvable
/// in real time at small node budgets.
[[nodiscard]] std::vector<double> heuristic_incumbent(
    const BuiltProblem& problem, std::span<const double> lp_values,
    const device::ClusterSpec& cluster,
    const util::Grid2<std::int64_t>& demand,
    const sim::SlotDecision* previous, const TirLookup& tir,
    const ProblemOptions& options);

/// Converts a MILP solution into an executable SlotDecision: rounds the
/// integer variables, reconstructs sparse flows from the aggregated
/// exports/imports (greedy transportation matching), and restores exact
/// request conservation (residuals become drops).
[[nodiscard]] sim::SlotDecision extract_decision(
    const BuiltProblem& problem, const solver::Solution& solution,
    const device::ClusterSpec& cluster,
    const util::Grid2<std::int64_t>& demand);

}  // namespace birp::core
