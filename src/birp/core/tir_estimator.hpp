// Online TIR hyperparameter tuner (paper §4.2).
//
// One estimator per (edge, application, model-variant). It maintains
// historical estimates of the three TIR curve hyperparameters
// (eta, beta, C of Eq. 2) and refreshes them from per-batch observations:
//
//   * when the observed TIR exceeds (1 + eps1) * C_bar the batch evidently
//     ran beyond the believed saturation threshold, so beta_bar and C_bar
//     move toward the observation (Eq. 15/16) and n2 increments (Eq. 18);
//   * otherwise the growth exponent is refreshed from
//     eta_hat = ln(TIR_hat) / ln(b) (Eq. 19/21) and n1 increments (Eq. 20).
//
// The values handed to the optimizer are lower confidence bounds
// (Eq. 17/22): estimate * (1 - sqrt(eps2 * ln(t+1) / (n+1))), which keeps
// the computed constraints conservative while the shrinking padding
// re-opens exploration after workload drift — the MAB element of BIRP.
#pragma once

#include <cmath>

#include "birp/device/tir.hpp"

namespace birp::core {

struct TirEstimatorConfig {
  /// Tolerated relative TIR overshoot before the threshold moves (eps1).
  double epsilon1 = 0.04;
  /// Confidence-interval width scale (eps2).
  double epsilon2 = 0.07;
  /// Conservative initialization (paper Eq. 23).
  double initial_eta = 0.1;
  int initial_beta = 16;
  /// When true, the eta LCB padding uses n2 exactly as printed in Eq. 22;
  /// when false (default) it uses n1, the count that actually grows with
  /// eta observations (we read the printed n2 as a typo; see DESIGN.md).
  bool paper_eq22_uses_n2 = false;
};

class TirEstimator {
 public:
  explicit TirEstimator(const TirEstimatorConfig& config = {});

  /// Consumes one observation: a batch of size `batch` measured at
  /// `observed_tir`, during slot `t` (0-based).
  void update(double observed_tir, int batch, int t);

  /// LCB parameters for slot `t`'s optimization (Eq. 17/22 applied to the
  /// current historical estimates). c is kept continuity-consistent for
  /// reporting; the optimizer itself only consumes eta and beta.
  [[nodiscard]] device::TirParams lower_confidence(int t) const;

  /// Raw historical means (no padding); used for diagnostics and tests.
  [[nodiscard]] device::TirParams mean_estimate() const;

  [[nodiscard]] int within_count() const noexcept { return n1_; }
  [[nodiscard]] int beyond_count() const noexcept { return n2_; }

 private:
  [[nodiscard]] double padding(int t, int n) const {
    // No padding before the first observation: the Eq. 23 initialization is
    // already conservative, and letting sqrt(eps2 ln(t+1)) grow on
    // never-scheduled arms would make them ever less attractive — a
    // cold-start trap where good model versions are never explored.
    // Clamped so small n with large ln(t+1) cannot push the LCB negative.
    if (n == 0) return 0.0;
    return std::min(0.9, std::sqrt(config_.epsilon2 * std::log(static_cast<double>(t) + 1.0) /
                                   (static_cast<double>(n) + 1.0)));
  }

  TirEstimatorConfig config_;
  double eta_bar_;
  double beta_bar_;
  double c_bar_;
  int n1_ = 0;
  int n2_ = 0;
};

}  // namespace birp::core
