#include "birp/cluster/partition.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "birp/util/check.hpp"
#include "birp/util/rng.hpp"

namespace birp::cluster {
namespace {

constexpr double kGainEps = 1e-12;

/// Canonical form: member lists sorted ascending, cells ordered by smallest
/// member, cell_of relabeled to match. Makes partitions comparable with ==
/// and independent of the growth/refinement visit order.
Partition canonicalize(std::vector<int> cell_of, int cells) {
  const int K = static_cast<int>(cell_of.size());
  std::vector<std::vector<int>> members(static_cast<std::size_t>(cells));
  for (int v = 0; v < K; ++v) {
    members[static_cast<std::size_t>(cell_of[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  // Ascending device order falls out of the v loop; sort is belt-and-braces.
  for (auto& cell : members) std::sort(cell.begin(), cell.end());
  std::sort(members.begin(), members.end(),
            [](const std::vector<int>& a, const std::vector<int>& b) {
              return a.front() < b.front();
            });
  Partition result;
  result.members = std::move(members);
  result.cell_of.assign(static_cast<std::size_t>(K), -1);
  for (int c = 0; c < cells; ++c) {
    for (const int v : result.members[static_cast<std::size_t>(c)]) {
      result.cell_of[static_cast<std::size_t>(v)] = c;
    }
  }
  return result;
}

}  // namespace

util::Grid2<double> build_affinity(const device::ClusterSpec& cluster,
                                   const util::Grid2<double>* links,
                                   PartitionObjective objective) {
  const int K = cluster.num_devices();
  if (links != nullptr) {
    util::check(links->rows() == K && links->cols() == K,
                "build_affinity: link matrix does not match cluster size");
  }
  util::Grid2<double> affinity(K, K, 0.0);
  for (int a = 0; a < K; ++a) {
    for (int b = a + 1; b < K; ++b) {
      const double mbps =
          links != nullptr
              ? (*links)(a, b)
              : std::min(cluster.device(a).bandwidth_mbps,
                         cluster.device(b).bandwidth_mbps);
      if (mbps <= 0.0) continue;  // no link, no affinity
      double weight = 0.0;
      switch (objective) {
        case PartitionObjective::kBalanced:
          weight = 1.0;
          break;
        case PartitionObjective::kBandwidth:
          weight = mbps;
          break;
        case PartitionObjective::kAffinity:
          // Heterogeneous pairs attract: a fast edge in-cell is what a slow
          // edge's overload needs, and the link bandwidth scales how much
          // of that help is actually deliverable per slot.
          weight = mbps * (1.0 + std::abs(cluster.device(a).accel_speed -
                                          cluster.device(b).accel_speed));
          break;
      }
      affinity(a, b) = weight;
      affinity(b, a) = weight;
    }
  }
  return affinity;
}

Partition partition_affinity(const util::Grid2<double>& affinity,
                             const PartitionConfig& config) {
  const int K = affinity.rows();
  util::check(K > 0 && affinity.cols() == K,
              "partition_affinity: affinity must be square and non-empty");
  const int k = config.cells;
  util::check(k >= 1 && k <= K,
              "partition_affinity: cells must be in [1, devices]");
  util::check(config.balance_tolerance >= 0.0,
              "partition_affinity: balance_tolerance must be >= 0");
  util::check(config.refine_passes >= 0,
              "partition_affinity: refine_passes must be >= 0");

  // Cell capacity: (1 + tol) * K / k rounded up, but never below the ceiling
  // needed to fit K devices into k cells at all.
  const int cap = std::max(
      static_cast<int>(
          std::ceil((1.0 + config.balance_tolerance) *
                    static_cast<double>(K) / static_cast<double>(k))),
      (K + k - 1) / k);

  std::vector<int> cell_of(static_cast<std::size_t>(K), -1);
  std::vector<int> size(static_cast<std::size_t>(k), 0);

  // --- Seeding: first center random (seeded), the rest spread out by
  // minimizing total affinity to already-chosen centers (ties -> lowest id).
  util::Xoshiro256StarStar rng(config.seed);
  std::vector<int> centers;
  centers.reserve(static_cast<std::size_t>(k));
  centers.push_back(static_cast<int>(rng.uniform_int(0, K - 1)));
  while (static_cast<int>(centers.size()) < k) {
    int best = -1;
    double best_pull = std::numeric_limits<double>::infinity();
    for (int v = 0; v < K; ++v) {
      if (std::find(centers.begin(), centers.end(), v) != centers.end()) {
        continue;
      }
      double pull = 0.0;
      for (const int c : centers) pull += affinity(v, c);
      if (pull < best_pull) {
        best_pull = pull;
        best = v;
      }
    }
    centers.push_back(best);
  }
  for (int c = 0; c < k; ++c) {
    cell_of[static_cast<std::size_t>(centers[static_cast<std::size_t>(c)])] = c;
    size[static_cast<std::size_t>(c)] = 1;
  }

  // --- Greedy growth: repeatedly place the unassigned node with the highest
  // affinity toward some non-full cell. gain[v][c] is maintained
  // incrementally. Deterministic tie-breaks: higher gain, then smaller cell,
  // then lower node id, then lower cell id.
  util::Grid2<double> gain(K, k, 0.0);
  for (int v = 0; v < K; ++v) {
    if (cell_of[static_cast<std::size_t>(v)] >= 0) continue;
    for (int c = 0; c < k; ++c) {
      gain(v, c) = affinity(v, centers[static_cast<std::size_t>(c)]);
    }
  }
  int unassigned = K - k;
  while (unassigned > 0) {
    int best_v = -1;
    int best_c = -1;
    double best_gain = -1.0;
    for (int v = 0; v < K; ++v) {
      if (cell_of[static_cast<std::size_t>(v)] >= 0) continue;
      for (int c = 0; c < k; ++c) {
        if (size[static_cast<std::size_t>(c)] >= cap) continue;
        const double g = gain(v, c);
        if (g > best_gain + kGainEps ||
            (g > best_gain - kGainEps && best_c >= 0 &&
             size[static_cast<std::size_t>(c)] <
                 size[static_cast<std::size_t>(best_c)])) {
          best_gain = g;
          best_v = v;
          best_c = c;
        }
      }
    }
    util::check(best_v >= 0, "partition_affinity: no open cell (cap bug)");
    cell_of[static_cast<std::size_t>(best_v)] = best_c;
    ++size[static_cast<std::size_t>(best_c)];
    --unassigned;
    for (int u = 0; u < K; ++u) {
      if (cell_of[static_cast<std::size_t>(u)] >= 0) continue;
      gain(u, best_c) += affinity(u, best_v);
    }
  }

  // --- Kernighan–Lin-style refinement: single-node moves that strictly
  // reduce the cut, visiting nodes in fixed ascending order so the result is
  // independent of anything but (affinity, config). A move must keep the
  // destination under cap and may not empty the source cell.
  std::vector<double> connection(static_cast<std::size_t>(k), 0.0);
  for (int pass = 0; pass < config.refine_passes; ++pass) {
    bool improved = false;
    for (int v = 0; v < K; ++v) {
      const int cur = cell_of[static_cast<std::size_t>(v)];
      if (size[static_cast<std::size_t>(cur)] <= 1) continue;
      std::fill(connection.begin(), connection.end(), 0.0);
      for (int u = 0; u < K; ++u) {
        if (u == v) continue;
        connection[static_cast<std::size_t>(cell_of[static_cast<std::size_t>(
            u)])] += affinity(v, u);
      }
      int best_c = cur;
      double best_gain = 0.0;
      for (int c = 0; c < k; ++c) {
        if (c == cur || size[static_cast<std::size_t>(c)] >= cap) continue;
        const double g = connection[static_cast<std::size_t>(c)] -
                         connection[static_cast<std::size_t>(cur)];
        if (g > best_gain + kGainEps) {
          best_gain = g;
          best_c = c;
        }
      }
      if (best_c != cur) {
        cell_of[static_cast<std::size_t>(v)] = best_c;
        --size[static_cast<std::size_t>(cur)];
        ++size[static_cast<std::size_t>(best_c)];
        improved = true;
      }
    }
    if (!improved) break;
  }

  return canonicalize(std::move(cell_of), k);
}

Partition partition_cluster(const device::ClusterSpec& cluster,
                            const util::Grid2<double>* links,
                            const PartitionConfig& config) {
  if (config.custom_cost) {
    const int K = cluster.num_devices();
    util::Grid2<double> affinity(K, K, 0.0);
    for (int a = 0; a < K; ++a) {
      for (int b = a + 1; b < K; ++b) {
        const double w = std::max(0.0, config.custom_cost(a, b));
        affinity(a, b) = w;
        affinity(b, a) = w;
      }
    }
    return partition_affinity(affinity, config);
  }
  const auto affinity = build_affinity(cluster, links, config.objective);
  return partition_affinity(affinity, config);
}

double cut_weight(const Partition& partition,
                  const util::Grid2<double>& affinity) {
  util::check(affinity.rows() == partition.devices() &&
                  affinity.cols() == partition.devices(),
              "cut_weight: dimension mismatch");
  double cut = 0.0;
  for (int a = 0; a < partition.devices(); ++a) {
    for (int b = a + 1; b < partition.devices(); ++b) {
      if (partition.cell_of[static_cast<std::size_t>(a)] !=
          partition.cell_of[static_cast<std::size_t>(b)]) {
        cut += affinity(a, b);
      }
    }
  }
  return cut;
}

}  // namespace birp::cluster
