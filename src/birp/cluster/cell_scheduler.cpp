#include "birp/cluster/cell_scheduler.hpp"

#include <future>
#include <utility>

#include "birp/util/check.hpp"

namespace birp::cluster {

CellScheduler::CellScheduler(const device::ClusterSpec& cluster,
                             Partition partition, CellSchedulerConfig config)
    : cluster_(cluster),
      partition_(std::move(partition)),
      config_(std::move(config)),
      balancer_(cluster, config_.balancer, partition_.cells()) {
  const int K = cluster_.num_devices();
  util::check(partition_.devices() == K,
              "CellScheduler: partition does not cover the cluster");
  local_of_.assign(static_cast<std::size_t>(K), -1);
  for (int c = 0; c < partition_.cells(); ++c) {
    const auto& members = partition_.members[static_cast<std::size_t>(c)];
    util::check(!members.empty(), "CellScheduler: empty cell");
    for (int local = 0; local < static_cast<int>(members.size()); ++local) {
      const int k = members[static_cast<std::size_t>(local)];
      util::check(k >= 0 && k < K && local_of_[static_cast<std::size_t>(k)] < 0,
                  "CellScheduler: partition is not a partition");
      local_of_[static_cast<std::size_t>(k)] = local;
    }
  }
  for (int k = 0; k < K; ++k) {
    util::check(local_of_[static_cast<std::size_t>(k)] >= 0,
                "CellScheduler: orphan device outside every cell");
  }

  specs_.reserve(static_cast<std::size_t>(partition_.cells()));
  cells_.reserve(static_cast<std::size_t>(partition_.cells()));
  greedy_cells_.reserve(static_cast<std::size_t>(partition_.cells()));
  for (int c = 0; c < partition_.cells(); ++c) {
    specs_.push_back(std::make_unique<device::ClusterSpec>(cluster_.subcluster(
        partition_.members[static_cast<std::size_t>(c)])));
    cells_.push_back(std::make_unique<core::BirpScheduler>(
        config_.offline
            ? core::BirpScheduler::offline(*specs_.back(), config_.birp)
            : core::BirpScheduler(*specs_.back(), config_.birp)));
    greedy_cells_.push_back(
        std::make_unique<sched::GreedyLocalScheduler>(*specs_.back()));
  }
  if (config_.cell_threads > 0 && partition_.cells() > 1) {
    pool_ = std::make_unique<runtime::ThreadPool>(
        static_cast<std::size_t>(config_.cell_threads));
  }
  prev_scratch_.resize(static_cast<std::size_t>(partition_.cells()));
  hints_scratch_.resize(static_cast<std::size_t>(partition_.cells()));
  last_pivots_.assign(static_cast<std::size_t>(partition_.cells()), 0);
  last_fallbacks_.assign(static_cast<std::size_t>(partition_.cells()), 0);
  strikes_.assign(static_cast<std::size_t>(partition_.cells()), 0);
  degraded_until_.assign(static_cast<std::size_t>(partition_.cells()), 0);
}

std::string CellScheduler::name() const {
  if (!config_.name_override.empty()) return config_.name_override;
  return (config_.offline ? std::string("BIRP-OFF-CLUSTER/")
                          : std::string("BIRP-CLUSTER/")) +
         std::to_string(partition_.cells());
}

sim::SlotDecision CellScheduler::restrict_decision(
    const sim::SlotDecision& full, const std::vector<int>& members) const {
  sim::SlotDecision local(full.apps(), full.max_variants(),
                          static_cast<int>(members.size()));
  for (int i = 0; i < full.apps(); ++i) {
    for (int j = 0; j < full.max_variants(); ++j) {
      for (int lk = 0; lk < static_cast<int>(members.size()); ++lk) {
        const int k = members[static_cast<std::size_t>(lk)];
        local.served(i, j, lk) = full.served(i, j, k);
        local.kernel(i, j, lk) = full.kernel(i, j, k);
      }
    }
    for (int lk = 0; lk < static_cast<int>(members.size()); ++lk) {
      local.drops(i, lk) =
          full.drops(i, members[static_cast<std::size_t>(lk)]);
    }
  }
  const int cell =
      partition_.cell_of[static_cast<std::size_t>(members.front())];
  for (const auto& flow : full.flows) {
    if (partition_.cell_of[static_cast<std::size_t>(flow.from)] != cell ||
        partition_.cell_of[static_cast<std::size_t>(flow.to)] != cell) {
      continue;  // crosses cells, or belongs to another cell
    }
    local.flows.push_back(
        sim::Flow{flow.app, local_of_[static_cast<std::size_t>(flow.from)],
                  local_of_[static_cast<std::size_t>(flow.to)], flow.count});
  }
  local.pad_partial_launches = full.pad_partial_launches;
  return local;
}

sim::SlotDecision CellScheduler::decide(const sim::SlotState& state) {
  const int I = cluster_.num_apps();
  const int K = cluster_.num_devices();
  const int cells = partition_.cells();
  util::check(state.demand.rows() == I && state.demand.cols() == K,
              "CellScheduler: demand does not match cluster");

  // 1. Top-level balancing: bounded demand moves between cells, planned on
  //    the calling thread so it is independent of cell_threads.
  const std::vector<Move> moves = balancer_.plan(state, partition_);
  util::Grid2<std::int64_t> adjusted = state.demand;
  for (const auto& move : moves) {
    adjusted(move.app, move.from) -= move.count;
    adjusted(move.app, move.to) += move.count;
  }

  // 2. Slice the slot state per cell.
  std::vector<sim::SlotState> cell_states(static_cast<std::size_t>(cells));
  for (int c = 0; c < cells; ++c) {
    const auto& members = partition_.members[static_cast<std::size_t>(c)];
    const int Kc = static_cast<int>(members.size());
    auto& cs = cell_states[static_cast<std::size_t>(c)];
    cs.slot = state.slot;
    cs.demand = util::Grid2<std::int64_t>(I, Kc, 0);
    for (int i = 0; i < I; ++i) {
      for (int lk = 0; lk < Kc; ++lk) {
        cs.demand(i, lk) = adjusted(i, members[static_cast<std::size_t>(lk)]);
      }
    }
    if (state.previous != nullptr) {
      // Restrict the *simulator-repaired* previous decision: cells must see
      // the same deployment history the runtime actually executed, which is
      // also what makes k = 1 a byte-identical pass-through.
      prev_scratch_[static_cast<std::size_t>(c)] =
          restrict_decision(*state.previous, members);
      cs.previous = &prev_scratch_[static_cast<std::size_t>(c)];
    }
    if (!state.edge_up.empty()) {
      cs.edge_up.resize(static_cast<std::size_t>(Kc));
      for (int lk = 0; lk < Kc; ++lk) {
        cs.edge_up[static_cast<std::size_t>(lk)] =
            state.edge_up[static_cast<std::size_t>(
                members[static_cast<std::size_t>(lk)])];
      }
    }
    if (state.hints != nullptr) {
      auto& hints = hints_scratch_[static_cast<std::size_t>(c)];
      hints.variant_cap = state.hints->variant_cap;
      if (state.hints->avoid_import.rows() > 0) {
        hints.avoid_import = util::Grid2<std::uint8_t>(I, Kc, 0);
        for (int i = 0; i < I; ++i) {
          for (int lk = 0; lk < Kc; ++lk) {
            hints.avoid_import(i, lk) = state.hints->avoid_import(
                i, members[static_cast<std::size_t>(lk)]);
          }
        }
      } else {
        hints.avoid_import = util::Grid2<std::uint8_t>();
      }
      cs.hints = &hints;
    }
  }

  // 3. Solve cells — concurrently when a pool exists. Each future is
  //    collected in cell order, so the merge below is order-deterministic.
  //    Watchdog-degraded cells skip their MILP entirely and serve the slot
  //    with GreedyLocal (cheap and serial, so always on the calling thread).
  std::vector<std::uint8_t> degraded(static_cast<std::size_t>(cells), 0);
  if (config_.watchdog.enabled) {
    for (int c = 0; c < cells; ++c) {
      degraded[static_cast<std::size_t>(c)] =
          state.slot < degraded_until_[static_cast<std::size_t>(c)] ? 1 : 0;
    }
  }
  std::vector<sim::SlotDecision> cell_decisions(
      static_cast<std::size_t>(cells));
  if (pool_ != nullptr) {
    std::vector<std::future<sim::SlotDecision>> futures(
        static_cast<std::size_t>(cells));
    for (int c = 0; c < cells; ++c) {
      if (degraded[static_cast<std::size_t>(c)] != 0) continue;
      futures[static_cast<std::size_t>(c)] = pool_->submit(
          [this, c, &cell_states]() {
            return cells_[static_cast<std::size_t>(c)]->decide(
                cell_states[static_cast<std::size_t>(c)]);
          });
    }
    for (int c = 0; c < cells; ++c) {
      cell_decisions[static_cast<std::size_t>(c)] =
          degraded[static_cast<std::size_t>(c)] != 0
              ? degraded_decision(c, cell_states[static_cast<std::size_t>(c)])
              : futures[static_cast<std::size_t>(c)].get();
    }
  } else {
    for (int c = 0; c < cells; ++c) {
      cell_decisions[static_cast<std::size_t>(c)] =
          degraded[static_cast<std::size_t>(c)] != 0
              ? degraded_decision(c, cell_states[static_cast<std::size_t>(c)])
              : cells_[static_cast<std::size_t>(c)]->decide(
                    cell_states[static_cast<std::size_t>(c)]);
    }
  }

  // 4. Merge in fixed cell order.
  sim::SlotDecision merged(I, cluster_.zoo().max_variants(), K);
  for (int c = 0; c < cells; ++c) {
    const auto& members = partition_.members[static_cast<std::size_t>(c)];
    const auto& dec = cell_decisions[static_cast<std::size_t>(c)];
    std::int64_t cell_demand = 0;
    for (int i = 0; i < I; ++i) {
      for (int j = 0; j < dec.max_variants(); ++j) {
        for (int lk = 0; lk < dec.devices(); ++lk) {
          const int k = members[static_cast<std::size_t>(lk)];
          merged.served(i, j, k) = dec.served(i, j, lk);
          merged.kernel(i, j, k) = dec.kernel(i, j, lk);
        }
      }
      for (int lk = 0; lk < dec.devices(); ++lk) {
        const int k = members[static_cast<std::size_t>(lk)];
        merged.drops(i, k) = dec.drops(i, lk);
        cell_demand += cell_states[static_cast<std::size_t>(c)].demand(i, lk);
      }
    }
    for (const auto& flow : dec.flows) {
      merged.flows.push_back(sim::Flow{
          flow.app, members[static_cast<std::size_t>(flow.from)],
          members[static_cast<std::size_t>(flow.to)], flow.count});
    }
    merged.pad_partial_launches =
        merged.pad_partial_launches || dec.pad_partial_launches;
    balancer_.record_decision(c, cell_demand, dec.total_dropped());
  }
  // Balancer moves become real inter-cell flows, which keeps global
  // conservation exact: the donor already solved without the moved demand
  // (export covered), the recipient solved with it (import covers it).
  for (const auto& move : moves) {
    merged.flows.push_back(sim::Flow{move.app, move.from, move.to, move.count});
  }

  // 5. Watchdog bookkeeping, in fixed cell order after every solve joined.
  //    The deltas come from the solver's deterministic counters, so the
  //    trip/recover schedule is bit-identical at any cell_threads.
  if (config_.watchdog.enabled) {
    for (int c = 0; c < cells; ++c) {
      if (degraded[static_cast<std::size_t>(c)] != 0) {
        ++degraded_cell_slots_;
        continue;
      }
      const std::int64_t pivots =
          cells_[static_cast<std::size_t>(c)]->total_pivots();
      const std::int64_t fallbacks =
          cells_[static_cast<std::size_t>(c)]->fallback_count();
      const bool overrun =
          pivots - last_pivots_[static_cast<std::size_t>(c)] >
              config_.watchdog.pivot_budget ||
          fallbacks > last_fallbacks_[static_cast<std::size_t>(c)];
      last_pivots_[static_cast<std::size_t>(c)] = pivots;
      last_fallbacks_[static_cast<std::size_t>(c)] = fallbacks;
      if (!overrun) {
        strikes_[static_cast<std::size_t>(c)] = 0;
        continue;
      }
      if (++strikes_[static_cast<std::size_t>(c)] >=
          config_.watchdog.strike_threshold) {
        degraded_until_[static_cast<std::size_t>(c)] =
            state.slot + 1 + config_.watchdog.degraded_slots;
        strikes_[static_cast<std::size_t>(c)] = 0;
        ++watchdog_trips_;
      }
    }
  }
  return merged;
}

sim::SlotDecision CellScheduler::degraded_decision(
    int c, const sim::SlotState& cell_state) {
  sim::SlotDecision decision =
      greedy_cells_[static_cast<std::size_t>(c)]->decide(cell_state);
  // GreedyLocal ignores the liveness mask (it predates faults), so mask down
  // edges post-hoc: nothing served there, their demand is dropped. The
  // baseline plans no flows, so this keeps conservation exact.
  if (!cell_state.edge_up.empty()) {
    for (int lk = 0; lk < decision.devices(); ++lk) {
      if (cell_state.edge_up[static_cast<std::size_t>(lk)] != 0) continue;
      for (int i = 0; i < decision.apps(); ++i) {
        for (int j = 0; j < decision.max_variants(); ++j) {
          decision.served(i, j, lk) = 0;
          decision.kernel(i, j, lk) = 0;
        }
        decision.drops(i, lk) = cell_state.demand(i, lk);
      }
    }
  }
  return decision;
}

void CellScheduler::observe(const sim::SlotFeedback& feedback) {
  const int cells = partition_.cells();
  std::vector<sim::SlotFeedback> cell_feedback(
      static_cast<std::size_t>(cells));
  for (int c = 0; c < cells; ++c) {
    cell_feedback[static_cast<std::size_t>(c)].slot = feedback.slot;
  }
  for (const auto& obs : feedback.observations) {
    const int c = partition_.cell_of[static_cast<std::size_t>(obs.device)];
    auto local = obs;
    local.device = local_of_[static_cast<std::size_t>(obs.device)];
    cell_feedback[static_cast<std::size_t>(c)].observations.push_back(local);
  }
  if (!feedback.busy_s.empty()) {
    for (int c = 0; c < cells; ++c) {
      const auto& members = partition_.members[static_cast<std::size_t>(c)];
      auto& busy = cell_feedback[static_cast<std::size_t>(c)].busy_s;
      busy.resize(members.size(), 0.0);
      double total = 0.0;
      for (std::size_t lk = 0; lk < members.size(); ++lk) {
        busy[lk] = feedback.busy_s[static_cast<std::size_t>(members[lk])];
        total += busy[lk];
      }
      balancer_.record_busy(
          c, total / (static_cast<double>(members.size()) * cluster_.tau_s()));
    }
  }
  for (int c = 0; c < cells; ++c) {
    cells_[static_cast<std::size_t>(c)]->observe(
        cell_feedback[static_cast<std::size_t>(c)]);
  }
}

std::int64_t CellScheduler::fallback_count() const noexcept {
  std::int64_t total = 0;
  for (const auto& cell : cells_) total += cell->fallback_count();
  return total;
}

}  // namespace birp::cluster
