#include "birp/cluster/control_plane.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "birp/util/check.hpp"

namespace birp::cluster {

ControlPlane::ControlPlane(const device::ClusterSpec& cluster,
                           const util::Grid2<double>* links,
                           ControlPlaneConfig config)
    : cluster_(cluster),
      config_(std::move(config)),
      health_(cluster.num_devices(), config_.health) {
  util::check(config_.min_cell_live_fraction >= 0.0 &&
                  config_.min_cell_live_fraction <= 1.0,
              "ControlPlane: min_cell_live_fraction must be in [0, 1]");
  util::check(config_.churn_threshold >= 1,
              "ControlPlane: churn_threshold must be >= 1");
  util::check(config_.cooldown_slots >= 0,
              "ControlPlane: cooldown_slots must be >= 0");
  const int K = cluster_.num_devices();
  if (config_.partition.custom_cost) {
    affinity_ = util::Grid2<double>(K, K, 0.0);
    for (int a = 0; a < K; ++a) {
      for (int b = a + 1; b < K; ++b) {
        const double w = config_.partition.custom_cost(a, b);
        affinity_(a, b) = w;
        affinity_(b, a) = w;
      }
    }
  } else {
    affinity_ = build_affinity(cluster_, links, config_.partition.objective);
  }
  inner_ = std::make_unique<CellScheduler>(cluster_, plan_partition(),
                                           config_.cell);
  snapshot_baseline();
}

std::string ControlPlane::name() const {
  if (!config_.name_override.empty()) return config_.name_override;
  return "BIRP-CP/" + std::to_string(inner_->cells());
}

Partition ControlPlane::plan_partition() const {
  const int K = cluster_.num_devices();
  std::vector<int> live;
  live.reserve(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    if (health_.is_live(k)) live.push_back(k);
  }
  // A fully dead cluster has nothing to optimize; partition as if healthy so
  // the scheduler object stays well-formed (every decision drops anyway).
  if (live.empty()) {
    for (int k = 0; k < K; ++k) live.push_back(k);
  }
  const int n = static_cast<int>(live.size());

  // Cut the surviving subgraph only: dead edges must not anchor cells.
  util::Grid2<double> sub(n, n, 0.0);
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      sub(a, b) = affinity_(live[static_cast<std::size_t>(a)],
                            live[static_cast<std::size_t>(b)]);
    }
  }
  PartitionConfig sub_config = config_.partition;
  sub_config.custom_cost = nullptr;  // already baked into affinity_
  sub_config.cells = std::max(1, std::min(config_.partition.cells, n));
  const Partition on_live = partition_affinity(sub, sub_config);

  // Lift back to the full device set: live edges keep their sub-cell; each
  // dead edge is attached to its highest-affinity live neighbor's cell (its
  // region's demand keeps arriving, so it must live somewhere — and when it
  // recovers it wakes next to the edges it collaborates best with).
  std::vector<int> cell_of(static_cast<std::size_t>(K), -1);
  for (int a = 0; a < n; ++a) {
    cell_of[static_cast<std::size_t>(live[static_cast<std::size_t>(a)])] =
        on_live.cell_of[static_cast<std::size_t>(a)];
  }
  for (int k = 0; k < K; ++k) {
    if (cell_of[static_cast<std::size_t>(k)] >= 0) continue;
    int best = live.front();
    double best_w = -1.0;
    for (const int l : live) {
      const double w = affinity_(k, l);
      if (w > best_w) {  // ties -> lowest live id (fixed scan order)
        best_w = w;
        best = l;
      }
    }
    cell_of[static_cast<std::size_t>(k)] =
        cell_of[static_cast<std::size_t>(best)];
  }

  // Re-canonicalize (members sorted, cells ordered by smallest member): the
  // dead-edge attachment can move a cell's smallest device.
  const int cells = on_live.cells();
  std::vector<std::vector<int>> members(static_cast<std::size_t>(cells));
  for (int k = 0; k < K; ++k) {
    members[static_cast<std::size_t>(cell_of[static_cast<std::size_t>(k)])]
        .push_back(k);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(cells));
  for (int c = 0; c < cells; ++c) order.push_back(c);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return members[static_cast<std::size_t>(a)].front() <
           members[static_cast<std::size_t>(b)].front();
  });
  Partition result;
  result.cell_of.assign(static_cast<std::size_t>(K), -1);
  result.members.reserve(static_cast<std::size_t>(cells));
  for (const int c : order) {
    const int id = static_cast<int>(result.members.size());
    for (const int k : members[static_cast<std::size_t>(c)]) {
      result.cell_of[static_cast<std::size_t>(k)] = id;
    }
    result.members.push_back(std::move(members[static_cast<std::size_t>(c)]));
  }
  return result;
}

void ControlPlane::snapshot_baseline() {
  live_at_cut_ = health_.live_mask();
  const Partition& partition = inner_->partition();
  cell_live_at_cut_.assign(static_cast<std::size_t>(partition.cells()), 0);
  for (int c = 0; c < partition.cells(); ++c) {
    for (const int k : partition.members[static_cast<std::size_t>(c)]) {
      if (live_at_cut_[static_cast<std::size_t>(k)] != 0) {
        ++cell_live_at_cut_[static_cast<std::size_t>(c)];
      }
    }
  }
}

bool ControlPlane::should_repartition(int slot) const {
  if (slot - last_repartition_slot_ < config_.cooldown_slots) return false;
  const Partition& partition = inner_->partition();

  // Trigger 1: a cell lost too much of the live membership it was cut with.
  for (int c = 0; c < partition.cells(); ++c) {
    const int at_cut = cell_live_at_cut_[static_cast<std::size_t>(c)];
    if (at_cut == 0) continue;
    int live_now = 0;
    for (const int k : partition.members[static_cast<std::size_t>(c)]) {
      if (health_.is_live(k)) ++live_now;
    }
    if (static_cast<double>(live_now) <
        config_.min_cell_live_fraction * static_cast<double>(at_cut)) {
      return true;
    }
  }

  // Trigger 2: the debounced live set churned (downs or recoveries) — a mass
  // recovery deserves a re-cut as much as a mass failure does.
  int churn = 0;
  for (int k = 0; k < health_.edges(); ++k) {
    const bool was = live_at_cut_[static_cast<std::size_t>(k)] != 0;
    if (health_.is_live(k) != was) ++churn;
  }
  if (churn >= config_.churn_threshold) return true;

  // Trigger 3: the balancer's smoothed shed pressure is lopsided — the cut
  // no longer matches where the load lands.
  if (config_.pressure_spread_threshold > 0.0 && partition.cells() >= 2) {
    double lo = inner_->balancer().pressure(0).shed;
    double hi = lo;
    for (int c = 1; c < partition.cells(); ++c) {
      const double shed = inner_->balancer().pressure(c).shed;
      lo = std::min(lo, shed);
      hi = std::max(hi, shed);
    }
    if (hi - lo > config_.pressure_spread_threshold) return true;
  }
  return false;
}

void ControlPlane::repartition(const sim::SlotState& state) {
  const auto start = std::chrono::steady_clock::now();
  Partition next = plan_partition();
  const Partition& current = inner_->partition();
  if (next.cell_of == current.cell_of) {
    // Same cut — nothing to hand off. Re-arm against the current live view
    // so the same stale baseline cannot re-fire every cooldown window.
    snapshot_baseline();
    last_repartition_slot_ = state.slot;
    return;
  }

  // Requests at risk: this slot's demand homed at edges changing cells.
  std::int64_t at_risk = 0;
  for (int k = 0; k < cluster_.num_devices(); ++k) {
    if (next.cell_of[static_cast<std::size_t>(k)] ==
        current.cell_of[static_cast<std::size_t>(k)]) {
      continue;
    }
    for (int i = 0; i < state.demand.rows(); ++i) {
      at_risk += state.demand(i, k);
    }
  }

  auto rebuilt =
      std::make_unique<CellScheduler>(cluster_, std::move(next), config_.cell);

  // State handoff, in fixed device order. TIR/MAB observations are the
  // expensive thing to lose — they carry over per edge. Warm-start bases
  // describe the old subclusters; the fresh cells start cold (and we make
  // that explicit), which costs one slow solve per cell, never a wrong one.
  for (int k = 0; k < cluster_.num_devices(); ++k) {
    const int old_cell = current.cell_of[static_cast<std::size_t>(k)];
    const int new_cell =
        rebuilt->partition().cell_of[static_cast<std::size_t>(k)];
    rebuilt->cell_mutable(new_cell).import_device_estimators(
        rebuilt->local_index(k),
        inner_->cell(old_cell).export_device_estimators(inner_->local_index(k)));
  }
  for (int c = 0; c < rebuilt->cells(); ++c) {
    rebuilt->cell_mutable(c).invalidate_warm_start();
    rebuilt->cell_mutable(c).set_slot(state.slot);
  }
  // Balancer pressure carries over membership-weighted, so the smoothed
  // shed/busy signals keep steering instead of restarting from zero.
  for (int c = 0; c < rebuilt->cells(); ++c) {
    const auto& members =
        rebuilt->partition().members[static_cast<std::size_t>(c)];
    CellPressure blended;
    for (const int k : members) {
      const auto& old = inner_->balancer().pressure(
          current.cell_of[static_cast<std::size_t>(k)]);
      blended.shed += old.shed;
      blended.busy += old.busy;
    }
    blended.shed /= static_cast<double>(members.size());
    blended.busy /= static_cast<double>(members.size());
    rebuilt->balancer_mutable().set_pressure(c, blended);
  }

  inner_ = std::move(rebuilt);
  snapshot_baseline();
  last_repartition_slot_ = state.slot;
  ++repartitions_;
  requests_at_risk_ += at_risk;
  const double latency_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  repartition_latency_ms_.push_back(latency_ms);
  repartition_at_risk_.push_back(at_risk);
}

sim::SlotDecision ControlPlane::decide(const sim::SlotState& state) {
  health_.observe(state.slot, state.edge_up);
  if (should_repartition(state.slot)) repartition(state);
  return inner_->decide(state);
}

void ControlPlane::observe(const sim::SlotFeedback& feedback) {
  inner_->observe(feedback);
}

std::int64_t ControlPlane::fallback_count() const noexcept {
  return inner_->fallback_count();
}

void ControlPlane::export_metrics(metrics::RunMetrics& metrics) const {
  for (const FailureEvent& e : health_.events()) {
    if (e.closed()) metrics.record_failure_event(e.mttr_slots());
  }
  for (std::size_t r = 0; r < repartition_latency_ms_.size(); ++r) {
    metrics.record_repartition(repartition_latency_ms_[r],
                               repartition_at_risk_[r]);
  }
}

}  // namespace birp::cluster
