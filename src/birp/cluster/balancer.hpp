// Inter-cell balancer: the cheap top level of the hierarchical scheme.
//
// Each cell's BirpScheduler only redistributes inside its cell; the
// partition cut removes every cross-cell collaboration path. This balancer
// restores a marginal amount of it per slot without touching any cell's
// MILP: it keeps a per-cell pressure summary (shed rate, busy fraction,
// relative backlog), and when the pressure gap between two cells exceeds a
// margin it moves a bounded slice of the hottest donor edge's demand to the
// coolest recipient edge pre-solve. The CellScheduler materializes each
// move as an inter-cell Flow in the merged decision, so global conservation
// and network accounting stay exact under sim::validate_and_repair.
//
// Everything here is O(cells + devices + apps) straight-line arithmetic in
// a fixed order — deterministic at any thread count by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "birp/cluster/partition.hpp"
#include "birp/device/cluster.hpp"
#include "birp/sim/scheduler.hpp"

namespace birp::cluster {

struct BalancerConfig {
  bool enabled = true;
  /// Max fraction of a donor edge's per-app demand moved in one slot.
  double move_fraction = 0.25;
  /// Donor pressure must exceed recipient pressure by this to trigger a move.
  double pressure_margin = 0.10;
  /// Fraction of min(donor, recipient) per-slot network budget the balancer
  /// may spend. Cell-local flows compete for the same budgets inside
  /// validate_and_repair, so this cap bounds — not eliminates — repair-time
  /// flow cancellation; keep it well under 1.
  double network_fraction = 0.5;
  /// Donor/recipient cell pairs considered per slot.
  int max_cell_pairs = 4;
  /// EMA smoothing for the shed/busy feedback signals.
  double ema_alpha = 0.4;
};

/// Smoothed per-cell state the balancer steers by.
struct CellPressure {
  double shed = 0.0;  ///< EMA of dropped / demand per slot
  double busy = 0.0;  ///< EMA of accelerator busy fraction
};

/// One planned demand move (parent-cluster device indices).
struct Move {
  int app = 0;
  int from = 0;
  int to = 0;
  std::int64_t count = 0;
};

class InterCellBalancer {
 public:
  InterCellBalancer(const device::ClusterSpec& cluster, BalancerConfig config,
                    int cells);

  /// Plans this slot's moves from the slot demand, edge liveness, hints, and
  /// the smoothed pressure state. Never moves demand from or to a down edge,
  /// never into an edge whose import breaker is open for that app, and never
  /// more request-MB than network_fraction of either endpoint's slot budget.
  [[nodiscard]] std::vector<Move> plan(const sim::SlotState& state,
                                       const Partition& partition);

  /// Post-merge feedback: a cell's slot demand and dropped counts.
  void record_decision(int cell, std::int64_t demand, std::int64_t dropped);
  /// Execution feedback: a cell's mean accelerator busy fraction this slot.
  void record_busy(int cell, double busy_fraction);

  [[nodiscard]] const CellPressure& pressure(int cell) const {
    return pressure_[static_cast<std::size_t>(cell)];
  }
  /// Installs a pressure state wholesale (control-plane handoff: carrying
  /// the smoothed signals across a repartition instead of restarting the
  /// EMAs from zero).
  void set_pressure(int cell, const CellPressure& pressure) {
    pressure_[static_cast<std::size_t>(cell)] = pressure;
  }
  [[nodiscard]] std::int64_t moved_total() const noexcept {
    return moved_total_;
  }

 private:
  const device::ClusterSpec& cluster_;
  BalancerConfig config_;
  std::vector<CellPressure> pressure_;
  std::int64_t moved_total_ = 0;
};

}  // namespace birp::cluster
