// CellScheduler: hierarchical sharded scheduling for large edge clusters.
//
// Wraps one BirpScheduler per partition cell behind the ordinary
// sim::Scheduler interface, so the Simulator and the ServeEngine drive a
// sharded cluster exactly like a monolithic one. Per slot:
//
//   1. the InterCellBalancer plans bounded inter-cell demand moves from
//      per-cell pressure summaries (straight-line, on the calling thread);
//   2. the slot state is sliced per cell — demand submatrix, the previous
//      decision restricted to cell devices, edge_up subvector, guard hints
//      subgrid — against each cell's own sub-ClusterSpec;
//   3. cells solve concurrently on an optional runtime::ThreadPool, each
//      with its own warm-start basis, TIR estimators, and fault mask;
//   4. cell decisions merge back into one global SlotDecision in fixed cell
//      order, with balancer moves appended as real inter-cell Flows so
//      conservation and network accounting stay exact under
//      sim::validate_and_repair.
//
// Determinism: cells are independent given their slices and the merge order
// is fixed, so decisions are bit-identical at any cell_threads (and any
// solver_threads — the inner solver is already wave-deterministic). With
// k = 1 and the balancer idle the wrapper is a byte-identical pass-through
// of the wrapped BirpScheduler.
//
// Thread sizing: cell_threads workers each drive a solver that may own
// birp.solver_threads more workers. Keep
//   cell_threads * (1 + birp.solver_threads) <~ hardware concurrency,
// or leave birp.solver_threads = 0 (the default) and parallelize across
// cells only — with many cells that is where the speedup is. Nested pools
// cannot deadlock (each pool owns dedicated workers); oversubscription only
// costs latency.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "birp/cluster/balancer.hpp"
#include "birp/cluster/partition.hpp"
#include "birp/core/birp_scheduler.hpp"
#include "birp/device/cluster.hpp"
#include "birp/runtime/thread_pool.hpp"
#include "birp/sched/greedy_local.hpp"
#include "birp/sim/scheduler.hpp"

namespace birp::cluster {

/// Per-cell solve watchdog: degraded operation for cells whose MILP stops
/// being real-time. A cell "overruns" a slot when its solve spends more than
/// pivot_budget simplex pivots (the deterministic proxy for wall-clock: the
/// solver is wave-deterministic, so the pivot count is a pure function of the
/// inputs and never of thread timing) or lands in the greedy fallback.
/// strike_threshold consecutive overruns trip the breaker: the cell serves
/// its next degraded_slots slots with GreedyLocal (serve locally, most
/// accurate model that fits, drop overflow, honoring the liveness mask),
/// then the MILP is retried. Tripping never touches the cell's warm-start or
/// estimator state, so recovery resumes where the cell left off.
struct CellWatchdogConfig {
  bool enabled = false;
  /// Max simplex pivots one cell solve may spend before it counts as an
  /// overrun.
  std::int64_t pivot_budget = 200000;
  /// Consecutive overruns before the cell is degraded.
  int strike_threshold = 2;
  /// Slots a tripped cell serves with GreedyLocal before retrying the MILP.
  int degraded_slots = 8;
};

struct CellSchedulerConfig {
  /// Per-cell scheduler configuration (shared by every cell). See the
  /// header comment for the cell_threads x solver_threads sizing rule.
  core::BirpConfig birp;
  BalancerConfig balancer;
  /// Worker threads for solving cells concurrently; 0 solves every cell on
  /// the calling thread. Purely a latency knob: decisions are bit-identical
  /// at any value.
  int cell_threads = 0;
  /// Construct cells as BIRP-OFF (oracle TIR) instead of online BIRP.
  bool offline = false;
  /// Degraded-operation watchdog (off by default).
  CellWatchdogConfig watchdog;
  std::string name_override;
};

class CellScheduler : public sim::Scheduler {
 public:
  /// `partition` must cover exactly the devices of `cluster`.
  CellScheduler(const device::ClusterSpec& cluster, Partition partition,
                CellSchedulerConfig config = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] sim::SlotDecision decide(const sim::SlotState& state) override;
  void observe(const sim::SlotFeedback& feedback) override;
  /// Sum of the cells' greedy-fallback slot counts.
  [[nodiscard]] std::int64_t fallback_count() const noexcept override;

  [[nodiscard]] const Partition& partition() const noexcept {
    return partition_;
  }
  [[nodiscard]] const InterCellBalancer& balancer() const noexcept {
    return balancer_;
  }
  [[nodiscard]] int cells() const noexcept { return partition_.cells(); }
  /// The wrapped per-cell scheduler (diagnostics / tests).
  [[nodiscard]] const core::BirpScheduler& cell(int c) const {
    return *cells_[static_cast<std::size_t>(c)];
  }

  // --- Control-plane hooks (birp/cluster/control_plane) --------------------
  /// Mutable access for scheduler-state handoff during live repartitioning.
  [[nodiscard]] core::BirpScheduler& cell_mutable(int c) {
    return *cells_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] InterCellBalancer& balancer_mutable() noexcept {
    return balancer_;
  }
  /// Parent device index -> index within its cell.
  [[nodiscard]] int local_index(int device) const {
    return local_of_[static_cast<std::size_t>(device)];
  }

  /// Watchdog diagnostics: breaker trips and cell-slots served degraded.
  [[nodiscard]] std::int64_t watchdog_trips() const noexcept {
    return watchdog_trips_;
  }
  [[nodiscard]] std::int64_t degraded_cell_slots() const noexcept {
    return degraded_cell_slots_;
  }

 private:
  /// Restriction of a full-cluster decision to `members` (local indexing);
  /// keeps only flows with both endpoints inside the cell.
  [[nodiscard]] sim::SlotDecision restrict_decision(
      const sim::SlotDecision& full, const std::vector<int>& members) const;
  /// One degraded (GreedyLocal) cell slot, with down edges masked post-hoc.
  [[nodiscard]] sim::SlotDecision degraded_decision(
      int c, const sim::SlotState& cell_state);

  const device::ClusterSpec& cluster_;
  Partition partition_;
  CellSchedulerConfig config_;
  std::vector<int> local_of_;  ///< parent device -> index within its cell
  /// Stable sub-spec ownership: each BirpScheduler holds a reference to its
  /// ClusterSpec for its whole lifetime.
  std::vector<std::unique_ptr<device::ClusterSpec>> specs_;
  std::vector<std::unique_ptr<core::BirpScheduler>> cells_;
  /// GreedyLocal twins for watchdog-degraded slots (stateless per slot).
  std::vector<std::unique_ptr<sched::GreedyLocalScheduler>> greedy_cells_;
  InterCellBalancer balancer_;
  std::unique_ptr<runtime::ThreadPool> pool_;
  /// Per-decide scratch kept as members so the per-cell SlotState pointers
  /// (previous, hints) stay valid while cells solve on pool workers.
  std::vector<sim::SlotDecision> prev_scratch_;
  std::vector<sim::SchedulerHints> hints_scratch_;
  // Watchdog state (all updated in fixed cell order after the solves join,
  // from deterministic solver counters — bit-identical at any cell_threads).
  std::vector<std::int64_t> last_pivots_;
  std::vector<std::int64_t> last_fallbacks_;
  std::vector<int> strikes_;
  std::vector<int> degraded_until_;  ///< cell serves GreedyLocal while slot <
  std::int64_t watchdog_trips_ = 0;
  std::int64_t degraded_cell_slots_ = 0;
};

}  // namespace birp::cluster
