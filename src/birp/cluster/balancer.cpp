#include "birp/cluster/balancer.hpp"

#include <algorithm>
#include <cmath>

#include "birp/util/check.hpp"

namespace birp::cluster {
namespace {

// Pressure score weights: shedding dominates (it is the signal that a cell
// is actually losing requests), busy saturation and relative backlog break
// ties before sheds start.
constexpr double kShedWeight = 2.0;
constexpr double kBusyWeight = 0.5;

}  // namespace

InterCellBalancer::InterCellBalancer(const device::ClusterSpec& cluster,
                                     BalancerConfig config, int cells)
    : cluster_(cluster), config_(config) {
  util::check(cells >= 1, "InterCellBalancer: cells must be >= 1");
  util::check(config_.move_fraction >= 0.0 && config_.move_fraction <= 1.0,
              "InterCellBalancer: move_fraction must be in [0, 1]");
  util::check(config_.network_fraction >= 0.0 &&
                  config_.network_fraction <= 1.0,
              "InterCellBalancer: network_fraction must be in [0, 1]");
  util::check(config_.ema_alpha > 0.0 && config_.ema_alpha <= 1.0,
              "InterCellBalancer: ema_alpha must be in (0, 1]");
  pressure_.resize(static_cast<std::size_t>(cells));
}

std::vector<Move> InterCellBalancer::plan(const sim::SlotState& state,
                                          const Partition& partition) {
  const int cells = partition.cells();
  if (!config_.enabled || cells < 2) return {};
  const int I = state.demand.rows();

  // Per-cell slot summaries over up edges only.
  std::vector<double> cell_demand(static_cast<std::size_t>(cells), 0.0);
  std::vector<int> cell_up(static_cast<std::size_t>(cells), 0);
  double total_demand = 0.0;
  int total_up = 0;
  for (int c = 0; c < cells; ++c) {
    for (const int k : partition.members[static_cast<std::size_t>(c)]) {
      if (!state.is_up(k)) continue;
      ++cell_up[static_cast<std::size_t>(c)];
      ++total_up;
      for (int i = 0; i < I; ++i) {
        cell_demand[static_cast<std::size_t>(c)] +=
            static_cast<double>(state.demand(i, k));
      }
    }
    total_demand += cell_demand[static_cast<std::size_t>(c)];
  }
  if (total_up == 0 || total_demand <= 0.0) return {};
  const double mean_per_dev = total_demand / static_cast<double>(total_up);

  // Score = relative backlog + weighted shed EMA + weighted busy EMA. Cells
  // with no live edge can neither donate nor receive.
  std::vector<double> score(static_cast<std::size_t>(cells), 0.0);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(cells));
  for (int c = 0; c < cells; ++c) {
    if (cell_up[static_cast<std::size_t>(c)] == 0) continue;
    const double per_dev =
        cell_demand[static_cast<std::size_t>(c)] /
        static_cast<double>(cell_up[static_cast<std::size_t>(c)]);
    const auto& p = pressure_[static_cast<std::size_t>(c)];
    score[static_cast<std::size_t>(c)] = per_dev / mean_per_dev - 1.0 +
                                         kShedWeight * p.shed +
                                         kBusyWeight * p.busy;
    order.push_back(c);
  }
  if (static_cast<int>(order.size()) < 2) return {};
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double sa = score[static_cast<std::size_t>(a)];
    const double sb = score[static_cast<std::size_t>(b)];
    if (sa != sb) return sa > sb;
    return a < b;  // deterministic tie-break
  });

  std::vector<Move> moves;
  const int pairs =
      std::min(config_.max_cell_pairs, static_cast<int>(order.size()) / 2);
  for (int p = 0; p < pairs; ++p) {
    const int donor_cell = order[static_cast<std::size_t>(p)];
    const int recipient_cell =
        order[order.size() - 1 - static_cast<std::size_t>(p)];
    if (score[static_cast<std::size_t>(donor_cell)] -
            score[static_cast<std::size_t>(recipient_cell)] <=
        config_.pressure_margin) {
      break;  // order is sorted: later pairs have smaller gaps
    }

    // Hottest up edge of the donor, coolest up edge of the recipient
    // (row-sum demand; ties -> lowest device id).
    const auto edge_load = [&](int k) {
      std::int64_t load = 0;
      for (int i = 0; i < I; ++i) load += state.demand(i, k);
      return load;
    };
    int donor = -1;
    std::int64_t donor_load = -1;
    for (const int k :
         partition.members[static_cast<std::size_t>(donor_cell)]) {
      if (!state.is_up(k)) continue;
      const std::int64_t load = edge_load(k);
      if (load > donor_load) {
        donor_load = load;
        donor = k;
      }
    }
    int recipient = -1;
    std::int64_t recipient_load = 0;
    for (const int k :
         partition.members[static_cast<std::size_t>(recipient_cell)]) {
      if (!state.is_up(k)) continue;
      const std::int64_t load = edge_load(k);
      if (recipient < 0 || load < recipient_load) {
        recipient_load = load;
        recipient = k;
      }
    }
    if (donor < 0 || recipient < 0 || donor_load <= 0) continue;

    double budget_mb =
        config_.network_fraction *
        std::min(cluster_.network_mb(donor), cluster_.network_mb(recipient));
    for (int i = 0; i < I; ++i) {
      if (state.import_avoided(i, recipient)) continue;
      std::int64_t count = static_cast<std::int64_t>(
          std::floor(static_cast<double>(state.demand(i, donor)) *
                     config_.move_fraction));
      const double request_mb = cluster_.zoo().app(i).request_mb;
      if (request_mb > 0.0) {
        count = std::min(
            count, static_cast<std::int64_t>(budget_mb / request_mb));
      }
      if (count <= 0) continue;
      budget_mb -= static_cast<double>(count) * request_mb;
      moves.push_back(Move{i, donor, recipient, count});
      moved_total_ += count;
    }
  }
  return moves;
}

void InterCellBalancer::record_decision(int cell, std::int64_t demand,
                                        std::int64_t dropped) {
  auto& p = pressure_[static_cast<std::size_t>(cell)];
  const double shed =
      demand > 0
          ? static_cast<double>(dropped) / static_cast<double>(demand)
          : 0.0;
  p.shed += config_.ema_alpha * (shed - p.shed);
}

void InterCellBalancer::record_busy(int cell, double busy_fraction) {
  auto& p = pressure_[static_cast<std::size_t>(cell)];
  p.busy += config_.ema_alpha * (busy_fraction - p.busy);
}

}  // namespace birp::cluster
