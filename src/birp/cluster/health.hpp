// Per-edge health tracking for the self-healing control plane.
//
// The tracker consumes the per-slot liveness mask (the heartbeat view the
// runtime already hands schedulers via SlotState::edge_up) and turns the raw
// up/down signal into a *debounced* health verdict with hysteresis:
//
//   Healthy --miss--> Suspect --(down_after_misses consecutive)--> Down
//   Down --beat--> Recovering --(up_after_beats consecutive)--> Healthy
//
// A single missed heartbeat never declares an edge dead, and a single beat
// never declares it recovered, so flapping edges cannot thrash the
// repartitioner. The debounced view drives *topology decisions only*
// (repartitioning, MTTR accounting); the instantaneous mask still hard-masks
// the slot MILP, so correctness never waits on the detector.
//
// Every Healthy -> Down transition opens a FailureEvent recording the first
// missed slot, and the matching Recovering -> Healthy transition closes it —
// MTTR per failure event is (recovered - first_miss) slots. A relapse during
// Recovering folds back into the same open event (it is the same outage).
//
// All state is straight-line per-edge arithmetic in a fixed order:
// deterministic at any thread count by construction.
#pragma once

#include <cstdint>
#include <vector>

namespace birp::cluster {

enum class EdgeHealth {
  kHealthy,     ///< beating normally
  kSuspect,     ///< missed beats, not yet declared down
  kDown,        ///< declared down (debounced)
  kRecovering,  ///< beating again, not yet declared healthy
};

struct HealthConfig {
  /// Consecutive missed heartbeats before an edge is declared Down.
  int down_after_misses = 3;
  /// Consecutive heartbeats before a Down edge is declared Healthy again.
  int up_after_beats = 2;
};

/// One debounced outage: opened when the edge is declared Down, closed when
/// it is declared Healthy again. Open events have recovered_slot == -1.
struct FailureEvent {
  int edge = 0;
  int first_miss_slot = 0;     ///< first consecutive missed heartbeat
  int declared_down_slot = 0;  ///< slot the detector fired
  int recovered_slot = -1;     ///< slot the edge was declared healthy; -1 open

  [[nodiscard]] bool closed() const noexcept { return recovered_slot >= 0; }
  /// Mean time to recovery in slots (first miss -> declared healthy).
  [[nodiscard]] int mttr_slots() const noexcept {
    return recovered_slot - first_miss_slot;
  }
};

class HealthTracker {
 public:
  HealthTracker(int edges, HealthConfig config = {});

  /// Consumes one slot's heartbeat view. `up` empty means every edge beat.
  void observe(int slot, const std::vector<std::uint8_t>& up);

  [[nodiscard]] EdgeHealth state(int edge) const {
    return state_[static_cast<std::size_t>(edge)];
  }
  /// Control-plane liveness: everything not declared Down.
  [[nodiscard]] bool is_live(int edge) const {
    return state(edge) != EdgeHealth::kDown;
  }
  [[nodiscard]] std::vector<std::uint8_t> live_mask() const;
  [[nodiscard]] int live_count() const;
  [[nodiscard]] int edges() const noexcept {
    return static_cast<int>(state_.size());
  }

  /// All failure events in open order (closed and still-open).
  [[nodiscard]] const std::vector<FailureEvent>& events() const noexcept {
    return events_;
  }
  /// Debounced transitions this tracker has declared (diagnostics).
  [[nodiscard]] std::int64_t declared_downs() const noexcept {
    return declared_downs_;
  }
  [[nodiscard]] std::int64_t declared_recoveries() const noexcept {
    return declared_recoveries_;
  }

 private:
  HealthConfig config_;
  std::vector<EdgeHealth> state_;
  std::vector<int> misses_;      ///< consecutive missed heartbeats
  std::vector<int> beats_;       ///< consecutive heartbeats
  std::vector<int> open_event_;  ///< index into events_ while Down/Recovering
  std::vector<FailureEvent> events_;
  std::int64_t declared_downs_ = 0;
  std::int64_t declared_recoveries_ = 0;
};

}  // namespace birp::cluster
