// Deterministic, seeded graph partitioner over the cluster's
// bandwidth/affinity graph.
//
// A thousand-edge cluster cannot be scheduled by one global slot MILP; the
// established decomposition (METIS-style k-way edge-cut, cf. the npu_compiler
// workload-generation pass) splits the device graph into k cells so one
// BirpScheduler runs per cell. The partitioner here is greedy seeded growth
// followed by Kernighan–Lin-style single-node refinement: minimize the
// affinity weight crossing cells (redistribution flows are intra-cell, so
// cut weight is exactly the collaboration value sharding gives up) subject
// to a cell-size balance tolerance. Deterministic in (graph, config): no
// iteration order depends on hashing or thread count, and the result is
// canonicalized (members sorted, cells ordered by smallest member).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "birp/device/cluster.hpp"
#include "birp/util/grid.hpp"

namespace birp::cluster {

/// Built-in edge-cost families for the affinity graph.
enum class PartitionObjective {
  /// Unit edge weights: the cut minimizes crossing pair count, so the
  /// partition is shaped by the balance constraint alone.
  kBalanced,
  /// Pairwise link bandwidth: high-bandwidth pairs stay in one cell, so the
  /// cheap redistribution paths survive sharding.
  kBandwidth,
  /// Bandwidth x device heterogeneity: pairs with dissimilar accelerator
  /// speeds attract (a fast edge in-cell is exactly what a slow edge's
  /// overload needs), weighted by the link that would carry the traffic.
  kAffinity,
};

/// Pluggable symmetric pair cost; returns the affinity weight of keeping
/// devices a and b in the same cell (>= 0).
using PairCost = std::function<double(int a, int b)>;

struct PartitionConfig {
  int cells = 1;
  /// Cell-size slack: no cell may exceed (1 + tolerance) * K / cells devices
  /// (rounded up, and never below what fitting K devices into `cells` cells
  /// requires).
  double balance_tolerance = 0.15;
  PartitionObjective objective = PartitionObjective::kBandwidth;
  /// Overrides `objective` when set (the pluggable cost hook).
  PairCost custom_cost;
  /// Seeds the initial cell centers; refinement is seed-free.
  std::uint64_t seed = 0xce11;
  /// Maximum Kernighan–Lin refinement sweeps (each sweep visits every node).
  int refine_passes = 6;
};

/// A k-way device partition. Cells are canonical: member lists sorted
/// ascending, cells ordered by their smallest member, every device in
/// exactly one cell.
struct Partition {
  std::vector<int> cell_of;               ///< [device] -> cell index
  std::vector<std::vector<int>> members;  ///< [cell] -> sorted device ids

  [[nodiscard]] int cells() const noexcept {
    return static_cast<int>(members.size());
  }
  [[nodiscard]] int devices() const noexcept {
    return static_cast<int>(cell_of.size());
  }
};

/// Builds the affinity matrix for `cluster` under `objective`. `links` is
/// the optional pairwise inter-edge bandwidth graph (workload::Topology);
/// null falls back to min(endpoint uplink) for every pair — a complete
/// graph, which keeps the partitioner meaningful for link-less specs.
[[nodiscard]] util::Grid2<double> build_affinity(
    const device::ClusterSpec& cluster, const util::Grid2<double>* links,
    PartitionObjective objective);

/// Partitions the nodes of `affinity` (a symmetric K x K weight matrix)
/// into config.cells cells.
[[nodiscard]] Partition partition_affinity(const util::Grid2<double>& affinity,
                                           const PartitionConfig& config);

/// Convenience: build_affinity + partition_affinity (custom_cost, when set,
/// replaces the built-in objective when forming the matrix).
[[nodiscard]] Partition partition_cluster(const device::ClusterSpec& cluster,
                                          const util::Grid2<double>* links,
                                          const PartitionConfig& config);

/// Total affinity weight crossing cells (each unordered pair once) — the
/// quantity refinement minimizes; exposed for tests and benches.
[[nodiscard]] double cut_weight(const Partition& partition,
                                const util::Grid2<double>& affinity);

}  // namespace birp::cluster
