// Self-healing cluster control plane over the hierarchical CellScheduler.
//
// The control plane sits behind the ordinary sim::Scheduler interface and
// closes the loop the sharded scheduler leaves open: a static partition is
// only as good as the cluster it was cut for. Per slot, before delegating the
// decision to the wrapped CellScheduler, it
//
//   1. feeds the slot's liveness mask to a HealthTracker (consecutive-miss
//      detection with hysteresis — see health.hpp), which yields a debounced
//      live set and per-outage FailureEvents for MTTR accounting;
//   2. evaluates the repartition triggers against that debounced view:
//        * a cell's live fraction (vs. its live membership when the current
//          partition was cut) fell below min_cell_live_fraction, or
//        * the debounced live set churned by at least churn_threshold edges
//          since the cut (covers mass recovery as well as mass failure), or
//        * the balancer's smoothed shed-pressure spread across cells exceeds
//          pressure_spread_threshold (the partition is fighting the load);
//      all gated by a cooldown so storms cannot thrash the partitioner;
//   3. on trigger, live-repartitions: the partitioner re-runs on the
//      surviving subgraph, dead edges are attached to their highest-affinity
//      live neighbor's cell (they must live somewhere — demand in their
//      region keeps arriving), the partition is re-canonicalized, and a new
//      CellScheduler is built with explicit state handoff — per-edge TIR/MAB
//      estimator state is exported from the old cells and imported into the
//      new ones, the balancer's pressure EMAs carry over membership-weighted,
//      and warm-start bases are dropped (new subclusters, stale bases; the
//      first solve per cell is cold, which is slower, never wrong).
//
// Determinism: health state, triggers, and the new partition are pure
// functions of the slot inputs in fixed edge/cell order; wall clock is
// measured for the repartition-latency metric but never steers a decision.
// Decisions are therefore bit-identical at any cell_threads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "birp/cluster/cell_scheduler.hpp"
#include "birp/cluster/health.hpp"
#include "birp/cluster/partition.hpp"
#include "birp/device/cluster.hpp"
#include "birp/metrics/run_metrics.hpp"
#include "birp/sim/scheduler.hpp"
#include "birp/util/grid.hpp"

namespace birp::cluster {

struct ControlPlaneConfig {
  /// Configuration for the wrapped CellScheduler (rebuilt on repartition).
  CellSchedulerConfig cell;
  /// How to cut (and re-cut) the partition.
  PartitionConfig partition;
  HealthConfig health;
  /// Trigger: any cell's live members / live-members-at-cut below this.
  double min_cell_live_fraction = 0.5;
  /// Trigger: debounced live-set churn (downs + recoveries) since the cut.
  int churn_threshold = 2;
  /// Trigger: max - min balancer shed EMA across cells above this.
  /// <= 0 disables the pressure trigger.
  double pressure_spread_threshold = 0.35;
  /// Minimum slots between repartitions.
  int cooldown_slots = 8;
  std::string name_override;
};

class ControlPlane : public sim::Scheduler {
 public:
  /// `links` is the optional pairwise inter-edge bandwidth graph (copied);
  /// null falls back to the complete min-uplink graph, as in partition.hpp.
  ControlPlane(const device::ClusterSpec& cluster,
               const util::Grid2<double>* links, ControlPlaneConfig config = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] sim::SlotDecision decide(const sim::SlotState& state) override;
  void observe(const sim::SlotFeedback& feedback) override;
  [[nodiscard]] std::int64_t fallback_count() const noexcept override;

  [[nodiscard]] const HealthTracker& health() const noexcept {
    return health_;
  }
  [[nodiscard]] const CellScheduler& scheduler() const noexcept {
    return *inner_;
  }
  [[nodiscard]] const Partition& partition() const noexcept {
    return inner_->partition();
  }
  [[nodiscard]] std::int64_t repartitions() const noexcept {
    return repartitions_;
  }
  /// Total slot demand at edges whose cell changed, summed over handoffs.
  [[nodiscard]] std::int64_t requests_at_risk() const noexcept {
    return requests_at_risk_;
  }

  /// Folds the run's control-plane measurements into `metrics`: one
  /// record_failure_event per *closed* health event (MTTR), one
  /// record_repartition per handoff. Call once, after the run.
  void export_metrics(metrics::RunMetrics& metrics) const;

 private:
  [[nodiscard]] bool should_repartition(int slot) const;
  void repartition(const sim::SlotState& state);
  /// Partition of the debounced-live subgraph with dead edges attached to
  /// their highest-affinity live neighbor's cell, canonicalized.
  [[nodiscard]] Partition plan_partition() const;
  /// Snapshot of the debounced view the current partition was cut against.
  void snapshot_baseline();

  const device::ClusterSpec& cluster_;
  ControlPlaneConfig config_;
  util::Grid2<double> affinity_;  ///< full-cluster affinity matrix, fixed
  HealthTracker health_;
  std::unique_ptr<CellScheduler> inner_;
  /// Debounced live mask at the last cut, per edge, and per-cell live counts
  /// at the cut (the live-fraction trigger's denominator).
  std::vector<std::uint8_t> live_at_cut_;
  std::vector<int> cell_live_at_cut_;
  int last_repartition_slot_ = 0;
  std::int64_t repartitions_ = 0;
  std::int64_t requests_at_risk_ = 0;
  /// Per-repartition measurements, paired by index (for export_metrics).
  std::vector<double> repartition_latency_ms_;
  std::vector<std::int64_t> repartition_at_risk_;
};

}  // namespace birp::cluster
