#include "birp/cluster/health.hpp"

#include "birp/util/check.hpp"

namespace birp::cluster {

HealthTracker::HealthTracker(int edges, HealthConfig config)
    : config_(config) {
  util::check(edges >= 0, "HealthTracker: negative edge count");
  util::check(config_.down_after_misses >= 1 && config_.up_after_beats >= 1,
              "HealthTracker: hysteresis thresholds must be >= 1");
  state_.assign(static_cast<std::size_t>(edges), EdgeHealth::kHealthy);
  misses_.assign(static_cast<std::size_t>(edges), 0);
  beats_.assign(static_cast<std::size_t>(edges), 0);
  open_event_.assign(static_cast<std::size_t>(edges), -1);
}

void HealthTracker::observe(int slot, const std::vector<std::uint8_t>& up) {
  util::check(up.empty() || up.size() == state_.size(),
              "HealthTracker: liveness mask size mismatch");
  for (std::size_t k = 0; k < state_.size(); ++k) {
    const bool beat = up.empty() || up[k] != 0;
    if (beat) {
      misses_[k] = 0;
      switch (state_[k]) {
        case EdgeHealth::kHealthy:
          break;
        case EdgeHealth::kSuspect:
          // Never declared down: the blip closes without a failure event.
          state_[k] = EdgeHealth::kHealthy;
          break;
        case EdgeHealth::kDown:
          state_[k] = EdgeHealth::kRecovering;
          beats_[k] = 1;
          if (beats_[k] >= config_.up_after_beats) {
            state_[k] = EdgeHealth::kHealthy;
            events_[static_cast<std::size_t>(open_event_[k])].recovered_slot =
                slot;
            open_event_[k] = -1;
            ++declared_recoveries_;
          }
          break;
        case EdgeHealth::kRecovering:
          ++beats_[k];
          if (beats_[k] >= config_.up_after_beats) {
            state_[k] = EdgeHealth::kHealthy;
            events_[static_cast<std::size_t>(open_event_[k])].recovered_slot =
                slot;
            open_event_[k] = -1;
            ++declared_recoveries_;
          }
          break;
      }
    } else {
      beats_[k] = 0;
      switch (state_[k]) {
        case EdgeHealth::kHealthy:
          state_[k] = EdgeHealth::kSuspect;
          misses_[k] = 1;
          if (misses_[k] >= config_.down_after_misses) {
            state_[k] = EdgeHealth::kDown;
            open_event_[k] = static_cast<int>(events_.size());
            events_.push_back({static_cast<int>(k), slot, slot, -1});
            ++declared_downs_;
          }
          break;
        case EdgeHealth::kSuspect:
          ++misses_[k];
          if (misses_[k] >= config_.down_after_misses) {
            state_[k] = EdgeHealth::kDown;
            open_event_[k] = static_cast<int>(events_.size());
            events_.push_back(
                {static_cast<int>(k), slot - misses_[k] + 1, slot, -1});
            ++declared_downs_;
          }
          break;
        case EdgeHealth::kDown:
          break;
        case EdgeHealth::kRecovering:
          // Relapse: same outage, same open event — no new record.
          state_[k] = EdgeHealth::kDown;
          break;
      }
    }
  }
}

std::vector<std::uint8_t> HealthTracker::live_mask() const {
  std::vector<std::uint8_t> mask(state_.size(), 1);
  for (std::size_t k = 0; k < state_.size(); ++k) {
    if (state_[k] == EdgeHealth::kDown) mask[k] = 0;
  }
  return mask;
}

int HealthTracker::live_count() const {
  int live = 0;
  for (const EdgeHealth s : state_) {
    if (s != EdgeHealth::kDown) ++live;
  }
  return live;
}

}  // namespace birp::cluster
