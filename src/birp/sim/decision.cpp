#include "birp/sim/decision.hpp"

namespace birp::sim {

SlotDecision::SlotDecision(int apps, int max_variants, int devices)
    : served(apps, max_variants, devices, 0),
      kernel(apps, max_variants, devices, 0),
      drops(apps, devices, 0) {}

std::int64_t SlotDecision::imports(int app, int device) const {
  std::int64_t total = 0;
  for (const auto& flow : flows) {
    if (flow.app == app && flow.to == device) total += flow.count;
  }
  return total;
}

std::int64_t SlotDecision::exports(int app, int device) const {
  std::int64_t total = 0;
  for (const auto& flow : flows) {
    if (flow.app == app && flow.from == device) total += flow.count;
  }
  return total;
}

std::int64_t SlotDecision::total_served() const {
  std::int64_t total = 0;
  for (const auto v : served.raw()) total += v;
  return total;
}

std::int64_t SlotDecision::total_dropped() const {
  std::int64_t total = 0;
  for (const auto v : drops.raw()) total += v;
  return total;
}

}  // namespace birp::sim
