// Scheduler interface: the contract between the simulator and every
// redistribution algorithm (BIRP, BIRP-OFF, OAEI, MAX, ablations).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "birp/device/cluster.hpp"
#include "birp/sim/decision.hpp"
#include "birp/util/grid.hpp"

namespace birp::sim {

/// Inputs visible to a scheduler at the start of slot t.
struct SlotState {
  int slot = 0;
  /// r^t_{ik}: requests of app i arriving at edge k this slot.
  util::Grid2<std::int64_t> demand;
  /// Previous slot's decision (empty tensors at t = 0): needed for the
  /// model-switch network terms (Eq. 9 / 13 / 14).
  const SlotDecision* previous = nullptr;
  /// Edge liveness observed at the slot boundary (heartbeat view): edge_up[k]
  /// == 0 means edge k is down this slot and cannot serve, import, or export.
  /// Empty means every edge is up (the fault-free default). Schedulers are
  /// free to ignore it; the runtime orphans work routed to down edges either
  /// way.
  std::vector<std::uint8_t> edge_up;

  /// Convenience: liveness of edge k under the "empty means all up" rule.
  [[nodiscard]] bool is_up(int k) const noexcept {
    return edge_up.empty() ||
           (k >= 0 && k < static_cast<int>(edge_up.size()) &&
            edge_up[static_cast<std::size_t>(k)] != 0);
  }
  /// True when at least one edge is marked down.
  [[nodiscard]] bool any_down() const noexcept {
    for (const auto up : edge_up) {
      if (up == 0) return true;
    }
    return false;
  }
};

/// One TIR measurement the runtime produced by executing a merged batch:
/// observed_tir = b * gamma / measured_batch_time (Eq. 1 evaluated online).
struct TirObservation {
  int device = 0;
  int app = 0;
  int variant = 0;
  int batch = 0;
  double observed_tir = 1.0;
};

/// Feedback the simulator hands back after executing slot t.
struct SlotFeedback {
  int slot = 0;
  std::vector<TirObservation> observations;
  /// Accelerator busy seconds per edge this slot (capacity learning input
  /// for baselines that model serial execution).
  std::vector<double> busy_s;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Produces the slot decision. Must be deterministic given the scheduler's
  /// internal state and `state` (schedulers carry their own seeded RNGs).
  [[nodiscard]] virtual SlotDecision decide(const SlotState& state) = 0;

  /// Receives execution feedback; default no-op for offline schedulers.
  virtual void observe(const SlotFeedback& feedback) { (void)feedback; }
};

}  // namespace birp::sim
