// Scheduler interface: the contract between the simulator and every
// redistribution algorithm (BIRP, BIRP-OFF, OAEI, MAX, ablations).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "birp/device/cluster.hpp"
#include "birp/sim/decision.hpp"
#include "birp/util/grid.hpp"

namespace birp::sim {

/// Soft routing guidance produced by the overload-protection layer
/// (birp/guard) and offered to the scheduler alongside the slot state.
/// Unlike SlotState::edge_up (a hard liveness fact), hints are advisory:
/// schedulers are free to ignore them, and the runtime enforces nothing —
/// the guard layer simply measures the consequences.
struct SchedulerHints {
  /// avoid_import(i, k) != 0: the circuit breaker for app i at edge k is
  /// open — route redistribution traffic around it instead of importing.
  /// Empty = no avoidance.
  util::Grid2<std::uint8_t> avoid_import;
  /// Per-app inclusive cap on the usable variant index (the degradation
  /// ladder: level L forbids the L most expensive variants). Empty vector
  /// or a negative/large entry = all variants usable.
  std::vector<int> variant_cap;

  [[nodiscard]] bool empty() const noexcept {
    if (avoid_import.rows() > 0) {
      for (const auto v : avoid_import.raw()) {
        if (v != 0) return false;
      }
    }
    for (const auto cap : variant_cap) {
      if (cap >= 0) return false;
    }
    return true;
  }
};

/// Inputs visible to a scheduler at the start of slot t.
struct SlotState {
  int slot = 0;
  /// r^t_{ik}: requests of app i arriving at edge k this slot.
  util::Grid2<std::int64_t> demand;
  /// Previous slot's decision (empty tensors at t = 0): needed for the
  /// model-switch network terms (Eq. 9 / 13 / 14).
  const SlotDecision* previous = nullptr;
  /// Edge liveness observed at the slot boundary (heartbeat view): edge_up[k]
  /// == 0 means edge k is down this slot and cannot serve, import, or export.
  /// Empty means every edge is up (the fault-free default). Schedulers are
  /// free to ignore it; the runtime orphans work routed to down edges either
  /// way.
  std::vector<std::uint8_t> edge_up;
  /// Advisory overload-protection hints (null = none active this slot).
  const SchedulerHints* hints = nullptr;

  /// Hint accessors under the "null/empty means unconstrained" rule.
  [[nodiscard]] bool import_avoided(int i, int k) const noexcept {
    return hints != nullptr && hints->avoid_import.rows() > 0 &&
           hints->avoid_import(i, k) != 0;
  }
  [[nodiscard]] bool variant_allowed(int i, int j) const noexcept {
    if (hints == nullptr ||
        i >= static_cast<int>(hints->variant_cap.size())) {
      return true;
    }
    const int cap = hints->variant_cap[static_cast<std::size_t>(i)];
    return cap < 0 || j <= cap;
  }

  /// Convenience: liveness of edge k under the "empty means all up" rule.
  [[nodiscard]] bool is_up(int k) const noexcept {
    return edge_up.empty() ||
           (k >= 0 && k < static_cast<int>(edge_up.size()) &&
            edge_up[static_cast<std::size_t>(k)] != 0);
  }
  /// True when at least one edge is marked down.
  [[nodiscard]] bool any_down() const noexcept {
    for (const auto up : edge_up) {
      if (up == 0) return true;
    }
    return false;
  }
};

/// One TIR measurement the runtime produced by executing a merged batch:
/// observed_tir = b * gamma / measured_batch_time (Eq. 1 evaluated online).
struct TirObservation {
  int device = 0;
  int app = 0;
  int variant = 0;
  int batch = 0;
  double observed_tir = 1.0;
};

/// Feedback the simulator hands back after executing slot t.
struct SlotFeedback {
  int slot = 0;
  std::vector<TirObservation> observations;
  /// Accelerator busy seconds per edge this slot (capacity learning input
  /// for baselines that model serial execution).
  std::vector<double> busy_s;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Produces the slot decision. Must be deterministic given the scheduler's
  /// internal state and `state` (schedulers carry their own seeded RNGs).
  [[nodiscard]] virtual SlotDecision decide(const SlotState& state) = 0;

  /// Receives execution feedback; default no-op for offline schedulers.
  virtual void observe(const SlotFeedback& feedback) { (void)feedback; }

  /// How many slots this scheduler answered with a degraded-mode fallback
  /// decision (e.g. BIRP's greedy net when the MILP solve fails). Surfaced
  /// through RunMetrics so degraded slots are observable in reports.
  [[nodiscard]] virtual std::int64_t fallback_count() const noexcept {
    return 0;
  }
};

}  // namespace birp::sim
