// Decision validation and repair.
//
// The simulator never trusts a scheduler: before execution every decision is
// checked against the physical constraints (request conservation, memory
// capacity, network budget) and repaired into a feasible plan. Infeasible
// excess becomes dropped requests — which are charged worst-model loss and
// count as SLO failures — so no algorithm can gain by emitting impossible
// plans. The report makes repairs observable to tests and experiments.
#pragma once

#include <cstdint>

#include "birp/device/cluster.hpp"
#include "birp/sim/decision.hpp"
#include "birp/util/grid.hpp"

namespace birp::sim {

struct ValidationReport {
  std::int64_t trimmed_served = 0;    ///< served requests without a source
  std::int64_t added_drops = 0;       ///< demand left unserved -> drops
  std::int64_t cancelled_flow = 0;    ///< flow units cancelled (network budget)
  std::int64_t evicted_served = 0;    ///< served requests lost to memory evictions
  int memory_evictions = 0;           ///< deployments evicted for memory

  /// True when the decision needed no repair beyond bookkeeping.
  [[nodiscard]] bool clean() const noexcept {
    return trimmed_served == 0 && added_drops == 0 && cancelled_flow == 0 &&
           memory_evictions == 0;
  }
};

/// Hard cap on kernel batch sizes accepted by the runtime.
inline constexpr int kMaxKernelBatch = 32;

/// Network megabytes `decision` charges to edge k (Eq. 9's left-hand side):
/// compressed weights of newly deployed variants plus per-request transfer
/// costs of flows touching k. At t = 0 (previous == nullptr) the switch term
/// is absent (P1 / Eq. 13).
[[nodiscard]] double decision_network_mb(const device::ClusterSpec& cluster,
                                         const SlotDecision& decision,
                                         const SlotDecision* previous, int k);

/// Memory megabytes `decision` consumes on edge k: resident weights plus the
/// peak in-flight activation footprint (Eq. 6 under time-sliced execution).
[[nodiscard]] double decision_memory_mb(const device::ClusterSpec& cluster,
                                        const SlotDecision& decision, int k);

/// Validates `decision` against `cluster` and `demand` (r^t_{ik}), repairing
/// in place. `previous` (may be null at t = 0) supplies the prior
/// deployment for model-switch network costs.
ValidationReport validate_and_repair(const device::ClusterSpec& cluster,
                                     const util::Grid2<std::int64_t>& demand,
                                     const SlotDecision* previous,
                                     SlotDecision& decision);

}  // namespace birp::sim
