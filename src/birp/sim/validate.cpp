#include "birp/sim/validate.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "birp/util/check.hpp"

namespace birp::sim {

double decision_network_mb(const device::ClusterSpec& cluster,
                           const SlotDecision& decision,
                           const SlotDecision* previous, int k) {
  double cost = 0.0;
  // Model-switch term: ship compressed weights for newly deployed variants.
  // At t = 0 (previous == nullptr) models are staged before the experiment,
  // matching P1 (Eq. 13), so no switch cost applies.
  if (previous != nullptr) {
    for (int i = 0; i < cluster.num_apps(); ++i) {
      const int variants = cluster.zoo().num_variants(i);
      for (int j = 0; j < variants; ++j) {
        const bool now = decision.deployed(i, j, k);
        const bool before = previous->deployed(i, j, k);
        if (now && !before) cost += cluster.zoo().variant(i, j).compressed_mb;
      }
    }
  }
  // Redistribution term: both endpoints pay for each forwarded request.
  for (const auto& flow : decision.flows) {
    if (flow.from != k && flow.to != k) continue;
    cost += cluster.zoo().app(flow.app).request_mb *
            static_cast<double>(flow.count);
  }
  return cost;
}

double decision_memory_mb(const device::ClusterSpec& cluster,
                          const SlotDecision& decision, int k) {
  double weights = 0.0;
  double peak = 0.0;
  for (int i = 0; i < cluster.num_apps(); ++i) {
    const int variants = cluster.zoo().num_variants(i);
    for (int j = 0; j < variants; ++j) {
      if (!decision.deployed(i, j, k)) continue;
      const auto& variant = cluster.zoo().variant(i, j);
      weights += variant.weights_mb;
      peak = std::max(peak, variant.intermediate_mb *
                                static_cast<double>(decision.kernel(i, j, k)));
    }
  }
  return weights + peak;
}

ValidationReport validate_and_repair(const device::ClusterSpec& cluster,
                                     const util::Grid2<std::int64_t>& demand,
                                     const SlotDecision* previous,
                                     SlotDecision& decision) {
  const int I = cluster.num_apps();
  const int K = cluster.num_devices();
  util::check(decision.apps() == I && decision.devices() == K,
              "validate: decision dimensions do not match cluster");
  util::check(demand.rows() == I && demand.cols() == K,
              "validate: demand dimensions do not match cluster");

  ValidationReport report;

  // ---- 1. Sanitize counters. ----
  for (int i = 0; i < I; ++i) {
    const int variants = cluster.zoo().num_variants(i);
    for (int j = 0; j < decision.max_variants(); ++j) {
      for (int k = 0; k < K; ++k) {
        auto& served = decision.served(i, j, k);
        if (j >= variants) {
          // Phantom variant index: the paper pads the tensor with
          // non-existent models; serving on one is impossible.
          report.trimmed_served += std::max<std::int64_t>(served, 0);
          served = 0;
          continue;
        }
        served = std::max<std::int64_t>(served, 0);
        auto& kernel = decision.kernel(i, j, k);
        if (served > 0) {
          if (kernel <= 0) {
            kernel = static_cast<int>(
                std::min<std::int64_t>(served, kMaxKernelBatch));
          }
          kernel = std::min(kernel, kMaxKernelBatch);
        } else {
          kernel = 0;
        }
      }
    }
    for (int k = 0; k < K; ++k) {
      decision.drops(i, k) = std::max<std::int64_t>(decision.drops(i, k), 0);
    }
  }
  std::erase_if(decision.flows, [](const Flow& f) {
    return f.count <= 0 || f.from == f.to;
  });

  // ---- 2. Exports must not exceed local demand. ----
  for (int i = 0; i < I; ++i) {
    for (int k = 0; k < K; ++k) {
      std::int64_t excess = decision.exports(i, k) - demand(i, k);
      if (excess <= 0) continue;
      for (auto& flow : decision.flows) {
        if (excess <= 0) break;
        if (flow.app != i || flow.from != k) continue;
        const std::int64_t cut = std::min(excess, flow.count);
        flow.count -= cut;
        excess -= cut;
        report.cancelled_flow += cut;
      }
      std::erase_if(decision.flows, [](const Flow& f) { return f.count <= 0; });
    }
  }

  // ---- 3. Network budgets: cancel flows (largest first) until each edge
  //         fits. Model-switch costs are preserved: a deployment only
  //         disappears via memory eviction below. ----
  for (int k = 0; k < K; ++k) {
    const double budget = cluster.network_mb(k);
    while (decision_network_mb(cluster, decision, previous, k) > budget + 1e-9) {
      // Largest flow touching k.
      Flow* victim = nullptr;
      for (auto& flow : decision.flows) {
        if (flow.from != k && flow.to != k) continue;
        if (victim == nullptr || flow.count > victim->count) victim = &flow;
      }
      if (victim == nullptr) break;  // switch cost alone exceeds budget
      const double per_request =
          cluster.zoo().app(victim->app).request_mb;
      const double over =
          decision_network_mb(cluster, decision, previous, k) - budget;
      const auto cut = std::min(
          victim->count,
          std::max<std::int64_t>(
              1, static_cast<std::int64_t>(std::ceil(over / per_request))));
      victim->count -= cut;
      report.cancelled_flow += cut;
      if (victim->count <= 0) {
        std::erase_if(decision.flows,
                      [](const Flow& f) { return f.count <= 0; });
      }
    }
  }

  // ---- 4. Memory budgets: evict deployments (largest footprint first);
  //         their requests become drops at that edge. ----
  for (int k = 0; k < K; ++k) {
    const double budget = cluster.memory_mb(k);
    while (decision_memory_mb(cluster, decision, k) > budget + 1e-9) {
      int worst_i = -1;
      int worst_j = -1;
      double worst_mb = 0.0;
      for (int i = 0; i < I; ++i) {
        const int variants = cluster.zoo().num_variants(i);
        for (int j = 0; j < variants; ++j) {
          if (!decision.deployed(i, j, k)) continue;
          const auto& variant = cluster.zoo().variant(i, j);
          const double mb =
              variant.weights_mb +
              variant.intermediate_mb *
                  static_cast<double>(decision.kernel(i, j, k));
          if (mb > worst_mb) {
            worst_mb = mb;
            worst_i = i;
            worst_j = j;
          }
        }
      }
      if (worst_i < 0) break;  // nothing deployed yet still over: impossible
      const std::int64_t lost = decision.served(worst_i, worst_j, k);
      decision.served(worst_i, worst_j, k) = 0;
      decision.kernel(worst_i, worst_j, k) = 0;
      decision.drops(worst_i, k) += lost;
      report.evicted_served += lost;
      ++report.memory_evictions;
    }
  }

  // ---- 5. Request conservation (Eq. 3 + Eq. 5): per (app, edge),
  //         served + drops == demand - exports + imports. ----
  for (int i = 0; i < I; ++i) {
    for (int k = 0; k < K; ++k) {
      const std::int64_t available =
          demand(i, k) - decision.exports(i, k) + decision.imports(i, k);
      std::int64_t served_total = 0;
      const int variants = cluster.zoo().num_variants(i);
      for (int j = 0; j < variants; ++j) {
        served_total += decision.served(i, j, k);
      }
      std::int64_t balance = served_total + decision.drops(i, k) - available;
      if (balance > 0) {
        // Serving phantom requests: shrink drops first, then served counts
        // (largest deployment first).
        const std::int64_t from_drops =
            std::min(balance, decision.drops(i, k));
        decision.drops(i, k) -= from_drops;
        balance -= from_drops;
        while (balance > 0) {
          int largest = -1;
          for (int j = 0; j < variants; ++j) {
            if (decision.served(i, j, k) <= 0) continue;
            if (largest < 0 ||
                decision.served(i, j, k) > decision.served(i, largest, k)) {
              largest = j;
            }
          }
          if (largest < 0) break;
          const std::int64_t cut =
              std::min(balance, decision.served(i, largest, k));
          decision.served(i, largest, k) -= cut;
          if (decision.served(i, largest, k) == 0) {
            decision.kernel(i, largest, k) = 0;
          }
          report.trimmed_served += cut;
          balance -= cut;
        }
      } else if (balance < 0) {
        // Unserved demand: becomes drops.
        decision.drops(i, k) += -balance;
        report.added_drops += -balance;
      }
    }
  }

  return report;
}

}  // namespace birp::sim
