#include "birp/sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <future>

#include "birp/util/check.hpp"
#include "birp/util/rng.hpp"

namespace birp::sim {
namespace {

/// One executable job on an edge: a (app, variant) deployment with its
/// request count and kernel batch size.
struct Job {
  int app = 0;
  int variant = 0;
  std::int64_t served = 0;
  int kernel = 1;
  std::int64_t imported = 0;  ///< how many of `served` arrived via flows
};

}  // namespace

Simulator::Simulator(const device::ClusterSpec& cluster,
                     const workload::Trace& trace, SimulatorConfig config)
    : cluster_(cluster),
      trace_(trace),
      config_(config),
      pool_(config.threads <= 0 ? 0 : static_cast<std::size_t>(config.threads)) {
  util::check(trace.apps() == cluster.num_apps(),
              "Simulator: trace apps != cluster apps");
  util::check(trace.devices() == cluster.num_devices(),
              "Simulator: trace devices != cluster devices");
  util::check(config_.noise_sigma >= 0.0, "Simulator: negative noise");
  carried_ = util::Grid2<std::int64_t>(cluster.num_apps(),
                                       cluster.num_devices(), 0);
  failover_ = fault::FailoverPolicy(config_.failover, cluster.num_apps(),
                                    cluster.num_devices());
}

Simulator::EdgeOutcome Simulator::execute_edge(
    int k, const SlotDecision& decision, int slot,
    const EdgeFaultEffects& faults) const {
  const double tau = cluster_.tau_s();
  EdgeOutcome outcome;

  // Deterministic per-(slot, edge) noise stream.
  util::Xoshiro256StarStar rng(config_.seed ^
                               (0x9e3779b97f4a7c15ULL *
                                (static_cast<std::uint64_t>(slot) * 1024 +
                                 static_cast<std::uint64_t>(k) + 1)));

  // Collect jobs. Imports are attributed per app, then spread over that
  // app's jobs (largest kernel last so padded batches absorb stragglers).
  std::vector<Job> jobs;
  std::vector<std::int64_t> imports_left(
      static_cast<std::size_t>(cluster_.num_apps()));
  std::vector<double> import_bytes_mb(
      static_cast<std::size_t>(cluster_.num_apps()), 0.0);
  double total_import_mb = 0.0;
  std::int64_t total_imports = 0;
  for (int i = 0; i < cluster_.num_apps(); ++i) {
    // Imports whose origin edge died this slot never arrive: they fill no
    // batch slots and are billed no transfer time (orphan accounting happens
    // in step()).
    const std::int64_t lost =
        faults.lost_imports.empty()
            ? 0
            : faults.lost_imports[static_cast<std::size_t>(i)];
    imports_left[static_cast<std::size_t>(i)] = decision.imports(i, k) - lost;
    total_imports += imports_left[static_cast<std::size_t>(i)];
    import_bytes_mb[static_cast<std::size_t>(i)] =
        cluster_.zoo().app(i).request_mb;
    total_import_mb += import_bytes_mb[static_cast<std::size_t>(i)] *
                       static_cast<double>(imports_left[static_cast<std::size_t>(i)]);
    const int variants = cluster_.zoo().num_variants(i);
    for (int j = 0; j < variants; ++j) {
      const auto served = decision.served(i, j, k);
      if (served <= 0) continue;
      Job job;
      job.app = i;
      job.variant = j;
      job.served = served;
      job.kernel = std::max(1, decision.kernel(i, j, k));
      jobs.push_back(job);
    }
  }

  // Lost imports shrink the jobs that would have hosted them (same reverse
  // order as import attribution below, so exactly the import-backed batch
  // slots go away).
  if (!faults.lost_imports.empty()) {
    auto lost = faults.lost_imports;
    for (auto it = jobs.rbegin(); it != jobs.rend(); ++it) {
      auto& left = lost[static_cast<std::size_t>(it->app)];
      const auto take = std::min(left, it->served);
      it->served -= take;
      left -= take;
    }
  }

  // Attribute imported requests to jobs (later jobs of the same app first so
  // early launches run on local data while transfers are still in flight).
  for (auto it = jobs.rbegin(); it != jobs.rend(); ++it) {
    auto& left = imports_left[static_cast<std::size_t>(it->app)];
    const auto take = std::min(left, it->served);
    it->imported = take;
    left -= take;
  }

  // Transfer schedule: imported requests stream over the edge's wireless
  // link back-to-back; request q of Q arrives at (q/Q) * total transfer time.
  // Bandwidth-degradation faults stretch the schedule.
  const double bw_mbps =
      cluster_.device(k).bandwidth_mbps * faults.bandwidth_factor;
  const double transfer_total_s = total_import_mb * 8.0 / bw_mbps;

  // Deterministic execution order.
  rng.shuffle(jobs);

  double cursor_s = 0.0;
  std::int64_t imports_scheduled = 0;
  for (const auto& job : jobs) {
    std::int64_t remaining = job.served;
    std::int64_t imported_remaining = job.imported;
    bool first_launch = true;
    while (remaining > 0) {
      const auto in_launch =
          std::min<std::int64_t>(remaining, job.kernel);
      // Local requests fill the launch first; imports go in what remains.
      const std::int64_t local_in_launch =
          std::min(in_launch, remaining - imported_remaining);
      const std::int64_t imported_in_launch = in_launch - local_in_launch;

      // The launch cannot start before its last imported member arrives.
      double ready_s = 0.0;
      if (imported_in_launch > 0 && total_imports > 0) {
        const std::int64_t last_import_index =
            imports_scheduled + imported_in_launch;
        ready_s = transfer_total_s * static_cast<double>(last_import_index) /
                  static_cast<double>(total_imports);
      }

      // Launch size: static-shape padding (MAX) bills the full kernel even
      // for a partial tail; otherwise the runtime right-sizes the launch.
      const int launch_size =
          decision.pad_partial_launches
              ? job.kernel
              : static_cast<int>(std::min<std::int64_t>(job.kernel, remaining));
      const double clean_s =
          cluster_.truth().batch_time_s(k, job.app, job.variant, launch_size);
      const double noise =
          config_.noise_sigma > 0.0
              ? rng.lognormal(-0.5 * config_.noise_sigma * config_.noise_sigma,
                              config_.noise_sigma)
              : 1.0;
      // Straggler faults stretch every launch; the slowdown is visible to the
      // scheduler through longer busy time and a depressed observed TIR.
      const double duration_s = clean_s * noise * faults.straggler_factor;

      const double start_s = std::max(cursor_s, ready_s);
      cursor_s = start_s + duration_s;

      const double completion_tau = cursor_s / tau;
      const double slo =
          cluster_.zoo().app(job.app).slo_fraction;
      for (std::int64_t r = 0; r < in_launch; ++r) {
        outcome.completions_tau.push_back(completion_tau);
        outcome.met_slo.push_back(completion_tau <= slo + 1e-12);
      }
      outcome.loss += cluster_.zoo().variant(job.app, job.variant).loss *
                      static_cast<double>(in_launch);

      if (first_launch && config_.report_observations) {
        // Observed TIR per Eq. 1: the merged kernel processed `kernel`
        // items in duration_s versus gamma each when serial.
        TirObservation obs;
        obs.device = k;
        obs.app = job.app;
        obs.variant = job.variant;
        obs.batch = launch_size;
        obs.observed_tir = static_cast<double>(launch_size) *
                           cluster_.truth().gamma_s(k, job.app, job.variant) /
                           duration_s;
        outcome.observations.push_back(obs);
        first_launch = false;
      }

      imports_scheduled += imported_in_launch;
      imported_remaining -= imported_in_launch;
      remaining -= in_launch;
    }
  }

  // Dropped requests at this edge: worst-model loss, SLO failure. Their
  // accounting happens in step() (needs metrics); only busy time here.
  outcome.busy_s = cursor_s;
  return outcome;
}

SlotResult Simulator::step(Scheduler& scheduler, metrics::RunMetrics* metrics) {
  util::check(slot_ < trace_.slots(), "Simulator: horizon exhausted");
  const int t = slot_;
  const int I = cluster_.num_apps();
  const int K = cluster_.num_devices();

  // Resolve this slot's fault picture. With an empty plan every branch below
  // degenerates to the fault-free path (all edges up, unit factors).
  const bool have_faults = !config_.fault_plan.empty();
  const std::vector<std::uint8_t> up =
      have_faults ? config_.fault_plan.up_mask(K, t)
                  : std::vector<std::uint8_t>(static_cast<std::size_t>(K), 1);
  const auto is_up = [&up](int k) {
    return up[static_cast<std::size_t>(k)] != 0;
  };

  SlotState state;
  state.slot = t;
  state.demand = util::Grid2<std::int64_t>(I, K, 0);
  for (int i = 0; i < I; ++i) {
    for (int k = 0; k < K; ++k) {
      // Carryover mode: requests deferred from the previous slot retry here.
      state.demand(i, k) = trace_.at(t, i, k) + carried_(i, k);
    }
  }
  if (have_faults) {
    // Heartbeat view: schedulers learn the liveness mask at the slot
    // boundary. Fault-free runs keep edge_up empty (all up).
    state.edge_up = up;
    if (failover_.enabled()) {
      // Orphans queued by earlier failures re-enter demand at survivors.
      const auto& readmit = failover_.begin_slot(t, up);
      for (int i = 0; i < I; ++i) {
        for (int k = 0; k < K; ++k) state.demand(i, k) += readmit(i, k);
      }
    }
  }
  state.previous = previous_.has_value() ? &previous_.value() : nullptr;

  SlotResult result;
  result.decision = scheduler.decide(state);
  result.repairs = validate_and_repair(cluster_, state.demand,
                                       state.previous, result.decision);

  // Per-edge fault effects: factors plus imports lost to dead origins.
  std::vector<EdgeFaultEffects> effects(static_cast<std::size_t>(K));
  if (have_faults) {
    for (int k = 0; k < K; ++k) {
      auto& e = effects[static_cast<std::size_t>(k)];
      e.bandwidth_factor = config_.fault_plan.bandwidth_factor(k, t);
      e.straggler_factor = config_.fault_plan.straggler_factor(k, t);
    }
    for (const Flow& flow : result.decision.flows) {
      if (!is_up(flow.from) && is_up(flow.to)) {
        auto& lost = effects[static_cast<std::size_t>(flow.to)].lost_imports;
        if (lost.empty()) lost.assign(static_cast<std::size_t>(I), 0);
        lost[static_cast<std::size_t>(flow.app)] += flow.count;
      }
    }
  }

  // Execute the live edges concurrently; outcomes merge deterministically
  // below. Down edges execute nothing this slot.
  std::vector<std::future<EdgeOutcome>> futures(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    if (!is_up(k)) continue;
    futures[static_cast<std::size_t>(k)] = pool_.submit([this, k, t, &result,
                                                         &effects] {
      return execute_edge(k, result.decision, t,
                          effects[static_cast<std::size_t>(k)]);
    });
  }

  result.feedback.slot = t;
  result.feedback.busy_s.resize(static_cast<std::size_t>(K), 0.0);
  double slot_loss = 0.0;
  for (int k = 0; k < K; ++k) {
    if (have_faults && metrics != nullptr) {
      metrics->record_edge_slot(k, is_up(k));
    }
    if (!is_up(k)) continue;  // dead edge: zero busy, no energy, no samples
    EdgeOutcome outcome = futures[static_cast<std::size_t>(k)].get();
    result.feedback.busy_s[static_cast<std::size_t>(k)] = outcome.busy_s;
    result.feedback.observations.insert(result.feedback.observations.end(),
                                        outcome.observations.begin(),
                                        outcome.observations.end());
    slot_loss += outcome.loss;
    for (std::size_t r = 0; r < outcome.completions_tau.size(); ++r) {
      if (metrics != nullptr) {
        metrics->record_request(outcome.completions_tau[r],
                                outcome.met_slo[r]);
      }
      result.slo_failures += outcome.met_slo[r] ? 0 : 1;
      ++result.served;
    }
    if (metrics != nullptr) {
      metrics->record_edge_busy(outcome.busy_s / cluster_.tau_s());
      metrics->record_energy(
          cluster_.device(k).slot_energy_j(outcome.busy_s, cluster_.tau_s()));
    }
  }

  // Orphans: everything in a dead edge's region this slot (local serving,
  // exports, planned drops — the radio is down, nothing gets in or out) plus
  // requests a live edge shipped toward a dead one (lost in transit,
  // attributed to their origin so failover's retry-budget bookkeeping stays
  // pessimistic). The failover policy splits them into retries and terminal
  // drops.
  if (have_faults) {
    util::Grid2<std::int64_t> orphans(I, K, 0);
    for (int i = 0; i < I; ++i) {
      for (int k = 0; k < K; ++k) {
        if (!is_up(k)) orphans(i, k) = state.demand(i, k);
      }
    }
    for (const Flow& flow : result.decision.flows) {
      if (is_up(flow.from) && !is_up(flow.to)) {
        orphans(flow.app, flow.from) += flow.count;
      }
    }
    for (int i = 0; i < I; ++i) {
      const double worst = cluster_.zoo().worst_loss(i);
      for (int k = 0; k < K; ++k) {
        if (orphans(i, k) == 0) continue;
        const auto outcome = failover_.on_orphans(i, k, orphans(i, k));
        result.retried += outcome.retried;
        result.orphaned += outcome.dropped;
        result.slo_failures += outcome.dropped;
        slot_loss += worst * static_cast<double>(outcome.dropped);
        if (metrics != nullptr) {
          metrics->record_retries(outcome.retried);
          for (std::int64_t d = 0; d < outcome.dropped; ++d) {
            metrics->record_orphan_drop();
          }
        }
        // Carryover mode: a dead edge's deferred requests are orphans now,
        // not carryover candidates.
        if (!is_up(k)) carried_(i, k) = 0;
      }
    }
  }

  // Dropped requests. Paper semantics: every unserved request fails this
  // slot (worst-model loss, SLO failure). Carryover mode (retry-once
  // extension): fresh unserved requests defer to the next slot with a
  // renewed deadline; requests already deferred once fail for good. Down
  // edges are excluded: their whole demand was already orphaned above.
  for (int i = 0; i < I; ++i) {
    const double worst = cluster_.zoo().worst_loss(i);
    for (int k = 0; k < K; ++k) {
      if (!is_up(k)) continue;
      const auto dropped = result.decision.drops(i, k);
      std::int64_t failed = dropped;
      if (config_.carryover_unserved) {
        // Pessimistic FIFO: drops consume the aged (already-deferred)
        // requests first; only the fresh remainder gets a retry.
        const auto aged = std::min(dropped, carried_(i, k));
        failed = aged;
        carried_(i, k) = dropped - aged;
      }
      if (failed <= 0) continue;
      slot_loss += worst * static_cast<double>(failed);
      result.dropped += failed;
      result.slo_failures += failed;
      if (metrics != nullptr) {
        for (std::int64_t d = 0; d < failed; ++d) metrics->record_dropped();
      }
    }
  }
  result.slot_loss = slot_loss;
  if (metrics != nullptr) metrics->record_slot_loss(slot_loss);

  // Busy-time feedback always flows (capacity learning); only the TIR
  // observations are gated by report_observations (set inside execute_edge).
  scheduler.observe(result.feedback);

  previous_ = result.decision;
  ++slot_;
  return result;
}

void Simulator::finish(Scheduler& scheduler, metrics::RunMetrics& metrics) {
  if (config_.carryover_unserved) {
    // Flush: requests still deferred at the horizon never get their retry.
    for (int i = 0; i < cluster_.num_apps(); ++i) {
      for (int k = 0; k < cluster_.num_devices(); ++k) {
        for (std::int64_t d = 0; d < carried_(i, k); ++d) {
          metrics.record_dropped();
        }
        carried_(i, k) = 0;
      }
    }
  }
  // Flush failover: orphans still awaiting re-admission at the horizon are
  // terminal losses.
  for (std::int64_t d = failover_.drain_pending(); d > 0; --d) {
    metrics.record_orphan_drop();
  }
  metrics.set_solver_fallbacks(scheduler.fallback_count());
}

metrics::RunMetrics Simulator::run(Scheduler& scheduler, int max_slots) {
  const int horizon = max_slots > 0 ? std::min(max_slots, trace_.slots())
                                    : trace_.slots();
  metrics::RunMetrics metrics(horizon);
  while (slot_ < horizon) step(scheduler, &metrics);
  finish(scheduler, metrics);
  return metrics;
}

}  // namespace birp::sim
