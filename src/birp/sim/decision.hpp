// Per-slot scheduler decision: which model variants each edge deploys, how
// many requests each serves at what kernel batch size, which requests move
// between edges, and which are dropped.
//
// Mapping to the paper's decision variables:
//   served(i, j, k)  — z = x^t_{ijk} * b^t_{ijk}: requests of app i handled
//                      by variant j on edge k this slot. deployed() derives x.
//   kernel(i, j, k)  — the physical launch batch size. Equal to served for
//                      BIRP (one merged request vector per Eq. 5); 1 for
//                      serial baselines; B0 (padded) for the MAX baseline.
//                      ceil(served / kernel) launches run back-to-back.
//   flows            — sparse y^t_{ikk'} with k != k'.
//   drops(i, k)      — engineering slack the paper leaves implicit: requests
//                      that cannot be feasibly served anywhere this slot.
//                      Dropped requests are charged the application's worst
//                      model loss and count as SLO failures, so no scheduler
//                      can profit from shedding load.
#pragma once

#include <cstdint>
#include <vector>

#include "birp/util/grid.hpp"

namespace birp::sim {

/// One redistribution edge of the y tensor.
struct Flow {
  int app = 0;
  int from = 0;
  int to = 0;
  std::int64_t count = 0;
};

struct SlotDecision {
  SlotDecision() = default;
  SlotDecision(int apps, int max_variants, int devices);

  util::Grid3<std::int64_t> served;  ///< [app][variant][device]
  util::Grid3<int> kernel;           ///< [app][variant][device]
  std::vector<Flow> flows;
  util::Grid2<std::int64_t> drops;   ///< [app][device]
  /// When true, every launch runs at the full kernel size even if fewer
  /// requests remain (static-shape engines à la the MAX baseline: the
  /// padded tail launch wastes compute). When false the runtime right-sizes
  /// the final partial launch.
  bool pad_partial_launches = false;

  [[nodiscard]] int apps() const noexcept { return served.dim0(); }
  [[nodiscard]] int max_variants() const noexcept { return served.dim1(); }
  [[nodiscard]] int devices() const noexcept { return served.dim2(); }

  /// The paper's x^t_{ijk}: a variant is deployed iff it serves requests.
  [[nodiscard]] bool deployed(int app, int variant, int device) const {
    return served(app, variant, device) > 0;
  }

  /// Requests of `app` imported by / exported from `device` via flows.
  [[nodiscard]] std::int64_t imports(int app, int device) const;
  [[nodiscard]] std::int64_t exports(int app, int device) const;

  /// Total requests served across the cluster.
  [[nodiscard]] std::int64_t total_served() const;
  [[nodiscard]] std::int64_t total_dropped() const;
};

}  // namespace birp::sim
