// Time-slotted edge-collaboration simulator.
//
// Per slot: read demand from the trace, ask the scheduler for a decision,
// validate/repair it, execute every edge's batch jobs concurrently (one
// worker per edge on the thread pool), and feed TIR observations back to the
// scheduler. Execution uses ground-truth TIR curves with multiplicative
// lognormal noise — the stand-in for real accelerator nondeterminism.
//
// Determinism: all noise derives from per-(slot, edge) forked RNG streams,
// so results are bit-identical regardless of thread count.
#pragma once

#include <cstdint>
#include <optional>

#include "birp/device/cluster.hpp"
#include "birp/fault/failover.hpp"
#include "birp/fault/fault_plan.hpp"
#include "birp/metrics/run_metrics.hpp"
#include "birp/runtime/thread_pool.hpp"
#include "birp/sim/decision.hpp"
#include "birp/sim/scheduler.hpp"
#include "birp/sim/validate.hpp"
#include "birp/workload/trace.hpp"

namespace birp::sim {

struct SimulatorConfig {
  /// Lognormal sigma applied to every batch execution time.
  double noise_sigma = 0.04;
  std::uint64_t seed = 0x51beef;
  /// Worker threads for per-edge execution; 0 = hardware concurrency,
  /// 1 = fully sequential (useful in tests).
  int threads = 0;
  /// When false the per-batch TIR observations are not reported (isolates
  /// the value of feedback in ablations).
  bool report_observations = true;
  /// Carryover mode (extension beyond the paper's slot-decoupled model):
  /// requests a slot could not serve re-enter the next slot's demand once
  /// instead of failing immediately. A request that cannot be served in its
  /// second slot fails for good. Default off (paper semantics).
  bool carryover_unserved = false;
  /// Fault injection (extension beyond the paper's always-up cluster): timed
  /// edge outages, bandwidth degradation, and straggler episodes. An empty
  /// plan leaves every code path bit-identical to the fault-free simulator.
  fault::FaultPlan fault_plan;
  /// What happens to requests orphaned by an edge failure: terminal drops
  /// (disabled, the default) or re-admission at surviving edges next slot.
  fault::FailoverConfig failover;
};

/// Outcome of one slot, exposed for tests and fine-grained experiments.
struct SlotResult {
  SlotDecision decision;           ///< post-repair decision that executed
  ValidationReport repairs;
  SlotFeedback feedback;
  double slot_loss = 0.0;
  std::int64_t slo_failures = 0;
  std::int64_t served = 0;
  std::int64_t dropped = 0;          ///< scheduler drops charged this slot
  std::int64_t orphaned = 0;         ///< terminal losses to edge failures
  std::int64_t retried = 0;          ///< orphans re-admitted for next slot
};

class Simulator {
 public:
  Simulator(const device::ClusterSpec& cluster, const workload::Trace& trace,
            SimulatorConfig config = {});

  /// Runs the scheduler over the whole horizon (or `max_slots` if positive
  /// and smaller) and returns aggregated metrics.
  metrics::RunMetrics run(Scheduler& scheduler, int max_slots = -1);

  /// Runs a single slot against `scheduler`, advancing internal state
  /// (previous-decision tracking). Used by tests and the ablations.
  SlotResult step(Scheduler& scheduler, metrics::RunMetrics* metrics = nullptr);

  /// Flushes terminal state into `metrics`: carryover requests that never got
  /// their retry, failover orphans still awaiting re-admission (both terminal
  /// drops), and the scheduler's fallback count. run() calls this at the
  /// horizon; harnesses driving step() themselves must call it once after the
  /// last step for exact request conservation.
  void finish(Scheduler& scheduler, metrics::RunMetrics& metrics);

  /// Slots executed so far.
  [[nodiscard]] int current_slot() const noexcept { return slot_; }

  [[nodiscard]] const device::ClusterSpec& cluster() const noexcept {
    return cluster_;
  }

 private:
  /// Everything one edge produces in a slot; merged single-threaded.
  struct EdgeOutcome {
    std::vector<double> completions_tau;
    std::vector<bool> met_slo;
    std::vector<TirObservation> observations;
    double busy_s = 0.0;
    double loss = 0.0;
  };

  /// Per-edge fault effects for one slot, resolved from the FaultPlan before
  /// execution. Defaults describe a healthy edge.
  struct EdgeFaultEffects {
    double bandwidth_factor = 1.0;
    double straggler_factor = 1.0;
    /// Imports into this edge whose origin edge is down this slot (per app):
    /// they never arrive, so the batch slots they were meant to fill stay
    /// empty and no transfer time is billed for them. Empty = none.
    std::vector<std::int64_t> lost_imports;
  };

  [[nodiscard]] EdgeOutcome execute_edge(int k, const SlotDecision& decision,
                                         int slot,
                                         const EdgeFaultEffects& faults) const;

  const device::ClusterSpec& cluster_;
  const workload::Trace& trace_;
  SimulatorConfig config_;
  runtime::ThreadPool pool_;
  int slot_ = 0;
  std::optional<SlotDecision> previous_;
  /// Requests deferred from the previous slot (carryover mode): these fail
  /// for good if unserved again.
  util::Grid2<std::int64_t> carried_;
  /// Re-admission of requests orphaned by edge failures.
  fault::FailoverPolicy failover_;
};

}  // namespace birp::sim
