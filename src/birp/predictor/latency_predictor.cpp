#include "birp/predictor/latency_predictor.hpp"

#include <array>
#include <cmath>

#include "birp/util/check.hpp"
#include "birp/util/rng.hpp"

namespace birp::predictor {
namespace {

/// Solves the 3x3 linear system A x = b by Gaussian elimination with
/// partial pivoting (the normal equations of the log-linear fit).
std::array<double, 3> solve3(std::array<std::array<double, 3>, 3> a,
                             std::array<double, 3> b) {
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int row = col + 1; row < 3; ++row) {
      if (std::abs(a[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)]) >
          std::abs(a[static_cast<std::size_t>(pivot)][static_cast<std::size_t>(col)])) {
        pivot = row;
      }
    }
    std::swap(a[static_cast<std::size_t>(col)], a[static_cast<std::size_t>(pivot)]);
    std::swap(b[static_cast<std::size_t>(col)], b[static_cast<std::size_t>(pivot)]);
    const double diag = a[static_cast<std::size_t>(col)][static_cast<std::size_t>(col)];
    util::check(std::abs(diag) > 1e-12,
                "latency predictor: degenerate normal equations "
                "(too few distinct training features)");
    for (int row = col + 1; row < 3; ++row) {
      const double factor =
          a[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] / diag;
      for (int c = col; c < 3; ++c) {
        a[static_cast<std::size_t>(row)][static_cast<std::size_t>(c)] -=
            factor * a[static_cast<std::size_t>(col)][static_cast<std::size_t>(c)];
      }
      b[static_cast<std::size_t>(row)] -= factor * b[static_cast<std::size_t>(col)];
    }
  }
  std::array<double, 3> x{};
  for (int row = 2; row >= 0; --row) {
    double sum = b[static_cast<std::size_t>(row)];
    for (int c = row + 1; c < 3; ++c) {
      sum -= a[static_cast<std::size_t>(row)][static_cast<std::size_t>(c)] *
             x[static_cast<std::size_t>(c)];
    }
    x[static_cast<std::size_t>(row)] =
        sum / a[static_cast<std::size_t>(row)][static_cast<std::size_t>(row)];
  }
  return x;
}

std::array<double, 3> features(const model::ModelVariant& variant) {
  return {1.0, std::log(variant.weights_mb), std::log(variant.intermediate_mb)};
}

}  // namespace

LatencyPredictor LatencyPredictor::profile_and_fit(
    const device::ClusterSpec& cluster, const PredictorConfig& config) {
  util::check(config.train_fraction > 0.0 && config.train_fraction <= 1.0,
              "latency predictor: train_fraction in (0, 1]");
  util::check(config.runs_per_pair >= 1, "latency predictor: runs >= 1");

  util::Xoshiro256StarStar rng(config.seed);
  std::vector<DeviceModel> models;
  models.reserve(static_cast<std::size_t>(cluster.num_devices()));
  int total_samples = 0;

  for (int k = 0; k < cluster.num_devices(); ++k) {
    // Training set: a shuffled prefix of this device's (app, variant) pairs.
    std::vector<std::pair<int, int>> pairs;
    for (int i = 0; i < cluster.num_apps(); ++i) {
      for (int j = 0; j < cluster.zoo().num_variants(i); ++j) {
        pairs.push_back({i, j});
      }
    }
    rng.shuffle(pairs);
    const auto train_count = std::max<std::size_t>(
        3, static_cast<std::size_t>(std::ceil(
               config.train_fraction * static_cast<double>(pairs.size()))));
    pairs.resize(std::min(train_count, pairs.size()));

    // Normal equations of log(gamma) ~ a + b log(delta) + c log(mu).
    std::array<std::array<double, 3>, 3> ata{};
    std::array<double, 3> atb{};
    for (const auto& [i, j] : pairs) {
      // "Timed runs": the simulated measurement is the ground-truth latency
      // under multiplicative noise, averaged over runs_per_pair.
      double measured = 0.0;
      for (int run = 0; run < config.runs_per_pair; ++run) {
        measured += cluster.gamma_s(k, i, j) *
                    rng.lognormal(0.0, config.measurement_sigma);
      }
      measured /= static_cast<double>(config.runs_per_pair);

      const auto f = features(cluster.zoo().variant(i, j));
      const double y = std::log(measured);
      for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) {
          ata[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] +=
              f[static_cast<std::size_t>(r)] * f[static_cast<std::size_t>(c)];
        }
        atb[static_cast<std::size_t>(r)] += f[static_cast<std::size_t>(r)] * y;
      }
      ++total_samples;
    }

    const auto coef = solve3(ata, atb);
    models.push_back({coef[0], coef[1], coef[2]});
  }
  return LatencyPredictor(std::move(models), cluster.zoo(), total_samples);
}

double LatencyPredictor::predict_gamma_s(int device, int app,
                                         int variant) const {
  util::check(device >= 0 &&
                  device < static_cast<int>(models_.size()),
              "latency predictor: bad device");
  const auto& m = models_[static_cast<std::size_t>(device)];
  const auto f = features(zoo_.variant(app, variant));
  return std::exp(m.intercept + m.weights_coef * f[1] +
                  m.intermediate_coef * f[2]);
}

double LatencyPredictor::mean_relative_error(
    const device::ClusterSpec& cluster) const {
  double total = 0.0;
  int count = 0;
  for (int k = 0; k < cluster.num_devices(); ++k) {
    for (int i = 0; i < cluster.num_apps(); ++i) {
      for (int j = 0; j < cluster.zoo().num_variants(i); ++j) {
        const double truth = cluster.gamma_s(k, i, j);
        total += std::abs(predict_gamma_s(k, i, j) - truth) / truth;
        ++count;
      }
    }
  }
  return total / static_cast<double>(count);
}

}  // namespace birp::predictor
