// Latency predictor: the nn-Meter substitute ([36] in the paper).
//
// The paper does not measure every (device, model) serial latency; it
// predicts gamma with a learned model. This module reproduces that role:
// profile a subset of (device, variant) pairs with (noisy, simulated) timed
// runs, fit a per-device log-linear regression on model-structure features
// (resident weight size and activation footprint — stand-ins for parameter
// count and FLOPs), and predict gamma for every pair, including pairs never
// profiled.
//
// Schedulers can consume these predictions instead of ground truth via
// core::ProblemOptions::gamma_lookup, which is what the gamma-accuracy
// ablation bench exercises.
#pragma once

#include <cstdint>
#include <vector>

#include "birp/device/cluster.hpp"

namespace birp::predictor {

struct PredictorConfig {
  /// Fraction of (app, variant) pairs per device profiled for training.
  double train_fraction = 0.6;
  /// Timed-run noise (lognormal sigma) on the profiled measurements.
  double measurement_sigma = 0.05;
  /// Repeated timed runs averaged per profiled pair.
  int runs_per_pair = 3;
  std::uint64_t seed = 0x9a77a;
};

/// Per-device log-linear latency model:
///   log(gamma) ~ a + b log(weights_mb) + c log(intermediate_mb).
class LatencyPredictor {
 public:
  /// Profiles and fits against the cluster's (hidden) ground truth. The
  /// ground truth is only used as the measurement source — exactly the role
  /// of running timed inferences on a physical board.
  static LatencyPredictor profile_and_fit(const device::ClusterSpec& cluster,
                                          const PredictorConfig& config = {});

  /// Predicted serial latency (seconds) of variant j of app i on device k.
  [[nodiscard]] double predict_gamma_s(int device, int app, int variant) const;

  /// Mean relative error |pred - true| / true across ALL pairs (including
  /// pairs never profiled) — the generalization error nn-Meter reports.
  [[nodiscard]] double mean_relative_error(
      const device::ClusterSpec& cluster) const;

  /// Number of (device, pair) samples the fit consumed.
  [[nodiscard]] int training_samples() const noexcept { return samples_; }

 private:
  struct DeviceModel {
    double intercept = 0.0;
    double weights_coef = 0.0;
    double intermediate_coef = 0.0;
  };

  LatencyPredictor(std::vector<DeviceModel> models, model::Zoo zoo,
                   int samples)
      : models_(std::move(models)), zoo_(std::move(zoo)), samples_(samples) {}

  std::vector<DeviceModel> models_;  ///< one per device
  model::Zoo zoo_;                   ///< feature source (owned copy)
  int samples_ = 0;
};

}  // namespace birp::predictor
