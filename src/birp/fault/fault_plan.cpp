#include "birp/fault/fault_plan.hpp"

#include <algorithm>
#include <charconv>
#include <ostream>
#include <sstream>

#include "birp/util/check.hpp"
#include "birp/util/csv.hpp"
#include "birp/util/rng.hpp"

namespace birp::fault {
namespace {

constexpr double kMinBandwidthFloor = 0.01;

bool covers(const FaultEvent& e, int device, int slot) noexcept {
  return e.device == device && slot >= e.from_slot && slot < e.to_slot;
}

FaultKind kind_from_string(std::string_view text) {
  if (text == "down") return FaultKind::kDown;
  if (text == "bandwidth") return FaultKind::kBandwidth;
  if (text == "straggler") return FaultKind::kStraggler;
  if (text == "up") return FaultKind::kUp;
  util::check(false, "FaultPlan: unknown fault kind in CSV");
  return FaultKind::kDown;
}

int parse_int(const std::string& field) {
  int value = 0;
  const auto* end = field.data() + field.size();
  const auto result = std::from_chars(field.data(), end, value);
  util::check(result.ec == std::errc{} && result.ptr == end,
              "FaultPlan: malformed integer field in CSV");
  return value;
}

double parse_double(const std::string& field) {
  std::istringstream in(field);
  double value = 0.0;
  in >> value;
  util::check(!in.fail(), "FaultPlan: malformed numeric field in CSV");
  return value;
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDown:
      return "down";
    case FaultKind::kBandwidth:
      return "bandwidth";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kUp:
      return "up";
  }
  return "down";
}

void FaultPlan::add(const FaultEvent& event) {
  util::check(event.device >= 0, "FaultPlan: negative device index");
  util::check(event.from_slot >= 0 && event.from_slot < event.to_slot,
              "FaultPlan: event interval must satisfy 0 <= from < to");
  switch (event.kind) {
    case FaultKind::kDown:
    case FaultKind::kUp:
      break;
    case FaultKind::kBandwidth:
      util::check(event.factor > 0.0 && event.factor <= 1.0,
                  "FaultPlan: bandwidth factor must be in (0, 1]");
      break;
    case FaultKind::kStraggler:
      util::check(event.factor >= 1.0,
                  "FaultPlan: straggler factor must be >= 1");
      break;
  }
  events_.push_back(event);
}

void FaultPlan::add_down(int device, int from_slot, int to_slot) {
  add({FaultKind::kDown, device, from_slot, to_slot, 1.0});
}

void FaultPlan::add_bandwidth(int device, int from_slot, int to_slot,
                              double factor) {
  add({FaultKind::kBandwidth, device, from_slot, to_slot, factor});
}

void FaultPlan::add_straggler(int device, int from_slot, int to_slot,
                              double factor) {
  add({FaultKind::kStraggler, device, from_slot, to_slot, factor});
}

void FaultPlan::add_up(int device, int from_slot, int to_slot) {
  add({FaultKind::kUp, device, from_slot, to_slot, 1.0});
}

bool FaultPlan::is_down(int device, int slot) const noexcept {
  bool down = false;
  for (const FaultEvent& e : events_) {
    if (!covers(e, device, slot)) continue;
    if (e.kind == FaultKind::kUp) return false;  // forced recovery wins
    if (e.kind == FaultKind::kDown) down = true;
  }
  return down;
}

double FaultPlan::bandwidth_factor(int device, int slot) const noexcept {
  double factor = 1.0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kBandwidth && covers(e, device, slot)) {
      factor *= e.factor;
    }
  }
  return std::max(factor, kMinBandwidthFloor);
}

double FaultPlan::straggler_factor(int device, int slot) const noexcept {
  double factor = 1.0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kStraggler && covers(e, device, slot)) {
      factor *= e.factor;
    }
  }
  return std::max(factor, 1.0);
}

std::vector<std::uint8_t> FaultPlan::up_mask(int devices, int slot) const {
  util::check(devices >= 0, "FaultPlan: negative device count");
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(devices), 1);
  for (int k = 0; k < devices; ++k) {
    if (is_down(k, slot)) mask[static_cast<std::size_t>(k)] = 0;
  }
  return mask;
}

int FaultPlan::down_slots(int device, int slots) const noexcept {
  int down = 0;
  for (int t = 0; t < slots; ++t) {
    if (is_down(device, t)) ++down;
  }
  return down;
}

FaultPlan FaultPlan::single_edge_crash(int device, int from_slot,
                                       int to_slot) {
  FaultPlan plan;
  plan.add_down(device, from_slot, to_slot);
  return plan;
}

FaultPlan FaultPlan::flapping_edge(int device, int from_slot, int horizon,
                                   int down_slots, int up_slots) {
  util::check(down_slots > 0 && up_slots > 0,
              "FaultPlan: flapping periods must be positive");
  FaultPlan plan;
  for (int t = from_slot; t < horizon; t += down_slots + up_slots) {
    plan.add_down(device, t, std::min(t + down_slots, horizon));
  }
  return plan;
}

FaultPlan FaultPlan::degraded_bandwidth(int device, int from_slot, int to_slot,
                                        double factor) {
  FaultPlan plan;
  plan.add_bandwidth(device, from_slot, to_slot, factor);
  return plan;
}

FaultPlan FaultPlan::generate(const FaultPlanOptions& options) {
  util::check(options.slots >= 0 && options.devices >= 0,
              "FaultPlan: negative horizon or device count");
  FaultPlan plan;
  for (int k = 0; k < options.devices; ++k) {
    // One independent stream per device so adding a device does not perturb
    // the others' fault history.
    util::Xoshiro256StarStar rng(options.seed ^
                                 (0x9e3779b97f4a7c15ULL *
                                  (static_cast<std::uint64_t>(k) + 1)));
    int busy_until = 0;  // no overlapping outages on one device
    for (int t = 0; t < options.slots; ++t) {
      if (t >= busy_until && rng.bernoulli(options.crash_rate)) {
        const int len = static_cast<int>(rng.uniform_int(
            options.min_outage_slots, options.max_outage_slots));
        plan.add_down(k, t, std::min(t + len, options.slots));
        busy_until = t + len;
      }
      if (rng.bernoulli(options.degrade_rate)) {
        const int len = static_cast<int>(rng.uniform_int(
            options.min_degrade_slots, options.max_degrade_slots));
        const double factor =
            rng.uniform(options.min_bandwidth_factor, 1.0);
        plan.add_bandwidth(k, t, std::min(t + len, options.slots), factor);
      }
      if (rng.bernoulli(options.straggler_rate)) {
        const int len = static_cast<int>(rng.uniform_int(
            options.min_straggler_slots, options.max_straggler_slots));
        const double factor =
            rng.uniform(1.0, options.max_straggler_factor);
        plan.add_straggler(k, t, std::min(t + len, options.slots), factor);
      }
    }
  }
  return plan;
}

FaultPlan FaultPlan::generate_correlated(
    const CorrelatedFailureOptions& options) {
  util::check(options.slots >= 0 && options.devices >= 0,
              "FaultPlan: negative horizon or device count");
  util::check(options.group_size >= 1, "FaultPlan: group_size must be >= 1");
  util::check(options.group_fraction > 0.0 && options.group_fraction <= 1.0,
              "FaultPlan: group_fraction must be in (0, 1]");
  util::check(options.cascade_bandwidth_factor > 0.0 &&
                  options.cascade_bandwidth_factor <= 1.0,
              "FaultPlan: cascade factor must be in (0, 1]");
  util::check(options.rescue_fraction >= 0.0 && options.rescue_fraction <= 1.0,
              "FaultPlan: rescue_fraction must be in [0, 1]");
  util::check(options.min_outage_slots >= 1 &&
                  options.max_outage_slots >= options.min_outage_slots,
              "FaultPlan: outage bounds must satisfy 1 <= min <= max");

  FaultPlan plan;
  if (options.devices == 0 || options.slots == 0) return plan;
  const int group = std::min(options.group_size, options.devices);
  const int racks = (options.devices + group - 1) / group;

  util::Xoshiro256StarStar rng(options.seed);
  int incident = 0;
  int next_allowed = 0;
  for (int t = 0; t < options.slots; ++t) {
    if (t < next_allowed || !rng.bernoulli(options.storm_rate)) continue;

    // One rack is struck; a seeded subset of its members goes down together.
    const int rack = static_cast<int>(rng.uniform_int(0, racks - 1));
    const int first = rack * group;
    const int size = std::min(group, options.devices - first);
    std::vector<int> members(static_cast<std::size_t>(size));
    for (int m = 0; m < size; ++m) members[static_cast<std::size_t>(m)] = first + m;
    rng.shuffle(members);
    const int victims = std::max(
        1, static_cast<int>(options.group_fraction * static_cast<double>(size)));
    const int length = static_cast<int>(rng.uniform_int(
        options.min_outage_slots, options.max_outage_slots));

    for (int v = 0; v < victims; ++v) {
      const int device = members[static_cast<std::size_t>(v)];
      // Recovery wave: the v-th victim stays down v * stagger slots longer.
      const int until = std::min(
          options.slots, t + length + v * options.recovery_stagger_slots);
      if (until <= t) continue;
      plan.add({FaultKind::kDown, device, t, until, 1.0, incident});
      if (options.rescue_fraction > 0.0 &&
          rng.bernoulli(options.rescue_fraction) && until - t >= 4) {
        // Transient mid-outage recovery followed by relapse (a flap): up for
        // the third quarter of the outage window.
        const int rescue_from = t + (until - t) / 2;
        const int rescue_to = t + 3 * (until - t) / 4;
        if (rescue_to > rescue_from) {
          plan.add({FaultKind::kUp, device, rescue_from, rescue_to, 1.0,
                    incident});
        }
      }
    }
    // Cascading bandwidth collapse on the struck rack's survivors: the storm
    // saturates the shared uplink while traffic reroutes.
    if (options.cascade_bandwidth_factor < 1.0) {
      for (int v = victims; v < size; ++v) {
        const int device = members[static_cast<std::size_t>(v)];
        const int until = std::min(options.slots, t + length);
        if (until <= t) continue;
        plan.add({FaultKind::kBandwidth, device, t, until,
                  options.cascade_bandwidth_factor, incident});
      }
    }
    ++incident;
    next_allowed = t + length + options.cooldown_slots;
  }
  return plan;
}

int FaultPlan::num_incidents() const {
  std::vector<int> seen;
  for (const FaultEvent& e : events_) {
    if (e.root_cause < 0) continue;
    if (std::find(seen.begin(), seen.end(), e.root_cause) == seen.end()) {
      seen.push_back(e.root_cause);
    }
  }
  return static_cast<int>(seen.size());
}

void FaultPlan::write_csv(std::ostream& out) const {
  util::CsvWriter writer(out);
  writer.row({"kind", "device", "from_slot", "to_slot", "factor",
              "root_cause"});
  for (const FaultEvent& e : events_) {
    writer.row({to_string(e.kind), std::to_string(e.device),
                std::to_string(e.from_slot), std::to_string(e.to_slot),
                util::format_double(e.factor), std::to_string(e.root_cause)});
  }
}

FaultPlan FaultPlan::from_csv(std::string_view text) {
  const auto rows = util::parse_csv(text);
  util::check(!rows.empty(), "FaultPlan: empty CSV document");
  FaultPlan plan;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    util::check(row.size() == 5 || row.size() == 6,
                "FaultPlan: CSV row must have 5 or 6 fields");
    FaultEvent event;
    event.kind = kind_from_string(row[0]);
    event.device = parse_int(row[1]);
    event.from_slot = parse_int(row[2]);
    event.to_slot = parse_int(row[3]);
    event.factor = parse_double(row[4]);
    if (row.size() == 6) event.root_cause = parse_int(row[5]);
    plan.add(event);
  }
  return plan;
}

}  // namespace birp::fault
