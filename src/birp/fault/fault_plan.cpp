#include "birp/fault/fault_plan.hpp"

#include <algorithm>
#include <charconv>
#include <ostream>
#include <sstream>

#include "birp/util/check.hpp"
#include "birp/util/csv.hpp"
#include "birp/util/rng.hpp"

namespace birp::fault {
namespace {

constexpr double kMinBandwidthFloor = 0.01;

bool covers(const FaultEvent& e, int device, int slot) noexcept {
  return e.device == device && slot >= e.from_slot && slot < e.to_slot;
}

FaultKind kind_from_string(std::string_view text) {
  if (text == "down") return FaultKind::kDown;
  if (text == "bandwidth") return FaultKind::kBandwidth;
  if (text == "straggler") return FaultKind::kStraggler;
  util::check(false, "FaultPlan: unknown fault kind in CSV");
  return FaultKind::kDown;
}

int parse_int(const std::string& field) {
  int value = 0;
  const auto* end = field.data() + field.size();
  const auto result = std::from_chars(field.data(), end, value);
  util::check(result.ec == std::errc{} && result.ptr == end,
              "FaultPlan: malformed integer field in CSV");
  return value;
}

double parse_double(const std::string& field) {
  std::istringstream in(field);
  double value = 0.0;
  in >> value;
  util::check(!in.fail(), "FaultPlan: malformed numeric field in CSV");
  return value;
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDown:
      return "down";
    case FaultKind::kBandwidth:
      return "bandwidth";
    case FaultKind::kStraggler:
      return "straggler";
  }
  return "down";
}

void FaultPlan::add(const FaultEvent& event) {
  util::check(event.device >= 0, "FaultPlan: negative device index");
  util::check(event.from_slot >= 0 && event.from_slot < event.to_slot,
              "FaultPlan: event interval must satisfy 0 <= from < to");
  switch (event.kind) {
    case FaultKind::kDown:
      break;
    case FaultKind::kBandwidth:
      util::check(event.factor > 0.0 && event.factor <= 1.0,
                  "FaultPlan: bandwidth factor must be in (0, 1]");
      break;
    case FaultKind::kStraggler:
      util::check(event.factor >= 1.0,
                  "FaultPlan: straggler factor must be >= 1");
      break;
  }
  events_.push_back(event);
}

void FaultPlan::add_down(int device, int from_slot, int to_slot) {
  add({FaultKind::kDown, device, from_slot, to_slot, 1.0});
}

void FaultPlan::add_bandwidth(int device, int from_slot, int to_slot,
                              double factor) {
  add({FaultKind::kBandwidth, device, from_slot, to_slot, factor});
}

void FaultPlan::add_straggler(int device, int from_slot, int to_slot,
                              double factor) {
  add({FaultKind::kStraggler, device, from_slot, to_slot, factor});
}

bool FaultPlan::is_down(int device, int slot) const noexcept {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kDown && covers(e, device, slot)) return true;
  }
  return false;
}

double FaultPlan::bandwidth_factor(int device, int slot) const noexcept {
  double factor = 1.0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kBandwidth && covers(e, device, slot)) {
      factor *= e.factor;
    }
  }
  return std::max(factor, kMinBandwidthFloor);
}

double FaultPlan::straggler_factor(int device, int slot) const noexcept {
  double factor = 1.0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kStraggler && covers(e, device, slot)) {
      factor *= e.factor;
    }
  }
  return std::max(factor, 1.0);
}

std::vector<std::uint8_t> FaultPlan::up_mask(int devices, int slot) const {
  util::check(devices >= 0, "FaultPlan: negative device count");
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(devices), 1);
  for (int k = 0; k < devices; ++k) {
    if (is_down(k, slot)) mask[static_cast<std::size_t>(k)] = 0;
  }
  return mask;
}

int FaultPlan::down_slots(int device, int slots) const noexcept {
  int down = 0;
  for (int t = 0; t < slots; ++t) {
    if (is_down(device, t)) ++down;
  }
  return down;
}

FaultPlan FaultPlan::single_edge_crash(int device, int from_slot,
                                       int to_slot) {
  FaultPlan plan;
  plan.add_down(device, from_slot, to_slot);
  return plan;
}

FaultPlan FaultPlan::flapping_edge(int device, int from_slot, int horizon,
                                   int down_slots, int up_slots) {
  util::check(down_slots > 0 && up_slots > 0,
              "FaultPlan: flapping periods must be positive");
  FaultPlan plan;
  for (int t = from_slot; t < horizon; t += down_slots + up_slots) {
    plan.add_down(device, t, std::min(t + down_slots, horizon));
  }
  return plan;
}

FaultPlan FaultPlan::degraded_bandwidth(int device, int from_slot, int to_slot,
                                        double factor) {
  FaultPlan plan;
  plan.add_bandwidth(device, from_slot, to_slot, factor);
  return plan;
}

FaultPlan FaultPlan::generate(const FaultPlanOptions& options) {
  util::check(options.slots >= 0 && options.devices >= 0,
              "FaultPlan: negative horizon or device count");
  FaultPlan plan;
  for (int k = 0; k < options.devices; ++k) {
    // One independent stream per device so adding a device does not perturb
    // the others' fault history.
    util::Xoshiro256StarStar rng(options.seed ^
                                 (0x9e3779b97f4a7c15ULL *
                                  (static_cast<std::uint64_t>(k) + 1)));
    int busy_until = 0;  // no overlapping outages on one device
    for (int t = 0; t < options.slots; ++t) {
      if (t >= busy_until && rng.bernoulli(options.crash_rate)) {
        const int len = static_cast<int>(rng.uniform_int(
            options.min_outage_slots, options.max_outage_slots));
        plan.add_down(k, t, std::min(t + len, options.slots));
        busy_until = t + len;
      }
      if (rng.bernoulli(options.degrade_rate)) {
        const int len = static_cast<int>(rng.uniform_int(
            options.min_degrade_slots, options.max_degrade_slots));
        const double factor =
            rng.uniform(options.min_bandwidth_factor, 1.0);
        plan.add_bandwidth(k, t, std::min(t + len, options.slots), factor);
      }
      if (rng.bernoulli(options.straggler_rate)) {
        const int len = static_cast<int>(rng.uniform_int(
            options.min_straggler_slots, options.max_straggler_slots));
        const double factor =
            rng.uniform(1.0, options.max_straggler_factor);
        plan.add_straggler(k, t, std::min(t + len, options.slots), factor);
      }
    }
  }
  return plan;
}

void FaultPlan::write_csv(std::ostream& out) const {
  util::CsvWriter writer(out);
  writer.row({"kind", "device", "from_slot", "to_slot", "factor"});
  for (const FaultEvent& e : events_) {
    writer.row({to_string(e.kind), std::to_string(e.device),
                std::to_string(e.from_slot), std::to_string(e.to_slot),
                util::format_double(e.factor)});
  }
}

FaultPlan FaultPlan::from_csv(std::string_view text) {
  const auto rows = util::parse_csv(text);
  util::check(!rows.empty(), "FaultPlan: empty CSV document");
  FaultPlan plan;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    util::check(row.size() == 5, "FaultPlan: CSV row must have 5 fields");
    FaultEvent event;
    event.kind = kind_from_string(row[0]);
    event.device = parse_int(row[1]);
    event.from_slot = parse_int(row[2]);
    event.to_slot = parse_int(row[3]);
    event.factor = parse_double(row[4]);
    plan.add(event);
  }
  return plan;
}

}  // namespace birp::fault
