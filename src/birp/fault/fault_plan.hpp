// Deterministic fault injection for the slotted simulator and the serving
// runtime.
//
// A FaultPlan is a list of timed fault events against edge devices:
//
//   * kDown       — the device is offline for [from_slot, to_slot): it serves
//                   nothing, receives nothing, and every request that was
//                   destined for it in those slots is orphaned.
//   * kBandwidth  — the device's uplink/downlink bandwidth is multiplied by
//                   `factor` in (0, 1] for the interval (degradation).
//   * kStraggler  — batch completion times on the device are multiplied by
//                   `factor` >= 1 for the interval (slow node).
//
// Plans are pure data: the runtime (sim::Simulator / serve::ServeEngine)
// applies the observable effects, while schedulers only ever see the
// consequences (a liveness mask in SlotState, degraded TIR observations,
// longer busy times). Plans can be authored directly, generated from a seeded
// config, or round-tripped through CSV, and all queries are deterministic so
// a fixed (plan, seed) pair reproduces a run bit-for-bit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace birp::fault {

enum class FaultKind {
  kDown,
  kBandwidth,
  kStraggler,
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kDown;
  int device = 0;
  int from_slot = 0;  ///< inclusive
  int to_slot = 0;    ///< exclusive
  /// kBandwidth: multiplier in (0, 1]; kStraggler: multiplier >= 1;
  /// ignored for kDown.
  double factor = 1.0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Seeded random plan generation: each device independently enters outages,
/// bandwidth dips, and straggler episodes with per-slot hazard rates.
struct FaultPlanOptions {
  int slots = 0;
  int devices = 0;
  std::uint64_t seed = 0xfa017;
  /// Per-slot probability that an idle device starts an outage.
  double crash_rate = 0.0;
  int min_outage_slots = 5;
  int max_outage_slots = 30;
  /// Per-slot probability that a device starts a bandwidth dip.
  double degrade_rate = 0.0;
  double min_bandwidth_factor = 0.25;
  int min_degrade_slots = 10;
  int max_degrade_slots = 60;
  /// Per-slot probability that a device starts a straggler episode.
  double straggler_rate = 0.0;
  double max_straggler_factor = 3.0;
  int min_straggler_slots = 10;
  int max_straggler_slots = 60;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// True when the plan carries no events; runtimes skip all fault paths.
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }

  /// Appends an event (validated: device >= 0, from_slot < to_slot, factor
  /// positive, straggler factor >= 1).
  void add(const FaultEvent& event);
  void add_down(int device, int from_slot, int to_slot);
  void add_bandwidth(int device, int from_slot, int to_slot, double factor);
  void add_straggler(int device, int from_slot, int to_slot, double factor);

  /// Device is offline during `slot`.
  [[nodiscard]] bool is_down(int device, int slot) const noexcept;
  /// Effective bandwidth multiplier at `slot` (overlapping events combine
  /// multiplicatively, floored at 0.01).
  [[nodiscard]] double bandwidth_factor(int device, int slot) const noexcept;
  /// Effective completion-time multiplier at `slot` (overlapping events
  /// combine multiplicatively, never below 1).
  [[nodiscard]] double straggler_factor(int device, int slot) const noexcept;
  /// Liveness mask for one slot: mask[k] == 1 iff device k is up.
  [[nodiscard]] std::vector<std::uint8_t> up_mask(int devices, int slot) const;
  /// Total down slots for `device` over [0, slots).
  [[nodiscard]] int down_slots(int device, int slots) const noexcept;

  /// Canonical scenario: one edge hard-down for [from_slot, to_slot).
  [[nodiscard]] static FaultPlan single_edge_crash(int device, int from_slot,
                                                   int to_slot);
  /// Canonical scenario: edge alternates `down_slots` down / `up_slots` up
  /// starting at `from_slot` until `horizon`.
  [[nodiscard]] static FaultPlan flapping_edge(int device, int from_slot,
                                               int horizon, int down_slots,
                                               int up_slots);
  /// Canonical scenario: bandwidth multiplied by `factor` on [from, to).
  [[nodiscard]] static FaultPlan degraded_bandwidth(int device, int from_slot,
                                                    int to_slot, double factor);
  /// Seeded random plan; same options -> same plan.
  [[nodiscard]] static FaultPlan generate(const FaultPlanOptions& options);

  /// CSV round-trip: header "kind,device,from_slot,to_slot,factor".
  void write_csv(std::ostream& out) const;
  [[nodiscard]] static FaultPlan from_csv(std::string_view text);

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace birp::fault
