// Deterministic fault injection for the slotted simulator and the serving
// runtime.
//
// A FaultPlan is a list of timed fault events against edge devices:
//
//   * kDown       — the device is offline for [from_slot, to_slot): it serves
//                   nothing, receives nothing, and every request that was
//                   destined for it in those slots is orphaned.
//   * kBandwidth  — the device's uplink/downlink bandwidth is multiplied by
//                   `factor` in (0, 1] for the interval (degradation).
//   * kStraggler  — batch completion times on the device are multiplied by
//                   `factor` >= 1 for the interval (slow node).
//   * kUp         — forced recovery: during [from_slot, to_slot) the device is
//                   up even where kDown intervals cover it. Outages punched
//                   through by kUp model operator intervention and transient
//                   recoveries (an edge that comes back mid-outage and
//                   relapses — the flapping input the control plane's
//                   hysteresis exists for).
//
// Correlated failures: events carry an optional root_cause id (-1 = none), so
// a rack-style storm that downs a whole device group is one labeled incident
// rather than coincidental independent outages. generate_correlated() builds
// seeded storms — grouped edge-down with a shared root cause, staggered
// recovery waves, and cascading bandwidth collapse on the survivors.
//
// Plans are pure data: the runtime (sim::Simulator / serve::ServeEngine)
// applies the observable effects, while schedulers only ever see the
// consequences (a liveness mask in SlotState, degraded TIR observations,
// longer busy times). Plans can be authored directly, generated from a seeded
// config, or round-tripped through CSV, and all queries are deterministic so
// a fixed (plan, seed) pair reproduces a run bit-for-bit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace birp::fault {

enum class FaultKind {
  kDown,
  kBandwidth,
  kStraggler,
  kUp,
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kDown;
  int device = 0;
  int from_slot = 0;  ///< inclusive
  int to_slot = 0;    ///< exclusive
  /// kBandwidth: multiplier in (0, 1]; kStraggler: multiplier >= 1;
  /// ignored for kDown and kUp.
  double factor = 1.0;
  /// Shared incident label for correlated failures (-1 = uncorrelated).
  int root_cause = -1;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Seeded random plan generation: each device independently enters outages,
/// bandwidth dips, and straggler episodes with per-slot hazard rates.
struct FaultPlanOptions {
  int slots = 0;
  int devices = 0;
  std::uint64_t seed = 0xfa017;
  /// Per-slot probability that an idle device starts an outage.
  double crash_rate = 0.0;
  int min_outage_slots = 5;
  int max_outage_slots = 30;
  /// Per-slot probability that a device starts a bandwidth dip.
  double degrade_rate = 0.0;
  double min_bandwidth_factor = 0.25;
  int min_degrade_slots = 10;
  int max_degrade_slots = 60;
  /// Per-slot probability that a device starts a straggler episode.
  double straggler_rate = 0.0;
  double max_straggler_factor = 3.0;
  int min_straggler_slots = 10;
  int max_straggler_slots = 60;
};

/// Seeded correlated-failure storms: devices are grouped into racks of
/// `group_size` consecutive ids; a storm takes down a seeded fraction of one
/// rack at once (shared root_cause id), recovery arrives as a staggered wave,
/// and the surviving rack-mates suffer a bandwidth collapse for the storm's
/// duration. Optionally a seeded fraction of victims flap: a transient kUp
/// rescue window mid-outage followed by relapse — the hysteresis stressor.
struct CorrelatedFailureOptions {
  int slots = 0;
  int devices = 0;
  std::uint64_t seed = 0xc0a5e;
  /// Rack size (consecutive device ids share a rack); clamped to devices.
  int group_size = 8;
  /// Per-slot probability (outside cooldown) that a storm starts.
  double storm_rate = 0.02;
  /// Fraction of the struck rack taken down (at least one device).
  double group_fraction = 1.0;
  int min_outage_slots = 8;
  int max_outage_slots = 24;
  /// Successive victims recover this many slots apart (recovery wave).
  int recovery_stagger_slots = 2;
  /// Bandwidth multiplier applied to the struck rack's surviving members for
  /// the storm interval; 1 disables the cascade.
  double cascade_bandwidth_factor = 0.5;
  /// Fraction of victims that transiently recover mid-outage (kUp window in
  /// the middle half of their outage) and then relapse. 0 disables.
  double rescue_fraction = 0.0;
  /// Minimum slots between storm starts.
  int cooldown_slots = 12;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// True when the plan carries no events; runtimes skip all fault paths.
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }

  /// Appends an event (validated: device >= 0, from_slot < to_slot, factor
  /// positive, straggler factor >= 1).
  void add(const FaultEvent& event);
  void add_down(int device, int from_slot, int to_slot);
  void add_bandwidth(int device, int from_slot, int to_slot, double factor);
  void add_straggler(int device, int from_slot, int to_slot, double factor);
  /// Forced recovery: overrides kDown coverage on [from_slot, to_slot).
  void add_up(int device, int from_slot, int to_slot);

  /// Device is offline during `slot`: covered by a kDown interval and not
  /// rescued by a kUp interval.
  [[nodiscard]] bool is_down(int device, int slot) const noexcept;
  /// Effective bandwidth multiplier at `slot` (overlapping events combine
  /// multiplicatively, floored at 0.01).
  [[nodiscard]] double bandwidth_factor(int device, int slot) const noexcept;
  /// Effective completion-time multiplier at `slot` (overlapping events
  /// combine multiplicatively, never below 1).
  [[nodiscard]] double straggler_factor(int device, int slot) const noexcept;
  /// Liveness mask for one slot: mask[k] == 1 iff device k is up.
  [[nodiscard]] std::vector<std::uint8_t> up_mask(int devices, int slot) const;
  /// Total down slots for `device` over [0, slots).
  [[nodiscard]] int down_slots(int device, int slots) const noexcept;

  /// Canonical scenario: one edge hard-down for [from_slot, to_slot).
  [[nodiscard]] static FaultPlan single_edge_crash(int device, int from_slot,
                                                   int to_slot);
  /// Canonical scenario: edge alternates `down_slots` down / `up_slots` up
  /// starting at `from_slot` until `horizon`.
  [[nodiscard]] static FaultPlan flapping_edge(int device, int from_slot,
                                               int horizon, int down_slots,
                                               int up_slots);
  /// Canonical scenario: bandwidth multiplied by `factor` on [from, to).
  [[nodiscard]] static FaultPlan degraded_bandwidth(int device, int from_slot,
                                                    int to_slot, double factor);
  /// Seeded random plan; same options -> same plan.
  [[nodiscard]] static FaultPlan generate(const FaultPlanOptions& options);
  /// Seeded correlated-failure storms; same options -> same plan.
  [[nodiscard]] static FaultPlan generate_correlated(
      const CorrelatedFailureOptions& options);

  /// Distinct root-cause ids present in the plan (>= 0 only).
  [[nodiscard]] int num_incidents() const;

  /// CSV round-trip: header "kind,device,from_slot,to_slot,factor,root_cause".
  /// from_csv also accepts the legacy 5-column layout (root_cause = -1).
  void write_csv(std::ostream& out) const;
  [[nodiscard]] static FaultPlan from_csv(std::string_view text);

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace birp::fault
