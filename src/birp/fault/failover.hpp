// Failover re-admission of orphaned requests after edge failures.
//
// When an edge goes down mid-horizon, every request that was routed to it —
// buffered locally, in transit from a peer, or newly arrived in its region —
// is *orphaned*: the runtime can no longer serve it where the scheduler put
// it. FailoverPolicy decides what happens next. With failover disabled the
// orphans are terminal drops (charged the worst-model loss plus an SLO
// failure, like any other drop). With failover enabled each orphan is
// re-admitted into the next slot's demand at a surviving edge, at most
// `retry_budget` times; a request whose re-admission target fails again past
// the budget is dropped.
//
// Bookkeeping mirrors the simulator's carryover mode: re-admitted cohorts are
// tracked per attempt level, and when orphans occur at an (app, edge) cell
// they are attributed to the highest-attempt cohort first (pessimistic —
// never lets a request exceed the budget). Distribution across survivors is
// deterministic: a round-robin split whose starting edge rotates with
// (slot + app), so repeated failures do not pile every retry on one edge.
#pragma once

#include <cstdint>
#include <vector>

#include "birp/util/grid.hpp"

namespace birp::fault {

struct FailoverConfig {
  /// Disabled: orphans are terminal drops.
  bool enabled = false;
  /// Maximum re-admissions per request before it is dropped.
  int retry_budget = 1;
};

class FailoverPolicy {
 public:
  FailoverPolicy() = default;
  FailoverPolicy(const FailoverConfig& config, int apps, int devices);

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }

  /// Starts a slot: distributes pending orphans across the edges that are up
  /// this slot and returns the per-(app, edge) counts to add to the slot's
  /// demand. If no edge is up the orphans stay pending. The returned
  /// reference is valid until the next begin_slot call.
  const util::Grid2<std::int64_t>& begin_slot(
      int slot, const std::vector<std::uint8_t>& up);

  struct OrphanOutcome {
    std::int64_t retried = 0;  ///< queued for re-admission next slot
    std::int64_t dropped = 0;  ///< retry budget exhausted (or disabled)
  };

  /// Reports `count` orphaned requests of app `app` at edge `edge` in the
  /// current slot. Splits them into retried vs terminally dropped.
  OrphanOutcome on_orphans(int app, int edge, std::int64_t count);

  /// Flushes requests still awaiting re-admission (end of horizon); returns
  /// how many were pending. They become terminal drops at the caller.
  std::int64_t drain_pending();

  /// Cumulative re-admissions injected into demand so far.
  [[nodiscard]] std::int64_t total_retries() const noexcept {
    return total_retries_;
  }

 private:
  FailoverConfig config_;
  int apps_ = 0;
  int devices_ = 0;
  /// pending_[a][i]: app-i requests awaiting their a-th re-admission.
  std::vector<std::vector<std::int64_t>> pending_;
  /// injected_[a]: cohort currently in demand on its a-th re-admission.
  std::vector<util::Grid2<std::int64_t>> injected_;
  util::Grid2<std::int64_t> readmit_;
  std::int64_t total_retries_ = 0;
};

}  // namespace birp::fault
