// Failover re-admission of orphaned requests after edge failures.
//
// When an edge goes down mid-horizon, every request that was routed to it —
// buffered locally, in transit from a peer, or newly arrived in its region —
// is *orphaned*: the runtime can no longer serve it where the scheduler put
// it. FailoverPolicy decides what happens next. With failover disabled the
// orphans are terminal drops (charged the worst-model loss plus an SLO
// failure, like any other drop). With failover enabled each orphan is
// re-admitted into a later slot's demand at a surviving edge, at most
// `retry_budget` times; a request whose re-admission target fails again past
// the budget is dropped.
//
// Re-admission timing follows seeded exponential backoff with jitter: the
// a-th retry waits ~ backoff_base_slots * backoff_multiplier^(a-1) slots
// (capped at backoff_max_slots), scaled by a uniform jitter factor in
// [1 - backoff_jitter, 1 + backoff_jitter] drawn from an explicitly seeded
// generator — deterministic across runs and thread counts because orphans
// are always reported from the single-threaded merge path in slot order.
// backoff_base_slots == 0 (the default) reproduces the original immediate
// next-slot re-admission byte for byte and draws nothing from the RNG.
//
// Bookkeeping mirrors the simulator's carryover mode: re-admitted cohorts
// are tracked per attempt level, and when orphans occur at an (app, edge)
// cell they are attributed to the highest-attempt cohort first (pessimistic —
// never lets a request exceed the budget). Distribution across survivors is
// deterministic: a round-robin split whose starting edge rotates with
// (slot + app), so repeated failures do not pile every retry on one edge.
// An optional avoid mask (from the guard layer's circuit breakers) removes
// tripped (app, edge) targets from the candidate set; if every survivor is
// avoided for an app, availability wins and all up edges are used.
#pragma once

#include <cstdint>
#include <vector>

#include "birp/util/grid.hpp"
#include "birp/util/rng.hpp"

namespace birp::fault {

struct FailoverConfig {
  /// Disabled: orphans are terminal drops.
  bool enabled = false;
  /// Maximum re-admissions per request before it is dropped.
  int retry_budget = 1;
  /// First-retry delay in slots. 0 = legacy immediate re-admission at the
  /// next slot (no backoff, no RNG draws); >= 1 enables exponential backoff.
  int backoff_base_slots = 0;
  /// Growth factor per attempt (>= 1).
  double backoff_multiplier = 2.0;
  /// Ceiling on the (pre-jitter) delay in slots.
  int backoff_max_slots = 16;
  /// Jitter amplitude in [0, 1]: the delay is scaled by a uniform factor in
  /// [1 - jitter, 1 + jitter]. 0 disables jitter (and any RNG draw).
  double backoff_jitter = 0.0;
  /// Seed for the jitter stream.
  std::uint64_t backoff_seed = 0x0ffbacc5ULL;
};

class FailoverPolicy {
 public:
  FailoverPolicy() = default;
  FailoverPolicy(const FailoverConfig& config, int apps, int devices);

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }

  /// Starts a slot: distributes backoff-eligible pending orphans across the
  /// edges that are up this slot and returns the per-(app, edge) counts to
  /// add to the slot's demand. Cohorts still inside their backoff window
  /// stay pending; if no edge is up everything stays pending. `avoid`
  /// (optional, from circuit breakers) removes tripped (app, edge) targets
  /// unless that would leave an app with no candidate. The returned
  /// reference is valid until the next begin_slot call.
  const util::Grid2<std::int64_t>& begin_slot(
      int slot, const std::vector<std::uint8_t>& up,
      const util::Grid2<std::uint8_t>* avoid = nullptr);

  struct OrphanOutcome {
    std::int64_t retried = 0;  ///< queued for re-admission after backoff
    std::int64_t dropped = 0;  ///< retry budget exhausted (or disabled)
  };

  /// Reports `count` orphaned requests of app `app` at edge `edge` in the
  /// current slot. Splits them into retried vs terminally dropped.
  OrphanOutcome on_orphans(int app, int edge, std::int64_t count);

  /// Flushes requests still awaiting re-admission (end of horizon); returns
  /// how many were pending. They become terminal drops at the caller.
  std::int64_t drain_pending();

  /// Cumulative re-admissions injected into demand so far.
  [[nodiscard]] std::int64_t total_retries() const noexcept {
    return total_retries_;
  }

  /// The backoff delay (slots) ahead of a request's attempt-`attempt`
  /// re-admission. Advances the jitter stream when jitter is active;
  /// exposed for the determinism tests.
  [[nodiscard]] int delay_slots(int attempt);

 private:
  /// One batch of orphans waiting out its backoff window.
  struct PendingCohort {
    int attempt = 1;        ///< re-admission attempt number (1-based)
    int app = 0;
    std::int64_t count = 0;
    int eligible_slot = 0;  ///< first slot this cohort may re-enter demand
  };

  FailoverConfig config_;
  int apps_ = 0;
  int devices_ = 0;
  int slot_ = 0;
  std::vector<PendingCohort> pending_;
  /// injected_[a]: cohort currently in demand on its a-th re-admission.
  std::vector<util::Grid2<std::int64_t>> injected_;
  util::Grid2<std::int64_t> readmit_;
  util::Xoshiro256StarStar jitter_rng_{0x0ffbacc5ULL};
  std::int64_t total_retries_ = 0;
};

}  // namespace birp::fault
