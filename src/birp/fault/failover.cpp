#include "birp/fault/failover.hpp"

#include <algorithm>

#include "birp/util/check.hpp"

namespace birp::fault {

FailoverPolicy::FailoverPolicy(const FailoverConfig& config, int apps,
                               int devices)
    : config_(config), apps_(apps), devices_(devices) {
  util::check(apps >= 0 && devices >= 0,
              "FailoverPolicy: negative dimensions");
  util::check(config.retry_budget >= 0,
              "FailoverPolicy: negative retry budget");
  pending_.assign(static_cast<std::size_t>(config.retry_budget) + 1,
                  std::vector<std::int64_t>(static_cast<std::size_t>(apps), 0));
  injected_.assign(static_cast<std::size_t>(config.retry_budget) + 1,
                   util::Grid2<std::int64_t>(apps, devices));
  readmit_ = util::Grid2<std::int64_t>(apps, devices);
}

const util::Grid2<std::int64_t>& FailoverPolicy::begin_slot(
    int slot, const std::vector<std::uint8_t>& up) {
  readmit_.fill(0);
  for (auto& grid : injected_) grid.fill(0);
  if (!config_.enabled) return readmit_;

  std::vector<int> up_edges;
  for (int k = 0; k < devices_ && k < static_cast<int>(up.size()); ++k) {
    if (up[static_cast<std::size_t>(k)] != 0) up_edges.push_back(k);
  }
  // Nowhere to go: orphans stay pending until an edge recovers (they are
  // flushed as drops at the horizon if none ever does).
  if (up_edges.empty()) return readmit_;

  const auto n_up = static_cast<std::int64_t>(up_edges.size());
  for (std::size_t a = 1; a < pending_.size(); ++a) {
    for (int i = 0; i < apps_; ++i) {
      const std::int64_t count = pending_[a][static_cast<std::size_t>(i)];
      if (count == 0) continue;
      pending_[a][static_cast<std::size_t>(i)] = 0;
      const std::int64_t base = count / n_up;
      const std::int64_t extra = count % n_up;
      const std::int64_t start = (static_cast<std::int64_t>(slot) + i) % n_up;
      for (std::int64_t j = 0; j < n_up; ++j) {
        const int k = up_edges[static_cast<std::size_t>((start + j) % n_up)];
        const std::int64_t share = base + (j < extra ? 1 : 0);
        if (share == 0) continue;
        injected_[a](i, k) += share;
        readmit_(i, k) += share;
      }
      total_retries_ += count;
    }
  }
  return readmit_;
}

FailoverPolicy::OrphanOutcome FailoverPolicy::on_orphans(int app, int edge,
                                                         std::int64_t count) {
  util::check(count >= 0, "FailoverPolicy: negative orphan count");
  if (count == 0) return {};
  if (!config_.enabled) return {.retried = 0, .dropped = count};
  util::check(app >= 0 && app < apps_ && edge >= 0 && edge < devices_,
              "FailoverPolicy: orphan index out of range");

  OrphanOutcome outcome;
  std::int64_t remaining = count;
  // Pessimistic attribution: charge the highest-attempt cohort first so no
  // request can be re-admitted more than retry_budget times.
  for (std::size_t a = injected_.size(); a-- > 1 && remaining > 0;) {
    const std::int64_t take = std::min(remaining, injected_[a](app, edge));
    if (take == 0) continue;
    injected_[a](app, edge) -= take;
    remaining -= take;
    if (static_cast<int>(a) + 1 <= config_.retry_budget) {
      pending_[a + 1][static_cast<std::size_t>(app)] += take;
      outcome.retried += take;
    } else {
      outcome.dropped += take;
    }
  }
  // The rest are fresh demand on their first failure.
  if (remaining > 0) {
    if (config_.retry_budget >= 1) {
      pending_[1][static_cast<std::size_t>(app)] += remaining;
      outcome.retried += remaining;
    } else {
      outcome.dropped += remaining;
    }
  }
  return outcome;
}

std::int64_t FailoverPolicy::drain_pending() {
  std::int64_t total = 0;
  for (auto& level : pending_) {
    for (auto& count : level) {
      total += count;
      count = 0;
    }
  }
  return total;
}

}  // namespace birp::fault
