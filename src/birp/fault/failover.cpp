#include "birp/fault/failover.hpp"

#include <algorithm>
#include <cmath>

#include "birp/util/check.hpp"

namespace birp::fault {

FailoverPolicy::FailoverPolicy(const FailoverConfig& config, int apps,
                               int devices)
    : config_(config),
      apps_(apps),
      devices_(devices),
      jitter_rng_(config.backoff_seed) {
  util::check(apps >= 0 && devices >= 0,
              "FailoverPolicy: negative dimensions");
  util::check(config.retry_budget >= 0,
              "FailoverPolicy: negative retry budget");
  util::check(config.backoff_base_slots >= 0,
              "FailoverPolicy: negative backoff base");
  util::check(config.backoff_multiplier >= 1.0,
              "FailoverPolicy: backoff multiplier must be >= 1");
  util::check(config.backoff_max_slots >= config.backoff_base_slots,
              "FailoverPolicy: backoff max below base");
  util::check(config.backoff_jitter >= 0.0 && config.backoff_jitter <= 1.0,
              "FailoverPolicy: backoff jitter outside [0, 1]");
  injected_.assign(static_cast<std::size_t>(config.retry_budget) + 1,
                   util::Grid2<std::int64_t>(apps, devices));
  readmit_ = util::Grid2<std::int64_t>(apps, devices);
}

int FailoverPolicy::delay_slots(int attempt) {
  if (config_.backoff_base_slots <= 0) return 1;  // legacy: next slot
  double raw = static_cast<double>(config_.backoff_base_slots);
  for (int a = 1; a < attempt; ++a) raw *= config_.backoff_multiplier;
  raw = std::min(raw, static_cast<double>(config_.backoff_max_slots));
  if (config_.backoff_jitter > 0.0) {
    raw *= jitter_rng_.uniform(1.0 - config_.backoff_jitter,
                               1.0 + config_.backoff_jitter);
  }
  const auto rounded = static_cast<int>(std::llround(raw));
  return std::clamp(rounded, 1, std::max(1, config_.backoff_max_slots));
}

const util::Grid2<std::int64_t>& FailoverPolicy::begin_slot(
    int slot, const std::vector<std::uint8_t>& up,
    const util::Grid2<std::uint8_t>* avoid) {
  slot_ = slot;
  readmit_.fill(0);
  for (auto& grid : injected_) grid.fill(0);
  if (!config_.enabled) return readmit_;

  std::vector<int> up_edges;
  for (int k = 0; k < devices_ && k < static_cast<int>(up.size()); ++k) {
    if (up[static_cast<std::size_t>(k)] != 0) up_edges.push_back(k);
  }
  // Nowhere to go: orphans stay pending until an edge recovers (they are
  // flushed as drops at the horizon if none ever does).
  if (up_edges.empty()) return readmit_;

  // Merge the cohorts whose backoff window has elapsed into per-(attempt,
  // app) counts, so the round-robin split below is independent of cohort
  // arrival order (and byte-identical to the pre-backoff bookkeeping when
  // backoff_base_slots == 0, where every cohort is eligible next slot).
  std::vector<std::vector<std::int64_t>> eligible(
      static_cast<std::size_t>(config_.retry_budget) + 1,
      std::vector<std::int64_t>(static_cast<std::size_t>(apps_), 0));
  std::vector<PendingCohort> still_waiting;
  for (const auto& cohort : pending_) {
    if (cohort.eligible_slot <= slot) {
      eligible[static_cast<std::size_t>(cohort.attempt)]
              [static_cast<std::size_t>(cohort.app)] += cohort.count;
    } else {
      still_waiting.push_back(cohort);
    }
  }
  pending_ = std::move(still_waiting);

  const bool have_avoid = avoid != nullptr && avoid->rows() > 0;
  std::vector<int> candidates;
  for (std::size_t a = 1; a < eligible.size(); ++a) {
    for (int i = 0; i < apps_; ++i) {
      const std::int64_t count = eligible[a][static_cast<std::size_t>(i)];
      if (count == 0) continue;
      // Circuit breakers steer retries away from tripped (app, edge) pairs,
      // but availability wins: with every survivor avoided, use them all.
      const std::vector<int>* targets = &up_edges;
      if (have_avoid) {
        candidates.clear();
        for (const int k : up_edges) {
          if ((*avoid)(i, k) == 0) candidates.push_back(k);
        }
        if (!candidates.empty()) targets = &candidates;
      }
      const auto n_up = static_cast<std::int64_t>(targets->size());
      const std::int64_t base = count / n_up;
      const std::int64_t extra = count % n_up;
      const std::int64_t start = (static_cast<std::int64_t>(slot) + i) % n_up;
      for (std::int64_t j = 0; j < n_up; ++j) {
        const int k =
            (*targets)[static_cast<std::size_t>((start + j) % n_up)];
        const std::int64_t share = base + (j < extra ? 1 : 0);
        if (share == 0) continue;
        injected_[a](i, k) += share;
        readmit_(i, k) += share;
      }
      total_retries_ += count;
    }
  }
  return readmit_;
}

FailoverPolicy::OrphanOutcome FailoverPolicy::on_orphans(int app, int edge,
                                                         std::int64_t count) {
  util::check(count >= 0, "FailoverPolicy: negative orphan count");
  if (count == 0) return {};
  if (!config_.enabled) return {.retried = 0, .dropped = count};
  util::check(app >= 0 && app < apps_ && edge >= 0 && edge < devices_,
              "FailoverPolicy: orphan index out of range");

  const auto queue_retry = [&](int attempt, std::int64_t n) {
    const int eligible = slot_ + delay_slots(attempt);
    // Merge into an existing cohort when possible to bound the list.
    for (auto& cohort : pending_) {
      if (cohort.attempt == attempt && cohort.app == app &&
          cohort.eligible_slot == eligible) {
        cohort.count += n;
        return;
      }
    }
    pending_.push_back({attempt, app, n, eligible});
  };

  OrphanOutcome outcome;
  std::int64_t remaining = count;
  // Pessimistic attribution: charge the highest-attempt cohort first so no
  // request can be re-admitted more than retry_budget times.
  for (std::size_t a = injected_.size(); a-- > 1 && remaining > 0;) {
    const std::int64_t take = std::min(remaining, injected_[a](app, edge));
    if (take == 0) continue;
    injected_[a](app, edge) -= take;
    remaining -= take;
    if (static_cast<int>(a) + 1 <= config_.retry_budget) {
      queue_retry(static_cast<int>(a) + 1, take);
      outcome.retried += take;
    } else {
      outcome.dropped += take;
    }
  }
  // The rest are fresh demand on their first failure.
  if (remaining > 0) {
    if (config_.retry_budget >= 1) {
      queue_retry(1, remaining);
      outcome.retried += remaining;
    } else {
      outcome.dropped += remaining;
    }
  }
  return outcome;
}

std::int64_t FailoverPolicy::drain_pending() {
  std::int64_t total = 0;
  for (const auto& cohort : pending_) total += cohort.count;
  pending_.clear();
  return total;
}

}  // namespace birp::fault
