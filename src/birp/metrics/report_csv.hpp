// CSV exporters for run metrics: every series behind the paper's figures
// can be dumped for external plotting (gnuplot/matplotlib).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "birp/metrics/run_metrics.hpp"

namespace birp::metrics {

/// A named run for multi-algorithm exports.
struct NamedRun {
  std::string name;
  const RunMetrics* metrics = nullptr;
};

/// Completion-time CDF sampled at `points` x-values over [0, max_tau]:
/// header "tau,<name>,<name>..."; one row per sample point.
void write_cdf_csv(std::ostream& out, const std::vector<NamedRun>& runs,
                   double max_tau = 2.0, int points = 64);

/// Per-slot loss: header "slot,<name>...". All runs must share a horizon.
void write_slot_loss_csv(std::ostream& out, const std::vector<NamedRun>& runs);

/// Cumulative loss: header "slot,<name>...".
void write_cumulative_loss_csv(std::ostream& out,
                               const std::vector<NamedRun>& runs);

/// One-row-per-run summary: loss, failure p%, drops, busy, percentiles.
void write_summary_csv(std::ostream& out, const std::vector<NamedRun>& runs);

/// Request-level serving report (birp/serve): one row per run with latency
/// percentiles (p50/p95/p99, units of tau), SLO attainment %, queue-drop
/// counts, and admission-queue depth statistics.
void write_latency_csv(std::ostream& out, const std::vector<NamedRun>& runs);

}  // namespace birp::metrics
