#include "birp/metrics/run_metrics.hpp"

#include <algorithm>

namespace birp::metrics {

RunMetrics::RunMetrics(int expected_slots) {
  if (expected_slots > 0) {
    slot_loss_.reserve(static_cast<std::size_t>(expected_slots));
  }
}

void RunMetrics::record_request(double completion_tau, bool met_slo) {
  completion_.add(completion_tau);
  ++total_requests_;
  if (!met_slo) ++slo_failures_;
}

void RunMetrics::record_dropped() {
  ++total_requests_;
  ++slo_failures_;
  ++dropped_;
}

void RunMetrics::record_queue_drop() {
  ++total_requests_;
  ++slo_failures_;
  ++dropped_;
  ++queue_dropped_;
}

void RunMetrics::record_orphan_drop() {
  ++total_requests_;
  ++slo_failures_;
  ++dropped_;
  ++orphan_dropped_;
}

void RunMetrics::record_deadline_shed() {
  ++total_requests_;
  ++slo_failures_;
  ++dropped_;
  ++deadline_shed_;
}

void RunMetrics::record_breaker_events(std::int64_t trips,
                                       std::int64_t reopens,
                                       std::int64_t probes,
                                       std::int64_t recoveries) {
  breaker_trips_ += trips;
  breaker_reopens_ += reopens;
  breaker_probes_ += probes;
  breaker_recoveries_ += recoveries;
}

void RunMetrics::record_degradation(int degraded_apps, int max_level) {
  if (degraded_apps > 0) ++degraded_slots_;
  if (max_level > max_degradation_level_) max_degradation_level_ = max_level;
}

void RunMetrics::record_batch_seals(int reason, std::int64_t count) {
  if (reason < 0 || count <= 0) return;
  const auto index = static_cast<std::size_t>(reason);
  if (index >= batch_seals_.size()) batch_seals_.resize(index + 1, 0);
  batch_seals_[index] += count;
}

std::int64_t RunMetrics::batch_seals(int reason) const noexcept {
  if (reason < 0 || static_cast<std::size_t>(reason) >= batch_seals_.size()) {
    return 0;
  }
  return batch_seals_[static_cast<std::size_t>(reason)];
}

std::int64_t RunMetrics::total_batches() const noexcept {
  std::int64_t total = 0;
  for (const auto count : batch_seals_) total += count;
  return total;
}

void RunMetrics::record_retries(std::int64_t count) { retries_ += count; }

void RunMetrics::record_failure_event(int mttr_slots) {
  ++failure_events_;
  mttr_slots_.add(static_cast<double>(mttr_slots));
}

void RunMetrics::record_repartition(double latency_ms,
                                    std::int64_t requests_at_risk) {
  ++repartitions_;
  repartition_latency_ms_.add(latency_ms);
  requests_at_risk_ += requests_at_risk;
}

void RunMetrics::record_edge_slot(int edge, bool up) {
  if (edge < 0) return;
  const auto index = static_cast<std::size_t>(edge);
  if (index >= edge_up_slots_.size()) {
    edge_up_slots_.resize(index + 1, 0);
    edge_down_slots_.resize(index + 1, 0);
  }
  ++(up ? edge_up_slots_ : edge_down_slots_)[index];
}

std::int64_t RunMetrics::downtime_slots(int edge) const noexcept {
  if (edge < 0 || static_cast<std::size_t>(edge) >= edge_down_slots_.size()) {
    return 0;
  }
  return edge_down_slots_[static_cast<std::size_t>(edge)];
}

double RunMetrics::availability_percent() const noexcept {
  std::int64_t up = 0;
  std::int64_t total = 0;
  for (std::size_t k = 0; k < edge_up_slots_.size(); ++k) {
    up += edge_up_slots_[k];
    total += edge_up_slots_[k] + edge_down_slots_[k];
  }
  if (total == 0) return 100.0;
  return 100.0 * static_cast<double>(up) / static_cast<double>(total);
}

void RunMetrics::record_request_waits(double queue_wait_tau,
                                      double dispatch_wait_tau,
                                      double exec_tau) {
  queue_wait_.add(queue_wait_tau);
  dispatch_wait_.add(dispatch_wait_tau);
  exec_latency_.add(exec_tau);
}

void RunMetrics::record_admit_to_launch(double admit_to_launch_tau) {
  admit_to_launch_.add(admit_to_launch_tau);
}

void RunMetrics::record_queue_depth(double depth) { queue_depth_.add(depth); }

void RunMetrics::merge_queue_depth(const util::RunningStats& stats) {
  queue_depth_.merge(stats);
}

double RunMetrics::latency_quantile(double q) const {
  return completion_.empty() ? 0.0 : completion_.quantile(q);
}

std::vector<double> RunMetrics::latency_quantiles(
    std::span<const double> qs) const {
  std::vector<double> result;
  result.reserve(qs.size());
  // Ecdf::quantile sorts once and reads in place afterwards, so the batch
  // form is one sort for the whole report row.
  for (const double q : qs) result.push_back(latency_quantile(q));
  return result;
}

void RunMetrics::record_slot_loss(double loss) {
  slot_loss_.push_back(loss);
  total_loss_ += loss;
}

void RunMetrics::record_edge_busy(double fraction) {
  edge_busy_.add(fraction);
}

void RunMetrics::record_energy(double joules) { energy_j_ += joules; }

void RunMetrics::merge(const RunMetrics& other) {
  completion_.merge(other.completion_);
  queue_wait_.merge(other.queue_wait_);
  dispatch_wait_.merge(other.dispatch_wait_);
  exec_latency_.merge(other.exec_latency_);
  admit_to_launch_.merge(other.admit_to_launch_);

  if (slot_loss_.size() < other.slot_loss_.size()) {
    slot_loss_.resize(other.slot_loss_.size(), 0.0);
  }
  for (std::size_t t = 0; t < other.slot_loss_.size(); ++t) {
    slot_loss_[t] += other.slot_loss_[t];
  }
  total_loss_ += other.total_loss_;

  total_requests_ += other.total_requests_;
  slo_failures_ += other.slo_failures_;
  dropped_ += other.dropped_;
  queue_dropped_ += other.queue_dropped_;
  orphan_dropped_ += other.orphan_dropped_;
  deadline_shed_ += other.deadline_shed_;
  retries_ += other.retries_;
  breaker_trips_ += other.breaker_trips_;
  breaker_reopens_ += other.breaker_reopens_;
  breaker_probes_ += other.breaker_probes_;
  breaker_recoveries_ += other.breaker_recoveries_;
  degraded_slots_ += other.degraded_slots_;
  max_degradation_level_ =
      std::max(max_degradation_level_, other.max_degradation_level_);
  solver_fallbacks_ += other.solver_fallbacks_;
  failure_events_ += other.failure_events_;
  mttr_slots_.merge(other.mttr_slots_);
  repartitions_ += other.repartitions_;
  repartition_latency_ms_.merge(other.repartition_latency_ms_);
  requests_at_risk_ += other.requests_at_risk_;

  if (batch_seals_.size() < other.batch_seals_.size()) {
    batch_seals_.resize(other.batch_seals_.size(), 0);
  }
  for (std::size_t r = 0; r < other.batch_seals_.size(); ++r) {
    batch_seals_[r] += other.batch_seals_[r];
  }

  if (edge_up_slots_.size() < other.edge_up_slots_.size()) {
    edge_up_slots_.resize(other.edge_up_slots_.size(), 0);
    edge_down_slots_.resize(other.edge_down_slots_.size(), 0);
  }
  for (std::size_t k = 0; k < other.edge_up_slots_.size(); ++k) {
    edge_up_slots_[k] += other.edge_up_slots_[k];
    edge_down_slots_[k] += other.edge_down_slots_[k];
  }

  edge_busy_.merge(other.edge_busy_);
  queue_depth_.merge(other.queue_depth_);
  energy_j_ += other.energy_j_;
}

std::vector<double> RunMetrics::cumulative_loss() const {
  std::vector<double> cumulative;
  cumulative.reserve(slot_loss_.size());
  double running = 0.0;
  for (const double loss : slot_loss_) {
    running += loss;
    cumulative.push_back(running);
  }
  return cumulative;
}

double RunMetrics::failure_percent() const noexcept {
  if (total_requests_ == 0) return 0.0;
  return 100.0 * static_cast<double>(slo_failures_) /
         static_cast<double>(total_requests_);
}

}  // namespace birp::metrics
