// Aggregated measurements of one simulation run — everything needed to
// reproduce the paper's evaluation artifacts:
//   * completion-time ECDF in units of tau     (Fig. 6a / 7a)
//   * per-slot inference loss                  (Fig. 6b / 7b)
//   * cumulative inference loss                (Fig. 6c / 7c)
//   * SLO failure rate p%                      (Fig. 5, text claims)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "birp/util/ecdf.hpp"
#include "birp/util/stats.hpp"

namespace birp::metrics {

class RunMetrics {
 public:
  explicit RunMetrics(int expected_slots = 0);

  /// Records one request's completion time (in units of tau). `met_slo` is
  /// false when the request finished after its SLO or was dropped.
  void record_request(double completion_tau, bool met_slo);
  /// Records a request that was never served (counts as an SLO failure and
  /// does not contribute a completion-time sample).
  void record_dropped();
  /// Records a request rejected by admission-queue backpressure (birp/serve).
  /// Counts exactly once as a drop and an SLO failure — a queue drop must
  /// never additionally be recorded through record_dropped().
  void record_queue_drop();
  /// Records a request terminally lost to an edge failure (orphaned with the
  /// failover retry budget exhausted, or failover disabled). Counts exactly
  /// once as a drop and an SLO failure, like record_queue_drop().
  void record_orphan_drop();
  /// Records a request shed at enqueue by the deadline-aware admission
  /// controller (birp/guard). Counts exactly once as a drop and an SLO
  /// failure, like record_queue_drop().
  void record_deadline_shed();
  /// Records one slot's circuit-breaker transitions (birp/guard).
  void record_breaker_events(std::int64_t trips, std::int64_t reopens,
                             std::int64_t probes, std::int64_t recoveries);
  /// Records one slot's degradation-ladder status: how many apps are
  /// degraded and the highest active level.
  void record_degradation(int degraded_apps, int max_level);
  /// Records `count` sealed launches for one seal reason (birp/serve's
  /// SealReason index: full / timeout / exhausted / deadline / growth /
  /// utility). The metrics layer treats the reason as an opaque bucket.
  void record_batch_seals(int reason, std::int64_t count);
  /// Sets the scheduler's cumulative degraded-mode fallback count for the
  /// run (e.g. BIRP's greedy net when the MILP solve fails).
  void set_solver_fallbacks(std::int64_t count) noexcept {
    solver_fallbacks_ = count;
  }
  /// Records `count` failover re-admissions (requests moved to a surviving
  /// edge). Retries are bookkeeping, not terminal outcomes: a retried request
  /// still resolves exactly once via record_request / record_*_drop.
  void record_retries(std::int64_t count);
  /// Records one edge's liveness for one slot (per-edge downtime
  /// attribution and cluster availability).
  void record_edge_slot(int edge, bool up);

  /// Records one debounced failure event's recovery time in slots (first
  /// missed heartbeat -> declared healthy), from the control plane's health
  /// tracker. mean/max of mttr_slots() are the run's MTTR statistics.
  void record_failure_event(int mttr_slots);
  /// Records one live repartition: control-plane planning + state-handoff
  /// latency (wall clock, measurement only) and the slot demand at edges
  /// whose cell assignment changed (requests at risk during the handoff).
  void record_repartition(double latency_ms, std::int64_t requests_at_risk);

  /// Records the wait breakdown of one served request (units of tau):
  /// batch-formation wait, dispatch wait (accelerator contention), and
  /// execution latency. Companion to record_request for the serve engine.
  void record_request_waits(double queue_wait_tau, double dispatch_wait_tau,
                            double exec_tau);

  /// Records one served request's admit-to-launch latency (units of tau):
  /// from entering the admission queue (available_s) to its batch's launch
  /// start — the serve hot path's end-to-end queueing cost, and what
  /// BENCH_serve.json reports as p50/p99.
  void record_admit_to_launch(double admit_to_launch_tau);

  /// Records one admission-queue depth sample (requests buffered at an edge
  /// at an admission event).
  void record_queue_depth(double depth);
  /// Merges a batch of depth samples accumulated elsewhere (per-edge merge).
  void merge_queue_depth(const util::RunningStats& stats);

  /// Appends the realized inference loss of one slot (sum of loss_{ij} over
  /// served requests, the paper's Eq. 10 objective evaluated ex post).
  void record_slot_loss(double loss);

  /// Records one edge's accelerator busy fraction for one slot.
  void record_edge_busy(double fraction);

  /// Merges `other` into this accumulator. The operation is associative and
  /// commutative: raw latency samples are merged (never pre-computed
  /// percentiles), so quantile queries on the merged object are exactly the
  /// quantiles of the union sample set — cluster-level percentiles and
  /// goodput stay exact when a run is sharded into per-cell metrics.
  /// Per-slot losses add elementwise (shards observe the same slot clock;
  /// the shorter series is zero-extended), and per-edge liveness counters
  /// add index-wise (callers merging shards with cell-local edge indices
  /// must remap first). Two counters are upper bounds after a merge of
  /// same-slot shards rather than exact: degraded_slots() and
  /// max_degradation_level() summarize shard-local ladder views.
  void merge(const RunMetrics& other);

  /// Adds one edge-slot's energy consumption (joules).
  void record_energy(double joules);

  [[nodiscard]] const util::Ecdf& completion() const noexcept {
    return completion_;
  }
  [[nodiscard]] const std::vector<double>& slot_loss() const noexcept {
    return slot_loss_;
  }
  [[nodiscard]] std::vector<double> cumulative_loss() const;
  [[nodiscard]] double total_loss() const noexcept { return total_loss_; }

  [[nodiscard]] std::int64_t total_requests() const noexcept {
    return total_requests_;
  }
  [[nodiscard]] std::int64_t slo_failures() const noexcept {
    return slo_failures_;
  }
  [[nodiscard]] std::int64_t dropped() const noexcept { return dropped_; }
  /// Subset of dropped() rejected by admission-queue backpressure.
  [[nodiscard]] std::int64_t queue_dropped() const noexcept {
    return queue_dropped_;
  }
  /// Subset of dropped() terminally lost to edge failures.
  [[nodiscard]] std::int64_t orphan_dropped() const noexcept {
    return orphan_dropped_;
  }
  /// Subset of dropped() shed by deadline-aware admission control.
  [[nodiscard]] std::int64_t deadline_shed() const noexcept {
    return deadline_shed_;
  }
  /// Failover re-admissions performed over the run.
  [[nodiscard]] std::int64_t retries() const noexcept { return retries_; }

  /// Circuit-breaker transition totals over the run (birp/guard).
  [[nodiscard]] std::int64_t breaker_trips() const noexcept {
    return breaker_trips_;
  }
  [[nodiscard]] std::int64_t breaker_reopens() const noexcept {
    return breaker_reopens_;
  }
  [[nodiscard]] std::int64_t breaker_probes() const noexcept {
    return breaker_probes_;
  }
  [[nodiscard]] std::int64_t breaker_recoveries() const noexcept {
    return breaker_recoveries_;
  }
  /// Slots during which at least one app ran degraded (ladder level > 0).
  [[nodiscard]] std::int64_t degraded_slots() const noexcept {
    return degraded_slots_;
  }
  /// Highest degradation-ladder level observed over the run.
  [[nodiscard]] int max_degradation_level() const noexcept {
    return max_degradation_level_;
  }
  /// Scheduler degraded-mode fallback decisions over the run.
  [[nodiscard]] std::int64_t solver_fallbacks() const noexcept {
    return solver_fallbacks_;
  }

  /// Closed (recovered) failure events recorded by the control plane.
  [[nodiscard]] std::int64_t failure_events() const noexcept {
    return failure_events_;
  }
  /// Recovery-time samples, one per closed failure event (slots); mean() is
  /// the run's MTTR.
  [[nodiscard]] const util::RunningStats& mttr_slots() const noexcept {
    return mttr_slots_;
  }
  /// Live repartitions performed by the control plane.
  [[nodiscard]] std::int64_t repartitions() const noexcept {
    return repartitions_;
  }
  [[nodiscard]] const util::RunningStats& repartition_latency_ms()
      const noexcept {
    return repartition_latency_ms_;
  }
  /// Total slot demand at edges whose cell changed across all repartitions.
  [[nodiscard]] std::int64_t requests_at_risk() const noexcept {
    return requests_at_risk_;
  }

  /// Down slots recorded for `edge` (0 for edges never sampled).
  [[nodiscard]] std::int64_t downtime_slots(int edge) const noexcept;
  /// Edges with at least one liveness sample.
  [[nodiscard]] int sampled_edges() const noexcept {
    return static_cast<int>(edge_up_slots_.size());
  }
  /// Cluster availability: up edge-slots / total edge-slots * 100;
  /// 100 when no liveness was sampled (fault-free runs).
  [[nodiscard]] double availability_percent() const noexcept;

  /// Sealed launches recorded for one seal-reason bucket (0 for buckets
  /// never recorded or out of range).
  [[nodiscard]] std::int64_t batch_seals(int reason) const noexcept;
  /// Sealed launches across all seal reasons.
  [[nodiscard]] std::int64_t total_batches() const noexcept;

  /// Requests that were served AND met their SLO (goodput numerator).
  [[nodiscard]] std::int64_t slo_met_requests() const noexcept {
    return total_requests_ - slo_failures_;
  }
  /// Goodput under SLO: served-and-met requests per second of horizon —
  /// the headline serving metric (throughput x SLO attainment). 0 when the
  /// horizon is empty.
  [[nodiscard]] double goodput_under_slo(double horizon_s) const noexcept {
    return horizon_s > 0.0
               ? static_cast<double>(slo_met_requests()) / horizon_s
               : 0.0;
  }

  /// SLO failure percentage p% = failures / total * 100; 0 when empty.
  [[nodiscard]] double failure_percent() const noexcept;
  /// SLO attainment percentage = 100 - failure_percent(); 100 when empty.
  [[nodiscard]] double slo_attainment_percent() const noexcept {
    return 100.0 - failure_percent();
  }

  /// q-quantile of the served-request latency distribution (units of tau);
  /// 0 when no request was served. p50/p95/p99 = latency_quantile(.5/.95/.99).
  [[nodiscard]] double latency_quantile(double q) const;
  /// Batch form: one result per entry of `qs`, in order (one sort pass).
  [[nodiscard]] std::vector<double> latency_quantiles(
      std::span<const double> qs) const;

  [[nodiscard]] const util::Ecdf& queue_wait() const noexcept {
    return queue_wait_;
  }
  [[nodiscard]] const util::Ecdf& dispatch_wait() const noexcept {
    return dispatch_wait_;
  }
  [[nodiscard]] const util::Ecdf& exec_latency() const noexcept {
    return exec_latency_;
  }
  [[nodiscard]] const util::Ecdf& admit_to_launch() const noexcept {
    return admit_to_launch_;
  }
  [[nodiscard]] const util::RunningStats& queue_depth() const noexcept {
    return queue_depth_;
  }

  [[nodiscard]] const util::RunningStats& edge_busy() const noexcept {
    return edge_busy_;
  }

  /// Total energy consumed across all edges and slots (joules).
  [[nodiscard]] double total_energy_j() const noexcept { return energy_j_; }

  /// Energy per served request (joules); 0 when nothing served.
  [[nodiscard]] double energy_per_request_j() const noexcept {
    const auto served = total_requests_ - dropped_;
    return served > 0 ? energy_j_ / static_cast<double>(served) : 0.0;
  }

 private:
  util::Ecdf completion_;
  util::Ecdf queue_wait_;
  util::Ecdf dispatch_wait_;
  util::Ecdf exec_latency_;
  util::Ecdf admit_to_launch_;
  std::vector<double> slot_loss_;
  double total_loss_ = 0.0;
  std::int64_t total_requests_ = 0;
  std::int64_t slo_failures_ = 0;
  std::int64_t dropped_ = 0;
  std::int64_t queue_dropped_ = 0;
  std::int64_t orphan_dropped_ = 0;
  std::int64_t deadline_shed_ = 0;
  std::int64_t retries_ = 0;
  std::int64_t breaker_trips_ = 0;
  std::int64_t breaker_reopens_ = 0;
  std::int64_t breaker_probes_ = 0;
  std::int64_t breaker_recoveries_ = 0;
  std::int64_t degraded_slots_ = 0;
  int max_degradation_level_ = 0;
  std::int64_t solver_fallbacks_ = 0;
  std::int64_t failure_events_ = 0;
  util::RunningStats mttr_slots_;
  std::int64_t repartitions_ = 0;
  util::RunningStats repartition_latency_ms_;
  std::int64_t requests_at_risk_ = 0;
  /// Per-reason sealed-launch counts; grown on first out-of-range reason.
  std::vector<std::int64_t> batch_seals_;
  /// Per-edge (up, down) slot counts; grown on first sample of each edge.
  std::vector<std::int64_t> edge_up_slots_;
  std::vector<std::int64_t> edge_down_slots_;
  util::RunningStats edge_busy_;
  util::RunningStats queue_depth_;
  double energy_j_ = 0.0;
};

}  // namespace birp::metrics
