#include "birp/metrics/report_csv.hpp"

#include <array>
#include <ostream>

#include "birp/util/check.hpp"
#include "birp/util/csv.hpp"

namespace birp::metrics {
namespace {

std::vector<std::string> header_row(const std::vector<NamedRun>& runs,
                                    const std::string& x_name) {
  util::check(!runs.empty(), "csv export: no runs");
  std::vector<std::string> header{x_name};
  for (const auto& run : runs) {
    util::check(run.metrics != nullptr, "csv export: null metrics");
    header.push_back(run.name);
  }
  return header;
}

}  // namespace

void write_cdf_csv(std::ostream& out, const std::vector<NamedRun>& runs,
                   double max_tau, int points) {
  util::check(points >= 2, "csv export: need >= 2 points");
  util::CsvWriter writer(out);
  writer.row(header_row(runs, "tau"));
  for (int p = 0; p < points; ++p) {
    const double x =
        max_tau * static_cast<double>(p) / static_cast<double>(points - 1);
    std::vector<std::string> row{util::format_double(x)};
    for (const auto& run : runs) {
      row.push_back(util::format_double(run.metrics->completion().cdf(x)));
    }
    writer.row(row);
  }
}

void write_slot_loss_csv(std::ostream& out, const std::vector<NamedRun>& runs) {
  util::CsvWriter writer(out);
  writer.row(header_row(runs, "slot"));
  const auto slots = runs.front().metrics->slot_loss().size();
  for (const auto& run : runs) {
    util::check(run.metrics->slot_loss().size() == slots,
                "csv export: runs have different horizons");
  }
  for (std::size_t t = 0; t < slots; ++t) {
    std::vector<std::string> row{std::to_string(t)};
    for (const auto& run : runs) {
      row.push_back(util::format_double(run.metrics->slot_loss()[t]));
    }
    writer.row(row);
  }
}

void write_cumulative_loss_csv(std::ostream& out,
                               const std::vector<NamedRun>& runs) {
  util::CsvWriter writer(out);
  writer.row(header_row(runs, "slot"));
  std::vector<std::vector<double>> series;
  series.reserve(runs.size());
  for (const auto& run : runs) series.push_back(run.metrics->cumulative_loss());
  const auto slots = series.front().size();
  for (const auto& s : series) {
    util::check(s.size() == slots, "csv export: runs have different horizons");
  }
  for (std::size_t t = 0; t < slots; ++t) {
    std::vector<std::string> row{std::to_string(t)};
    for (const auto& s : series) row.push_back(util::format_double(s[t]));
    writer.row(row);
  }
}

void write_summary_csv(std::ostream& out, const std::vector<NamedRun>& runs) {
  util::check(!runs.empty(), "csv export: no runs");
  util::CsvWriter writer(out);
  writer.row({"algorithm", "total_loss", "failure_percent", "dropped",
              "mean_busy", "median_tau", "p95_tau", "solver_fallbacks"});
  for (const auto& run : runs) {
    const auto& m = *run.metrics;
    const bool sampled = m.completion().count() > 0;
    writer.row({run.name, util::format_double(m.total_loss()),
                util::format_double(m.failure_percent()),
                std::to_string(m.dropped()),
                util::format_double(m.edge_busy().mean()),
                sampled ? util::format_double(m.completion().quantile(0.5))
                        : "",
                sampled ? util::format_double(m.completion().quantile(0.95))
                        : "",
                std::to_string(m.solver_fallbacks())});
  }
}

void write_latency_csv(std::ostream& out, const std::vector<NamedRun>& runs) {
  util::check(!runs.empty(), "csv export: no runs");
  util::CsvWriter writer(out);
  writer.row({"algorithm", "p50_tau", "p95_tau", "p99_tau",
              "slo_attainment_percent", "dropped", "queue_dropped",
              "deadline_shed", "breaker_trips", "degraded_slots",
              "mean_queue_depth", "max_queue_depth"});
  for (const auto& run : runs) {
    util::check(run.metrics != nullptr, "csv export: null metrics");
    const auto& m = *run.metrics;
    const bool depth_sampled = m.queue_depth().count() > 0;
    const std::array<double, 3> qs = {0.5, 0.95, 0.99};
    const std::vector<double> taus = m.latency_quantiles(qs);
    writer.row({run.name, util::format_double(taus[0]),
                util::format_double(taus[1]),
                util::format_double(taus[2]),
                util::format_double(m.slo_attainment_percent()),
                std::to_string(m.dropped()),
                std::to_string(m.queue_dropped()),
                std::to_string(m.deadline_shed()),
                std::to_string(m.breaker_trips()),
                std::to_string(m.degraded_slots()),
                depth_sampled ? util::format_double(m.queue_depth().mean()) : "",
                depth_sampled ? util::format_double(m.queue_depth().max())
                              : ""});
  }
}

}  // namespace birp::metrics
