// Dense Gauss–Jordan tableau LP engine — the reference implementation.
//
// This is the original simplex backend, kept bit-exact as an A/B baseline
// for the sparse revised engine (simplex.cpp): tests cross-check statuses,
// objectives, and duals between the two, and bench_solver runs a dense
// regression arm. Both engines consume the same StandardForm snapshot and
// the same warm-attempt accounting (lp_engine.hpp), so they can only
// differ in pivot arithmetic. Memory is O(rows * cols) — do not use this
// engine beyond paper-scale instances.
#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "birp/solver/lp_engine.hpp"
#include "birp/solver/simplex.hpp"
#include "birp/solver/standard_form.hpp"

namespace birp::solver {
namespace {

/// Relative ratio-test tie window; see simplex.cpp.
constexpr double kRatioTie = 1e-11;

/// Dual-repair pick margin, mirroring the sparse engine; see simplex.cpp
/// for the cross-engine rationale.
constexpr double kDualPickTie = 1e-9;

/// Dense working storage for one simplex solve. The tableau holds B^{-1}A
/// and is updated in place on every pivot.
class DenseTableau {
 public:
  DenseTableau(const Model& model, std::span<const double> lower_override,
               std::span<const double> upper_override, SimplexOptions options)
      : model_(model), options_(options) {
    init_from(build_standard_form(model, lower_override, upper_override));
    // Cold start: the standard-form basis is the identity; the raw tableau
    // already equals B^{-1}A.
  }

  /// Warm construction from a prior basis; check warm_ok() before solving.
  DenseTableau(const Model& model, std::span<const double> lower_override,
               std::span<const double> upper_override, SimplexOptions options,
               const Basis& warm)
      : model_(model), options_(options) {
    const StandardForm form =
        build_standard_form(model, lower_override, upper_override, warm);
    if (!form.ok) return;  // warm_ok_ stays false
    init_from(form);
    if (!factorize(form.basic_cols)) return;  // singular: cold fallback
    recompute_basic_values();
    warm_ok_ = true;
  }

  Solution solve();
  /// Warm solve: dual repair + Phase II. nullopt asks the caller to fall
  /// back to the cold path (stalled repair or dual-infeasible start).
  std::optional<Solution> solve_warm();

  [[nodiscard]] bool warm_ok() const noexcept { return warm_ok_; }
  [[nodiscard]] Basis extract_basis() const;
  [[nodiscard]] std::int64_t iterations() const noexcept { return iterations_; }
  [[nodiscard]] std::int64_t factor_pivots() const noexcept {
    return factor_pivots_;
  }

 private:
  enum class Repair { Done, Infeasible, GiveUp };

  [[nodiscard]] double& at(int row, int col) noexcept {
    return tableau_[static_cast<std::size_t>(row) *
                        static_cast<std::size_t>(cols_) +
                    static_cast<std::size_t>(col)];
  }
  [[nodiscard]] double at(int row, int col) const noexcept {
    return tableau_[static_cast<std::size_t>(row) *
                        static_cast<std::size_t>(cols_) +
                    static_cast<std::size_t>(col)];
  }

  /// Densifies the shared standard form into the tableau working set.
  void init_from(const StandardForm& form) {
    rows_ = form.rows;
    cols_ = form.cols;
    structural_ = form.structural;
    artificial_begin_ = form.artificial_begin;
    tableau_.assign(
        static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_), 0.0);
    for (int j = 0; j < cols_; ++j) {
      for (int p = form.col_start[static_cast<std::size_t>(j)];
           p < form.col_start[static_cast<std::size_t>(j) + 1]; ++p) {
        at(form.row_index[static_cast<std::size_t>(p)], j) =
            form.values[static_cast<std::size_t>(p)];
      }
    }
    rhs_ = form.rhs;
    lower_ = form.lower;
    upper_ = form.upper;
    state_ = form.state;
    value_ = form.value;
    basis_ = form.basis;
    dual_col_ = form.dual_col;
    dual_sign_ = form.dual_sign;
    slack_row_ = form.slack_row;
    col_scale_ = form.col_scale;
    rhs_scale_ = form.rhs_scale;
    reduced_.assign(static_cast<std::size_t>(cols_), 0.0);
    row_ratio_.assign(static_cast<std::size_t>(cols_), 0.0);
    iteration_limit_ = options_.max_iterations > 0
                           ? options_.max_iterations
                           : 200 + 30ll * (rows_ + cols_);
  }

  void compute_reduced_costs(const std::vector<double>& costs);
  void recompute_basic_values();
  [[nodiscard]] std::vector<double> phase2_costs() const;
  /// One phase of the primal simplex. Returns Optimal / Unbounded /
  /// IterationLimit relative to the given costs.
  SolveStatus iterate(const std::vector<double>& costs);
  /// Bounded-variable dual simplex: drives basic variables back inside
  /// their bounds while keeping the reduced costs dual feasible. Requires
  /// compute_reduced_costs to have run for the Phase II costs.
  Repair dual_repair();
  void pivot(int leave_row, int enter_col);
  /// Gauss-Jordan refactorization of `basic_cols` (one column per row, any
  /// order) with partial pivoting. False when the basis is singular.
  bool factorize(const std::vector<int>& basic_cols);
  /// Shared Optimal tail: duals, cleaned values, objective.
  void finish(Solution& result);

  const Model& model_;
  SimplexOptions options_;

  int rows_ = 0;        // number of constraints m
  int cols_ = 0;        // total columns n (structural + slack + artificial)
  int structural_ = 0;  // number of model variables
  int artificial_begin_ = 0;

  std::vector<double> tableau_;        // m x n, row-major: B^{-1}A
  std::vector<double> rhs_;            // B^{-1}b
  std::vector<double> lower_, upper_;  // per column
  std::vector<double> reduced_;        // reduced costs per column
  std::vector<double> row_ratio_;      // dual ratios per column (dual repair)
  std::vector<VarState> state_;
  std::vector<double> value_;      // current value per column
  std::vector<int> basis_;         // basic column per row
  std::vector<int> dual_col_;      // slack/artificial anchoring row i's dual
  std::vector<double> dual_sign_;  // cumulative row flips vs model orientation
  std::vector<int> slack_row_;     // slack/artificial column -> its row
  std::vector<double> col_scale_;  // per-column infinity norm (standard form)
  double rhs_scale_ = 0.0;         // rhs infinity norm

  std::int64_t iterations_ = 0;
  std::int64_t iteration_limit_ = 0;
  std::int64_t factor_pivots_ = 0;
  bool warm_ok_ = false;
};

bool DenseTableau::factorize(const std::vector<int>& basic_cols) {
  std::vector<char> row_used(static_cast<std::size_t>(rows_), 0);
  for (int idx = 0; idx < rows_; ++idx) {
    const int col = basic_cols[static_cast<std::size_t>(idx)];
    // Partial pivoting over the rows not yet claimed by a basic column; the
    // singularity cutoff is relative to the transformed column's magnitude
    // (floored by the raw column norm) so a uniformly scaled column is not
    // misread as singular — mirrors BasisLu::factorize.
    double total_max = 0.0;
    for (int i = 0; i < rows_; ++i) {
      total_max = std::max(total_max, std::abs(at(i, col)));
    }
    const double ref =
        std::max(total_max, col_scale_[static_cast<std::size_t>(col)]);
    int best_row = -1;
    double best_abs = options_.pivot_tolerance * ref;
    for (int i = 0; i < rows_; ++i) {
      if (row_used[static_cast<std::size_t>(i)]) continue;
      const double a = std::abs(at(i, col));
      if (a > best_abs) {
        best_abs = a;
        best_row = i;
      }
    }
    if (best_row < 0) return false;  // numerically singular basis
    pivot(best_row, col);            // reduced_ is all zero here: no-op there
    ++factor_pivots_;
    basis_[static_cast<std::size_t>(best_row)] = col;
    row_used[static_cast<std::size_t>(best_row)] = 1;
  }
  return true;
}

void DenseTableau::compute_reduced_costs(const std::vector<double>& costs) {
  // d_j = c_j - sum_i c_{basis(i)} * T(i, j)
  std::vector<double> basic_costs(static_cast<std::size_t>(rows_));
  bool any_nonzero = false;
  for (int i = 0; i < rows_; ++i) {
    basic_costs[static_cast<std::size_t>(i)] =
        costs[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
    any_nonzero =
        any_nonzero || basic_costs[static_cast<std::size_t>(i)] != 0.0;
  }
  std::copy(costs.begin(), costs.end(), reduced_.begin());
  if (!any_nonzero) return;
  for (int i = 0; i < rows_; ++i) {
    const double cb = basic_costs[static_cast<std::size_t>(i)];
    if (cb == 0.0) continue;
    const double* row =
        &tableau_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_)];
    for (int j = 0; j < cols_; ++j) {
      reduced_[static_cast<std::size_t>(j)] -= cb * row[j];
    }
  }
  for (int i = 0; i < rows_; ++i) {
    reduced_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] =
        0.0;
  }
}

void DenseTableau::recompute_basic_values() {
  // xB = B^{-1} b - sum over nonbasic j with nonzero value of T(:, j) * x_j.
  std::vector<double> xb(rhs_.begin(), rhs_.end());
  for (int j = 0; j < cols_; ++j) {
    if (state_[static_cast<std::size_t>(j)] == VarState::Basic) continue;
    const double v = value_[static_cast<std::size_t>(j)];
    if (v == 0.0) continue;
    for (int i = 0; i < rows_; ++i) {
      xb[static_cast<std::size_t>(i)] -= at(i, j) * v;
    }
  }
  for (int i = 0; i < rows_; ++i) {
    value_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] =
        xb[static_cast<std::size_t>(i)];
  }
}

std::vector<double> DenseTableau::phase2_costs() const {
  std::vector<double> costs(static_cast<std::size_t>(cols_), 0.0);
  for (int j = 0; j < structural_; ++j) {
    costs[static_cast<std::size_t>(j)] = model_.variable(j).objective;
  }
  return costs;
}

void DenseTableau::pivot(int leave_row, int enter_col) {
  const double pivot_value = at(leave_row, enter_col);
  double* prow = &tableau_[static_cast<std::size_t>(leave_row) *
                           static_cast<std::size_t>(cols_)];
  const double inv = 1.0 / pivot_value;
  for (int j = 0; j < cols_; ++j) prow[j] *= inv;
  rhs_[static_cast<std::size_t>(leave_row)] *= inv;

  for (int i = 0; i < rows_; ++i) {
    if (i == leave_row) continue;
    const double factor = at(i, enter_col);
    if (factor == 0.0) continue;
    double* row =
        &tableau_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_)];
    for (int j = 0; j < cols_; ++j) row[j] -= factor * prow[j];
    rhs_[static_cast<std::size_t>(i)] -=
        factor * rhs_[static_cast<std::size_t>(leave_row)];
  }

  const double dfactor = reduced_[static_cast<std::size_t>(enter_col)];
  if (dfactor != 0.0) {
    for (int j = 0; j < cols_; ++j) {
      reduced_[static_cast<std::size_t>(j)] -= dfactor * prow[j];
    }
  }
  reduced_[static_cast<std::size_t>(enter_col)] = 0.0;
}

SolveStatus DenseTableau::iterate(const std::vector<double>& costs) {
  compute_reduced_costs(costs);
  int stalled = 0;

  while (true) {
    if (++iterations_ > iteration_limit_) return SolveStatus::IterationLimit;
    const bool bland = stalled >= options_.stall_threshold;

    // --- Pricing: pick an entering column with a profitable direction. ---
    int enter = -1;
    double enter_dir = 0.0;
    double best_score = options_.tolerance;
    for (int j = 0; j < cols_; ++j) {
      const auto sj = state_[static_cast<std::size_t>(j)];
      if (sj == VarState::Basic) continue;
      const double lo = lower_[static_cast<std::size_t>(j)];
      const double hi = upper_[static_cast<std::size_t>(j)];
      if (lo == hi) continue;  // fixed (includes retired artificials)
      const double d = reduced_[static_cast<std::size_t>(j)];
      double dir = 0.0;
      if (sj == VarState::AtLower && d < -options_.tolerance) dir = 1.0;
      if (sj == VarState::AtUpper && d > options_.tolerance) dir = -1.0;
      if (dir == 0.0) continue;
      if (bland) {
        enter = j;
        enter_dir = dir;
        break;
      }
      // Dantzig pricing with a first-wins margin; see simplex.cpp for the
      // cross-engine rationale.
      if (std::abs(d) > best_score + kDualPickTie * (1.0 + best_score)) {
        best_score = std::abs(d);
        enter = j;
        enter_dir = dir;
      }
    }
    if (enter == -1) return SolveStatus::Optimal;

    // --- Ratio test: how far can the entering variable move? Pivot
    // eligibility is relative to the transformed column's magnitude. ---
    double alpha_scale = 0.0;
    for (int i = 0; i < rows_; ++i) {
      alpha_scale = std::max(alpha_scale, std::abs(at(i, enter)));
    }
    // Purely scale-relative; see simplex.cpp for rationale.
    const double eligible = options_.pivot_tolerance * alpha_scale;

    double t_best = upper_[static_cast<std::size_t>(enter)] -
                    lower_[static_cast<std::size_t>(enter)];
    int leave_row = -1;
    bool leave_to_upper = false;
    for (int i = 0; i < rows_; ++i) {
      const double alpha = enter_dir * at(i, enter);
      if (std::abs(alpha) <= eligible) continue;
      const int bvar = basis_[static_cast<std::size_t>(i)];
      const double xv = value_[static_cast<std::size_t>(bvar)];
      double t = kInfinity;
      bool to_upper = false;
      if (alpha > 0.0) {  // basic variable decreases toward its lower bound
        t = (xv - lower_[static_cast<std::size_t>(bvar)]) / alpha;
      } else {  // basic variable increases toward its upper bound
        const double hi = upper_[static_cast<std::size_t>(bvar)];
        if (!std::isfinite(hi)) continue;
        t = (hi - xv) / (-alpha);
        to_upper = true;
      }
      t = std::max(t, 0.0);
      // Strictly smaller step wins (ties measured relative to the step
      // scale; zero while t_best is still the unbounded sentinel); under
      // Bland's rule, ties break toward the smallest basic variable index
      // to guarantee anti-cycling.
      const double tie =
          std::isfinite(t_best) ? kRatioTie * (1.0 + std::abs(t_best)) : 0.0;
      if (t < t_best - tie ||
          (bland && leave_row >= 0 && t <= t_best + tie &&
           bvar < basis_[static_cast<std::size_t>(leave_row)])) {
        t_best = t;
        leave_row = i;
        leave_to_upper = to_upper;
      }
    }

    if (!std::isfinite(t_best)) return SolveStatus::Unbounded;
    stalled = t_best <= options_.tolerance ? stalled + 1 : 0;

    if (leave_row == -1) {
      // Bound flip: the entering variable runs to its opposite bound.
      const double t = t_best;
      for (int i = 0; i < rows_; ++i) {
        const double a = at(i, enter);
        if (a == 0.0) continue;
        const int bvar = basis_[static_cast<std::size_t>(i)];
        value_[static_cast<std::size_t>(bvar)] -= enter_dir * t * a;
      }
      auto& sj = state_[static_cast<std::size_t>(enter)];
      if (enter_dir > 0.0) {
        sj = VarState::AtUpper;
        value_[static_cast<std::size_t>(enter)] =
            upper_[static_cast<std::size_t>(enter)];
      } else {
        sj = VarState::AtLower;
        value_[static_cast<std::size_t>(enter)] =
            lower_[static_cast<std::size_t>(enter)];
      }
      continue;
    }

    // --- Basis change. ---
    const double t = t_best;
    for (int i = 0; i < rows_; ++i) {
      if (i == leave_row) continue;
      const double a = at(i, enter);
      if (a == 0.0) continue;
      const int bvar = basis_[static_cast<std::size_t>(i)];
      value_[static_cast<std::size_t>(bvar)] -= enter_dir * t * a;
    }
    const int leaving = basis_[static_cast<std::size_t>(leave_row)];
    state_[static_cast<std::size_t>(leaving)] =
        leave_to_upper ? VarState::AtUpper : VarState::AtLower;
    value_[static_cast<std::size_t>(leaving)] =
        leave_to_upper ? upper_[static_cast<std::size_t>(leaving)]
                       : lower_[static_cast<std::size_t>(leaving)];

    const double enter_value =
        value_[static_cast<std::size_t>(enter)] + enter_dir * t;
    pivot(leave_row, enter);
    basis_[static_cast<std::size_t>(leave_row)] = enter;
    state_[static_cast<std::size_t>(enter)] = VarState::Basic;
    value_[static_cast<std::size_t>(enter)] = enter_value;
  }
}

DenseTableau::Repair DenseTableau::dual_repair() {
  // Tight budget, separate from the global pivot limit: a genuinely warm
  // basis repairs in far fewer pivots than a cold solve takes, so once the
  // repair rivals a cold solve's cost (or cycles on degeneracy) it is
  // cheaper to give up early and fall back than to grind to the full limit.
  const std::int64_t repair_limit =
      std::min(iteration_limit_, iterations_ + rows_ + 100);
  while (true) {
    if (++iterations_ > repair_limit) return Repair::GiveUp;

    // --- Leaving row: the basic variable with the largest bound violation.
    // sigma = +1 when it must decrease (above upper), -1 when it must
    // increase (below lower). A later row must beat the pick by the
    // kDualPickTie margin so that near-tied violations resolve to the same
    // (smallest) row in both engines.
    int leave_row = -1;
    double best_viol = options_.tolerance;
    double sigma = 0.0;
    for (int i = 0; i < rows_; ++i) {
      const int bvar = basis_[static_cast<std::size_t>(i)];
      const double v = value_[static_cast<std::size_t>(bvar)];
      const double above = v - upper_[static_cast<std::size_t>(bvar)];
      const double below = lower_[static_cast<std::size_t>(bvar)] - v;
      const double tie = kDualPickTie * (1.0 + best_viol);
      if (above > best_viol + tie) {
        best_viol = above;
        leave_row = i;
        sigma = 1.0;
      }
      if (below > best_viol + tie) {
        best_viol = below;
        leave_row = i;
        sigma = -1.0;
      }
    }
    if (leave_row < 0) return Repair::Done;  // primal feasible

    // Pivot-row eligibility is relative to the row's magnitude across the
    // nonbasic candidates.
    double row_scale = 0.0;
    for (int j = 0; j < cols_; ++j) {
      if (state_[static_cast<std::size_t>(j)] == VarState::Basic) continue;
      row_scale = std::max(row_scale, std::abs(at(leave_row, j)));
    }
    const double eligible = options_.pivot_tolerance * row_scale;

    // --- Entering candidates, mirroring the sparse engine: a candidate must
    // move the violating basic variable toward its bound; its dual ratio
    // |d_j / alpha| measures how far the duals can move before that
    // candidate's reduced cost changes sign. The cascade below consumes
    // candidates in ratio order (smallest first, largest |alpha| among
    // near-ties — under dual degeneracy many candidates tie at ratio zero,
    // and picking them by index admits microscopic pivots). Ties in the
    // |alpha| pick break to the smallest column index (deterministic).
    bool any_candidate = false;
    for (int j = 0; j < cols_; ++j) {
      row_ratio_[static_cast<std::size_t>(j)] = kInfinity;
      const auto sj = state_[static_cast<std::size_t>(j)];
      if (sj == VarState::Basic) continue;
      if (lower_[static_cast<std::size_t>(j)] ==
          upper_[static_cast<std::size_t>(j)]) {
        continue;  // fixed (artificials)
      }
      const double alpha = at(leave_row, j);
      if (std::abs(alpha) <= eligible) continue;
      if (sj == VarState::AtLower) {
        if (sigma * alpha <= 0.0) continue;  // moving up must shrink the violation
      } else {
        if (sigma * alpha >= 0.0) continue;  // moving down must shrink it
      }
      row_ratio_[static_cast<std::size_t>(j)] = std::max(
          0.0, reduced_[static_cast<std::size_t>(j)] / (sigma * alpha));
      any_candidate = true;
    }
    if (!any_candidate) {
      // No column can reduce the violation: this row proves the bounds
      // cannot be met (the dual is unbounded), i.e. the LP is infeasible.
      return Repair::Infeasible;
    }

    // --- Long-step flip cascade, mirroring the sparse engine. Candidates
    // whose step overshoots their box are flipped (no basis change) and
    // consumed; the cascade continues on the same row until a candidate
    // absorbs the rest of the violation with a true basis change, or flips
    // alone repair the row. Consuming flipped candidates inside one ratio
    // pass is what terminates: a zero-ratio flip makes no dual progress, so
    // without it two rows can trade the same flip back and forth forever.
    // Flips leave the basis — and therefore every candidate's alpha and
    // reduced cost — unchanged, so the ratios computed above stay valid
    // throughout the cascade.
    double remaining = best_viol;
    while (true) {
      double cur_best = kInfinity;
      for (int j = 0; j < cols_; ++j) {
        cur_best = std::min(cur_best, row_ratio_[static_cast<std::size_t>(j)]);
      }
      if (cur_best == kInfinity) return Repair::Infeasible;
      const double ratio_window = cur_best + kDualPickTie * (1.0 + cur_best);
      int enter = -1;
      double enter_dir = 0.0;
      double enter_alpha = 0.0;
      for (int j = 0; j < cols_; ++j) {
        if (row_ratio_[static_cast<std::size_t>(j)] > ratio_window) continue;
        const double a = std::abs(at(leave_row, j));
        if (a > enter_alpha * (1.0 + kDualPickTie)) {
          enter_alpha = a;
          enter = j;
          enter_dir =
              state_[static_cast<std::size_t>(j)] == VarState::AtLower ? 1.0
                                                                       : -1.0;
        }
      }
      if (enter < 0) return Repair::Infeasible;

      const double alpha = at(leave_row, enter);
      const double gain = sigma * alpha * enter_dir;  // > 0 by eligibility
      const double step = remaining / gain;           // > 0
      const double range = upper_[static_cast<std::size_t>(enter)] -
                           lower_[static_cast<std::size_t>(enter)];
      if (step <= range) {
        // --- Basis change: the violating variable leaves exactly at the
        // bound it violated; the entering variable absorbs the step.
#ifdef BIRP_LP_TRACE
        std::fprintf(stderr, "rp pivot r=%d e=%d step=%.12g\n", leave_row,
                     enter, step);
#endif
        for (int i = 0; i < rows_; ++i) {
          if (i == leave_row) continue;
          const double a = at(i, enter);
          if (a == 0.0) continue;
          const int bvar = basis_[static_cast<std::size_t>(i)];
          value_[static_cast<std::size_t>(bvar)] -= enter_dir * step * a;
        }
        const int leaving = basis_[static_cast<std::size_t>(leave_row)];
        state_[static_cast<std::size_t>(leaving)] =
            sigma > 0.0 ? VarState::AtUpper : VarState::AtLower;
        value_[static_cast<std::size_t>(leaving)] =
            sigma > 0.0 ? upper_[static_cast<std::size_t>(leaving)]
                        : lower_[static_cast<std::size_t>(leaving)];

        const double enter_value =
            value_[static_cast<std::size_t>(enter)] + enter_dir * step;
        pivot(leave_row, enter);
        basis_[static_cast<std::size_t>(leave_row)] = enter;
        state_[static_cast<std::size_t>(enter)] = VarState::Basic;
        value_[static_cast<std::size_t>(enter)] = enter_value;
        break;
      }

#ifdef BIRP_LP_TRACE
      std::fprintf(stderr, "rp flip e=%d range=%.12g\n", enter, range);
#endif
      // Box step: the entering variable hits its opposite bound before the
      // violation is fully resolved. Flip it, consume it, keep cascading;
      // the violation shrank strictly by range * |alpha|.
      for (int i = 0; i < rows_; ++i) {
        const double a = at(i, enter);
        if (a == 0.0) continue;
        const int bvar = basis_[static_cast<std::size_t>(i)];
        value_[static_cast<std::size_t>(bvar)] -= enter_dir * range * a;
      }
      auto& sj = state_[static_cast<std::size_t>(enter)];
      if (enter_dir > 0.0) {
        sj = VarState::AtUpper;
        value_[static_cast<std::size_t>(enter)] =
            upper_[static_cast<std::size_t>(enter)];
      } else {
        sj = VarState::AtLower;
        value_[static_cast<std::size_t>(enter)] =
            lower_[static_cast<std::size_t>(enter)];
      }
      row_ratio_[static_cast<std::size_t>(enter)] = kInfinity;
      remaining -= range * gain;
      if (++iterations_ > repair_limit) return Repair::GiveUp;
      if (remaining <= options_.tolerance) break;  // flips repaired the row
    }
  }
}

void DenseTableau::finish(Solution& result) {
  result.status = SolveStatus::Optimal;

  // Constraint duals: every row's slack/artificial column appears only in
  // that row with original stored coefficient +1 and zero phase-2 cost, so
  // its reduced cost is d = -y_i (stored orientation); undo the row flips
  // to express the dual against the model's orientation.
  result.duals.resize(static_cast<std::size_t>(rows_));
  for (int i = 0; i < rows_; ++i) {
    const int anchor = dual_col_[static_cast<std::size_t>(i)];
    result.duals[static_cast<std::size_t>(i)] =
        dual_sign_[static_cast<std::size_t>(i)] *
        -reduced_[static_cast<std::size_t>(anchor)];
  }

  result.values.resize(static_cast<std::size_t>(structural_));
  for (int j = 0; j < structural_; ++j) {
    double v = value_[static_cast<std::size_t>(j)];
    // Clean tiny drift against the (possibly overridden) bounds.
    v = std::max(v, lower_[static_cast<std::size_t>(j)]);
    if (std::isfinite(upper_[static_cast<std::size_t>(j)])) {
      v = std::min(v, upper_[static_cast<std::size_t>(j)]);
    }
    result.values[static_cast<std::size_t>(j)] = v;
  }
  result.objective = model_.objective_value(result.values);
}

Solution DenseTableau::solve() {
  Solution result;

  // ---- Phase I: minimize the sum of artificial variables. ----
  std::vector<double> phase1(static_cast<std::size_t>(cols_), 0.0);
  for (int j = artificial_begin_; j < cols_; ++j) {
    phase1[static_cast<std::size_t>(j)] = 1.0;
  }

  bool need_phase1 = false;
  for (int i = 0; i < rows_; ++i) {
    if (value_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] >
        options_.tolerance) {
      need_phase1 = true;
      break;
    }
  }
  if (need_phase1) {
    const SolveStatus status = iterate(phase1);
    // Phase I is bounded below by zero, so Unbounded cannot legitimately
    // occur; treat it as a numerical failure surfaced as IterationLimit.
    if (status == SolveStatus::IterationLimit ||
        status == SolveStatus::Unbounded) {
      result.status = SolveStatus::IterationLimit;
      result.simplex_iterations = iterations_;
      result.factor_pivots = factor_pivots_;
      return result;
    }
    recompute_basic_values();
    double infeasibility = 0.0;
    for (int j = artificial_begin_; j < cols_; ++j) {
      if (state_[static_cast<std::size_t>(j)] == VarState::Basic ||
          value_[static_cast<std::size_t>(j)] != 0.0) {
        infeasibility += value_[static_cast<std::size_t>(j)];
      }
    }
    // Scale-relative verdict (with the tolerance itself as the absolute
    // floor); see simplex.cpp for rationale.
    if (infeasibility >
        10.0 * options_.tolerance * (1.0 + rhs_scale_)) {
      result.status = SolveStatus::Infeasible;
      result.simplex_iterations = iterations_;
      result.factor_pivots = factor_pivots_;
      return result;
    }
  }

  // Retire artificials: they may remain basic at value zero (degenerate /
  // redundant rows) but are fixed so they can never re-enter or move.
  for (int j = artificial_begin_; j < cols_; ++j) {
    lower_[static_cast<std::size_t>(j)] = 0.0;
    upper_[static_cast<std::size_t>(j)] = 0.0;
    if (state_[static_cast<std::size_t>(j)] != VarState::Basic) {
      value_[static_cast<std::size_t>(j)] = 0.0;
      state_[static_cast<std::size_t>(j)] = VarState::AtLower;
    }
  }

  // ---- Phase II: the real objective. ----
  const SolveStatus status = iterate(phase2_costs());
  result.simplex_iterations = iterations_;
  result.factor_pivots = factor_pivots_;
  if (status == SolveStatus::Unbounded) {
    result.status = SolveStatus::Unbounded;
    return result;
  }
  if (status == SolveStatus::IterationLimit) {
    result.status = SolveStatus::IterationLimit;
    return result;
  }

  recompute_basic_values();
  finish(result);
  return result;
}

std::optional<Solution> DenseTableau::solve_warm() {
  const std::vector<double> costs = phase2_costs();
  compute_reduced_costs(costs);

  // Primal feasibility of the refactorized basis under the current bounds.
  double primal_viol = 0.0;
  for (int i = 0; i < rows_; ++i) {
    const int bvar = basis_[static_cast<std::size_t>(i)];
    const double v = value_[static_cast<std::size_t>(bvar)];
    primal_viol =
        std::max(primal_viol, v - upper_[static_cast<std::size_t>(bvar)]);
    primal_viol =
        std::max(primal_viol, lower_[static_cast<std::size_t>(bvar)] - v);
  }

  if (primal_viol > options_.tolerance) {
    // Dual repair needs a dual-feasible start. A parent-optimal basis under
    // unchanged costs has one by construction; when the costs moved since
    // the seed basis was optimal, restore it the boxed-variable way:
    // bound-flip every nonbasic variable whose reduced cost has the wrong
    // sign (flips leave the basis — and the reduced costs — unchanged).
    // Only a variable with an infinite opposite bound cannot be flipped;
    // that start goes back to the cold path.
    bool flipped = false;
    for (int j = 0; j < cols_; ++j) {
      const auto sj = state_[static_cast<std::size_t>(j)];
      if (sj == VarState::Basic) continue;
      if (lower_[static_cast<std::size_t>(j)] ==
          upper_[static_cast<std::size_t>(j)]) {
        continue;
      }
      const double d = reduced_[static_cast<std::size_t>(j)];
      if (sj == VarState::AtLower && d < -options_.tolerance) {
        if (!std::isfinite(upper_[static_cast<std::size_t>(j)])) {
          return std::nullopt;
        }
        state_[static_cast<std::size_t>(j)] = VarState::AtUpper;
        value_[static_cast<std::size_t>(j)] =
            upper_[static_cast<std::size_t>(j)];
        flipped = true;
      } else if (sj == VarState::AtUpper && d > options_.tolerance) {
        if (!std::isfinite(lower_[static_cast<std::size_t>(j)])) {
          return std::nullopt;
        }
        state_[static_cast<std::size_t>(j)] = VarState::AtLower;
        value_[static_cast<std::size_t>(j)] =
            lower_[static_cast<std::size_t>(j)];
        flipped = true;
      }
    }
    if (flipped) recompute_basic_values();
    switch (dual_repair()) {
      case Repair::GiveUp:
        return std::nullopt;  // stalled: distrust the basis, cold retry
      case Repair::Infeasible: {
        Solution result;
        result.status = SolveStatus::Infeasible;
        result.simplex_iterations = iterations_;
        result.factor_pivots = factor_pivots_;
        result.warm_started = true;
        return result;
      }
      case Repair::Done:
        break;
    }
  }

  // Phase II from a primal-feasible basis (recomputes reduced costs, so any
  // drift accumulated during repair is corrected).
  const SolveStatus status = iterate(costs);
  if (status == SolveStatus::IterationLimit) return std::nullopt;

  Solution result;
  result.simplex_iterations = iterations_;
  result.factor_pivots = factor_pivots_;
  result.warm_started = true;
  if (status == SolveStatus::Unbounded) {
    result.status = SolveStatus::Unbounded;
    return result;
  }
  recompute_basic_values();
  finish(result);
  return result;
}

Basis DenseTableau::extract_basis() const {
  Basis basis;
  basis.structural.assign(static_cast<std::size_t>(structural_),
                          VarState::AtLower);
  for (int j = 0; j < structural_; ++j) {
    basis.structural[static_cast<std::size_t>(j)] =
        state_[static_cast<std::size_t>(j)];
  }
  basis.basic.assign(static_cast<std::size_t>(rows_), -1);
  for (int i = 0; i < rows_; ++i) {
    const int col = basis_[static_cast<std::size_t>(i)];
    if (col < structural_) {
      basis.basic[static_cast<std::size_t>(i)] = col;
    } else if (col < artificial_begin_) {
      basis.basic[static_cast<std::size_t>(i)] =
          structural_ + slack_row_[static_cast<std::size_t>(col)];
    }
    // Artificial columns stay encoded as -1.
  }
  return basis;
}

}  // namespace

Solution solve_lp_dense(const Model& model, std::span<const double> lower,
                        std::span<const double> upper,
                        const SimplexOptions& options, const Basis* warm_start,
                        bool emit_basis) {
  return solve_lp_with<DenseTableau>(model, lower, upper, options, warm_start,
                                     emit_basis);
}

}  // namespace birp::solver
