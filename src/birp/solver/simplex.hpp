// Dense bounded-variable primal simplex.
//
// Solves   min c'x   s.t.   Ax {<=,>=,=} b,   l <= x <= u
// with finite lower bounds (all BIRP variables are nonnegative) and possibly
// infinite upper bounds. Two phases: Phase I drives artificial variables to
// zero; Phase II optimizes the real objective. Nonbasic variables sit at a
// bound; bound flips are handled without basis changes. Dantzig pricing with
// a Bland's-rule fallback guards against cycling under degeneracy.
//
// This solver is the LP engine under the branch-and-bound MILP solver that
// replaces the paper's Gurobi dependency; per-node bound overrides let B&B
// branch without rebuilding the model.
//
// Warm starts: solve_lp can resume from a Basis snapshot of a previous
// optimal solve of the same model shape (B&B parent node, previous slot).
// The basis is refactorized against the current bounds; primal
// infeasibilities introduced by tightened bounds are repaired with a
// bounded-variable dual simplex before Phase II polishes — Phase I never
// runs on the warm path. A singular or unrepairable basis falls back to the
// cold two-phase path, so warm starts are a pure optimization: statuses and
// objectives match the cold solver.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "birp/solver/model.hpp"
#include "birp/solver/solution.hpp"

namespace birp::solver {

struct SimplexOptions {
  /// Pivot budget; <= 0 means automatic (scales with problem size).
  std::int64_t max_iterations = 0;
  /// Feasibility / optimality tolerance.
  double tolerance = 1e-7;
  /// Minimum magnitude accepted for a pivot element.
  double pivot_tolerance = 1e-9;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  int stall_threshold = 40;
};

/// Solves the LP relaxation of `model` (integrality ignored).
[[nodiscard]] Solution solve_lp(const Model& model,
                                const SimplexOptions& options = {});

/// As above, with per-variable bound overrides (used by branch-and-bound).
/// `lower`/`upper` must each be empty or have one entry per model variable.
///
/// `warm_start`, when non-null, non-empty, and shape-compatible with the
/// model, seeds the solve from that basis (cold fallback on any mismatch,
/// singularity, or repair failure). `emit_basis` asks for Solution::basis to
/// be filled on Optimal, for reuse in a later warm start.
[[nodiscard]] Solution solve_lp(const Model& model,
                                std::span<const double> lower,
                                std::span<const double> upper,
                                const SimplexOptions& options = {},
                                const Basis* warm_start = nullptr,
                                bool emit_basis = false);

}  // namespace birp::solver
