// Bounded-variable primal simplex over sparse columns.
//
// Solves   min c'x   s.t.   Ax {<=,>=,=} b,   l <= x <= u
// with finite lower bounds (all BIRP variables are nonnegative) and possibly
// infinite upper bounds. Two phases: Phase I drives artificial variables to
// zero; Phase II optimizes the real objective. Nonbasic variables sit at a
// bound; bound flips are handled without basis changes. Dantzig pricing with
// a Bland's-rule fallback guards against cycling under degeneracy.
//
// Two interchangeable engines solve the same standard form (see
// standard_form.hpp):
//
//  - SparseRevised (default): revised simplex on a compressed-sparse-column
//    snapshot. The basis is held as a product-form LU factorization
//    (basis_lu.hpp) built with threshold partial pivoting; each pivot
//    appends one eta, and the file is rebuilt when it outgrows the
//    refactorization trigger. Pricing, the ratio test, and the dual-repair
//    path work off BTRAN/FTRAN solves, so a pivot costs O(nnz) instead of
//    the dense tableau's O(rows * cols) — this is what lets the slot
//    problem scale to hundred-edge clusters.
//  - DenseTableau: the dense Gauss–Jordan tableau kept as the bit-exact
//    reference implementation (dense_tableau.cpp) for tests and the
//    bench_solver regression arm. Memory is O(rows * cols); do not use it
//    beyond paper-scale instances.
//
// All feasibility and pivot comparisons are scale-relative: pivot
// eligibility is measured against the transformed column's (or row's)
// infinity norm, ratio-test ties against the step magnitude, and the
// Phase I infeasibility verdict against the rhs norm. Absolute cutoffs
// (1e-12 / 1e-6 historically) misfire as coefficients scale — tiny uniform
// scaling rejected every ratio-test pivot, huge rhs norms turned rounding
// noise into spurious Infeasible verdicts.
//
// This solver is the LP engine under the branch-and-bound MILP solver that
// replaces the paper's Gurobi dependency; per-node bound overrides let B&B
// branch without rebuilding the model.
//
// Warm starts: solve_lp can resume from a Basis snapshot of a previous
// optimal solve of the same model shape (B&B parent node, previous slot).
// The basis is refactorized against the current bounds; primal
// infeasibilities introduced by tightened bounds are repaired with a
// bounded-variable dual simplex before Phase II polishes — Phase I never
// runs on the warm path. A singular or unrepairable basis falls back to the
// cold two-phase path, so warm starts are a pure optimization: statuses and
// objectives match the cold solver. The Basis encoding and the
// warm-attempt accounting are engine-independent (lp_engine.hpp), so a
// basis emitted by one engine warm-starts the other.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "birp/solver/model.hpp"
#include "birp/solver/solution.hpp"

namespace birp::solver {

/// LP engine selection; see the header comment.
enum class SimplexAlgorithm : std::uint8_t {
  SparseRevised,  ///< revised simplex + product-form LU (default)
  DenseTableau,   ///< dense Gauss–Jordan tableau (reference / A-B baseline)
};

struct SimplexOptions {
  /// Pivot budget; <= 0 means automatic (scales with problem size).
  std::int64_t max_iterations = 0;
  /// Feasibility / optimality tolerance.
  double tolerance = 1e-7;
  /// Minimum magnitude accepted for a pivot element, relative to the
  /// transformed column's (or pivot row's) infinity norm.
  double pivot_tolerance = 1e-9;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  int stall_threshold = 40;
  /// Engine selection. SparseRevised is the production path; DenseTableau
  /// is kept for reference tests and the bench_solver regression arm.
  SimplexAlgorithm algorithm = SimplexAlgorithm::SparseRevised;
  /// SparseRevised only: eta updates appended before the basis is
  /// refactorized from scratch (the file is also rebuilt early when its
  /// fill outgrows the factorization; see BasisLu::should_refactorize).
  int refactor_interval = 96;
  /// SparseRevised only: threshold partial pivoting acceptance for the LU
  /// factorization — a row is an eligible pivot when it reaches this
  /// fraction of the column maximum.
  double lu_pivot_threshold = 0.1;
};

/// Solves the LP relaxation of `model` (integrality ignored).
[[nodiscard]] Solution solve_lp(const Model& model,
                                const SimplexOptions& options = {});

/// As above, with per-variable bound overrides (used by branch-and-bound).
/// `lower`/`upper` must each be empty or have one entry per model variable.
///
/// `warm_start`, when non-null, non-empty, and shape-compatible with the
/// model, seeds the solve from that basis (cold fallback on any mismatch,
/// singularity, or repair failure). `emit_basis` asks for Solution::basis to
/// be filled on Optimal, for reuse in a later warm start.
[[nodiscard]] Solution solve_lp(const Model& model,
                                std::span<const double> lower,
                                std::span<const double> upper,
                                const SimplexOptions& options = {},
                                const Basis* warm_start = nullptr,
                                bool emit_basis = false);

}  // namespace birp::solver
