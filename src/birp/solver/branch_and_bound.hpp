// Branch-and-bound MILP solver over the bounded-variable simplex.
//
// Best-first search on the LP relaxation bound with most-fractional
// branching, a rounding heuristic at every node to seed incumbents early,
// and a node budget so per-slot scheduling stays real-time even when the
// tree would otherwise be deep. With the default budget the solver proves
// optimality on the instance sizes BIRP produces; when the budget is hit it
// returns the best incumbent with status Feasible plus the proven bound.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "birp/solver/model.hpp"
#include "birp/solver/simplex.hpp"
#include "birp/solver/solution.hpp"

namespace birp::solver {

/// Optional problem-specific primal heuristic: given a (fractional) LP
/// point, return a feasible integral candidate, or an empty vector when no
/// repair was possible. Candidates are verified against the model before
/// acceptance, so the heuristic may be approximate.
using IncumbentHeuristic =
    std::function<std::vector<double>(std::span<const double> lp_values)>;

struct BranchAndBoundOptions {
  std::int64_t max_nodes = 20000;
  /// Relative optimality gap at which search stops early.
  double relative_gap = 1e-6;
  /// Values within this distance of an integer are considered integral.
  double integrality_tolerance = 1e-6;
  SimplexOptions lp;
  /// Problem-specific rounding/repair; naive nearest-integer rounding is
  /// always tried as well.
  IncumbentHeuristic incumbent_heuristic;
};

/// Solves `model` to (attempted) integral optimality. Continuous variables
/// remain continuous. Integrality of Binary/Integer variables is enforced by
/// branching on bounds.
[[nodiscard]] Solution solve_milp(const Model& model,
                                  const BranchAndBoundOptions& options = {});

}  // namespace birp::solver
