// Branch-and-bound MILP solver over the bounded-variable simplex.
//
// Best-first search on the LP relaxation bound with most-fractional
// branching, a rounding heuristic at every node to seed incumbents early,
// and a node budget so per-slot scheduling stays real-time even when the
// tree would otherwise be deep. With the default budget the solver proves
// optimality on the instance sizes BIRP produces; when the budget is hit it
// returns the best incumbent with status Feasible plus the proven bound.
//
// Performance machinery (all optional, all bit-deterministic):
//  - Nodes store a parent pointer plus one bound delta instead of full
//    lower/upper vectors; bounds are materialized on demand.
//  - Each node LP warm-starts from its parent's optimal basis (see
//    simplex.hpp); cold fallback keeps results identical.
//  - Frontier nodes are evaluated in fixed-size waves, concurrently when a
//    ThreadPool is supplied. Wave composition and the sequential merge order
//    depend only on the node numbering, never on thread count, so results
//    are bit-identical serial vs parallel.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "birp/solver/model.hpp"
#include "birp/solver/simplex.hpp"
#include "birp/solver/solution.hpp"

namespace birp::runtime {
class ThreadPool;
}  // namespace birp::runtime

namespace birp::solver {

/// Optional problem-specific primal heuristic: given a (fractional) LP
/// point, return a feasible integral candidate, or an empty vector when no
/// repair was possible. Candidates are verified against the model before
/// acceptance, so the heuristic may be approximate.
using IncumbentHeuristic =
    std::function<std::vector<double>(std::span<const double> lp_values)>;

struct BranchAndBoundOptions {
  std::int64_t max_nodes = 20000;
  /// Relative optimality gap at which search stops early.
  double relative_gap = 1e-6;
  /// Values within this distance of an integer are considered integral.
  double integrality_tolerance = 1e-6;
  SimplexOptions lp;
  /// Problem-specific rounding/repair; naive nearest-integer rounding is
  /// always tried as well.
  IncumbentHeuristic incumbent_heuristic;

  /// Warm-start child node LPs from their parent's optimal basis (and the
  /// root LP from `root_basis`). Falls back to cold solves transparently;
  /// disable only for A/B measurement.
  bool warm_start = true;
  /// Evaluate node LPs of a wave concurrently on this pool (not owned).
  /// Null runs the waves on the calling thread. Results are bit-identical
  /// either way.
  runtime::ThreadPool* pool = nullptr;
  /// Frontier nodes popped (and solved) per wave. Fixed independently of
  /// thread count — this, not the pool size, shapes the search tree, which
  /// is what makes parallel results reproducible. 1 recovers the classic
  /// one-node-at-a-time best-first loop.
  int wave_size = 8;
  /// Optional basis seeding the root relaxation (cross-slot warm start).
  /// Not owned; must outlive the solve. Ignored unless warm_start is set.
  const Basis* root_basis = nullptr;
  /// Optional integral candidate tried as the initial incumbent before any
  /// node is explored (e.g. the previous slot's repaired decision). Verified
  /// against the model; an infeasible seed is simply ignored.
  std::vector<double> seed_candidate;
};

/// Solves `model` to (attempted) integral optimality. Continuous variables
/// remain continuous. Integrality of Binary/Integer variables is enforced by
/// branching on bounds.
[[nodiscard]] Solution solve_milp(const Model& model,
                                  const BranchAndBoundOptions& options = {});

}  // namespace birp::solver
