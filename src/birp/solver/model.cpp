#include "birp/solver/model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "birp/util/check.hpp"

namespace birp::solver {

int Model::add_variable(std::string name, double lower, double upper,
                        VarType type) {
  util::check(std::isfinite(lower), "variable lower bound must be finite");
  util::check(lower <= upper, "variable bounds crossed: " + name);
  if (type == VarType::Binary) {
    util::check(lower >= 0.0 && upper <= 1.0, "binary bounds outside [0,1]");
  }
  VariableInfo info;
  info.name = std::move(name);
  info.lower = lower;
  info.upper = upper;
  info.type = type;
  variables_.push_back(std::move(info));
  if (type != VarType::Continuous) ++integer_count_;
  return static_cast<int>(variables_.size()) - 1;
}

void Model::set_objective(int var, double coeff) {
  util::check(var >= 0 && var < num_variables(), "set_objective: bad index");
  variables_[static_cast<std::size_t>(var)].objective = coeff;
}

int Model::add_constraint(std::span<const Term> terms, Relation relation,
                          double rhs, std::string name) {
  util::check(std::isfinite(rhs), "constraint rhs must be finite");
  // Combine duplicate variables so the simplex sees each column once per row.
  std::map<int, double> combined;
  for (const auto& term : terms) {
    util::check(term.var >= 0 && term.var < num_variables(),
                "constraint references unknown variable");
    util::check(std::isfinite(term.coeff), "constraint coeff must be finite");
    combined[term.var] += term.coeff;
  }
  Constraint constraint;
  constraint.relation = relation;
  constraint.rhs = rhs;
  constraint.name = std::move(name);
  constraint.terms.reserve(combined.size());
  for (const auto& [var, coeff] : combined) {
    if (coeff != 0.0) constraint.terms.push_back({var, coeff});
  }
  constraints_.push_back(std::move(constraint));
  return static_cast<int>(constraints_.size()) - 1;
}

int Model::add_constraint(std::initializer_list<Term> terms, Relation relation,
                          double rhs, std::string name) {
  return add_constraint(std::span<const Term>(terms.begin(), terms.size()),
                        relation, rhs, std::move(name));
}

int Model::add_product(int binary_var, int int_var, std::string name) {
  util::check(binary_var >= 0 && binary_var < num_variables(),
              "add_product: bad binary index");
  util::check(int_var >= 0 && int_var < num_variables(),
              "add_product: bad integer index");
  const auto& x = variables_[static_cast<std::size_t>(binary_var)];
  const auto& b = variables_[static_cast<std::size_t>(int_var)];
  util::check(x.type == VarType::Binary, "add_product: first factor not binary");
  util::check(b.lower == 0.0, "add_product: integer factor must have lower 0");
  util::check(std::isfinite(b.upper), "add_product: integer factor needs finite upper");
  const double upper = b.upper;

  if (name.empty()) name = "prod(" + x.name + "," + b.name + ")";
  const int z = add_continuous(name, 0.0, upper);

  // McCormick envelope — exact for binary x and b in [0, U].
  add_constraint({{z, 1.0}, {binary_var, -upper}}, Relation::LessEqual, 0.0,
                 name + ":le_Ux");
  add_constraint({{z, 1.0}, {int_var, -1.0}}, Relation::LessEqual, 0.0,
                 name + ":le_b");
  add_constraint({{z, 1.0}, {int_var, -1.0}, {binary_var, -upper}},
                 Relation::GreaterEqual, -upper, name + ":ge_b_minus_U");
  return z;
}

const VariableInfo& Model::variable(int index) const {
  util::check(index >= 0 && index < num_variables(), "variable: bad index");
  return variables_[static_cast<std::size_t>(index)];
}

const Constraint& Model::constraint(int index) const {
  util::check(index >= 0 && index < num_constraints(), "constraint: bad index");
  return constraints_[static_cast<std::size_t>(index)];
}

double Model::objective_value(std::span<const double> values) const {
  util::check(values.size() == variables_.size(),
              "objective_value: size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    total += variables_[i].objective * values[i];
  }
  return total;
}

double Model::max_violation(std::span<const double> values) const {
  util::check(values.size() == variables_.size(), "max_violation: size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    worst = std::max(worst, variables_[i].lower - values[i]);
    if (std::isfinite(variables_[i].upper)) {
      worst = std::max(worst, values[i] - variables_[i].upper);
    }
  }
  for (const auto& constraint : constraints_) {
    double lhs = 0.0;
    for (const auto& term : constraint.terms) {
      lhs += term.coeff * values[static_cast<std::size_t>(term.var)];
    }
    switch (constraint.relation) {
      case Relation::LessEqual:
        worst = std::max(worst, lhs - constraint.rhs);
        break;
      case Relation::GreaterEqual:
        worst = std::max(worst, constraint.rhs - lhs);
        break;
      case Relation::Equal:
        worst = std::max(worst, std::abs(lhs - constraint.rhs));
        break;
    }
  }
  return worst;
}

double Model::max_integrality_violation(std::span<const double> values) const {
  util::check(values.size() == variables_.size(),
              "max_integrality_violation: size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    if (variables_[i].type == VarType::Continuous) continue;
    const double v = values[i];
    worst = std::max(worst, std::abs(v - std::round(v)));
  }
  return worst;
}

}  // namespace birp::solver
