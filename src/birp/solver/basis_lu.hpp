// Product-form LU factorization of a simplex basis over sparse columns.
//
// The basis inverse is represented as a product of elimination etas,
//   B^{-1} = E_k^{-1} · ... · E_1^{-1},
// where each eta records one Gauss–Jordan elimination step (the pivot row,
// the inverse pivot, and the off-pivot column entries). `factorize` builds
// the file from scratch with threshold partial pivoting over the basic
// columns (processed sparsest-first so slack/artificial singletons cost
// nothing and structural columns meet a mostly-triangular prefix);
// `update` appends one eta per simplex pivot (the product-form flavour of
// the Forrest–Tomlin update, exact for the same reason: the new basis
// differs from the old by one column, and the appended eta is precisely the
// elimination that maps the FTRANed entering column to a unit vector).
//
// FTRAN applies the file in creation order (x := B^{-1} x, used for the
// transformed entering column and for basic-value recomputation); BTRAN
// applies the transposed etas in reverse (y := B^{-T} y, used for duals and
// pricing). `should_refactorize` triggers a rebuild when the eta file has
// grown past the point where a fresh factorization is cheaper than dragging
// the file through every solve — eta growth is also where numerical drift
// accumulates, so the trigger doubles as the drift bound.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "birp/solver/standard_form.hpp"

namespace birp::solver {

class BasisLu {
 public:
  /// Resets to the identity basis of `rows` rows (the cold Phase I start:
  /// every initial basic column is a unit vector after the row flips).
  void reset_identity(int rows);

  /// Factorizes the basis {basic_cols} from scratch. On success fills
  /// `basis_of_row` (basic column per pivot row) and returns true; on a
  /// numerically singular basis returns false with the eliminations spent
  /// so far still counted in factor_pivots(). `threshold` is the threshold
  /// partial pivoting relative acceptance (a row is an eligible pivot when
  /// its magnitude is at least `threshold` times the column maximum; ties
  /// break to the smallest row index, deterministically).
  [[nodiscard]] bool factorize(const StandardForm& form,
                               std::span<const int> basic_cols,
                               double pivot_tolerance, double threshold,
                               std::vector<int>& basis_of_row);

  /// x := B^{-1} x (dense scratch, size rows).
  void ftran(std::span<double> x) const;

  /// y := B^{-T} y (dense scratch, size rows).
  void btran(std::span<double> y) const;

  /// Appends the product-form eta for a pivot at `pivot_row` on the
  /// FTRANed entering column `alpha`. Returns false (leaving the file
  /// unchanged) when the pivot element is too small relative to the
  /// column's magnitude; the caller should refactorize instead.
  [[nodiscard]] bool update(std::span<const double> alpha, int pivot_row,
                            double pivot_tolerance);

  /// Eta-file growth trigger: true once `interval` updates have been
  /// appended since the last factorization, or the update etas' fill
  /// exceeds the factorization's own size.
  [[nodiscard]] bool should_refactorize(int interval) const noexcept {
    return updates_since_factor_ >= interval ||
           update_nnz_ > 2 * (factor_nnz_ + static_cast<std::int64_t>(rows_));
  }

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int updates_since_factor() const noexcept {
    return updates_since_factor_;
  }
  [[nodiscard]] std::int64_t factor_pivots() const noexcept {
    return factor_pivots_;
  }
  [[nodiscard]] std::size_t eta_count() const noexcept { return etas_.size(); }

 private:
  struct Eta {
    int pivot_row = -1;
    double inv_pivot = 0.0;
    int begin = 0;  ///< range into entry_row_/entry_value_ (pivot excluded)
    int end = 0;
  };

  void append_eta(std::span<const double> column, int pivot_row);
  /// Factorization-only FTRAN over `work_` that records every row the eta
  /// file fills in (so the scatter/scan/clear cost of one column is O(its
  /// transformed fill), not O(rows)).
  void ftran_tracked();

  int rows_ = 0;
  std::vector<Eta> etas_;
  std::vector<int> entry_row_;
  std::vector<double> entry_value_;
  std::vector<double> work_;    ///< factorization scratch, size rows
  std::vector<int> touched_;    ///< rows of work_ currently nonzero
  std::vector<char> in_touched_;  ///< membership bitmap for touched_

  int updates_since_factor_ = 0;
  std::int64_t factor_nnz_ = 0;
  std::int64_t update_nnz_ = 0;
  std::int64_t factor_pivots_ = 0;  ///< cumulative eliminations (all factorizes)
};

}  // namespace birp::solver
