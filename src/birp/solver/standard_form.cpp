#include "birp/solver/standard_form.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "birp/util/check.hpp"

namespace birp::solver {
namespace {

/// Scatter per-column (row, value) buckets into the CSC arrays and record
/// the per-column infinity norms.
void flatten_columns(
    StandardForm& form,
    const std::vector<std::vector<std::pair<int, double>>>& columns) {
  form.col_start.assign(static_cast<std::size_t>(form.cols) + 1, 0);
  std::size_t nnz = 0;
  for (int j = 0; j < form.cols; ++j) {
    nnz += columns[static_cast<std::size_t>(j)].size();
  }
  form.row_index.reserve(nnz);
  form.values.reserve(nnz);
  form.col_scale.assign(static_cast<std::size_t>(form.cols), 0.0);
  for (int j = 0; j < form.cols; ++j) {
    form.col_start[static_cast<std::size_t>(j)] =
        static_cast<int>(form.row_index.size());
    double scale = 0.0;
    for (const auto& [row, coeff] : columns[static_cast<std::size_t>(j)]) {
      form.row_index.push_back(row);
      form.values.push_back(coeff);
      scale = std::max(scale, std::abs(coeff));
    }
    form.col_scale[static_cast<std::size_t>(j)] = scale;
  }
  form.col_start[static_cast<std::size_t>(form.cols)] =
      static_cast<int>(form.row_index.size());
  form.rhs_scale = 0.0;
  for (const double b : form.rhs) {
    form.rhs_scale = std::max(form.rhs_scale, std::abs(b));
  }
}

void init_shared(StandardForm& form) {
  const auto cols = static_cast<std::size_t>(form.cols);
  form.rhs.assign(static_cast<std::size_t>(form.rows), 0.0);
  form.lower.assign(cols, 0.0);
  form.upper.assign(cols, kInfinity);
  form.state.assign(cols, VarState::AtLower);
  form.value.assign(cols, 0.0);
  form.basis.assign(static_cast<std::size_t>(form.rows), -1);
  form.slack_row.assign(cols, -1);
  form.dual_col.assign(static_cast<std::size_t>(form.rows), -1);
  form.dual_sign.assign(static_cast<std::size_t>(form.rows), 1.0);
}

}  // namespace

StandardForm build_standard_form(const Model& model,
                                 std::span<const double> lower_override,
                                 std::span<const double> upper_override) {
  StandardForm form;
  const int m = model.num_constraints();
  const int n_struct = model.num_variables();
  form.rows = m;
  form.structural = n_struct;

  // Starting point: every structural variable at its (overridden) lower
  // bound. Residuals against that point decide which rows need an
  // artificial; inequality rows whose slack absorbs the residual start with
  // the slack basic, which removes the vast majority of Phase I work.
  std::vector<double> start_value(static_cast<std::size_t>(n_struct));
  for (int j = 0; j < n_struct; ++j) {
    const double lo = lower_override.empty()
                          ? model.variable(j).lower
                          : lower_override[static_cast<std::size_t>(j)];
    util::check(std::isfinite(lo), "simplex requires finite lower bounds");
    start_value[static_cast<std::size_t>(j)] = lo;
  }

  int slack_count = 0;
  for (const auto& constraint : model.constraints()) {
    if (constraint.relation != Relation::Equal) ++slack_count;
  }
  form.artificial_begin = n_struct + slack_count;

  std::vector<double> residual(static_cast<std::size_t>(m));
  std::vector<bool> needs_artificial(static_cast<std::size_t>(m), false);
  int artificial_count = 0;
  for (int i = 0; i < m; ++i) {
    const auto& constraint = model.constraint(i);
    double r = constraint.rhs;
    for (const auto& term : constraint.terms) {
      r -= term.coeff * start_value[static_cast<std::size_t>(term.var)];
    }
    residual[static_cast<std::size_t>(i)] = r;
    bool slack_ok = false;
    switch (constraint.relation) {
      case Relation::LessEqual:
        slack_ok = r >= 0.0;  // slack in [0, inf)
        break;
      case Relation::GreaterEqual:
        slack_ok = r <= 0.0;  // surplus absorbs -residual
        break;
      case Relation::Equal:
        slack_ok = false;  // no slack column: always needs an artificial
        break;
    }
    if (!slack_ok) {
      needs_artificial[static_cast<std::size_t>(i)] = true;
      ++artificial_count;
    }
  }
  form.cols = form.artificial_begin + artificial_count;
  init_shared(form);

  // Structural bounds (with branch-and-bound overrides), nonbasic at lower.
  for (int j = 0; j < n_struct; ++j) {
    const double hi = upper_override.empty()
                          ? model.variable(j).upper
                          : upper_override[static_cast<std::size_t>(j)];
    form.lower[static_cast<std::size_t>(j)] =
        start_value[static_cast<std::size_t>(j)];
    form.upper[static_cast<std::size_t>(j)] = hi;
    form.value[static_cast<std::size_t>(j)] =
        start_value[static_cast<std::size_t>(j)];
  }

  // Row orientation: >= rows are flipped so the surplus has coefficient +1;
  // artificial rows are flipped again where needed so the Phase I start is
  // nonnegative. The combined sign is applied to every stored coefficient
  // (including the slack, which is written between the two flips) and
  // remembered in dual_sign so duals can be reported against the model's
  // orientation.
  std::vector<std::vector<std::pair<int, double>>> columns(
      static_cast<std::size_t>(form.cols));
  int slack = n_struct;
  int artificial = form.artificial_begin;
  for (int i = 0; i < m; ++i) {
    const auto& constraint = model.constraint(i);
    const double flip1 =
        constraint.relation == Relation::GreaterEqual ? -1.0 : 1.0;
    double r = flip1 * residual[static_cast<std::size_t>(i)];
    double flip2 = 1.0;
    if (needs_artificial[static_cast<std::size_t>(i)] && r < 0.0) {
      flip2 = -1.0;
      r = -r;
    }
    const double sign = flip1 * flip2;
    for (const auto& term : constraint.terms) {
      if (term.coeff == 0.0) continue;
      columns[static_cast<std::size_t>(term.var)].emplace_back(
          i, sign * term.coeff);
    }
    form.rhs[static_cast<std::size_t>(i)] = sign * constraint.rhs;
    form.dual_sign[static_cast<std::size_t>(i)] = sign;

    int slack_col = -1;
    if (constraint.relation != Relation::Equal) {
      slack_col = slack++;
      columns[static_cast<std::size_t>(slack_col)].emplace_back(i, flip2);
      form.slack_row[static_cast<std::size_t>(slack_col)] = i;
    }
    if (!needs_artificial[static_cast<std::size_t>(i)]) {
      // Slack absorbs the residual (>= 0 after the flip): basic immediately.
      form.basis[static_cast<std::size_t>(i)] = slack_col;
      form.state[static_cast<std::size_t>(slack_col)] = VarState::Basic;
      form.value[static_cast<std::size_t>(slack_col)] = r;
      form.dual_col[static_cast<std::size_t>(i)] = slack_col;
      continue;
    }
    const int art_col = artificial++;
    columns[static_cast<std::size_t>(art_col)].emplace_back(i, 1.0);
    form.basis[static_cast<std::size_t>(i)] = art_col;
    form.state[static_cast<std::size_t>(art_col)] = VarState::Basic;
    form.value[static_cast<std::size_t>(art_col)] = r;
    // The artificial anchors the dual: it appears only in this row with
    // stored coefficient +1 and phase-2 cost 0, so y_i = -d_artificial.
    form.dual_col[static_cast<std::size_t>(i)] = art_col;
    form.slack_row[static_cast<std::size_t>(art_col)] = i;
  }

  flatten_columns(form, columns);
  form.ok = true;
  return form;
}

StandardForm build_standard_form(const Model& model,
                                 std::span<const double> lower_override,
                                 std::span<const double> upper_override,
                                 const Basis& warm) {
  StandardForm form;
  const int m = model.num_constraints();
  const int n_struct = model.num_variables();
  form.rows = m;
  form.structural = n_struct;
  if (!warm.matches(n_struct, m)) return form;  // ok stays false

  // Layout: slack per inequality row (same order as the cold path), then one
  // artificial per equality row (the dual anchor) or per row whose recorded
  // basic column was an artificial. All artificials are fixed at [0, 0]; the
  // warm path never runs Phase I.
  std::vector<int> slack_col(static_cast<std::size_t>(m), -1);
  std::vector<int> art_col(static_cast<std::size_t>(m), -1);
  int slack_count = 0;
  for (int i = 0; i < m; ++i) {
    if (model.constraint(i).relation != Relation::Equal) {
      slack_col[static_cast<std::size_t>(i)] = n_struct + slack_count;
      ++slack_count;
    }
  }
  form.artificial_begin = n_struct + slack_count;
  int artificial_count = 0;
  for (int i = 0; i < m; ++i) {
    const bool is_equal = model.constraint(i).relation == Relation::Equal;
    if (is_equal || warm.basic[static_cast<std::size_t>(i)] < 0) {
      art_col[static_cast<std::size_t>(i)] =
          form.artificial_begin + artificial_count;
      ++artificial_count;
    }
  }
  form.cols = form.artificial_begin + artificial_count;
  init_shared(form);

  for (int j = 0; j < n_struct; ++j) {
    const double lo = lower_override.empty()
                          ? model.variable(j).lower
                          : lower_override[static_cast<std::size_t>(j)];
    const double hi = upper_override.empty()
                          ? model.variable(j).upper
                          : upper_override[static_cast<std::size_t>(j)];
    util::check(std::isfinite(lo), "simplex requires finite lower bounds");
    form.lower[static_cast<std::size_t>(j)] = lo;
    form.upper[static_cast<std::size_t>(j)] = hi;
  }

  // Fill coefficients. Only the deterministic >= flip is applied (the cold
  // path's residual-dependent flips exist to make Phase I starts positive,
  // which the warm path does not need).
  std::vector<std::vector<std::pair<int, double>>> columns(
      static_cast<std::size_t>(form.cols));
  for (int i = 0; i < m; ++i) {
    const auto& constraint = model.constraint(i);
    const double sign =
        constraint.relation == Relation::GreaterEqual ? -1.0 : 1.0;
    for (const auto& term : constraint.terms) {
      if (term.coeff == 0.0) continue;
      columns[static_cast<std::size_t>(term.var)].emplace_back(
          i, sign * term.coeff);
    }
    form.rhs[static_cast<std::size_t>(i)] = sign * constraint.rhs;
    form.dual_sign[static_cast<std::size_t>(i)] = sign;
    const int sc = slack_col[static_cast<std::size_t>(i)];
    if (sc >= 0) {
      columns[static_cast<std::size_t>(sc)].emplace_back(i, 1.0);
      form.slack_row[static_cast<std::size_t>(sc)] = i;
    }
    const int ac = art_col[static_cast<std::size_t>(i)];
    if (ac >= 0) {
      columns[static_cast<std::size_t>(ac)].emplace_back(i, 1.0);
      form.upper[static_cast<std::size_t>(ac)] = 0.0;  // fixed at zero
      form.slack_row[static_cast<std::size_t>(ac)] = i;
    }
    // Dual anchor: slack where one exists, artificial for equality rows.
    form.dual_col[static_cast<std::size_t>(i)] = sc >= 0 ? sc : ac;
  }

  // Nonbasic starting point from the recorded states (the basic list below
  // overrides). A variable recorded AtUpper whose current upper bound is
  // infinite is parked at its lower bound instead.
  for (int j = 0; j < n_struct; ++j) {
    const bool at_upper =
        warm.structural[static_cast<std::size_t>(j)] == VarState::AtUpper &&
        std::isfinite(form.upper[static_cast<std::size_t>(j)]);
    form.state[static_cast<std::size_t>(j)] =
        at_upper ? VarState::AtUpper : VarState::AtLower;
    form.value[static_cast<std::size_t>(j)] =
        at_upper ? form.upper[static_cast<std::size_t>(j)]
                 : form.lower[static_cast<std::size_t>(j)];
  }

  // Decode the basic column list; reject malformed bases (out-of-range
  // entries, slack of an equality row, duplicates).
  form.basic_cols.assign(static_cast<std::size_t>(m), -1);
  for (int i = 0; i < m; ++i) {
    const int code = warm.basic[static_cast<std::size_t>(i)];
    int col = -1;
    if (code < 0) {
      col = art_col[static_cast<std::size_t>(i)];
    } else if (code < n_struct) {
      col = code;
    } else if (code - n_struct < m) {
      col = slack_col[static_cast<std::size_t>(code - n_struct)];
    }
    if (col < 0 || form.state[static_cast<std::size_t>(col)] == VarState::Basic) {
      return form;  // invalid or duplicate: cold fallback (ok stays false)
    }
    form.state[static_cast<std::size_t>(col)] = VarState::Basic;
    form.basic_cols[static_cast<std::size_t>(i)] = col;
  }

  flatten_columns(form, columns);
  form.ok = true;
  return form;
}

}  // namespace birp::solver
