#include "birp/solver/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "birp/util/check.hpp"

namespace birp::solver {
namespace {

struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  double bound = -std::numeric_limits<double>::infinity();
  int depth = 0;
};

struct NodeOrder {
  // Best-first: smaller LP bound explored first; deeper nodes win ties so the
  // search dives toward incumbents.
  bool operator()(const std::shared_ptr<Node>& a,
                  const std::shared_ptr<Node>& b) const {
    if (a->bound != b->bound) return a->bound > b->bound;
    return a->depth < b->depth;
  }
};

/// Picks the integer variable whose LP value is most fractional.
int most_fractional(const Model& model, std::span<const double> values,
                    double tol) {
  int best = -1;
  double best_score = tol;
  for (int j = 0; j < model.num_variables(); ++j) {
    if (model.variable(j).type == VarType::Continuous) continue;
    const double v = values[static_cast<std::size_t>(j)];
    const double frac = std::abs(v - std::round(v));
    // Score favors fractions near 0.5.
    const double score = std::min(v - std::floor(v), std::ceil(v) - v);
    if (frac > tol && score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

/// Rounds the LP point to the nearest integers and accepts it as an
/// incumbent when it satisfies all constraints. Cheap and surprisingly
/// effective on BIRP's near-network structure.
bool try_rounding(const Model& model, std::span<const double> lp_values,
                  std::vector<double>& out, double feasibility_tol) {
  out.assign(lp_values.begin(), lp_values.end());
  for (int j = 0; j < model.num_variables(); ++j) {
    if (model.variable(j).type == VarType::Continuous) continue;
    auto& v = out[static_cast<std::size_t>(j)];
    v = std::round(v);
    v = std::max(v, model.variable(j).lower);
    if (std::isfinite(model.variable(j).upper)) {
      v = std::min(v, model.variable(j).upper);
    }
  }
  return model.max_violation(out) <= feasibility_tol;
}

}  // namespace

Solution solve_milp(const Model& model, const BranchAndBoundOptions& options) {
  if (!model.has_integers()) return solve_lp(model, options.lp);

  const auto n = static_cast<std::size_t>(model.num_variables());

  Solution incumbent;
  incumbent.status = SolveStatus::IterationLimit;
  double incumbent_objective = std::numeric_limits<double>::infinity();

  auto root = std::make_shared<Node>();
  root->lower.resize(n);
  root->upper.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    root->lower[j] = model.variable(static_cast<int>(j)).lower;
    root->upper[j] = model.variable(static_cast<int>(j)).upper;
    // Tighten integer bounds to integral values up front.
    if (model.variable(static_cast<int>(j)).type != VarType::Continuous) {
      root->lower[j] = std::ceil(root->lower[j] - 1e-9);
      if (std::isfinite(root->upper[j])) {
        root->upper[j] = std::floor(root->upper[j] + 1e-9);
      }
    }
  }

  std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>,
                      NodeOrder>
      open;
  open.push(root);

  std::int64_t nodes = 0;
  std::int64_t total_pivots = 0;
  double best_open_bound = -std::numeric_limits<double>::infinity();
  bool any_lp_budget_hit = false;
  std::vector<double> rounded;

  while (!open.empty() && nodes < options.max_nodes) {
    const auto node = open.top();
    open.pop();
    ++nodes;

    // Bound pruning against the incumbent.
    if (node->bound >= incumbent_objective - options.relative_gap *
                                                 (1.0 + std::abs(incumbent_objective))) {
      continue;
    }

    Solution lp = solve_lp(model, node->lower, node->upper, options.lp);
    total_pivots += lp.simplex_iterations;
    if (lp.status == SolveStatus::Infeasible) continue;
    if (lp.status == SolveStatus::Unbounded) {
      // An unbounded relaxation at the root means the MILP is unbounded or
      // ill-posed; deeper nodes inherit the verdict.
      Solution result;
      result.status = SolveStatus::Unbounded;
      result.nodes_explored = nodes;
      result.simplex_iterations = total_pivots;
      return result;
    }
    if (lp.status == SolveStatus::IterationLimit) {
      any_lp_budget_hit = true;
      continue;  // cannot trust this subtree's bound; drop it
    }

    if (lp.objective >= incumbent_objective - options.relative_gap *
                                                  (1.0 + std::abs(incumbent_objective))) {
      continue;
    }
    best_open_bound = open.empty()
                          ? lp.objective
                          : std::min(lp.objective, open.top()->bound);

    const int branch_var =
        most_fractional(model, lp.values, options.integrality_tolerance);
    if (branch_var < 0) {
      // Integral LP optimum: new incumbent.
      if (lp.objective < incumbent_objective) {
        incumbent_objective = lp.objective;
        incumbent.values = lp.values;
        incumbent.objective = lp.objective;
        incumbent.status = SolveStatus::Feasible;
      }
      continue;
    }

    // Heuristic incumbents: naive rounding plus the caller's repair
    // heuristic (verified against the model before acceptance).
    const auto consider = [&](const std::vector<double>& candidate) {
      if (candidate.size() != n) return;
      if (model.max_violation(candidate) > options.lp.tolerance * 10) return;
      if (model.max_integrality_violation(candidate) >
          options.integrality_tolerance) {
        return;
      }
      const double obj = model.objective_value(candidate);
      if (obj < incumbent_objective) {
        incumbent_objective = obj;
        incumbent.values = candidate;
        incumbent.objective = obj;
        incumbent.status = SolveStatus::Feasible;
      }
    };
    if (try_rounding(model, lp.values, rounded, options.lp.tolerance * 10)) {
      consider(rounded);
    }
    if (options.incumbent_heuristic) {
      consider(options.incumbent_heuristic(lp.values));
    }

    const double v = lp.values[static_cast<std::size_t>(branch_var)];
    auto down = std::make_shared<Node>(*node);
    down->upper[static_cast<std::size_t>(branch_var)] = std::floor(v);
    down->bound = lp.objective;
    down->depth = node->depth + 1;
    auto up = std::make_shared<Node>(*node);
    up->lower[static_cast<std::size_t>(branch_var)] = std::ceil(v);
    up->bound = lp.objective;
    up->depth = node->depth + 1;
    open.push(std::move(down));
    open.push(std::move(up));
  }

  incumbent.nodes_explored = nodes;
  incumbent.simplex_iterations = total_pivots;

  if (incumbent.values.empty()) {
    // No feasible integral point found. If the search space was exhausted
    // without LP failures the model is genuinely infeasible.
    incumbent.status = (open.empty() && !any_lp_budget_hit)
                           ? SolveStatus::Infeasible
                           : SolveStatus::IterationLimit;
    return incumbent;
  }

  if (open.empty() && !any_lp_budget_hit) {
    incumbent.status = SolveStatus::Optimal;
    incumbent.best_bound = incumbent.objective;
  } else {
    incumbent.status = SolveStatus::Feasible;
    incumbent.best_bound = open.empty() ? best_open_bound : open.top()->bound;
  }
  return incumbent;
}

}  // namespace birp::solver
