#include "birp/solver/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#ifdef BIRP_LP_TRACE
#include <cstdio>
#endif
#include <future>
#include <limits>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "birp/runtime/thread_pool.hpp"
#include "birp/util/check.hpp"

namespace birp::solver {
namespace {

/// One branch-and-bound node. Bounds are not stored: each node records a
/// single bound delta against its parent and the chain is materialized on
/// demand, so creating a node is O(1) instead of two O(n) vector copies.
struct Node {
  std::shared_ptr<const Node> parent;
  std::shared_ptr<const Basis> warm;  ///< parent LP's optimal basis (shared
                                      ///< by both children; may be null)
  int branch_var = -1;                ///< -1 only at the root
  double bound_value = 0.0;           ///< new bound for branch_var
  bool tighten_upper = false;  ///< true: upper := value, false: lower := value
  double bound = -kInfinity;   ///< parent LP objective: subtree lower bound
  double bound_q = -kInfinity;  ///< quantized bound, used for queue ordering
  int depth = 0;
  std::int64_t id = 0;  ///< assigned in push order; final ordering tiebreak
};

using NodePtr = std::shared_ptr<Node>;

/// Snaps a subtree bound to a coarse grid for frontier ordering. Under
/// degeneracy sibling subtrees carry mathematically equal bounds that the
/// two LP engines (or different platforms) compute with sub-1e-12 noise;
/// ordering on the raw doubles would let that noise reorder the frontier
/// and send the search down different trees. The grid (1e-8 absolute) is
/// far above arithmetic noise and far below any meaningful bound gap, and
/// quantizing once keeps the comparator an exact — hence strict-weak —
/// ordering.
double quantize_bound(double bound) {
  return std::isfinite(bound) ? std::nearbyint(bound * 1e8) / 1e8 : bound;
}

struct NodeOrder {
  // Best-first: smaller (quantized) LP bound explored first; deeper nodes
  // win ties so the search dives toward incumbents; push order (id) breaks
  // the rest so the pop sequence is a pure function of the tree, never of
  // pointer values or thread timing.
  bool operator()(const NodePtr& a, const NodePtr& b) const {
    if (a->bound_q != b->bound_q) return a->bound_q > b->bound_q;
    if (a->depth != b->depth) return a->depth < b->depth;
    return a->id > b->id;
  }
};

/// Rebuilds the node's full bound vectors: root bounds tightened by every
/// delta on the path to the root. Min/max accumulation makes the result
/// independent of traversal order (deltas only ever tighten).
void materialize_bounds(const Node& node, std::span<const double> root_lower,
                        std::span<const double> root_upper,
                        std::vector<double>& lower, std::vector<double>& upper) {
  lower.assign(root_lower.begin(), root_lower.end());
  upper.assign(root_upper.begin(), root_upper.end());
  for (const Node* n = &node; n != nullptr; n = n->parent.get()) {
    if (n->branch_var < 0) continue;
    const auto j = static_cast<std::size_t>(n->branch_var);
    if (n->tighten_upper) {
      upper[j] = std::min(upper[j], n->bound_value);
    } else {
      lower[j] = std::max(lower[j], n->bound_value);
    }
  }
}

/// Picks the integer variable whose LP value is most fractional, i.e. whose
/// distance to the nearest integer is largest (maximal at 0.5). Scores
/// within kBranchTieWidth of the maximum count as tied and break to the
/// smallest variable index: in a degenerate slot LP several binaries sit at
/// exactly 0.5 up to rounding noise, and a strict comparison would let
/// sub-1e-13 arithmetic differences (between LP engines, or across
/// platforms) pick different branch variables and send the whole search
/// down different trees.
constexpr double kBranchTieWidth = 1e-9;

int most_fractional(const Model& model, std::span<const double> values,
                    double tol) {
  int best = -1;
  double best_score = tol;
  for (int j = 0; j < model.num_variables(); ++j) {
    if (model.variable(j).type == VarType::Continuous) continue;
    const double v = values[static_cast<std::size_t>(j)];
    const double frac = v - std::floor(v);
    const double score = std::min(frac, 1.0 - frac);
    if (score > best_score + kBranchTieWidth) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

/// Rounds the LP point to the nearest integers and accepts it as an
/// incumbent when it satisfies all constraints. Cheap and surprisingly
/// effective on BIRP's near-network structure.
bool try_rounding(const Model& model, std::span<const double> lp_values,
                  std::vector<double>& out, double feasibility_tol) {
  out.assign(lp_values.begin(), lp_values.end());
  for (int j = 0; j < model.num_variables(); ++j) {
    if (model.variable(j).type == VarType::Continuous) continue;
    auto& v = out[static_cast<std::size_t>(j)];
    // Degenerate LPs leave integer variables at 0.5 up to arithmetic noise;
    // raw round() would flip such entries between engines/platforms. Snap
    // the tie zone to the round-half-up side deterministically.
    const double frac = v - std::floor(v);
    v = std::abs(frac - 0.5) <= kBranchTieWidth ? std::floor(v) + 1.0
                                                : std::round(v);
    v = std::max(v, model.variable(j).lower);
    if (std::isfinite(model.variable(j).upper)) {
      v = std::min(v, model.variable(j).upper);
    }
  }
  return model.max_violation(out) <= feasibility_tol;
}

}  // namespace

Solution solve_milp(const Model& model, const BranchAndBoundOptions& options) {
  if (!model.has_integers()) {
    return solve_lp(model, {}, {}, options.lp,
                    options.warm_start ? options.root_basis : nullptr,
                    /*emit_basis=*/true);
  }

  const auto n = static_cast<std::size_t>(model.num_variables());

  Solution incumbent;
  incumbent.status = SolveStatus::IterationLimit;
  double incumbent_objective = std::numeric_limits<double>::infinity();

  // Heuristic incumbents: candidates are verified against the model before
  // acceptance, so callers may pass approximate repairs.
  const auto consider = [&](const std::vector<double>& candidate) {
    if (candidate.size() != n) return;
    if (model.max_violation(candidate) > options.lp.tolerance * 10) return;
    if (model.max_integrality_violation(candidate) >
        options.integrality_tolerance) {
      return;
    }
    const double obj = model.objective_value(candidate);
#ifdef BIRP_LP_TRACE
    std::fprintf(stderr, "  consider obj=%.17g vs inc=%.17g\n", obj,
                 incumbent_objective);
#endif
    if (obj < incumbent_objective) {
      incumbent_objective = obj;
      incumbent.values = candidate;
      incumbent.objective = obj;
      incumbent.status = SolveStatus::Feasible;
    }
  };

  // Cross-slot seed: the previous slot's (repaired) decision often remains
  // feasible and near-optimal, closing the gap before any node is solved.
  if (!options.seed_candidate.empty()) consider(options.seed_candidate);

  // Root bounds; integer bounds tightened to integral values up front.
  std::vector<double> root_lower(n);
  std::vector<double> root_upper(n);
  for (std::size_t j = 0; j < n; ++j) {
    root_lower[j] = model.variable(static_cast<int>(j)).lower;
    root_upper[j] = model.variable(static_cast<int>(j)).upper;
    if (model.variable(static_cast<int>(j)).type != VarType::Continuous) {
      root_lower[j] = std::ceil(root_lower[j] - 1e-9);
      if (std::isfinite(root_upper[j])) {
        root_upper[j] = std::floor(root_upper[j] + 1e-9);
      }
    }
  }

  auto root = std::make_shared<Node>();
  if (options.warm_start && options.root_basis != nullptr &&
      !options.root_basis->empty()) {
    root->warm = std::make_shared<Basis>(*options.root_basis);
  }

  std::priority_queue<NodePtr, std::vector<NodePtr>, NodeOrder> open;
  open.push(std::move(root));
  std::int64_t next_id = 1;

  std::int64_t nodes = 0;
  std::int64_t total_pivots = 0;
  std::int64_t total_factor_pivots = 0;
  std::int64_t warm_solves = 0;
  std::int64_t cold_solves = 0;
  bool any_lp_budget_hit = false;
  // Tightest lower bound among subtrees dropped unsolved (LP budget hit).
  // A node's `bound` is its parent's LP objective, which bounds the whole
  // subtree, so it stays valid even when the node's own LP never finished.
  double unresolved_bound = std::numeric_limits<double>::infinity();
  std::vector<double> rounded;
  Basis root_basis_out;

  const int wave_size = std::max(options.wave_size, 1);
  std::vector<NodePtr> wave;
  std::vector<Solution> lps;
  wave.reserve(static_cast<std::size_t>(wave_size));

  const auto prune_threshold = [&] {
    return incumbent_objective -
           options.relative_gap * (1.0 + std::abs(incumbent_objective));
  };

  while (!open.empty() && nodes < options.max_nodes) {
    // ---- Pop a wave of frontier nodes (fixed size: the tree shape must not
    // depend on how many threads evaluate it). Pruned pops still count
    // toward the node budget, exactly as in the serial loop.
    wave.clear();
    while (static_cast<int>(wave.size()) < wave_size && !open.empty() &&
           nodes < options.max_nodes) {
      NodePtr node = open.top();
      open.pop();
      ++nodes;
      if (node->bound >= prune_threshold()) continue;
      wave.push_back(std::move(node));
    }
    if (wave.empty()) continue;

    // ---- Evaluate the wave's LPs. Each solve is a pure function of the
    // node, so concurrent execution cannot perturb results.
    const auto solve_node = [&](const Node& node) {
      std::vector<double> lower;
      std::vector<double> upper;
      materialize_bounds(node, root_lower, root_upper, lower, upper);
      const Basis* warm = options.warm_start ? node.warm.get() : nullptr;
      const bool emit = options.warm_start || node.id == 0;
      return solve_lp(model, lower, upper, options.lp, warm, emit);
    };
    lps.assign(wave.size(), Solution{});
    if (options.pool != nullptr && wave.size() > 1) {
      std::vector<std::future<Solution>> futures;
      futures.reserve(wave.size());
      for (const NodePtr& node : wave) {
        futures.push_back(
            options.pool->submit([&solve_node, &node] { return solve_node(*node); }));
      }
      for (std::size_t i = 0; i < futures.size(); ++i) lps[i] = futures[i].get();
    } else {
      for (std::size_t i = 0; i < wave.size(); ++i) lps[i] = solve_node(*wave[i]);
    }

    // ---- Merge sequentially in pop order: incumbent updates, pruning, and
    // branching happen in a fixed order regardless of which thread finished
    // first, so the search is bit-identical at any thread count.
    for (std::size_t i = 0; i < wave.size(); ++i) {
      const NodePtr& node = wave[i];
      Solution& lp = lps[i];
      total_pivots += lp.simplex_iterations;
      total_factor_pivots += lp.factor_pivots;
      if (lp.warm_started) {
        ++warm_solves;
      } else {
        ++cold_solves;
      }

      if (lp.status == SolveStatus::Infeasible) continue;
      if (lp.status == SolveStatus::Unbounded) {
        // An unbounded relaxation at the root means the MILP is unbounded or
        // ill-posed; deeper nodes inherit the verdict.
        Solution result;
        result.status = SolveStatus::Unbounded;
        result.nodes_explored = nodes;
        result.simplex_iterations = total_pivots;
        result.factor_pivots = total_factor_pivots;
        return result;
      }
      if (lp.status == SolveStatus::IterationLimit) {
        any_lp_budget_hit = true;
        unresolved_bound = std::min(unresolved_bound, node->bound);
        continue;  // cannot trust this subtree's bound; drop it
      }

      if (node->id == 0) root_basis_out = lp.basis;

      if (lp.objective >= prune_threshold()) continue;

      const int branch_var =
          most_fractional(model, lp.values, options.integrality_tolerance);
#ifdef BIRP_LP_TRACE
      std::fprintf(stderr,
                   "  node id=%lld obj=%.17g branch_var=%d v=%.17g warm=%d\n",
                   (long long)node->id, lp.objective, branch_var,
                   branch_var >= 0
                       ? lp.values[static_cast<std::size_t>(branch_var)]
                       : 0.0,
                   lp.warm_started ? 1 : 0);
#endif
      if (branch_var < 0) {
        // Integral LP optimum: new incumbent.
        if (lp.objective < incumbent_objective) {
          incumbent_objective = lp.objective;
          incumbent.values = lp.values;
          incumbent.objective = lp.objective;
          incumbent.status = SolveStatus::Feasible;
        }
        continue;
      }

      if (try_rounding(model, lp.values, rounded, options.lp.tolerance * 10)) {
        consider(rounded);
      }
      if (options.incumbent_heuristic) {
        consider(options.incumbent_heuristic(lp.values));
      }

      // Branch: both children share the parent pointer (one delta each) and
      // the parent's basis for warm-started re-solves.
      std::shared_ptr<const Basis> warm;
      if (options.warm_start && !lp.basis.empty()) {
        warm = std::make_shared<Basis>(std::move(lp.basis));
      }
      const double v = lp.values[static_cast<std::size_t>(branch_var)];
      auto down = std::make_shared<Node>();
      down->parent = node;
      down->warm = warm;
      down->branch_var = branch_var;
      down->bound_value = std::floor(v);
      down->tighten_upper = true;
      down->bound = lp.objective;
      down->bound_q = quantize_bound(lp.objective);
      down->depth = node->depth + 1;
      down->id = next_id++;
      auto up = std::make_shared<Node>();
      up->parent = node;
      up->warm = std::move(warm);
      up->branch_var = branch_var;
      up->bound_value = std::ceil(v);
      up->tighten_upper = false;
      up->bound = lp.objective;
      up->bound_q = quantize_bound(lp.objective);
      up->depth = node->depth + 1;
      up->id = next_id++;
      open.push(std::move(down));
      open.push(std::move(up));
    }
  }

  incumbent.nodes_explored = nodes;
  incumbent.simplex_iterations = total_pivots;
  incumbent.factor_pivots = total_factor_pivots;
  incumbent.warm_lp_solves = warm_solves;
  incumbent.cold_lp_solves = cold_solves;
  incumbent.basis = std::move(root_basis_out);

  // The proven bound over everything not explored: the open frontier (the
  // queue is ordered by bound, so top() is its minimum) plus any subtrees
  // dropped with unfinished LPs. Computed at exit — never from a stale
  // mid-loop snapshot — and clamped by the incumbent so the reported
  // [best_bound, objective] interval always brackets the optimum.
  double frontier = unresolved_bound;
  if (!open.empty()) frontier = std::min(frontier, open.top()->bound);

  if (incumbent.values.empty()) {
    // No feasible integral point found. If the search space was exhausted
    // without LP failures the model is genuinely infeasible.
    incumbent.status = (open.empty() && !any_lp_budget_hit)
                           ? SolveStatus::Infeasible
                           : SolveStatus::IterationLimit;
    return incumbent;
  }

  if (open.empty() && !any_lp_budget_hit) {
    incumbent.status = SolveStatus::Optimal;
    incumbent.best_bound = incumbent.objective;
  } else {
    incumbent.status = SolveStatus::Feasible;
    incumbent.best_bound = std::min(frontier, incumbent.objective);
  }
  return incumbent;
}

}  // namespace birp::solver
